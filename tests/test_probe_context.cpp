#include <gtest/gtest.h>

#include "core/path.hpp"
#include "core/probe_context.hpp"
#include "graph/hypercube.hpp"
#include "graph/mesh.hpp"
#include "percolation/edge_sampler.hpp"

namespace faultroute {
namespace {

// ------------------------------------------------------------- ProbeContext

TEST(ProbeContext, CountsDistinctAndTotalSeparately) {
  const Hypercube g(4);
  const HashEdgeSampler s(1.0, 1);
  ProbeContext ctx(g, s, 0, RoutingMode::kLocal);
  EXPECT_EQ(ctx.distinct_probes(), 0u);
  ctx.probe(0, 0);
  ctx.probe(0, 0);
  ctx.probe(0, 1);
  EXPECT_EQ(ctx.distinct_probes(), 2u);
  EXPECT_EQ(ctx.total_probes(), 3u);
}

TEST(ProbeContext, MemoisesAnswers) {
  const Hypercube g(5);
  const HashEdgeSampler s(0.5, 42);
  ProbeContext ctx(g, s, 0, RoutingMode::kOracle);
  for (int i = 0; i < 5; ++i) {
    const bool first = ctx.probe(0, i);
    EXPECT_EQ(ctx.probe(0, i), first);
    EXPECT_EQ(first, s.is_open(g.edge_key(0, i)));
  }
}

TEST(ProbeContext, ProbeAgreesAcrossEndpoints) {
  // Probing the same physical edge from either endpoint is one distinct edge.
  const Hypercube g(4);
  const HashEdgeSampler s(1.0, 9);
  ProbeContext ctx(g, s, 0, RoutingMode::kOracle);
  ctx.probe(0, 0);               // edge 0 - 1
  ctx.probe(1, 0);               // same edge from the other side
  EXPECT_EQ(ctx.distinct_probes(), 1u);
}

TEST(ProbeContext, LocalModeTracksReachedSet) {
  const Hypercube g(3);
  ExplicitEdgeSampler s(false);
  s.set(g.edge_key(0, 0), true);  // 0 - 1 open
  ProbeContext ctx(g, s, 0, RoutingMode::kLocal);
  EXPECT_TRUE(ctx.is_reached(0));
  EXPECT_FALSE(ctx.is_reached(1));
  EXPECT_TRUE(ctx.probe(0, 0));
  EXPECT_TRUE(ctx.is_reached(1));
  EXPECT_FALSE(ctx.probe(0, 1));   // closed edge
  EXPECT_FALSE(ctx.is_reached(2));
}

TEST(ProbeContext, LocalModeRejectsNonIncidentProbes) {
  const Hypercube g(4);
  const HashEdgeSampler s(1.0, 1);
  ProbeContext ctx(g, s, 0, RoutingMode::kLocal);
  // Vertex 12 is far from the source 0 with nothing probed yet.
  EXPECT_THROW(ctx.probe(12, 0), LocalityViolation);
  // Edges at the source are fine, and extend the reach.
  EXPECT_TRUE(ctx.probe(0, 2));  // reaches 4
  EXPECT_NO_THROW(ctx.probe(4, 0));
}

TEST(ProbeContext, LocalProbeFromFarEndpointTowardsReachedIsAllowed) {
  // Definition 1 allows probing any edge with an endpoint on the reached
  // set, regardless of which endpoint names the edge.
  const Hypercube g(3);
  const HashEdgeSampler s(1.0, 1);
  ProbeContext ctx(g, s, 0, RoutingMode::kLocal);
  // Edge 1-0 probed from vertex 1 (unreached) is incident to reached 0.
  EXPECT_NO_THROW(ctx.probe(1, 0));
  EXPECT_TRUE(ctx.is_reached(1));
}

TEST(ProbeContext, ClosedProbesDoNotExtendReach) {
  const Hypercube g(3);
  ExplicitEdgeSampler s(false);
  ProbeContext ctx(g, s, 0, RoutingMode::kLocal);
  EXPECT_FALSE(ctx.probe(0, 0));
  EXPECT_FALSE(ctx.is_reached(1));
  EXPECT_THROW(ctx.probe(1, 1), LocalityViolation);  // 1 is still unreached
}

TEST(ProbeContext, OracleModeAllowsAnyProbe) {
  const Hypercube g(4);
  const HashEdgeSampler s(0.5, 3);
  ProbeContext ctx(g, s, 0, RoutingMode::kOracle);
  EXPECT_NO_THROW(ctx.probe(9, 1));
  EXPECT_NO_THROW(ctx.probe(15, 3));
  EXPECT_TRUE(ctx.is_reached(9));  // trivially true in oracle mode
}

TEST(ProbeContext, BudgetCountsDistinctEdgesOnly) {
  const Hypercube g(4);
  const HashEdgeSampler s(1.0, 1);
  ProbeContext ctx(g, s, 0, RoutingMode::kOracle, /*budget=*/2);
  ctx.probe(0, 0);
  ctx.probe(0, 0);  // memoised, free
  ctx.probe(0, 1);
  EXPECT_EQ(ctx.remaining_budget(), 0u);
  EXPECT_THROW(ctx.probe(0, 2), ProbeBudgetExceeded);
  // Memoised probes still succeed after exhaustion.
  EXPECT_NO_THROW(ctx.probe(0, 0));
}

TEST(ProbeContext, ProbeBetweenFindsTheEdge) {
  const Mesh g(2, 4);
  const HashEdgeSampler s(1.0, 1);
  ProbeContext ctx(g, s, 0, RoutingMode::kLocal);
  EXPECT_TRUE(ctx.probe_between(0, 1));
  EXPECT_THROW(ctx.probe_between(0, 5), std::invalid_argument);  // diagonal
}

// ---------------------------------------- both backends, parameterised
//
// The dense (arena-backed) and hash backends must be observably identical.
// Each test below runs once per backend and once per routing mode where the
// mode matters; `arena_for` hands out nullptr (hash) or a live arena (dense).

class ProbeContextBackends : public ::testing::TestWithParam<bool> {
 protected:
  ProbeArena* arena_for() { return GetParam() ? &arena_ : nullptr; }

 private:
  ProbeArena arena_;
};

INSTANTIATE_TEST_SUITE_P(HashAndDense, ProbeContextBackends, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& param_info) {
                           return param_info.param ? "dense" : "hash";
                         });

TEST_P(ProbeContextBackends, BudgetZeroThrowsOnTheVeryFirstFreshProbe) {
  const Hypercube g(4);
  const HashEdgeSampler s(1.0, 1);
  for (const RoutingMode mode : {RoutingMode::kLocal, RoutingMode::kOracle}) {
    ProbeContext ctx(g, s, 0, mode, /*budget=*/0, arena_for());
    EXPECT_EQ(ctx.remaining_budget(), 0u);
    EXPECT_THROW(ctx.probe(0, 0), ProbeBudgetExceeded);
    // The rejected probe still counted as a call, but discovered nothing.
    EXPECT_EQ(ctx.total_probes(), 1u);
    EXPECT_EQ(ctx.distinct_probes(), 0u);
  }
}

TEST_P(ProbeContextBackends, ExactlyAtBudgetSucceedsAndOneMoreThrows) {
  const Hypercube g(4);
  const HashEdgeSampler s(1.0, 1);
  for (const RoutingMode mode : {RoutingMode::kLocal, RoutingMode::kOracle}) {
    ProbeContext ctx(g, s, 0, mode, /*budget=*/4, arena_for());
    for (int i = 0; i < 4; ++i) EXPECT_NO_THROW(ctx.probe(0, i));  // spends it all
    EXPECT_EQ(ctx.distinct_probes(), 4u);
    EXPECT_EQ(ctx.remaining_budget(), 0u);
    // Memoised re-probes stay free after exhaustion; a fresh edge throws.
    EXPECT_NO_THROW(ctx.probe(0, 3));
    EXPECT_THROW(ctx.probe(1, 1), ProbeBudgetExceeded);
    EXPECT_EQ(ctx.distinct_probes(), 4u);
  }
}

TEST_P(ProbeContextBackends, RemainingBudgetIsConsistentWithTheThrowCondition) {
  // Invariant under any probe sequence: a probe throws ProbeBudgetExceeded
  // iff it is fresh and remaining_budget() == 0, and remaining_budget() ==
  // budget - distinct_probes() throughout.
  const Hypercube g(4);
  const HashEdgeSampler s(0.7, 5);
  constexpr std::uint64_t kBudget = 6;
  ProbeContext ctx(g, s, 0, RoutingMode::kOracle, kBudget, arena_for());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (int i = 0; i < g.degree(v); ++i) {
      const std::uint64_t before = ctx.distinct_probes();
      ASSERT_EQ(ctx.remaining_budget(), kBudget - before);
      try {
        ctx.probe(v, i);
        EXPECT_LE(ctx.distinct_probes(), kBudget);
      } catch (const ProbeBudgetExceeded&) {
        EXPECT_EQ(before, kBudget);  // threw exactly at exhaustion
        EXPECT_EQ(ctx.remaining_budget(), 0u);
        return;  // invariant held all the way to exhaustion
      }
    }
  }
  FAIL() << "budget was never exhausted; the sweep should overrun 6 edges";
}

TEST_P(ProbeContextBackends, UnboundedBudgetReportsNullopt) {
  const Hypercube g(3);
  const HashEdgeSampler s(1.0, 1);
  ProbeContext ctx(g, s, 0, RoutingMode::kOracle, std::nullopt, arena_for());
  EXPECT_EQ(ctx.remaining_budget(), std::nullopt);
  ctx.probe(0, 0);
  EXPECT_EQ(ctx.remaining_budget(), std::nullopt);
}

// ----------------------------------------------------- dense backend proper

TEST(ProbeArena, EpochBumpIsolatesMessagesWithoutLeakingState) {
  const Hypercube g(4);
  const HashEdgeSampler s(1.0, 9);
  ProbeArena arena;
  {
    ProbeContext first(g, s, 0, RoutingMode::kLocal, std::nullopt, &arena);
    first.probe(0, 0);
    first.probe(0, 1);
    EXPECT_EQ(first.distinct_probes(), 2u);
    EXPECT_TRUE(first.is_reached(1));
  }
  // Same arena, next message: the previous memo and reached set must be
  // invisible — the same edges count as distinct again, and vertex 1 is no
  // longer reached (only the new source is).
  ProbeContext second(g, s, 2, RoutingMode::kLocal, std::nullopt, &arena);
  EXPECT_EQ(second.distinct_probes(), 0u);
  EXPECT_FALSE(second.is_reached(1));
  EXPECT_TRUE(second.is_reached(2));
  EXPECT_THROW(second.probe(0, 0), LocalityViolation);  // 0-1 not incident to {2}
  second.probe(2, 0);
  EXPECT_EQ(second.distinct_probes(), 1u);
}

TEST(ProbeArena, SurvivesTopologySwitches) {
  // Scenario sweeps reuse one worker arena across cells with different
  // topologies; the arena must resize and reset cleanly.
  const Hypercube cube(4);
  const Mesh mesh(2, 8);
  const HashEdgeSampler s(1.0, 3);
  ProbeArena arena;
  {
    ProbeContext ctx(cube, s, 0, RoutingMode::kLocal, std::nullopt, &arena);
    ctx.probe(0, 0);
    EXPECT_EQ(ctx.distinct_probes(), 1u);
  }
  {
    ProbeContext ctx(mesh, s, 0, RoutingMode::kLocal, std::nullopt, &arena);
    EXPECT_EQ(ctx.distinct_probes(), 0u);
    EXPECT_TRUE(ctx.probe_between(0, 1));
    EXPECT_TRUE(ctx.is_reached(1));
  }
  ProbeContext back(cube, s, 1, RoutingMode::kOracle, std::nullopt, &arena);
  back.probe(1, 0);
  EXPECT_EQ(back.distinct_probes(), 1u);
}

TEST(ProbeContext, DenseAndHashBackendsAgreeOnEveryObservable) {
  // Drive both backends through an identical mixed probe sequence (repeats,
  // both endpoints of the same edge, reach growth) and compare every
  // observable after every step.
  const Hypercube g(5);
  const HashEdgeSampler s(0.6, 31);
  ProbeArena arena;
  ProbeContext hash(g, s, 0, RoutingMode::kLocal);
  ProbeContext dense(g, s, 0, RoutingMode::kLocal, std::nullopt, &arena);
  std::uint64_t frontier = 0;  // walk outward along whatever opens
  for (int round = 0; round < 40; ++round) {
    const VertexId v = frontier;
    for (int i = 0; i < g.degree(v); ++i) {
      bool hash_open = false;
      bool dense_open = false;
      bool hash_threw = false;
      bool dense_threw = false;
      try {
        hash_open = hash.probe(v, i);
      } catch (const LocalityViolation&) {
        hash_threw = true;
      }
      try {
        dense_open = dense.probe(v, i);
      } catch (const LocalityViolation&) {
        dense_threw = true;
      }
      ASSERT_EQ(hash_threw, dense_threw) << "round " << round << " slot " << i;
      ASSERT_EQ(hash_open, dense_open) << "round " << round << " slot " << i;
      ASSERT_EQ(hash.distinct_probes(), dense.distinct_probes());
      ASSERT_EQ(hash.total_probes(), dense.total_probes());
      if (!hash_threw && hash_open) frontier = g.neighbor(v, i);
    }
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(hash.is_reached(v), dense.is_reached(v)) << "vertex " << v;
  }
}

// ------------------------------------------------------------------- Path

TEST(Path, ValidOpenPathAccepts) {
  const Hypercube g(3);
  const HashEdgeSampler s(1.0, 1);
  EXPECT_TRUE(is_valid_open_path(g, s, {0, 1, 3, 7}, 0, 7));
  EXPECT_TRUE(is_valid_open_path(g, s, {5}, 5, 5));
}

TEST(Path, RejectsWrongEndpointsOrGaps) {
  const Hypercube g(3);
  const HashEdgeSampler s(1.0, 1);
  EXPECT_FALSE(is_valid_open_path(g, s, {}, 0, 0));
  EXPECT_FALSE(is_valid_open_path(g, s, {0, 1}, 0, 7));
  EXPECT_FALSE(is_valid_open_path(g, s, {0, 3}, 0, 3));  // not adjacent
}

TEST(Path, RejectsClosedEdges) {
  const Hypercube g(3);
  ExplicitEdgeSampler s(true);
  s.set(g.edge_key(1, edge_index_of(g, 1, 3)), false);
  EXPECT_FALSE(is_valid_open_path(g, s, {0, 1, 3}, 0, 3));
  EXPECT_TRUE(is_valid_open_path(g, s, {0, 2, 3}, 0, 3));
}

TEST(Path, SimplifyRemovesLoops) {
  EXPECT_EQ(simplify_walk({1, 2, 3, 2, 4}), (Path{1, 2, 4}));
  EXPECT_EQ(simplify_walk({1, 2, 1, 2, 3}), (Path{1, 2, 3}));
  EXPECT_EQ(simplify_walk({7}), (Path{7}));
  EXPECT_EQ(simplify_walk({}), (Path{}));
  EXPECT_EQ(simplify_walk({1, 2, 3}), (Path{1, 2, 3}));
}

TEST(Path, SimplifyKeepsEndpointsAndAdjacency) {
  // A messy walk on the hypercube simplifies to a valid simple path.
  const Hypercube g(3);
  const Path walk = {0, 1, 0, 2, 6, 2, 3, 7};
  const Path simple = simplify_walk(walk);
  EXPECT_EQ(simple.front(), 0u);
  EXPECT_EQ(simple.back(), 7u);
  for (std::size_t i = 0; i + 1 < simple.size(); ++i) {
    EXPECT_GE(edge_index_of(g, simple[i], simple[i + 1]), 0);
  }
  // No repeats.
  Path sorted = simple;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST(Path, LengthCounts) {
  EXPECT_EQ(path_length({}), 0u);
  EXPECT_EQ(path_length({3}), 0u);
  EXPECT_EQ(path_length({3, 4, 5}), 2u);
}

}  // namespace
}  // namespace faultroute
