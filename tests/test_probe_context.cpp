#include <gtest/gtest.h>

#include "core/path.hpp"
#include "core/probe_context.hpp"
#include "graph/hypercube.hpp"
#include "graph/mesh.hpp"
#include "percolation/edge_sampler.hpp"

namespace faultroute {
namespace {

// ------------------------------------------------------------- ProbeContext

TEST(ProbeContext, CountsDistinctAndTotalSeparately) {
  const Hypercube g(4);
  const HashEdgeSampler s(1.0, 1);
  ProbeContext ctx(g, s, 0, RoutingMode::kLocal);
  EXPECT_EQ(ctx.distinct_probes(), 0u);
  ctx.probe(0, 0);
  ctx.probe(0, 0);
  ctx.probe(0, 1);
  EXPECT_EQ(ctx.distinct_probes(), 2u);
  EXPECT_EQ(ctx.total_probes(), 3u);
}

TEST(ProbeContext, MemoisesAnswers) {
  const Hypercube g(5);
  const HashEdgeSampler s(0.5, 42);
  ProbeContext ctx(g, s, 0, RoutingMode::kOracle);
  for (int i = 0; i < 5; ++i) {
    const bool first = ctx.probe(0, i);
    EXPECT_EQ(ctx.probe(0, i), first);
    EXPECT_EQ(first, s.is_open(g.edge_key(0, i)));
  }
}

TEST(ProbeContext, ProbeAgreesAcrossEndpoints) {
  // Probing the same physical edge from either endpoint is one distinct edge.
  const Hypercube g(4);
  const HashEdgeSampler s(1.0, 9);
  ProbeContext ctx(g, s, 0, RoutingMode::kOracle);
  ctx.probe(0, 0);               // edge 0 - 1
  ctx.probe(1, 0);               // same edge from the other side
  EXPECT_EQ(ctx.distinct_probes(), 1u);
}

TEST(ProbeContext, LocalModeTracksReachedSet) {
  const Hypercube g(3);
  ExplicitEdgeSampler s(false);
  s.set(g.edge_key(0, 0), true);  // 0 - 1 open
  ProbeContext ctx(g, s, 0, RoutingMode::kLocal);
  EXPECT_TRUE(ctx.is_reached(0));
  EXPECT_FALSE(ctx.is_reached(1));
  EXPECT_TRUE(ctx.probe(0, 0));
  EXPECT_TRUE(ctx.is_reached(1));
  EXPECT_FALSE(ctx.probe(0, 1));   // closed edge
  EXPECT_FALSE(ctx.is_reached(2));
}

TEST(ProbeContext, LocalModeRejectsNonIncidentProbes) {
  const Hypercube g(4);
  const HashEdgeSampler s(1.0, 1);
  ProbeContext ctx(g, s, 0, RoutingMode::kLocal);
  // Vertex 12 is far from the source 0 with nothing probed yet.
  EXPECT_THROW(ctx.probe(12, 0), LocalityViolation);
  // Edges at the source are fine, and extend the reach.
  EXPECT_TRUE(ctx.probe(0, 2));  // reaches 4
  EXPECT_NO_THROW(ctx.probe(4, 0));
}

TEST(ProbeContext, LocalProbeFromFarEndpointTowardsReachedIsAllowed) {
  // Definition 1 allows probing any edge with an endpoint on the reached
  // set, regardless of which endpoint names the edge.
  const Hypercube g(3);
  const HashEdgeSampler s(1.0, 1);
  ProbeContext ctx(g, s, 0, RoutingMode::kLocal);
  // Edge 1-0 probed from vertex 1 (unreached) is incident to reached 0.
  EXPECT_NO_THROW(ctx.probe(1, 0));
  EXPECT_TRUE(ctx.is_reached(1));
}

TEST(ProbeContext, ClosedProbesDoNotExtendReach) {
  const Hypercube g(3);
  ExplicitEdgeSampler s(false);
  ProbeContext ctx(g, s, 0, RoutingMode::kLocal);
  EXPECT_FALSE(ctx.probe(0, 0));
  EXPECT_FALSE(ctx.is_reached(1));
  EXPECT_THROW(ctx.probe(1, 1), LocalityViolation);  // 1 is still unreached
}

TEST(ProbeContext, OracleModeAllowsAnyProbe) {
  const Hypercube g(4);
  const HashEdgeSampler s(0.5, 3);
  ProbeContext ctx(g, s, 0, RoutingMode::kOracle);
  EXPECT_NO_THROW(ctx.probe(9, 1));
  EXPECT_NO_THROW(ctx.probe(15, 3));
  EXPECT_TRUE(ctx.is_reached(9));  // trivially true in oracle mode
}

TEST(ProbeContext, BudgetCountsDistinctEdgesOnly) {
  const Hypercube g(4);
  const HashEdgeSampler s(1.0, 1);
  ProbeContext ctx(g, s, 0, RoutingMode::kOracle, /*budget=*/2);
  ctx.probe(0, 0);
  ctx.probe(0, 0);  // memoised, free
  ctx.probe(0, 1);
  EXPECT_EQ(ctx.remaining_budget(), 0u);
  EXPECT_THROW(ctx.probe(0, 2), ProbeBudgetExceeded);
  // Memoised probes still succeed after exhaustion.
  EXPECT_NO_THROW(ctx.probe(0, 0));
}

TEST(ProbeContext, ProbeBetweenFindsTheEdge) {
  const Mesh g(2, 4);
  const HashEdgeSampler s(1.0, 1);
  ProbeContext ctx(g, s, 0, RoutingMode::kLocal);
  EXPECT_TRUE(ctx.probe_between(0, 1));
  EXPECT_THROW(ctx.probe_between(0, 5), std::invalid_argument);  // diagonal
}

// ------------------------------------------------------------------- Path

TEST(Path, ValidOpenPathAccepts) {
  const Hypercube g(3);
  const HashEdgeSampler s(1.0, 1);
  EXPECT_TRUE(is_valid_open_path(g, s, {0, 1, 3, 7}, 0, 7));
  EXPECT_TRUE(is_valid_open_path(g, s, {5}, 5, 5));
}

TEST(Path, RejectsWrongEndpointsOrGaps) {
  const Hypercube g(3);
  const HashEdgeSampler s(1.0, 1);
  EXPECT_FALSE(is_valid_open_path(g, s, {}, 0, 0));
  EXPECT_FALSE(is_valid_open_path(g, s, {0, 1}, 0, 7));
  EXPECT_FALSE(is_valid_open_path(g, s, {0, 3}, 0, 3));  // not adjacent
}

TEST(Path, RejectsClosedEdges) {
  const Hypercube g(3);
  ExplicitEdgeSampler s(true);
  s.set(g.edge_key(1, edge_index_of(g, 1, 3)), false);
  EXPECT_FALSE(is_valid_open_path(g, s, {0, 1, 3}, 0, 3));
  EXPECT_TRUE(is_valid_open_path(g, s, {0, 2, 3}, 0, 3));
}

TEST(Path, SimplifyRemovesLoops) {
  EXPECT_EQ(simplify_walk({1, 2, 3, 2, 4}), (Path{1, 2, 4}));
  EXPECT_EQ(simplify_walk({1, 2, 1, 2, 3}), (Path{1, 2, 3}));
  EXPECT_EQ(simplify_walk({7}), (Path{7}));
  EXPECT_EQ(simplify_walk({}), (Path{}));
  EXPECT_EQ(simplify_walk({1, 2, 3}), (Path{1, 2, 3}));
}

TEST(Path, SimplifyKeepsEndpointsAndAdjacency) {
  // A messy walk on the hypercube simplifies to a valid simple path.
  const Hypercube g(3);
  const Path walk = {0, 1, 0, 2, 6, 2, 3, 7};
  const Path simple = simplify_walk(walk);
  EXPECT_EQ(simple.front(), 0u);
  EXPECT_EQ(simple.back(), 7u);
  for (std::size_t i = 0; i + 1 < simple.size(); ++i) {
    EXPECT_GE(edge_index_of(g, simple[i], simple[i + 1]), 0);
  }
  // No repeats.
  Path sorted = simple;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST(Path, LengthCounts) {
  EXPECT_EQ(path_length({}), 0u);
  EXPECT_EQ(path_length({3}), 0u);
  EXPECT_EQ(path_length({3, 4, 5}), 2u);
}

}  // namespace
}  // namespace faultroute
