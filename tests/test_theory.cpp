#include <gtest/gtest.h>

#include <cmath>

#include "analysis/theory.hpp"

namespace faultroute {
namespace {

TEST(Theory, Lemma5BoundClampsAndScales) {
  EXPECT_DOUBLE_EQ(theory::lemma5_bound(10, 0.01, 0.0, 1.0), 0.1);
  EXPECT_DOUBLE_EQ(theory::lemma5_bound(10, 0.01, 0.05, 0.5), 0.3);
  EXPECT_DOUBLE_EQ(theory::lemma5_bound(1e9, 0.01, 0.0, 1.0), 1.0);  // clamp
  EXPECT_THROW((void)theory::lemma5_bound(1, 0.1, 0.0, 0.0), std::invalid_argument);
}

TEST(Theory, EtaLeadingTermMatchesFormula) {
  // l! p^l for l = 3, p = 0.1: 6e-3.
  EXPECT_NEAR(theory::hypercube_eta_leading(0.1, 3), 6e-3, 1e-12);
  EXPECT_NEAR(theory::hypercube_eta_leading(0.5, 1), 0.5, 1e-12);
}

TEST(Theory, EtaFullBoundDivergesWhenSeriesDoes) {
  // n l^2 p^2 >= 1 => +inf.
  EXPECT_TRUE(std::isinf(theory::hypercube_eta_bound(100, 0.2, 3)));
  // Convergent case: n = 16, p = 0.05, l = 2 -> ratio 0.16.
  const double bound = theory::hypercube_eta_bound(16, 0.05, 2);
  EXPECT_NEAR(bound, 2 * 0.05 * 0.05 / (1 - 16 * 4 * 0.0025), 1e-12);
}

TEST(Theory, HypercubeThresholdOrdering) {
  // giant threshold << routing threshold << connectivity threshold.
  const int n = 16;
  EXPECT_LT(theory::hypercube_giant_threshold(n), theory::hypercube_routing_threshold(n));
  EXPECT_LT(theory::hypercube_routing_threshold(n),
            theory::hypercube_connectivity_threshold());
  EXPECT_DOUBLE_EQ(theory::hypercube_routing_threshold(16), 0.25);
  EXPECT_DOUBLE_EQ(theory::hypercube_giant_threshold(16), 1.0 / 16.0);
}

TEST(Theory, MeshCriticalValues) {
  EXPECT_DOUBLE_EQ(theory::mesh_critical_probability(2), 0.5);
  EXPECT_NEAR(theory::mesh_critical_probability(3), 0.2488, 1e-9);
  // Decreasing in dimension.
  for (int d = 2; d < 6; ++d) {
    EXPECT_GT(theory::mesh_critical_probability(d), theory::mesh_critical_probability(d + 1));
  }
  EXPECT_THROW((void)theory::mesh_critical_probability(1), std::invalid_argument);
  EXPECT_THROW((void)theory::mesh_critical_probability(7), std::invalid_argument);
}

TEST(Theory, DoubleTreeThreshold) {
  EXPECT_NEAR(theory::double_tree_threshold(), 0.70710678, 1e-7);
}

TEST(Theory, DoubleTreeLowerBoundGrowth) {
  // p^{-n}: doubles every level at p = 0.5, grows 1.25x at p = 0.8.
  EXPECT_NEAR(theory::double_tree_local_lower_bound(0.8, 10) /
                  theory::double_tree_local_lower_bound(0.8, 9),
              1.25, 1e-9);
  EXPECT_THROW((void)theory::double_tree_local_lower_bound(0.0, 5), std::invalid_argument);
}

TEST(Theory, GnpGiantFractionFixedPoint) {
  EXPECT_DOUBLE_EQ(theory::gnp_giant_fraction(0.5), 0.0);
  EXPECT_DOUBLE_EQ(theory::gnp_giant_fraction(1.0), 0.0);
  // beta solves beta = 1 - e^{-c beta}; check the fixed point property.
  for (const double c : {1.5, 2.0, 3.0, 5.0}) {
    const double beta = theory::gnp_giant_fraction(c);
    EXPECT_GT(beta, 0.0);
    EXPECT_LT(beta, 1.0);
    EXPECT_NEAR(beta, 1.0 - std::exp(-c * beta), 1e-10) << c;
  }
  // Known value: c = 2 gives beta ~ 0.7968.
  EXPECT_NEAR(theory::gnp_giant_fraction(2.0), 0.7968, 5e-4);
}

TEST(Theory, GnpExponents) {
  EXPECT_DOUBLE_EQ(theory::gnp_local_exponent(), 2.0);
  EXPECT_DOUBLE_EQ(theory::gnp_oracle_exponent(), 1.5);
}

}  // namespace
}  // namespace faultroute
