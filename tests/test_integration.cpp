// Integration tests: miniature versions of the paper's experiments with
// loose statistical assertions. These tie the whole stack together —
// topology, lazy percolation, probe accounting, routers, conditioning — and
// would catch any regression that silently breaks an experiment's *shape*
// even when unit tests stay green.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/stats.hpp"
#include "analysis/theory.hpp"
#include "core/experiment.hpp"
#include "core/probe_context.hpp"
#include "core/routers/double_tree_routers.hpp"
#include "core/routers/gnp_routers.hpp"
#include "core/routers/landmark_router.hpp"
#include "graph/complete.hpp"
#include "graph/double_tree.hpp"
#include "graph/hypercube.hpp"
#include "graph/mesh.hpp"
#include "percolation/cluster_analysis.hpp"
#include "percolation/edge_sampler.hpp"
#include "percolation/galton_watson.hpp"
#include "sim/sweep.hpp"

namespace faultroute {
namespace {

TEST(Integration, HypercubeRoutingDegradesAcrossAlphaHalf) {
  // Theorem 3 in miniature: landmark routing at alpha = 0.65 costs far more
  // than at alpha = 0.35 on the same cube.
  const Hypercube cube(11);
  LandmarkRouter router;
  ExperimentConfig config;
  config.trials = 10;
  config.base_seed = 7;
  const auto cheap = measure_routing(cube, sim::p_for_alpha(11, 0.35), router, 0,
                                     cube.num_vertices() - 1, config);
  const auto costly = measure_routing(cube, sim::p_for_alpha(11, 0.65), router, 0,
                                      cube.num_vertices() - 1, config);
  EXPECT_EQ(cheap.unexpected_failures, 0);
  EXPECT_EQ(costly.unexpected_failures, 0);
  EXPECT_GT(costly.median_distinct, 2.0 * cheap.median_distinct);
}

TEST(Integration, MeshRoutingIsLinearInDistance) {
  // Theorem 4 in miniature: doubling the distance roughly doubles the
  // probes (far from exploding).
  const Mesh mesh(2, 100);
  LandmarkRouter router;
  ExperimentConfig config;
  config.trials = 12;
  config.base_seed = 3;
  const VertexId u = mesh.vertex_at({20, 50});
  const auto near = measure_routing(mesh, 0.65, router, u, mesh.vertex_at({44, 50}), config);
  const auto far = measure_routing(mesh, 0.65, router, u, mesh.vertex_at({68, 50}), config);
  const double ratio = far.mean_distinct / near.mean_distinct;
  EXPECT_GT(ratio, 1.2);
  EXPECT_LT(ratio, 4.0);  // linear-ish, certainly not exponential
}

TEST(Integration, DoubleTreeConnectivityThresholdLocation) {
  // Lemma 6 in miniature: connection probability is tiny at p = 0.6 and
  // substantial at p = 0.85 (threshold 0.707 in between).
  const DoubleBinaryTree tree(10);
  int low = 0;
  int high = 0;
  const int trials = 120;
  for (int t = 0; t < trials; ++t) {
    const HashEdgeSampler below(0.60, derive_seed(1, static_cast<std::uint64_t>(t)));
    const HashEdgeSampler above(0.85, derive_seed(2, static_cast<std::uint64_t>(t)));
    low += *open_connected(tree, below, tree.root1(), tree.root2()) ? 1 : 0;
    high += *open_connected(tree, above, tree.root1(), tree.root2()) ? 1 : 0;
  }
  EXPECT_LT(low, trials / 10);
  EXPECT_GT(high, trials / 2);
}

TEST(Integration, DoubleTreeOracleBeatsLocalExponentially) {
  // Theorems 7 + 9 in miniature, at depth 12 and p = 0.8.
  const DoubleBinaryTree tree(12);
  DoubleTreeLocalRouter local(tree);
  DoubleTreePairedOracleRouter oracle(tree);
  Summary local_probes;
  Summary oracle_probes;
  int accepted = 0;
  for (std::uint64_t t = 0; accepted < 25 && t < 1000; ++t) {
    const HashEdgeSampler sampler(0.8, derive_seed(5, t));
    if (!*open_connected(tree, sampler, tree.root1(), tree.root2())) continue;
    ++accepted;
    ProbeContext lc(tree, sampler, tree.root1(), RoutingMode::kLocal);
    ASSERT_TRUE(local.route(lc, tree.root1(), tree.root2()).has_value());
    local_probes.add(static_cast<double>(lc.distinct_probes()));
    ProbeContext oc(tree, sampler, tree.root1(), RoutingMode::kOracle);
    const auto path = oracle.route(oc, tree.root1(), tree.root2());
    if (path) oracle_probes.add(static_cast<double>(oc.distinct_probes()));
  }
  ASSERT_EQ(accepted, 25);
  ASSERT_GT(oracle_probes.count(), 10u);
  EXPECT_GT(local_probes.mean(), 2.0 * oracle_probes.mean());
  // Theorem 9's O(n): the oracle averages a small multiple of the depth.
  EXPECT_LT(oracle_probes.mean(), 12 * 12);
}

TEST(Integration, GnpOracleAdvantageAppears) {
  // Theorems 10 + 11 in miniature at n = 600.
  const std::uint64_t n = 600;
  const CompleteGraph g(n);
  GnpLocalRouter local;
  GnpOracleRouter oracle;
  ExperimentConfig config;
  config.trials = 8;
  config.base_seed = 11;
  const double p = 3.0 / static_cast<double>(n);
  const auto ls = measure_routing(g, p, local, 0, n - 1, config);
  const auto os = measure_routing(g, p, oracle, 0, n - 1, config);
  EXPECT_EQ(ls.unexpected_failures, 0);
  EXPECT_EQ(os.unexpected_failures, 0);
  EXPECT_LT(os.mean_distinct, ls.mean_distinct / 2.0);
}

TEST(Integration, GnpGiantFractionMatchesTheory) {
  // The percolation substrate reproduces the classical G(n, c/n) giant
  // fraction beta(c) — ties sampler + cluster analysis + theory together.
  const std::uint64_t n = 3000;
  const CompleteGraph g(n);
  const double c = 2.0;
  Summary fraction;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const HashEdgeSampler sampler(c / static_cast<double>(n), seed);
    fraction.add(analyze_components(g, sampler).largest_fraction());
  }
  EXPECT_NEAR(fraction.mean(), theory::gnp_giant_fraction(c), 0.03);
}

TEST(Integration, GaltonWatsonPredictsDoubleTreeMirroredBranches) {
  // The GW recursion q_n(p^2) must match the empirical probability that the
  // paired-oracle router succeeds (a doubly-open root-to-leaf branch).
  const int depth = 9;
  const DoubleBinaryTree tree(depth);
  DoubleTreePairedOracleRouter router(tree);
  const double p = 0.8;
  int successes = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    const HashEdgeSampler sampler(p, derive_seed(17, static_cast<std::uint64_t>(t)));
    ProbeContext ctx(tree, sampler, tree.root1(), RoutingMode::kOracle);
    successes += router.route(ctx, tree.root1(), tree.root2()).has_value() ? 1 : 0;
  }
  const BinaryGaltonWatson gw(p * p);
  const Interval ci = wilson_interval(static_cast<std::uint64_t>(successes),
                                      static_cast<std::uint64_t>(trials), 4.0);
  EXPECT_TRUE(ci.contains(gw.reach_probability(depth)))
      << "measured " << static_cast<double>(successes) / trials << " vs GW "
      << gw.reach_probability(depth);
}

TEST(Integration, ThresholdOrderingOnTheHypercube) {
  // The paper's central qualitative picture at n = 12: at p just above the
  // giant threshold the graph has a giant component but routing is brutal;
  // at p above the routing threshold it is easy.
  const int n = 12;
  const Hypercube cube(n);
  const double p_giant = 2.5 / n;                       // giant exists
  const double p_routable = 1.8 / std::sqrt(static_cast<double>(n));  // above n^{-1/2}

  EXPECT_GT(analyze_components(cube, HashEdgeSampler(p_giant, 1)).largest_fraction(),
            0.05);

  LandmarkRouter router;
  ExperimentConfig config;
  config.trials = 8;
  config.base_seed = 21;
  const auto hard =
      measure_routing(cube, p_giant, router, 0, cube.num_vertices() - 1, config);
  const auto easy =
      measure_routing(cube, p_routable, router, 0, cube.num_vertices() - 1, config);
  EXPECT_GT(hard.median_distinct, 5.0 * easy.median_distinct);
}

}  // namespace
}  // namespace faultroute
