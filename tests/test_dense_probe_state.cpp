// Dense-vs-hash probe-state equivalence suite.
//
// The dense routing engine (epoch-stamped ProbeArena memo + lock-free
// tri-state SharedProbeCache) is a pure representation change: the sampler
// is a deterministic function of the edge key, so every routed path, every
// per-message outcome, and every counter must be bit-identical to the
// hash-container backend it replaced. TrafficConfig::dense_probe_state is
// the A/B switch; this suite flips it across a topology × router × workload
// matrix (local and oracle modes, budgets, cache on/off) and holds the two
// runs equal on everything observable. A threaded test pins down the
// rewritten cache's counter identities: hits + misses == probe calls and
// misses == unique_edges(), which the sharded-map cache violated by
// counting a miss for both losers of a first-probe race.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/routers/greedy_router.hpp"
#include "graph/channel_index.hpp"
#include "graph/hypercube.hpp"
#include "random/rng.hpp"
#include "sim/registry.hpp"
#include "traffic/shared_probe_cache.hpp"
#include "traffic/traffic_engine.hpp"
#include "traffic/workload.hpp"

namespace faultroute {
namespace {

void expect_identical(const TrafficResult& a, const TrafficResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.messages, b.messages) << label;
  EXPECT_EQ(a.routed, b.routed) << label;
  EXPECT_EQ(a.failed_routing, b.failed_routing) << label;
  EXPECT_EQ(a.censored, b.censored) << label;
  EXPECT_EQ(a.invalid_paths, b.invalid_paths) << label;
  EXPECT_EQ(a.delivered, b.delivered) << label;
  EXPECT_EQ(a.stranded, b.stranded) << label;
  EXPECT_EQ(a.total_distinct_probes, b.total_distinct_probes) << label;
  EXPECT_EQ(a.unique_edges_probed, b.unique_edges_probed) << label;
  EXPECT_EQ(a.max_edge_load, b.max_edge_load) << label;
  EXPECT_EQ(a.mean_edge_load, b.mean_edge_load) << label;  // exact: same doubles
  EXPECT_EQ(a.edges_used, b.edges_used) << label;
  EXPECT_EQ(a.makespan, b.makespan) << label;
  EXPECT_EQ(a.mean_queueing_delay, b.mean_queueing_delay) << label;
  EXPECT_EQ(a.max_queueing_delay, b.max_queueing_delay) << label;
  EXPECT_EQ(a.mean_path_edges, b.mean_path_edges) << label;
  EXPECT_EQ(a.sim_steps, b.sim_steps) << label;
  EXPECT_EQ(a.admission_events, b.admission_events) << label;
  EXPECT_EQ(a.transmissions, b.transmissions) << label;
  EXPECT_EQ(a.peak_active_channels, b.peak_active_channels) << label;
  EXPECT_EQ(a.channels, b.channels) << label;
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size()) << label;
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    const MessageOutcome& x = a.outcomes[i];
    const MessageOutcome& y = b.outcomes[i];
    ASSERT_EQ(x.routed, y.routed) << label << " msg " << i;
    ASSERT_EQ(x.censored, y.censored) << label << " msg " << i;
    ASSERT_EQ(x.delivered, y.delivered) << label << " msg " << i;
    ASSERT_EQ(x.distinct_probes, y.distinct_probes) << label << " msg " << i;
    ASSERT_EQ(x.path_edges, y.path_edges) << label << " msg " << i;
    ASSERT_EQ(x.finish_time, y.finish_time) << label << " msg " << i;
    ASSERT_EQ(x.queueing_delay, y.queueing_delay) << label << " msg " << i;
  }
}

struct EquivalenceCase {
  std::string topology;
  std::string router;
  std::string workload;
  double p;
  std::uint64_t budget = 0;  // 0 = unbounded
};

void check_dense_equals_hash(const EquivalenceCase& spec, bool shared_cache,
                             unsigned threads) {
  const auto graph = sim::make_topology(spec.topology);
  const HashEdgeSampler env(spec.p, derive_seed(2005, 7));
  WorkloadConfig workload = sim::make_workload(spec.workload);
  workload.messages = 96;
  workload.seed = derive_seed(2005, 8);
  const auto messages = generate_workload(*graph, workload);
  const auto factory = [&]() { return sim::make_router(spec.router, *graph); };

  TrafficConfig config;
  config.threads = threads;
  config.use_shared_cache = shared_cache;
  if (spec.budget > 0) config.probe_budget = spec.budget;

  TrafficConfig dense = config;
  dense.dense_probe_state = true;
  TrafficConfig hash = config;
  hash.dense_probe_state = false;

  expect_identical(run_traffic(*graph, env, factory, messages, dense),
                   run_traffic(*graph, env, factory, messages, hash),
                   spec.topology + "/" + spec.router + "/" + spec.workload +
                       " p=" + std::to_string(spec.p) +
                       " budget=" + std::to_string(spec.budget) +
                       (shared_cache ? " cached" : " uncached") + " threads=" +
                       std::to_string(threads));
}

TEST(DenseProbeState, MatchesHashBackendAcrossTopologiesRoutersAndModes) {
  // Local-mode routers on structured families, oracle routers on G(n,p),
  // budgets tight enough to censor, the butterfly's parallel edges, and a
  // Poisson stream — the regimes whose probe patterns differ most.
  const std::vector<EquivalenceCase> cases = {
      {"hypercube:8", "landmark", "permutation", 0.55},
      {"hypercube:8", "best-first", "random-pairs", 0.6},
      {"torus:2:12", "landmark", "poisson:2", 0.7},
      {"de_bruijn:8", "greedy", "random-pairs", 0.55},
      {"butterfly:4", "best-first", "bisection", 0.7},
      {"hypercube:8", "flood", "random-pairs", 0.5, /*budget=*/400},
      {"complete:128", "gnp-oracle", "random-pairs", 0.03},
      {"complete:128", "gnp-local", "random-pairs", 0.03},
  };
  for (const auto& spec : cases) {
    check_dense_equals_hash(spec, /*shared_cache=*/true, /*threads=*/1);
  }
}

TEST(DenseProbeState, MatchesHashBackendWithoutTheSharedCache) {
  // With the cache off the dense backend talks straight to the raw sampler
  // through is_open_indexed's default; the answers must not care.
  check_dense_equals_hash({"hypercube:8", "landmark", "permutation", 0.55},
                          /*shared_cache=*/false, /*threads=*/1);
  check_dense_equals_hash({"hypercube:8", "flood", "random-pairs", 0.5, 400},
                          /*shared_cache=*/false, /*threads=*/1);
}

TEST(DenseProbeState, MatchesHashBackendUnderThreadedRouting) {
  // Per-thread arenas + the lock-free cache versus per-message hash
  // containers + (the same) cache, 4 workers each.
  check_dense_equals_hash({"hypercube:8", "best-first", "random-pairs", 0.6},
                          /*shared_cache=*/true, /*threads=*/4);
  check_dense_equals_hash({"torus:2:12", "landmark", "poisson:2", 0.7},
                          /*shared_cache=*/true, /*threads=*/4);
}

TEST(DenseProbeState, DenseRunIsDeterministicAcrossThreadCounts) {
  const auto run_with = [](unsigned threads) {
    const Hypercube g(8);
    const HashEdgeSampler env(0.6, 11);
    WorkloadConfig workload;
    workload.kind = WorkloadKind::kRandomPairs;
    workload.messages = 300;
    workload.seed = 5;
    TrafficConfig config;
    config.threads = threads;
    const auto factory = [] { return std::make_unique<BestFirstRouter>(); };
    return run_traffic(g, env, factory, generate_workload(g, workload), config);
  };
  const TrafficResult one = run_with(1);
  expect_identical(one, run_with(3), "threads=3");
  expect_identical(one, run_with(8), "threads=8");
}

// --------------------------------------------------- SharedProbeCache counters

TEST(SharedProbeCacheCounters, HitsPlusMissesEqualsProbesUnderThreadRaces) {
  // Eight threads hammer the same edge set concurrently, so first-probe
  // races are plentiful. Every call must land in exactly one counter, and a
  // miss only on actual publication: hits + misses == calls and misses ==
  // unique_edges() == the edge count. The sharded-map cache double-counted
  // here (both racers bumped misses_), breaking both identities.
  const Hypercube g(8);
  const HashEdgeSampler base(0.5, 3);
  const SharedProbeCache cache(base, g);
  constexpr int kThreads = 8;
  constexpr int kRounds = 3;
  std::atomic<std::uint64_t> calls{0};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    pool.emplace_back([&] {
      std::uint64_t local_calls = 0;
      for (int round = 0; round < kRounds; ++round) {
        for (VertexId v = 0; v < g.num_vertices(); ++v) {
          for (int i = 0; i < g.degree(v); ++i) {
            (void)cache.is_open(g.edge_key(v, i));
            ++local_calls;
          }
        }
      }
      calls.fetch_add(local_calls);
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(cache.approx_hits() + cache.approx_misses(), calls.load());
  EXPECT_EQ(cache.approx_misses(), cache.unique_edges());
  EXPECT_EQ(cache.unique_edges(), g.num_edges());
}

TEST(SharedProbeCacheCounters, ShardedOracleCountersObeyTheSameIdentities) {
  // The retained pre-rewrite cache carries the miss-counting fix too: a
  // first-probe race must not count a miss for both racers.
  const Hypercube g(8);
  const HashEdgeSampler base(0.5, 3);
  const ShardedProbeCache cache(base);
  constexpr int kThreads = 8;
  std::atomic<std::uint64_t> calls{0};
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    pool.emplace_back([&] {
      std::uint64_t local_calls = 0;
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        for (int i = 0; i < g.degree(v); ++i) {
          const EdgeKey key = g.edge_key(v, i);
          if (cache.is_open(key) != base.is_open(key)) mismatch = true;
          ++local_calls;
        }
      }
      calls.fetch_add(local_calls);
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_FALSE(mismatch);
  EXPECT_EQ(cache.approx_hits() + cache.approx_misses(), calls.load());
  EXPECT_EQ(cache.approx_misses(), cache.unique_edges());
  EXPECT_EQ(cache.unique_edges(), g.num_edges());
}

TEST(SharedProbeCacheCounters, SequentialCountsAreExact) {
  const Hypercube g(5);
  const HashEdgeSampler base(0.5, 9);
  const SharedProbeCache cache(base, g);
  // First sweep: every probe is a miss. Second sweep: every probe is a hit,
  // from either endpoint (both directions resolve to the same edge id).
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (int i = 0; i < g.degree(v); ++i) {
      const std::uint32_t edge = g.channel_index().edge_id_of(
          g.channel_index().channel_of(v, i));
      (void)cache.is_open_indexed(edge, g.edge_key(v, i));
    }
  }
  // 2E probes over E edges: E misses (first touch) + E hits (reverse side).
  EXPECT_EQ(cache.approx_misses(), g.num_edges());
  EXPECT_EQ(cache.approx_hits(), g.num_edges());
  EXPECT_EQ(cache.unique_edges(), g.num_edges());
}

}  // namespace
}  // namespace faultroute
