#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/permutation_routing.hpp"
#include "core/probe_context.hpp"
#include "core/routers/hybrid_router.hpp"
#include "core/routers/landmark_router.hpp"
#include "graph/cube_connected_cycles.hpp"
#include "graph/double_tree.hpp"
#include "graph/hypercube.hpp"
#include "graph/mesh.hpp"
#include "helpers/topology_checks.hpp"
#include "percolation/cluster_analysis.hpp"
#include "percolation/edge_sampler.hpp"
#include "sim/registry.hpp"

namespace faultroute {
namespace {

// -------------------------------------------------- CubeConnectedCycles

TEST(CubeConnectedCycles, RejectsBadOrder) {
  EXPECT_THROW(CubeConnectedCycles(2), std::invalid_argument);
  EXPECT_THROW(CubeConnectedCycles(27), std::invalid_argument);
}

TEST(CubeConnectedCycles, CountsAreExact) {
  const CubeConnectedCycles g(3);
  EXPECT_EQ(g.num_vertices(), 3u * 8u);
  EXPECT_EQ(g.num_edges(), 3u * 8u + 3u * 4u);
  for (VertexId v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(g.degree(v), 3);
}

TEST(CubeConnectedCycles, RungFlipsCursorBit) {
  const CubeConnectedCycles g(4);
  const VertexId v = g.vertex_at(2, 0b0011);
  EXPECT_EQ(g.neighbor(v, 2), g.vertex_at(2, 0b0111));
  EXPECT_EQ(g.neighbor(g.neighbor(v, 2), 2), v);  // rung is an involution
}

TEST(CubeConnectedCycles, CycleEdgesStayInRow) {
  const CubeConnectedCycles g(5);
  for (VertexId v = 0; v < g.num_vertices(); v += 7) {
    EXPECT_EQ(g.row_of(g.neighbor(v, 0)), g.row_of(v));
    EXPECT_EQ(g.row_of(g.neighbor(v, 1)), g.row_of(v));
  }
}

TEST(CubeConnectedCycles, StructuralInvariants) {
  for (const int k : {3, 4, 5}) {
    SCOPED_TRACE(k);
    faultroute::testing::check_topology_invariants(CubeConnectedCycles(k));
  }
}

TEST(CubeConnectedCycles, DiameterIsLogarithmic) {
  const CubeConnectedCycles g(5);  // 160 vertices
  std::uint64_t max_dist = 0;
  for (VertexId v = 0; v < g.num_vertices(); v += 13) {
    max_dist = std::max(max_dist, g.distance(0, v));
  }
  // Known diameter of CCC(k) is ~ 2.5k; allow slack.
  EXPECT_LE(max_dist, 16u);
  EXPECT_GE(max_dist, 5u);
}

// ---------------------------------------------------------- HybridRouter

TEST(HybridRouter, FaultFreeEqualsGreedy) {
  const Hypercube g(8);
  const HashEdgeSampler s(1.0, 1);
  HybridGreedyRouter r;
  ProbeContext ctx(g, s, 0, RoutingMode::kLocal);
  const auto path = r.route(ctx, 0, 255);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size() - 1, 8u);
  EXPECT_EQ(ctx.distinct_probes(), 8u);  // never entered the repair phase
}

TEST(HybridRouter, CompleteUnderFaults) {
  const Mesh g(2, 10);
  HybridGreedyRouter r;
  int connected_cases = 0;
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const HashEdgeSampler s(0.6, seed);
    const bool connected = *open_connected(g, s, 0, 99);
    ProbeContext ctx(g, s, 0, RoutingMode::kLocal);
    const auto path = r.route(ctx, 0, 99);
    EXPECT_EQ(path.has_value(), connected) << seed;
    if (path) {
      EXPECT_TRUE(is_valid_open_path(g, s, *path, 0, 99));
    }
    connected_cases += connected ? 1 : 0;
  }
  EXPECT_GT(connected_cases, 5);
}

TEST(HybridRouter, NeverViolatesLocality) {
  const Hypercube g(9);
  HybridGreedyRouter r;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const HashEdgeSampler s(0.35, seed);
    ProbeContext ctx(g, s, 0, RoutingMode::kLocal);
    EXPECT_NO_THROW(r.route(ctx, 0, g.num_vertices() - 1));
  }
}

TEST(HybridRouter, CheaperThanLandmarkWhenFaultsAreLight) {
  const Hypercube g(12);
  HybridGreedyRouter hybrid;
  LandmarkRouter landmark;
  double hybrid_total = 0;
  double landmark_total = 0;
  int cases = 0;
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const HashEdgeSampler s(0.7, seed);  // light faults
    if (!*open_connected(g, s, 0, g.num_vertices() - 1)) continue;
    ++cases;
    ProbeContext hc(g, s, 0, RoutingMode::kLocal);
    ASSERT_TRUE(hybrid.route(hc, 0, g.num_vertices() - 1).has_value());
    hybrid_total += static_cast<double>(hc.distinct_probes());
    ProbeContext lc(g, s, 0, RoutingMode::kLocal);
    ASSERT_TRUE(landmark.route(lc, 0, g.num_vertices() - 1).has_value());
    landmark_total += static_cast<double>(lc.distinct_probes());
  }
  ASSERT_GT(cases, 5);
  EXPECT_LT(hybrid_total, landmark_total);
}

// --------------------------------------------------- Permutation routing

TEST(PermutationRouting, FaultFreeMeshAllRouted) {
  const Mesh g(2, 8);
  const HashEdgeSampler s(1.0, 1);
  PermutationRoutingConfig config;
  config.pairs = 40;
  config.pair_seed = 7;
  const auto result = route_permutation(
      g, s, [] { return std::make_unique<LandmarkRouter>(); }, config);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_EQ(result.skipped_disconnected, 0u);
  EXPECT_EQ(result.routed, result.pairs);
  EXPECT_GE(result.max_edge_load, 1u);
  EXPECT_GE(result.mean_edge_load, 1.0);
  EXPECT_GT(result.mean_path_length(), 0.0);
}

TEST(PermutationRouting, SkipsDisconnectedPairs) {
  const Mesh g(2, 8);
  const HashEdgeSampler s(0.45, 3);  // subcritical-ish: many pairs cut off
  PermutationRoutingConfig config;
  config.pairs = 40;
  const auto result = route_permutation(
      g, s, [] { return std::make_unique<LandmarkRouter>(); }, config);
  EXPECT_GT(result.skipped_disconnected, 0u);
  EXPECT_EQ(result.failed, 0u);  // conditioning guarantees routability
}

TEST(PermutationRouting, BudgetCountsAsFailed) {
  const Hypercube g(8);
  const HashEdgeSampler s(0.8, 5);
  PermutationRoutingConfig config;
  config.pairs = 20;
  config.probe_budget = 3;  // absurd budget
  const auto result = route_permutation(
      g, s, [] { return std::make_unique<LandmarkRouter>(); }, config);
  EXPECT_GT(result.failed, 0u);
}

TEST(PermutationRouting, CongestionGrowsWithLoad) {
  const Mesh g(2, 6);
  const HashEdgeSampler s(1.0, 1);
  PermutationRoutingConfig few;
  few.pairs = 5;
  PermutationRoutingConfig many;
  many.pairs = 80;
  const auto make = [] { return std::make_unique<LandmarkRouter>(); };
  const auto light = route_permutation(g, s, make, few);
  const auto heavy = route_permutation(g, s, make, many);
  EXPECT_GE(heavy.max_edge_load, light.max_edge_load);
}

// ------------------------------------------------------ Parallel trials

TEST(ParallelTrials, MatchesSequentialExactly) {
  const Mesh g(2, 8);
  LandmarkRouter router;
  ExperimentConfig config;
  config.trials = 16;
  config.base_seed = 42;
  const auto sequential = run_routing_trials(g, 0.6, router, 0, 63, config);
  const auto parallel = run_routing_trials_parallel(
      g, 0.6, [] { return std::make_unique<LandmarkRouter>(); }, 0, 63, config, 4);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].seed, parallel[i].seed);
    EXPECT_EQ(sequential[i].distinct_probes, parallel[i].distinct_probes);
    EXPECT_EQ(sequential[i].path_edges, parallel[i].path_edges);
  }
}

TEST(ParallelTrials, PropagatesErrors) {
  const Mesh g(2, 6);
  ExperimentConfig config;
  config.trials = 4;
  config.max_resample_attempts = 3;
  EXPECT_THROW(run_routing_trials_parallel(
                   g, 0.0, [] { return std::make_unique<LandmarkRouter>(); }, 0, 35,
                   config, 2),
               std::runtime_error);
}

// ------------------------------------------------------------- Registry

TEST(Registry, BuildsEveryAdvertisedTopology) {
  for (const auto& spec : sim::topology_spec_examples()) {
    SCOPED_TRACE(spec);
    const auto graph = sim::make_topology(spec);
    ASSERT_NE(graph, nullptr);
    EXPECT_GT(graph->num_vertices(), 0u);
    EXPECT_GT(graph->num_edges(), 0u);
  }
}

TEST(Registry, BuildsEveryAdvertisedRouter) {
  const auto tree = sim::make_topology("double_tree:4");
  const auto clique = sim::make_topology("complete:16");
  for (const auto& name : sim::router_names()) {
    SCOPED_TRACE(name);
    const Topology& host = name.rfind("double-tree", 0) == 0 ? *tree : *clique;
    const auto router = sim::make_router(name, host);
    ASSERT_NE(router, nullptr);
    EXPECT_EQ(router->name().empty(), false);
  }
}

TEST(Registry, RejectsMalformedSpecs) {
  EXPECT_THROW(sim::make_topology(""), std::invalid_argument);
  EXPECT_THROW(sim::make_topology("hypercube"), std::invalid_argument);
  EXPECT_THROW(sim::make_topology("hypercube:abc"), std::invalid_argument);
  EXPECT_THROW(sim::make_topology("klein_bottle:4"), std::invalid_argument);
  EXPECT_THROW(sim::make_topology("mesh:2"), std::invalid_argument);
}

TEST(Registry, RejectsRouterTopologyMismatch) {
  const auto cube = sim::make_topology("hypercube:4");
  EXPECT_THROW(sim::make_router("double-tree-local", *cube), std::invalid_argument);
  EXPECT_THROW(sim::make_router("warp-drive", *cube), std::invalid_argument);
}

TEST(Registry, SpecsRoundTripThroughNames) {
  const auto g = sim::make_topology("torus:2:5");
  EXPECT_EQ(g->name(), "torus(d=2,side=5)");
  const auto h = sim::make_topology("ccc:4");
  EXPECT_EQ(h->name(), "ccc(k=4)");
}

}  // namespace
}  // namespace faultroute
