// On-disk CSR adjacency snapshots (graph/snapshot.hpp): format round-trip
// across every registered topology family, mmap-view equivalence with the
// owning build, the snapshot-directory cache contract (hit / miss /
// corrupt), and the corruption diagnostics that must name the offending
// header field instead of silently rebuilding.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "graph/flat_adjacency.hpp"
#include "graph/snapshot.hpp"
#include "obs/counter_registry.hpp"
#include "scenario/reporter.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "sim/registry.hpp"

namespace faultroute {
namespace {

namespace fs = std::filesystem;

/// Every registered topology family, at sizes small enough to snapshot in
/// milliseconds. butterfly:2 exercises the parallel-edge corner (distinct
/// edge keys between one vertex pair), cycle_matching the odd-degree one.
const std::vector<std::string> kFamilies = {
    "hypercube:5",   "mesh:2:6",     "torus:2:6",           "double_tree:4",
    "complete:24",   "de_bruijn:6",  "shuffle_exchange:6",  "butterfly:4",
    "butterfly:2",   "ccc:4",        "cycle_matching:64:7",
};

/// Fresh per-test scratch directory under gtest's temp root.
fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / ("faultroute_snap_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::uint64_t global_counter(const std::string& name) {
  for (const auto& entry : obs::global_registry().snapshot()) {
    if (entry.name == name) return entry.value;
  }
  return 0;
}

/// Byte surgery for the corruption fixtures.
std::vector<char> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  return {text.begin(), text.end()};
}

void write_file(const fs::path& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

/// Asserts that opening `path` throws naming `field` in the diagnostic.
void expect_rejected(const std::string& path, const std::string& field) {
  try {
    (void)read_snapshot_info(path);
    FAIL() << "snapshot '" << path << "' was accepted; expected rejection naming field '"
           << field << "'";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("field " + field), std::string::npos)
        << "diagnostic does not name field '" << field << "': " << e.what();
  }
}

// ------------------------------------------------------------- round trip

TEST(Snapshot, RoundTripsRowForRowAcrossAllFamilies) {
  const fs::path dir = scratch_dir("roundtrip");
  for (const auto& spec : kFamilies) {
    SCOPED_TRACE(spec);
    const auto graph = sim::make_topology(spec);
    const FlatAdjacency& built = graph->flat_adjacency();
    write_snapshot(snapshot_path(dir.string(), spec), spec, built);

    const auto view = open_snapshot_adjacency(dir.string(), spec, *graph);
    ASSERT_NE(view, nullptr);
    EXPECT_TRUE(view->is_view());
    EXPECT_FALSE(built.is_view());
    ASSERT_EQ(view->num_vertices(), built.num_vertices());
    ASSERT_EQ(view->num_channels(), built.num_channels());
    EXPECT_EQ(view->num_edge_ids(), built.num_edge_ids());
    EXPECT_EQ(view->memory_bytes(), 0u);  // the pages belong to the mapping

    for (VertexId v = 0; v < graph->num_vertices(); ++v) {
      ASSERT_EQ(view->row_begin(v), built.row_begin(v));
      ASSERT_EQ(view->row_end(v), built.row_end(v));
      for (int i = 0; i < built.degree(v); ++i) {
        ASSERT_EQ(view->neighbor(v, i), built.neighbor(v, i)) << "v=" << v << " i=" << i;
        ASSERT_EQ(view->edge_key(v, i), built.edge_key(v, i)) << "v=" << v << " i=" << i;
        ASSERT_EQ(view->edge_id(v, i), built.edge_id(v, i)) << "v=" << v << " i=" << i;
      }
    }
  }
}

TEST(Snapshot, InfoDecodesTheHeaderItWrote) {
  const fs::path dir = scratch_dir("info");
  const std::string spec = "hypercube:6";
  const auto graph = sim::make_topology(spec);
  const std::string path = snapshot_path(dir.string(), spec);
  write_snapshot(path, spec, graph->flat_adjacency());

  const SnapshotInfo info = read_snapshot_info(path);
  EXPECT_EQ(info.version, snap::kVersion);
  EXPECT_EQ(info.topology_spec, spec);
  EXPECT_FALSE(info.provenance.empty());  // builder's git hash
  EXPECT_EQ(info.num_vertices, graph->num_vertices());
  EXPECT_EQ(info.num_channels, graph->flat_adjacency().num_channels());
  EXPECT_EQ(info.num_edge_ids, graph->flat_adjacency().num_edge_ids());
  // offsets + neighbors + keys + edge_ids, zero-padded to an 8-byte multiple.
  const std::uint64_t unpadded =
      (info.num_vertices + 1) * 8 + static_cast<std::uint64_t>(info.num_channels) * 20;
  EXPECT_EQ(info.payload_bytes, (unpadded + 7) / 8 * 8);
  EXPECT_EQ(fs::file_size(path), snap::kHeaderBytes + info.payload_bytes);
}

TEST(Snapshot, FilenamesAreSanitizedAndStable) {
  EXPECT_EQ(snapshot_filename("hypercube:8"), "hypercube_8.snap");
  EXPECT_EQ(snapshot_filename("torus:2:64"), "torus_2_64.snap");
  EXPECT_EQ(snapshot_filename("a/b\\c d"), "a_b_c_d.snap");
  EXPECT_EQ(snapshot_path("snaps", "ccc:4"), std::string("snaps") +
                                                 static_cast<char>(fs::path::preferred_separator) +
                                                 "ccc_4.snap");
}

TEST(Snapshot, RebuildOverwritesAtomically) {
  const fs::path dir = scratch_dir("rebuild");
  const std::string spec = "mesh:2:5";
  const auto graph = sim::make_topology(spec);
  const std::string path = snapshot_path(dir.string(), spec);
  write_snapshot(path, spec, graph->flat_adjacency());
  const SnapshotInfo first = read_snapshot_info(path);
  write_snapshot(path, spec, graph->flat_adjacency());
  const SnapshotInfo second = read_snapshot_info(path);
  EXPECT_EQ(first.payload_checksum, second.payload_checksum);
  EXPECT_FALSE(fs::exists(path + ".tmp"));  // the temp sibling was renamed away
}

// ------------------------------------------------- directory-cache contract

TEST(Snapshot, AbsentSnapshotIsAMissNotAnError) {
  const fs::path dir = scratch_dir("miss");
  const auto graph = sim::make_topology("hypercube:5");
  const std::uint64_t misses_before = global_counter("graph.snapshot.misses");
  EXPECT_EQ(open_snapshot_adjacency(dir.string(), "hypercube:5", *graph), nullptr);
  EXPECT_EQ(global_counter("graph.snapshot.misses"), misses_before + 1);
}

TEST(Snapshot, HitCountsAndReportsMappedBytes) {
  const fs::path dir = scratch_dir("hit");
  const std::string spec = "hypercube:6";
  const auto graph = sim::make_topology(spec);
  const std::string path = snapshot_path(dir.string(), spec);
  write_snapshot(path, spec, graph->flat_adjacency());

  const std::uint64_t hits_before = global_counter("graph.snapshot.hits");
  const std::uint64_t bytes_before = global_counter("graph.snapshot.bytes_mapped");
  const auto view = open_snapshot_adjacency(dir.string(), spec, *graph);
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(global_counter("graph.snapshot.hits"), hits_before + 1);
  EXPECT_EQ(global_counter("graph.snapshot.bytes_mapped"),
            bytes_before + fs::file_size(path));
}

TEST(Snapshot, EmbeddedSpecMismatchThrowsInsteadOfRebuilding) {
  const fs::path dir = scratch_dir("specmismatch");
  // A file *named* for hypercube:5 whose header embeds hypercube:6: the
  // lookup must refuse it, never silently fall back to materializing.
  const auto six = sim::make_topology("hypercube:6");
  write_snapshot(snapshot_path(dir.string(), "hypercube:5"), "hypercube:6",
                 six->flat_adjacency());
  const auto five = sim::make_topology("hypercube:5");
  EXPECT_THROW((void)open_snapshot_adjacency(dir.string(), "hypercube:5", *five),
               std::runtime_error);
}

TEST(Snapshot, VertexCountMismatchThrowsFromTheViewConstructor) {
  const fs::path dir = scratch_dir("vertexmismatch");
  const auto six = sim::make_topology("hypercube:6");
  write_snapshot(snapshot_path(dir.string(), "hypercube:6"), "hypercube:6",
                 six->flat_adjacency());
  // Same spec string, wrong graph object: the non-owning view refuses to
  // alias arrays of the wrong shape.
  const auto five = sim::make_topology("hypercube:5");
  try {
    (void)open_snapshot_adjacency(dir.string(), "hypercube:6", *five);
    FAIL() << "vertex-count mismatch was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("field num_vertices"), std::string::npos)
        << e.what();
  }
}

// ------------------------------------------------------ corruption fixtures

class SnapshotCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = scratch_dir("corrupt");
    graph_ = sim::make_topology("hypercube:6");
    path_ = snapshot_path(dir_.string(), "hypercube:6");
    write_snapshot(path_, "hypercube:6", graph_->flat_adjacency());
    pristine_ = read_file(path_);
  }

  /// Reverts, applies `mutate` to a pristine copy, and expects the reader to
  /// reject it naming `field`.
  void corrupt_and_expect(const std::string& field,
                          const std::function<void(std::vector<char>&)>& mutate) {
    std::vector<char> bytes = pristine_;
    mutate(bytes);
    write_file(path_, bytes);
    expect_rejected(path_, field);
    // The directory lookup must surface the same rejection, not rebuild.
    EXPECT_THROW((void)open_snapshot_adjacency(dir_.string(), "hypercube:6", *graph_),
                 std::runtime_error);
  }

  fs::path dir_;
  std::unique_ptr<Topology> graph_;
  std::string path_;
  std::vector<char> pristine_;
};

TEST_F(SnapshotCorruption, TruncatedHeader) {
  corrupt_and_expect("header_bytes", [](std::vector<char>& b) { b.resize(100); });
}

TEST_F(SnapshotCorruption, TruncatedPayload) {
  corrupt_and_expect("payload_bytes", [](std::vector<char>& b) { b.resize(b.size() - 8); });
}

TEST_F(SnapshotCorruption, FlippedPayloadByte) {
  corrupt_and_expect("payload_checksum",
                     [](std::vector<char>& b) { b[snap::kHeaderBytes + 17] ^= 0x40; });
}

TEST_F(SnapshotCorruption, BadMagic) {
  corrupt_and_expect("magic", [](std::vector<char>& b) { b[0] = 'X'; });
}

TEST_F(SnapshotCorruption, UnknownVersion) {
  // Bumping the version also breaks the header checksum, so re-sign the
  // header: flip the version byte and recompute the checksum over words
  // [0, 248) the same way the writer does.
  corrupt_and_expect("version", [](std::vector<char>& b) {
    b[8] = 2;
    std::uint64_t words[31];
    std::memcpy(words, b.data(), sizeof words);
    const std::uint64_t sum = fnv1a_words(words, 31);
    std::memcpy(b.data() + 248, &sum, 8);  // little-endian host (guarded at open)
  });
}

TEST_F(SnapshotCorruption, FlippedHeaderByte) {
  // A flipped topology-spec byte without re-signing trips the header
  // checksum before any field is trusted.
  corrupt_and_expect("header_checksum", [](std::vector<char>& b) { b[60] ^= 0x01; });
}

// ----------------------------------------- end-to-end equivalence (scenario)

std::string run_report(const scenario::ScenarioSpec& spec) {
  std::ostringstream out;
  scenario::JsonLinesReporter reporter(out);
  (void)scenario::run_scenario(spec, reporter);
  return out.str();
}

TEST(Snapshot, ScenarioOverSnapshotDirIsByteIdenticalAndMaterializesNothing) {
  const fs::path dir = scratch_dir("scenario");
  auto spec = scenario::parse_scenario(
      "topology = hypercube:6, butterfly:3\n"
      "router = landmark, greedy\n"
      "p = 0.4, 0.7\n"
      "messages = 48; trials = 2; seed = 77\n");
  const std::string cold = run_report(spec);

  for (const auto& topo : spec.topologies) {
    const auto graph = sim::make_topology(topo);
    write_snapshot(snapshot_path(dir.string(), topo), topo, graph->flat_adjacency());
  }
  const std::uint64_t built_before = global_counter("graph.flat_adjacency.materializations");
  spec.snapshot_dir = dir.string();
  const std::string warm = run_report(spec);
  EXPECT_EQ(warm, cold);
  // The warm run resolved both topologies from the mapped snapshots: the
  // runner's own graphs never materialized an owning FlatAdjacency.
  EXPECT_EQ(global_counter("graph.flat_adjacency.materializations"), built_before);
}

TEST(Snapshot, ScenarioWithCorruptSnapshotFailsTheRun) {
  const fs::path dir = scratch_dir("scenario_corrupt");
  const auto graph = sim::make_topology("hypercube:6");
  const std::string path = snapshot_path(dir.string(), "hypercube:6");
  write_snapshot(path, "hypercube:6", graph->flat_adjacency());
  auto bytes = read_file(path);
  bytes[snap::kHeaderBytes + 3] ^= 0x10;
  write_file(path, bytes);

  auto spec = scenario::parse_scenario("topology = hypercube:6; messages = 8");
  spec.snapshot_dir = dir.string();
  std::ostringstream out;
  scenario::JsonLinesReporter reporter(out);
  EXPECT_THROW((void)scenario::run_scenario(spec, reporter), std::runtime_error);
  EXPECT_TRUE(out.str().empty());  // fail-fast: nothing was reported
}

// --------------------------------------------------- kAuto fallback counter

TEST(Snapshot, AutoFallbackPastBudgetIsCounted) {
  const auto graph = sim::make_topology("hypercube:7");  // 128 vertices
  const std::uint64_t before = global_counter("graph.flat_adjacency.auto_fallbacks");
  // Within budget: resolves the cached snapshot, no fallback counted.
  EXPECT_NE(resolve_adjacency(*graph, AdjacencyMode::kAuto, 128), nullptr);
  EXPECT_EQ(global_counter("graph.flat_adjacency.auto_fallbacks"), before);
  // Past budget: virtual dispatch, counted.
  EXPECT_EQ(resolve_adjacency(*graph, AdjacencyMode::kAuto, 127), nullptr);
  EXPECT_EQ(global_counter("graph.flat_adjacency.auto_fallbacks"), before + 1);
}

}  // namespace
}  // namespace faultroute
