// Flat CSR adjacency snapshot suite.
//
// The snapshot (graph/flat_adjacency.hpp) is a pure representation change:
// every slot of every row must agree with the implicit virtual interface,
// and every pipeline that can run over it — routing, traffic, percolation
// analyses, permutation batches — must produce bit-identical results under
// AdjacencyMode::kFlat and kImplicit. This suite pins both: property tests
// across every registered topology family (including the k=2 wrapped
// butterfly's parallel edges), and whole-pipeline differential runs across
// routers, workloads, budgets, and thread counts. The satellite pieces ride
// along: the indexed-memo samplers and the dense edge-load accumulation.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/edge_load.hpp"
#include "core/permutation_routing.hpp"
#include "core/probe_context.hpp"
#include "graph/channel_index.hpp"
#include "graph/flat_adjacency.hpp"
#include "graph/hypercube.hpp"
#include "percolation/chemical_distance.hpp"
#include "percolation/cluster_analysis.hpp"
#include "percolation/edge_sampler.hpp"
#include "percolation/override_sampler.hpp"
#include "percolation/threshold.hpp"
#include "random/rng.hpp"
#include "scenario/spec.hpp"
#include "sim/registry.hpp"
#include "traffic/traffic_engine.hpp"
#include "traffic/workload.hpp"

namespace faultroute {
namespace {

/// Every registered topology family at unit-test scale; butterfly:2 is the
/// parallel-edge stress case (distinct edges between the same endpoints).
const std::vector<std::string> kFamilies = {
    "hypercube:5",  "mesh:2:6",           "torus:2:6", "double_tree:4",
    "complete:24",  "de_bruijn:6",        "shuffle_exchange:6",
    "butterfly:4",  "butterfly:2",        "ccc:4",     "cycle_matching:64:7",
};

TEST(FlatAdjacency, AgreesRowForRowWithVirtualInterfaceAcrossFamilies) {
  for (const std::string& spec : kFamilies) {
    const auto graph = sim::make_topology(spec);
    const ChannelIndex& index = graph->channel_index();
    const FlatAdjacency& flat = graph->flat_adjacency();

    EXPECT_EQ(flat.num_vertices(), graph->num_vertices()) << spec;
    EXPECT_EQ(flat.num_channels(), index.num_channels()) << spec;
    EXPECT_EQ(flat.num_edge_ids(), index.num_edge_ids()) << spec;
    EXPECT_EQ(&flat.graph(), graph.get()) << spec;

    for (VertexId v = 0; v < graph->num_vertices(); ++v) {
      const int deg = graph->degree(v);
      ASSERT_EQ(flat.degree(v), deg) << spec << " v=" << v;
      ASSERT_EQ(flat.row_end(v) - flat.row_begin(v), static_cast<std::uint64_t>(deg))
          << spec << " v=" << v;
      for (int i = 0; i < deg; ++i) {
        const VertexId w = graph->neighbor(v, i);
        const EdgeKey key = graph->edge_key(v, i);
        ASSERT_EQ(flat.neighbor(v, i), w) << spec << " v=" << v << " i=" << i;
        ASSERT_EQ(flat.edge_key(v, i), key) << spec << " v=" << v << " i=" << i;
        const std::uint32_t channel = index.channel_of(v, i);
        ASSERT_EQ(flat.channel_of(v, i), channel) << spec << " v=" << v << " i=" << i;
        ASSERT_EQ(flat.edge_id(v, i), index.edge_id_of(channel))
            << spec << " v=" << v << " i=" << i;
        // Row-position accessors address the same slot as (v, i).
        const std::uint64_t pos = flat.row_begin(v) + static_cast<std::uint64_t>(i);
        ASSERT_EQ(flat.neighbor_at(pos), w) << spec;
        ASSERT_EQ(flat.edge_key_at(pos), key) << spec;
        ASSERT_EQ(flat.edge_id_at(pos), flat.edge_id(v, i)) << spec;
        // The invertible-key contract round-trips through the snapshot.
        const EdgeEndpoints ends = graph->endpoints(key);
        const std::set<VertexId> expected{v, w};
        const std::set<VertexId> actual{ends.a, ends.b};
        ASSERT_EQ(actual, expected) << spec << " key=" << key;
      }
    }
  }
}

TEST(FlatAdjacency, SnapshotIsCachedOnTheTopology) {
  const Hypercube cube(5);
  const FlatAdjacency& first = cube.flat_adjacency();
  const FlatAdjacency& second = cube.flat_adjacency();
  EXPECT_EQ(&first, &second);
}

TEST(FlatAdjacency, EdgeIndexOfMatchesTopologyOverload) {
  for (const std::string spec : {"hypercube:5", "butterfly:2", "cycle_matching:64:7"}) {
    const auto graph = sim::make_topology(spec);
    const FlatAdjacency& flat = graph->flat_adjacency();
    Rng rng(11);
    for (int trial = 0; trial < 200; ++trial) {
      const VertexId u = uniform_below(rng, graph->num_vertices());
      const VertexId v = uniform_below(rng, graph->num_vertices());
      EXPECT_EQ(edge_index_of(flat, u, v), edge_index_of(*graph, u, v))
          << spec << " u=" << u << " v=" << v;
    }
    // Every actual neighbor resolves, through both the free function and
    // the view.
    const AdjacencyView view(*graph, &flat);
    for (VertexId u = 0; u < graph->num_vertices(); ++u) {
      for (int i = 0; i < graph->degree(u); ++i) {
        const VertexId w = graph->neighbor(u, i);
        EXPECT_GE(edge_index_of(flat, u, w), 0) << spec;
        EXPECT_EQ(view.edge_index_of(u, w), edge_index_of(*graph, u, w)) << spec;
      }
    }
  }
}

TEST(FlatAdjacency, ResolveAdjacencyHonoursModeAndBudget) {
  const Hypercube cube(5);  // 32 vertices
  EXPECT_EQ(resolve_adjacency(cube, AdjacencyMode::kFlat), &cube.flat_adjacency());
  EXPECT_EQ(resolve_adjacency(cube, AdjacencyMode::kImplicit), nullptr);
  EXPECT_EQ(resolve_adjacency(cube, AdjacencyMode::kAuto, 32), &cube.flat_adjacency());
  EXPECT_EQ(resolve_adjacency(cube, AdjacencyMode::kAuto, 31), nullptr);
}

TEST(FlatAdjacency, ModeNamesRoundTripAndRejectGarbage) {
  for (const AdjacencyMode mode :
       {AdjacencyMode::kFlat, AdjacencyMode::kImplicit, AdjacencyMode::kAuto}) {
    EXPECT_EQ(parse_adjacency_mode(adjacency_mode_name(mode)), mode);
  }
  EXPECT_THROW((void)parse_adjacency_mode("dense"), std::invalid_argument);
  EXPECT_THROW((void)parse_adjacency_mode(""), std::invalid_argument);
}

// ---------------------------------------------------------------- probing

TEST(FlatAdjacency, ProbeContextFlatPathMatchesImplicitOnBothBackends) {
  const auto graph = sim::make_topology("butterfly:3");
  const FlatAdjacency& flat = graph->flat_adjacency();
  const HashEdgeSampler env(0.6, 99);
  // Drive an identical probe sequence through all four backend combinations
  // (hash/dense probe state x flat/implicit adjacency) and hold every
  // answer and counter equal.
  const auto drive = [&](ProbeArena* arena, const FlatAdjacency* snapshot) {
    ProbeContext ctx(*graph, env, 0, RoutingMode::kOracle, std::nullopt, arena, snapshot);
    std::vector<bool> answers;
    for (VertexId v = 0; v < graph->num_vertices(); ++v) {
      for (int i = 0; i < graph->degree(v); ++i) {
        answers.push_back(ctx.probe(v, i));
        answers.push_back(ctx.probe(v, i));  // memo hit
      }
    }
    answers.push_back(ctx.probe_between(0, graph->neighbor(0, 0)));
    // Every slot probed twice, plus the probe_between; distinct counts each
    // undirected edge once however many slots address it.
    EXPECT_EQ(ctx.total_probes(),
              2ull * graph->channel_index().num_channels() + 1);
    EXPECT_EQ(ctx.distinct_probes(), graph->channel_index().num_edge_ids());
    return std::make_pair(answers, ctx.distinct_probes());
  };
  ProbeArena arena_a;
  ProbeArena arena_b;
  const auto implicit_hash = drive(nullptr, nullptr);
  const auto flat_hash = drive(nullptr, &flat);
  const auto implicit_dense = drive(&arena_a, nullptr);
  const auto flat_dense = drive(&arena_b, &flat);
  EXPECT_EQ(implicit_hash, flat_hash);
  EXPECT_EQ(implicit_hash, implicit_dense);
  EXPECT_EQ(implicit_hash, flat_dense);
  EXPECT_EQ(flat.graph().num_vertices(), graph->num_vertices());
}

// ---------------------------------------------------------------- traffic

void expect_identical(const TrafficResult& a, const TrafficResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.messages, b.messages) << label;
  EXPECT_EQ(a.routed, b.routed) << label;
  EXPECT_EQ(a.failed_routing, b.failed_routing) << label;
  EXPECT_EQ(a.censored, b.censored) << label;
  EXPECT_EQ(a.invalid_paths, b.invalid_paths) << label;
  EXPECT_EQ(a.delivered, b.delivered) << label;
  EXPECT_EQ(a.stranded, b.stranded) << label;
  EXPECT_EQ(a.total_distinct_probes, b.total_distinct_probes) << label;
  EXPECT_EQ(a.unique_edges_probed, b.unique_edges_probed) << label;
  EXPECT_EQ(a.max_edge_load, b.max_edge_load) << label;
  EXPECT_EQ(a.mean_edge_load, b.mean_edge_load) << label;  // exact: same doubles
  EXPECT_EQ(a.edges_used, b.edges_used) << label;
  EXPECT_EQ(a.makespan, b.makespan) << label;
  EXPECT_EQ(a.mean_queueing_delay, b.mean_queueing_delay) << label;
  EXPECT_EQ(a.max_queueing_delay, b.max_queueing_delay) << label;
  EXPECT_EQ(a.mean_path_edges, b.mean_path_edges) << label;
  EXPECT_EQ(a.sim_steps, b.sim_steps) << label;
  EXPECT_EQ(a.admission_events, b.admission_events) << label;
  EXPECT_EQ(a.transmissions, b.transmissions) << label;
  EXPECT_EQ(a.peak_active_channels, b.peak_active_channels) << label;
  EXPECT_EQ(a.channels, b.channels) << label;
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size()) << label;
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    const MessageOutcome& x = a.outcomes[i];
    const MessageOutcome& y = b.outcomes[i];
    ASSERT_EQ(x.routed, y.routed) << label << " msg " << i;
    ASSERT_EQ(x.censored, y.censored) << label << " msg " << i;
    ASSERT_EQ(x.delivered, y.delivered) << label << " msg " << i;
    ASSERT_EQ(x.distinct_probes, y.distinct_probes) << label << " msg " << i;
    ASSERT_EQ(x.path_edges, y.path_edges) << label << " msg " << i;
    ASSERT_EQ(x.finish_time, y.finish_time) << label << " msg " << i;
    ASSERT_EQ(x.queueing_delay, y.queueing_delay) << label << " msg " << i;
  }
}

struct EquivalenceCase {
  std::string topology;
  std::string router;
  std::string workload;
  double p;
  std::uint64_t budget = 0;  // 0 = unbounded
};

void check_flat_equals_implicit(const EquivalenceCase& spec) {
  const auto graph = sim::make_topology(spec.topology);
  WorkloadConfig workload = sim::make_workload(spec.workload);
  workload.messages = 96;
  workload.seed = 5;
  const auto messages = generate_workload(*graph, workload);
  const HashEdgeSampler env(spec.p, 77);
  const auto factory = [&]() { return sim::make_router(spec.router, *graph); };

  // The acceptance bar: bit-identical under both thread counts, for both
  // probe-state backends.
  for (const unsigned threads : {1u, 2u, 4u}) {
    for (const bool dense : {true, false}) {
      TrafficConfig config;
      config.threads = threads;
      config.dense_probe_state = dense;
      if (spec.budget > 0) config.probe_budget = spec.budget;

      TrafficConfig flat = config;
      flat.adjacency = AdjacencyMode::kFlat;
      TrafficConfig implicit = config;
      implicit.adjacency = AdjacencyMode::kImplicit;

      const TrafficResult a = run_traffic(*graph, env, factory, messages, flat);
      const TrafficResult b = run_traffic(*graph, env, factory, messages, implicit);
      expect_identical(a, b,
                       spec.topology + "/" + spec.router + "/" + spec.workload +
                           " threads=" + std::to_string(threads) +
                           " dense=" + std::to_string(dense));
    }
  }
}

TEST(FlatAdjacencyTraffic, BitIdenticalAcrossRoutersWorkloadsAndThreads) {
  check_flat_equals_implicit({"hypercube:7", "landmark", "permutation", 0.55});
  check_flat_equals_implicit({"hypercube:7", "greedy", "hotspot:0", 0.7});
  check_flat_equals_implicit({"torus:2:8", "best-first", "poisson:2", 0.65});
  check_flat_equals_implicit({"de_bruijn:7", "flood", "random-pairs", 0.5, 600});
  check_flat_equals_implicit({"butterfly:3", "hybrid", "bisection", 0.6});
  check_flat_equals_implicit({"ccc:4", "bidirectional", "random-pairs", 0.6});
  check_flat_equals_implicit({"complete:48", "gnp-local", "random-pairs", 0.05});
}

TEST(FlatAdjacencyTraffic, AutoModeMatchesExplicitFlatOnSmallGraphs) {
  const auto graph = sim::make_topology("hypercube:6");
  WorkloadConfig workload = sim::make_workload("permutation");
  workload.messages = 64;
  workload.seed = 3;
  const auto messages = generate_workload(*graph, workload);
  const HashEdgeSampler env(0.6, 13);
  const auto factory = [&]() { return sim::make_router("landmark", *graph); };
  TrafficConfig auto_config;  // default adjacency = kAuto
  TrafficConfig flat_config;
  flat_config.adjacency = AdjacencyMode::kFlat;
  expect_identical(run_traffic(*graph, env, factory, messages, auto_config),
                   run_traffic(*graph, env, factory, messages, flat_config), "auto-vs-flat");
}

TEST(FlatAdjacencyTraffic, PermutationBatchMatchesAcrossBackends) {
  const auto graph = sim::make_topology("de_bruijn:6");
  const HashEdgeSampler env(0.6, 21);
  const auto factory = [&]() { return sim::make_router("landmark", *graph); };
  PermutationRoutingConfig flat_config;
  flat_config.pairs = 64;
  flat_config.adjacency = AdjacencyMode::kFlat;
  PermutationRoutingConfig implicit_config = flat_config;
  implicit_config.adjacency = AdjacencyMode::kImplicit;
  const auto a = route_permutation(*graph, env, factory, flat_config);
  const auto b = route_permutation(*graph, env, factory, implicit_config);
  EXPECT_EQ(a.pairs, b.pairs);
  EXPECT_EQ(a.routed, b.routed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.skipped_disconnected, b.skipped_disconnected);
  EXPECT_EQ(a.total_probes, b.total_probes);
  EXPECT_EQ(a.total_path_edges, b.total_path_edges);
  EXPECT_EQ(a.max_edge_load, b.max_edge_load);
  EXPECT_EQ(a.mean_edge_load, b.mean_edge_load);
}

// ------------------------------------------------------------- percolation

TEST(FlatAdjacencyPercolation, ClusterAnalysesMatchAcrossBackends) {
  for (const std::string& spec : kFamilies) {
    for (const double p : {0.3, 0.6}) {
      const auto graph = sim::make_topology(spec);
      const HashEdgeSampler env(p, 4242);

      const ComponentSummary flat = analyze_components(*graph, env, AdjacencyMode::kFlat);
      const ComponentSummary implicit =
          analyze_components(*graph, env, AdjacencyMode::kImplicit);
      EXPECT_EQ(flat.num_vertices, implicit.num_vertices) << spec;
      EXPECT_EQ(flat.num_open_edges, implicit.num_open_edges) << spec;
      EXPECT_EQ(flat.num_components, implicit.num_components) << spec;
      EXPECT_EQ(flat.largest, implicit.largest) << spec;
      EXPECT_EQ(flat.second_largest, implicit.second_largest) << spec;

      // BFS visit order, connectivity verdicts, and shortest open paths are
      // equal query-for-query.
      const VertexId far = graph->num_vertices() - 1;
      EXPECT_EQ(open_cluster_of(*graph, env, 0, 0, AdjacencyMode::kFlat),
                open_cluster_of(*graph, env, 0, 0, AdjacencyMode::kImplicit))
          << spec;
      EXPECT_EQ(open_cluster_of(*graph, env, 0, 5, AdjacencyMode::kFlat),
                open_cluster_of(*graph, env, 0, 5, AdjacencyMode::kImplicit))
          << spec;
      EXPECT_EQ(open_connected(*graph, env, 0, far, 0, AdjacencyMode::kFlat),
                open_connected(*graph, env, 0, far, 0, AdjacencyMode::kImplicit))
          << spec;
      EXPECT_EQ(open_connected(*graph, env, 0, far, 4, AdjacencyMode::kFlat),
                open_connected(*graph, env, 0, far, 4, AdjacencyMode::kImplicit))
          << spec;
      const ChemicalPathResult flat_path =
          chemical_path(*graph, env, 0, far, 0, AdjacencyMode::kFlat);
      const ChemicalPathResult implicit_path =
          chemical_path(*graph, env, 0, far, 0, AdjacencyMode::kImplicit);
      EXPECT_EQ(flat_path.distance, implicit_path.distance) << spec;
      EXPECT_EQ(flat_path.path, implicit_path.path) << spec;
    }
  }
}

TEST(FlatAdjacencyPercolation, LargestClusterOrderMatchesAcrossBackends) {
  const auto graph = sim::make_topology("torus:2:8");
  const auto flat_order = largest_cluster_order(*graph, AdjacencyMode::kFlat);
  const auto implicit_order = largest_cluster_order(*graph, AdjacencyMode::kImplicit);
  for (const double p : {0.2, 0.5, 0.8}) {
    EXPECT_EQ(flat_order(p, 9), implicit_order(p, 9)) << p;
  }
}

// --------------------------------------------------------------- samplers

TEST(IndexedMemoSamplers, ExplicitSamplerIndexedMatchesKeyedAndSurvivesMutation) {
  const auto graph = sim::make_topology("butterfly:2");  // parallel edges
  const FlatAdjacency& flat = graph->flat_adjacency();
  ExplicitEdgeSampler sampler(/*default_open=*/false);
  sampler.index_edges(*graph);
  Rng rng(3);
  for (VertexId v = 0; v < graph->num_vertices(); ++v) {
    for (int i = 0; i < graph->degree(v); ++i) {
      if (uniform_below(rng, 2) == 0) sampler.set(flat.edge_key(v, i), true);
    }
  }
  const auto check_all = [&]() {
    for (VertexId v = 0; v < graph->num_vertices(); ++v) {
      for (int i = 0; i < graph->degree(v); ++i) {
        const EdgeKey key = flat.edge_key(v, i);
        const std::uint32_t id = flat.edge_id(v, i);
        // Twice: miss path, then memo-hit path.
        ASSERT_EQ(sampler.is_open_indexed(id, key), sampler.is_open(key));
        ASSERT_EQ(sampler.is_open_indexed(id, key), sampler.is_open(key));
      }
    }
  };
  check_all();
  // Mutation after queries must invalidate the memo, not serve stale bytes.
  sampler.set(flat.edge_key(0, 0), false);
  EXPECT_FALSE(sampler.is_open_indexed(flat.edge_id(0, 0), flat.edge_key(0, 0)));
  sampler.set(flat.edge_key(0, 0), true);
  EXPECT_TRUE(sampler.is_open_indexed(flat.edge_id(0, 0), flat.edge_key(0, 0)));
  check_all();
  // Out-of-space ids fall back to the keyed path.
  EXPECT_EQ(sampler.is_open_indexed(flat.num_edge_ids() + 7, flat.edge_key(0, 0)),
            sampler.is_open(flat.edge_key(0, 0)));
}

TEST(IndexedMemoSamplers, OverrideSamplerIndexedMatchesKeyedAndSurvivesMutation) {
  const auto graph = sim::make_topology("hypercube:5");
  const FlatAdjacency& flat = graph->flat_adjacency();
  const HashEdgeSampler base(0.7, 55);
  OverrideSampler sampler(base);
  sampler.index_edges(*graph);
  const auto check_all = [&]() {
    for (VertexId v = 0; v < graph->num_vertices(); ++v) {
      for (int i = 0; i < graph->degree(v); ++i) {
        const EdgeKey key = flat.edge_key(v, i);
        const std::uint32_t id = flat.edge_id(v, i);
        ASSERT_EQ(sampler.is_open_indexed(id, key), sampler.is_open(key));
        ASSERT_EQ(sampler.is_open_indexed(id, key), sampler.is_open(key));
      }
    }
  };
  check_all();
  sampler.close_all(incident_cut(*graph, 0));  // adversary arrives mid-run
  EXPECT_FALSE(sampler.is_open_indexed(flat.edge_id(0, 0), flat.edge_key(0, 0)));
  check_all();
  sampler.force(flat.edge_key(0, 0), true);
  EXPECT_TRUE(sampler.is_open_indexed(flat.edge_id(0, 0), flat.edge_key(0, 0)));
  check_all();
}

TEST(IndexedMemoSamplers, OverrideSamplerNeverServesStaleBaseAnswers) {
  // The override memo must only cache the sampler's *own* override state:
  // un-forced edges delegate to the base live, so a mutable base changing
  // after indexed queries can never make is_open_indexed contradict
  // is_open.
  const auto graph = sim::make_topology("hypercube:4");
  const FlatAdjacency& flat = graph->flat_adjacency();
  ExplicitEdgeSampler base(/*default_open=*/true);
  OverrideSampler sampler(base);
  sampler.index_edges(*graph);
  const EdgeKey key = flat.edge_key(0, 0);
  const std::uint32_t id = flat.edge_id(0, 0);
  EXPECT_TRUE(sampler.is_open_indexed(id, key));  // memoizes "no override"
  base.set(key, false);                           // base mutates underneath
  EXPECT_FALSE(sampler.is_open(key));
  EXPECT_FALSE(sampler.is_open_indexed(id, key));  // must follow the base
  base.set(key, true);
  EXPECT_TRUE(sampler.is_open_indexed(id, key));
}

// -------------------------------------------------------------- edge load

TEST(DenseEdgeLoad, IdAndKeyAccumulationsSummarizeIdentically) {
  const auto graph = sim::make_topology("butterfly:2");
  const FlatAdjacency& flat = graph->flat_adjacency();
  std::unordered_map<EdgeKey, std::uint64_t> by_key;
  std::vector<std::uint64_t> by_id(flat.num_edge_ids(), 0);
  std::vector<std::uint32_t> used;
  Rng rng(17);
  for (int hit = 0; hit < 500; ++hit) {
    const VertexId v = uniform_below(rng, graph->num_vertices());
    const int deg = graph->degree(v);
    if (deg == 0) continue;
    const int i = static_cast<int>(uniform_below(rng, static_cast<std::uint64_t>(deg)));
    ++by_key[flat.edge_key(v, i)];
    const std::uint32_t id = flat.edge_id(v, i);
    if (by_id[id]++ == 0) used.push_back(id);
  }
  const EdgeLoadStats keyed = summarize_edge_load(by_key);
  const EdgeLoadStats dense = summarize_edge_id_load(by_id, used);
  EXPECT_EQ(dense.max_load, keyed.max_load);
  EXPECT_EQ(dense.edges_used, keyed.edges_used);
  EXPECT_EQ(dense.total, keyed.total);
  EXPECT_EQ(dense.mean_load, keyed.mean_load);
}

// ---------------------------------------------------------------- scenario

TEST(ScenarioAdjacencyKey, ParsesValidatesAndRejectsGarbage) {
  const scenario::ScenarioSpec spec =
      scenario::parse_scenario("topology = hypercube:5; adjacency = implicit");
  EXPECT_EQ(spec.adjacency, "implicit");
  EXPECT_EQ(scenario::parse_scenario("topology = hypercube:5").adjacency, "auto");
  EXPECT_THROW((void)scenario::parse_scenario("topology = hypercube:5; adjacency = dense"),
               std::invalid_argument);
}

}  // namespace
}  // namespace faultroute
