#pragma once

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "graph/topology.hpp"

namespace faultroute::testing {

/// Structural invariants every Topology must satisfy. These are exhaustive
/// over the graph, so call them on small instances only.

/// neighbor() is symmetric and edge keys agree across the two endpoints:
/// for every incident edge (v, i) there is a matching (w, j) with the same
/// canonical key, and the match is a bijection (parallel edges pair up).
inline void check_adjacency_symmetry(const Topology& g) {
  const std::uint64_t n = g.num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    const int deg = g.degree(v);
    for (int i = 0; i < deg; ++i) {
      const VertexId w = g.neighbor(v, i);
      ASSERT_LT(w, n) << g.name() << ": neighbor out of range at (" << v << "," << i << ")";
      ASSERT_NE(w, v) << g.name() << ": self-loop at " << v;
      const EdgeKey key = g.edge_key(v, i);
      // Exactly one incident slot of w must carry the same key back to v.
      int matches = 0;
      const int deg_w = g.degree(w);
      for (int j = 0; j < deg_w; ++j) {
        if (g.neighbor(w, j) == v && g.edge_key(w, j) == key) ++matches;
      }
      ASSERT_EQ(matches, 1) << g.name() << ": edge (" << v << "," << w
                            << ") key mismatch or multiplicity error";
      // The canonical key must decode back to this endpoint pair.
      const EdgeEndpoints ends = g.endpoints(key);
      const bool forward = ends.a == v && ends.b == w;
      const bool backward = ends.a == w && ends.b == v;
      ASSERT_TRUE(forward || backward)
          << g.name() << ": endpoints(" << key << ") != {" << v << "," << w << "}";
    }
  }
}

/// Every canonical key appears from exactly two (vertex, slot) pairs, the
/// number of distinct keys equals num_edges(), and the degree sum is twice
/// the edge count.
inline void check_edge_key_census(const Topology& g) {
  const std::uint64_t n = g.num_vertices();
  std::map<EdgeKey, int> key_count;
  std::uint64_t degree_sum = 0;
  for (VertexId v = 0; v < n; ++v) {
    const int deg = g.degree(v);
    degree_sum += static_cast<std::uint64_t>(deg);
    for (int i = 0; i < deg; ++i) ++key_count[g.edge_key(v, i)];
  }
  for (const auto& [key, count] : key_count) {
    ASSERT_EQ(count, 2) << g.name() << ": key " << key << " seen " << count << " times";
  }
  ASSERT_EQ(key_count.size(), g.num_edges()) << g.name() << ": num_edges mismatch";
  ASSERT_EQ(degree_sum, 2 * g.num_edges()) << g.name() << ": handshake lemma violated";
}

/// distance() agrees with a BFS on the implicit graph for the given pairs.
inline void check_distance_against_bfs(const Topology& g,
                                       const std::vector<std::pair<VertexId, VertexId>>& pairs) {
  for (const auto& [u, v] : pairs) {
    // The base-class implementation *is* a BFS; invoke it explicitly so
    // overrides are compared against it.
    const std::uint64_t bfs = g.Topology::distance(u, v);
    ASSERT_EQ(g.distance(u, v), bfs)
        << g.name() << ": distance(" << u << "," << v << ") disagrees with BFS";
  }
}

/// shortest_path() endpoints, adjacency of consecutive vertices, and length
/// == distance, for the given pairs.
inline void check_shortest_path(const Topology& g,
                                const std::vector<std::pair<VertexId, VertexId>>& pairs) {
  for (const auto& [u, v] : pairs) {
    const auto path = g.shortest_path(u, v);
    ASSERT_FALSE(path.empty()) << g.name() << ": no path " << u << " -> " << v;
    ASSERT_EQ(path.front(), u);
    ASSERT_EQ(path.back(), v);
    ASSERT_EQ(path.size() - 1, g.distance(u, v))
        << g.name() << ": path is not shortest for (" << u << "," << v << ")";
    for (std::size_t s = 0; s + 1 < path.size(); ++s) {
      ASSERT_GE(edge_index_of(g, path[s], path[s + 1]), 0)
          << g.name() << ": path step " << s << " not an edge";
    }
    // A shortest path never repeats vertices.
    const std::set<VertexId> unique(path.begin(), path.end());
    ASSERT_EQ(unique.size(), path.size()) << g.name() << ": path repeats a vertex";
  }
}

/// Runs every structural check on a small topology.
inline void check_topology_invariants(const Topology& g) {
  check_adjacency_symmetry(g);
  check_edge_key_census(g);
}

}  // namespace faultroute::testing
