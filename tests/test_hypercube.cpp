#include <gtest/gtest.h>

#include <bit>

#include "graph/hypercube.hpp"
#include "helpers/topology_checks.hpp"

namespace faultroute {
namespace {

TEST(Hypercube, RejectsBadDimension) {
  EXPECT_THROW(Hypercube(0), std::invalid_argument);
  EXPECT_THROW(Hypercube(41), std::invalid_argument);
  EXPECT_NO_THROW(Hypercube(1));
  EXPECT_NO_THROW(Hypercube(40));
}

TEST(Hypercube, CountsAreExact) {
  const Hypercube g(5);
  EXPECT_EQ(g.num_vertices(), 32u);
  EXPECT_EQ(g.num_edges(), 5u * 16u);
  EXPECT_EQ(g.degree(0), 5);
  EXPECT_EQ(g.dimension(), 5);
}

TEST(Hypercube, NeighborsFlipOneBit) {
  const Hypercube g(6);
  for (VertexId v = 0; v < g.num_vertices(); v += 7) {
    for (int i = 0; i < 6; ++i) {
      const VertexId w = g.neighbor(v, i);
      EXPECT_EQ(std::popcount(v ^ w), 1);
      EXPECT_EQ(v ^ w, 1ULL << i);
    }
  }
}

TEST(Hypercube, DistanceIsHamming) {
  const Hypercube g(8);
  EXPECT_EQ(g.distance(0, 0), 0u);
  EXPECT_EQ(g.distance(0, 255), 8u);
  EXPECT_EQ(g.distance(0b10110000, 0b10100001), 2u);
  EXPECT_EQ(g.distance(5, 5), 0u);
}

TEST(Hypercube, StructuralInvariants) {
  for (const int n : {1, 2, 3, 5, 8}) {
    SCOPED_TRACE(n);
    const Hypercube g(n);
    faultroute::testing::check_topology_invariants(g);
  }
}

TEST(Hypercube, DistanceAgreesWithBfs) {
  const Hypercube g(6);
  faultroute::testing::check_distance_against_bfs(
      g, {{0, 63}, {0, 0}, {5, 40}, {17, 17}, {1, 62}});
}

TEST(Hypercube, ShortestPathsAreValid) {
  const Hypercube g(7);
  faultroute::testing::check_shortest_path(g, {{0, 127}, {3, 96}, {12, 12}, {1, 2}});
}

TEST(Hypercube, ShortestPathFlipsAscendingBits) {
  const Hypercube g(4);
  const auto path = g.shortest_path(0b0000, 0b1010);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], 0b0000u);
  EXPECT_EQ(path[1], 0b0010u);  // bit 1 flips before bit 3
  EXPECT_EQ(path[2], 0b1010u);
}

TEST(Hypercube, EdgeKeysAreCompact) {
  // Keys live in [0, n * 2^n): lower-vertex * n + bit.
  const Hypercube g(4);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (int i = 0; i < 4; ++i) {
      EXPECT_LT(g.edge_key(v, i), g.num_vertices() * 4);
    }
  }
}

TEST(Hypercube, ImplicitWorksAtHugeDimensions) {
  // No materialisation: adjacency of a 2^40-vertex graph is still O(1).
  const Hypercube g(40);
  const VertexId v = (1ULL << 39) | 12345;
  EXPECT_EQ(g.neighbor(v, 39), v ^ (1ULL << 39));
  EXPECT_EQ(g.distance(0, (1ULL << 40) - 1), 40u);
  EXPECT_EQ(g.edge_key(v, 0), (v ^ 1ULL) < v ? (v ^ 1ULL) * 40 : v * 40);
}

class HypercubeDimensionTest : public ::testing::TestWithParam<int> {};

TEST_P(HypercubeDimensionTest, HandshakeAndSymmetry) {
  const Hypercube g(GetParam());
  faultroute::testing::check_topology_invariants(g);
}

TEST_P(HypercubeDimensionTest, AntipodalDistanceIsN) {
  const int n = GetParam();
  const Hypercube g(n);
  EXPECT_EQ(g.distance(0, g.num_vertices() - 1), static_cast<std::uint64_t>(n));
}

INSTANTIATE_TEST_SUITE_P(SmallDims, HypercubeDimensionTest, ::testing::Values(1, 2, 3, 4, 6, 9));

}  // namespace
}  // namespace faultroute
