#include <gtest/gtest.h>

#include "graph/double_tree.hpp"
#include "helpers/topology_checks.hpp"

namespace faultroute {
namespace {

using Side = DoubleBinaryTree::Side;

TEST(DoubleTree, RejectsBadDepth) {
  EXPECT_THROW(DoubleBinaryTree(0), std::invalid_argument);
  EXPECT_THROW(DoubleBinaryTree(31), std::invalid_argument);
  EXPECT_NO_THROW(DoubleBinaryTree(1));
}

TEST(DoubleTree, CountsAreExact) {
  // TT_n has 2^n leaves and 2 * (2^n - 1) internal nodes.
  const DoubleBinaryTree g(3);
  EXPECT_EQ(g.num_leaves(), 8u);
  EXPECT_EQ(g.num_vertices(), 3u * 8u - 2u);
  EXPECT_EQ(g.num_edges(), 2u * 14u);  // each tree has 2^{n+1} - 2 edges
}

TEST(DoubleTree, TinyInstance) {
  // n = 1: two leaves, two roots; each root adjacent to both leaves.
  const DoubleBinaryTree g(1);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(g.root1()), 2);
  EXPECT_EQ(g.degree(g.root2()), 2);
  EXPECT_EQ(g.degree(0), 2);
}

TEST(DoubleTree, RootsAndDegrees) {
  const DoubleBinaryTree g(4);
  EXPECT_EQ(g.degree(g.root1()), 2);
  EXPECT_EQ(g.degree(g.root2()), 2);
  for (VertexId leaf = 0; leaf < g.num_leaves(); ++leaf) EXPECT_EQ(g.degree(leaf), 2);
  // A non-root internal vertex has parent + two children.
  const VertexId internal = g.vertex_of_heap(2, Side::kTree1);
  EXPECT_EQ(g.degree(internal), 3);
}

TEST(DoubleTree, HeapRoundTrip) {
  const DoubleBinaryTree g(4);
  for (std::uint64_t h = 1; h < 2 * g.num_leaves(); ++h) {
    for (const Side side : {Side::kTree1, Side::kTree2}) {
      const VertexId v = g.vertex_of_heap(h, side);
      EXPECT_EQ(g.heap_index(v, side), h);
    }
  }
}

TEST(DoubleTree, LeavesAreSharedBetweenTrees) {
  const DoubleBinaryTree g(3);
  for (std::uint64_t h = g.num_leaves(); h < 2 * g.num_leaves(); ++h) {
    EXPECT_EQ(g.vertex_of_heap(h, Side::kTree1), g.vertex_of_heap(h, Side::kTree2));
  }
}

TEST(DoubleTree, LeafParentsAreMirrorNodes) {
  const DoubleBinaryTree g(3);
  for (VertexId leaf = 0; leaf < g.num_leaves(); ++leaf) {
    const VertexId p1 = g.neighbor(leaf, 0);
    const VertexId p2 = g.neighbor(leaf, 1);
    EXPECT_TRUE(g.is_internal(p1, Side::kTree1));
    EXPECT_TRUE(g.is_internal(p2, Side::kTree2));
    EXPECT_EQ(g.heap_index(p1, Side::kTree1), g.heap_index(p2, Side::kTree2));
  }
}

TEST(DoubleTree, MirrorEdgeKeysPairUp) {
  const DoubleBinaryTree g(4);
  for (std::uint64_t c = 2; c < 2 * g.num_leaves(); ++c) {
    const EdgeKey k1 = g.tree_edge_key(Side::kTree1, c);
    const EdgeKey k2 = g.tree_edge_key(Side::kTree2, c);
    EXPECT_NE(k1, k2);
    EXPECT_EQ(g.mirror_edge_key(k1), k2);
    EXPECT_EQ(g.mirror_edge_key(k2), k1);
  }
}

TEST(DoubleTree, RootToRootDistanceIsTwiceDepth) {
  for (const int n : {1, 2, 3, 4, 5}) {
    const DoubleBinaryTree g(n);
    EXPECT_EQ(g.distance(g.root1(), g.root2()), static_cast<std::uint64_t>(2 * n));
  }
}

TEST(DoubleTree, StructuralInvariants) {
  for (const int n : {1, 2, 3, 4, 6}) {
    SCOPED_TRACE(n);
    faultroute::testing::check_topology_invariants(DoubleBinaryTree(n));
  }
}

TEST(DoubleTree, ShortestPathRootToRoot) {
  const DoubleBinaryTree g(4);
  faultroute::testing::check_shortest_path(g, {{g.root1(), g.root2()}});
}

class DoubleTreeDepthTest : public ::testing::TestWithParam<int> {};

TEST_P(DoubleTreeDepthTest, VertexLabelsDistinguishTrees) {
  const DoubleBinaryTree g(GetParam());
  EXPECT_EQ(g.vertex_label(g.root1()), "t1:h1");
  EXPECT_EQ(g.vertex_label(g.root2()), "t2:h1");
  EXPECT_EQ(g.vertex_label(0), "leaf:0");
}

TEST_P(DoubleTreeDepthTest, EveryLeafReachesBothRootsInDepthSteps) {
  const int n = GetParam();
  const DoubleBinaryTree g(n);
  for (VertexId leaf = 0; leaf < g.num_leaves(); leaf += 3) {
    EXPECT_EQ(g.distance(leaf, g.root1()), static_cast<std::uint64_t>(n));
    EXPECT_EQ(g.distance(leaf, g.root2()), static_cast<std::uint64_t>(n));
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, DoubleTreeDepthTest, ::testing::Values(1, 2, 3, 5));

}  // namespace
}  // namespace faultroute
