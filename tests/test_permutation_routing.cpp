#include <gtest/gtest.h>

#include <memory>

#include "core/experiment.hpp"  // RouterFactory
#include "core/permutation_routing.hpp"
#include "core/routers/flood_router.hpp"
#include "core/routers/greedy_router.hpp"
#include "graph/hypercube.hpp"
#include "percolation/edge_sampler.hpp"

namespace faultroute {
namespace {

RouterFactory flood_factory() {
  return [] { return std::make_unique<FloodRouter>(); };
}

TEST(PermutationRouting, FaultFreeBatchRoutesEveryPair) {
  const Hypercube g(6);
  const HashEdgeSampler env(1.0, 1);
  PermutationRoutingConfig config;
  config.pairs = 64;
  const PermutationRoutingResult r = route_permutation(g, env, flood_factory(), config);
  EXPECT_EQ(r.skipped_disconnected, 0u);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_EQ(r.routed, r.pairs);
  EXPECT_GT(r.pairs, 0u);
  EXPECT_GE(r.mean_path_length(), 1.0);
  EXPECT_GE(r.max_edge_load, 1u);
  EXPECT_GE(static_cast<double>(r.max_edge_load), r.mean_edge_load);
}

TEST(PermutationRouting, CompleteRouterMissesNoConnectedPair) {
  // Flood is complete: under percolation every attempted (connected) pair
  // must be routed, and disconnected draws are skipped, not failed.
  const Hypercube g(7);
  const HashEdgeSampler env(0.55, 23);
  PermutationRoutingConfig config;
  config.pairs = 100;
  const PermutationRoutingResult r = route_permutation(g, env, flood_factory(), config);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_EQ(r.routed, r.pairs);
  EXPECT_LE(r.pairs + r.skipped_disconnected, config.pairs);  // == draws minus u==v
  EXPECT_GT(r.total_probes, 0u);
}

TEST(PermutationRouting, IncompleteRouterFailuresAreCounted) {
  const Hypercube g(7);
  const HashEdgeSampler env(0.5, 7);
  PermutationRoutingConfig config;
  config.pairs = 100;
  const auto factory = [] { return std::make_unique<GreedyDescentRouter>(); };
  const PermutationRoutingResult r = route_permutation(g, env, factory, config);
  EXPECT_EQ(r.routed + r.failed, r.pairs);
  EXPECT_GT(r.failed, 0u);  // pure greedy dies near the target at p ~ 1/2
}

TEST(PermutationRouting, ProbeBudgetTurnsRoutesIntoFailures) {
  const Hypercube g(7);
  const HashEdgeSampler env(0.55, 23);
  PermutationRoutingConfig tight;
  tight.pairs = 50;
  tight.probe_budget = 2;
  const PermutationRoutingResult r = route_permutation(g, env, flood_factory(), tight);
  EXPECT_GT(r.failed, 0u);
  EXPECT_EQ(r.routed + r.failed, r.pairs);
}

TEST(PermutationRouting, DeterministicInSeeds) {
  const Hypercube g(6);
  const HashEdgeSampler env(0.6, 9);
  PermutationRoutingConfig config;
  config.pairs = 40;
  config.pair_seed = 4;
  const PermutationRoutingResult a = route_permutation(g, env, flood_factory(), config);
  const PermutationRoutingResult b = route_permutation(g, env, flood_factory(), config);
  EXPECT_EQ(a.pairs, b.pairs);
  EXPECT_EQ(a.routed, b.routed);
  EXPECT_EQ(a.total_probes, b.total_probes);
  EXPECT_EQ(a.total_path_edges, b.total_path_edges);
  EXPECT_EQ(a.max_edge_load, b.max_edge_load);
  EXPECT_EQ(a.mean_edge_load, b.mean_edge_load);
}

TEST(PermutationRouting, CongestionAccountsEveryRoutedEdge) {
  // On the fault-free graph the load total is exactly the path-edge total,
  // so mean load over used edges times used edges reproduces it; with max
  // load also bounded below by the pigeonhole average over all edges.
  const Hypercube g(5);
  const HashEdgeSampler env(1.0, 2);
  PermutationRoutingConfig config;
  config.pairs = 64;
  const PermutationRoutingResult r = route_permutation(g, env, flood_factory(), config);
  ASSERT_GT(r.routed, 0u);
  const double pigeonhole =
      static_cast<double>(r.total_path_edges) / static_cast<double>(g.num_edges());
  EXPECT_GE(static_cast<double>(r.max_edge_load) + 1e-9, pigeonhole);
  EXPECT_GE(r.mean_edge_load, 1.0);  // only edges carrying >= 1 path count
}

}  // namespace
}  // namespace faultroute
