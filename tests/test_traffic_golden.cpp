// Golden equivalence suite: the event-driven delivery engine (run_traffic)
// must reproduce the legacy container-based engine (run_traffic_reference)
// bit for bit — every aggregate metric and every per-message outcome — on
// every curated scenario sweep in scenarios/*.scn, plus targeted edge cases
// (step caps, idle Poisson gaps, extra capacity). Cells and seeds replicate
// the scenario runner's contract exactly (row-major index, trial fastest,
// derive_seed(seed, 2i) / (seed, 2i+1)), at --quick scale so the whole
// matrix stays test-suite fast.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/routers/greedy_router.hpp"
#include "graph/hypercube.hpp"
#include "graph/mesh.hpp"
#include "percolation/edge_sampler.hpp"
#include "random/rng.hpp"
#include "scenario/spec.hpp"
#include "sim/registry.hpp"
#include "traffic/traffic_engine.hpp"
#include "traffic/workload.hpp"

#ifndef FAULTROUTE_SOURCE_DIR
#error "test_traffic_golden requires FAULTROUTE_SOURCE_DIR (set by CMakeLists.txt)"
#endif

namespace faultroute {
namespace {

void expect_identical(const TrafficResult& a, const TrafficResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.messages, b.messages) << label;
  EXPECT_EQ(a.routed, b.routed) << label;
  EXPECT_EQ(a.failed_routing, b.failed_routing) << label;
  EXPECT_EQ(a.censored, b.censored) << label;
  EXPECT_EQ(a.invalid_paths, b.invalid_paths) << label;
  EXPECT_EQ(a.delivered, b.delivered) << label;
  EXPECT_EQ(a.stranded, b.stranded) << label;
  EXPECT_EQ(a.total_distinct_probes, b.total_distinct_probes) << label;
  EXPECT_EQ(a.unique_edges_probed, b.unique_edges_probed) << label;
  EXPECT_EQ(a.max_edge_load, b.max_edge_load) << label;
  EXPECT_EQ(a.mean_edge_load, b.mean_edge_load) << label;  // exact: same doubles
  EXPECT_EQ(a.edges_used, b.edges_used) << label;
  EXPECT_EQ(a.makespan, b.makespan) << label;
  EXPECT_EQ(a.mean_queueing_delay, b.mean_queueing_delay) << label;
  EXPECT_EQ(a.max_queueing_delay, b.max_queueing_delay) << label;
  EXPECT_EQ(a.mean_path_edges, b.mean_path_edges) << label;
  // Engine event counters agree too: both simulations execute the same
  // timeline (channels differs by design: the reference engine has no index).
  EXPECT_EQ(a.sim_steps, b.sim_steps) << label;
  EXPECT_EQ(a.admission_events, b.admission_events) << label;
  EXPECT_EQ(a.transmissions, b.transmissions) << label;
  EXPECT_EQ(a.peak_active_channels, b.peak_active_channels) << label;
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size()) << label;
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    const MessageOutcome& x = a.outcomes[i];
    const MessageOutcome& y = b.outcomes[i];
    ASSERT_EQ(x.routed, y.routed) << label << " msg " << i;
    ASSERT_EQ(x.censored, y.censored) << label << " msg " << i;
    ASSERT_EQ(x.delivered, y.delivered) << label << " msg " << i;
    ASSERT_EQ(x.distinct_probes, y.distinct_probes) << label << " msg " << i;
    ASSERT_EQ(x.path_edges, y.path_edges) << label << " msg " << i;
    ASSERT_EQ(x.finish_time, y.finish_time) << label << " msg " << i;
    ASSERT_EQ(x.queueing_delay, y.queueing_delay) << label << " msg " << i;
  }
}

/// Runs every cell of `spec` (at --quick scale) through both engines and
/// holds them identical. Mirrors scenario::run_scenario's cell order and
/// seeding so this covers exactly the sweeps the runner would execute.
void golden_check_scenario_file(const std::string& stem) {
  const std::string path = std::string(FAULTROUTE_SOURCE_DIR) + "/scenarios/" + stem;
  scenario::ScenarioSpec spec = scenario::load_scenario_file(path);
  spec.messages = std::min<std::uint64_t>(spec.messages, 64);
  spec.trials = std::min<std::uint64_t>(spec.trials, 2);
  scenario::validate_scenario(spec);

  std::vector<std::unique_ptr<Topology>> topologies;
  for (const auto& topo_spec : spec.topologies) {
    topologies.push_back(sim::make_topology(topo_spec));
  }

  std::uint64_t index = 0;
  for (std::size_t ti = 0; ti < topologies.size(); ++ti) {
    for (const double p : spec.p_values) {
      for (const auto& router : spec.routers) {
        for (const auto& workload_spec : spec.workloads) {
          for (std::uint64_t trial = 0; trial < spec.trials; ++trial, ++index) {
            const Topology& topology = *topologies[ti];
            WorkloadConfig workload = sim::make_workload(workload_spec);
            workload.messages = spec.messages;
            workload.seed = derive_seed(spec.seed, 2 * index + 1);
            const auto messages = generate_workload(topology, workload);

            TrafficConfig config;
            config.edge_capacity = spec.edge_capacity;
            if (spec.probe_budget > 0) config.probe_budget = spec.probe_budget;
            config.max_steps = spec.max_steps;
            config.threads = 1;
            const HashEdgeSampler environment(p, derive_seed(spec.seed, 2 * index));
            const auto factory = [&]() { return sim::make_router(router, topology); };

            const TrafficResult event =
                run_traffic(topology, environment, factory, messages, config);
            const TrafficResult reference =
                run_traffic_reference(topology, environment, factory, messages, config);
            const std::string label = stem + " cell " + std::to_string(index) + " (" +
                                      spec.topologies[ti] + ", p=" + std::to_string(p) +
                                      ", " + router + ", " + workload_spec + ")";
            expect_identical(event, reference, label);
            // The event engine must also be thread-count invariant: rerun the
            // cell with an oversubscribed pool and hold it to the same report.
            TrafficConfig threaded = config;
            threaded.threads = 4;
            const TrafficResult event4 =
                run_traffic(topology, environment, factory, messages, threaded);
            expect_identical(event4, event, label + " threads=4");
          }
        }
      }
    }
  }
  EXPECT_GT(index, 0u) << stem;
}

TEST(TrafficGolden, BisectionTopologies) {
  golden_check_scenario_file("bisection_topologies.scn");
}
TEST(TrafficGolden, DebruijnRouterShootout) {
  golden_check_scenario_file("debruijn_router_shootout.scn");
}
TEST(TrafficGolden, GnpOracleGap) { golden_check_scenario_file("gnp_oracle_gap.scn"); }
TEST(TrafficGolden, HotspotMeltdown) { golden_check_scenario_file("hotspot_meltdown.scn"); }
TEST(TrafficGolden, HypercubePhase) { golden_check_scenario_file("hypercube_phase.scn"); }
TEST(TrafficGolden, MeshPoissonLoad) { golden_check_scenario_file("mesh_poisson_load.scn"); }

// ----------------------------------------------- targeted engine edge cases

RouterFactory greedy_factory() {
  return [] { return std::make_unique<BestFirstRouter>(); };
}

TEST(TrafficGolden, StepCapStrandsIdenticallyAcrossEngines) {
  // A hotspot on a line with a tiny step cap: the break-out path and the
  // stranded accounting must match, including which messages finished.
  const Mesh g(1, 16, /*wrap=*/false);
  const HashEdgeSampler env(1.0, 1);
  WorkloadConfig workload;
  workload.kind = WorkloadKind::kHotspot;
  workload.messages = 48;
  const auto messages = generate_workload(g, workload);
  for (const std::uint64_t cap : {1ull, 5ull, 23ull}) {
    TrafficConfig config;
    config.max_steps = cap;
    expect_identical(run_traffic(g, env, greedy_factory(), messages, config),
                     run_traffic_reference(g, env, greedy_factory(), messages, config),
                     "max_steps=" + std::to_string(cap));
  }
}

TEST(TrafficGolden, SparsePoissonIdleGapsSkipIdentically) {
  // Rate 0.02 spreads ~200 arrivals over ~10000 timesteps: the calendar's
  // idle-gap skip must land on exactly the timesteps the map timeline visits.
  const Hypercube g(6);
  const HashEdgeSampler env(0.8, 17);
  WorkloadConfig workload;
  workload.kind = WorkloadKind::kPoisson;
  workload.messages = 200;
  workload.arrival_rate = 0.02;
  const auto messages = generate_workload(g, workload);
  expect_identical(run_traffic(g, env, greedy_factory(), messages, {}),
                   run_traffic_reference(g, env, greedy_factory(), messages, {}),
                   "sparse poisson");
}

TEST(TrafficGolden, ExtraCapacityMatchesAcrossEngines) {
  const Mesh g(1, 16, /*wrap=*/false);
  const HashEdgeSampler env(1.0, 1);
  WorkloadConfig workload;
  workload.kind = WorkloadKind::kHotspot;
  workload.messages = 64;
  const auto messages = generate_workload(g, workload);
  for (const std::uint64_t capacity : {2ull, 4ull, 64ull}) {
    TrafficConfig config;
    config.edge_capacity = capacity;
    expect_identical(run_traffic(g, env, greedy_factory(), messages, config),
                     run_traffic_reference(g, env, greedy_factory(), messages, config),
                     "capacity=" + std::to_string(capacity));
  }
}

}  // namespace
}  // namespace faultroute
