// Observability subsystem: counter registry, phase profiler, delivery
// sampler, metrics/trace serialization — and the hard invariant that
// attaching any of it never changes a simulation result by a bit.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/routers/greedy_router.hpp"
#include "graph/hypercube.hpp"
#include "obs/build_info.hpp"
#include "obs/counter_registry.hpp"
#include "obs/delivery_sampler.hpp"
#include "obs/phase_profiler.hpp"
#include "obs/run_metrics.hpp"
#include "obs/schemas.hpp"
#include "percolation/edge_sampler.hpp"
#include "scenario/reporter.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "traffic/traffic_engine.hpp"
#include "traffic/workload.hpp"

namespace faultroute {
namespace {

using obs::CounterRegistry;
using obs::DeliverySampler;
using obs::MergeKind;
using obs::PhaseProfiler;
using obs::RunMetrics;

// ---------------------------------------------------------- CounterRegistry

TEST(CounterRegistry, SumsAreExactAcrossThreads) {
  CounterRegistry registry;
  const auto counter = registry.id("test.hits");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10'000;
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) registry.add(counter, 1);
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(registry.value(counter), kThreads * kPerThread);
}

TEST(CounterRegistry, MaxCountersMergeByMaximum) {
  CounterRegistry registry;
  const auto gauge = registry.id("test.peak", MergeKind::kMax);
  std::vector<std::thread> workers;
  for (std::uint64_t w = 1; w <= 4; ++w) {
    workers.emplace_back([&, w] {
      registry.record_max(gauge, 10 * w);
      registry.record_max(gauge, 5);  // lower value never overwrites
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(registry.value(gauge), 40u);
}

TEST(CounterRegistry, IdIsFindOrRegisterAndSnapshotIsSorted) {
  CounterRegistry registry;
  const auto b = registry.id("b.second");
  const auto a = registry.id("a.first");
  EXPECT_EQ(registry.id("b.second"), b);  // same name, same id
  EXPECT_NE(a, b);
  registry.add(a, 3);
  registry.add(b, 7);
  const auto entries = registry.snapshot();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].name, "a.first");
  EXPECT_EQ(entries[0].value, 3u);
  EXPECT_EQ(entries[1].name, "b.second");
  EXPECT_EQ(entries[1].value, 7u);
}

TEST(CounterRegistry, FreshCounterReadsZero) {
  CounterRegistry registry;
  EXPECT_EQ(registry.value(registry.id("test.untouched")), 0u);
}

TEST(CounterRegistry, ThrowsAtCapacityAndOnKindMismatch) {
  CounterRegistry small(2);
  (void)small.id("one");
  (void)small.id("two");
  EXPECT_THROW((void)small.id("three"), std::length_error);
  (void)small.id("one");  // existing names still resolve at capacity
  EXPECT_THROW((void)small.id("one", MergeKind::kMax), std::invalid_argument);
}

// ------------------------------------------------------------ PhaseProfiler

TEST(PhaseProfiler, ScopesNestIntoSlashJoinedPaths) {
  PhaseProfiler profiler;
  {
    const PhaseProfiler::Scope outer(&profiler, "outer");
    { const PhaseProfiler::Scope inner(&profiler, "inner"); }
    { const PhaseProfiler::Scope inner(&profiler, "inner"); }
  }
  const auto stats = profiler.aggregate();  // sorted by path
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].path, "outer");
  EXPECT_EQ(stats[0].count, 1u);
  EXPECT_EQ(stats[1].path, "outer/inner");
  EXPECT_EQ(stats[1].count, 2u);
  for (const auto& stat : stats) EXPECT_GE(stat.total_ms, 0.0);
  // Raw spans close inner-first and carry non-negative times.
  const auto spans = profiler.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].path, "outer/inner");
  EXPECT_EQ(spans[2].path, "outer");
  for (const auto& span : spans) {
    EXPECT_GE(span.start_us, 0.0);
    EXPECT_GE(span.dur_us, 0.0);
  }
}

TEST(PhaseProfiler, EachThreadGetsItsOwnTrack) {
  PhaseProfiler profiler;
  profiler.label_current_thread("main");
  { const PhaseProfiler::Scope scope(&profiler, "on-main"); }
  std::thread worker([&] {
    const PhaseProfiler::Scope scope(&profiler, "on-worker");
  });
  worker.join();
  const auto tracks = profiler.tracks();
  ASSERT_EQ(tracks.size(), 2u);
  EXPECT_EQ(tracks[0].id, 0u);
  EXPECT_EQ(tracks[0].name, "main");
  EXPECT_EQ(tracks[1].id, 1u);
  const auto spans = profiler.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_NE(spans[0].track, spans[1].track);
}

TEST(PhaseProfiler, NullProfilerScopeIsANoOp) {
  // The instrumentation-off contract: a null scope must be constructible and
  // destructible with no profiler at all.
  const PhaseProfiler::Scope scope(nullptr, "ignored");
  PhaseProfiler profiler;
  EXPECT_TRUE(profiler.spans().empty());
}

// ----------------------------------------------------------- DeliverySampler

TEST(DeliverySampler, KeepsEveryStepWhileUnderCapacity) {
  DeliverySampler sampler(16);
  for (std::uint64_t t = 0; t < 10; ++t) {
    DeliverySampler::Sample sample;
    sample.time = t;
    sampler.record(sample);
  }
  EXPECT_EQ(sampler.stride(), 1u);
  EXPECT_EQ(sampler.steps_seen(), 10u);
  ASSERT_EQ(sampler.samples().size(), 10u);
  EXPECT_EQ(sampler.samples().front().time, 0u);
  EXPECT_EQ(sampler.samples().back().time, 9u);
}

TEST(DeliverySampler, DecimatesToPowerOfTwoStridesWithinBudget) {
  constexpr std::size_t kMax = 8;
  DeliverySampler sampler(kMax);
  for (std::uint64_t t = 0; t < 1000; ++t) {
    DeliverySampler::Sample sample;
    sample.time = t;
    sampler.record(sample);
  }
  EXPECT_EQ(sampler.steps_seen(), 1000u);
  EXPECT_LE(sampler.samples().size(), kMax);
  const std::uint64_t stride = sampler.stride();
  EXPECT_EQ(stride & (stride - 1), 0u) << "stride must be a power of two";
  // The kept samples are exactly the stride-multiples, first step included.
  ASSERT_FALSE(sampler.samples().empty());
  for (std::size_t i = 0; i < sampler.samples().size(); ++i) {
    EXPECT_EQ(sampler.samples()[i].time, i * stride);
  }
}

TEST(DeliverySampler, MaxSamplesIsClampedToAtLeastTwo) {
  DeliverySampler sampler(0);
  EXPECT_GE(sampler.max_samples(), 2u);
}

// ------------------------------------------------- traffic-phase harnesses

RouterFactory best_first_factory() {
  return [] { return std::make_unique<BestFirstRouter>(); };
}

struct TrafficFixture {
  Hypercube graph{8};
  HashEdgeSampler sampler{0.45, 1234};
  std::vector<TrafficMessage> messages;
  TrafficFixture() {
    WorkloadConfig workload;
    workload.kind = WorkloadKind::kPermutation;
    workload.messages = 192;
    workload.seed = 7;
    messages = generate_workload(graph, workload);
  }
};

void expect_identical(const TrafficResult& a, const TrafficResult& b) {
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.routed, b.routed);
  EXPECT_EQ(a.failed_routing, b.failed_routing);
  EXPECT_EQ(a.censored, b.censored);
  EXPECT_EQ(a.invalid_paths, b.invalid_paths);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.stranded, b.stranded);
  EXPECT_EQ(a.total_distinct_probes, b.total_distinct_probes);
  EXPECT_EQ(a.unique_edges_probed, b.unique_edges_probed);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.cache_misses, b.cache_misses);
  EXPECT_EQ(a.max_edge_load, b.max_edge_load);
  EXPECT_DOUBLE_EQ(a.mean_edge_load, b.mean_edge_load);
  EXPECT_EQ(a.edges_used, b.edges_used);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.mean_queueing_delay, b.mean_queueing_delay);
  EXPECT_EQ(a.max_queueing_delay, b.max_queueing_delay);
  EXPECT_DOUBLE_EQ(a.mean_path_edges, b.mean_path_edges);
  EXPECT_EQ(a.sim_steps, b.sim_steps);
  EXPECT_EQ(a.admission_events, b.admission_events);
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_EQ(a.peak_active_channels, b.peak_active_channels);
  EXPECT_EQ(a.channels, b.channels);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    const auto& x = a.outcomes[i];
    const auto& y = b.outcomes[i];
    EXPECT_EQ(x.routed, y.routed) << i;
    EXPECT_EQ(x.censored, y.censored) << i;
    EXPECT_EQ(x.delivered, y.delivered) << i;
    EXPECT_EQ(x.distinct_probes, y.distinct_probes) << i;
    EXPECT_EQ(x.path_edges, y.path_edges) << i;
    EXPECT_EQ(x.finish_time, y.finish_time) << i;
    EXPECT_EQ(x.queueing_delay, y.queueing_delay) << i;
  }
}

// --------------------------------------------- cache counters (satellite 1)

TEST(TrafficCacheCounters, HitMissSplitObeysExactIdentities) {
  const TrafficFixture fx;
  TrafficConfig config;
  config.threads = 3;
  const auto result =
      run_traffic(fx.graph, fx.sampler, best_first_factory(), fx.messages, config);
  ASSERT_GT(result.total_distinct_probes, 0u);
  // ProbeContext memoises per message, so the shared cache sees each
  // (message, edge) pair exactly once — the split is exact, not sampled.
  EXPECT_EQ(result.cache_hits + result.cache_misses, result.total_distinct_probes);
  EXPECT_EQ(result.cache_misses, result.unique_edges_probed);
  EXPECT_GT(result.cache_hits, 0u);  // a permutation batch always shares edges
}

TEST(TrafficCacheCounters, ZeroWhenSharedCacheIsOff) {
  const TrafficFixture fx;
  TrafficConfig config;
  config.use_shared_cache = false;
  const auto result =
      run_traffic(fx.graph, fx.sampler, best_first_factory(), fx.messages, config);
  EXPECT_EQ(result.cache_hits, 0u);
  EXPECT_EQ(result.cache_misses, 0u);
}

TEST(TrafficCacheCounters, AppearInTheReportTable) {
  const TrafficFixture fx;
  const auto result =
      run_traffic(fx.graph, fx.sampler, best_first_factory(), fx.messages, {});
  const std::string table = traffic_table(result).to_string();
  EXPECT_NE(table.find("probe cache hits"), std::string::npos);
  EXPECT_NE(table.find("probe cache misses"), std::string::npos);
}

// ------------------------------------- TrafficPhaseTimings (satellite 2)

TEST(TrafficPhaseTimings, BothEnginesPopulateBothPhases) {
  const TrafficFixture fx;
  for (const bool reference : {false, true}) {
    TrafficPhaseTimings timings;
    timings.routing_ms = -1.0;  // sentinels: the engine must overwrite, not
    timings.delivery_ms = -1.0;  // accumulate into, a reused struct
    TrafficConfig config;
    config.timings = &timings;
    const auto result =
        reference ? run_traffic_reference(fx.graph, fx.sampler, best_first_factory(),
                                          fx.messages, config)
                  : run_traffic(fx.graph, fx.sampler, best_first_factory(), fx.messages,
                                config);
    EXPECT_GT(result.delivered, 0u);
    EXPECT_GE(timings.routing_ms, 0.0) << "reference=" << reference;
    EXPECT_GE(timings.delivery_ms, 0.0) << "reference=" << reference;
  }
}

TEST(TrafficPhaseTimings, ReuseOverwritesRatherThanAccumulates) {
  const TrafficFixture fx;
  TrafficPhaseTimings timings;
  TrafficConfig config;
  config.timings = &timings;
  (void)run_traffic(fx.graph, fx.sampler, best_first_factory(), fx.messages, config);
  const double first_routing = timings.routing_ms;
  const double first_delivery = timings.delivery_ms;
  // A second run through the same struct reports that run alone. Timings are
  // wall-clock so we can't demand equality — but an accumulating bug doubles
  // them, and each run's phases are bounded by the run's total, so a
  // generous factor separates the two behaviours without flaking.
  for (int i = 0; i < 8; ++i) {
    (void)run_traffic(fx.graph, fx.sampler, best_first_factory(), fx.messages, config);
  }
  EXPECT_LT(timings.routing_ms, 8 * (first_routing + first_delivery) + 1000.0);
  EXPECT_GE(timings.routing_ms, 0.0);
  EXPECT_GE(timings.delivery_ms, 0.0);
  (void)first_delivery;
}

// ---------------------------------- instrumentation-off golden (tentpole)

TEST(ObservabilityGolden, MetricsAttachmentNeverChangesTrafficResults) {
  const TrafficFixture fx;
  TrafficConfig bare;
  bare.threads = 2;
  const auto off =
      run_traffic(fx.graph, fx.sampler, best_first_factory(), fx.messages, bare);

  RunMetrics metrics;
  metrics.enable_delivery_sampler(64);
  TrafficConfig instrumented = bare;
  instrumented.metrics = &metrics;
  TrafficPhaseTimings timings;
  instrumented.timings = &timings;
  const auto on = run_traffic(fx.graph, fx.sampler, best_first_factory(), fx.messages,
                              instrumented);

  expect_identical(off, on);
  // And the instrumentation actually observed the run it didn't perturb.
  EXPECT_EQ(metrics.counters().value(metrics.counters().id("traffic.delivery.sim_steps")),
            on.sim_steps);
  EXPECT_EQ(metrics.counters().value(
                metrics.counters().id("traffic.routing.distinct_probes")),
            on.total_distinct_probes);
  EXPECT_FALSE(metrics.profiler().spans().empty());
  EXPECT_FALSE(metrics.delivery_sampler()->samples().empty());
}

TEST(ObservabilityGolden, ScenarioReportIsByteIdenticalWithMetricsAttached) {
  const auto spec = scenario::parse_scenario(
      "topology = hypercube:7; p = 0.4:0.6:2; router = greedy, best-first;"
      "messages = 64; trials = 2; threads = 2");

  std::ostringstream off_out;
  scenario::JsonLinesReporter off_reporter(off_out);
  const auto off = scenario::run_scenario(spec, off_reporter);

  RunMetrics metrics;
  scenario::RunOptions options;
  options.metrics = &metrics;
  std::ostringstream on_out;
  scenario::JsonLinesReporter on_reporter(on_out);
  const auto on = scenario::run_scenario(spec, on_reporter, options);

  EXPECT_EQ(off.cells, on.cells);
  EXPECT_EQ(off_out.str(), on_out.str());
  EXPECT_EQ(metrics.counters().value(metrics.counters().id("scenario.cells")),
            spec.num_cells());
}

TEST(ObservabilityGolden, CellTimingsAreOptInAndJsonlOnly) {
  const auto spec = scenario::parse_scenario("topology = hypercube:6; messages = 32");

  std::ostringstream plain_out;
  scenario::JsonLinesReporter plain_reporter(plain_out);
  (void)scenario::run_scenario(spec, plain_reporter);
  EXPECT_EQ(plain_out.str().find("routing_ms"), std::string::npos)
      << "wall-clock fields would break the byte-identical rerun contract";

  scenario::RunOptions options;
  options.cell_timings = true;
  std::ostringstream timed_out;
  scenario::JsonLinesReporter timed_reporter(timed_out);
  (void)scenario::run_scenario(spec, timed_reporter, options);
  EXPECT_NE(timed_out.str().find("\"routing_ms\":"), std::string::npos);
  EXPECT_NE(timed_out.str().find("\"delivery_ms\":"), std::string::npos);
}

// --------------------------------------------------- serialization smoke

TEST(RunMetricsOutput, MetricsJsonCarriesSchemaProvenanceAndCounters) {
  RunMetrics metrics;
  metrics.counters().add(metrics.counters().id("test.alpha"), 5);
  { const PhaseProfiler::Scope scope(&metrics.profiler(), "phase-a"); }
  std::ostringstream out;
  metrics.write_metrics_json(out, "unit-test");
  const std::string json = out.str();
  EXPECT_NE(json.find(std::string("\"schema\":\"") + obs::schemas::kMetrics + "\""),
            std::string::npos);
  EXPECT_NE(json.find("\"command\":\"unit-test\""), std::string::npos);
  EXPECT_NE(json.find("\"provenance\""), std::string::npos);
  EXPECT_NE(json.find("\"git_hash\""), std::string::npos);
  EXPECT_NE(json.find("\"test.alpha\":5"), std::string::npos);
  EXPECT_NE(json.find("\"path\":\"phase-a\""), std::string::npos);
  EXPECT_EQ(json.find("\"delivery_samples\""), std::string::npos)
      << "sampler section must be absent when sampling was never enabled";
}

TEST(RunMetricsOutput, ChromeTraceHasMetadataAndCompleteEvents) {
  RunMetrics metrics;
  metrics.profiler().label_current_thread("main");
  { const PhaseProfiler::Scope scope(&metrics.profiler(), "traced"); }
  std::ostringstream out;
  metrics.write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"traced\""), std::string::npos);
}

TEST(BuildInfo, ProvenanceFieldsAreNeverEmpty) {
  const auto& info = obs::build_info();
  EXPECT_FALSE(info.git_hash.empty());
  EXPECT_FALSE(info.compiler.empty());
  EXPECT_FALSE(info.build_type.empty());
}

}  // namespace
}  // namespace faultroute
