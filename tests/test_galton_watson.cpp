#include <gtest/gtest.h>

#include <cmath>

#include "analysis/stats.hpp"
#include "percolation/galton_watson.hpp"

namespace faultroute {
namespace {

TEST(GaltonWatson, RejectsBadP) {
  EXPECT_THROW(BinaryGaltonWatson(-0.1), std::invalid_argument);
  EXPECT_THROW(BinaryGaltonWatson(1.5), std::invalid_argument);
}

TEST(GaltonWatson, SubcriticalNeverSurvives) {
  EXPECT_DOUBLE_EQ(BinaryGaltonWatson(0.0).survival_probability(), 0.0);
  EXPECT_DOUBLE_EQ(BinaryGaltonWatson(0.3).survival_probability(), 0.0);
  EXPECT_DOUBLE_EQ(BinaryGaltonWatson(0.5).survival_probability(), 0.0);
}

TEST(GaltonWatson, SurvivalClosedFormKnownValues) {
  // For binary GW with edge prob p, extinction e solves e = (1-p+pe)^2.
  // At p = 1: e = 0. At p = 0.75: 9e^2 - 10e + 1 = 0 (x16) => e = 1/9.
  EXPECT_NEAR(BinaryGaltonWatson(1.0).survival_probability(), 1.0, 1e-12);
  EXPECT_NEAR(BinaryGaltonWatson(0.75).survival_probability(), 1.0 - 1.0 / 9.0, 1e-9);
}

TEST(GaltonWatson, SurvivalIsMonotoneInP) {
  double prev = 0.0;
  for (double p = 0.5; p <= 1.0; p += 0.05) {
    const double s = BinaryGaltonWatson(p).survival_probability();
    EXPECT_GE(s, prev);
    prev = s;
  }
}

TEST(GaltonWatson, ReachProbabilityDecreasesWithDepth) {
  const BinaryGaltonWatson gw(0.6);
  double prev = 1.0;
  for (int depth = 1; depth <= 30; ++depth) {
    const double q = gw.reach_probability(depth);
    EXPECT_LE(q, prev);
    prev = q;
  }
}

TEST(GaltonWatson, ReachProbabilityConvergesToSurvival) {
  for (const double p : {0.55, 0.71, 0.9}) {
    const BinaryGaltonWatson gw(p);
    EXPECT_NEAR(gw.reach_probability(500), gw.survival_probability(), 1e-6) << p;
  }
}

TEST(GaltonWatson, SubcriticalReachDecaysExponentially) {
  const BinaryGaltonWatson gw(0.4);  // mean offspring 0.8
  // q_k ~ C * (2p)^k.
  const double ratio = gw.reach_probability(30) / gw.reach_probability(29);
  EXPECT_NEAR(ratio, 0.8, 0.02);
}

TEST(GaltonWatson, SimulationMatchesReachProbability) {
  const BinaryGaltonWatson gw(0.65);
  const int depth = 12;
  Rng rng(1000);
  const int trials = 20000;
  int reached = 0;
  for (int t = 0; t < trials; ++t) {
    reached += gw.simulate_reaches(rng, depth) ? 1 : 0;
  }
  const Interval ci = wilson_interval(static_cast<std::uint64_t>(reached),
                                      static_cast<std::uint64_t>(trials), 4.0);
  EXPECT_TRUE(ci.contains(gw.reach_probability(depth)))
      << "sim=" << static_cast<double>(reached) / trials
      << " exact=" << gw.reach_probability(depth);
}

TEST(GaltonWatson, SubcriticalProgenyMeanMatches) {
  // E[total progeny] = 1 / (1 - 2p) for 2p < 1.
  const double p = 0.3;
  const BinaryGaltonWatson gw(p);
  Rng rng(2000);
  double total = 0;
  const int trials = 50000;
  for (int t = 0; t < trials; ++t) {
    total += static_cast<double>(gw.simulate_total_progeny(rng, 1 << 20));
  }
  EXPECT_NEAR(total / trials, 1.0 / (1.0 - 2.0 * p), 0.1);
}

TEST(GaltonWatson, SupercriticalProgenyHitsCap) {
  const BinaryGaltonWatson gw(0.9);
  Rng rng(3000);
  int capped = 0;
  const int trials = 2000;
  const std::uint64_t cap = 4096;
  for (int t = 0; t < trials; ++t) {
    if (gw.simulate_total_progeny(rng, cap) == cap) ++capped;
  }
  // Should cap roughly survival_probability() of the time.
  const double rate = static_cast<double>(capped) / trials;
  EXPECT_NEAR(rate, gw.survival_probability(), 0.05);
}

TEST(GaltonWatson, ThresholdIsHalf) {
  // Survival is 0 at p slightly below 1/2 and positive slightly above.
  EXPECT_DOUBLE_EQ(BinaryGaltonWatson(0.49).survival_probability(), 0.0);
  EXPECT_GT(BinaryGaltonWatson(0.51).survival_probability(), 0.0);
}

class GwReachSimulationTest : public ::testing::TestWithParam<double> {};

TEST_P(GwReachSimulationTest, SimAgreesWithRecursion) {
  const double p = GetParam();
  const BinaryGaltonWatson gw(p);
  const int depth = 8;
  Rng rng(static_cast<std::uint64_t>(p * 1e6));
  const int trials = 8000;
  int reached = 0;
  for (int t = 0; t < trials; ++t) reached += gw.simulate_reaches(rng, depth) ? 1 : 0;
  const Interval ci = wilson_interval(static_cast<std::uint64_t>(reached),
                                      static_cast<std::uint64_t>(trials), 4.0);
  EXPECT_TRUE(ci.contains(gw.reach_probability(depth)));
}

INSTANTIATE_TEST_SUITE_P(PSweep, GwReachSimulationTest,
                         ::testing::Values(0.2, 0.4, 0.5, 0.6, 0.7071, 0.85, 0.95));

}  // namespace
}  // namespace faultroute
