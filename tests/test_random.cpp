#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

#include "random/rng.hpp"
#include "random/splitmix64.hpp"
#include "random/xoshiro256.hpp"

namespace faultroute {
namespace {

TEST(SplitMix64, MatchesReferenceVector) {
  // Reference outputs for seed 1234567 from the public-domain C reference
  // implementation by Sebastiano Vigna.
  SplitMix64 rng(1234567);
  EXPECT_EQ(rng.next(), 6457827717110365317ULL);
  EXPECT_EQ(rng.next(), 3203168211198807973ULL);
  EXPECT_EQ(rng.next(), 9817491932198370423ULL);
}

TEST(SplitMix64, DeterministicPerSeed) {
  SplitMix64 a(99);
  SplitMix64 b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DistinctSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Mix64, IsBijectiveOnSample) {
  // A finalizer must not collide on a large sample of structured inputs.
  std::set<std::uint64_t> outputs;
  for (std::uint64_t x = 0; x < 100000; ++x) outputs.insert(mix64(x));
  EXPECT_EQ(outputs.size(), 100000u);
}

TEST(Mix64, Avalanche) {
  // Flipping one input bit should flip ~32 of 64 output bits on average.
  double total_flips = 0;
  int cases = 0;
  for (std::uint64_t x = 1; x < 1000; ++x) {
    for (int bit = 0; bit < 64; bit += 7) {
      const std::uint64_t delta = mix64(x) ^ mix64(x ^ (1ULL << bit));
      total_flips += std::popcount(delta);
      ++cases;
    }
  }
  const double mean_flips = total_flips / cases;
  EXPECT_NEAR(mean_flips, 32.0, 1.0);
}

TEST(HashPair, SeedAndKeyBothMatter) {
  EXPECT_NE(hash_pair(1, 1), hash_pair(1, 2));
  EXPECT_NE(hash_pair(1, 1), hash_pair(2, 1));
  EXPECT_EQ(hash_pair(7, 42), hash_pair(7, 42));
}

TEST(Xoshiro256, DeterministicPerSeed) {
  Xoshiro256PlusPlus a(2024);
  Xoshiro256PlusPlus b(2024);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, PassesEquidistributionSmokeTest) {
  // Chi-square over 16 buckets of the top nibble.
  Xoshiro256PlusPlus rng(5);
  std::array<int, 16> buckets{};
  const int draws = 160000;
  for (int i = 0; i < draws; ++i) ++buckets[rng.next() >> 60];
  const double expected = draws / 16.0;
  double chi2 = 0;
  for (const int b : buckets) chi2 += (b - expected) * (b - expected) / expected;
  // 15 degrees of freedom; 99.9th percentile is ~37.7.
  EXPECT_LT(chi2, 37.7);
}

TEST(UniformDouble, InUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = uniform_double(rng);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(UniformDouble, MeanIsHalf) {
  Rng rng(4);
  double total = 0;
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) total += uniform_double(rng);
  EXPECT_NEAR(total / draws, 0.5, 0.005);
}

TEST(UniformBelow, RespectsBound) {
  Rng rng(6);
  for (const std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) ASSERT_LT(uniform_below(rng, bound), bound);
  }
}

TEST(UniformBelow, CoversAllResidues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(uniform_below(rng, 7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Bernoulli, EdgeCases) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(bernoulli(rng, 0.0));
    EXPECT_TRUE(bernoulli(rng, 1.0));
  }
}

TEST(Bernoulli, FrequencyMatchesP) {
  Rng rng(9);
  const double p = 0.3;
  int hits = 0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) hits += bernoulli(rng, p) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / draws, p, 0.01);
}

TEST(Geometric, MeanMatchesClosedForm) {
  Rng rng(10);
  const double p = 0.25;
  double total = 0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) total += static_cast<double>(geometric(rng, p));
  // E[failures before first success] = (1-p)/p = 3.
  EXPECT_NEAR(total / draws, 3.0, 0.1);
}

TEST(Geometric, PEqualsOneIsZero) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(geometric(rng, 1.0), 0u);
}

TEST(DeriveSeed, ChildrenAreDistinct) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 10000; ++i) seeds.insert(derive_seed(42, i));
  EXPECT_EQ(seeds.size(), 10000u);
}

TEST(DeriveSeed, BasesAreIndependent) {
  EXPECT_NE(derive_seed(1, 0), derive_seed(2, 0));
  EXPECT_EQ(derive_seed(5, 3), derive_seed(5, 3));
}

}  // namespace
}  // namespace faultroute
