// Batch-vs-per-message frontier equivalence suite.
//
// FrontierMode::kBatch reroutes flood / bidirectional batches through the
// block executor (traffic/frontier_search.cpp: 64 messages share bitset
// probe-memo words per worker) and hands metric routers precomputed
// DistanceOracle columns instead of one BFS per graph.distance call. All of
// it is advertised as a pure acceleration, so this suite is the pin: it
// flips TrafficConfig::frontier across a topology × router × workload
// matrix — both probe-state backends, both adjacency modes, budgets tight
// enough to censor mid-search, threads 1 and 2 — and holds the two runs
// equal on every aggregate, every exact double, and every per-message
// outcome, mirroring tests/test_dense_probe_state.cpp for the probe-state
// axis. It also checks the axes compose: batch/dense/flat against
// hash/implicit/permsg end-to-end.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "random/rng.hpp"
#include "sim/registry.hpp"
#include "traffic/traffic_engine.hpp"
#include "traffic/workload.hpp"

namespace faultroute {
namespace {

void expect_identical(const TrafficResult& a, const TrafficResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.messages, b.messages) << label;
  EXPECT_EQ(a.routed, b.routed) << label;
  EXPECT_EQ(a.failed_routing, b.failed_routing) << label;
  EXPECT_EQ(a.censored, b.censored) << label;
  EXPECT_EQ(a.invalid_paths, b.invalid_paths) << label;
  EXPECT_EQ(a.delivered, b.delivered) << label;
  EXPECT_EQ(a.stranded, b.stranded) << label;
  EXPECT_EQ(a.total_distinct_probes, b.total_distinct_probes) << label;
  EXPECT_EQ(a.unique_edges_probed, b.unique_edges_probed) << label;
  EXPECT_EQ(a.cache_hits, b.cache_hits) << label;
  EXPECT_EQ(a.cache_misses, b.cache_misses) << label;
  EXPECT_EQ(a.max_edge_load, b.max_edge_load) << label;
  EXPECT_EQ(a.mean_edge_load, b.mean_edge_load) << label;  // exact: same doubles
  EXPECT_EQ(a.edges_used, b.edges_used) << label;
  EXPECT_EQ(a.makespan, b.makespan) << label;
  EXPECT_EQ(a.mean_queueing_delay, b.mean_queueing_delay) << label;
  EXPECT_EQ(a.max_queueing_delay, b.max_queueing_delay) << label;
  EXPECT_EQ(a.mean_path_edges, b.mean_path_edges) << label;
  EXPECT_EQ(a.sim_steps, b.sim_steps) << label;
  EXPECT_EQ(a.admission_events, b.admission_events) << label;
  EXPECT_EQ(a.transmissions, b.transmissions) << label;
  EXPECT_EQ(a.peak_active_channels, b.peak_active_channels) << label;
  EXPECT_EQ(a.channels, b.channels) << label;
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size()) << label;
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    const MessageOutcome& x = a.outcomes[i];
    const MessageOutcome& y = b.outcomes[i];
    ASSERT_EQ(x.routed, y.routed) << label << " msg " << i;
    ASSERT_EQ(x.censored, y.censored) << label << " msg " << i;
    ASSERT_EQ(x.delivered, y.delivered) << label << " msg " << i;
    ASSERT_EQ(x.distinct_probes, y.distinct_probes) << label << " msg " << i;
    ASSERT_EQ(x.path_edges, y.path_edges) << label << " msg " << i;
    ASSERT_EQ(x.finish_time, y.finish_time) << label << " msg " << i;
    ASSERT_EQ(x.queueing_delay, y.queueing_delay) << label << " msg " << i;
  }
}

struct EquivalenceCase {
  std::string topology;
  std::string router;
  std::string workload;
  double p;
  std::uint64_t budget = 0;  // 0 = unbounded
};

void check_batch_equals_permsg(const EquivalenceCase& spec, bool dense_probe_state,
                               const std::string& adjacency, unsigned threads) {
  const auto graph = sim::make_topology(spec.topology);
  const HashEdgeSampler env(spec.p, derive_seed(2005, 7));
  WorkloadConfig workload = sim::make_workload(spec.workload);
  workload.messages = 96;
  workload.seed = derive_seed(2005, 8);
  const auto messages = generate_workload(*graph, workload);
  const auto factory = [&]() { return sim::make_router(spec.router, *graph); };

  TrafficConfig config;
  config.threads = threads;
  config.dense_probe_state = dense_probe_state;
  config.adjacency = parse_adjacency_mode(adjacency);
  if (spec.budget > 0) config.probe_budget = spec.budget;

  TrafficConfig batch = config;
  batch.frontier = FrontierMode::kBatch;
  TrafficConfig permsg = config;
  permsg.frontier = FrontierMode::kPerMessage;

  expect_identical(run_traffic(*graph, env, factory, messages, batch),
                   run_traffic(*graph, env, factory, messages, permsg),
                   spec.topology + "/" + spec.router + "/" + spec.workload +
                       " p=" + std::to_string(spec.p) +
                       " budget=" + std::to_string(spec.budget) +
                       (dense_probe_state ? " dense" : " hash") + " adjacency=" +
                       adjacency + " threads=" + std::to_string(threads));
}

// The batch executor's own families (flood and bidirectional get the block
// executor; everything else must pass through untouched). Budgeted flood
// cells censor mid-BFS, so the executor's probe ordering is pinned at the
// exact probe where the budget dies. 96 messages spans two 64-message
// blocks, exercising the block boundary.
const std::vector<EquivalenceCase> kExecutorCases = {
    {"hypercube:8", "flood", "random-pairs", 0.5, /*budget=*/400},
    {"hypercube:8", "flood", "permutation", 0.55},
    {"de_bruijn:8", "flood-target-first", "random-pairs", 0.55},
    {"butterfly:4", "flood-target-first", "bisection", 0.6, /*budget=*/600},
    {"shuffle_exchange:8", "flood", "random-pairs", 0.6},
    {"ccc:5", "bidirectional", "random-pairs", 0.6},
    {"hypercube:8", "bidirectional", "permutation", 0.5, /*budget=*/500},
    {"complete:128", "bidirectional", "random-pairs", 0.03},
};

// Metric routers ride the DistanceOracle columns in batch mode. de Bruijn /
// shuffle-exchange / CCC have no closed-form metric (the oracle's whole
// audience); the hypercube cell checks the closed-form bypass, and the
// torus cell a Poisson stream.
const std::vector<EquivalenceCase> kOracleCases = {
    {"de_bruijn:8", "greedy", "random-pairs", 0.55},
    {"de_bruijn:8", "best-first", "random-pairs", 0.6, /*budget=*/2000},
    {"shuffle_exchange:8", "hybrid", "random-pairs", 0.6},
    {"ccc:5", "best-first", "permutation", 0.65},
    {"butterfly:4", "best-first", "bisection", 0.7},
    {"hypercube:8", "best-first", "random-pairs", 0.6},
    {"torus:2:12", "hybrid", "poisson:2", 0.7},
};

// Routers the batch mode must leave exactly alone (landmark keeps
// graph.shortest_path for path identity; the G(n,p) specialists are their
// own algorithms). Double-tree routers only route between the two roots,
// so they are exercised via the scenario-level tests instead.
const std::vector<EquivalenceCase> kPassThroughCases = {
    {"hypercube:8", "landmark", "permutation", 0.55},
    {"complete:128", "gnp-oracle", "random-pairs", 0.03},
    {"complete:128", "gnp-local", "random-pairs", 0.03},
};

TEST(FrontierSearch, BatchExecutorMatchesPerMessageRouting) {
  for (const auto& spec : kExecutorCases) {
    check_batch_equals_permsg(spec, /*dense=*/true, "flat", /*threads=*/1);
  }
}

TEST(FrontierSearch, OracleBackedRoutersMatchPerMessageRouting) {
  for (const auto& spec : kOracleCases) {
    check_batch_equals_permsg(spec, /*dense=*/true, "flat", /*threads=*/1);
  }
}

TEST(FrontierSearch, PassThroughRoutersAreUnaffected) {
  for (const auto& spec : kPassThroughCases) {
    check_batch_equals_permsg(spec, /*dense=*/true, "flat", /*threads=*/1);
  }
}

TEST(FrontierSearch, MatchesAcrossProbeStateBackends) {
  // The executor calls is_open_indexed on the dense backend and is_open on
  // the hash backend, exactly as ProbeContext would; both must agree with
  // their per-message twins (including the cache-counter identities the
  // backends pair with).
  check_batch_equals_permsg({"de_bruijn:8", "flood", "random-pairs", 0.55},
                            /*dense=*/false, "flat", /*threads=*/1);
  check_batch_equals_permsg({"hypercube:8", "bidirectional", "permutation", 0.5, 500},
                            /*dense=*/false, "flat", /*threads=*/1);
  check_batch_equals_permsg({"de_bruijn:8", "greedy", "random-pairs", 0.55},
                            /*dense=*/false, "flat", /*threads=*/1);
}

TEST(FrontierSearch, MatchesAcrossAdjacencyModes) {
  // Implicit adjacency has no CSR snapshot, so batch mode must fall back to
  // per-message routing there — and still produce the same results as every
  // other (mode, adjacency) combination.
  check_batch_equals_permsg({"de_bruijn:8", "flood", "random-pairs", 0.55},
                            /*dense=*/true, "implicit", /*threads=*/1);
  check_batch_equals_permsg({"de_bruijn:8", "best-first", "random-pairs", 0.6},
                            /*dense=*/true, "implicit", /*threads=*/1);
  check_batch_equals_permsg({"ccc:5", "bidirectional", "random-pairs", 0.6},
                            /*dense=*/true, "auto", /*threads=*/1);
}

TEST(FrontierSearch, MatchesUnderThreadedRouting) {
  // Blocks are the parallel unit in batch mode; messages must not care which
  // worker's block they land in — at 2 workers and past the oversubscription
  // point (4 workers on smaller machines).
  for (const unsigned threads : {2u, 4u}) {
    check_batch_equals_permsg({"hypercube:8", "flood", "random-pairs", 0.5, 400},
                              /*dense=*/true, "flat", threads);
    check_batch_equals_permsg({"de_bruijn:8", "best-first", "random-pairs", 0.6},
                              /*dense=*/true, "flat", threads);
    check_batch_equals_permsg({"ccc:5", "bidirectional", "random-pairs", 0.6},
                              /*dense=*/true, "flat", threads);
  }
}

TEST(FrontierSearch, BatchAxisComposesWithTheOtherABAxes) {
  // Fully crossed extremes: batch/dense/flat (the fast path everything
  // defaults to) against permsg/hash/implicit (every accelerator off). One
  // executor case and one oracle case.
  const EquivalenceCase cases[] = {
      {"de_bruijn:8", "flood-target-first", "random-pairs", 0.55},
      {"de_bruijn:8", "hybrid", "random-pairs", 0.55},
  };
  for (const auto& spec : cases) {
    const auto graph = sim::make_topology(spec.topology);
    const HashEdgeSampler env(spec.p, derive_seed(2005, 7));
    WorkloadConfig workload = sim::make_workload(spec.workload);
    workload.messages = 96;
    workload.seed = derive_seed(2005, 8);
    const auto messages = generate_workload(*graph, workload);
    const auto factory = [&]() { return sim::make_router(spec.router, *graph); };

    TrafficConfig fast;
    fast.frontier = FrontierMode::kBatch;
    fast.dense_probe_state = true;
    fast.adjacency = AdjacencyMode::kFlat;
    TrafficConfig slow;
    slow.frontier = FrontierMode::kPerMessage;
    slow.dense_probe_state = false;
    slow.adjacency = AdjacencyMode::kImplicit;
    expect_identical(run_traffic(*graph, env, factory, messages, fast),
                     run_traffic(*graph, env, factory, messages, slow),
                     spec.topology + "/" + spec.router + " crossed-extremes");
  }
}

TEST(FrontierSearch, FrontierModeNamesRoundTrip) {
  EXPECT_EQ(parse_frontier_mode("batch"), FrontierMode::kBatch);
  EXPECT_EQ(parse_frontier_mode("permsg"), FrontierMode::kPerMessage);
  EXPECT_EQ(frontier_mode_name(FrontierMode::kBatch), "batch");
  EXPECT_EQ(frontier_mode_name(FrontierMode::kPerMessage), "permsg");
  EXPECT_THROW(static_cast<void>(parse_frontier_mode("per-message")), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(parse_frontier_mode("")), std::invalid_argument);
}

}  // namespace
}  // namespace faultroute
