#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <vector>

#include "graph/butterfly.hpp"
#include "graph/channel_index.hpp"
#include "graph/complete.hpp"
#include "graph/cycle_matching.hpp"
#include "graph/de_bruijn.hpp"
#include "graph/explicit_graph.hpp"
#include "graph/shuffle_exchange.hpp"
#include "helpers/topology_checks.hpp"

namespace faultroute {
namespace {

// ---------------------------------------------------------------- Complete

TEST(CompleteGraph, CountsAndDegrees) {
  const CompleteGraph g(6);
  EXPECT_EQ(g.num_vertices(), 6u);
  EXPECT_EQ(g.num_edges(), 15u);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 5);
}

TEST(CompleteGraph, NeighborEnumerationSkipsSelf) {
  const CompleteGraph g(5);
  EXPECT_EQ(g.neighbor(2, 0), 0u);
  EXPECT_EQ(g.neighbor(2, 1), 1u);
  EXPECT_EQ(g.neighbor(2, 2), 3u);
  EXPECT_EQ(g.neighbor(2, 3), 4u);
}

TEST(CompleteGraph, IndexOfIsInverseOfNeighbor) {
  const CompleteGraph g(9);
  for (VertexId v = 0; v < 9; ++v) {
    for (int i = 0; i < g.degree(v); ++i) {
      EXPECT_EQ(g.index_of(v, g.neighbor(v, i)), i);
    }
  }
}

TEST(CompleteGraph, StructuralInvariants) {
  faultroute::testing::check_topology_invariants(CompleteGraph(2));
  faultroute::testing::check_topology_invariants(CompleteGraph(7));
}

TEST(CompleteGraph, DistanceIsZeroOrOne) {
  const CompleteGraph g(4);
  EXPECT_EQ(g.distance(1, 1), 0u);
  EXPECT_EQ(g.distance(1, 3), 1u);
  faultroute::testing::check_shortest_path(g, {{0, 3}, {2, 2}});
}

// ---------------------------------------------------------------- De Bruijn

TEST(DeBruijn, DegreesAreAtMostFour) {
  const DeBruijn g(4);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_GE(g.degree(v), 1);
    EXPECT_LE(g.degree(v), 4);
  }
}

TEST(DeBruijn, ShiftNeighborsArePresent) {
  const DeBruijn g(4);  // 16 vertices
  // 5 = 0101 -> shifts 1010 (=10) and 1011 (=11); back-shifts 0010, 1010.
  const VertexId v = 5;
  bool has10 = false;
  bool has2 = false;
  for (int i = 0; i < g.degree(v); ++i) {
    if (g.neighbor(v, i) == 10) has10 = true;
    if (g.neighbor(v, i) == 2) has2 = true;
  }
  EXPECT_TRUE(has10);
  EXPECT_TRUE(has2);
}

TEST(DeBruijn, StructuralInvariants) {
  for (const int k : {2, 3, 4, 6}) {
    SCOPED_TRACE(k);
    faultroute::testing::check_topology_invariants(DeBruijn(k));
  }
}

TEST(DeBruijn, DiameterIsAtMostOrder) {
  // In the directed DB graph any vertex is reachable in k shifts; the
  // undirected version can only be shorter.
  const DeBruijn g(5);
  EXPECT_LE(g.distance(0, g.num_vertices() - 1), 5u);
  EXPECT_LE(g.distance(7, 21), 5u);
}

// ---------------------------------------------------------- ShuffleExchange

TEST(ShuffleExchange, DegreesAreAtMostThree) {
  const ShuffleExchange g(4);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_GE(g.degree(v), 1);
    EXPECT_LE(g.degree(v), 3);
  }
}

TEST(ShuffleExchange, RotationsAreInverse) {
  const ShuffleExchange g(5);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(g.rotate_right(g.rotate_left(v)), v);
    EXPECT_EQ(g.rotate_left(g.rotate_right(v)), v);
  }
}

TEST(ShuffleExchange, ExchangeNeighborPresent) {
  const ShuffleExchange g(4);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_GE(edge_index_of(g, v, v ^ 1ULL), 0);
  }
}

TEST(ShuffleExchange, StructuralInvariants) {
  for (const int k : {2, 3, 4, 6}) {
    SCOPED_TRACE(k);
    faultroute::testing::check_topology_invariants(ShuffleExchange(k));
  }
}

// ----------------------------------------------------------------- Butterfly

TEST(Butterfly, CountsAreExact) {
  const Butterfly g(3);
  EXPECT_EQ(g.num_vertices(), 3u * 8u);
  EXPECT_EQ(g.num_edges(), 2u * 3u * 8u);
  for (VertexId v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(g.degree(v), 4);
}

TEST(Butterfly, LevelRowRoundTrip) {
  const Butterfly g(4);
  for (int level = 0; level < 4; ++level) {
    for (std::uint64_t row = 0; row < g.rows(); row += 5) {
      const VertexId v = g.vertex_at(level, row);
      EXPECT_EQ(g.level_of(v), level);
      EXPECT_EQ(g.row_of(v), row);
    }
  }
}

TEST(Butterfly, UpEdgesFlipTheLevelBit) {
  const Butterfly g(3);
  const VertexId v = g.vertex_at(1, 0b010);
  EXPECT_EQ(g.neighbor(v, 0), g.vertex_at(2, 0b010));          // straight
  EXPECT_EQ(g.neighbor(v, 1), g.vertex_at(2, 0b010 ^ 0b010));  // cross flips bit 1
}

TEST(Butterfly, StructuralInvariants) {
  // k = 2 is a multigraph (wrap-around parallel edges) and must still
  // satisfy the pairing invariants; k >= 3 is simple.
  for (const int k : {2, 3, 4}) {
    SCOPED_TRACE(k);
    faultroute::testing::check_topology_invariants(Butterfly(k));
  }
}

TEST(Butterfly, WrapAroundConnectsTopToBottom) {
  const Butterfly g(3);
  const VertexId top = g.vertex_at(2, 5);
  const VertexId bottom = g.vertex_at(0, 5);
  EXPECT_GE(edge_index_of(g, top, bottom), 0);
}

// ----------------------------------------------------------- CycleMatching

TEST(CycleMatching, RejectsBadSizes) {
  EXPECT_THROW(CycleWithMatching(3, 1), std::invalid_argument);
  EXPECT_THROW(CycleWithMatching(2, 1), std::invalid_argument);
  EXPECT_NO_THROW(CycleWithMatching(4, 1));
}

TEST(CycleMatching, MatchingIsAnInvolutionWithoutFixedPoints) {
  const CycleWithMatching g(64, 7);
  for (VertexId v = 0; v < 64; ++v) {
    EXPECT_NE(g.partner(v), v);
    EXPECT_EQ(g.partner(g.partner(v)), v);
  }
}

TEST(CycleMatching, DeterministicPerSeed) {
  const CycleWithMatching a(32, 11);
  const CycleWithMatching b(32, 11);
  const CycleWithMatching c(32, 12);
  int diffs = 0;
  for (VertexId v = 0; v < 32; ++v) {
    EXPECT_EQ(a.partner(v), b.partner(v));
    if (a.partner(v) != c.partner(v)) ++diffs;
  }
  EXPECT_GT(diffs, 0);
}

TEST(CycleMatching, StructuralInvariants) {
  for (const std::uint64_t n : {4ULL, 10ULL, 64ULL}) {
    SCOPED_TRACE(n);
    faultroute::testing::check_topology_invariants(CycleWithMatching(n, 3));
  }
}

TEST(CycleMatching, DiameterIsLogarithmic) {
  // Bollobas-Chung: diameter ~ log2 n. Allow a generous constant.
  const CycleWithMatching g(1024, 5);
  std::uint64_t max_dist = 0;
  for (VertexId v = 0; v < 1024; v += 97) {
    max_dist = std::max(max_dist, g.distance(0, v));
  }
  EXPECT_LE(max_dist, 30u);
}

// ----------------------------------------------------------- ExplicitGraph

TEST(ExplicitGraph, BuildsFromEdgeList) {
  const ExplicitGraph g(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.distance(0, 2), 2u);
}

TEST(ExplicitGraph, RejectsBadEdges) {
  EXPECT_THROW(ExplicitGraph(2, {{0, 2}}), std::invalid_argument);
  EXPECT_THROW(ExplicitGraph(2, {{1, 1}}), std::invalid_argument);
}

TEST(ExplicitGraph, SupportsParallelEdges) {
  const ExplicitGraph g(2, {{0, 1}, {0, 1}});
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_NE(g.edge_key(0, 0), g.edge_key(0, 1));
  faultroute::testing::check_topology_invariants(g);
}

TEST(ExplicitGraph, StructuralInvariants) {
  const ExplicitGraph g(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 2}});
  faultroute::testing::check_topology_invariants(g);
  faultroute::testing::check_shortest_path(g, {{0, 3}, {1, 4}});
}

// ------------------------------------------------- Polymorphic family sweep

std::vector<std::shared_ptr<Topology>> small_family() {
  return {
      std::make_shared<CompleteGraph>(6),
      std::make_shared<DeBruijn>(4),
      std::make_shared<ShuffleExchange>(4),
      std::make_shared<Butterfly>(3),
      std::make_shared<CycleWithMatching>(16, 9),
  };
}

class FamilyInvariantTest
    : public ::testing::TestWithParam<std::shared_ptr<Topology>> {};

TEST_P(FamilyInvariantTest, AdjacencyAndKeys) {
  faultroute::testing::check_topology_invariants(*GetParam());
}

TEST_P(FamilyInvariantTest, DefaultDistanceIsSymmetric) {
  const Topology& g = *GetParam();
  const VertexId a = 0;
  const VertexId b = g.num_vertices() / 2;
  EXPECT_EQ(g.distance(a, b), g.distance(b, a));
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilyInvariantTest,
                         ::testing::ValuesIn(small_family()));

// ------------------------------------------------------------ ChannelIndex

TEST(ChannelIndex, DenseContiguousAndInvertibleAcrossFamilies) {
  for (const auto& entry : small_family()) {
    const Topology& g = *entry;
    const ChannelIndex& index = g.channel_index();
    std::uint64_t degree_sum = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      degree_sum += static_cast<std::uint64_t>(g.degree(v));
    }
    EXPECT_EQ(index.num_channels(), degree_sum) << g.name();

    std::uint32_t expected = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      for (int i = 0; i < g.degree(v); ++i) {
        const std::uint32_t channel = index.channel_of(v, i);
        EXPECT_EQ(channel, expected) << g.name();  // contiguous, slot order
        ++expected;
        EXPECT_EQ(index.tail(channel), v) << g.name();
        EXPECT_EQ(index.slot(channel), i) << g.name();
        EXPECT_EQ(index.head(channel), g.neighbor(v, i)) << g.name();
        EXPECT_EQ(index.edge_of(channel), g.edge_key(v, i)) << g.name();
      }
    }
  }
}

TEST(ChannelIndex, ReverseIsAnInvolutionOntoTheSameEdge) {
  // Includes the k=2 wrapped butterfly, whose parallel edges make reverse()
  // depend on the edge-key match (the naive lowest-slot lookup would pair
  // the two parallel edges with each other).
  for (const auto& entry : small_family()) {
    const Topology& g = *entry;
    const ChannelIndex& index = g.channel_index();
    for (std::uint32_t c = 0; c < index.num_channels(); ++c) {
      const std::uint32_t r = index.reverse(c);
      EXPECT_EQ(index.reverse(r), c) << g.name() << " channel " << c;
      EXPECT_EQ(index.edge_of(r), index.edge_of(c)) << g.name();
      EXPECT_EQ(index.head(r), index.tail(c)) << g.name();
      EXPECT_EQ(index.tail(r), index.head(c)) << g.name();
    }
  }
}

TEST(ChannelIndex, CachedInstanceIsSharedAndButterflyHasParallelChannels) {
  const Butterfly g(2);  // the parallel-edge stress case
  const ChannelIndex& a = g.channel_index();
  const ChannelIndex& b = g.channel_index();
  EXPECT_EQ(&a, &b);  // lazily built once, then cached
  EXPECT_EQ(a.num_channels(), 2 * g.num_edges());
}

TEST(ChannelIndex, EdgeIdsAreDenseSharedByDirectionsAndDistinctPerKey) {
  // edge_id_of is the index space of the dense probe-state engine: both
  // directions of an edge share one id, distinct keys (including the
  // butterfly's parallel edges) get distinct ids, and the id range is
  // exactly [0, num_edges).
  for (const auto& entry : small_family()) {
    const Topology& g = *entry;
    const ChannelIndex& index = g.channel_index();
    ASSERT_EQ(index.num_edge_ids(), g.num_edges()) << g.name();
    std::vector<bool> seen(index.num_edge_ids(), false);
    std::unordered_map<EdgeKey, std::uint32_t> id_of_key;
    for (std::uint32_t c = 0; c < index.num_channels(); ++c) {
      const std::uint32_t id = index.edge_id_of(c);
      ASSERT_LT(id, index.num_edge_ids()) << g.name();
      seen[id] = true;
      // One id per key, one key per id — a bijection onto the edge set.
      const auto [it, inserted] = id_of_key.emplace(index.edge_of(c), id);
      EXPECT_EQ(it->second, id) << g.name() << " channel " << c;
      EXPECT_EQ(index.edge_id_of(index.reverse(c)), id) << g.name() << " channel " << c;
    }
    EXPECT_EQ(id_of_key.size(), index.num_edge_ids()) << g.name();
    EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool s) { return s; }))
        << g.name() << ": edge ids are not contiguous";
  }
}

}  // namespace
}  // namespace faultroute
