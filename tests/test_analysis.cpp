#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "sim/options.hpp"
#include "sim/sweep.hpp"

namespace faultroute {
namespace {

// ------------------------------------------------------------------ Summary

TEST(Summary, BasicMoments) {
  Summary s;
  for (const double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_NEAR(s.sem(), std::sqrt(2.5 / 5.0), 1e-12);
}

TEST(Summary, QuantilesAreNearestRank) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  // Nearest-rank: the smallest value covering ceil(q*n) of the sample —
  // rank ceil(0.9 * 100) = 90, i.e. the value 90 (not 91: the old floor
  // formula overshot by one rank whenever q*n was an integer).
  EXPECT_DOUBLE_EQ(s.quantile(0.9), 90.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 25.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.001), 1.0);  // ceil(0.1) = rank 1
}

TEST(Summary, MedianOfEvenSampleIsTheLowerMiddleValue) {
  // Regression: floor(q*n) made median() of {1,2,3,4} return 3. Nearest-rank
  // has no interpolation, so the even-sample median is the lower middle.
  Summary s;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);

  Summary two;
  two.add(10.0);
  two.add(20.0);
  EXPECT_DOUBLE_EQ(two.median(), 10.0);
}

TEST(Summary, QuantileEndpointsAreMinAndMaxOnAnySampleSize) {
  for (int n = 1; n <= 5; ++n) {
    Summary s;
    for (int i = 1; i <= n; ++i) s.add(i * 10.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.0), s.min()) << "n=" << n;
    EXPECT_DOUBLE_EQ(s.quantile(1.0), s.max()) << "n=" << n;
  }
  Summary s;
  s.add(7.0);
  EXPECT_THROW((void)s.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW((void)s.quantile(1.1), std::invalid_argument);
}

TEST(Summary, EmptyThrows) {
  const Summary s;
  EXPECT_THROW((void)s.mean(), std::logic_error);
  EXPECT_THROW((void)s.min(), std::logic_error);
  EXPECT_THROW((void)s.quantile(0.5), std::logic_error);
}

TEST(Summary, VarianceSurvivesLargeMeanSmallSpread) {
  // Regression: the one-pass sum-of-squares formula cancels catastrophically
  // here — (sum_sq - n*m^2) lost all 16 significant digits and reported
  // variance 0. The two-pass computation is exact (every value, the mean,
  // and the deviations are representable doubles).
  Summary s;
  s.add(1e8);
  s.add(1e8 + 1);
  s.add(1e8 + 2);
  EXPECT_DOUBLE_EQ(s.mean(), 1e8 + 1);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 1.0);

  Summary shifted;  // even larger mean, non-integer spread
  for (const double x : {4e15, 4e15 + 2, 4e15 + 4}) shifted.add(x);
  EXPECT_DOUBLE_EQ(shifted.variance(), 4.0);
}

TEST(Summary, SingletonHasZeroVariance) {
  Summary s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, QuantileCacheInvalidatedOnAdd) {
  Summary s;
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.median(), 10.0);
  s.add(0.0);
  s.add(0.0);
  EXPECT_DOUBLE_EQ(s.median(), 0.0);
}

// ------------------------------------------------------------------ Wilson

TEST(Wilson, ZeroTrialsIsVacuous) {
  const Interval ci = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(ci.low, 0.0);
  EXPECT_DOUBLE_EQ(ci.high, 1.0);
}

TEST(Wilson, ContainsTruePForFairCoin) {
  const Interval ci = wilson_interval(480, 1000);
  EXPECT_TRUE(ci.contains(0.5));
  EXPECT_FALSE(ci.contains(0.56));
}

TEST(Wilson, ExtremesStayInUnitInterval) {
  const Interval zero = wilson_interval(0, 50);
  const Interval one = wilson_interval(50, 50);
  EXPECT_GE(zero.low, 0.0);
  EXPECT_GT(zero.high, 0.0);
  EXPECT_LT(one.low, 1.0);
  EXPECT_LE(one.high, 1.0);
}

TEST(Wilson, NarrowsWithSampleSize) {
  const Interval small = wilson_interval(5, 10);
  const Interval large = wilson_interval(500, 1000);
  EXPECT_LT(large.high - large.low, small.high - small.low);
}

// -------------------------------------------------------------- Linear fits

TEST(LinearFit, RecoversExactLine) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> ys = {3, 5, 7, 9, 11};  // y = 2x + 1
  const LinearFit fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearFit, RejectsDegenerateInput) {
  EXPECT_THROW((void)linear_fit({1.0}, {2.0}), std::invalid_argument);
  EXPECT_THROW((void)linear_fit({1, 2}, {1}), std::invalid_argument);
  EXPECT_THROW((void)linear_fit({3, 3, 3}, {1, 2, 3}), std::invalid_argument);
}

TEST(LogLogFit, RecoversPowerLawExponent) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (double x = 1; x <= 64; x *= 2) {
    xs.push_back(x);
    ys.push_back(5.0 * std::pow(x, 1.5));
  }
  const LinearFit fit = log_log_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 1.5, 1e-9);
}

TEST(LogLogFit, RejectsNonPositive) {
  EXPECT_THROW((void)log_log_fit({1, -2}, {1, 1}), std::invalid_argument);
  EXPECT_THROW((void)log_log_fit({1, 2}, {0, 1}), std::invalid_argument);
}

TEST(SemilogFit, RecoversExponentialRate) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (double x = 0; x < 10; ++x) {
    xs.push_back(x);
    ys.push_back(2.0 * std::exp(0.7 * x));
  }
  const LinearFit fit = semilog_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 0.7, 1e-9);
}

// -------------------------------------------------------------------- Table

TEST(Table, AlignsAndPrints) {
  Table t({"name", "value"});
  t.add_row({"alpha", Table::fmt(0.5, 2)});
  t.add_row({"very-long-name", Table::fmt(std::uint64_t{42})});
  const std::string rendered = t.to_string();
  EXPECT_NE(rendered.find("alpha"), std::string::npos);
  EXPECT_NE(rendered.find("0.50"), std::string::npos);
  EXPECT_NE(rendered.find("very-long-name"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, RejectsMalformedRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, WritesCsvWithQuoting) {
  Table t({"k", "v"});
  t.add_row({"plain", "1"});
  t.add_row({"with,comma", "quote\"inside"});
  const std::string path = ::testing::TempDir() + "/faultroute_table_test.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "k,v");
  std::getline(in, line);
  EXPECT_EQ(line, "plain,1");
  std::getline(in, line);
  EXPECT_EQ(line, "\"with,comma\",\"quote\"\"inside\"");
  std::remove(path.c_str());
}

// ------------------------------------------------------------------ Options

TEST(Options, DefaultsAreSane) {
  const char* argv[] = {"bench"};
  const auto opts = sim::parse_options(1, const_cast<char**>(argv));
  EXPECT_FALSE(opts.quick);
  EXPECT_FALSE(opts.trials.has_value());
  EXPECT_EQ(opts.trials_or(100), 100);
  EXPECT_FALSE(opts.csv_path("t").has_value());
}

TEST(Options, ParsesAllFlags) {
  const char* argv[] = {"bench", "--quick", "--trials=17", "--seed=5", "--csv=/tmp"};
  const auto opts = sim::parse_options(5, const_cast<char**>(argv));
  EXPECT_TRUE(opts.quick);
  EXPECT_EQ(opts.trials_or(100), 17);  // explicit trials beat quick
  EXPECT_EQ(opts.seed, 5u);
  EXPECT_EQ(*opts.csv_path("table"), "/tmp/table.csv");
}

TEST(Options, QuickQuartersTrials) {
  const char* argv[] = {"bench", "--quick"};
  const auto opts = sim::parse_options(2, const_cast<char**>(argv));
  EXPECT_EQ(opts.trials_or(100), 25);
  EXPECT_EQ(opts.trials_or(8), 5);  // floor at 5
}

TEST(Options, RejectsUnknownFlag) {
  const char* argv[] = {"bench", "--wat"};
  EXPECT_THROW(sim::parse_options(2, const_cast<char**>(argv)), std::invalid_argument);
}

// -------------------------------------------------------------------- Sweep

TEST(Sweep, LinspaceEndpoints) {
  const auto v = sim::linspace(0.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
  EXPECT_DOUBLE_EQ(v[2], 0.5);
}

TEST(Sweep, LogspaceIsGeometric) {
  const auto v = sim::logspace(1.0, 100.0, 3);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_NEAR(v[1], 10.0, 1e-9);
}

TEST(Sweep, PForAlpha) {
  EXPECT_NEAR(sim::p_for_alpha(16, 0.5), 0.25, 1e-12);
  EXPECT_NEAR(sim::p_for_alpha(10, 1.0), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(sim::p_for_alpha(7, 0.0), 1.0);
}

TEST(Sweep, GeometricSizesDeduplicatesAndCaps) {
  const auto v = sim::geometric_sizes(10, 1.05, 12);
  // 10, 10.5 -> 11 (rounded), 11.6 -> 12, capped.
  ASSERT_GE(v.size(), 2u);
  EXPECT_EQ(v.front(), 10u);
  EXPECT_LE(v.back(), 12u);
  for (std::size_t i = 1; i < v.size(); ++i) EXPECT_GT(v[i], v[i - 1]);
}

TEST(Sweep, ValidatesArguments) {
  EXPECT_THROW(sim::linspace(0, 1, 1), std::invalid_argument);
  EXPECT_THROW(sim::logspace(0, 1, 3), std::invalid_argument);
  EXPECT_THROW(sim::geometric_sizes(0, 2.0, 10), std::invalid_argument);
  EXPECT_THROW(sim::geometric_sizes(1, 1.0, 10), std::invalid_argument);
}

}  // namespace
}  // namespace faultroute
