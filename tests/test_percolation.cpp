#include <gtest/gtest.h>

#include "analysis/stats.hpp"
#include "graph/complete.hpp"
#include "graph/hypercube.hpp"
#include "graph/mesh.hpp"
#include "percolation/chemical_distance.hpp"
#include "percolation/cluster_analysis.hpp"
#include "percolation/edge_sampler.hpp"
#include "percolation/threshold.hpp"
#include "percolation/union_find.hpp"
#include "random/rng.hpp"

namespace faultroute {
namespace {

// -------------------------------------------------------------- EdgeSampler

TEST(HashEdgeSampler, RejectsBadP) {
  EXPECT_THROW(HashEdgeSampler(-0.1, 1), std::invalid_argument);
  EXPECT_THROW(HashEdgeSampler(1.1, 1), std::invalid_argument);
  EXPECT_NO_THROW(HashEdgeSampler(0.0, 1));
  EXPECT_NO_THROW(HashEdgeSampler(1.0, 1));
}

TEST(HashEdgeSampler, ExtremesAreDeterministic) {
  const HashEdgeSampler closed(0.0, 7);
  const HashEdgeSampler open(1.0, 7);
  for (EdgeKey k = 0; k < 1000; ++k) {
    EXPECT_FALSE(closed.is_open(k));
    EXPECT_TRUE(open.is_open(k));
  }
}

TEST(HashEdgeSampler, ConsistentOnReprobe) {
  const HashEdgeSampler s(0.5, 99);
  for (EdgeKey k = 0; k < 1000; ++k) EXPECT_EQ(s.is_open(k), s.is_open(k));
}

TEST(HashEdgeSampler, SeedChangesTheWorld) {
  const HashEdgeSampler a(0.5, 1);
  const HashEdgeSampler b(0.5, 2);
  int differences = 0;
  for (EdgeKey k = 0; k < 1000; ++k) {
    if (a.is_open(k) != b.is_open(k)) ++differences;
  }
  EXPECT_GT(differences, 300);  // ~500 expected
}

TEST(HashEdgeSampler, EmpiricalRateMatchesP) {
  for (const double p : {0.1, 0.3, 0.5, 0.9}) {
    const HashEdgeSampler s(p, 1234);
    std::uint64_t open = 0;
    const std::uint64_t n = 200000;
    for (EdgeKey k = 0; k < n; ++k) open += s.is_open(k) ? 1 : 0;
    const Interval ci = wilson_interval(open, n, /*z=*/4.0);
    EXPECT_TRUE(ci.contains(p)) << "p=" << p << " rate=" << static_cast<double>(open) / n;
  }
}

TEST(HashEdgeSampler, AdjacentKeysAreUncorrelated) {
  // Pairs (k, k+1) should hit all four open/closed combinations ~ equally.
  const HashEdgeSampler s(0.5, 5);
  int counts[4] = {0, 0, 0, 0};
  const int n = 40000;
  for (EdgeKey k = 0; k < n; ++k) {
    counts[(s.is_open(2 * k) ? 2 : 0) + (s.is_open(2 * k + 1) ? 1 : 0)]++;
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.25, 0.02);
  }
}

TEST(ExplicitEdgeSampler, PinsIndividualEdges) {
  ExplicitEdgeSampler s(/*default_open=*/true);
  s.set(5, false);
  EXPECT_TRUE(s.is_open(4));
  EXPECT_FALSE(s.is_open(5));
  s.set(5, true);
  EXPECT_TRUE(s.is_open(5));
}

// ---------------------------------------------------------------- UnionFind

TEST(UnionFind, StartsFullyDisjoint) {
  UnionFind dsu(10);
  EXPECT_EQ(dsu.num_components(), 10u);
  EXPECT_FALSE(dsu.same(0, 1));
  EXPECT_EQ(dsu.size_of(3), 1u);
}

TEST(UnionFind, UniteMergesAndCounts) {
  UnionFind dsu(6);
  EXPECT_TRUE(dsu.unite(0, 1));
  EXPECT_TRUE(dsu.unite(1, 2));
  EXPECT_FALSE(dsu.unite(0, 2));  // already together
  EXPECT_EQ(dsu.num_components(), 4u);
  EXPECT_EQ(dsu.size_of(1), 3u);
  EXPECT_TRUE(dsu.same(0, 2));
  EXPECT_FALSE(dsu.same(0, 5));
}

TEST(UnionFind, RandomisedInvariantSweep) {
  // Property: after random unions, component count + total merges == n.
  const std::uint64_t n = 500;
  UnionFind dsu(n);
  Rng rng(77);
  std::uint64_t merges = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t a = uniform_below(rng, n);
    const std::uint64_t b = uniform_below(rng, n);
    if (a != b && dsu.unite(a, b)) ++merges;
  }
  EXPECT_EQ(dsu.num_components() + merges, n);
  // Sizes sum to n over distinct roots.
  std::uint64_t total = 0;
  for (std::uint64_t v = 0; v < n; ++v) {
    if (dsu.find(v) == v) total += dsu.size_of(v);
  }
  EXPECT_EQ(total, n);
}

// --------------------------------------------------------- ClusterAnalysis

TEST(ClusterAnalysis, FullyOpenGraphIsOneComponent) {
  const Hypercube g(6);
  const HashEdgeSampler s(1.0, 1);
  const auto summary = analyze_components(g, s);
  EXPECT_EQ(summary.num_components, 1u);
  EXPECT_EQ(summary.largest, g.num_vertices());
  EXPECT_EQ(summary.num_open_edges, g.num_edges());
  EXPECT_DOUBLE_EQ(summary.largest_fraction(), 1.0);
}

TEST(ClusterAnalysis, FullyClosedGraphIsAllSingletons) {
  const Mesh g(2, 8);
  const HashEdgeSampler s(0.0, 1);
  const auto summary = analyze_components(g, s);
  EXPECT_EQ(summary.num_components, g.num_vertices());
  EXPECT_EQ(summary.largest, 1u);
  EXPECT_EQ(summary.num_open_edges, 0u);
}

TEST(ClusterAnalysis, HandCraftedWorld) {
  // Path 0-1-2 open, rest of a 2x3 mesh closed.
  const Mesh g(1, 6);
  ExplicitEdgeSampler s(false);
  s.set(g.edge_key(0, edge_index_of(g, 0, 1)), true);
  s.set(g.edge_key(1, edge_index_of(g, 1, 2)), true);
  ClusterDecomposition decomp(g, s);
  EXPECT_EQ(decomp.summary().largest, 3u);
  EXPECT_EQ(decomp.summary().second_largest, 1u);
  EXPECT_TRUE(decomp.same_cluster(0, 2));
  EXPECT_FALSE(decomp.same_cluster(0, 3));
  EXPECT_TRUE(decomp.in_largest_cluster(1));
  EXPECT_FALSE(decomp.in_largest_cluster(5));
}

TEST(ClusterAnalysis, GiantComponentAppearsAboveThreshold) {
  // Supercritical 2D mesh (p = 0.7 >> 0.5) has a giant cluster; subcritical
  // (p = 0.3) does not. 48x48 is comfortably past finite-size wobble.
  const Mesh g(2, 48);
  const auto super = analyze_components(g, HashEdgeSampler(0.7, 21));
  const auto sub = analyze_components(g, HashEdgeSampler(0.3, 21));
  EXPECT_GT(super.largest_fraction(), 0.5);
  EXPECT_LT(sub.largest_fraction(), 0.1);
}

TEST(ClusterAnalysis, MonotoneInP) {
  const Hypercube g(9);
  double prev = -1.0;
  for (const double p : {0.1, 0.3, 0.5, 0.8, 1.0}) {
    const auto summary = analyze_components(g, HashEdgeSampler(p, 4));
    EXPECT_GE(summary.largest_fraction() + 0.05, prev);  // small slack, same seed
    prev = summary.largest_fraction();
  }
}

TEST(OpenClusterOf, MatchesDecomposition) {
  const Mesh g(2, 10);
  const HashEdgeSampler s(0.55, 17);
  ClusterDecomposition decomp(g, s);
  const auto cluster = open_cluster_of(g, s, 0);
  EXPECT_EQ(cluster.size(), decomp.cluster_size(0));
  for (const VertexId v : cluster) EXPECT_TRUE(decomp.same_cluster(0, v));
}

TEST(OpenClusterOf, HonorsCap) {
  const Mesh g(2, 20);
  const HashEdgeSampler s(1.0, 1);
  const auto cluster = open_cluster_of(g, s, 0, /*max_vertices=*/50);
  EXPECT_EQ(cluster.size(), 50u);
}

TEST(OpenConnected, AgreesWithGroundTruth) {
  const Mesh g(2, 12);
  const HashEdgeSampler s(0.55, 3);
  ClusterDecomposition decomp(g, s);
  for (VertexId v = 1; v < g.num_vertices(); v += 13) {
    const auto result = open_connected(g, s, 0, v);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(*result, decomp.same_cluster(0, v));
  }
}

TEST(OpenConnected, CapReturnsUnknown) {
  const Mesh g(2, 30);
  const HashEdgeSampler s(1.0, 1);
  // u and v far apart, tiny cap: inconclusive.
  EXPECT_FALSE(open_connected(g, s, 0, g.num_vertices() - 1, 10).has_value());
}

TEST(MaterializeOpenSubgraph, KeepsExactlyOpenEdges) {
  const Hypercube g(5);
  const HashEdgeSampler s(0.5, 123);
  const ExplicitGraph sub = materialize_open_subgraph(g, s);
  EXPECT_EQ(sub.num_vertices(), g.num_vertices());
  std::uint64_t open_count = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (int i = 0; i < g.degree(v); ++i) {
      if (g.neighbor(v, i) > v && s.is_open(g.edge_key(v, i))) ++open_count;
    }
  }
  EXPECT_EQ(sub.num_edges(), open_count);
  // Connectivity must agree.
  ClusterDecomposition reference(g, s);
  const HashEdgeSampler all_open(1.0, 0);
  ClusterDecomposition materialised(sub, all_open);
  EXPECT_EQ(reference.summary().largest, materialised.summary().largest);
}

// ------------------------------------------------------- ChemicalDistance

TEST(ChemicalDistance, EqualsGraphDistanceWhenFullyOpen) {
  const Mesh g(2, 9);
  const HashEdgeSampler s(1.0, 1);
  EXPECT_EQ(chemical_distance(g, s, 0, g.num_vertices() - 1),
            g.distance(0, g.num_vertices() - 1));
}

TEST(ChemicalDistance, DisconnectedIsNullopt) {
  const Mesh g(1, 5);
  ExplicitEdgeSampler s(false);
  EXPECT_EQ(chemical_distance(g, s, 0, 4), std::nullopt);
}

TEST(ChemicalDistance, DetourIsCounted) {
  // 3x3 mesh: block the straight corridor, leave a detour.
  const Mesh g(2, 3);
  ExplicitEdgeSampler s(true);
  const VertexId mid_left = g.vertex_at({0, 1});
  const VertexId mid_mid = g.vertex_at({1, 1});
  s.set(g.edge_key(mid_left, edge_index_of(g, mid_left, mid_mid)), false);
  const VertexId a = g.vertex_at({0, 1});
  const VertexId b = g.vertex_at({2, 1});
  EXPECT_EQ(g.distance(a, b), 2u);
  const auto open_dist = chemical_distance(g, s, a, b);
  ASSERT_TRUE(open_dist.has_value());
  EXPECT_EQ(*open_dist, 4u);  // around the blocked edge
}

TEST(ChemicalPath, ReturnsAnOpenShortestPath) {
  const Mesh g(2, 8);
  const HashEdgeSampler s(0.8, 31);
  const VertexId a = 0;
  const VertexId b = g.num_vertices() - 1;
  const auto result = chemical_path(g, s, a, b);
  if (!result.distance.has_value()) GTEST_SKIP() << "disconnected at this seed";
  ASSERT_EQ(result.path.size(), *result.distance + 1);
  EXPECT_EQ(result.path.front(), a);
  EXPECT_EQ(result.path.back(), b);
  for (std::size_t i = 0; i + 1 < result.path.size(); ++i) {
    const int idx = edge_index_of(g, result.path[i], result.path[i + 1]);
    ASSERT_GE(idx, 0);
    EXPECT_TRUE(s.is_open(g.edge_key(result.path[i], idx)));
  }
}

TEST(ChemicalDistance, NeverBeatsGraphDistance) {
  const Mesh g(2, 10);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const HashEdgeSampler s(0.7, seed);
    const auto d = chemical_distance(g, s, 0, 99);
    if (d.has_value()) {
      EXPECT_GE(*d, g.distance(0, 99));
    }
  }
}

// ----------------------------------------------------------------- Threshold

TEST(Threshold, RecoversMeshCriticalPoint) {
  // 2D bond percolation: p_c = 1/2 exactly. A 40x40 torus estimate should
  // land within a few percent.
  const auto order = [](double p, std::uint64_t seed) {
    const Mesh g(2, 40, /*wrap=*/true);
    return analyze_components(g, HashEdgeSampler(p, seed)).largest_fraction();
  };
  ThresholdConfig config;
  config.target_fraction = 0.25;
  config.trials_per_point = 6;
  config.tolerance = 0.005;
  config.seed = 99;
  const double pc = estimate_threshold(order, 0.2, 0.8, config);
  EXPECT_NEAR(pc, 0.5, 0.06);
}

TEST(Threshold, ValidatesArguments) {
  const auto order = [](double, std::uint64_t) { return 0.0; };
  EXPECT_THROW((void)estimate_threshold(order, 0.5, 0.5, {}), std::invalid_argument);
  ThresholdConfig bad;
  bad.trials_per_point = 0;
  EXPECT_THROW((void)estimate_threshold(order, 0.1, 0.9, bad), std::invalid_argument);
}

TEST(Threshold, DegenerateOrderParameterGoesToBounds) {
  ThresholdConfig config;
  config.tolerance = 0.01;
  const auto always_super = [](double, std::uint64_t) { return 1.0; };
  EXPECT_LT(estimate_threshold(always_super, 0.0, 1.0, config), 0.02);
  const auto never_super = [](double, std::uint64_t) { return 0.0; };
  EXPECT_GT(estimate_threshold(never_super, 0.0, 1.0, config), 0.98);
}

}  // namespace
}  // namespace faultroute
