// Empirical verification of Lemma 5 — the paper's lower-bound machinery —
// against actual routers. The lemma states: if S is a vertex set containing
// v, every cut edge e of (S, S^c) satisfies Pr[(v ~ e) in S] <= eta, and X is
// the probe count of ANY local router from u to v, then
//
//   Pr[X < t] <= (t * eta + Pr[(u ~ v) in S]) / Pr[u ~ v].
//
// We instantiate it on the double binary tree exactly as Section 2.1 does
// (S = the second tree), measure every probability on the right-hand side by
// Monte Carlo, measure Pr[X < t] for our local routers, and assert the
// inequality holds with statistical slack. This is as close as an experiment
// can get to "testing a theorem": if any of the machinery (samplers, probe
// accounting, locality enforcement, the routers) were broken in a way that
// made routing too easy, this suite would fail.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/stats.hpp"
#include "analysis/theory.hpp"
#include "core/probe_context.hpp"
#include "core/routers/double_tree_routers.hpp"
#include "core/routers/flood_router.hpp"
#include "graph/double_tree.hpp"
#include "percolation/cluster_analysis.hpp"
#include "percolation/edge_sampler.hpp"
#include "random/rng.hpp"

namespace faultroute {
namespace {

using Side = DoubleBinaryTree::Side;

struct LemmaIngredients {
  double eta = 0.0;           // max over cut edges of Pr[(v ~ e) in S]
  double pr_uv = 0.0;         // Pr[u ~ v]
  double pr_uv_in_s = 0.0;    // Pr[(u ~ v) in S] — 0 here since u is outside S
};

/// Measures the lemma's ingredients for TT_n with S = tree 2 (plus the
/// leaves, the cut being the tree-1 leaf edges). For the roots u = x, v = y:
/// the event "(v ~ e) in S" for a cut edge at leaf w is "the tree-2 branch
/// from w up to y is fully open", whose exact probability is p^n; we still
/// *measure* it to exercise the machinery.
LemmaIngredients measure_ingredients(const DoubleBinaryTree& tree, double p,
                                     int trials, std::uint64_t seed) {
  LemmaIngredients out;
  std::uint64_t climbs_open = 0;
  std::uint64_t connected = 0;
  Rng rng(seed);
  for (int t = 0; t < trials; ++t) {
    const HashEdgeSampler sampler(p, derive_seed(seed, static_cast<std::uint64_t>(t)));
    // Pick a random leaf's cut edge and test its in-S connection to v = y.
    const VertexId leaf = uniform_below(rng, tree.num_leaves());
    bool open_climb = true;
    for (std::uint64_t c = tree.num_leaves() + leaf; c >= 2 && open_climb; c >>= 1) {
      open_climb = sampler.is_open(tree.tree_edge_key(Side::kTree2, c));
    }
    climbs_open += open_climb ? 1 : 0;
    connected +=
        *open_connected(tree, sampler, tree.root1(), tree.root2()) ? 1 : 0;
  }
  // Upper-confidence values so the final assertion is conservative.
  out.eta = wilson_interval(climbs_open, static_cast<std::uint64_t>(trials)).high;
  out.pr_uv =
      std::max(1e-9, wilson_interval(connected, static_cast<std::uint64_t>(trials)).low);
  out.pr_uv_in_s = 0.0;  // u = root1 is not in S = tree 2
  return out;
}

class Lemma5Test : public ::testing::TestWithParam<double> {};

TEST_P(Lemma5Test, LocalRoutersRespectTheBoundOnTheDoubleTree) {
  const double p = GetParam();
  const int n = 9;
  const DoubleBinaryTree tree(n);
  const int trials = 300;

  const LemmaIngredients lemma = measure_ingredients(tree, p, 1200, 101);
  // The measured eta must agree with the exact p^n (sanity of the measure).
  EXPECT_NEAR(lemma.eta, std::pow(p, n), 0.03) << "eta measurement drifted";

  // Run the paper's local router conditioned on {u ~ v}; empirical CDF of X.
  DoubleTreeLocalRouter router(tree);
  std::vector<double> probes;
  for (std::uint64_t t = 0; probes.size() < static_cast<std::size_t>(trials) && t < 20000;
       ++t) {
    const HashEdgeSampler sampler(p, derive_seed(707, t));
    if (!*open_connected(tree, sampler, tree.root1(), tree.root2())) continue;
    ProbeContext ctx(tree, sampler, tree.root1(), RoutingMode::kLocal);
    ASSERT_TRUE(router.route(ctx, tree.root1(), tree.root2()).has_value());
    probes.push_back(static_cast<double>(ctx.distinct_probes()));
  }
  ASSERT_GE(probes.size(), 100u) << "not enough connected environments";

  // Check Pr[X < t] <= lemma bound (with CI slack folded into eta, pr_uv)
  // at several thresholds t.
  for (const double t : {10.0, 25.0, 50.0, 100.0}) {
    std::size_t below = 0;
    for (const double x : probes) {
      if (x < t) ++below;
    }
    const double empirical =
        static_cast<double>(below) / static_cast<double>(probes.size());
    const double bound = theory::lemma5_bound(t, lemma.eta, lemma.pr_uv_in_s, lemma.pr_uv);
    // Allow binomial noise on the empirical side.
    const double noise =
        4.0 * std::sqrt(empirical * (1 - empirical) / static_cast<double>(probes.size()));
    EXPECT_LE(empirical, bound + noise + 0.02)
        << "Lemma 5 violated at t = " << t << " (p = " << p << "): empirical "
        << empirical << " > bound " << bound;
  }
}

INSTANTIATE_TEST_SUITE_P(PSweep, Lemma5Test, ::testing::Values(0.75, 0.8, 0.85));

TEST(Lemma5, TheoremSevenScalePrediction) {
  // Theorem 7's form of the bound: any local router needs >= a * p^{-n}
  // probes with probability >= 1 - a/c(p). Instantiate with a = 0.2 and
  // check our router's CDF at t = a * p^{-n}.
  const int n = 10;
  const double p = 0.78;
  const DoubleBinaryTree tree(n);
  DoubleTreeLocalRouter router(tree);
  const double t = 0.2 * theory::double_tree_local_lower_bound(p, n);
  int below = 0;
  int total = 0;
  for (std::uint64_t s = 0; total < 200 && s < 20000; ++s) {
    const HashEdgeSampler sampler(p, derive_seed(7070, s));
    if (!*open_connected(tree, sampler, tree.root1(), tree.root2())) continue;
    ++total;
    ProbeContext ctx(tree, sampler, tree.root1(), RoutingMode::kLocal);
    ASSERT_TRUE(router.route(ctx, tree.root1(), tree.root2()).has_value());
    if (static_cast<double>(ctx.distinct_probes()) < t) ++below;
  }
  ASSERT_EQ(total, 200);
  // The bound says Pr[X < 0.2 p^{-n}] is small; our router should be deep in
  // the allowed region (well under 1/2).
  EXPECT_LT(static_cast<double>(below) / total, 0.5);
}

TEST(Lemma5, FloodRouterAlsoRespectsTheBound) {
  // The lemma quantifies over all local algorithms; flooding is a very
  // different strategy from DFS+climb, so check it independently.
  const int n = 8;
  const double p = 0.8;
  const DoubleBinaryTree tree(n);
  const LemmaIngredients lemma = measure_ingredients(tree, p, 1200, 202);
  FloodRouter router;
  std::vector<double> probes;
  for (std::uint64_t t = 0; probes.size() < 150 && t < 20000; ++t) {
    const HashEdgeSampler sampler(p, derive_seed(909, t));
    if (!*open_connected(tree, sampler, tree.root1(), tree.root2())) continue;
    ProbeContext ctx(tree, sampler, tree.root1(), RoutingMode::kLocal);
    ASSERT_TRUE(router.route(ctx, tree.root1(), tree.root2()).has_value());
    probes.push_back(static_cast<double>(ctx.distinct_probes()));
  }
  ASSERT_GE(probes.size(), 100u);
  for (const double t : {10.0, 30.0, 80.0}) {
    std::size_t below = 0;
    for (const double x : probes) {
      if (x < t) ++below;
    }
    const double empirical =
        static_cast<double>(below) / static_cast<double>(probes.size());
    const double bound = theory::lemma5_bound(t, lemma.eta, 0.0, lemma.pr_uv);
    const double noise =
        4.0 * std::sqrt(empirical * (1 - empirical) / static_cast<double>(probes.size()));
    EXPECT_LE(empirical, bound + noise + 0.02) << "t = " << t;
  }
}

}  // namespace
}  // namespace faultroute
