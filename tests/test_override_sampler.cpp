#include <gtest/gtest.h>

#include <algorithm>

#include "core/probe_context.hpp"
#include "core/routers/landmark_router.hpp"
#include "graph/hypercube.hpp"
#include "graph/mesh.hpp"
#include "percolation/cluster_analysis.hpp"
#include "percolation/edge_sampler.hpp"
#include "percolation/override_sampler.hpp"

namespace faultroute {
namespace {

TEST(OverrideSampler, PassesThroughByDefault) {
  const HashEdgeSampler base(0.5, 1);
  const OverrideSampler sampler(base);
  for (EdgeKey k = 0; k < 500; ++k) EXPECT_EQ(sampler.is_open(k), base.is_open(k));
}

TEST(OverrideSampler, ForcesIndividualEdges) {
  const HashEdgeSampler base(1.0, 1);
  OverrideSampler sampler(base);
  sampler.force(7, false);
  sampler.force(9, true);
  EXPECT_FALSE(sampler.is_open(7));
  EXPECT_TRUE(sampler.is_open(9));
  EXPECT_TRUE(sampler.is_open(8));
  sampler.force(7, true);  // later settings win
  EXPECT_TRUE(sampler.is_open(7));
  EXPECT_EQ(sampler.num_overrides(), 2u);
}

TEST(OverrideSampler, CloseAllBatches) {
  const HashEdgeSampler base(1.0, 1);
  OverrideSampler sampler(base);
  sampler.close_all({1, 2, 3});
  EXPECT_FALSE(sampler.is_open(1));
  EXPECT_FALSE(sampler.is_open(2));
  EXPECT_FALSE(sampler.is_open(3));
  EXPECT_TRUE(sampler.is_open(4));
}

TEST(OverrideSampler, IncidentCutIsolatesAVertex) {
  const Hypercube g(5);
  const HashEdgeSampler base(1.0, 1);
  OverrideSampler sampler(base);
  sampler.close_all(incident_cut(g, 31));
  EXPECT_EQ(sampler.num_overrides(), 5u);
  EXPECT_FALSE(*open_connected(g, sampler, 0, 31));
  EXPECT_TRUE(*open_connected(g, sampler, 0, 30));
}

TEST(OverrideSampler, BallCoversTheRightEdges) {
  const Mesh g(2, 7);
  const VertexId center = g.vertex_at({3, 3});
  const auto keys0 = edges_within_ball(g, center, 0);
  EXPECT_EQ(keys0.size(), 4u);  // just the centre's incident edges
  const auto keys1 = edges_within_ball(g, center, 1);
  // centre 4 edges + each neighbour's 3 other edges = 16 distinct.
  EXPECT_EQ(keys1.size(), 16u);
  for (const EdgeKey k : keys0) {
    EXPECT_NE(std::find(keys1.begin(), keys1.end(), k), keys1.end());
  }
}

TEST(OverrideSampler, RegionalOutageForcesDetour) {
  // Close a radius-1 ball in the middle of a fault-free grid: routing still
  // succeeds but the path must avoid the dead region.
  const Mesh g(2, 9);
  const HashEdgeSampler base(1.0, 1);
  OverrideSampler sampler(base);
  const VertexId center = g.vertex_at({4, 4});
  sampler.close_all(edges_within_ball(g, center, 1));
  LandmarkRouter router;
  ProbeContext ctx(g, sampler, 0, RoutingMode::kLocal);
  const auto path = router.route(ctx, 0, g.num_vertices() - 1);
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(is_valid_open_path(g, sampler, *path, 0, g.num_vertices() - 1));
  for (const VertexId v : *path) {
    EXPECT_GT(g.distance(v, center), 1u) << "path entered the outage region";
  }
}

TEST(OverrideSampler, AdversaryOnTopOfRandomFaults) {
  // Worst-case + random combined: the override layer composes with the
  // percolation environment.
  const Mesh g(2, 9);
  const HashEdgeSampler base(0.8, 5);
  OverrideSampler sampler(base);
  sampler.close_all(edges_within_ball(g, g.vertex_at({4, 4}), 1));
  int open_forced = 0;
  for (const EdgeKey k : edges_within_ball(g, g.vertex_at({4, 4}), 1)) {
    open_forced += sampler.is_open(k) ? 1 : 0;
  }
  EXPECT_EQ(open_forced, 0);
  EXPECT_DOUBLE_EQ(sampler.survival_probability(), 0.8);
}

}  // namespace
}  // namespace faultroute
