// Registry spec parsing must reject malformed, unknown, and out-of-range
// input with std::invalid_argument — never construct garbage silently. This
// is the contract the scenario runner's fail-fast phase relies on.

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/hypercube.hpp"
#include "sim/registry.hpp"

namespace faultroute::sim {
namespace {

// ------------------------------------------------------------- topologies

TEST(RegistryTopology, EveryAdvertisedExampleConstructs) {
  for (const auto& spec : topology_spec_examples()) {
    const auto graph = make_topology(spec);
    ASSERT_NE(graph, nullptr) << spec;
    EXPECT_GE(graph->num_vertices(), 2u) << spec;
    EXPECT_FALSE(graph->name().empty()) << spec;
  }
}

TEST(RegistryTopology, RejectsMalformedSpecs) {
  const char* bad[] = {
      "",                    // empty
      "hypercube",           // missing argument
      "hypercube:",          // empty argument
      "hypercube:abc",       // not a number
      "hypercube:12junk",    // trailing garbage after the number
      "hypercube:4:4",       // too many arguments
      "mesh:2",              // too few arguments
      "torus",               // too few arguments
      "cycle_matching:8:1:9" // too many arguments
  };
  for (const char* spec : bad) {
    EXPECT_THROW((void)make_topology(spec), std::invalid_argument) << "'" << spec << "'";
  }
}

TEST(RegistryTopology, RejectsUnknownKind) {
  try {
    (void)make_topology("klein_bottle:4");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The error must name the offender and list valid examples.
    EXPECT_NE(std::string(e.what()).find("klein_bottle"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("hypercube"), std::string::npos);
  }
}

TEST(RegistryTopology, RejectsOutOfRangeParameters) {
  const char* bad[] = {
      "hypercube:0",   "hypercube:-3",  "hypercube:64",          // dimension bounds
      "mesh:0:8",      "mesh:9:4",      "mesh:2:1",              // dim/side bounds
      "torus:2:2",                                               // torus needs side >= 3
      "de_bruijn:1",   "de_bruijn:40",                           // order bounds
      "butterfly:1",   "ccc:2",         "shuffle_exchange:1",    // order bounds
      "double_tree:0", "complete:1",    "cycle_matching:7",      // n bounds / parity
      "complete:-5",   "cycle_matching:-6",  // negative must not wrap to huge unsigned
      "cycle_matching:9223372036854775806",  // absurd size: reject, don't allocate
      "hypercube:3000000000",          // does not fit int: must throw, not truncate
      "hypercube:99999999999999999999" // does not fit int64 either
  };
  for (const char* spec : bad) {
    EXPECT_THROW((void)make_topology(spec), std::invalid_argument) << "'" << spec << "'";
  }
}

// ---------------------------------------------------------------- routers

TEST(RegistryRouter, EveryAdvertisedNameConstructsOnItsTopology) {
  const auto cube = make_topology("hypercube:6");
  const auto tree = make_topology("double_tree:4");
  for (const auto& name : router_names()) {
    const Topology& host =
        name.rfind("double-tree", 0) == 0 ? *tree : *cube;
    EXPECT_NE(make_router(name, host), nullptr) << name;
  }
}

TEST(RegistryRouter, RejectsUnknownNameListingKnownOnes) {
  const Hypercube cube(4);
  try {
    (void)make_router("teleport", cube);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("teleport"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("landmark"), std::string::npos);
  }
}

TEST(RegistryRouter, TopologyBoundRouterRejectsWrongTopology) {
  const Hypercube cube(4);
  EXPECT_THROW((void)make_router("double-tree-local", cube), std::invalid_argument);
  EXPECT_THROW((void)make_router("double-tree-oracle", cube), std::invalid_argument);
}

// -------------------------------------------------------------- workloads

TEST(RegistryWorkload, EveryAdvertisedExampleParses) {
  for (const auto& spec : workload_spec_examples()) {
    EXPECT_NO_THROW((void)make_workload(spec)) << spec;
  }
}

TEST(RegistryWorkload, ParsesParameters) {
  EXPECT_EQ(make_workload("permutation").kind, WorkloadKind::kPermutation);
  EXPECT_EQ(make_workload("random-pairs").kind, WorkloadKind::kRandomPairs);
  EXPECT_EQ(make_workload("bisection").kind, WorkloadKind::kBisection);

  const auto hotspot = make_workload("hotspot:37");
  EXPECT_EQ(hotspot.kind, WorkloadKind::kHotspot);
  EXPECT_EQ(hotspot.hotspot_target, 37u);
  EXPECT_EQ(make_workload("hotspot").hotspot_target, 0u);  // default target

  const auto poisson = make_workload("poisson:2.5");
  EXPECT_EQ(poisson.kind, WorkloadKind::kPoisson);
  EXPECT_DOUBLE_EQ(poisson.arrival_rate, 2.5);
}

TEST(RegistryWorkload, RejectsMalformedSpecs) {
  const char* bad[] = {
      "",              // empty
      "nope",          // unknown workload
      "poisson",       // rate is mandatory
      "poisson:0",     // rate must be > 0
      "poisson:-1",    // rate must be > 0
      "poisson:abc",   // not a number
      "poisson:1:2",   // too many arguments
      "hotspot:xyz",   // target not a number
      "hotspot:-1",    // target must be >= 0
      "permutation:5", // takes no arguments
      "bisection:2",   // takes no arguments
  };
  for (const char* spec : bad) {
    EXPECT_THROW((void)make_workload(spec), std::invalid_argument) << "'" << spec << "'";
  }
}

}  // namespace
}  // namespace faultroute::sim
