// Cached distance-oracle suite.
//
// The oracle (graph/distance_oracle.hpp) memoises exact per-target BFS
// columns over the flat CSR snapshot plus ALT landmark lower bounds. It is
// a pure accelerator: a column entry must equal Topology::distance verbatim
// (same values, same unreachable sentinel), the landmark bound must be
// admissible and symmetric, and budget denials must degrade to the exact
// fallback rather than to wrong answers. This suite pins all of that across
// every topology family — including the butterfly's parallel edges — and
// carries the dense-scratch regression tests for Topology::distance /
// shortest_path (u == v, the unreachable sentinel, parallel edges, and
// agreement with a naive reference BFS).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/distance_oracle.hpp"
#include "graph/explicit_graph.hpp"
#include "graph/flat_adjacency.hpp"
#include "graph/topology.hpp"
#include "random/rng.hpp"
#include "sim/registry.hpp"

namespace faultroute {
namespace {

/// Naive hash-map BFS over the virtual Topology interface — the shape the
/// pre-dense-tier Topology::distance used. The dense epoch-stamped tier and
/// the oracle's batched bitset sweep must both agree with it exactly.
std::unordered_map<VertexId, std::uint64_t> reference_bfs(const Topology& graph,
                                                          VertexId source) {
  std::unordered_map<VertexId, std::uint64_t> dist;
  std::queue<VertexId> queue;
  dist[source] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const VertexId x = queue.front();
    queue.pop();
    for (int i = 0; i < graph.degree(x); ++i) {
      const VertexId y = graph.neighbor(x, i);
      if (dist.emplace(y, dist[x] + 1).second) queue.push(y);
    }
  }
  return dist;
}

/// True iff u and v share an edge (any parallel copy).
bool adjacent(const Topology& graph, VertexId u, VertexId v) {
  for (int i = 0; i < graph.degree(u); ++i) {
    if (graph.neighbor(u, i) == v) return true;
  }
  return false;
}

/// Asserts `path` is a valid shortest u->v walk of the claimed length.
void expect_valid_shortest_path(const Topology& graph, VertexId u, VertexId v) {
  const auto path = graph.shortest_path(u, v);
  const std::uint64_t d = graph.distance(u, v);
  if (d == graph.num_vertices()) {
    EXPECT_TRUE(path.empty()) << "unreachable pair must yield an empty path";
    return;
  }
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), u);
  EXPECT_EQ(path.back(), v);
  ASSERT_EQ(path.size(), d + 1) << "path length must equal the distance";
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_TRUE(adjacent(graph, path[i], path[i + 1]))
        << "non-edge " << path[i] << " -> " << path[i + 1];
  }
}

/// One small instance per registered topology family. Closed-form families
/// (hypercube, mesh/torus, complete) are included on purpose: the oracle
/// must agree with the closed form, not just with the BFS default.
const std::vector<std::string> kFamilies = {
    "hypercube:6",        "mesh:2:5",   "torus:2:5", "double_tree:4",
    "complete:32",        "de_bruijn:6", "shuffle_exchange:6",
    "butterfly:3",        "ccc:4",      "cycle_matching:64",
};

/// Deterministic sample of `count` target vertices (whole vertex set when
/// the graph is small enough to check exhaustively).
std::vector<VertexId> sample_targets(const Topology& graph, std::uint64_t salt,
                                     std::size_t count) {
  const std::uint64_t n = graph.num_vertices();
  std::vector<VertexId> targets;
  if (n <= 64) {
    for (VertexId v = 0; v < n; ++v) targets.push_back(v);
    return targets;
  }
  Rng rng(derive_seed(2005, salt));
  for (std::size_t i = 0; i < count; ++i) targets.push_back(uniform_below(rng, n));
  return targets;
}

TEST(DistanceOracle, ExactColumnsMatchTopologyDistanceAcrossFamilies) {
  for (std::size_t f = 0; f < kFamilies.size(); ++f) {
    SCOPED_TRACE(kFamilies[f]);
    const auto graph = sim::make_topology(kFamilies[f]);
    const DistanceOracle& oracle = graph->flat_adjacency().distance_oracle();
    const auto targets = sample_targets(*graph, f, 8);
    oracle.ensure_targets(targets);
    EXPECT_EQ(oracle.unreachable(), graph->num_vertices());
    for (const VertexId t : targets) {
      const std::uint32_t* column = oracle.distances_to(t);
      ASSERT_NE(column, nullptr);
      for (VertexId x = 0; x < graph->num_vertices(); ++x) {
        ASSERT_EQ(column[x], graph->distance(x, t))
            << "column disagrees at x=" << x << " t=" << t;
      }
    }
  }
}

TEST(DistanceOracle, LowerBoundIsAdmissibleAndSymmetric) {
  for (std::size_t f = 0; f < kFamilies.size(); ++f) {
    SCOPED_TRACE(kFamilies[f]);
    const auto graph = sim::make_topology(kFamilies[f]);
    const DistanceOracle& oracle = graph->flat_adjacency().distance_oracle();
    EXPECT_GE(oracle.num_landmarks(), 1u);
    EXPECT_LE(oracle.num_landmarks(), DistanceOracle::kDefaultLandmarks);
    for (std::size_t j = 0; j < oracle.num_landmarks(); ++j) {
      EXPECT_LT(oracle.landmark(j), graph->num_vertices());
    }
    Rng rng(derive_seed(2005, 100 + f));
    for (int i = 0; i < 64; ++i) {
      const VertexId u = uniform_below(rng, graph->num_vertices());
      const VertexId v = uniform_below(rng, graph->num_vertices());
      const std::uint64_t bound = oracle.lower_bound(u, v);
      EXPECT_LE(bound, graph->distance(u, v)) << "inadmissible at u=" << u << " v=" << v;
      EXPECT_EQ(bound, oracle.lower_bound(v, u)) << "asymmetric at u=" << u << " v=" << v;
      EXPECT_EQ(oracle.lower_bound(u, u), 0u);
    }
  }
}

TEST(DistanceOracle, ButterflyParallelEdgesAreCountedOnce) {
  // The k=2 wrapped butterfly has genuine parallel edges between adjacent
  // levels; a BFS that double-walked them would still get distances right,
  // but a CSR mis-indexing would not. Pin the whole all-pairs table.
  const auto graph = sim::make_topology("butterfly:3");
  const DistanceOracle& oracle = graph->flat_adjacency().distance_oracle();
  std::vector<VertexId> all(graph->num_vertices());
  for (VertexId v = 0; v < graph->num_vertices(); ++v) all[v] = v;
  oracle.ensure_targets(all);
  for (const VertexId t : all) {
    const std::uint32_t* column = oracle.distances_to(t);
    ASSERT_NE(column, nullptr);
    const auto reference = reference_bfs(*graph, t);
    for (VertexId x = 0; x < graph->num_vertices(); ++x) {
      ASSERT_EQ(column[x], reference.at(x)) << "x=" << x << " t=" << t;
    }
  }
}

TEST(DistanceOracle, UnreachableSentinelMatchesTopologyDistance) {
  // Two components: {0,1,2} path and {3,4,5} path. Every cross-component
  // query must hit the sentinel in the oracle column, in Topology::distance,
  // and in the landmark bound (disconnection is provable from any landmark).
  const ExplicitGraph graph(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  const DistanceOracle& oracle = graph.flat_adjacency().distance_oracle();
  oracle.ensure_targets({0, 3});
  EXPECT_EQ(oracle.unreachable(), 6u);
  const std::uint32_t* to0 = oracle.distances_to(0);
  const std::uint32_t* to3 = oracle.distances_to(3);
  ASSERT_NE(to0, nullptr);
  ASSERT_NE(to3, nullptr);
  for (VertexId x = 0; x < 3; ++x) {
    EXPECT_EQ(to0[x], graph.distance(x, 0));
    EXPECT_EQ(to3[x], 6u);
    EXPECT_EQ(graph.distance(x, 3), 6u);
    EXPECT_EQ(oracle.lower_bound(x, 3), 6u) << "landmarks must prove disconnection";
    EXPECT_TRUE(graph.shortest_path(x, 3).empty());
  }
  for (VertexId x = 3; x < 6; ++x) {
    EXPECT_EQ(to3[x], graph.distance(x, 3));
    EXPECT_EQ(to0[x], 6u);
  }
  EXPECT_EQ(to0[2], 2u);
  EXPECT_EQ(to3[5], 2u);
}

TEST(DistanceOracle, DenseScratchDistanceRegressions) {
  // Satellite regressions for the epoch-stamped dense tier that replaced the
  // hash-map BFS inside Topology::distance / shortest_path.
  for (const std::string& spec : {std::string("de_bruijn:5"), std::string("butterfly:3"),
                                  std::string("ccc:3")}) {
    SCOPED_TRACE(spec);
    const auto graph = sim::make_topology(spec);
    const std::uint64_t n = graph->num_vertices();
    for (VertexId u = 0; u < n; ++u) {
      // u == v short-circuits before touching any scratch.
      EXPECT_EQ(graph->distance(u, u), 0u);
      const auto self = graph->shortest_path(u, u);
      ASSERT_EQ(self.size(), 1u);
      EXPECT_EQ(self[0], u);
      const auto reference = reference_bfs(*graph, u);
      for (VertexId v = 0; v < n; ++v) {
        ASSERT_EQ(graph->distance(u, v), reference.at(v)) << "u=" << u << " v=" << v;
      }
    }
    // Interleaved distance / shortest_path calls must not corrupt the
    // shared scratch (each call opens its own epoch).
    Rng rng(derive_seed(2005, 4242));
    for (int i = 0; i < 32; ++i) {
      const VertexId u = uniform_below(rng, n);
      const VertexId v = uniform_below(rng, n);
      expect_valid_shortest_path(*graph, u, v);
      EXPECT_EQ(graph->distance(u, v), graph->distance(v, u));
    }
  }
}

TEST(DistanceOracle, ParallelEdgeExplicitGraphRegressions) {
  // Parallel edges and the dense tier: distances see the multigraph as its
  // simple projection; shortest_path stays valid.
  const ExplicitGraph graph(4, {{0, 1}, {0, 1}, {1, 2}, {2, 3}, {2, 3}});
  EXPECT_EQ(graph.distance(0, 1), 1u);
  EXPECT_EQ(graph.distance(0, 3), 3u);
  EXPECT_EQ(graph.distance(3, 0), 3u);
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = 0; v < 4; ++v) expect_valid_shortest_path(graph, u, v);
  }
  const DistanceOracle oracle(graph.flat_adjacency());
  oracle.ensure_targets({0, 3});
  const std::uint32_t* to3 = oracle.distances_to(3);
  ASSERT_NE(to3, nullptr);
  EXPECT_EQ(to3[0], 3u);
  EXPECT_EQ(to3[2], 1u);
}

TEST(DistanceOracle, BudgetDenialFallsBackToExactDistance) {
  // 64-vertex graph: one column costs 256 bytes. A 600-byte budget admits
  // exactly two columns; the third request is denied and must fall back via
  // metric_distance to the identical Topology::distance value.
  const auto graph = sim::make_topology("de_bruijn:6");
  const FlatAdjacency& flat = graph->flat_adjacency();
  const DistanceOracle oracle(flat, 4, 600);
  oracle.ensure_targets({1, 2, 3});
  EXPECT_EQ(oracle.num_columns(), 2u);
  EXPECT_NE(oracle.distances_to(1), nullptr);
  EXPECT_NE(oracle.distances_to(2), nullptr);
  const std::uint32_t* denied = oracle.distances_to(3);
  EXPECT_EQ(denied, nullptr);
  for (VertexId x = 0; x < graph->num_vertices(); ++x) {
    EXPECT_EQ(metric_distance(*graph, denied, x, 3), graph->distance(x, 3));
    EXPECT_EQ(metric_distance(*graph, oracle.distances_to(1), x, 1), graph->distance(x, 1));
  }
  // Never-ensured and out-of-range targets answer nullptr, not UB.
  EXPECT_EQ(oracle.distances_to(17), nullptr);
  EXPECT_EQ(oracle.distances_to(graph->num_vertices() + 5), nullptr);
}

TEST(DistanceOracle, CachedOnSnapshotAndIdempotent) {
  const auto graph = sim::make_topology("shuffle_exchange:5");
  const FlatAdjacency& flat = graph->flat_adjacency();
  const DistanceOracle& first = flat.distance_oracle();
  const DistanceOracle& second = flat.distance_oracle();
  EXPECT_EQ(&first, &second) << "one oracle per snapshot";
  first.ensure_targets({7, 9});
  const std::size_t built = first.num_columns();
  const std::uint32_t* before = first.distances_to(7);
  ASSERT_NE(before, nullptr);
  first.ensure_targets({7, 9, 7});
  EXPECT_EQ(first.num_columns(), built) << "re-ensuring must not rebuild";
  EXPECT_EQ(first.distances_to(7), before) << "column pointers are stable";
}

}  // namespace
}  // namespace faultroute
