#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/routers/flood_router.hpp"
#include "core/routers/landmark_router.hpp"
#include "graph/hypercube.hpp"
#include "graph/mesh.hpp"
#include "percolation/cluster_analysis.hpp"
#include "percolation/edge_sampler.hpp"

namespace faultroute {
namespace {

TEST(Experiment, ConditionsOnConnectivity) {
  // Every accepted environment must actually connect u and v.
  const Mesh g(2, 8);
  FloodRouter router;
  ExperimentConfig config;
  config.trials = 25;
  config.base_seed = 7;
  const auto outcomes =
      run_routing_trials(g, 0.55, router, 0, g.num_vertices() - 1, config);
  ASSERT_EQ(outcomes.size(), 25u);
  for (const auto& o : outcomes) {
    const HashEdgeSampler s(0.55, o.seed);
    EXPECT_TRUE(*open_connected(g, s, 0, g.num_vertices() - 1));
    EXPECT_TRUE(o.routed);
    EXPECT_TRUE(o.path_valid);
    EXPECT_GE(o.distinct_probes, 1u);
    EXPECT_GE(o.total_probes, o.distinct_probes);
  }
}

TEST(Experiment, RejectionsAreCountedNearCriticality) {
  const Mesh g(2, 8);
  FloodRouter router;
  ExperimentConfig config;
  config.trials = 10;
  config.base_seed = 3;
  const auto outcomes = run_routing_trials(g, 0.45, router, 0, 20, config);
  std::uint64_t rejections = 0;
  for (const auto& o : outcomes) rejections += o.rejected;
  EXPECT_GT(rejections, 0u);  // subcritical-ish: many environments rejected
}

TEST(Experiment, ThrowsWhenConditioningImpossible) {
  const Mesh g(2, 6);
  FloodRouter router;
  ExperimentConfig config;
  config.trials = 1;
  config.max_resample_attempts = 5;
  EXPECT_THROW(run_routing_trials(g, 0.0, router, 0, 1, config), std::runtime_error);
}

TEST(Experiment, BudgetProducesCensoredTrials) {
  const Hypercube g(8);
  FloodRouter router;
  ExperimentConfig config;
  config.trials = 10;
  config.probe_budget = 5;  // absurdly small: flooding to the antipode fails
  config.base_seed = 11;
  const auto outcomes =
      run_routing_trials(g, 0.9, router, 0, g.num_vertices() - 1, config);
  int censored = 0;
  for (const auto& o : outcomes) {
    if (o.censored) {
      ++censored;
      EXPECT_FALSE(o.routed);
      EXPECT_LE(o.distinct_probes, 5u);
    }
  }
  EXPECT_GT(censored, 0);
}

TEST(Experiment, UnconditionedModeSkipsRejection) {
  const Mesh g(2, 6);
  FloodRouter router;
  ExperimentConfig config;
  config.trials = 20;
  config.require_connected = false;
  config.base_seed = 13;
  const auto outcomes = run_routing_trials(g, 0.3, router, 0, 35, config);
  int failures = 0;
  for (const auto& o : outcomes) {
    EXPECT_EQ(o.rejected, 0u);
    if (!o.routed) ++failures;
  }
  EXPECT_GT(failures, 0);  // at p=0.3 most pairs are disconnected
}

TEST(Experiment, DeterministicPerBaseSeed) {
  const Mesh g(2, 8);
  LandmarkRouter router;
  ExperimentConfig config;
  config.trials = 8;
  config.base_seed = 123;
  const auto a = run_routing_trials(g, 0.6, router, 0, 63, config);
  const auto b = run_routing_trials(g, 0.6, router, 0, 63, config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].distinct_probes, b[i].distinct_probes);
  }
}

TEST(Experiment, SummaryAggregatesCorrectly) {
  std::vector<TrialOutcome> outcomes(4);
  outcomes[0] = {.seed = 1, .rejected = 1, .routed = true, .censored = false,
                 .path_valid = true, .distinct_probes = 10, .total_probes = 12,
                 .path_edges = 4};
  outcomes[1] = {.seed = 2, .rejected = 0, .routed = true, .censored = false,
                 .path_valid = true, .distinct_probes = 20, .total_probes = 25,
                 .path_edges = 6};
  outcomes[2] = {.seed = 3, .rejected = 0, .routed = false, .censored = true,
                 .path_valid = false, .distinct_probes = 30, .total_probes = 30,
                 .path_edges = 0};
  outcomes[3] = {.seed = 4, .rejected = 3, .routed = false, .censored = false,
                 .path_valid = false, .distinct_probes = 5, .total_probes = 5,
                 .path_edges = 0};
  const ExperimentSummary s = summarize_trials(outcomes);
  EXPECT_EQ(s.trials, 4);
  EXPECT_EQ(s.routed, 2);
  EXPECT_EQ(s.censored, 1);
  EXPECT_EQ(s.unexpected_failures, 1);
  EXPECT_EQ(s.invalid_paths, 0);
  EXPECT_DOUBLE_EQ(s.mean_distinct, (10 + 20 + 30 + 5) / 4.0);
  EXPECT_DOUBLE_EQ(s.max_distinct, 30.0);
  EXPECT_DOUBLE_EQ(s.mean_path_edges, 5.0);
  EXPECT_DOUBLE_EQ(s.rejection_rate, 4.0 / 8.0);
}

TEST(Experiment, SummaryOfEmptyIsZeroed) {
  const ExperimentSummary s = summarize_trials({});
  EXPECT_EQ(s.trials, 0);
  EXPECT_EQ(s.routed, 0);
}

TEST(Experiment, MeasureRoutingEndToEnd) {
  const Mesh g(2, 10);
  LandmarkRouter router;
  ExperimentConfig config;
  config.trials = 15;
  config.base_seed = 99;
  const auto summary = measure_routing(g, 0.7, router, 0, 99, config);
  EXPECT_EQ(summary.trials, 15);
  EXPECT_EQ(summary.routed, 15);
  EXPECT_EQ(summary.censored, 0);
  EXPECT_EQ(summary.invalid_paths, 0);
  EXPECT_EQ(summary.unexpected_failures, 0);
  EXPECT_GT(summary.mean_distinct, 0.0);
  EXPECT_GE(summary.mean_path_edges, static_cast<double>(g.distance(0, 99)));
}

}  // namespace
}  // namespace faultroute
