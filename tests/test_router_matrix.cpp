// The completeness matrix: every complete local/oracle router, on every
// compatible topology, under both the edge-fault and node-fault samplers,
// must (a) find a path exactly when ground truth says one exists, (b) return
// only valid open paths, (c) never violate locality when run enforced.
// This is the library's strongest property suite — it exercises every
// topology's adjacency/key/endpoint code and every router's search logic
// against the same oracle (BFS ground truth).

#include <gtest/gtest.h>

#include <memory>

#include "core/probe_context.hpp"
#include "core/routers/bidirectional_router.hpp"
#include "core/routers/flood_router.hpp"
#include "core/routers/greedy_router.hpp"
#include "core/routers/hybrid_router.hpp"
#include "core/routers/landmark_router.hpp"
#include "graph/butterfly.hpp"
#include "graph/complete.hpp"
#include "graph/cube_connected_cycles.hpp"
#include "graph/cycle_matching.hpp"
#include "graph/de_bruijn.hpp"
#include "graph/double_tree.hpp"
#include "graph/hypercube.hpp"
#include "graph/mesh.hpp"
#include "graph/shuffle_exchange.hpp"
#include "percolation/cluster_analysis.hpp"
#include "percolation/edge_sampler.hpp"
#include "percolation/node_fault_sampler.hpp"

namespace faultroute {
namespace {

struct MatrixCase {
  std::string topology_label;
  std::shared_ptr<Topology> topology;
  std::string router_label;
  std::shared_ptr<Router> router;
  bool node_faults;
  double edge_p;   // per-topology: must sit above the family's threshold
  VertexId u;
  VertexId v;
};

std::vector<MatrixCase> build_matrix() {
  struct TopologyCase {
    std::string label;
    std::shared_ptr<Topology> topology;
    double edge_p;
    VertexId u;
    VertexId v;
  };
  const auto tree = std::make_shared<DoubleBinaryTree>(5);
  // Endpoint pairs are far apart; p sits above each family's threshold so a
  // reasonable fraction of environments connect them (the double tree's
  // threshold is 1/sqrt 2, hence the higher p and the root pair).
  const std::vector<TopologyCase> topologies = {
      {"hypercube7", std::make_shared<Hypercube>(7), 0.65, 0, 127},
      {"mesh2x9", std::make_shared<Mesh>(2, 9), 0.65, 0, 80},
      {"torus2x7", std::make_shared<Mesh>(2, 7, true), 0.65, 0, 24},
      {"mesh3x4", std::make_shared<Mesh>(3, 4), 0.65, 0, 63},
      {"double_tree5", tree, 0.85, tree->root1(), tree->root2()},
      {"complete40", std::make_shared<CompleteGraph>(40), 0.2, 0, 39},
      {"de_bruijn7", std::make_shared<DeBruijn>(7), 0.65, 0, 90},
      {"shuffle_exchange7", std::make_shared<ShuffleExchange>(7), 0.75, 0, 90},
      {"butterfly4", std::make_shared<Butterfly>(4), 0.65, 0, 60},
      {"ccc4", std::make_shared<CubeConnectedCycles>(4), 0.75, 0, 60},
      {"cycle_matching64", std::make_shared<CycleWithMatching>(64, 5), 0.75, 0, 33},
  };
  const std::vector<std::pair<std::string, std::shared_ptr<Router>>> routers = {
      {"flood", std::make_shared<FloodRouter>()},
      {"landmark", std::make_shared<LandmarkRouter>()},
      {"best_first", std::make_shared<BestFirstRouter>()},
      {"hybrid", std::make_shared<HybridGreedyRouter>()},
      {"bidirectional", std::make_shared<BidirectionalBfsRouter>()},
  };
  std::vector<MatrixCase> cases;
  for (const auto& t : topologies) {
    for (const auto& [rl, router] : routers) {
      for (const bool node_faults : {false, true}) {
        cases.push_back({t.label, t.topology, rl, router, node_faults, t.edge_p, t.u, t.v});
      }
    }
  }
  return cases;
}

class RouterMatrixTest : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(RouterMatrixTest, CompletenessValidityAndLocality) {
  const MatrixCase& c = GetParam();
  const Topology& g = *c.topology;
  Router& router = *c.router;
  const VertexId u = c.u;
  const VertexId v = c.v;
  int connected_seen = 0;
  int disconnected_seen = 0;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    std::unique_ptr<EdgeSampler> sampler;
    if (c.node_faults) {
      sampler = std::make_unique<NodeFaultSampler>(g, 0.93, c.edge_p, seed);
    } else {
      sampler = std::make_unique<HashEdgeSampler>(c.edge_p, seed);
    }
    const bool connected = *open_connected(g, *sampler, u, v);
    (connected ? connected_seen : disconnected_seen)++;
    ProbeContext ctx(g, *sampler, u, router.required_mode());
    std::optional<Path> path;
    ASSERT_NO_THROW(path = router.route(ctx, u, v))
        << c.topology_label << "/" << c.router_label << " seed " << seed;
    ASSERT_EQ(path.has_value(), connected)
        << c.topology_label << "/" << c.router_label << " seed " << seed;
    if (path) {
      EXPECT_TRUE(is_valid_open_path(g, *sampler, *path, u, v))
          << c.topology_label << "/" << c.router_label << " seed " << seed;
      EXPECT_GE(ctx.distinct_probes(), path->size() - 1);
    }
  }
  // The sweep must exercise at least one connected environment to be
  // meaningful (p = 0.65 on these small graphs virtually guarantees it).
  EXPECT_GT(connected_seen, 0) << c.topology_label << " never connected";
}

INSTANTIATE_TEST_SUITE_P(AllCombinations, RouterMatrixTest,
                         ::testing::ValuesIn(build_matrix()),
                         [](const ::testing::TestParamInfo<MatrixCase>& param_info) {
                           return param_info.param.topology_label + "_" +
                                  param_info.param.router_label +
                                  (param_info.param.node_faults ? "_nodefaults"
                                                                : "_edgefaults");
                         });

}  // namespace
}  // namespace faultroute
