#include <gtest/gtest.h>

#include "analysis/stats.hpp"
#include "core/probe_context.hpp"
#include "core/routers/flood_router.hpp"
#include "graph/hypercube.hpp"
#include "graph/mesh.hpp"
#include "percolation/cluster_analysis.hpp"
#include "percolation/node_fault_sampler.hpp"

namespace faultroute {
namespace {

TEST(NodeFaults, RejectsBadProbability) {
  const Hypercube g(4);
  EXPECT_THROW(NodeFaultSampler(g, -0.1, 0.5, 1), std::invalid_argument);
  EXPECT_THROW(NodeFaultSampler(g, 1.5, 0.5, 1), std::invalid_argument);
}

TEST(NodeFaults, AllAliveReducesToEdgePercolation) {
  const Hypercube g(6);
  const NodeFaultSampler node_sampler(g, 1.0, 0.5, 77);
  const HashEdgeSampler edge_only(0.5, 0);
  // Same marginal probability; exact equality is not expected (different
  // seeds), but every vertex must be alive.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_TRUE(node_sampler.vertex_alive(v));
  }
  EXPECT_DOUBLE_EQ(node_sampler.survival_probability(), 0.5);
}

TEST(NodeFaults, DeadEndpointClosesAllIncidentEdges) {
  const Hypercube g(6);
  const NodeFaultSampler sampler(g, 0.5, 1.0, 123);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (sampler.vertex_alive(v)) continue;
    for (int i = 0; i < g.degree(v); ++i) {
      EXPECT_FALSE(sampler.is_open(g.edge_key(v, i)))
          << "edge at dead vertex " << v << " must be closed";
    }
  }
}

TEST(NodeFaults, EdgeOpenImpliesBothEndpointsAlive) {
  const Mesh g(2, 10);
  const NodeFaultSampler sampler(g, 0.7, 0.8, 5);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (int i = 0; i < g.degree(v); ++i) {
      if (!sampler.is_open(g.edge_key(v, i))) continue;
      EXPECT_TRUE(sampler.vertex_alive(v));
      EXPECT_TRUE(sampler.vertex_alive(g.neighbor(v, i)));
    }
  }
}

TEST(NodeFaults, MarginalRateMatchesProduct) {
  const Hypercube g(12);
  const double node_p = 0.8;
  const double edge_p = 0.6;
  const NodeFaultSampler sampler(g, node_p, edge_p, 99);
  // Sample pairwise vertex-disjoint edges (the dimension-0 perfect
  // matching), so the Bernoulli samples are genuinely independent and the
  // Wilson interval is valid — edges sharing an endpoint are correlated by
  // construction under node faults.
  std::uint64_t open = 0;
  std::uint64_t total = 0;
  for (VertexId v = 0; v < g.num_vertices(); v += 2) {
    ++total;
    open += sampler.is_open(g.edge_key(v, 0)) ? 1 : 0;
  }
  const Interval ci = wilson_interval(open, total, 4.0);
  EXPECT_TRUE(ci.contains(node_p * node_p * edge_p))
      << "rate " << static_cast<double>(open) / static_cast<double>(total);
}

TEST(NodeFaults, StatesAreCorrelatedThroughSharedEndpoints) {
  // Two edges sharing an endpoint are both closed whenever that endpoint is
  // dead: Pr[both open] > Pr[open]^2 (positive correlation). Estimate both.
  const Hypercube g(14);
  const NodeFaultSampler sampler(g, 0.6, 1.0, 3);
  std::uint64_t both = 0;
  std::uint64_t first = 0;
  std::uint64_t total = 0;
  for (VertexId v = 0; v < g.num_vertices(); v += 5) {
    ++total;
    const bool e0 = sampler.is_open(g.edge_key(v, 0));
    const bool e1 = sampler.is_open(g.edge_key(v, 1));
    first += e0 ? 1 : 0;
    both += (e0 && e1) ? 1 : 0;
  }
  const double p_one = static_cast<double>(first) / static_cast<double>(total);
  const double p_both = static_cast<double>(both) / static_cast<double>(total);
  EXPECT_GT(p_both, p_one * p_one * 1.2);  // clearly super-multiplicative
}

TEST(NodeFaults, DeterministicPerSeed) {
  const Mesh g(2, 8);
  const NodeFaultSampler a(g, 0.7, 0.7, 11);
  const NodeFaultSampler b(g, 0.7, 0.7, 11);
  const NodeFaultSampler c(g, 0.7, 0.7, 12);
  int diffs = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (int i = 0; i < g.degree(v); ++i) {
      const EdgeKey k = g.edge_key(v, i);
      EXPECT_EQ(a.is_open(k), b.is_open(k));
      if (a.is_open(k) != c.is_open(k)) ++diffs;
    }
  }
  EXPECT_GT(diffs, 0);
}

TEST(NodeFaults, RoutersWorkUnchangedUnderNodeFaults) {
  // The whole probe stack is sampler-agnostic: flood-route a mesh under
  // node faults and verify the returned path only uses live vertices.
  const Mesh g(2, 10);
  FloodRouter router;
  int routed = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const NodeFaultSampler sampler(g, 0.9, 0.9, seed);
    const auto connected = open_connected(g, sampler, 0, g.num_vertices() - 1);
    ProbeContext ctx(g, sampler, 0, RoutingMode::kLocal);
    const auto path = router.route(ctx, 0, g.num_vertices() - 1);
    EXPECT_EQ(path.has_value(), *connected);
    if (!path) continue;
    ++routed;
    for (const VertexId v : *path) EXPECT_TRUE(sampler.vertex_alive(v));
  }
  EXPECT_GT(routed, 0);
}

TEST(NodeFaults, ClusterAnalysisSeesNodePercolation) {
  // At node_p = 0.3 on a supercritical-edge mesh the graph shatters even
  // though edge_p = 1.
  const Mesh g(2, 24);
  const NodeFaultSampler heavy(g, 0.3, 1.0, 9);
  const NodeFaultSampler light(g, 0.95, 1.0, 9);
  EXPECT_LT(analyze_components(g, heavy).largest_fraction(), 0.1);
  EXPECT_GT(analyze_components(g, light).largest_fraction(), 0.7);
}

}  // namespace
}  // namespace faultroute
