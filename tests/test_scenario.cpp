// Scenario subsystem: grammar parsing, validation, deterministic execution,
// and the reporter schemas.

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "scenario/reporter.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace faultroute::scenario {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) lines.push_back(line);
  return lines;
}

// ----------------------------------------------------------------- grammar

TEST(ScenarioSpec, DefaultsAndSingleValues) {
  const auto spec = parse_scenario("topology = hypercube:6");
  EXPECT_EQ(spec.name, "scenario");
  ASSERT_EQ(spec.topologies, std::vector<std::string>{"hypercube:6"});
  EXPECT_EQ(spec.routers, std::vector<std::string>{"landmark"});
  EXPECT_EQ(spec.workloads, std::vector<std::string>{"permutation"});
  ASSERT_EQ(spec.p_values.size(), 1u);
  EXPECT_DOUBLE_EQ(spec.p_values[0], 0.5);
  EXPECT_EQ(spec.trials, 1u);
  EXPECT_EQ(spec.num_cells(), 1u);
}

TEST(ScenarioSpec, ParsesCommentsListsAndRanges) {
  const auto spec = parse_scenario(R"(
      # a comment line
      name     = full-grammar          # trailing comment
      topology = hypercube:6, torus:2:8
      router   = landmark,greedy
      workload = permutation, poisson:2.5
      p        = 0.2:0.8:4
      messages = 128; trials = 2; seed = 42   # ;-separated assignments
      threads  = 3
      capacity = 2
      budget   = 1000
      max_steps = 500
  )");
  EXPECT_EQ(spec.name, "full-grammar");
  EXPECT_EQ(spec.topologies.size(), 2u);
  EXPECT_EQ(spec.routers.size(), 2u);
  EXPECT_EQ(spec.workloads[1], "poisson:2.5");
  ASSERT_EQ(spec.p_values.size(), 4u);
  EXPECT_DOUBLE_EQ(spec.p_values[0], 0.2);
  EXPECT_DOUBLE_EQ(spec.p_values[3], 0.8);
  EXPECT_EQ(spec.messages, 128u);
  EXPECT_EQ(spec.trials, 2u);
  EXPECT_EQ(spec.seed, 42u);
  EXPECT_EQ(spec.threads, 3u);
  EXPECT_EQ(spec.edge_capacity, 2u);
  EXPECT_EQ(spec.probe_budget, 1000u);
  EXPECT_EQ(spec.max_steps, 500u);
  // 2 topologies x 4 p x 2 routers x 2 workloads x 2 trials
  EXPECT_EQ(spec.num_cells(), 64u);
}

TEST(ScenarioSpec, CommaListOfProbabilities) {
  const auto spec = parse_scenario("topology=hypercube:6\np = 0.25, 0.5, 0.75");
  ASSERT_EQ(spec.p_values.size(), 3u);
  EXPECT_DOUBLE_EQ(spec.p_values[1], 0.5);
}

TEST(ScenarioSpec, OverridesComposeAcrossApplyCalls) {
  ScenarioSpec spec;
  apply_scenario_assignments(spec, "topology=hypercube:6; messages=512");
  apply_scenario_assignments(spec, "messages=64");  // later call wins
  validate_scenario(spec);
  EXPECT_EQ(spec.messages, 64u);
}

TEST(ScenarioSpec, RejectsBadSyntax) {
  const char* bad[] = {
      "topology hypercube:6",            // no '='
      "= hypercube:6",                   // missing key
      "topology =",                      // missing value
      "flavour = vanilla",               // unknown key
      "topology = hypercube:6, , mesh:2:8",  // empty list element
      "p = 0.1:0.9",                     // range needs 3 parts
      "p = 0.1:0.9:1",                   // range needs >= 2 points
      "p = 0.9:0.1:3",                   // reversed range
      "p = zero",                        // not a number
      "messages = -5",                   // negative integer
      "messages = 5x",                   // trailing garbage
      "trials = 1; trials = 2",          // duplicate key in one text
  };
  for (const char* text : bad) {
    EXPECT_THROW((void)parse_scenario(std::string("topology=hypercube:6\n") + text),
                 std::invalid_argument)
        << "'" << text << "'";
  }
}

TEST(ScenarioSpec, ValidatesRanges) {
  const char* bad[] = {
      "p = 1.5",       // probability > 1
      "p = -0.1",      // probability < 0
      "messages = 0",  // must be >= 1
      "trials = 0",    // must be >= 1
      "capacity = 0",  // must be >= 1
  };
  for (const char* text : bad) {
    EXPECT_THROW((void)parse_scenario(std::string("topology=hypercube:6\n") + text),
                 std::invalid_argument)
        << "'" << text << "'";
  }
  // No topology at all.
  EXPECT_THROW((void)parse_scenario("p = 0.5"), std::invalid_argument);
}

TEST(ScenarioSpec, RejectsOversizedCrossProductWithoutOverflowing) {
  // 2^62 trials x 4 routers wraps a naive uint64 product to 0; the
  // validator must multiply overflow-checked and reject.
  EXPECT_THROW((void)parse_scenario("topology = hypercube:4\n"
                                    "router = landmark, greedy, best-first, bidirectional\n"
                                    "trials = 4611686018427387904"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_scenario("topology = hypercube:4\ntrials = 2000000"),
               std::invalid_argument);
}

// ------------------------------------------------------------------ runner

constexpr const char* kTinyScenario =
    "topology = hypercube:5\n"
    "p        = 0.4, 0.8\n"
    "router   = landmark, greedy\n"
    "workload = random-pairs\n"
    "messages = 24\n"
    "trials   = 2\n"
    "seed     = 99\n";

std::string run_jsonl(unsigned threads) {
  auto spec = parse_scenario(kTinyScenario);
  spec.threads = threads;
  std::ostringstream out;
  JsonLinesReporter reporter(out);
  (void)run_scenario(spec, reporter);
  return out.str();
}

TEST(ScenarioRunner, EmitsSchemaVersionedJsonLines) {
  const auto lines = lines_of(run_jsonl(1));
  // header + 8 cells + footer
  ASSERT_EQ(lines.size(), 10u);
  EXPECT_NE(lines.front().find(std::string("\"schema\":\"") + kSchemaName + "\""),
            std::string::npos);
  EXPECT_NE(lines.front().find("\"provenance\""), std::string::npos);
  EXPECT_NE(lines.front().find("\"cells\":8"), std::string::npos);
  for (std::size_t i = 1; i + 1 < lines.size(); ++i) {
    EXPECT_EQ(lines[i].find("{\"type\":\"cell\",\"cell\":" + std::to_string(i - 1)), 0u);
  }
  EXPECT_EQ(lines.back(), "{\"type\":\"footer\",\"cells_reported\":8}");
}

TEST(ScenarioRunner, ByteIdenticalAcrossRerunsAndThreadCounts) {
  const std::string sequential = run_jsonl(1);
  EXPECT_EQ(sequential, run_jsonl(1)) << "rerun must be byte-identical";
  EXPECT_EQ(sequential, run_jsonl(4)) << "thread count must not change the report";
}

TEST(ScenarioRunner, SeedChangesEveryEnvironment) {
  auto spec = parse_scenario(kTinyScenario);
  spec.seed = 100;
  std::ostringstream out;
  JsonLinesReporter reporter(out);
  (void)run_scenario(spec, reporter);
  EXPECT_NE(out.str(), run_jsonl(1));
}

TEST(ScenarioRunner, SummaryCountsMatchCells) {
  auto spec = parse_scenario(kTinyScenario);
  std::ostringstream out;
  CsvReporter reporter(out);
  const RunSummary summary = run_scenario(spec, reporter);
  EXPECT_EQ(summary.cells, 8u);
  EXPECT_EQ(summary.messages, 8u * 24u);
  EXPECT_GE(summary.messages, summary.delivered);
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 9u);  // header row + 8 cells
  EXPECT_EQ(lines[0].rfind("schema,scenario,cell,topology,", 0), 0u);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_EQ(lines[i].rfind(std::string(kSchemaName) + ",", 0), 0u) << lines[i];
  }
}

TEST(ScenarioRunner, FailsFastOnBadRegistrySpecs) {
  std::ostringstream out;
  JsonLinesReporter reporter(out);

  auto bad_topology = parse_scenario("topology = klein_bottle:4");
  EXPECT_THROW((void)run_scenario(bad_topology, reporter), std::invalid_argument);

  auto bad_router = parse_scenario("topology = hypercube:5\nrouter = teleport");
  EXPECT_THROW((void)run_scenario(bad_router, reporter), std::invalid_argument);

  auto bad_workload = parse_scenario("topology = hypercube:5\nworkload = poisson");
  EXPECT_THROW((void)run_scenario(bad_workload, reporter), std::invalid_argument);

  // double-tree routers only route between the two roots.
  auto bad_pairing = parse_scenario("topology = hypercube:5\nrouter = double-tree-local");
  EXPECT_THROW((void)run_scenario(bad_pairing, reporter), std::invalid_argument);

  // hotspot target out of range for the topology (32 vertices).
  auto bad_target = parse_scenario("topology = hypercube:5\nworkload = hotspot:999");
  EXPECT_THROW((void)run_scenario(bad_target, reporter), std::invalid_argument);

  EXPECT_TRUE(out.str().empty()) << "fail-fast must precede any output";
}

TEST(ScenarioRunner, MakeReporterKnowsBothFormatsOnly) {
  std::ostringstream out;
  EXPECT_NE(make_reporter("jsonl", out), nullptr);
  EXPECT_NE(make_reporter("csv", out), nullptr);
  EXPECT_THROW((void)make_reporter("xml", out), std::invalid_argument);
}

}  // namespace
}  // namespace faultroute::scenario
