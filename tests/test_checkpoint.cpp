// Checkpoint/resume (scenario/checkpoint.hpp) and sharded sweeps +
// report merging (scenario/merge.hpp): journal encode/decode exactness,
// the spec fingerprint that guards resumes, byte-identical resumed and
// sharded-then-merged reports, and the strict validation both layers apply
// to torn or inconsistent inputs.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/checkpoint.hpp"
#include "scenario/merge.hpp"
#include "scenario/reporter.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace faultroute::scenario {
namespace {

namespace fs = std::filesystem;

fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / ("faultroute_ckpt_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const fs::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  ASSERT_TRUE(out.good());
}

/// An 8-cell sweep that runs in well under a second.
ScenarioSpec small_spec() {
  return parse_scenario(
      "topology = hypercube:5\n"
      "router = landmark, greedy\n"
      "p = 0.35, 0.65\n"
      "messages = 24; trials = 2; seed = 909\n");
}

std::string run_report(const ScenarioSpec& spec, const RunOptions& options,
                       const std::string& format = "jsonl") {
  std::ostringstream out;
  const auto reporter = make_reporter(format, out);
  (void)run_scenario(spec, *reporter, options);
  return out.str();
}

// ------------------------------------------------------------ journal codec

TEST(CheckpointCodec, RoundTripsEveryFieldExactly) {
  CellResult cell;
  cell.cell = 42;
  cell.topology = "torus:2:64";
  cell.topology_name = "torus with\ttabs\nand \\slashes\r";
  cell.vertices = 4096;
  cell.p = 0.1;  // not representable in binary — hexfloat must still round-trip
  cell.router = "best-first";
  cell.workload = "poisson:2.5";
  cell.trial = 3;
  cell.env_seed = 0xdeadbeefcafe1234ull;
  cell.workload_seed = std::numeric_limits<std::uint64_t>::max();
  cell.messages = 1024;
  cell.routed = 1000;
  cell.failed_routing = 20;
  cell.censored = 4;
  cell.invalid_paths = 0;
  cell.delivered = 990;
  cell.stranded = 10;
  cell.total_distinct_probes = 123456789;
  cell.unique_edges_probed = 54321;
  cell.cache_hits = 777;
  cell.cache_misses = 888;
  cell.probe_amortization = 1.0 / 3.0;
  cell.max_edge_load = 17;
  cell.mean_edge_load = 1e300;
  cell.edges_used = 999;
  cell.makespan = 55;
  cell.mean_queueing_delay = 5e-324;  // smallest subnormal
  cell.max_queueing_delay = 9;
  cell.mean_path_edges = -0.0;
  cell.throughput = 0.99999999999999989;
  cell.sim_steps = 60;
  cell.admission_events = 61;
  cell.transmissions = 62;
  cell.peak_active_channels = 63;
  cell.channels = 64;
  cell.has_timings = true;
  cell.routing_ms = 12.5;
  cell.delivery_ms = 0.0001;

  const CellResult back = decode_checkpoint_cell(encode_checkpoint_cell(cell));
  EXPECT_EQ(back.cell, cell.cell);
  EXPECT_EQ(back.topology, cell.topology);
  EXPECT_EQ(back.topology_name, cell.topology_name);
  EXPECT_EQ(back.vertices, cell.vertices);
  EXPECT_EQ(back.p, cell.p);
  EXPECT_EQ(back.router, cell.router);
  EXPECT_EQ(back.workload, cell.workload);
  EXPECT_EQ(back.trial, cell.trial);
  EXPECT_EQ(back.env_seed, cell.env_seed);
  EXPECT_EQ(back.workload_seed, cell.workload_seed);
  EXPECT_EQ(back.messages, cell.messages);
  EXPECT_EQ(back.routed, cell.routed);
  EXPECT_EQ(back.failed_routing, cell.failed_routing);
  EXPECT_EQ(back.censored, cell.censored);
  EXPECT_EQ(back.invalid_paths, cell.invalid_paths);
  EXPECT_EQ(back.delivered, cell.delivered);
  EXPECT_EQ(back.stranded, cell.stranded);
  EXPECT_EQ(back.total_distinct_probes, cell.total_distinct_probes);
  EXPECT_EQ(back.unique_edges_probed, cell.unique_edges_probed);
  EXPECT_EQ(back.cache_hits, cell.cache_hits);
  EXPECT_EQ(back.cache_misses, cell.cache_misses);
  EXPECT_EQ(back.probe_amortization, cell.probe_amortization);
  EXPECT_EQ(back.max_edge_load, cell.max_edge_load);
  EXPECT_EQ(back.mean_edge_load, cell.mean_edge_load);
  EXPECT_EQ(back.edges_used, cell.edges_used);
  EXPECT_EQ(back.makespan, cell.makespan);
  EXPECT_EQ(back.mean_queueing_delay, cell.mean_queueing_delay);
  EXPECT_EQ(back.max_queueing_delay, cell.max_queueing_delay);
  EXPECT_EQ(back.mean_path_edges, cell.mean_path_edges);
  EXPECT_TRUE(std::signbit(back.mean_path_edges));  // -0.0, not 0.0
  EXPECT_EQ(back.throughput, cell.throughput);
  EXPECT_EQ(back.sim_steps, cell.sim_steps);
  EXPECT_EQ(back.admission_events, cell.admission_events);
  EXPECT_EQ(back.transmissions, cell.transmissions);
  EXPECT_EQ(back.peak_active_channels, cell.peak_active_channels);
  EXPECT_EQ(back.channels, cell.channels);
  EXPECT_EQ(back.has_timings, cell.has_timings);
  EXPECT_EQ(back.routing_ms, cell.routing_ms);
  EXPECT_EQ(back.delivery_ms, cell.delivery_ms);
}

TEST(CheckpointCodec, RejectsMalformedLines) {
  const std::string good = encode_checkpoint_cell(CellResult{});
  EXPECT_THROW((void)decode_checkpoint_cell(""), std::runtime_error);
  EXPECT_THROW((void)decode_checkpoint_cell("cell\t1\t2"), std::runtime_error);
  EXPECT_THROW((void)decode_checkpoint_cell(good + "\textra"), std::runtime_error);
  EXPECT_THROW((void)decode_checkpoint_cell("x" + good), std::runtime_error);
}

// -------------------------------------------------------------- fingerprint

TEST(CheckpointFingerprint, IgnoresPresentationOnlyFields) {
  const ScenarioSpec base = small_spec();
  const std::uint64_t fp = spec_fingerprint(base);

  ScenarioSpec other = base;
  other.name = "renamed";
  other.threads = 7;
  other.adjacency = "implicit";
  other.frontier = "permsg";
  other.snapshot_dir = "somewhere";
  EXPECT_EQ(spec_fingerprint(other), fp);  // none of these change results
}

TEST(CheckpointFingerprint, ChangesWithEveryResultDeterminingField) {
  const ScenarioSpec base = small_spec();
  const std::uint64_t fp = spec_fingerprint(base);
  const auto differs = [&](void (*mutate)(ScenarioSpec&)) {
    ScenarioSpec other = base;
    mutate(other);
    return spec_fingerprint(other) != fp;
  };
  EXPECT_TRUE(differs([](ScenarioSpec& s) { s.seed += 1; }));
  EXPECT_TRUE(differs([](ScenarioSpec& s) { s.messages += 1; }));
  EXPECT_TRUE(differs([](ScenarioSpec& s) { s.trials += 1; }));
  EXPECT_TRUE(differs([](ScenarioSpec& s) { s.edge_capacity += 1; }));
  EXPECT_TRUE(differs([](ScenarioSpec& s) { s.probe_budget += 1; }));
  EXPECT_TRUE(differs([](ScenarioSpec& s) { s.max_steps += 1; }));
  EXPECT_TRUE(differs([](ScenarioSpec& s) { s.p_values[0] += 0.01; }));
  EXPECT_TRUE(differs([](ScenarioSpec& s) { s.topologies.push_back("hypercube:4"); }));
  EXPECT_TRUE(differs([](ScenarioSpec& s) { s.routers.pop_back(); }));
  EXPECT_TRUE(differs([](ScenarioSpec& s) { s.workloads[0] = "poisson:1"; }));
}

// ------------------------------------------------------------------- resume

TEST(CheckpointResume, ResumedRunEmitsByteIdenticalReport) {
  const fs::path dir = scratch_dir("resume");
  const ScenarioSpec spec = small_spec();
  const fs::path journal = dir / "sweep.ckpt";

  RunOptions options;
  options.checkpoint_path = journal.string();
  const std::string uninterrupted = run_report(spec, options);

  // The journal now holds all 8 cells. Chop it back to header + 3 cells to
  // simulate a sweep killed mid-flight, then resume.
  const std::string text = read_file(journal);
  std::size_t pos = 0;
  for (int newlines = 0; newlines < 4; ++newlines) pos = text.find('\n', pos) + 1;
  write_file(journal, text.substr(0, pos));
  EXPECT_EQ(CheckpointJournal(journal.string(), spec).num_completed(), 3u);

  const std::string resumed = run_report(spec, options);
  EXPECT_EQ(resumed, uninterrupted);

  // Fully-journaled rerun: every cell replays, the report still matches.
  EXPECT_EQ(CheckpointJournal(journal.string(), spec).num_completed(), 8u);
  EXPECT_EQ(run_report(spec, options), uninterrupted);
}

TEST(CheckpointResume, ResumeIsThreadCountIndependent) {
  const fs::path dir = scratch_dir("resume_threads");
  ScenarioSpec spec = small_spec();
  const fs::path journal = dir / "sweep.ckpt";

  RunOptions options;
  options.checkpoint_path = journal.string();
  spec.threads = 1;
  const std::string first = run_report(spec, options);
  const std::string text = read_file(journal);
  std::size_t pos = 0;
  for (int newlines = 0; newlines < 5; ++newlines) pos = text.find('\n', pos) + 1;
  write_file(journal, text.substr(0, pos));

  spec.threads = 4;  // thread count is outside the fingerprint, by design
  EXPECT_EQ(run_report(spec, options), first);
}

TEST(CheckpointResume, TornFinalLineIsDiscardedAndTruncated) {
  const fs::path dir = scratch_dir("torn");
  const ScenarioSpec spec = small_spec();
  const fs::path journal = dir / "sweep.ckpt";
  RunOptions options;
  options.checkpoint_path = journal.string();
  const std::string report = run_report(spec, options);

  const std::string text = read_file(journal);
  const std::string torn = text.substr(0, text.size() - 7);  // mid-final-line
  write_file(journal, torn);
  const CheckpointJournal loaded(journal.string(), spec);
  EXPECT_EQ(loaded.num_completed(), 7u);
  EXPECT_LT(fs::file_size(journal), torn.size());  // torn tail truncated away

  EXPECT_EQ(run_report(spec, options), report);
}

TEST(CheckpointResume, RefusesAJournalOfADifferentSpec) {
  const fs::path dir = scratch_dir("mismatch");
  const ScenarioSpec spec = small_spec();
  const fs::path journal = dir / "sweep.ckpt";
  RunOptions options;
  options.checkpoint_path = journal.string();
  (void)run_report(spec, options);

  ScenarioSpec reseeded = spec;
  reseeded.seed += 1;
  EXPECT_THROW(CheckpointJournal(journal.string(), reseeded), std::runtime_error);
  EXPECT_THROW((void)run_report(reseeded, options), std::runtime_error);
}

TEST(CheckpointResume, MidFileCorruptionThrowsInsteadOfResuming) {
  const fs::path dir = scratch_dir("corrupt");
  const ScenarioSpec spec = small_spec();
  const fs::path journal = dir / "sweep.ckpt";
  RunOptions options;
  options.checkpoint_path = journal.string();
  (void)run_report(spec, options);

  // Mangle the *second* cell line (not the final one): this cannot be a
  // torn append, so the journal is refused outright.
  auto text = read_file(journal);
  std::size_t pos = 0;
  for (int newlines = 0; newlines < 2; ++newlines) pos = text.find('\n', pos) + 1;
  text[pos + 5] = 'x';
  write_file(journal, text);
  EXPECT_THROW(CheckpointJournal(journal.string(), spec), std::runtime_error);
}

TEST(CheckpointResume, DuplicateCellThrows) {
  const fs::path dir = scratch_dir("duplicate");
  const ScenarioSpec spec = small_spec();
  const fs::path journal = dir / "sweep.ckpt";
  RunOptions options;
  options.checkpoint_path = journal.string();
  (void)run_report(spec, options);

  const std::string text = read_file(journal);
  const auto header_end = text.find('\n') + 1;
  const auto first_cell_end = text.find('\n', header_end) + 1;
  const std::string dup = text.substr(header_end, first_cell_end - header_end);
  write_file(journal, text + dup);  // newline-terminated duplicate, not torn
  EXPECT_THROW(CheckpointJournal(journal.string(), spec), std::runtime_error);
}

// ----------------------------------------------------------- shard + merge

TEST(ShardMerge, StitchedShardsMatchSingleProcessAcrossThreadCounts) {
  for (const std::string format : {"jsonl", "csv"}) {
    for (const unsigned threads : {1u, 2u, 4u}) {
      SCOPED_TRACE(format + " threads=" + std::to_string(threads));
      ScenarioSpec spec = small_spec();
      spec.threads = threads;
      const std::string single = run_report(spec, RunOptions{}, format);

      std::vector<std::string> shards;
      for (unsigned k = 1; k <= 3; ++k) {
        RunOptions options;
        options.shard_index = k;
        options.shard_count = 3;
        shards.push_back(run_report(spec, options, format));
      }
      std::ostringstream merged;
      const MergeStats stats = merge_reports(shards, merged);
      EXPECT_EQ(stats.format, format);
      EXPECT_EQ(stats.shards, 3u);
      EXPECT_EQ(stats.cells, 8u);
      EXPECT_EQ(merged.str(), single);
    }
  }
}

TEST(ShardMerge, ShardReportsOnlyOwnCells) {
  ScenarioSpec spec = small_spec();
  RunOptions options;
  options.shard_index = 2;
  options.shard_count = 3;
  std::ostringstream out;
  const auto reporter = make_reporter("jsonl", out);
  const RunSummary summary = run_scenario(spec, *reporter, options);
  EXPECT_EQ(summary.cells, 3u);  // cells 1, 4, 7 of 8
  EXPECT_NE(out.str().find("\"cell\":1,"), std::string::npos);
  EXPECT_NE(out.str().find("\"cell\":4,"), std::string::npos);
  EXPECT_NE(out.str().find("\"cell\":7,"), std::string::npos);
  EXPECT_EQ(out.str().find("\"cell\":0,"), std::string::npos);
}

TEST(ShardMerge, InvalidShardArgsAreRejected) {
  const ScenarioSpec spec = small_spec();
  std::ostringstream out;
  const auto reporter = make_reporter("jsonl", out);
  RunOptions options;
  options.shard_index = 4;
  options.shard_count = 3;
  EXPECT_THROW((void)run_scenario(spec, *reporter, options), std::invalid_argument);
  options.shard_index = 0;
  EXPECT_THROW((void)run_scenario(spec, *reporter, options), std::invalid_argument);
}

class MergeValidation : public ::testing::Test {
 protected:
  void SetUp() override {
    const ScenarioSpec spec = small_spec();
    for (unsigned k = 1; k <= 3; ++k) {
      RunOptions options;
      options.shard_index = k;
      options.shard_count = 3;
      shards_.push_back(run_report(spec, options));
    }
  }

  static std::string merged_of(const std::vector<std::string>& inputs) {
    std::ostringstream out;
    (void)merge_reports(inputs, out);
    return out.str();
  }

  std::vector<std::string> shards_;
};

TEST_F(MergeValidation, MissingShardIsReported) {
  EXPECT_THROW((void)merged_of({shards_[0], shards_[2]}), std::runtime_error);
  EXPECT_THROW((void)merged_of({}), std::runtime_error);
}

TEST_F(MergeValidation, DuplicateShardIsReported) {
  EXPECT_THROW((void)merged_of({shards_[0], shards_[1], shards_[1]}), std::runtime_error);
}

TEST_F(MergeValidation, HeaderMismatchIsReported) {
  ScenarioSpec reseeded = small_spec();
  reseeded.seed += 1;
  RunOptions options;
  options.shard_index = 3;
  options.shard_count = 3;
  const std::string foreign = run_report(reseeded, options);
  EXPECT_THROW((void)merged_of({shards_[0], shards_[1], foreign}), std::runtime_error);
}

TEST_F(MergeValidation, TruncatedShardIsReported) {
  // Drop the footer line (keeping the trailing newline of the last cell).
  std::string truncated = shards_[1];
  const auto footer = truncated.rfind("{\"type\":\"footer\"");
  truncated.resize(footer);
  EXPECT_THROW((void)merged_of({shards_[0], truncated, shards_[2]}), std::runtime_error);

  // Chop mid-line: no trailing newline at all.
  std::string torn = shards_[2];
  torn.resize(torn.size() - 3);
  EXPECT_THROW((void)merged_of({shards_[0], shards_[1], torn}), std::runtime_error);
}

TEST_F(MergeValidation, MergingACompleteSingleReportIsIdentity) {
  const std::string single = run_report(small_spec(), RunOptions{});
  EXPECT_EQ(merged_of({single}), single);
}

}  // namespace
}  // namespace faultroute::scenario
