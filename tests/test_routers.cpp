#include <gtest/gtest.h>

#include <memory>

#include "core/routers/bidirectional_router.hpp"
#include "core/routers/double_tree_routers.hpp"
#include "core/routers/flood_router.hpp"
#include "core/routers/gnp_routers.hpp"
#include "core/routers/greedy_router.hpp"
#include "core/routers/landmark_router.hpp"
#include "graph/complete.hpp"
#include "graph/double_tree.hpp"
#include "graph/hypercube.hpp"
#include "graph/mesh.hpp"
#include "percolation/cluster_analysis.hpp"
#include "percolation/edge_sampler.hpp"
#include "random/rng.hpp"

namespace faultroute {
namespace {

/// Routes u -> v and, when a path comes back, verifies it is a valid open
/// path. Returns the path.
std::optional<Path> route_and_check(Router& router, const Topology& g,
                                    const EdgeSampler& s, VertexId u, VertexId v) {
  ProbeContext ctx(g, s, u, router.required_mode());
  const auto path = router.route(ctx, u, v);
  if (path) {
    EXPECT_TRUE(is_valid_open_path(g, s, *path, u, v))
        << router.name() << " returned an invalid path on " << g.name();
  }
  return path;
}

// -------------------------------------------------- generic router contract

struct RouterCase {
  std::string label;
  std::shared_ptr<Router> router;
};

/// Routers that work on any topology, exercised on hypercube + mesh.
std::vector<RouterCase> generic_routers() {
  return {
      {"flood", std::make_shared<FloodRouter>()},
      {"flood-target-first", std::make_shared<FloodRouter>(true)},
      {"landmark", std::make_shared<LandmarkRouter>()},
      {"best-first", std::make_shared<BestFirstRouter>()},
      {"bidirectional", std::make_shared<BidirectionalBfsRouter>()},
  };
}

class GenericRouterTest : public ::testing::TestWithParam<RouterCase> {};

TEST_P(GenericRouterTest, FaultFreeHypercubeRoutes) {
  const Hypercube g(6);
  const HashEdgeSampler s(1.0, 1);
  Router& r = *GetParam().router;
  const auto path = route_and_check(r, g, s, 0, 63);
  ASSERT_TRUE(path.has_value());
  EXPECT_GE(path->size(), 7u);  // at least distance + 1 vertices
}

TEST_P(GenericRouterTest, FaultFreeMeshRoutes) {
  const Mesh g(2, 8);
  const HashEdgeSampler s(1.0, 2);
  Router& r = *GetParam().router;
  ASSERT_TRUE(route_and_check(r, g, s, 0, g.num_vertices() - 1).has_value());
}

TEST_P(GenericRouterTest, TrivialRouteToSelf) {
  const Hypercube g(4);
  const HashEdgeSampler s(0.5, 3);
  Router& r = *GetParam().router;
  const auto path = route_and_check(r, g, s, 9, 9);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, Path{9});
}

TEST_P(GenericRouterTest, DisconnectedReturnsNullopt) {
  const Hypercube g(4);
  ExplicitEdgeSampler s(false);  // every edge closed
  Router& r = *GetParam().router;
  EXPECT_FALSE(route_and_check(r, g, s, 0, 15).has_value());
}

TEST_P(GenericRouterTest, PercolatedMeshConnectedPairsAlwaysRouted) {
  // Completeness: whenever ground truth says u ~ v, the router finds a path.
  const Mesh g(2, 10);
  Router& r = *GetParam().router;
  if (r.name() == "greedy-descent") GTEST_SKIP();
  int connected_cases = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const HashEdgeSampler s(0.6, seed);
    const bool connected = *open_connected(g, s, 0, 99);
    const auto path = route_and_check(r, g, s, 0, 99);
    EXPECT_EQ(path.has_value(), connected) << "seed " << seed;
    connected_cases += connected ? 1 : 0;
  }
  EXPECT_GT(connected_cases, 0) << "test vacuous: no connected seeds";
}

TEST_P(GenericRouterTest, LocalRoutersSurviveEnforcement) {
  // Running under kLocal must not throw for local routers; oracle routers
  // declare themselves oracle.
  Router& r = *GetParam().router;
  const Hypercube g(7);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const HashEdgeSampler s(0.4, seed);
    ProbeContext ctx(g, s, 0, r.required_mode());
    EXPECT_NO_THROW(r.route(ctx, 0, 127)) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(AllGeneric, GenericRouterTest,
                         ::testing::ValuesIn(generic_routers()),
                         [](const auto& param_info) {
                           std::string n = param_info.param.label;
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// -------------------------------------------------------------- FloodRouter

TEST(FloodRouter, FindsShortestPathWhenFullyOpen) {
  const Mesh g(2, 6);
  const HashEdgeSampler s(1.0, 1);
  FloodRouter r;
  const auto path = route_and_check(r, g, s, 0, g.num_vertices() - 1);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size() - 1, g.distance(0, g.num_vertices() - 1));  // BFS is shortest
}

TEST(FloodRouter, ExhaustsComponentWhenTargetIsBlocked) {
  // Target isolated: flood discovers every other vertex (one open probe per
  // discovery) and probes each of the target's closed edges before giving
  // up. Edges between two already-discovered vertices are skipped, so the
  // distinct count is exactly (V - 2) spanning probes + deg(target).
  const Hypercube g(4);
  ExplicitEdgeSampler s(true);
  for (int i = 0; i < g.degree(15); ++i) s.set(g.edge_key(15, i), false);
  FloodRouter r;
  ProbeContext ctx(g, s, 0, RoutingMode::kLocal);
  EXPECT_FALSE(r.route(ctx, 0, 15).has_value());
  EXPECT_EQ(ctx.distinct_probes(), (g.num_vertices() - 2) + 4);
}

// ----------------------------------------------------------- LandmarkRouter

TEST(LandmarkRouter, FollowsDetoursAroundFaults) {
  const Mesh g(2, 5);
  ExplicitEdgeSampler s(true);
  // Close the entire straight corridor from (0,0) towards (4,0).
  for (int x = 0; x < 4; ++x) {
    const VertexId a = g.vertex_at({x, 0});
    const VertexId b = g.vertex_at({x + 1, 0});
    s.set(g.edge_key(a, edge_index_of(g, a, b)), false);
  }
  LandmarkRouter r;
  const auto path = route_and_check(r, g, s, g.vertex_at({0, 0}), g.vertex_at({4, 0}));
  ASSERT_TRUE(path.has_value());
  EXPECT_GT(path->size() - 1, 4u);  // must have detoured
}

TEST(LandmarkRouter, CheapOnFaultFreeGraph) {
  // With no faults each landmark BFS terminates after probing around one
  // vertex: complexity O(distance * degree).
  const Hypercube g(10);
  const HashEdgeSampler s(1.0, 1);
  LandmarkRouter r;
  ProbeContext ctx(g, s, 0, RoutingMode::kLocal);
  const auto path = r.route(ctx, 0, (1ULL << 10) - 1);
  ASSERT_TRUE(path.has_value());
  EXPECT_LE(ctx.distinct_probes(), 10u * 10u);
}

TEST(LandmarkRouter, SkipsLandmarksWhenBfsOvershoots) {
  // The BFS may hit a landmark beyond the next one; the router must accept
  // it (the paper notes u_j "might be skipped over").
  const Mesh g(1, 8);  // a path graph: landmarks are all vertices
  ExplicitEdgeSampler s(true);
  LandmarkRouter r;
  const auto path = route_and_check(r, g, s, 0, 7);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 8u);
}

// ------------------------------------------------------------ Greedy family

TEST(GreedyDescent, RoutesFaultFreeHypercubeAlongShortestPath) {
  const Hypercube g(8);
  const HashEdgeSampler s(1.0, 1);
  GreedyDescentRouter r;
  ProbeContext ctx(g, s, 0, RoutingMode::kLocal);
  const auto path = r.route(ctx, 0, 255);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size() - 1, 8u);                 // exactly the Hamming distance
  EXPECT_EQ(ctx.distinct_probes(), 8u);            // one probe per step
}

TEST(GreedyDescent, GivesUpWhenStuck) {
  const Hypercube g(3);
  ExplicitEdgeSampler s(true);
  // Close every improving edge of the source: 0 -> {1,2,4} all closed.
  for (int i = 0; i < 3; ++i) s.set(g.edge_key(0, i), false);
  GreedyDescentRouter r;
  ProbeContext ctx(g, s, 0, RoutingMode::kLocal);
  EXPECT_FALSE(r.route(ctx, 0, 7).has_value());
}

TEST(BestFirst, BacktracksWhereGreedyFails) {
  const Hypercube g(3);
  ExplicitEdgeSampler s(true);
  // Kill the direct edge 0-1 towards target 1; best-first must go around.
  s.set(g.edge_key(0, 0), false);
  BestFirstRouter r;
  const auto path = route_and_check(r, g, s, 0, 1);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size() - 1, 3u);  // e.g. 0 -> 2 -> 3 -> 1
}

// ------------------------------------------------------- DoubleTree routers

TEST(DoubleTreeLocal, RequiresRootPair) {
  const DoubleBinaryTree g(3);
  const HashEdgeSampler s(1.0, 1);
  DoubleTreeLocalRouter r(g);
  ProbeContext ctx(g, s, 0, RoutingMode::kLocal);
  EXPECT_THROW(r.route(ctx, 0, 1), std::invalid_argument);
}

TEST(DoubleTreeLocal, FaultFreeRouteHasLengthTwoN) {
  const DoubleBinaryTree g(4);
  const HashEdgeSampler s(1.0, 1);
  DoubleTreeLocalRouter r(g);
  const auto path = route_and_check(r, g, s, g.root1(), g.root2());
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size() - 1, 8u);
}

TEST(DoubleTreeLocal, CompleteOnRootPairs) {
  const DoubleBinaryTree g(5);
  DoubleTreeLocalRouter r(g);
  int connected_cases = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const HashEdgeSampler s(0.8, seed);
    const bool connected = *open_connected(g, s, g.root1(), g.root2());
    ProbeContext ctx(g, s, g.root1(), RoutingMode::kLocal);
    const auto path = r.route(ctx, g.root1(), g.root2());
    EXPECT_EQ(path.has_value(), connected) << "seed " << seed;
    if (path) {
      EXPECT_TRUE(is_valid_open_path(g, s, *path, g.root1(), g.root2()));
    }
    connected_cases += connected ? 1 : 0;
  }
  EXPECT_GT(connected_cases, 5);
}

TEST(DoubleTreePairedOracle, FaultFreeRoute) {
  const DoubleBinaryTree g(5);
  const HashEdgeSampler s(1.0, 1);
  DoubleTreePairedOracleRouter r(g);
  const auto path = route_and_check(r, g, s, g.root1(), g.root2());
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size() - 1, 10u);
}

TEST(DoubleTreePairedOracle, FindsOnlyDoublyOpenBranches) {
  // Pin a single doubly-open branch; all other tree-1 edges closed. The
  // oracle router must find exactly that branch.
  const DoubleBinaryTree g(3);
  using Side = DoubleBinaryTree::Side;
  ExplicitEdgeSampler s(false);
  // Branch to leaf heap 8+3=11: heap chain 11 -> 5 -> 2 -> 1.
  for (std::uint64_t c = 11; c >= 2; c >>= 1) {
    s.set(g.tree_edge_key(Side::kTree1, c), true);
    s.set(g.tree_edge_key(Side::kTree2, c), true);
  }
  DoubleTreePairedOracleRouter r(g);
  const auto path = route_and_check(r, g, s, g.root1(), g.root2());
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size() - 1, 6u);
  EXPECT_EQ((*path)[3], g.vertex_of_heap(11, Side::kTree1));  // through leaf 3
}

TEST(DoubleTreePairedOracle, MissesSinglyOpenPaths) {
  // A branch open in tree 1 but closed in tree 2 is invisible to the paired
  // router even though a cleverer oracle could detect disconnection faster;
  // pairing trades completeness *guarantees* only when p(tree2) is open —
  // here no doubly-open branch exists, so the router reports failure.
  const DoubleBinaryTree g(3);
  using Side = DoubleBinaryTree::Side;
  ExplicitEdgeSampler s(false);
  for (std::uint64_t c = 11; c >= 2; c >>= 1) {
    s.set(g.tree_edge_key(Side::kTree1, c), true);  // tree 2 stays closed
  }
  DoubleTreePairedOracleRouter r(g);
  ProbeContext ctx(g, s, g.root1(), RoutingMode::kOracle);
  EXPECT_FALSE(r.route(ctx, g.root1(), g.root2()).has_value());
}

TEST(DoubleTreePairedOracle, AgreesWithGroundTruthStatistically) {
  // On random environments the paired router succeeds iff a doubly-open
  // branch exists, which (leaf identification aside) is exactly {x ~ y}
  // through mirrored branches. Compare success rate against ground truth.
  const DoubleBinaryTree g(6);
  DoubleTreePairedOracleRouter r(g);
  int router_hits = 0;
  int truth_hits = 0;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    const HashEdgeSampler s(0.85, seed);
    ProbeContext ctx(g, s, g.root1(), RoutingMode::kOracle);
    if (r.route(ctx, g.root1(), g.root2()).has_value()) ++router_hits;
    if (*open_connected(g, s, g.root1(), g.root2())) ++truth_hits;
  }
  // The mirrored-branch event implies connectivity but not conversely.
  EXPECT_LE(router_hits, truth_hits);
  EXPECT_GT(router_hits, 0);
}

// -------------------------------------------------------------- Gnp routers

TEST(GnpOracle, RequiresCompleteGraph) {
  const Hypercube g(3);
  const HashEdgeSampler s(1.0, 1);
  GnpOracleRouter r;
  ProbeContext ctx(g, s, 0, RoutingMode::kOracle);
  EXPECT_THROW(r.route(ctx, 0, 7), std::invalid_argument);
}

TEST(GnpOracle, RoutesFaultFreeClique) {
  const CompleteGraph g(12);
  const HashEdgeSampler s(1.0, 1);
  GnpOracleRouter r;
  const auto path = route_and_check(r, g, s, 3, 9);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 2u);  // the direct edge is a cross pair immediately
}

TEST(GnpOracle, CompleteOnSparseGnp) {
  const CompleteGraph g(60);
  GnpOracleRouter r;
  int connected_cases = 0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const HashEdgeSampler s(3.0 / 60.0, seed);  // c = 3
    const bool connected = *open_connected(g, s, 0, 59);
    const auto path = route_and_check(r, g, s, 0, 59);
    EXPECT_EQ(path.has_value(), connected) << "seed " << seed;
    connected_cases += connected ? 1 : 0;
  }
  EXPECT_GT(connected_cases, 3);
}

TEST(GnpLocal, CompleteOnSparseGnp) {
  const CompleteGraph g(60);
  GnpLocalRouter r;
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const HashEdgeSampler s(3.0 / 60.0, seed);
    const bool connected = *open_connected(g, s, 0, 59);
    const auto path = route_and_check(r, g, s, 0, 59);
    EXPECT_EQ(path.has_value(), connected) << "seed " << seed;
  }
}

TEST(GnpOracleVsLocal, OracleProbesFewerOnAverage) {
  // The Theorem 10/11 gap, in miniature: oracle ~ n^1.5 beats local ~ n^2.
  const std::uint64_t n = 400;
  const CompleteGraph g(n);
  GnpLocalRouter local;
  GnpOracleRouter oracle;
  double local_total = 0;
  double oracle_total = 0;
  int cases = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const HashEdgeSampler s(3.0 / static_cast<double>(n), seed);
    if (!*open_connected(g, s, 0, n - 1)) continue;
    ProbeContext lctx(g, s, 0, RoutingMode::kLocal);
    ASSERT_TRUE(local.route(lctx, 0, n - 1).has_value());
    local_total += static_cast<double>(lctx.distinct_probes());
    ProbeContext octx(g, s, 0, RoutingMode::kOracle);
    ASSERT_TRUE(oracle.route(octx, 0, n - 1).has_value());
    oracle_total += static_cast<double>(octx.distinct_probes());
    ++cases;
  }
  ASSERT_GT(cases, 5);
  EXPECT_LT(oracle_total, local_total / 2.0);
}

}  // namespace
}  // namespace faultroute
