#include <gtest/gtest.h>

#include "graph/mesh.hpp"
#include "helpers/topology_checks.hpp"

namespace faultroute {
namespace {

TEST(Mesh, RejectsBadParameters) {
  EXPECT_THROW(Mesh(0, 4), std::invalid_argument);
  EXPECT_THROW(Mesh(9, 4), std::invalid_argument);
  EXPECT_THROW(Mesh(2, 1), std::invalid_argument);
  EXPECT_THROW(Mesh(2, 2, /*wrap=*/true), std::invalid_argument);  // parallel edges
  EXPECT_NO_THROW(Mesh(2, 2, /*wrap=*/false));
  EXPECT_NO_THROW(Mesh(3, 3, /*wrap=*/true));
}

TEST(Mesh, CountsAreExact) {
  const Mesh g(2, 4);
  EXPECT_EQ(g.num_vertices(), 16u);
  EXPECT_EQ(g.num_edges(), 2u * 4u * 3u);  // 2 axes * 4 lines * 3 edges each
  const Mesh t(2, 4, /*wrap=*/true);
  EXPECT_EQ(t.num_edges(), 2u * 4u * 4u);
}

TEST(Mesh, CoordinateRoundTrip) {
  const Mesh g(3, 5);
  for (VertexId v = 0; v < g.num_vertices(); v += 11) {
    EXPECT_EQ(g.vertex_at(g.coords_of(v)), v);
  }
}

TEST(Mesh, CornerAndInteriorDegrees) {
  const Mesh g(2, 4);
  EXPECT_EQ(g.degree(g.vertex_at({0, 0})), 2);    // corner
  EXPECT_EQ(g.degree(g.vertex_at({1, 0})), 3);    // boundary
  EXPECT_EQ(g.degree(g.vertex_at({1, 1})), 4);    // interior
  const Mesh t(2, 4, /*wrap=*/true);
  for (VertexId v = 0; v < t.num_vertices(); ++v) EXPECT_EQ(t.degree(v), 4);
}

TEST(Mesh, DistanceIsL1) {
  const Mesh g(2, 10);
  EXPECT_EQ(g.distance(g.vertex_at({0, 0}), g.vertex_at({3, 4})), 7u);
  EXPECT_EQ(g.distance(g.vertex_at({9, 9}), g.vertex_at({9, 9})), 0u);
}

TEST(Mesh, TorusDistanceWraps) {
  const Mesh t(1, 10, /*wrap=*/true);
  EXPECT_EQ(t.distance(0, 9), 1u);
  EXPECT_EQ(t.distance(0, 5), 5u);
  const Mesh t2(2, 8, /*wrap=*/true);
  EXPECT_EQ(t2.distance(t2.vertex_at({0, 0}), t2.vertex_at({7, 7})), 2u);
}

TEST(Mesh, StructuralInvariants) {
  faultroute::testing::check_topology_invariants(Mesh(1, 6));
  faultroute::testing::check_topology_invariants(Mesh(2, 5));
  faultroute::testing::check_topology_invariants(Mesh(3, 3));
  faultroute::testing::check_topology_invariants(Mesh(2, 5, /*wrap=*/true));
  faultroute::testing::check_topology_invariants(Mesh(3, 3, /*wrap=*/true));
  faultroute::testing::check_topology_invariants(Mesh(4, 3));
}

TEST(Mesh, DistanceAgreesWithBfs) {
  const Mesh g(2, 6);
  faultroute::testing::check_distance_against_bfs(
      g, {{0, 35}, {0, 0}, {7, 28}, {5, 30}});
  const Mesh t(2, 5, /*wrap=*/true);
  faultroute::testing::check_distance_against_bfs(t, {{0, 24}, {0, 12}, {3, 20}});
}

TEST(Mesh, ShortestPathsAreValid) {
  const Mesh g(3, 4);
  faultroute::testing::check_shortest_path(g, {{0, 63}, {5, 5}, {1, 62}});
  const Mesh t(2, 7, /*wrap=*/true);
  faultroute::testing::check_shortest_path(t, {{0, 48}, {0, 6}, {10, 40}});
}

TEST(Mesh, LabelsShowCoordinates) {
  const Mesh g(2, 4);
  EXPECT_EQ(g.vertex_label(g.vertex_at({3, 1})), "(3,1)");
}

TEST(Mesh, HugeMeshIsImplicit) {
  // 2^60-ish vertices, still O(1) adjacency.
  const Mesh g(4, 32768);
  const VertexId v = g.vertex_at({5, 7, 11, 13});
  EXPECT_EQ(g.coords_of(v)[2], 11);
  EXPECT_EQ(g.distance(0, v), 5u + 7u + 11u + 13u);
}

struct MeshCase {
  int dim;
  std::int64_t side;
  bool wrap;
};

class MeshPropertyTest : public ::testing::TestWithParam<MeshCase> {};

TEST_P(MeshPropertyTest, Invariants) {
  const auto& c = GetParam();
  const Mesh g(c.dim, c.side, c.wrap);
  faultroute::testing::check_topology_invariants(g);
}

TEST_P(MeshPropertyTest, PathBetweenOppositeCorners) {
  const auto& c = GetParam();
  const Mesh g(c.dim, c.side, c.wrap);
  faultroute::testing::check_shortest_path(g, {{0, g.num_vertices() - 1}});
}

INSTANTIATE_TEST_SUITE_P(Shapes, MeshPropertyTest,
                         ::testing::Values(MeshCase{1, 9, false}, MeshCase{1, 9, true},
                                           MeshCase{2, 3, false}, MeshCase{2, 3, true},
                                           MeshCase{2, 8, false}, MeshCase{3, 4, false},
                                           MeshCase{3, 4, true}, MeshCase{4, 3, true}));

}  // namespace
}  // namespace faultroute
