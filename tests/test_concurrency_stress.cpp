// Concurrency stress suite — the workload the CI `tsan` job exists for.
//
// Every lock-free or lazily-initialised shared structure in the repo gets
// hammered here from many threads at once, with a start barrier so the
// threads actually collide: SharedProbeCache CAS publication,
// ShardedProbeCache mutex sharding, CounterRegistry per-thread slabs (with a
// concurrent snapshotter), PhaseProfiler scopes from worker threads,
// DistanceOracle grow-only column memo, the lazy Topology::channel_index /
// flat_adjacency / FlatAdjacency::distance_oracle caches, IndexedStateMemo
// epoch cells, and the full threaded traffic engine across both probe-state
// backends and both frontier modes.
//
// The assertions are the structures' documented determinism contracts
// (exact counter identities, value purity, one-instance lazy init). Run
// under ThreadSanitizer (-DFAULTROUTE_TSAN=ON) these tests are additionally
// a race detector over every interleaving TSan happens to observe; the
// suite is deliberately allocation-light inside the hammer loops so TSan's
// happens-before graph stays dense.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "graph/channel_index.hpp"
#include "graph/de_bruijn.hpp"
#include "graph/distance_oracle.hpp"
#include "graph/flat_adjacency.hpp"
#include "graph/hypercube.hpp"
#include "obs/counter_registry.hpp"
#include "obs/phase_profiler.hpp"
#include "percolation/edge_sampler.hpp"
#include "percolation/indexed_memo.hpp"
#include "random/rng.hpp"
#include "sim/registry.hpp"
#include "traffic/shared_probe_cache.hpp"
#include "traffic/traffic_engine.hpp"
#include "traffic/workload.hpp"

namespace faultroute {
namespace {

/// Spawns `threads` workers, releases them through a spin barrier so they
/// enter `body(worker_index)` as simultaneously as the scheduler allows,
/// and joins. Rethrows nothing: bodies assert with gtest on their own.
void hammer(unsigned threads, const std::function<void(unsigned)>& body) {
  std::atomic<unsigned> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      ready.fetch_add(1);
      while (!go.load()) {
      }  // spin: wake all workers within one scheduling quantum
      body(t);
    });
  }
  while (ready.load() < threads) {
  }
  go.store(true);
  for (std::thread& worker : pool) worker.join();
}

constexpr unsigned kThreads = 8;

// ---------------------------------------------------------- probe caches

TEST(ConcurrencyStress, SharedProbeCacheCasPublicationIsExactUnderContention) {
  const Hypercube graph(9);  // 512 vertices, 2304 edges
  const HashEdgeSampler base(0.5, 42);
  const SharedProbeCache cache(base, graph);
  const ChannelIndex& channels = graph.channel_index();
  const std::uint32_t edges = channels.num_edge_ids();

  // Reference answers, resolved single-threaded on an identical cache.
  std::vector<std::pair<std::uint32_t, EdgeKey>> id_key(edges);
  std::vector<char> expected(edges);
  for (std::uint32_t c = 0; c < channels.num_channels(); ++c) {
    const VertexId tail = channels.tail(c);
    const int slot = channels.slot(c);
    id_key[channels.edge_id_of(c)] = {channels.edge_id_of(c),
                                      graph.edge_key(tail, slot)};
  }
  for (std::uint32_t e = 0; e < edges; ++e) {
    expected[e] = base.is_open(id_key[e].second) ? 1 : 0;
  }

  // Every worker probes every edge several times in a worker-dependent
  // order, so first-touch races happen on most edges.
  constexpr int kRounds = 4;
  std::atomic<std::uint64_t> wrong{0};
  hammer(kThreads, [&](unsigned worker) {
    for (int round = 0; round < kRounds; ++round) {
      for (std::uint32_t i = 0; i < edges; ++i) {
        const std::uint32_t e =
            (worker % 2 == 0) ? i : (edges - 1 - i);  // opposing sweeps collide
        const bool open = cache.is_open_indexed(id_key[e].first, id_key[e].second);
        if (open != (expected[e] == 1)) wrong.fetch_add(1);
      }
    }
  });

  EXPECT_EQ(wrong.load(), 0u) << "a racing probe observed a non-pure answer";
  // The documented counter identities: every probe is exactly one hit or one
  // miss, and a miss is counted only by the CAS winner.
  const std::uint64_t probes =
      static_cast<std::uint64_t>(kThreads) * kRounds * edges;
  EXPECT_EQ(cache.approx_hits() + cache.approx_misses(), probes);
  EXPECT_EQ(cache.approx_misses(), cache.unique_edges());
  EXPECT_EQ(cache.unique_edges(), edges);
}

TEST(ConcurrencyStress, ShardedProbeCacheKeepsTheSameIdentitiesUnderContention) {
  const Hypercube graph(8);
  const HashEdgeSampler base(0.45, 7);
  const ShardedProbeCache cache(base);

  std::vector<EdgeKey> keys;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const int deg = graph.degree(v);
    for (int i = 0; i < deg; ++i) {
      if (graph.neighbor(v, i) > v) keys.push_back(graph.edge_key(v, i));
    }
  }

  constexpr int kRounds = 4;
  std::atomic<std::uint64_t> wrong{0};
  hammer(kThreads, [&](unsigned worker) {
    for (int round = 0; round < kRounds; ++round) {
      for (std::size_t i = 0; i < keys.size(); ++i) {
        const std::size_t k = (worker % 2 == 0) ? i : (keys.size() - 1 - i);
        if (cache.is_open(keys[k]) != base.is_open(keys[k])) wrong.fetch_add(1);
      }
    }
  });

  EXPECT_EQ(wrong.load(), 0u);
  const std::uint64_t probes =
      static_cast<std::uint64_t>(kThreads) * kRounds * keys.size();
  EXPECT_EQ(cache.approx_hits() + cache.approx_misses(), probes);
  EXPECT_EQ(cache.approx_misses(), cache.unique_edges());
  EXPECT_EQ(cache.unique_edges(), keys.size());
}

// ------------------------------------------------------- counter registry

TEST(ConcurrencyStress, CounterRegistrySlabMergeIsExactAfterJoin) {
  obs::CounterRegistry registry;
  const auto sum_id = registry.id("stress.sum");
  const auto max_id = registry.id("stress.max", obs::MergeKind::kMax);

  constexpr std::uint64_t kIncrements = 20000;
  // A concurrent snapshotter thread: totals mid-run are unspecified (slabs
  // are merged while owners still write) but must be safe; under TSan this
  // is the reader/writer pair the relaxed atomics exist for.
  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    while (!stop.load()) {
      (void)registry.snapshot();
      (void)registry.value(sum_id);
    }
  });

  hammer(kThreads, [&](unsigned worker) {
    for (std::uint64_t i = 1; i <= kIncrements; ++i) {
      registry.add(sum_id, 1);
      registry.record_max(max_id, worker * kIncrements + i);
    }
  });
  stop.store(true);
  snapshotter.join();

  // After the workers join, the merge is exact by contract.
  EXPECT_EQ(registry.value(sum_id), kThreads * kIncrements);
  EXPECT_EQ(registry.value(max_id), (kThreads - 1) * kIncrements + kIncrements);
}

TEST(ConcurrencyStress, GlobalRegistryFindOrRegisterRacesResolveToOneCounter) {
  // Racing global_count calls on the same fresh name must converge on a
  // single counter id and lose no increments.
  obs::CounterRegistry& registry = obs::global_registry();
  const std::string name = "stress.global.fan_in";
  constexpr std::uint64_t kIncrements = 5000;
  const std::uint64_t before = registry.value(registry.id(name));
  hammer(kThreads, [&](unsigned) {
    for (std::uint64_t i = 0; i < kIncrements; ++i) obs::global_count(name);
  });
  EXPECT_EQ(registry.value(registry.id(name)) - before, kThreads * kIncrements);
}

// --------------------------------------------------------- phase profiler

TEST(ConcurrencyStress, PhaseProfilerRecordsEveryScopeFromEveryWorker) {
  obs::PhaseProfiler profiler;
  constexpr int kScopes = 500;
  hammer(kThreads, [&](unsigned worker) {
    profiler.label_current_thread("worker");
    for (int i = 0; i < kScopes; ++i) {
      const obs::PhaseProfiler::Scope outer(&profiler, "outer");
      const obs::PhaseProfiler::Scope inner(&profiler, "inner");
      (void)worker;
    }
  });
  std::uint64_t outer = 0;
  std::uint64_t inner = 0;
  for (const auto& stat : profiler.aggregate()) {
    if (stat.path == "outer") outer = stat.count;
    if (stat.path == "outer/inner") inner = stat.count;
  }
  EXPECT_EQ(outer, static_cast<std::uint64_t>(kThreads) * kScopes);
  EXPECT_EQ(inner, static_cast<std::uint64_t>(kThreads) * kScopes);
  EXPECT_EQ(profiler.tracks().size(), kThreads);
}

// --------------------------------------------------------- distance oracle

TEST(ConcurrencyStress, DistanceOracleGrowOnlyMemoIsPureUnderConcurrentGrowth) {
  const DeBruijn graph(8);  // 256 vertices, no closed-form metric
  const FlatAdjacency flat(graph);
  const DistanceOracle oracle(flat);

  // Workers grow the memo with overlapping target blocks while others read
  // columns and ALT bounds for targets that may be mid-build.
  const std::uint64_t n = graph.num_vertices();
  std::atomic<std::uint64_t> wrong{0};
  hammer(kThreads, [&](unsigned worker) {
    std::vector<VertexId> targets;
    for (VertexId t = worker % 4; t < n; t += 4) targets.push_back(t);
    oracle.ensure_targets(targets);
    Rng rng(worker + 1);
    for (int i = 0; i < 2000; ++i) {
      const auto u = static_cast<VertexId>(uniform_below(rng, n));
      const auto t = static_cast<VertexId>(uniform_below(rng, n));
      const std::uint32_t* column = oracle.distances_to(t);
      const std::uint64_t exact = graph.distance(u, t);
      if (column != nullptr && column[u] != exact) wrong.fetch_add(1);
      if (oracle.lower_bound(u, t) > exact) wrong.fetch_add(1);
    }
  });
  EXPECT_EQ(wrong.load(), 0u);
  EXPECT_EQ(oracle.num_columns(), n);  // all four residue classes merged
}

// ------------------------------------------------------- lazy topology caches

TEST(ConcurrencyStress, LazySnapshotCachesInitializeOnceUnderFirstTouchRaces) {
  for (int round = 0; round < 8; ++round) {
    const Hypercube graph(10);
    std::vector<const ChannelIndex*> index_seen(kThreads);
    std::vector<const FlatAdjacency*> flat_seen(kThreads);
    std::vector<const DistanceOracle*> oracle_seen(kThreads);
    hammer(kThreads, [&](unsigned worker) {
      // All three lazy layers first-touched concurrently, in two orders so
      // the flat_adjacency() path also races channel_index() init.
      if (worker % 2 == 0) {
        index_seen[worker] = &graph.channel_index();
        flat_seen[worker] = &graph.flat_adjacency();
      } else {
        flat_seen[worker] = &graph.flat_adjacency();
        index_seen[worker] = &graph.channel_index();
      }
      oracle_seen[worker] = &flat_seen[worker]->distance_oracle();
    });
    for (unsigned t = 1; t < kThreads; ++t) {
      EXPECT_EQ(index_seen[t], index_seen[0]);
      EXPECT_EQ(flat_seen[t], flat_seen[0]);
      EXPECT_EQ(oracle_seen[t], oracle_seen[0]);
    }
  }
}

// ----------------------------------------------------------- indexed memo

TEST(ConcurrencyStress, IndexedStateMemoRacingStoresOfPureValuesStayConsistent) {
  detail::IndexedStateMemo memo;
  constexpr std::uint32_t kCells = 4096;
  memo.attach(kCells);
  // The samplers' contract: concurrent load/store of *pure* per-id values.
  const auto pure_state = [](std::uint32_t id) {
    return static_cast<std::uint8_t>(1 + id % 3);  // states 1..3 fit kStateBits
  };
  std::atomic<std::uint64_t> wrong{0};
  hammer(kThreads, [&](unsigned worker) {
    for (int round = 0; round < 6; ++round) {
      for (std::uint32_t i = 0; i < kCells; ++i) {
        const std::uint32_t id = (worker % 2 == 0) ? i : (kCells - 1 - i);
        const std::uint8_t loaded = memo.load(id);
        if (loaded == detail::IndexedStateMemo::kUnknown) {
          memo.store(id, pure_state(id));
        } else if (loaded != pure_state(id)) {
          wrong.fetch_add(1);
        }
      }
    }
  });
  EXPECT_EQ(wrong.load(), 0u);
  for (std::uint32_t id = 0; id < kCells; ++id) {
    EXPECT_EQ(memo.load(id), pure_state(id)) << "cell " << id;
  }
}

// -------------------------------------------- whole-engine threaded routing

TEST(ConcurrencyStress, ThreadedTrafficIsBitIdenticalAcrossBackendsAndModes) {
  // The capstone: the full engine at threads=4 across both probe-state
  // backends and both frontier modes must reproduce the single-threaded
  // run bit-for-bit. Under TSan this routes real batches through
  // ProbeArena pooling, the lock-free cache, the batch executor's shared
  // block memo, and the counter slabs at once.
  const auto graph = sim::make_topology("de_bruijn:8");
  const HashEdgeSampler env(0.55, derive_seed(2005, 3));
  WorkloadConfig workload = sim::make_workload("random-pairs");
  workload.messages = 384;
  workload.seed = derive_seed(2005, 4);
  const auto messages = generate_workload(*graph, workload);
  const auto factory = [&]() { return sim::make_router("best-first", *graph); };

  const auto run_with = [&](unsigned threads, bool dense, FrontierMode frontier) {
    TrafficConfig config;
    config.threads = threads;
    config.dense_probe_state = dense;
    config.frontier = frontier;
    return run_traffic(*graph, env, factory, messages, config);
  };

  const TrafficResult baseline = run_with(1, true, FrontierMode::kBatch);
  for (const bool dense : {true, false}) {
    for (const FrontierMode frontier : {FrontierMode::kBatch, FrontierMode::kPerMessage}) {
      const TrafficResult threaded = run_with(4, dense, frontier);
      EXPECT_EQ(threaded.routed, baseline.routed);
      EXPECT_EQ(threaded.delivered, baseline.delivered);
      EXPECT_EQ(threaded.makespan, baseline.makespan);
      EXPECT_EQ(threaded.total_distinct_probes, baseline.total_distinct_probes);
      EXPECT_EQ(threaded.unique_edges_probed, baseline.unique_edges_probed);
      ASSERT_EQ(threaded.outcomes.size(), baseline.outcomes.size());
      for (std::size_t i = 0; i < baseline.outcomes.size(); ++i) {
        EXPECT_EQ(threaded.outcomes[i].delivered, baseline.outcomes[i].delivered);
        EXPECT_EQ(threaded.outcomes[i].finish_time, baseline.outcomes[i].finish_time);
        EXPECT_EQ(threaded.outcomes[i].path_edges, baseline.outcomes[i].path_edges);
      }
    }
  }
}

}  // namespace
}  // namespace faultroute
