#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/routers/flood_router.hpp"
#include "core/routers/greedy_router.hpp"
#include "graph/hypercube.hpp"
#include "graph/mesh.hpp"
#include "percolation/edge_sampler.hpp"
#include "traffic/shared_probe_cache.hpp"
#include "traffic/traffic_engine.hpp"
#include "traffic/workload.hpp"

namespace faultroute {
namespace {

RouterFactory best_first_factory() {
  return [] { return std::make_unique<BestFirstRouter>(); };
}

// --------------------------------------------------------------- workloads

TEST(Workload, ParseRoundTripsEveryName) {
  for (const auto& name : workload_names()) {
    EXPECT_EQ(workload_name(parse_workload(name)), name);
  }
  EXPECT_THROW((void)parse_workload("nope"), std::invalid_argument);
}

TEST(Workload, GeneratorsProduceRequestedCountWithDistinctEndpoints) {
  const Hypercube g(6);
  for (const auto& name : workload_names()) {
    WorkloadConfig config;
    config.kind = parse_workload(name);
    config.messages = 200;
    const auto messages = generate_workload(g, config);
    ASSERT_EQ(messages.size(), 200u) << name;
    for (std::size_t i = 0; i < messages.size(); ++i) {
      EXPECT_EQ(messages[i].id, i) << name;
      EXPECT_NE(messages[i].source, messages[i].target) << name;
      EXPECT_LT(messages[i].source, g.num_vertices()) << name;
      EXPECT_LT(messages[i].target, g.num_vertices()) << name;
    }
  }
}

TEST(Workload, PermutationRoundIsAPermutation) {
  // With messages <= n every source appears at most once and so does every
  // target (one round of a fixed-point-free restriction of a permutation).
  const Hypercube g(6);
  WorkloadConfig config;
  config.kind = WorkloadKind::kPermutation;
  config.messages = 48;
  const auto messages = generate_workload(g, config);
  std::set<VertexId> sources;
  std::set<VertexId> targets;
  for (const auto& msg : messages) {
    EXPECT_TRUE(sources.insert(msg.source).second);
    EXPECT_TRUE(targets.insert(msg.target).second);
  }
}

TEST(Workload, HotspotTargetsOneVertex) {
  const Hypercube g(5);
  WorkloadConfig config;
  config.kind = WorkloadKind::kHotspot;
  config.messages = 100;
  config.hotspot_target = 7;
  for (const auto& msg : generate_workload(g, config)) {
    EXPECT_EQ(msg.target, 7u);
    EXPECT_NE(msg.source, 7u);
  }
}

TEST(Workload, BisectionCrossesTheCut) {
  const Hypercube g(5);
  WorkloadConfig config;
  config.kind = WorkloadKind::kBisection;
  config.messages = 100;
  const std::uint64_t half = g.num_vertices() / 2;
  for (const auto& msg : generate_workload(g, config)) {
    EXPECT_LT(msg.source, half);
    EXPECT_GE(msg.target, half);
  }
}

TEST(Workload, PoissonArrivalsAreNondecreasingAndSpread) {
  const Hypercube g(6);
  WorkloadConfig config;
  config.kind = WorkloadKind::kPoisson;
  config.messages = 300;
  config.arrival_rate = 2.0;
  const auto messages = generate_workload(g, config);
  for (std::size_t i = 1; i < messages.size(); ++i) {
    EXPECT_GE(messages[i].inject_time, messages[i - 1].inject_time);
  }
  // Mean inter-arrival 1/rate: the last arrival lands near messages/rate.
  EXPECT_GT(messages.back().inject_time, 300u / 2 / 2);
  EXPECT_LT(messages.back().inject_time, 2 * 300u / 2);
}

TEST(Workload, RejectsMessageCountsThatWouldAliasIds) {
  // Message ids are 32-bit; the old behaviour silently truncated the index,
  // aliasing every message past 2^32. The guard runs before any allocation,
  // so requesting the absurd count is cheap. Both generator families (the
  // permutation round loop and the independent-draw loop) are covered.
  const Hypercube g(6);
  for (const auto& name : workload_names()) {
    WorkloadConfig config;
    config.kind = parse_workload(name);
    config.messages = (std::uint64_t{1} << 32);  // UINT32_MAX + 1
    config.arrival_rate = 1.0;
    EXPECT_THROW((void)generate_workload(g, config), std::invalid_argument) << name;
  }
  WorkloadConfig max_ok;
  max_ok.messages = 0;  // the boundary itself is fine (0 and small counts run)
  EXPECT_TRUE(generate_workload(g, max_ok).empty());
}

TEST(Workload, DeterministicInSeed) {
  const Hypercube g(6);
  WorkloadConfig config;
  config.kind = WorkloadKind::kRandomPairs;
  config.messages = 64;
  config.seed = 9;
  const auto a = generate_workload(g, config);
  const auto b = generate_workload(g, config);
  config.seed = 10;
  const auto c = generate_workload(g, config);
  ASSERT_EQ(a.size(), b.size());
  bool all_equal_to_c = true;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].source, b[i].source);
    EXPECT_EQ(a[i].target, b[i].target);
    all_equal_to_c = all_equal_to_c && a[i].source == c[i].source && a[i].target == c[i].target;
  }
  EXPECT_FALSE(all_equal_to_c);
}

// ------------------------------------------------------- SharedProbeCache

TEST(SharedProbeCache, TransparentOverBaseSampler) {
  const Hypercube g(6);
  const HashEdgeSampler base(0.5, 77);
  const SharedProbeCache cache(base, g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (int i = 0; i < g.degree(v); ++i) {
      const EdgeKey key = g.edge_key(v, i);
      EXPECT_EQ(cache.is_open(key), base.is_open(key));
      EXPECT_EQ(cache.is_open(key), base.is_open(key));  // cached path
    }
  }
  EXPECT_EQ(cache.unique_edges(), g.num_edges());
  EXPECT_EQ(cache.survival_probability(), base.survival_probability());
}

TEST(SharedProbeCache, ConsistentUnderConcurrentProbing) {
  const Hypercube g(8);
  const HashEdgeSampler base(0.5, 3);
  const SharedProbeCache cache(base, g);
  std::vector<std::thread> pool;
  std::atomic<bool> mismatch{false};
  for (int w = 0; w < 8; ++w) {
    pool.emplace_back([&] {
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        for (int i = 0; i < g.degree(v); ++i) {
          const EdgeKey key = g.edge_key(v, i);
          if (cache.is_open(key) != base.is_open(key)) mismatch = true;
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_FALSE(mismatch);
  EXPECT_EQ(cache.unique_edges(), g.num_edges());
}

// ----------------------------------------------------------- traffic engine

TrafficResult run_hypercube_batch(unsigned threads, bool shared_cache = true) {
  const Hypercube g(8);
  const HashEdgeSampler env(0.6, 11);
  WorkloadConfig workload;
  workload.kind = WorkloadKind::kRandomPairs;
  workload.messages = 400;
  workload.seed = 5;
  TrafficConfig config;
  config.threads = threads;
  config.use_shared_cache = shared_cache;
  return run_traffic(g, env, best_first_factory(), generate_workload(g, workload), config);
}

TEST(TrafficEngine, MessageConservation) {
  const TrafficResult r = run_hypercube_batch(4);
  EXPECT_EQ(r.messages, 400u);
  // Every message is accounted for exactly once.
  EXPECT_EQ(r.routed + r.failed_routing + r.censored + r.invalid_paths, r.messages);
  EXPECT_EQ(r.delivered + r.stranded, r.routed);
  EXPECT_EQ(r.stranded, 0u);  // capacity >= 1 and no step cap: everything drains
  EXPECT_EQ(r.invalid_paths, 0u);
  EXPECT_GT(r.delivered, 0u);
}

TEST(TrafficEngine, QueueConservationEdgeLoadsMatchDeliveredHops) {
  const TrafficResult r = run_hypercube_batch(2);
  // Total transmissions recorded on edges == total hops of delivered paths.
  std::uint64_t delivered_hops = 0;
  for (const MessageOutcome& out : r.outcomes) {
    if (out.delivered) delivered_hops += out.path_edges;
  }
  const double load_sum = r.mean_edge_load * static_cast<double>(r.edges_used);
  EXPECT_NEAR(load_sum, static_cast<double>(delivered_hops), 1e-6);
  EXPECT_GE(r.max_edge_load, static_cast<std::uint64_t>(r.mean_edge_load));
}

TEST(TrafficEngine, DeterministicAcrossThreadCounts) {
  const TrafficResult a = run_hypercube_batch(1);
  for (const unsigned threads : {2u, 8u}) {
    const TrafficResult b = run_hypercube_batch(threads);
    EXPECT_EQ(a.routed, b.routed);
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.total_distinct_probes, b.total_distinct_probes);
    EXPECT_EQ(a.unique_edges_probed, b.unique_edges_probed);
    EXPECT_EQ(a.max_edge_load, b.max_edge_load);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.mean_queueing_delay, b.mean_queueing_delay);
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
      EXPECT_EQ(a.outcomes[i].distinct_probes, b.outcomes[i].distinct_probes);
      EXPECT_EQ(a.outcomes[i].path_edges, b.outcomes[i].path_edges);
      EXPECT_EQ(a.outcomes[i].finish_time, b.outcomes[i].finish_time);
      EXPECT_EQ(a.outcomes[i].delivered, b.outcomes[i].delivered);
    }
  }
}

TEST(TrafficEngine, SharedCacheAmortisesDiscoveryWithoutChangingResults) {
  const TrafficResult with = run_hypercube_batch(4, true);
  const TrafficResult without = run_hypercube_batch(4, false);
  // The cache is semantically transparent...
  EXPECT_EQ(with.delivered, without.delivered);
  EXPECT_EQ(with.total_distinct_probes, without.total_distinct_probes);
  EXPECT_EQ(with.makespan, without.makespan);
  // ...and the batch re-uses discovered edges many times over.
  EXPECT_GT(with.unique_edges_probed, 0u);
  EXPECT_LT(with.unique_edges_probed, with.total_distinct_probes);
  EXPECT_GT(with.probe_amortization(), 1.0);
  // A batch can never discover more edges than the graph has.
  EXPECT_LE(with.unique_edges_probed, Hypercube(8).num_edges());
}

TEST(TrafficEngine, HotspotSaturatesTheTargetEdgeOnALine) {
  // Path graph 0-1-...-15, everything routed to vertex 0: every message must
  // cross the final edge {1,0}, which serialises deliveries at 1 msg/step.
  const Mesh g(1, 16, /*wrap=*/false);
  const HashEdgeSampler env(1.0, 1);
  WorkloadConfig workload;
  workload.kind = WorkloadKind::kHotspot;
  workload.messages = 64;
  workload.hotspot_target = 0;
  TrafficConfig config;
  const TrafficResult r =
      run_traffic(g, env, best_first_factory(), generate_workload(g, workload), config);
  EXPECT_EQ(r.delivered, 64u);
  EXPECT_EQ(r.max_edge_load, 64u);  // the {1,0} edge carries every message
  // Capacity 1 on the last hop: deliveries leave one per step, so the
  // makespan is at least the message count, and queueing dominates delay.
  EXPECT_GE(r.makespan, 64u);
  EXPECT_GT(r.mean_queueing_delay, 1.0);
}

TEST(TrafficEngine, ExtraCapacityRelievesTheHotspot) {
  const Mesh g(1, 16, /*wrap=*/false);
  const HashEdgeSampler env(1.0, 1);
  WorkloadConfig workload;
  workload.kind = WorkloadKind::kHotspot;
  workload.messages = 64;
  TrafficConfig narrow;
  narrow.edge_capacity = 1;
  TrafficConfig wide;
  wide.edge_capacity = 4;
  const auto messages = generate_workload(g, workload);
  const TrafficResult a = run_traffic(g, env, best_first_factory(), messages, narrow);
  const TrafficResult b = run_traffic(g, env, best_first_factory(), messages, wide);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_LT(b.makespan, a.makespan);
  EXPECT_LT(b.mean_queueing_delay, a.mean_queueing_delay);
}

TEST(TrafficEngine, UncongestedMessageHasZeroQueueingDelay) {
  const Hypercube g(6);
  const HashEdgeSampler env(1.0, 1);
  const std::vector<TrafficMessage> one{{0, 0, 63, 0}};
  const TrafficResult r = run_traffic(g, env, best_first_factory(), one, {});
  ASSERT_EQ(r.delivered, 1u);
  EXPECT_EQ(r.outcomes[0].queueing_delay, 0u);
  EXPECT_EQ(r.outcomes[0].finish_time, r.outcomes[0].path_edges);
  EXPECT_EQ(r.makespan, r.outcomes[0].path_edges);
}

TEST(TrafficEngine, PoissonInjectionTimesAreRespected) {
  const Hypercube g(6);
  const HashEdgeSampler env(0.8, 4);
  WorkloadConfig workload;
  workload.kind = WorkloadKind::kPoisson;
  workload.messages = 100;
  workload.arrival_rate = 0.5;
  const TrafficResult r =
      run_traffic(g, env, best_first_factory(), generate_workload(g, workload), {});
  for (const MessageOutcome& out : r.outcomes) {
    if (!out.delivered) continue;
    EXPECT_GE(out.finish_time, out.message.inject_time + out.path_edges);
  }
}

TEST(TrafficEngine, MaxStepsStrandsInFlightMessages) {
  const Mesh g(1, 16, /*wrap=*/false);
  const HashEdgeSampler env(1.0, 1);
  WorkloadConfig workload;
  workload.kind = WorkloadKind::kHotspot;
  workload.messages = 64;
  TrafficConfig config;
  config.max_steps = 5;  // far below the ~64-step drain time of the hotspot
  const TrafficResult r =
      run_traffic(g, env, best_first_factory(), generate_workload(g, workload), config);
  EXPECT_GT(r.stranded, 0u);
  EXPECT_EQ(r.delivered + r.stranded, r.routed);
}

TEST(TrafficEngine, ProbeBudgetCensorsMessages) {
  const Hypercube g(8);
  const HashEdgeSampler env(0.6, 11);
  WorkloadConfig workload;
  workload.kind = WorkloadKind::kRandomPairs;
  workload.messages = 100;
  TrafficConfig config;
  config.probe_budget = 3;  // too small to route across an 8-cube
  const auto factory = [] { return std::make_unique<FloodRouter>(); };
  const TrafficResult r =
      run_traffic(g, env, factory, generate_workload(g, workload), config);
  EXPECT_GT(r.censored, 0u);
  EXPECT_EQ(r.routed + r.failed_routing + r.censored + r.invalid_paths, r.messages);
}

/// A misbehaving router that fabricates the fault-free shortest path without
/// probing — its paths cross closed edges under percolation.
class BlindShortestPathRouter final : public Router {
 public:
  std::optional<Path> route(ProbeContext& ctx, VertexId u, VertexId v) override {
    return ctx.graph().shortest_path(u, v);
  }
  [[nodiscard]] std::string name() const override { return "blind"; }
  [[nodiscard]] RoutingMode required_mode() const override { return RoutingMode::kOracle; }
};

TEST(TrafficEngine, InvalidPathsAreExcludedFromRoutedAndDelivery) {
  const Hypercube g(6);
  const HashEdgeSampler env(0.3, 5);  // sparse: most fabricated paths hit a closed edge
  WorkloadConfig workload;
  workload.kind = WorkloadKind::kRandomPairs;
  workload.messages = 50;
  const auto factory = [] { return std::make_unique<BlindShortestPathRouter>(); };
  const TrafficResult r =
      run_traffic(g, env, factory, generate_workload(g, workload), {});
  EXPECT_GT(r.invalid_paths, 0u);
  // The exact partition holds even when verification rejects paths...
  EXPECT_EQ(r.routed + r.failed_routing + r.censored + r.invalid_paths, r.messages);
  // ...and rejected messages never enter the delivery simulation.
  EXPECT_EQ(r.delivered + r.stranded, r.routed);
}

TEST(TrafficEngine, InvalidPathOutcomesReportZeroPathEdges) {
  // Regression: invalidation reset out.routed but left out.path_edges at the
  // rejected path's hop count, so consumers summing path_edges over
  // non-delivered outcomes double-counted work that never happened.
  const Hypercube g(6);
  const HashEdgeSampler env(0.3, 5);
  WorkloadConfig workload;
  workload.kind = WorkloadKind::kRandomPairs;
  workload.messages = 50;
  const auto factory = [] { return std::make_unique<BlindShortestPathRouter>(); };
  const TrafficResult r =
      run_traffic(g, env, factory, generate_workload(g, workload), {});
  ASSERT_GT(r.invalid_paths, 0u);
  std::uint64_t invalidated = 0;
  for (const MessageOutcome& out : r.outcomes) {
    if (out.routed || out.censored) continue;
    // Both failed-routing and invalidated messages must report zero hops.
    EXPECT_EQ(out.path_edges, 0u);
    ++invalidated;
  }
  EXPECT_EQ(invalidated, r.invalid_paths + r.failed_routing);
}

TEST(TrafficEngine, TwoEdgeContentionHandComputed) {
  // Path graph 0-1-2, two messages 0 -> 2 injected at t=0, capacity 1.
  //   t=0: both queue on channel 0->1; id 0 transmits (edge {0,1}).
  //   t=1: id 0 queues on 1->2 and transmits; id 1 transmits on 0->1.
  //   t=2: id 0 arrives at 2 (delivered, finish 2); id 1 transmits on 1->2.
  //   t=3: id 1 delivered.
  const Mesh g(1, 3, /*wrap=*/false);
  const HashEdgeSampler env(1.0, 1);
  const std::vector<TrafficMessage> two{{0, 0, 2, 0}, {1, 0, 2, 0}};
  const TrafficResult r = run_traffic(g, env, best_first_factory(), two, {});
  ASSERT_EQ(r.delivered, 2u);
  EXPECT_EQ(r.outcomes[0].finish_time, 2u);
  EXPECT_EQ(r.outcomes[1].finish_time, 3u);
  EXPECT_EQ(r.makespan, 3u);
  EXPECT_EQ(r.outcomes[0].queueing_delay, 0u);  // never waited
  EXPECT_EQ(r.outcomes[1].queueing_delay, 1u);  // one step behind id 0 on each edge
  EXPECT_EQ(r.max_queueing_delay, 1u);
  // Both messages crossed both edges; directions pool per undirected edge.
  EXPECT_EQ(r.edges_used, 2u);
  EXPECT_EQ(r.max_edge_load, 2u);
  EXPECT_DOUBLE_EQ(r.mean_edge_load, 2.0);
  EXPECT_EQ(r.transmissions, 4u);
  EXPECT_EQ(r.sim_steps, 4u);             // t = 0, 1, 2, 3
  EXPECT_EQ(r.admission_events, 6u);      // 2 injections + 4 hop arrivals
  EXPECT_EQ(r.peak_active_channels, 2u);  // 0->1 and 1->2 busy at t=1
  EXPECT_EQ(r.channels, 4u);              // 2 undirected edges, both directions
}

TEST(TrafficEngine, DeliveryInvariantsOnAPoissonBatch) {
  const TrafficResult r = [] {
    const Hypercube g(7);
    const HashEdgeSampler env(0.55, 21);
    WorkloadConfig workload;
    workload.kind = WorkloadKind::kPoisson;
    workload.messages = 500;
    workload.arrival_rate = 4.0;
    workload.seed = 3;
    return run_traffic(g, env, best_first_factory(), generate_workload(g, workload), {});
  }();
  // Conservation partition: every message accounted for exactly once, and
  // with no step cap everything routed eventually drains.
  EXPECT_EQ(r.routed + r.failed_routing + r.censored + r.invalid_paths, r.messages);
  EXPECT_EQ(r.delivered + r.stranded, r.routed);
  EXPECT_EQ(r.stranded, 0u);
  ASSERT_GT(r.delivered, 0u);
  // queueing_delay can never underflow: finish >= inject + hops for every
  // delivered message, and the delay is exactly the difference (an underflow
  // would wrap to ~2^64 and blow the reconstruction below).
  std::uint64_t delivered_hops = 0;
  for (const MessageOutcome& out : r.outcomes) {
    if (!out.delivered) continue;
    ASSERT_GE(out.finish_time, out.message.inject_time + out.path_edges);
    EXPECT_EQ(out.queueing_delay,
              out.finish_time - out.message.inject_time - out.path_edges);
    EXPECT_LE(out.queueing_delay, out.finish_time);
    delivered_hops += out.path_edges;
  }
  // Event-counter identities: every delivered hop is one transmission, every
  // admission either re-queues a hop or delivers a message.
  EXPECT_EQ(r.transmissions, delivered_hops);
  EXPECT_EQ(r.admission_events, r.transmissions + r.delivered);
}

TEST(TrafficEngine, MemoryStateIsBoundedByChannelsPlusMessagesNotTime) {
  // Same message count, ~100x different simulated horizon: the engine's
  // per-run state (channel index, per-channel FIFO heads, per-message slots)
  // must not grow with simulated time. The counters expose exactly those
  // sizes; under the old container engine the queue table grew with every
  // distinct channel ever touched and the timeline with every distinct
  // admission time.
  const Hypercube g(7);
  const HashEdgeSampler env(0.7, 9);
  const auto run_at_rate = [&](double rate) {
    WorkloadConfig workload;
    workload.kind = WorkloadKind::kPoisson;
    workload.messages = 300;
    workload.arrival_rate = rate;
    workload.seed = 12;
    return run_traffic(g, env, best_first_factory(), generate_workload(g, workload), {});
  };
  const TrafficResult dense = run_at_rate(8.0);
  const TrafficResult sparse = run_at_rate(0.05);  // long horizon, idle gaps
  ASSERT_GT(sparse.makespan, 10 * dense.makespan);
  // Identical state footprint regardless of horizon...
  EXPECT_EQ(dense.channels, sparse.channels);
  EXPECT_EQ(dense.channels, 2 * g.num_edges());
  EXPECT_LE(dense.peak_active_channels, dense.channels);
  EXPECT_LE(sparse.peak_active_channels, sparse.channels);
  // ...and the event loop never executes more steps than it has events for
  // (idle gaps are skipped, so steps are bounded by admissions, not by the
  // simulated clock).
  EXPECT_LE(sparse.sim_steps, sparse.admission_events);
  EXPECT_GT(sparse.makespan, sparse.sim_steps);  // horizon >> work on sparse runs
}

TEST(TrafficEngine, RejectsZeroCapacity) {
  const Hypercube g(4);
  const HashEdgeSampler env(1.0, 1);
  TrafficConfig config;
  config.edge_capacity = 0;
  EXPECT_THROW(run_traffic(g, env, best_first_factory(), {}, config),
               std::invalid_argument);
}

}  // namespace
}  // namespace faultroute
