// Oracle vs local routing — Section 5 of the paper, live.
//
// Two demonstrations of the exponential / polynomial gap between routers
// that may probe anywhere (oracle) and routers restricted to edges they have
// already reached (local):
//
//   1. Double binary tree TT_n: the local DFS router pays ~ p^{-n} probes
//      (Theorem 7), the paired-edge oracle router pays ~ c * n (Theorem 9).
//   2. G_{n,p} with p = 3/n: local flooding pays ~ n^2, the bidirectional
//      oracle router pays ~ n^{3/2} (Theorems 10, 11).
//
//   $ ./oracle_vs_local

#include <cstdio>
#include <iostream>

#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "core/probe_context.hpp"
#include "core/routers/double_tree_routers.hpp"
#include "core/routers/gnp_routers.hpp"
#include "graph/complete.hpp"
#include "graph/double_tree.hpp"
#include "percolation/cluster_analysis.hpp"
#include "percolation/edge_sampler.hpp"
#include "random/rng.hpp"

namespace {

using namespace faultroute;

void double_tree_demo() {
  const double p = 0.78;  // above the 1/sqrt(2) connectivity threshold
  Table table({"depth n", "local_probes(median)", "oracle_probes(median)", "gap"});
  for (const int n : {6, 9, 12, 15}) {
    const DoubleBinaryTree tree(n);
    DoubleTreeLocalRouter local(tree);
    DoubleTreePairedOracleRouter oracle(tree);
    Summary local_probes;
    Summary oracle_probes;
    int accepted = 0;
    for (std::uint64_t t = 0; accepted < 25 && t < 2000; ++t) {
      const HashEdgeSampler env(p, derive_seed(99, static_cast<std::uint64_t>(n) * 10000 + t));
      if (!*open_connected(tree, env, tree.root1(), tree.root2())) continue;
      ++accepted;
      ProbeContext lctx(tree, env, tree.root1(), RoutingMode::kLocal);
      local.route(lctx, tree.root1(), tree.root2());
      local_probes.add(static_cast<double>(lctx.distinct_probes()));
      ProbeContext octx(tree, env, tree.root1(), RoutingMode::kOracle);
      if (oracle.route(octx, tree.root1(), tree.root2())) {
        oracle_probes.add(static_cast<double>(octx.distinct_probes()));
      }
    }
    table.add_row({Table::fmt(n), Table::fmt(local_probes.median(), 0),
                   Table::fmt(oracle_probes.median(), 0),
                   Table::fmt(local_probes.median() / oracle_probes.median(), 1)});
  }
  table.print("double tree TT_n at p = 0.78: local explodes, oracle stays linear");
}

void gnp_demo() {
  Table table({"n", "local_probes", "oracle_probes", "gap", "sqrt(n)"});
  for (const std::uint64_t n : {500ULL, 1000ULL, 2000ULL}) {
    const CompleteGraph g(n);
    const double p = 3.0 / static_cast<double>(n);
    GnpLocalRouter local;
    GnpOracleRouter oracle;
    Summary local_probes;
    Summary oracle_probes;
    int accepted = 0;
    for (std::uint64_t t = 0; accepted < 10 && t < 200; ++t) {
      const HashEdgeSampler env(p, derive_seed(7, n * 1000 + t));
      if (!*open_connected(g, env, 0, n - 1)) continue;
      ++accepted;
      ProbeContext lctx(g, env, 0, RoutingMode::kLocal);
      local.route(lctx, 0, n - 1);
      local_probes.add(static_cast<double>(lctx.distinct_probes()));
      ProbeContext octx(g, env, 0, RoutingMode::kOracle);
      oracle.route(octx, 0, n - 1);
      oracle_probes.add(static_cast<double>(octx.distinct_probes()));
    }
    table.add_row({Table::fmt(n), Table::fmt(local_probes.mean(), 0),
                   Table::fmt(oracle_probes.mean(), 0),
                   Table::fmt(local_probes.mean() / oracle_probes.mean(), 1),
                   Table::fmt(std::sqrt(static_cast<double>(n)), 1)});
  }
  table.print("G_{n,3/n}: the oracle advantage grows like sqrt(n)");
}

}  // namespace

int main() {
  std::cout << "Oracle routing may probe any edge; local routing only edges it "
               "has reached (paper, Definition 1 / Section 5).\n";
  double_tree_demo();
  gnp_demo();
  std::cout << "\nBoth gaps are the paper's Section 5 headline: locality can cost "
               "an exponential (TT_n) or polynomial sqrt(n) (G_{n,p}) factor.\n";
  return 0;
}
