// Phase diagram: an ASCII rendering of the paper's central picture.
//
// For the hypercube H_{n,p} we sweep p downwards from 1 and classify each
// (n, p) cell by the measured cost of local landmark routing between
// antipodes, normalised by the poly(n) budget n^3:
//
//   '.' cheap    (probes <  n^3)            — routable regime
//   'o' pricey   (probes in [n^3, 2^n))     — degrading
//   '#' explosive(probes >= 2^n ~ graph)    — routing lost
//   ' ' disconnected (u !~ v in most environments)
//
// The paper predicts the '#' band to open up between the connectivity
// threshold p ~ 1/n and the routing threshold p ~ n^{-1/2} as n grows.
//
//   $ ./phase_diagram [trials_per_cell]

#include <cmath>
#include <cstdlib>
#include <iostream>

#include "analysis/stats.hpp"
#include "core/probe_context.hpp"
#include "core/routers/landmark_router.hpp"
#include "graph/hypercube.hpp"
#include "percolation/cluster_analysis.hpp"
#include "percolation/edge_sampler.hpp"
#include "random/rng.hpp"

int main(int argc, char** argv) {
  using namespace faultroute;
  const int trials = argc > 1 ? std::atoi(argv[1]) : 6;

  const std::vector<int> dims = {8, 10, 12, 14};
  std::vector<double> ps;
  for (double p = 0.55; p >= 0.049; p -= 0.025) ps.push_back(p);

  std::cout << "Hypercube routing phase diagram (landmark router, antipodal pairs)\n"
            << "legend: '.' < n^3 probes   'o' < 2^n   '#' >= 2^n-ish   ' ' disconnected\n\n";
  std::cout << "   p:";
  for (std::size_t j = 0; j < ps.size(); ++j) std::cout << (j % 4 == 0 ? '|' : ' ');
  std::cout << "   (p from " << ps.front() << " down to " << ps.back() << ")\n";

  for (const int n : dims) {
    const Hypercube cube(n);
    const VertexId u = 0;
    const VertexId v = cube.num_vertices() - 1;
    std::cout << "n=" << n << (n < 10 ? " " : "") << ' ';
    for (const double p : ps) {
      int connected = 0;
      Summary probes;
      for (int t = 0; t < trials; ++t) {
        const std::uint64_t seed = derive_seed(
            1234, static_cast<std::uint64_t>(n) * 100000 +
                      static_cast<std::uint64_t>(p * 10000) * 10 +
                      static_cast<std::uint64_t>(t));
        const HashEdgeSampler env(p, seed);
        if (!*open_connected(cube, env, u, v)) continue;
        ++connected;
        LandmarkRouter router;
        ProbeContext ctx(cube, env, u, RoutingMode::kLocal);
        if (router.route(ctx, u, v)) probes.add(static_cast<double>(ctx.distinct_probes()));
      }
      char cell = ' ';
      if (connected * 2 >= trials && probes.count() > 0) {
        const double median = probes.median();
        const double poly = std::pow(n, 3.0);
        const double graph_scale = 0.5 * static_cast<double>(cube.num_edges());
        cell = median < poly ? '.' : (median < graph_scale ? 'o' : '#');
      }
      std::cout << cell;
    }
    const double routing_threshold = 1.0 / std::sqrt(static_cast<double>(n));
    const double giant_threshold = 1.0 / static_cast<double>(n);
    std::cout << "   n^-1/2=" << routing_threshold << "  1/n=" << giant_threshold << '\n';
  }
  std::cout << "\nReading: the 'o'/'#' band between p ~ n^{-1/2} and p ~ 1/n widens\n"
               "with n — Theorem 3's separation of the routing threshold from the\n"
               "connectivity threshold.\n";
  return 0;
}
