// Quickstart: percolate a hypercube, route across it, and inspect the cost.
//
//   $ ./quickstart [seed]
//
// Walks through the library's core objects in ~5 steps:
//   1. build a topology (implicit — nothing is materialised),
//   2. percolate it lazily with a HashEdgeSampler,
//   3. sanity-check the environment (giant component, connectivity),
//   4. route with a local router under locality enforcement,
//   5. read off the routing complexity (Definition 2 of the paper).

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/probe_context.hpp"
#include "core/routers/landmark_router.hpp"
#include "graph/hypercube.hpp"
#include "percolation/cluster_analysis.hpp"
#include "percolation/edge_sampler.hpp"

int main(int argc, char** argv) {
  using namespace faultroute;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2005;

  // 1. The 12-dimensional hypercube: 4096 vertices, degree 12.
  const Hypercube cube(12);
  std::cout << "topology: " << cube.name() << " (" << cube.num_vertices()
            << " vertices, " << cube.num_edges() << " edges)\n";

  // 2. Each edge survives with probability p, independently. The sampler is
  //    lazy and deterministic: the random world is defined by (p, seed) and
  //    evaluated only where someone looks.
  const double p = 0.35;  // ~ n^{-0.42}: below this graph's routing trouble zone
  const HashEdgeSampler environment(p, seed);

  // 3. Percolation sanity check: a giant component should exist (p >> 1/n).
  const ComponentSummary components = analyze_components(cube, environment);
  std::cout << "largest open cluster: " << components.largest << " vertices ("
            << 100.0 * components.largest_fraction() << "% of the graph)\n";

  const VertexId u = 0;
  const VertexId v = cube.num_vertices() - 1;  // the antipode, distance 12
  if (!*open_connected(cube, environment, u, v)) {
    std::cout << "u and v are not connected in this environment; "
                 "try another seed\n";
    return 0;
  }

  // 4. Route u -> v with the paper's landmark/BFS local router. The
  //    ProbeContext enforces Definition 1 (locality) and counts probes.
  LandmarkRouter router;
  ProbeContext ctx(cube, environment, u, RoutingMode::kLocal);
  const auto path = router.route(ctx, u, v);
  if (!path) {
    std::cout << "routing failed unexpectedly\n";
    return 1;
  }

  // 5. The routing complexity: distinct edges probed.
  std::cout << "routed " << cube.vertex_label(u) << " -> " << cube.vertex_label(v)
            << " in " << (path->size() - 1) << " hops (fault-free distance "
            << cube.distance(u, v) << ")\n"
            << "routing complexity: " << ctx.distinct_probes()
            << " distinct probes (" << ctx.total_probes() << " total)\n"
            << "path:";
  for (const VertexId x : *path) std::cout << ' ' << x;
  std::cout << '\n';
  return 0;
}
