// P2P overlay scenario — the paper's introduction motivates its hypercube
// result with structured peer-to-peer networks (Chord, skip graphs, ...):
// when many links fail, *routing-based exact search* breaks long before
// connectivity does, while flooding keeps working.
//
// This example simulates a hypercube-like overlay of 2^14 peers under
// increasing link-failure rates and compares three lookup strategies:
//   greedy    — classic DHT-style prefix routing (fails when stuck),
//   landmark  — the paper's repaired local router (Theorem 3(ii)),
//   flood     — gossip/flooding (always works, pays a fortune).
//
//   $ ./p2p_overlay [trials]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "core/probe_context.hpp"
#include "core/routers/flood_router.hpp"
#include "core/routers/greedy_router.hpp"
#include "core/routers/landmark_router.hpp"
#include "graph/hypercube.hpp"
#include "percolation/cluster_analysis.hpp"
#include "percolation/edge_sampler.hpp"
#include "random/rng.hpp"

int main(int argc, char** argv) {
  using namespace faultroute;
  const int trials = argc > 1 ? std::atoi(argv[1]) : 40;

  const int n = 14;
  const Hypercube overlay(n);
  std::cout << "P2P overlay: " << overlay.num_vertices() << " peers, degree " << n
            << " (hypercube topology, as in Chord-style DHTs)\n";

  // Link failure rates from "healthy" to "half the trouble zone": the
  // routing threshold of Theorem 3 is p = n^{-1/2} ~ 0.27 survival, i.e.
  // ~73% failure. Watch exact search degrade long before connectivity does.
  const std::vector<double> failure_rates = {0.10, 0.30, 0.50, 0.60, 0.70, 0.80};

  Table table({"link_failure", "connected", "greedy_ok", "greedy_probes",
               "landmark_ok", "landmark_probes", "flood_probes"});
  for (const double q : failure_rates) {
    const double p = 1.0 - q;
    int connected_pairs = 0;
    int greedy_ok = 0;
    int landmark_ok = 0;
    Summary greedy_probes;
    Summary landmark_probes;
    Summary flood_probes;

    for (int t = 0; t < trials; ++t) {
      const std::uint64_t seed = derive_seed(2005, static_cast<std::uint64_t>(q * 100) * 1000 +
                                                       static_cast<std::uint64_t>(t));
      const HashEdgeSampler env(p, seed);
      Rng rng(seed);
      const VertexId requester = uniform_below(rng, overlay.num_vertices());
      const VertexId resource = uniform_below(rng, overlay.num_vertices());
      if (requester == resource) continue;
      if (!*open_connected(overlay, env, requester, resource)) continue;
      ++connected_pairs;

      GreedyDescentRouter greedy;
      ProbeContext gctx(overlay, env, requester, RoutingMode::kLocal);
      if (greedy.route(gctx, requester, resource)) {
        ++greedy_ok;
        greedy_probes.add(static_cast<double>(gctx.distinct_probes()));
      }

      LandmarkRouter landmark;
      ProbeContext lctx(overlay, env, requester, RoutingMode::kLocal);
      if (landmark.route(lctx, requester, resource)) {
        ++landmark_ok;
        landmark_probes.add(static_cast<double>(lctx.distinct_probes()));
      }

      FloodRouter flood;
      ProbeContext fctx(overlay, env, requester, RoutingMode::kLocal);
      flood.route(fctx, requester, resource);
      flood_probes.add(static_cast<double>(fctx.distinct_probes()));
    }

    const auto rate = [&](int ok) {
      return connected_pairs > 0 ? static_cast<double>(ok) / connected_pairs : 0.0;
    };
    const auto mean_or_dash = [](const Summary& s) {
      return s.count() > 0 ? Table::fmt(s.mean(), 0) : std::string("-");
    };
    table.add_row({Table::fmt(q, 2), Table::fmt(connected_pairs), Table::fmt(rate(greedy_ok), 2),
                   mean_or_dash(greedy_probes), Table::fmt(rate(landmark_ok), 2),
                   mean_or_dash(landmark_probes), mean_or_dash(flood_probes)});
  }
  table.print(
      "DHT lookups under link failures (connected pairs only): greedy exact-search "
      "dies first, the landmark router survives at a price, flooding always works "
      "but probes a large fraction of the overlay");
  std::cout << "\nTakeaway (paper, Section 1.3): past the routing threshold, "
               "flooding/gossip stays the only efficient *reliable* search even "
               "though short paths still exist.\n";
  return 0;
}
