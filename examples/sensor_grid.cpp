// Sensor-grid scenario — Theorem 4 in the field.
//
// A 2D grid of sensors (say, a warehouse floor) where each radio link works
// only with probability p. A gateway at one corner region must reach a
// sensor far away. Theorem 4 promises: as long as p is above the percolation
// threshold 1/2, the landmark router finds a path with O(distance) probes —
// the constant degrades near the threshold but linearity never breaks.
//
//   $ ./sensor_grid [p] [distance]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "core/experiment.hpp"
#include "core/routers/landmark_router.hpp"
#include "graph/mesh.hpp"
#include "percolation/cluster_analysis.hpp"
#include "percolation/edge_sampler.hpp"

int main(int argc, char** argv) {
  using namespace faultroute;
  const double p = argc > 1 ? std::atof(argv[1]) : 0.6;
  const std::int64_t distance = argc > 2 ? std::atoll(argv[2]) : 80;

  if (p <= 0.5) {
    std::cout << "warning: p = " << p
              << " is at or below the 2D percolation threshold 0.5 — "
                 "long-range connectivity will not exist\n";
  }

  const std::int64_t margin = 30;
  const Mesh grid(2, distance + 2 * margin);
  const VertexId gateway = grid.vertex_at({margin, margin});
  const VertexId sensor = grid.vertex_at({margin + distance, margin});
  std::cout << "sensor grid " << grid.name() << ", link reliability p = " << p
            << "\ngateway at " << grid.vertex_label(gateway) << ", target sensor at "
            << grid.vertex_label(sensor) << " (distance " << distance << ")\n\n";

  // One concrete environment, end to end.
  const HashEdgeSampler env(p, /*seed=*/7);
  const auto components = analyze_components(grid, env);
  std::cout << "giant component covers " << 100.0 * components.largest_fraction()
            << "% of the sensors\n";
  if (*open_connected(grid, env, gateway, sensor)) {
    LandmarkRouter router;
    ProbeContext ctx(grid, env, gateway, RoutingMode::kLocal);
    const auto path = router.route(ctx, gateway, sensor);
    std::cout << "routed in " << (path->size() - 1) << " hops using "
              << ctx.distinct_probes() << " link probes ("
              << static_cast<double>(ctx.distinct_probes()) /
                     static_cast<double>(distance)
              << " probes per unit distance)\n\n";
  } else {
    std::cout << "gateway and sensor disconnected at this seed\n\n";
  }

  // The Theorem 4 shape: probes grow linearly with distance.
  Table table({"distance", "mean_probes", "probes_per_unit", "mean_hops"});
  LandmarkRouter router;
  for (const std::int64_t d : {distance / 4, distance / 2, distance}) {
    const VertexId far_sensor = grid.vertex_at({margin + d, margin});
    ExperimentConfig config;
    config.trials = 15;
    config.base_seed = static_cast<std::uint64_t>(d) * 7919;
    const ExperimentSummary s =
        measure_routing(grid, p, router, gateway, far_sensor, config);
    table.add_row({Table::fmt(static_cast<std::uint64_t>(d)),
                   Table::fmt(s.mean_distinct, 0),
                   Table::fmt(s.mean_distinct / static_cast<double>(d), 1),
                   Table::fmt(s.mean_path_edges, 1)});
  }
  table.print("probes vs distance (Theorem 4: linear, for every p > 1/2)");
  return 0;
}
