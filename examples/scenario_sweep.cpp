// Scenario runner as a library: build a sweep programmatically, run it, and
// consume the results with a custom Reporter — no CLI, no files.
//
//   $ ./example_scenario_sweep [seed]
//
// The same spec could be written declaratively (see scenarios/*.scn and
// docs/SCENARIOS.md); this example shows the three API surfaces instead:
//   1. ScenarioSpec — the cross-product description,
//   2. run_scenario — deterministic parallel execution,
//   3. Reporter — a custom sink (here: pick each p's best router by
//      delivered messages, like a tiny leaderboard).

#include <cstdlib>
#include <iostream>
#include <map>
#include <sstream>

#include "scenario/reporter.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace {

using namespace faultroute;

/// Keeps, per p-value, the router that delivered the most messages
/// (summed over trials).
class LeaderboardReporter final : public scenario::Reporter {
 public:
  void begin(const scenario::ScenarioSpec& spec) override {
    std::cout << "scenario '" << spec.name << "': " << spec.num_cells() << " cells\n";
  }

  void report(const scenario::CellResult& cell) override {
    delivered_[{cell.p, cell.router}] += cell.delivered;
  }

  void end() override {
    std::map<double, std::pair<std::string, std::uint64_t>> best;
    for (const auto& [key, total] : delivered_) {
      auto& [router, most] = best[key.first];
      if (total > most) {
        router = key.second;
        most = total;
      }
    }
    for (const auto& [p, winner] : best) {
      std::cout << "  p=" << p << "  best router: " << winner.first << " ("
                << winner.second << " delivered)\n";
    }
  }

 private:
  std::map<std::pair<double, std::string>, std::uint64_t> delivered_;
};

}  // namespace

int main(int argc, char** argv) {
  // Option A: parse the declarative grammar (what `faultroute scenario`
  // does with a .scn file).
  scenario::ScenarioSpec spec = scenario::parse_scenario(R"(
      name     = router-leaderboard
      topology = hypercube:8
      p        = 0.3:0.7:5
      router   = landmark, greedy, best-first, hybrid
      workload = random-pairs
      messages = 256
      trials   = 2
  )");
  // Option B: it is a plain struct — tweak fields directly.
  if (argc > 1) spec.seed = std::strtoull(argv[1], nullptr, 10);

  LeaderboardReporter leaderboard;
  const scenario::RunSummary summary = scenario::run_scenario(spec, leaderboard);
  std::cout << summary.delivered << "/" << summary.messages << " messages delivered\n";

  // The stock reporters write to any ostream, so results can also be
  // captured in memory (here: count the JSON-lines bytes a file would get).
  std::ostringstream jsonl;
  scenario::JsonLinesReporter json_reporter(jsonl);
  (void)scenario::run_scenario(spec, json_reporter);
  std::cout << "same run as JSON-lines: " << jsonl.str().size() << " bytes\n";
  return 0;
}
