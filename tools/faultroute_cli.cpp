// faultroute — command-line front end for the library.
//
// Subcommands:
//   route       route one pair through one percolation environment
//   components  cluster structure of an environment
//   threshold   bisect the giant-component threshold of a topology
//   trials      routing-complexity measurement (Definition 2), with stats
//   permutation batch-route random pairs and report path congestion
//   traffic     store-and-forward congestion simulation of a workload
//   scenario    run a declarative scenario spec (sweep cross-products) and
//               emit schema-versioned JSON-lines or CSV; supports
//               --snapshot-dir (mmap'd adjacency), --checkpoint (resume),
//               and --shard k/n (multi-process partitioning)
//   snapshot    build or inspect on-disk CSR adjacency snapshots
//               (faultroute.snap.v1 — see graph/snapshot.hpp)
//   merge       stitch sharded scenario reports into the byte-identical
//               single-process report
//
// Full reference: docs/CLI.md; scenario grammar: docs/SCENARIOS.md.
//
// Examples:
//   faultroute route --topology hypercube:12 --p 0.35 --router landmark
//   faultroute route --topology double_tree:10 --p 0.8 --router double-tree-oracle
//   faultroute components --topology torus:2:64 --p 0.55
//   faultroute threshold --topology de_bruijn:12
//   faultroute trials --topology mesh:2:96 --p 0.6 --router landmark --trials 50
//   faultroute permutation --topology hypercube:10 --p 0.6 --router best-first --pairs 256
//   faultroute traffic --topology hypercube:12 --p 0.5 --router greedy
//       --workload permutation --messages 4096
//   faultroute scenario scenarios/hypercube_phase.scn
//   faultroute scenario --spec "topology=hypercube:8; p=0.3:0.7:5; router=greedy"
//   faultroute snapshot build --topology hypercube:12 --dir snapshots
//   faultroute snapshot info --dir snapshots --topology hypercube:12
//   faultroute scenario run.scn --snapshot-dir snapshots --checkpoint run.ckpt
//   faultroute scenario run.scn --shard 1/3 --out shard1.jsonl   # (and 2/3, 3/3)
//   faultroute merge shard1.jsonl shard2.jsonl shard3.jsonl --out full.jsonl

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "core/experiment.hpp"
#include "core/permutation_routing.hpp"
#include "core/probe_context.hpp"
#include "graph/double_tree.hpp"
#include "graph/flat_adjacency.hpp"
#include "graph/mesh.hpp"
#include "graph/snapshot.hpp"
#include "obs/run_metrics.hpp"
#include "obs/schemas.hpp"
#include "percolation/cluster_analysis.hpp"
#include "percolation/edge_sampler.hpp"
#include "percolation/threshold.hpp"
#include "random/rng.hpp"
#include "scenario/merge.hpp"
#include "scenario/reporter.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "sim/registry.hpp"
#include "sim/strict_parse.hpp"
#include "traffic/traffic_engine.hpp"
#include "traffic/workload.hpp"

namespace {

using namespace faultroute;

/// Minimal --key value / --key=value parser.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string token = argv[i];
      if (token.rfind("--", 0) != 0) {
        throw std::invalid_argument("expected --flag, got '" + token + "'");
      }
      token = token.substr(2);
      const auto eq = token.find('=');
      if (eq != std::string::npos) {
        values_[token.substr(0, eq)] = token.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[token] = argv[++i];
      } else {
        values_[token] = "true";
      }
    }
  }

  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it != values_.end() ? it->second : fallback;
  }
  [[nodiscard]] std::string require(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) throw std::invalid_argument("missing required --" + key);
    return it->second;
  }
  [[nodiscard]] double get_double(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it != values_.end() ? std::stod(it->second) : fallback;
  }
  [[nodiscard]] std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const {
    const auto it = values_.find(key);
    return it != values_.end() ? std::stoull(it->second) : fallback;
  }

 private:
  std::map<std::string, std::string> values_;
};

/// Shared --adjacency flag: CSR-snapshot vs implicit-virtual adjacency
/// backend (graph/flat_adjacency.hpp). Results are identical; the flag is
/// the A/B switch in the mould of --engine / --probe-state.
AdjacencyMode adjacency_of(const Args& args) {
  return parse_adjacency_mode(args.get("adjacency", "auto"));
}

/// Shared --metrics PATH / --trace PATH handling, available on every
/// subcommand. When either flag is given the sink owns a RunMetrics for the
/// command to feed (counters, phase spans, delivery samples); finish()
/// serializes it — the faultroute.metrics.v1 report and/or the Chrome
/// trace-event JSON (open in chrome://tracing or Perfetto). With neither
/// flag, metrics() is null and instrumentation stays on its zero-cost path.
class ObsSink {
 public:
  ObsSink(const Args& args, std::string command)
      : command_(std::move(command)),
        metrics_path_(args.get("metrics", "")),
        trace_path_(args.get("trace", "")) {
    if (!metrics_path_.empty() || !trace_path_.empty()) {
      metrics_ = std::make_unique<obs::RunMetrics>();
      metrics_->profiler().label_current_thread("main");
    }
  }

  [[nodiscard]] obs::RunMetrics* metrics() { return metrics_.get(); }

  void finish() {
    if (metrics_ == nullptr) return;
    if (!metrics_path_.empty()) {
      std::ofstream out(metrics_path_);
      if (!out) {
        throw std::runtime_error("cannot write --metrics file '" + metrics_path_ + "'");
      }
      metrics_->write_metrics_json(out, command_);
    }
    if (!trace_path_.empty()) {
      std::ofstream out(trace_path_);
      if (!out) {
        throw std::runtime_error("cannot write --trace file '" + trace_path_ + "'");
      }
      metrics_->write_chrome_trace(out);
    }
  }

 private:
  std::string command_;
  std::string metrics_path_;
  std::string trace_path_;
  std::unique_ptr<obs::RunMetrics> metrics_;
};

/// Default endpoints: the double tree routes root-to-root; everything else
/// routes corner-to-"antipode".
void default_pair(const Topology& graph, VertexId& u, VertexId& v) {
  if (const auto* tree = dynamic_cast<const DoubleBinaryTree*>(&graph)) {
    u = tree->root1();
    v = tree->root2();
    return;
  }
  u = 0;
  if (const auto* mesh = dynamic_cast<const Mesh*>(&graph)) {
    // The true antipode of the origin: half a side along every axis on the
    // torus (corner-to-corner is only 2 hops away under wraparound).
    Mesh::Coords far{};
    for (int a = 0; a < mesh->dimension(); ++a) {
      far[static_cast<std::size_t>(a)] = mesh->wraps() ? mesh->side() / 2 : mesh->side() - 1;
    }
    v = mesh->vertex_at(far);
    return;
  }
  v = graph.num_vertices() - 1;
}

int cmd_route(const Args& args) {
  const auto graph = sim::make_topology(args.require("topology"));
  const double p = args.get_double("p", 0.5);
  const auto router = sim::make_router(args.get("router", "landmark"), *graph);
  const std::uint64_t seed = args.get_u64("seed", 2005);
  VertexId u;
  VertexId v;
  default_pair(*graph, u, v);
  u = args.get_u64("from", u);
  v = args.get_u64("to", v);

  ObsSink sink(args, "route");
  obs::PhaseProfiler* profiler = sink.metrics() ? &sink.metrics()->profiler() : nullptr;

  const HashEdgeSampler env(p, seed);
  std::cout << graph->name() << "  p=" << p << "  seed=" << seed << "  router="
            << router->name() << "\n";
  ProbeContext ctx(*graph, env, u, router->required_mode());
  std::optional<Path> path;
  {
    const obs::PhaseProfiler::Scope route_scope(profiler, "route");
    path = router->route(ctx, u, v);
  }
  if (sink.metrics()) {
    obs::CounterRegistry& counters = sink.metrics()->counters();
    counters.add(counters.id("route.probe_calls"), ctx.total_probes());
    counters.add(counters.id("route.distinct_probes"), ctx.distinct_probes());
    counters.add(counters.id("route.bfs_expansions"), ctx.expansions());
  }
  if (!path) {
    std::cout << graph->vertex_label(u) << " and " << graph->vertex_label(v)
              << " are not connected (" << ctx.distinct_probes()
              << " probes to establish)\n";
    sink.finish();
    return 0;
  }
  std::cout << "path (" << (path->size() - 1) << " hops, fault-free distance "
            << graph->distance(u, v) << "):";
  const std::size_t shown = std::min<std::size_t>(path->size(), 24);
  for (std::size_t i = 0; i < shown; ++i) std::cout << ' ' << graph->vertex_label((*path)[i]);
  if (shown < path->size()) std::cout << " ... " << graph->vertex_label(path->back());
  std::cout << "\nrouting complexity: " << ctx.distinct_probes() << " distinct probes ("
            << ctx.total_probes() << " total)\n";
  sink.finish();
  return 0;
}

int cmd_components(const Args& args) {
  const auto graph = sim::make_topology(args.require("topology"));
  const double p = args.get_double("p", 0.5);
  const std::uint64_t seed = args.get_u64("seed", 2005);
  ObsSink sink(args, "components");
  ComponentSummary summary;
  {
    const obs::PhaseProfiler::Scope scope(
        sink.metrics() ? &sink.metrics()->profiler() : nullptr, "components");
    summary = analyze_components(*graph, HashEdgeSampler(p, seed), adjacency_of(args));
  }
  if (sink.metrics()) {
    obs::CounterRegistry& counters = sink.metrics()->counters();
    counters.add(counters.id("components.open_edges"), summary.num_open_edges);
    counters.add(counters.id("components.count"), summary.num_components);
  }
  Table table({"metric", "value"});
  table.add_row({"vertices", Table::fmt(summary.num_vertices)});
  table.add_row({"open edges", Table::fmt(summary.num_open_edges)});
  table.add_row({"components", Table::fmt(summary.num_components)});
  table.add_row({"largest", Table::fmt(summary.largest)});
  table.add_row({"largest fraction", Table::fmt(summary.largest_fraction(), 4)});
  table.add_row({"second largest", Table::fmt(summary.second_largest)});
  table.print(graph->name() + " at p=" + Table::fmt(p, 3));
  sink.finish();
  return 0;
}

int cmd_threshold(const Args& args) {
  const auto graph = sim::make_topology(args.require("topology"));
  ThresholdConfig config;
  config.target_fraction = args.get_double("target", 0.2);
  config.trials_per_point = static_cast<int>(args.get_u64("trials", 6));
  config.tolerance = args.get_double("tolerance", 0.005);
  config.seed = args.get_u64("seed", 2005);
  ObsSink sink(args, "threshold");
  double pc = 0.0;
  {
    const obs::PhaseProfiler::Scope scope(
        sink.metrics() ? &sink.metrics()->profiler() : nullptr, "threshold");
    const auto order = largest_cluster_order(*graph, adjacency_of(args));
    pc = estimate_threshold(order, args.get_double("lo", 0.02), args.get_double("hi", 0.98),
                            config);
  }
  std::cout << graph->name() << ": giant-component threshold ~ " << pc
            << " (order parameter crosses " << config.target_fraction << ")\n";
  sink.finish();
  return 0;
}

int cmd_trials(const Args& args) {
  const auto graph = sim::make_topology(args.require("topology"));
  const double p = args.get_double("p", 0.5);
  const std::string router_name = args.get("router", "landmark");
  VertexId u;
  VertexId v;
  default_pair(*graph, u, v);
  u = args.get_u64("from", u);
  v = args.get_u64("to", v);

  ExperimentConfig config;
  config.trials = static_cast<int>(args.get_u64("trials", 30));
  config.base_seed = args.get_u64("seed", 2005);
  if (args.get_u64("budget", 0) > 0) config.probe_budget = args.get_u64("budget", 0);

  ObsSink sink(args, "trials");
  const auto factory = [&]() { return sim::make_router(router_name, *graph); };
  std::vector<TrialOutcome> outcomes;
  {
    const obs::PhaseProfiler::Scope scope(
        sink.metrics() ? &sink.metrics()->profiler() : nullptr, "trials");
    outcomes = run_routing_trials_parallel(*graph, p, factory, u, v, config,
                                           static_cast<unsigned>(args.get_u64("threads", 0)));
  }
  const ExperimentSummary s = summarize_trials(outcomes);
  if (sink.metrics()) {
    obs::CounterRegistry& counters = sink.metrics()->counters();
    counters.add(counters.id("trials.trials"), static_cast<std::uint64_t>(s.trials));
    counters.add(counters.id("trials.routed"), static_cast<std::uint64_t>(s.routed));
    counters.add(counters.id("trials.censored"), static_cast<std::uint64_t>(s.censored));
  }

  Table table({"metric", "value"});
  table.add_row({"trials", Table::fmt(s.trials)});
  table.add_row({"routed", Table::fmt(s.routed)});
  table.add_row({"censored (budget)", Table::fmt(s.censored)});
  table.add_row({"mean distinct probes", Table::fmt(s.mean_distinct, 1)});
  table.add_row({"median distinct probes", Table::fmt(s.median_distinct, 1)});
  table.add_row({"max distinct probes", Table::fmt(s.max_distinct, 0)});
  table.add_row({"mean path edges", Table::fmt(s.mean_path_edges, 1)});
  table.add_row({"rejection rate", Table::fmt(s.rejection_rate, 3)});
  table.print(graph->name() + "  p=" + Table::fmt(p, 3) + "  router=" + router_name);
  sink.finish();
  return 0;
}

int cmd_permutation(const Args& args) {
  const auto graph = sim::make_topology(args.require("topology"));
  const double p = args.get_double("p", 0.5);
  const std::string router_name = args.get("router", "landmark");
  const std::uint64_t seed = args.get_u64("seed", 2005);

  PermutationRoutingConfig config;
  config.pairs = args.get_u64("pairs", 64);
  config.pair_seed = args.get_u64("pair-seed", 1);
  if (args.get_u64("budget", 0) > 0) config.probe_budget = args.get_u64("budget", 0);
  config.adjacency = adjacency_of(args);

  ObsSink sink(args, "permutation");
  const HashEdgeSampler env(p, seed);
  const auto factory = [&]() { return sim::make_router(router_name, *graph); };
  PermutationRoutingResult r;
  {
    const obs::PhaseProfiler::Scope scope(
        sink.metrics() ? &sink.metrics()->profiler() : nullptr, "permutation");
    r = route_permutation(*graph, env, factory, config);
  }
  if (sink.metrics()) {
    obs::CounterRegistry& counters = sink.metrics()->counters();
    counters.add(counters.id("permutation.pairs"), r.pairs);
    counters.add(counters.id("permutation.routed"), r.routed);
    counters.add(counters.id("permutation.failed"), r.failed);
  }

  Table table({"metric", "value"});
  table.add_row({"pairs (connected)", Table::fmt(r.pairs)});
  table.add_row({"routed", Table::fmt(r.routed)});
  table.add_row({"failed", Table::fmt(r.failed)});
  table.add_row({"skipped disconnected", Table::fmt(r.skipped_disconnected)});
  table.add_row({"mean probes", Table::fmt(r.mean_probes(), 1)});
  table.add_row({"mean path length", Table::fmt(r.mean_path_length(), 1)});
  table.add_row({"max edge load", Table::fmt(r.max_edge_load)});
  table.add_row({"mean edge load", Table::fmt(r.mean_edge_load, 2)});
  table.print(graph->name() + "  p=" + Table::fmt(p, 3) + "  router=" + router_name +
              "  permutation batch");
  sink.finish();
  return 0;
}

int cmd_traffic(const Args& args) {
  const auto graph = sim::make_topology(args.require("topology"));
  const double p = args.get_double("p", 0.5);
  const std::string router_name = args.get("router", "landmark");
  const std::uint64_t seed = args.get_u64("seed", 2005);

  WorkloadConfig workload;
  workload.kind = parse_workload(args.get("workload", "permutation"));
  workload.messages = args.get_u64("messages", 1024);
  workload.seed = args.get_u64("workload-seed", 1);
  workload.hotspot_target = args.get_u64("target", 0);
  workload.arrival_rate = args.get_double("rate", 1.0);

  TrafficConfig config;
  config.edge_capacity = args.get_u64("capacity", 1);
  config.threads = static_cast<unsigned>(args.get_u64("threads", 0));
  if (args.get_u64("budget", 0) > 0) config.probe_budget = args.get_u64("budget", 0);
  const std::string cache_flag = args.get("shared-cache", "true");
  if (cache_flag != "true" && cache_flag != "false") {
    throw std::invalid_argument("--shared-cache must be 'true' or 'false', got '" +
                                cache_flag + "'");
  }
  config.use_shared_cache = cache_flag == "true";

  // --engine reference runs the legacy container-based delivery engine (the
  // differential-testing oracle); results are identical, only speed and the
  // engine counters differ.
  const std::string engine = args.get("engine", "event");
  if (engine != "event" && engine != "reference") {
    throw std::invalid_argument("--engine must be 'event' or 'reference', got '" + engine +
                                "'");
  }

  // --probe-state hash routes phase 1 through the per-message hash-container
  // backend instead of the pooled dense arrays — the routing-phase analogue
  // of --engine, for A/B timing and differential runs. Results identical.
  const std::string probe_state = args.get("probe-state", "dense");
  if (probe_state != "dense" && probe_state != "hash") {
    throw std::invalid_argument("--probe-state must be 'dense' or 'hash', got '" +
                                probe_state + "'");
  }
  config.dense_probe_state = probe_state == "dense";

  // --adjacency flat|implicit|auto: CSR-snapshot vs virtual adjacency for
  // the routing phase — the third A/B axis next to --engine/--probe-state.
  config.adjacency = adjacency_of(args);

  // --frontier batch|permsg: batched frontier search + distance-oracle
  // prewarm vs one independent search per message — the fourth A/B axis.
  // Results identical (parse_frontier_mode throws on anything else).
  config.frontier = parse_frontier_mode(args.get("frontier", "batch"));

  // --snapshot-dir DIR resolves the routing adjacency from an on-disk
  // snapshot (`faultroute snapshot build`), mmap'd instead of materialized.
  // Absent snapshot falls back to the normal build; a corrupt one is a hard
  // error. Results are identical either way.
  std::unique_ptr<FlatAdjacency> snapshot;
  const std::string snapshot_dir = args.get("snapshot-dir", "");
  if (!snapshot_dir.empty()) {
    snapshot = open_snapshot_adjacency(snapshot_dir, args.require("topology"), *graph);
    config.flat_snapshot = snapshot.get();
  }

  // --metrics/--trace attach the observability sink; the event engine also
  // records the bounded per-step delivery time-series into the report
  // (--trace-samples caps its memory; the reference engine doesn't sample).
  ObsSink sink(args, "traffic");
  config.metrics = sink.metrics();
  if (sink.metrics()) {
    sink.metrics()->enable_delivery_sampler(
        static_cast<std::size_t>(args.get_u64("trace-samples", 4096)));
  }

  const HashEdgeSampler env(p, seed);
  const auto messages = generate_workload(*graph, workload);
  const auto factory = [&]() { return sim::make_router(router_name, *graph); };
  const TrafficResult result =
      engine == "event" ? run_traffic(*graph, env, factory, messages, config)
                        : run_traffic_reference(*graph, env, factory, messages, config);

  traffic_table(result).print(graph->name() + "  p=" + Table::fmt(p, 3) + "  router=" +
                              router_name + "  workload=" + workload_name(workload.kind) +
                              "  engine=" + engine + "  adjacency=" +
                              adjacency_mode_name(config.adjacency) + "  frontier=" +
                              frontier_mode_name(config.frontier));
  sink.finish();
  return 0;
}

/// `faultroute scenario [FILE] [--spec "k=v; ..."] [--format jsonl|csv]
///                      [--out PATH] [--quick] [--seed S] [--threads T]`
///
/// FILE and --spec compose: the file is applied first, then the --spec
/// assignments override it, then the dedicated flags override both. --quick
/// shrinks messages/trials to CI-smoke size without touching the sweep axes.
int cmd_scenario(const std::string& file, const Args& args) {
  scenario::ScenarioSpec spec;
  if (!file.empty()) spec = scenario::load_scenario_file(file);
  const std::string inline_spec = args.get("spec", "");
  if (file.empty() && inline_spec.empty()) {
    throw std::invalid_argument("scenario needs a spec file argument or --spec \"...\"");
  }
  scenario::apply_scenario_assignments(spec, inline_spec);
  spec.seed = args.get_u64("seed", spec.seed);
  spec.snapshot_dir = args.get("snapshot-dir", spec.snapshot_dir);
  const std::uint64_t threads = args.get_u64("threads", spec.threads);
  if (threads > 4096) {  // same cap as the spec grammar's `threads` key
    throw std::invalid_argument("--threads capped at 4096, got " + std::to_string(threads));
  }
  spec.threads = static_cast<unsigned>(threads);
  if (args.get("quick", "false") == "true") {
    spec.messages = std::min<std::uint64_t>(spec.messages, 64);
    spec.trials = std::min<std::uint64_t>(spec.trials, 2);
  }
  scenario::validate_scenario(spec);

  const std::string format = args.get("format", "jsonl");
  const std::string out_path = args.get("out", "");
  std::ofstream out_file;
  if (!out_path.empty()) {
    out_file.open(out_path);
    if (!out_file) throw std::runtime_error("cannot write --out file '" + out_path + "'");
  }
  std::ostream& out = out_path.empty() ? std::cout : out_file;

  ObsSink sink(args, "scenario");
  scenario::RunOptions options;
  options.metrics = sink.metrics();
  const std::string cell_timings = args.get("cell-timings", "false");
  if (cell_timings != "true" && cell_timings != "false") {
    throw std::invalid_argument("--cell-timings must be 'true' or 'false', got '" +
                                cell_timings + "'");
  }
  options.cell_timings = cell_timings == "true";
  // --checkpoint PATH: journal completed cells; a rerun against the same
  // journal resumes and still emits the byte-identical report.
  options.checkpoint_path = args.get("checkpoint", "");
  // --shard k/n: compute and report only every n-th cell starting at k-1;
  // the n reports are reassembled by `faultroute merge`.
  const std::string shard = args.get("shard", "");
  if (!shard.empty()) {
    const auto slash = shard.find('/');
    const auto k = slash == std::string::npos
                       ? std::nullopt
                       : sim::strict_u64(shard.substr(0, slash));
    const auto n = slash == std::string::npos
                       ? std::nullopt
                       : sim::strict_u64(shard.substr(slash + 1));
    if (!k || !n || *k == 0 || *n == 0 || *k > *n || *n > 4096) {
      throw std::invalid_argument("--shard must be k/n with 1 <= k <= n <= 4096, got '" +
                                  shard + "'");
    }
    options.shard_index = static_cast<unsigned>(*k);
    options.shard_count = static_cast<unsigned>(*n);
  }

  const auto reporter = scenario::make_reporter(format, out);
  const auto summary = scenario::run_scenario(spec, *reporter, options);
  sink.finish();
  // Machine output goes to `out`; the human closing line goes to stderr so
  // stdout stays clean for piping.
  std::fprintf(stderr, "scenario '%s': %llu cells, %llu messages, %llu delivered (%s)\n",
               spec.name.c_str(), static_cast<unsigned long long>(summary.cells),
               static_cast<unsigned long long>(summary.messages),
               static_cast<unsigned long long>(summary.delivered),
               out_path.empty() ? "stdout" : out_path.c_str());
  return 0;
}

/// `faultroute snapshot build --topology SPEC --dir DIR`
/// `faultroute snapshot info (--file PATH | --dir DIR --topology SPEC)`
///
/// build materializes the topology's CSR adjacency once and persists it as
/// DIR's faultroute.snap.v1 file for that spec (rebuilding overwrites
/// atomically). info opens and fully verifies an existing snapshot and
/// prints the decoded header — on corruption it exits nonzero with the
/// diagnostic naming the offending field instead.
int cmd_snapshot(const std::string& action, const Args& args) {
  if (action == "build") {
    const std::string topo_spec = args.require("topology");
    const std::string dir = args.require("dir");
    const auto graph = sim::make_topology(topo_spec);
    std::filesystem::create_directories(dir);
    const std::string path = snapshot_path(dir, topo_spec);
    write_snapshot(path, topo_spec, graph->flat_adjacency());
    // Re-open through the verifying reader so a build that cannot be read
    // back never reports success.
    const SnapshotInfo info = read_snapshot_info(path);
    Table table({"field", "value"});
    table.add_row({"file", path});
    table.add_row({"topology", info.topology_spec});
    table.add_row({"vertices", Table::fmt(info.num_vertices)});
    table.add_row({"channels", Table::fmt(static_cast<std::uint64_t>(info.num_channels))});
    table.add_row({"payload bytes", Table::fmt(info.payload_bytes)});
    table.print("snapshot built: " + graph->name());
    return 0;
  }
  if (action == "info") {
    std::string path = args.get("file", "");
    if (path.empty()) path = snapshot_path(args.require("dir"), args.require("topology"));
    const SnapshotInfo info = read_snapshot_info(path);
    char hex[32];
    Table table({"field", "value"});
    table.add_row({"file", path});
    table.add_row({"version", Table::fmt(static_cast<std::uint64_t>(info.version))});
    table.add_row({"topology", info.topology_spec});
    table.add_row({"provenance", info.provenance});
    table.add_row({"vertices", Table::fmt(info.num_vertices)});
    table.add_row({"channels", Table::fmt(static_cast<std::uint64_t>(info.num_channels))});
    table.add_row({"edge ids", Table::fmt(static_cast<std::uint64_t>(info.num_edge_ids))});
    table.add_row({"payload bytes", Table::fmt(info.payload_bytes)});
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(info.payload_checksum));
    table.add_row({"payload checksum", hex});
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(info.header_checksum));
    table.add_row({"header checksum", hex});
    table.print("snapshot verified");
    return 0;
  }
  throw std::invalid_argument("snapshot action must be 'build' or 'info', got '" + action +
                              "'");
}

/// `faultroute merge SHARD... [--out PATH]` — stitch the reports of a
/// sharded scenario run back into the single-process report (byte-identical;
/// see scenario/merge.hpp for the validation rules).
int cmd_merge(const std::vector<std::string>& inputs, const Args& args) {
  if (inputs.empty()) {
    throw std::invalid_argument("merge needs at least one shard report file");
  }
  std::vector<std::string> reports;
  reports.reserve(inputs.size());
  for (const auto& path : inputs) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot read shard report '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    reports.push_back(buffer.str());
  }

  const std::string out_path = args.get("out", "");
  std::ofstream out_file;
  if (!out_path.empty()) {
    out_file.open(out_path, std::ios::binary);
    if (!out_file) throw std::runtime_error("cannot write --out file '" + out_path + "'");
  }
  std::ostream& out = out_path.empty() ? std::cout : out_file;

  const auto stats = scenario::merge_reports(reports, out);
  std::fprintf(stderr, "merge: %llu cells from %llu %s shards (%s)\n",
               static_cast<unsigned long long>(stats.cells),
               static_cast<unsigned long long>(stats.shards), stats.format.c_str(),
               out_path.empty() ? "stdout" : out_path.c_str());
  return 0;
}

void print_usage() {
  std::cout
      << "usage: faultroute <route|components|threshold|trials|permutation|traffic|scenario"
         "|snapshot|merge> [--flags]\n\n"
      << "topologies:";
  for (const auto& s : sim::topology_spec_examples()) std::cout << ' ' << s;
  std::cout << "\nrouters:   ";
  for (const auto& s : sim::router_names()) std::cout << ' ' << s;
  std::cout << "\nworkloads: ";
  for (const auto& s : workload_names()) std::cout << ' ' << s;
  std::cout << "\n\ncommon flags:      --topology SPEC --p P --seed S --router NAME\n"
            << "trials flags:      --trials N --budget B --threads T --from U --to V\n"
            << "permutation flags: --pairs N --pair-seed S --budget B\n"
            << "traffic flags:     --workload W --messages N --workload-seed S\n"
            << "                   --capacity C --threads T --budget B --target V\n"
            << "                   --rate R --shared-cache true|false\n"
            << "                   --engine event|reference (delivery engine A/B)\n"
            << "                   --probe-state dense|hash (routing backend A/B)\n"
            << "                   --adjacency flat|implicit|auto (CSR snapshot A/B;\n"
            << "                     also on components/threshold/permutation)\n"
            << "                   --frontier batch|permsg (batched frontier search +\n"
            << "                     distance-oracle prewarm A/B)\n"
            << "                   --snapshot-dir DIR (mmap the CSR adjacency from an\n"
            << "                     on-disk snapshot; also on scenario)\n"
            << "scenario:          faultroute scenario FILE.scn [--spec \"k=v; ...\"]\n"
            << "                   [--format jsonl|csv] [--out PATH] [--quick]\n"
            << "                   [--cell-timings true|false] [--snapshot-dir DIR]\n"
            << "                   [--checkpoint PATH] [--shard K/N]\n"
            << "snapshot:          faultroute snapshot build --topology SPEC --dir DIR\n"
            << "                   faultroute snapshot info --file PATH (or --dir/--topology)\n"
            << "merge:             faultroute merge SHARD.jsonl... [--out PATH]\n"
            << "observability:     --metrics PATH (" << obs::schemas::kMetrics << " JSON) and\n"
            << "                   --trace PATH (Chrome trace-event JSON, for\n"
            << "                   chrome://tracing / Perfetto) on every subcommand;\n"
            << "                   traffic also takes --trace-samples N\n"
            << "\nfull reference: docs/CLI.md; scenario grammar: docs/SCENARIOS.md\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 2;
  }
  const std::string command = argv[1];
  try {
    if (command == "scenario") {
      // Optional positional spec-file argument before the --flags.
      std::string file;
      int first_flag = 2;
      if (argc > 2 && std::string(argv[2]).rfind("--", 0) != 0) {
        file = argv[2];
        first_flag = 3;
      }
      return cmd_scenario(file, Args(argc, argv, first_flag));
    }
    if (command == "snapshot") {
      // Positional action (build | info) before the --flags.
      if (argc < 3 || std::string(argv[2]).rfind("--", 0) == 0) {
        throw std::invalid_argument("snapshot needs an action: build or info");
      }
      return cmd_snapshot(argv[2], Args(argc, argv, 3));
    }
    if (command == "merge") {
      // Positional shard-report files interleaved with --flags.
      std::vector<std::string> inputs;
      std::vector<char*> flag_argv = {argv[0], argv[1]};
      for (int i = 2; i < argc; ++i) {
        const std::string token = argv[i];
        if (token.rfind("--", 0) == 0) {
          flag_argv.push_back(argv[i]);
          // --flag VALUE form: keep the value with its flag.
          if (token.find('=') == std::string::npos && i + 1 < argc &&
              std::string(argv[i + 1]).rfind("--", 0) != 0) {
            flag_argv.push_back(argv[++i]);
          }
        } else {
          inputs.push_back(token);
        }
      }
      return cmd_merge(inputs, Args(static_cast<int>(flag_argv.size()), flag_argv.data(), 2));
    }
    const Args args(argc, argv, 2);
    if (command == "route") return cmd_route(args);
    if (command == "components") return cmd_components(args);
    if (command == "threshold") return cmd_threshold(args);
    if (command == "trials") return cmd_trials(args);
    if (command == "permutation") return cmd_permutation(args);
    if (command == "traffic") return cmd_traffic(args);
    print_usage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "faultroute %s: %s\n", command.c_str(), e.what());
    return 1;
  }
}
