#!/usr/bin/env python3
"""faultroute_analyze — the semantic contract analyzer.

Where tools/lint/faultroute_lint.py checks lines, this tool checks *reachability*:
it builds per-TU ASTs and a linked cross-TU call graph over the compile
database (build/compile_commands.json) for src/, tools/ and bench/, then
proves four contract families that the repo otherwise enforces only by prose
in docs/ARCHITECTURE.md and by golden tests:

  hot-alloc
      From the annotated hot roots (`// analyze:hot-root(<name>)`: route_all's
      worker body, run_traffic's step loop, the FrontierSearch block executor,
      DistanceOracle column builds, the dense BFS scratch paths), no reachable
      call may allocate: no `new` / malloc / make_shared, no growing container
      member (push_back / insert / resize / reserve / rehash / ...), no
      sized container construction. Justified warm-up sites carry
      `// analyze:allow-hot-alloc(<reason>)`; per-batch setup calls whose whole
      subtree is warm-up carry `// analyze:cold(<reason>)` on the call line,
      which prunes the traversal there.

  determinism
      Nothing reachable from the annotated result/report producers
      (`// analyze:det-root(<name>)`: reporters, tables, metric serializers)
      may call rand()/random_device (outside src/random), read a clock
      (outside src/obs, whose provenance/profiling output is documented as
      nondeterministic), hash or order raw pointer values, or iterate an
      unordered container (iteration order would leak into ordered output).

  lock-discipline
      Every mutex acquisition site is collected into a lock graph. A function
      holding lock L must not be able to reach a second acquisition of L
      (re-entrant deadlock), and no two locks may be acquired in both orders
      on different call paths (inversion deadlock). Additionally every atomic
      load/store/RMW under src/ must spell its memory_order explicitly — the
      implicit-seq_cst default is how unintended orderings drift in
      (composing with the linter's memory_order_relaxed file allowlist).

  throw-safety
      Every function reachable from a parallel_index_loop body that contains
      a `throw` must be justified (`// analyze:allow-throw-safety(<reason>)`,
      per function or per file). parallel_index_loop rethrows the first
      exception after joining — that contract is safe, but only when each
      thrower is intentional (the probe-budget throw being the canonical one).

Annotation grammar (checked; a reason under {} characters is itself a
finding, so annotations cannot rot into bare switches):

  // analyze:hot-root(<name>)               marks a hot-alloc traversal root
  // analyze:det-root(<name>)               marks a determinism traversal root
  // analyze:cold(<reason>)                 prunes hot-alloc traversal at this call line
  // analyze:allow-<rule>(<reason>)         suppress <rule> on this line / next line;
  //                                        on a function's definition line: whole function
  // analyze:allow-file-<rule>(<reason>)    suppress <rule> in this whole file

Frontends: the AST is produced by libclang (clang.cindex over the compile
database) when the bindings and a loadable libclang are present, and by a
built-in single-purpose C++ tokenizer frontend otherwise, both emitting the
same IR (functions, call sites with argument counts, operation sites) so the
rule engines and the findings format are frontend-independent. `--frontend
libclang` on a machine without libclang is a *reported skip* (exit 0), never
a silent pass.

Usage:
  tools/analyze/faultroute_analyze.py [--root DIR] [-p BUILD_DIR]
      [--frontend auto|libclang|internal] [--json PATH] [--jobs N]
  tools/analyze/faultroute_analyze.py --self-test

Exit status: 0 clean (or reported skip), 1 findings, 2 usage/setup error.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import fnmatch
import json
import os
import re
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

MIN_REASON_CHARS = 10

__doc__ = __doc__.format(MIN_REASON_CHARS)

SCHEMA_ID = "faultroute.analyze.v1"
SCHEMA_VERSION = 1

ANALYZED_DIRS = ("src", "tools", "bench")
CXX_SUFFIXES = {".cpp", ".hpp", ".h", ".cc"}

RULES = ("hot-alloc", "determinism", "lock-discipline", "throw-safety")
META_RULE = "annotation"  # malformed tags / missing required roots

# Roots that must exist as annotations in the real tree. Deleting a
# `analyze:hot-root` comment silently un-protects a subsystem; this list makes
# that deletion loud. Matched as qualified-name suffixes.
REQUIRED_HOT_ROOTS = (
    "route_all",                  # routing worker body (src/traffic/routing_phase.cpp)
    "run_traffic",                # event-engine step loop (src/traffic/traffic_engine.cpp)
    "route_frontier_batched",     # block executor (src/traffic/frontier_search.cpp)
    "DistanceOracle::bfs_block",  # oracle column builds (src/graph/distance_oracle.cpp)
    "Topology::distance",         # dense BFS scratch path (src/graph/topology.cpp)
)
REQUIRED_DET_ROOTS = (
    "JsonLinesReporter::report",  # scenario cell emission (src/scenario/reporter.cpp)
    "traffic_table",              # CLI result table (src/traffic/traffic_engine.cpp)
)

# ------------------------------------------------------------- banned symbols

ALLOC_FUNCS = {
    "malloc", "calloc", "realloc", "aligned_alloc", "strdup",
    "make_shared", "make_unique",
}
GROW_METHODS = {
    "push_back", "emplace_back", "push_front", "emplace_front", "push",
    "insert", "emplace", "emplace_hint", "try_emplace", "insert_or_assign",
    "resize", "reserve", "rehash", "append", "assign",
}
# Container types whose *sized* construction allocates. `Path` is the
# project-wide alias for std::vector<VertexId> (core/path.hpp).
CONTAINER_TYPES = {
    "vector", "string", "deque", "map", "set", "unordered_map",
    "unordered_set", "multimap", "multiset", "list", "basic_string", "Path",
}
RAND_FUNCS = {"rand", "srand", "rand_r", "random", "drand48", "lrand48", "mrand48"}
RAND_TOKENS = {"random_device"}
CLOCK_TOKENS = {"system_clock", "steady_clock", "high_resolution_clock",
                "gettimeofday", "clock_gettime"}
ATOMIC_METHODS = {
    "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_or",
    "fetch_and", "fetch_xor", "compare_exchange_weak", "compare_exchange_strong",
    "test_and_set", "clear", "wait", "notify_one", "notify_all",
}
# Atomic methods that take a memory_order argument (clear/notify do too but
# default-order clear() on atomic_flag is not used in this tree).
ATOMIC_ORDERED_METHODS = {
    "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_or",
    "fetch_and", "fetch_xor", "compare_exchange_weak", "compare_exchange_strong",
}
LOCK_GUARD_TYPES = {"lock_guard", "unique_lock", "shared_lock", "scoped_lock"}

# Directories whose file paths exempt an op kind from a rule.
RAND_EXEMPT_DIR = "src/random"
CLOCK_EXEMPT_DIR = "src/obs"

CXX_KEYWORDS = {
    "if", "else", "for", "while", "do", "switch", "case", "return", "sizeof",
    "alignof", "alignas", "decltype", "static_cast", "dynamic_cast",
    "const_cast", "reinterpret_cast", "catch", "throw", "new", "delete",
    "co_await", "co_return", "co_yield", "noexcept", "static_assert",
    "typeid", "using", "template", "typename", "operator", "requires",
    "default", "break", "continue", "goto", "assert",
}

# ------------------------------------------------------------------------ IR


@dataclass
class CallSite:
    name: str          # "probe", "DistanceOracle::bfs_block", "vector", ...
    line: int
    args: int          # argument count at the call site
    is_member: bool    # x.f() / x->f()


@dataclass
class Op:
    kind: str          # alloc | growth | maybe-growth | container-ctor | rand |
    #                    clock | ptr-hash | unordered-iter | atomic-implicit |
    #                    throw
    line: int
    detail: str
    # For maybe-growth: the call site, so the rule engine can check whether a
    # project method actually resolves (then the call graph covers it).
    call: object = None


@dataclass
class LockSite:
    lock_id: str       # "DistanceOracle::mutex_", "<local>:error_mutex", ...
    line: int
    shared: bool       # shared_lock acquisition
    # Call sites made while this lock is held (within the guard's scope).
    calls_under: list = field(default_factory=list)


@dataclass
class FunctionDef:
    qname: str         # "faultroute::DistanceOracle::bfs_block"
    file: str          # repo-relative path
    line: int
    calls: list = field(default_factory=list)   # [CallSite]
    ops: list = field(default_factory=list)     # [Op]
    locks: list = field(default_factory=list)   # [LockSite]
    min_args: int = 0
    max_args: int = 1 << 30

    @property
    def name(self) -> str:
        return self.qname.rsplit("::", 1)[-1]


@dataclass
class Annotations:
    """Per-file annotation tags, parsed from comments in the raw source."""
    # line -> [(tag, payload)], e.g. 12 -> [("allow-hot-alloc", "warm-up ...")]
    tags: dict = field(default_factory=dict)
    file_allows: dict = field(default_factory=dict)  # rule -> reason
    malformed: list = field(default_factory=list)    # [(line, message)]


@dataclass
class Finding:
    rule: str
    file: str
    line: int
    function: str
    message: str

    def location(self) -> str:
        return f"{self.file}:{self.line}" if self.line else self.file

    def __str__(self) -> str:
        return f"{self.location()}: [{self.rule}] {self.message}"


# ----------------------------------------------------------- comment handling

def strip_comments(text: str) -> str:
    """Blanks // and /* */ comments (and raw strings down to plain strings),
    preserving line numbers and ordinary string literal spans."""
    out = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == "R" and nxt == '"':
                # Raw string: find delimiter, blank the contents.
                m = re.match(r'R"([^(\s]*)\(', text[i:])
                if m:
                    close = ")" + m.group(1) + '"'
                    end = text.find(close, i)
                    if end != -1:
                        span = text[i:end + len(close)]
                        out.append('"' + "".join("\n" if ch == "\n" else " "
                                                 for ch in span[:-1]) + '"')
                        i = end + len(close)
                        continue
            if c == '"':
                state = "str"
            elif c == "'":
                state = "chr"
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append(c)
                out.append(nxt)
                i += 2
                continue
            if c == quote or c == "\n":
                state = "code"
            out.append(c)
        i += 1
    return "".join(out)


ANNOTATION_RE = re.compile(r"analyze:([a-z][a-z-]*)\(([^)]*)\)")
ANNOTATION_LOOSE_RE = re.compile(r"analyze:([a-z][a-z-]*)")
KNOWN_TAGS = (
    {"hot-root", "det-root", "cold"}
    | {f"allow-{r}" for r in RULES}
    | {f"allow-file-{r}" for r in RULES}
)
REASON_REQUIRED_TAGS = {"cold"} | {f"allow-{r}" for r in RULES} | {
    f"allow-file-{r}" for r in RULES}


def parse_annotations(raw_text: str) -> Annotations:
    ann = Annotations()
    for lineno, line in enumerate(raw_text.splitlines(), 1):
        seen_spans = []
        for m in ANNOTATION_RE.finditer(line):
            seen_spans.append(m.span())
            tag, payload = m.group(1), m.group(2).strip()
            if tag not in KNOWN_TAGS:
                ann.malformed.append(
                    (lineno, f"unknown annotation 'analyze:{tag}' "
                             f"(known: {', '.join(sorted(KNOWN_TAGS))})"))
                continue
            if tag in REASON_REQUIRED_TAGS and len(payload) < MIN_REASON_CHARS:
                ann.malformed.append(
                    (lineno, f"'analyze:{tag}' requires a real reason "
                             f"(>= {MIN_REASON_CHARS} chars), got '{payload}'"))
                continue
            if tag.startswith("allow-file-"):
                ann.file_allows[tag[len("allow-file-"):]] = payload
            else:
                ann.tags.setdefault(lineno, []).append((tag, payload))
        for m in ANNOTATION_LOOSE_RE.finditer(line):
            if not any(s <= m.start() < e for s, e in seen_spans):
                ann.malformed.append(
                    (lineno, f"annotation 'analyze:{m.group(1)}' is missing its "
                             "(<payload>) — the grammar is analyze:<tag>(<text>)"))
    return ann


def tag_at(ann: Annotations, line: int, tag: str):
    """Returns the payload if `tag` appears on `line` or the line above."""
    for lineno in (line, line - 1):
        for t, payload in ann.tags.get(lineno, []):
            if t == tag:
                return payload
    return None


# ---------------------------------------------------------- internal frontend

TOKEN_RE = re.compile(
    r"""[A-Za-z_]\w*
      | \.?\d(?:[\w.]|[eEpP][+-])*
      | "(?:[^"\\\n]|\\.)*"
      | '(?:[^'\\\n]|\\.)*'
      | ::|->|\+\+|--|<<=|>>=|<<|>=|<=|==|!=|&&|\|\||\.\.\.
      | [-+*/%^&|~!<>=?:;,.(){}\[\]\\#]
    """,
    re.VERBOSE,
)


def tokenize(stripped: str):
    """Yields (text, line) tokens from comment-stripped C++ source, with
    preprocessor directive lines removed (both #if branches stay visible)."""
    lines = stripped.splitlines()
    keep = []
    i = 0
    while i < len(lines):
        line = lines[i]
        if line.lstrip().startswith("#"):
            keep.append("")
            while line.rstrip().endswith("\\") and i + 1 < len(lines):
                i += 1
                line = lines[i]
                keep.append("")
        else:
            keep.append(line)
        i += 1
    toks = []
    for lineno, line in enumerate(keep, 1):
        for m in TOKEN_RE.finditer(line):
            toks.append((m.group(0), lineno))
    return toks


def _match_forward(toks, i, open_t, close_t):
    """Index of the token matching open_t at toks[i]; -1 if unbalanced."""
    depth = 0
    while i < len(toks):
        t = toks[i][0]
        if t == open_t:
            depth += 1
        elif t == close_t:
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return -1


def _collect_decl_names(stripped: str, type_word: str) -> set:
    """Names declared with a type mentioning `type_word` anywhere in the file
    (members, locals, params; good enough for rule discrimination)."""
    names = set()
    decl = re.compile(
        r"\b" + type_word + r"\s*(?:<[^;{}()]*>)?[^;{}()=]*?[&*\]\s>]\s*(\w+)\s*[;={(\[,)]")
    for m in decl.finditer(stripped):
        name = m.group(1)
        if name not in CXX_KEYWORDS:
            names.add(name)
    simple = re.compile(r"\b" + type_word + r"\b[^;{}()]*?\s(\w+)\s*[;={(\[,)]")
    for m in simple.finditer(stripped):
        name = m.group(1)
        if name not in CXX_KEYWORDS:
            names.add(name)
    return names


def _receiver_base(toks, dot_idx) -> str:
    """Nearest identifier of the receiver chain ending at toks[dot_idx]
    (the '.' or '->'): `r.counter_.load()` -> 'counter_',
    `states_[id].load()` -> 'states_', `(*cell).store()` -> 'cell'."""
    j = dot_idx - 1
    while j >= 0:
        t = toks[j][0]
        if t in (")", "]"):
            open_t = "(" if t == ")" else "["
            depth = 0
            while j >= 0:
                tt = toks[j][0]
                if tt == t:
                    depth += 1
                elif tt == open_t:
                    depth -= 1
                    if depth == 0:
                        break
                j -= 1
            j -= 1
            continue
        if re.match(r"[A-Za-z_]\w*$", t):
            return t
        if t in ("*", "&", ".", "->", "::"):
            j -= 1
            continue
        break
    return ""


def _first_arg_chain(toks, open_paren: int) -> str:
    """Text of the first argument inside the parens opening at open_paren."""
    close = _match_forward(toks, open_paren, "(", ")")
    if close < 0:
        return ""
    parts = []
    depth = 0
    for j in range(open_paren + 1, close):
        t = toks[j][0]
        if t in "([{":
            depth += 1
        elif t in ")]}":
            depth -= 1
        elif t == "," and depth == 0:
            break
        parts.append(t)
    return "".join(parts)


def _args_in(toks, open_paren: int):
    """(arg_count, contains_memory_order) for the parens at open_paren."""
    close = _match_forward(toks, open_paren, "(", ")")
    if close < 0:
        return 0, False
    count = 0
    has_order = False
    depth = 0
    any_tok = False
    for j in range(open_paren + 1, close):
        t = toks[j][0]
        any_tok = True
        if t in "([{":
            depth += 1
        elif t in ")]}":
            depth -= 1
        elif t == "," and depth == 0:
            count += 1
        if t.startswith("memory_order"):
            has_order = True
    return (count + 1 if any_tok else 0), has_order


class InternalParser:
    """Single-purpose C++ surface parser: extracts function definitions, call
    sites and rule-relevant operations from one file. Not a compiler — it
    understands exactly the project's idiom (see docs/ANALYSIS.md for the
    contract and its limits)."""

    def __init__(self, rel_path: str, raw_text: str, header_text: str = ""):
        self.rel_path = rel_path
        self.stripped = strip_comments(raw_text)
        self.toks = tokenize(self.stripped)
        # Declarations are collected from this file plus its sibling header
        # (foo.cpp + foo.hpp): members like `names_` live in the header but
        # are used in the .cpp, and the rules need to know their types.
        decl_src = self.stripped
        if header_text:
            decl_src = decl_src + "\n" + strip_comments(header_text)
        self.atomic_names = _collect_decl_names(decl_src, "atomic")
        self.mutex_names = (_collect_decl_names(decl_src, "mutex")
                            | _collect_decl_names(decl_src, "shared_mutex"))
        self.unordered_names = (_collect_decl_names(decl_src, "unordered_map")
                                | _collect_decl_names(decl_src, "unordered_set"))
        self.container_aliases = set()
        for m in re.finditer(r"\busing\s+(\w+)\s*=\s*(?:std::)?(\w+)", decl_src):
            if m.group(2) in CONTAINER_TYPES:
                self.container_aliases.add(m.group(1))
        # Variables of std container/string type: member calls on them are
        # std calls, never project call-graph edges (a `.size()` on a map must
        # not link to a project function that happens to be named `size`).
        self.container_var_names = set()
        for tw in ("vector", "string", "deque", "map", "set", "unordered_map",
                   "unordered_set", "array", "list", "queue", "priority_queue",
                   "Path", *sorted(self.container_aliases)):
            self.container_var_names |= _collect_decl_names(decl_src, tw)
        self.functions: list[FunctionDef] = []

    # -- function extraction ------------------------------------------------

    def parse(self) -> list:
        toks = self.toks
        scope: list[str] = []       # namespace / class names
        scope_kind: list[str] = []  # 'ns' | 'class' | 'block'
        i = 0
        n = len(toks)
        while i < n:
            t, line = toks[i]
            if t == "namespace":
                j = i + 1
                parts = []
                while j < n and (re.match(r"[A-Za-z_]\w*$", toks[j][0])
                                 or toks[j][0] == "::"):
                    if toks[j][0] != "::":
                        parts.append(toks[j][0])
                    j += 1
                if j < n and toks[j][0] == "{":
                    scope.extend(parts if parts else ["(anon)"])
                    scope_kind.extend(["ns"] * (len(parts) if parts else 1))
                    i = j + 1
                    continue
                i = j + 1
                continue
            if t in ("class", "struct") and (i == 0 or toks[i - 1][0] != "enum"):
                j = i + 1
                name = "(anon)"
                if j < n and re.match(r"[A-Za-z_]\w*$", toks[j][0]):
                    name = toks[j][0]
                    j += 1
                # Skip to '{' (definition) or ';' (forward decl), tolerating
                # base clauses; 'final' etc.
                while j < n and toks[j][0] not in ("{", ";"):
                    if toks[j][0] == "<":
                        j = _match_forward(toks, j, "<", ">")
                        if j < 0:
                            return self.functions
                    j += 1
                if j < n and toks[j][0] == "{":
                    scope.append(name)
                    scope_kind.append("class")
                    i = j + 1
                    continue
                i = j + 1
                continue
            if t == "{":
                scope.append("")
                scope_kind.append("block")
                i += 1
                continue
            if t == "}":
                if scope_kind:
                    scope.pop()
                    scope_kind.pop()
                i += 1
                continue
            if t == "(" and i > 0:
                got = self._try_function(i, scope, scope_kind)
                if got is not None:
                    i = got
                    continue
            i += 1
        return self.functions

    def _try_function(self, open_paren: int, scope, scope_kind) -> int | None:
        """toks[open_paren] == '('. If this is a function definition header at
        namespace/class scope, records it and returns the index just past its
        body; else None."""
        toks = self.toks
        if any(k == "block" for k in scope_kind):
            return None  # inside a function body already
        # Name chain walking back: id (:: id)* , possibly operator forms.
        j = open_paren - 1
        chain = []
        if j >= 0 and toks[j][0] == "operator":
            return None
        while j >= 0:
            t = toks[j][0]
            if re.match(r"[A-Za-z_]\w*$", t) and t not in CXX_KEYWORDS:
                chain.insert(0, t)
                if j - 1 >= 0 and toks[j - 1][0] == "::":
                    j -= 2
                    # allow Class<...>::name — skip template args
                    if j >= 0 and toks[j][0] == ">":
                        depth = 0
                        while j >= 0:
                            if toks[j][0] == ">":
                                depth += 1
                            elif toks[j][0] == "<":
                                depth -= 1
                                if depth == 0:
                                    j -= 1
                                    break
                            j -= 1
                else:
                    j -= 1
                    break
            elif t == "~":
                j -= 1
                break
            else:
                break
        if not chain:
            return None
        close = _match_forward(toks, open_paren, "(", ")")
        if close < 0:
            return None
        # A definition follows with an optional trail then '{'. Anything that
        # hits ';' or '=' first is a declaration / default / delete.
        k = close + 1
        depth_guard = 0
        while k < len(toks):
            t = toks[k][0]
            if t in ("const", "noexcept", "override", "final", "mutable",
                     "&", "&&", "try"):
                k += 1
                continue
            if t == "->":  # trailing return type: skip to '{' or ';'
                k += 1
                while k < len(toks) and toks[k][0] not in ("{", ";"):
                    if toks[k][0] == "<":
                        k = _match_forward(toks, k, "<", ">")
                        if k < 0:
                            return None
                    k += 1
                continue
            if t == "(":  # noexcept(...)
                k = _match_forward(toks, k, "(", ")")
                if k < 0:
                    return None
                k += 1
                continue
            if t == ":":  # ctor init list: skip initializers up to body '{'
                k += 1
                while k < len(toks):
                    t2 = toks[k][0]
                    if t2 == "(":
                        k = _match_forward(toks, k, "(", ")")
                        if k < 0:
                            return None
                        k += 1
                    elif t2 == "{":
                        prev = toks[k - 1][0]
                        if re.match(r"[A-Za-z_]\w*$", prev) or prev == ">":
                            k = _match_forward(toks, k, "{", "}")
                            if k < 0:
                                return None
                            k += 1
                        else:
                            break  # the body
                    elif t2 == "<":
                        k = _match_forward(toks, k, "<", ">")
                        if k < 0:
                            return None
                        k += 1
                    elif t2 == ";":
                        return None
                    else:
                        k += 1
                continue
            break
        if k >= len(toks) or toks[k][0] != "{":
            return None
        body_end = _match_forward(toks, k, "{", "}")
        if body_end < 0:
            return None
        # Reject control-flow headers that slipped through ("if (x) {").
        if chain[-1] in CXX_KEYWORDS:
            return None
        enclosing = [s for s, kind in zip(scope, scope_kind) if kind in ("ns", "class")]
        qname = "::".join(enclosing + chain)
        fn = FunctionDef(qname=qname, file=self.rel_path, line=toks[open_paren][1])
        fn.min_args, fn.max_args = self._param_counts(open_paren, close)
        self._scan_body(fn, k, body_end)
        self.functions.append(fn)
        return body_end + 1

    def _param_counts(self, open_paren: int, close: int):
        toks = self.toks
        depth = 0
        commas = 0
        defaults = 0
        any_tok = False
        variadic = False
        for j in range(open_paren + 1, close):
            t = toks[j][0]
            any_tok = True
            if t in "([{<":
                depth += 1
            elif t in ")]}>":
                depth -= 1
            elif depth == 0 and t == ",":
                commas += 1
            elif depth == 0 and t == "=":
                defaults += 1
            elif t == "...":
                variadic = True
        if not any_tok:
            return 0, 0
        total = commas + 1
        if self.toks[open_paren + 1][0] == "void" and total == 1:
            return 0, 0
        max_args = (1 << 30) if variadic else total
        return max(0, total - defaults), max_args

    # -- body scanning ------------------------------------------------------

    def _scan_body(self, fn: FunctionDef, body_open: int, body_end: int) -> None:
        toks = self.toks
        open_locks: list[tuple[LockSite, int]] = []  # (site, scope_end_tok)

        def note_call(site: CallSite):
            fn.calls.append(site)
            for lock, scope_end in open_locks:
                if scope_end < 0 or True:
                    lock.calls_under.append(site)

        i = body_open + 1
        while i < body_end:
            t, line = toks[i]
            # Retire locks whose scope ended.
            open_locks = [(l, e) for (l, e) in open_locks if e > i]

            if t == "throw":
                fn.ops.append(Op("throw", line, "throw statement"))
                i += 1
                continue
            if t == "new":
                fn.ops.append(Op("alloc", line, "operator new"))
                i += 1
                continue
            if t in RAND_TOKENS:
                fn.ops.append(Op("rand", line, t))
                i += 1
                continue
            if t in CLOCK_TOKENS:
                fn.ops.append(Op("clock", line, t))
                i += 1
                continue
            if t == "hash" and i + 1 < body_end and toks[i + 1][0] == "<":
                close = _match_forward(toks, i + 1, "<", ">")
                if 0 < close <= body_end and any(
                        toks[j][0] == "*" for j in range(i + 2, close)):
                    fn.ops.append(Op("ptr-hash", line, "std::hash over a raw pointer"))
            if t == "for" and i + 1 < body_end and toks[i + 1][0] == "(":
                close = _match_forward(toks, i + 1, "(", ")")
                if close > 0:
                    inner = [toks[j][0] for j in range(i + 2, close)]
                    if ":" in inner:
                        tail = inner[inner.index(":") + 1:]
                        base = next((x for x in tail
                                     if re.match(r"[A-Za-z_]\w*$", x)), "")
                        if base in self.unordered_names:
                            fn.ops.append(Op(
                                "unordered-iter", line,
                                f"range-for over unordered container '{base}'"))

            if re.match(r"[A-Za-z_]\w*$", t) and i + 1 <= body_end and \
                    toks[i + 1][0] == "(" and t not in CXX_KEYWORDS:
                self._handle_call(fn, i, body_end, note_call, open_locks)
            i += 1

        # lock scopes: attach calls-under via a second pass below (handled in
        # _handle_call through open_locks), nothing further here.

    def _handle_call(self, fn: FunctionDef, i: int, body_end: int,
                     note_call, open_locks) -> None:
        toks = self.toks
        t, line = toks[i]
        open_paren = i + 1
        args, has_order = _args_in(toks, open_paren)

        # Qualified chain backwards.
        chain = [t]
        j = i - 1
        while j >= 1 and toks[j][0] == "::" and \
                re.match(r"[A-Za-z_]\w*$", toks[j - 1][0]):
            chain.insert(0, toks[j - 1][0])
            j -= 2
        prev = toks[j][0] if j >= 0 else ""
        is_member = prev in (".", "->")

        callee = "::".join(chain)
        base_name = chain[-1]

        # Declaration `Type name(args)` → constructor call of Type.
        if not is_member and len(chain) == 1 and args > 0:
            if re.match(r"[A-Za-z_]\w*$", prev) and prev not in CXX_KEYWORDS and \
                    prev not in ("return", "throw"):
                callee = prev
                base_name = prev
            elif prev == ">":
                depth = 0
                k = j
                while k >= 0:
                    if toks[k][0] == ">":
                        depth += 1
                    elif toks[k][0] == "<":
                        depth -= 1
                        if depth == 0:
                            break
                    k -= 1
                if k > 0 and re.match(r"[A-Za-z_]\w*$", toks[k - 1][0]):
                    callee = toks[k - 1][0]
                    base_name = callee

        # --- ops derived from the call ---
        if base_name in ALLOC_FUNCS:
            fn.ops.append(Op("alloc", line, f"call to {base_name}"))
        if is_member and base_name in GROW_METHODS:
            recv = _receiver_base(toks, j)
            if recv in self.atomic_names:
                pass  # atomic, handled below — not container growth
            elif recv in self.container_var_names or not recv:
                fn.ops.append(Op("growth", line,
                                 f"growing container call .{base_name}() on "
                                 f"'{recv or '<expr>'}'"))
            else:
                # Receiver of unknown type: this may be a project method that
                # merely shares a container method's name (DenseMarks::emplace
                # is stamp writes, not growth). Record a call edge so the
                # graph traverses into the real definition, plus a conditional
                # op the rule engine fires only when nothing resolves.
                site = CallSite(callee, line, args, is_member)
                fn.ops.append(Op(
                    "maybe-growth", line,
                    f"growing-container-style call .{base_name}() on '{recv}' "
                    "(receiver type unknown, no project method matches)",
                    site))
                note_call(site)
        if (base_name in CONTAINER_TYPES or base_name in self.container_aliases) \
                and not is_member and args > 0 and callee == base_name:
            fn.ops.append(Op("container-ctor", line,
                             f"sized construction of {base_name}"))
        if base_name in RAND_FUNCS and not is_member:
            fn.ops.append(Op("rand", line, f"call to {base_name}()"))
        if base_name == "time" and not is_member and args == 1:
            fn.ops.append(Op("clock", line, "call to time()"))
        if is_member and base_name in ATOMIC_ORDERED_METHODS:
            recv = _receiver_base(toks, j)
            if recv in self.atomic_names:
                # compare_exchange_* without any order spells TWO defaults.
                if not has_order:
                    fn.ops.append(Op(
                        "atomic-implicit", line,
                        f"atomic .{base_name}() on '{recv}' without an explicit "
                        "std::memory_order argument (implicit seq_cst)"))
        if is_member and base_name in ("begin", "cbegin"):
            recv = _receiver_base(toks, j)
            if recv in self.unordered_names:
                fn.ops.append(Op("unordered-iter", line,
                                 f"iteration over unordered container '{recv}'"))

        # --- lock acquisitions ---
        if base_name in LOCK_GUARD_TYPES and not is_member:
            arg = _first_arg_chain(toks, open_paren)
            if arg:
                site = LockSite(self._lock_id(fn, arg), line,
                                shared=base_name == "shared_lock")
                fn.locks.append(site)
                scope_end = self._enclosing_scope_end(i, body_end)
                open_locks.append((site, scope_end))
        elif base_name in LOCK_GUARD_TYPES and is_member:
            pass
        elif base_name == "lock" and is_member and args == 0:
            recv = _receiver_base(toks, j)
            if recv in self.mutex_names or "mutex" in recv:
                site = LockSite(self._lock_id(fn, recv), line, shared=False)
                fn.locks.append(site)
                open_locks.append((site, self._enclosing_scope_end(i, body_end)))
        elif base_name == "lock_shared" and is_member:
            recv = _receiver_base(toks, j)
            if recv in self.mutex_names or "mutex" in recv:
                site = LockSite(self._lock_id(fn, recv), line, shared=True)
                fn.locks.append(site)
                open_locks.append((site, self._enclosing_scope_end(i, body_end)))

        # --- the call edge itself ---
        if base_name in CXX_KEYWORDS or base_name in GROW_METHODS or \
                base_name in ATOMIC_METHODS or base_name in LOCK_GUARD_TYPES:
            return
        if is_member:
            recv = _receiver_base(toks, j)
            if recv in self.container_var_names or recv in self.atomic_names:
                return  # std container/atomic method, never a project edge
        note_call(CallSite(callee, line, args, is_member))

    def _lock_id(self, fn: FunctionDef, expr: str) -> str:
        """Normalizes a mutex expression to an identity string. Bare member /
        local names get qualified by the acquiring function's enclosing scope
        so `DistanceOracle::mutex_` and `CounterRegistry::mutex_` stay
        distinct; object-qualified expressions (`shard.mutex`, `r.mutex_`)
        keep their receiver chain, which is shared across functions that
        name the object the same way."""
        expr = expr.replace("this->", "").replace("&", "").replace("->", ".")
        if "." in expr or "::" in expr:
            return expr
        prefix = fn.qname.rsplit("::", 1)[0] if "::" in fn.qname else ""
        return f"{prefix}::{expr}" if prefix else expr

    def _enclosing_scope_end(self, i: int, body_end: int) -> int:
        """Token index where the innermost block containing toks[i] closes."""
        depth = 0
        j = i
        while j <= body_end:
            t = self.toks[j][0]
            if t == "{":
                depth += 1
            elif t == "}":
                if depth == 0:
                    return j
                depth -= 1
            j += 1
        return body_end


def parse_file_internal(args):
    rel_path, text, header_text = args
    try:
        parser = InternalParser(rel_path, text, header_text)
        return parser.parse()
    except RecursionError:
        return []


# ---------------------------------------------------------- libclang frontend

def load_libclang():
    """Returns the clang.cindex module with a resolvable libclang, or None."""
    try:
        from clang import cindex  # noqa: PLC0415
    except ImportError:
        return None
    try:
        cindex.Index.create()
        return cindex
    except Exception:  # library file not found / version mismatch
        for pattern in ("/usr/lib/llvm-*/lib/libclang.so*",
                        "/usr/lib/x86_64-linux-gnu/libclang-*.so*"):
            import glob  # noqa: PLC0415
            for cand in sorted(glob.glob(pattern), reverse=True):
                try:
                    cindex.Config.loaded = False
                    cindex.Config.set_library_file(cand)
                    cindex.Index.create()
                    return cindex
                except Exception:
                    continue
        return None


def _clang_args(command: str):
    """Compile-db command line reduced to what parsing needs."""
    args = []
    toks = command.split()
    skip_next = False
    for tok in toks[1:]:
        if skip_next:
            skip_next = False
            continue
        if tok in ("-o", "-c"):
            skip_next = tok == "-o"
            continue
        if tok.startswith(("-I", "-D", "-std", "-isystem", "-W", "-f")):
            args.append(tok)
    return args


def parse_tu_libclang(cindex, root: Path, entry: dict) -> list:
    """Parses one TU and lowers every project-file function definition to IR."""
    src = Path(entry["file"])
    if not src.is_absolute():
        src = Path(entry.get("directory", ".")) / src
    index = cindex.Index.create()
    tu = index.parse(str(src), args=_clang_args(entry.get("command", "")),
                     options=cindex.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD)
    out = []
    CursorKind = cindex.CursorKind

    def in_project(cursor) -> bool:
        loc = cursor.location
        if loc.file is None:
            return False
        try:
            rel = Path(loc.file.name).resolve().relative_to(root)
        except ValueError:
            return False
        return rel.parts[0] in ANALYZED_DIRS

    def qname(cursor) -> str:
        parts = []
        c = cursor
        while c is not None and c.kind != CursorKind.TRANSLATION_UNIT:
            if c.spelling:
                parts.insert(0, c.spelling)
            elif c.kind == CursorKind.NAMESPACE:
                parts.insert(0, "(anon)")
            c = c.semantic_parent
        return "::".join(parts)

    fn_kinds = {CursorKind.FUNCTION_DECL, CursorKind.CXX_METHOD,
                CursorKind.CONSTRUCTOR, CursorKind.DESTRUCTOR,
                CursorKind.FUNCTION_TEMPLATE}

    def lower_function(cursor):
        rel = str(Path(cursor.location.file.name).resolve().relative_to(root))
        fn = FunctionDef(qname=qname(cursor), file=rel, line=cursor.location.line)
        params = [c for c in cursor.get_children()
                  if c.kind == CursorKind.PARM_DECL]
        fn.min_args = sum(1 for p in params
                          if not any(True for _ in p.get_children()))
        fn.max_args = len(params)
        if cursor.type.is_function_variadic() if hasattr(cursor.type, "is_function_variadic") else False:
            fn.max_args = 1 << 30
        lock_stack = []

        def lock_ident(expr: str) -> str:
            expr = expr.replace("this->", "").replace("&", "").replace("->", ".")
            if "." in expr or "::" in expr:
                return expr
            prefix = fn.qname.rsplit("::", 1)[0] if "::" in fn.qname else ""
            return f"{prefix}::{expr}" if prefix else expr

        def walk(c):
            kind = c.kind
            line = c.location.line if c.location else 0
            if kind == CursorKind.CXX_NEW_EXPR:
                fn.ops.append(Op("alloc", line, "operator new"))
            elif kind == CursorKind.CXX_THROW_EXPR:
                fn.ops.append(Op("throw", line, "throw statement"))
            elif kind == CursorKind.CXX_FOR_RANGE_STMT:
                kids = list(c.get_children())
                if len(kids) >= 2 and "unordered_" in kids[-2].type.spelling:
                    fn.ops.append(Op("unordered-iter", line,
                                     "range-for over unordered container"))
            elif kind == CursorKind.VAR_DECL:
                ts = c.type.spelling
                if any(g in ts for g in
                       ("lock_guard", "unique_lock", "shared_lock", "scoped_lock")):
                    arg = ""
                    for k in c.get_children():
                        toks = [t.spelling for t in k.get_tokens()]
                        if toks:
                            arg = "".join(x for x in toks if x not in ("(", ")"))
                            break
                    if arg:
                        site = LockSite(lock_ident(arg), line,
                                        shared="shared_lock" in ts)
                        fn.locks.append(site)
                        lock_stack.append(site)
                if re.search(r"\b(?:vector|string|deque|map|set|list)\b", ts) and \
                        any(True for _ in c.get_children()):
                    init = [k for k in c.get_children()
                            if k.kind not in (CursorKind.TYPE_REF,
                                              CursorKind.NAMESPACE_REF,
                                              CursorKind.TEMPLATE_REF)]
                    if init:
                        toks = [t.spelling for t in init[0].get_tokens()]
                        if toks and toks[0] != "{":  # sized ctor, not = default
                            fn.ops.append(Op("container-ctor", line,
                                             f"sized construction of {ts}"))
            elif kind == CursorKind.CALL_EXPR:
                ref = c.referenced
                name = (ref.spelling if ref is not None else c.spelling) or ""
                args = len(list(c.get_arguments()))
                parent_type = ""
                if ref is not None and ref.semantic_parent is not None:
                    parent_type = ref.semantic_parent.spelling or ""
                is_member = ref is not None and \
                    ref.kind == CursorKind.CXX_METHOD
                base_parent = parent_type.split("<")[0].replace("std::", "")
                std_container_parent = (base_parent in CONTAINER_TYPES
                                        or base_parent == "basic_string")
                if name in ALLOC_FUNCS:
                    fn.ops.append(Op("alloc", line, f"call to {name}"))
                elif name in RAND_FUNCS:
                    fn.ops.append(Op("rand", line, f"call to {name}()"))
                elif name == "time" and args == 1:
                    fn.ops.append(Op("clock", line, "call to time()"))
                elif is_member and name in GROW_METHODS and std_container_parent:
                    fn.ops.append(Op("growth", line,
                                     f"growing container call .{name}()"))
                elif is_member and name in ATOMIC_ORDERED_METHODS and \
                        "atomic" in parent_type:
                    has_order = any("memory_order" in a.type.spelling
                                    for a in c.get_arguments())
                    if not has_order:
                        fn.ops.append(Op(
                            "atomic-implicit", line,
                            f"atomic .{name}() without an explicit "
                            "std::memory_order argument (implicit seq_cst)"))
                elif name == "lock" and is_member and "mutex" in parent_type:
                    site = LockSite(lock_ident(c.spelling or "mutex"), line,
                                    shared=False)
                    fn.locks.append(site)
                qualified = name
                if ref is not None:
                    qualified = qname(ref) or name
                    qualified = qualified.replace("faultroute::", "")
                std_method = std_container_parent or "atomic" in parent_type
                if name and name not in LOCK_GUARD_TYPES and not (
                        std_method and (name in GROW_METHODS
                                        or name in ATOMIC_METHODS)):
                    site = CallSite(qualified, line, args, is_member)
                    fn.calls.append(site)
                    for lk in lock_stack:
                        lk.calls_under.append(site)
            elif kind == CursorKind.DECL_REF_EXPR or kind == CursorKind.TYPE_REF:
                sp = c.spelling or ""
                base = sp.split("::")[-1].split("<")[0].strip()
                if base in RAND_TOKENS:
                    fn.ops.append(Op("rand", line, base))
                elif base in CLOCK_TOKENS:
                    fn.ops.append(Op("clock", line, base))
                if "hash<" in sp and "*" in sp:
                    fn.ops.append(Op("ptr-hash", line,
                                     "std::hash over a raw pointer"))
            for kid in c.get_children():
                walk(kid)

        for child in cursor.get_children():
            walk(child)
        return fn

    def visit(cursor):
        for c in cursor.get_children():
            if c.kind in fn_kinds and c.is_definition() and in_project(c):
                out.append(lower_function(c))
            elif c.kind in (CursorKind.NAMESPACE, CursorKind.CLASS_DECL,
                            CursorKind.STRUCT_DECL, CursorKind.CLASS_TEMPLATE,
                            CursorKind.UNEXPOSED_DECL,
                            CursorKind.LINKAGE_SPEC):
                visit(c)

    visit(tu.cursor)
    return out


# ------------------------------------------------------------------- program


class Program:
    """The linked cross-TU view: functions, annotations, name index."""

    def __init__(self, root: Path, functions: list, annotations: dict):
        self.root = root
        self.annotations = annotations  # rel_path -> Annotations
        # Dedupe (header parsed into several TUs / standalone).
        seen = {}
        for fn in functions:
            seen.setdefault((fn.file, fn.line, fn.qname), fn)
        self.functions = list(seen.values())
        self.by_suffix: dict[str, list] = {}
        for fn in self.functions:
            self.by_suffix.setdefault(fn.name, []).append(fn)

    def ann(self, rel_path: str) -> Annotations:
        return self.annotations.get(rel_path, Annotations())

    def resolve(self, call: CallSite) -> list:
        """Definitions a call site may reach (conservative name linking with
        an argument-count filter to tame accidental short-name matches)."""
        last = call.name.rsplit("::", 1)[-1]
        cands = self.by_suffix.get(last, [])
        if "::" in call.name:
            # A qualified call A::f can only reach definitions whose qualified
            # name ends in ::A::f — std::min must never link to a project min.
            want = call.name
            cands = [f for f in cands
                     if f.qname == want or f.qname.endswith("::" + want)]
        return [f for f in cands if f.min_args <= call.args <= f.max_args]

    def roots(self, tag: str) -> list:
        out = []
        for fn in self.functions:
            if tag_at(self.ann(fn.file), fn.line, tag) is not None:
                out.append(fn)
        return out

    def reachable(self, roots: list, honor_cold: bool = False):
        """BFS over the call graph. Returns {id(fn): (fn, chain)} where chain
        is a sample path of qualified names from a root."""
        seen = {}
        work = []
        for r in roots:
            if id(r) not in seen:
                seen[id(r)] = (r, [r.name])
                work.append(r)
        while work:
            fn = work.pop()
            _, chain = seen[id(fn)]
            ann = self.ann(fn.file)
            for call in fn.calls:
                if honor_cold and tag_at(ann, call.line, "cold") is not None:
                    continue
                for target in self.resolve(call):
                    if id(target) not in seen:
                        seen[id(target)] = (target, chain + [target.name])
                        work.append(target)
        return seen


# --------------------------------------------------------------- rule engines


class Analysis:
    def __init__(self, program: Program, require_roots: bool = True):
        self.program = program
        self.require_roots = require_roots
        self.findings: list[Finding] = []
        self.suppressed: list[dict] = []

    # -- shared helpers -----------------------------------------------------

    def _suppress_reason(self, rule: str, fn: FunctionDef, line: int):
        ann = self.program.ann(fn.file)
        if rule in ann.file_allows:
            return ann.file_allows[rule]
        payload = tag_at(ann, line, f"allow-{rule}")
        if payload is not None:
            return payload
        return tag_at(ann, fn.line, f"allow-{rule}")  # function-level tag

    def _emit(self, rule: str, fn: FunctionDef, line: int, message: str):
        reason = self._suppress_reason(rule, fn, line)
        if reason is not None:
            self.suppressed.append({
                "rule": rule, "file": fn.file, "line": line,
                "function": fn.qname, "reason": reason})
            return
        self.findings.append(Finding(rule, fn.file, line, fn.qname, message))

    # -- meta: annotations --------------------------------------------------

    def check_annotations(self):
        for rel, ann in sorted(self.program.annotations.items()):
            for line, message in ann.malformed:
                self.findings.append(Finding(META_RULE, rel, line, "", message))
        if not self.require_roots:
            return
        hot = {fn.qname for fn in self.program.roots("hot-root")}
        det = {fn.qname for fn in self.program.roots("det-root")}
        for want in REQUIRED_HOT_ROOTS:
            if not any(q == want or q.endswith("::" + want) for q in hot):
                self.findings.append(Finding(
                    META_RULE, "<tree>", 0, "",
                    f"required hot root '{want}' has no analyze:hot-root "
                    "annotation (was it deleted?)"))
        for want in REQUIRED_DET_ROOTS:
            if not any(q == want or q.endswith("::" + want) for q in det):
                self.findings.append(Finding(
                    META_RULE, "<tree>", 0, "",
                    f"required determinism root '{want}' has no "
                    "analyze:det-root annotation (was it deleted?)"))

    # -- rule 1: hot-alloc --------------------------------------------------

    def check_hot_alloc(self):
        roots = self.program.roots("hot-root")
        reach = self.program.reachable(roots, honor_cold=True)
        for fn, chain in reach.values():
            via = " -> ".join(chain)
            for op in fn.ops:
                if op.kind in ("alloc", "growth", "container-ctor"):
                    self._emit("hot-alloc", fn, op.line,
                               f"{op.detail} on a hot path (reachable via {via})")
                elif op.kind == "maybe-growth" and \
                        not self.program.resolve(op.call):
                    self._emit("hot-alloc", fn, op.line,
                               f"{op.detail} on a hot path (reachable via {via})")

    # -- rule 2: determinism ------------------------------------------------

    def check_determinism(self):
        roots = self.program.roots("det-root")
        reach = self.program.reachable(roots)
        for fn, chain in reach.values():
            via = " -> ".join(chain)
            for op in fn.ops:
                if op.kind == "rand" and not fn.file.startswith(RAND_EXEMPT_DIR):
                    self._emit("determinism", fn, op.line,
                               f"{op.detail}: nondeterministic randomness feeds "
                               f"a result producer (reachable via {via})")
                elif op.kind == "clock" and not fn.file.startswith(CLOCK_EXEMPT_DIR):
                    self._emit("determinism", fn, op.line,
                               f"{op.detail}: clock read feeds a result producer "
                               f"(reachable via {via})")
                elif op.kind == "ptr-hash":
                    self._emit("determinism", fn, op.line,
                               f"{op.detail}: pointer values vary per run "
                               f"(reachable via {via})")
                elif op.kind == "unordered-iter":
                    self._emit("determinism", fn, op.line,
                               f"{op.detail}: unordered iteration order would "
                               f"leak into ordered output (reachable via {via})")

    # -- rule 3: lock-discipline --------------------------------------------

    def check_lock_discipline(self):
        # (a) implicit seq_cst atomics anywhere under src/.
        for fn in self.program.functions:
            if not fn.file.startswith("src/"):
                continue
            for op in fn.ops:
                if op.kind == "atomic-implicit":
                    self._emit("lock-discipline", fn, op.line, op.detail)

        # (b) + (c): lock graph. held_pairs: lock -> {(other, where)}.
        order_pairs: dict[str, dict] = {}
        for fn in self.program.functions:
            for site in fn.locks:
                # BFS from the calls made under this lock.
                seen: dict[int, tuple] = {}
                work = []
                for call in site.calls_under:
                    for target in self.program.resolve(call):
                        if id(target) not in seen:
                            seen[id(target)] = (target, [fn.name, target.name])
                            work.append(target)
                while work:
                    cur = work.pop()
                    _, chain = seen[id(cur)]
                    for call in cur.calls:
                        for target in self.program.resolve(call):
                            if id(target) not in seen:
                                seen[id(target)] = (target, chain + [target.name])
                                work.append(target)
                for cur, chain in seen.values():
                    for inner in cur.locks:
                        via = " -> ".join(chain)
                        if inner.lock_id == site.lock_id:
                            self._emit(
                                "lock-discipline", fn, site.line,
                                f"lock '{site.lock_id}' acquired here can be "
                                f"re-acquired via {via} at {cur.file}:{inner.line} "
                                "(re-entrant deadlock)")
                        else:
                            order_pairs.setdefault(site.lock_id, {}).setdefault(
                                inner.lock_id,
                                (fn, site.line, via, cur.file, inner.line))
        reported = set()
        for a, inners in order_pairs.items():
            for b, (fn, line, via, ifile, iline) in inners.items():
                if a == b or (b, a) in reported or (a, b) in reported:
                    continue
                if b in order_pairs and a in order_pairs[b]:
                    reported.add((a, b))
                    other = order_pairs[b][a]
                    self._emit(
                        "lock-discipline", fn, line,
                        f"lock-order inversion: '{a}' -> '{b}' here (via {via}, "
                        f"inner at {ifile}:{iline}) but '{b}' -> '{a}' at "
                        f"{other[0].file}:{other[1]}")

    # -- rule 4: throw-safety -----------------------------------------------

    def check_throw_safety(self):
        roots = [fn for fn in self.program.functions
                 if any(c.name.rsplit("::", 1)[-1] == "parallel_index_loop"
                        for c in fn.calls)]
        reach = self.program.reachable(roots)
        for fn, chain in reach.values():
            via = " -> ".join(chain)
            for op in fn.ops:
                if op.kind == "throw":
                    self._emit(
                        "throw-safety", fn, op.line,
                        f"throw inside code reachable from a parallel_index_loop "
                        f"body (via {via}); justify with "
                        "analyze:allow-throw-safety(<reason>) if intentional")

    # -- driver -------------------------------------------------------------

    def run(self, rules=None):
        rules = set(rules or RULES)
        self.check_annotations()
        if "hot-alloc" in rules:
            self.check_hot_alloc()
        if "determinism" in rules:
            self.check_determinism()
        if "lock-discipline" in rules:
            self.check_lock_discipline()
        if "throw-safety" in rules:
            self.check_throw_safety()
        # Deterministic order + dedupe (a line reachable from two roots is one
        # finding).
        uniq = {}
        for f in self.findings:
            uniq.setdefault((f.rule, f.file, f.line, f.message.split(" (reachable")[0]), f)
        self.findings = sorted(uniq.values(),
                               key=lambda f: (f.file, f.line, f.rule))
        return self.findings


# ----------------------------------------------------------------- assembling


def load_compile_db(build_dir: Path):
    db_path = build_dir / "compile_commands.json"
    if not db_path.is_file():
        return None
    with open(db_path, encoding="utf-8") as fh:
        return json.load(fh)


def project_files(root: Path):
    for d in ANALYZED_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in CXX_SUFFIXES and path.is_file():
                yield path


def analyze_tree(root: Path, build_dir: Path, frontend: str, jobs: int,
                 require_roots: bool = True, rules=None):
    """Returns (analysis, info_dict) or raises SetupError."""
    db = load_compile_db(build_dir)
    if db is None:
        raise SetupError(
            f"no compile database at {build_dir}/compile_commands.json — "
            "configure first: cmake -B build -S . "
            "(CMAKE_EXPORT_COMPILE_COMMANDS is ON in this project)")
    db_files = []
    for entry in db:
        f = Path(entry["file"])
        if not f.is_absolute():
            f = Path(entry.get("directory", ".")) / f
        try:
            rel = f.resolve().relative_to(root.resolve())
        except ValueError:
            continue
        if rel.parts and rel.parts[0] in ANALYZED_DIRS:
            db_files.append((entry, rel))

    annotations = {}
    texts = {}
    for path in project_files(root):
        rel = str(path.relative_to(root))
        raw = path.read_text(encoding="utf-8")
        texts[rel] = raw
        annotations[rel] = parse_annotations(raw)

    cindex = load_libclang() if frontend in ("auto", "libclang") else None
    used_frontend = "libclang" if cindex is not None else "internal"
    if frontend == "libclang" and cindex is None:
        raise SkipAnalysis(
            "libclang (python clang.cindex + libclang.so) is not available "
            "on this machine — skipping the semantic analyzer as requested "
            "via --frontend libclang. Install python3-clang / pip libclang "
            "matching the clang major, or run with --frontend internal.")
    if frontend == "internal":
        cindex = None
        used_frontend = "internal"

    functions = []
    if cindex is not None:
        with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
            futs = [pool.submit(parse_tu_libclang, cindex, root.resolve(), entry)
                    for entry, _rel in db_files]
            for fut in futs:
                functions.extend(fut.result())
        # Headers outside any TU (rare) are still annotation-scanned above.
    else:
        def sibling_header(rel: str) -> str:
            for ext in (".hpp", ".h"):
                cand = str(Path(rel).with_suffix(ext))
                if cand != rel and cand in texts:
                    return texts[cand]
            return ""

        work = [(rel, text, sibling_header(rel))
                for rel, text in sorted(texts.items())]
        if jobs > 1 and len(work) > 4:
            try:
                with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
                    for fns in pool.map(parse_file_internal, work, chunksize=8):
                        functions.extend(fns)
            except (OSError, ValueError):
                for item in work:
                    functions.extend(parse_file_internal(item))
        else:
            for item in work:
                functions.extend(parse_file_internal(item))

    program = Program(root, functions, annotations)
    analysis = Analysis(program, require_roots=require_roots)
    analysis.run(rules)
    info = {
        "frontend": used_frontend,
        "tus": len(db_files),
        "files": len(texts),
        "functions": len(program.functions),
    }
    return analysis, info


class SetupError(RuntimeError):
    pass


class SkipAnalysis(RuntimeError):
    pass


def write_json_report(path: str, analysis: Analysis, info: dict):
    rule_counts = {r: 0 for r in (*RULES, META_RULE)}
    for f in analysis.findings:
        rule_counts[f.rule] += 1
    report = {
        "schema": SCHEMA_ID,
        "schema_version": SCHEMA_VERSION,
        "frontend": info["frontend"],
        "tus": info["tus"],
        "files": info["files"],
        "functions": info["functions"],
        "rule_counts": rule_counts,
        "findings": [
            {"rule": f.rule, "file": f.file, "line": f.line,
             "function": f.function, "message": f.message}
            for f in analysis.findings
        ],
        "suppressed": sorted(
            analysis.suppressed,
            key=lambda s: (s["file"], s["line"], s["rule"])),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


# ------------------------------------------------------------------ self-test

def _st_write(root: Path, rel: str, content: str) -> None:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(content, encoding="utf-8")


def _st_compile_db(root: Path, files) -> None:
    db = [{"directory": str(root), "command": f"c++ -std=c++20 -c {f}",
           "file": str(root / f)} for f in files]
    (root / "build").mkdir(exist_ok=True)
    (root / "build" / "compile_commands.json").write_text(
        json.dumps(db), encoding="utf-8")


# The fixtures are self-contained (no #include): both frontends must parse
# them, and libclang sees complete (if tiny) type definitions.
FIXTURE_PRELUDE = """\
namespace std {
template <class T> struct vector {
  vector();
  vector(unsigned long n, T init);
  void push_back(T x);
  void reserve(unsigned long n);
  unsigned long size() const;
  T* begin();
  T* end();
};
template <class K, class V> struct unordered_map {
  unordered_map();
  struct entry { K first; V second; };
  entry* begin();
  entry* end();
  void insert(entry e);
};
enum memory_order { memory_order_relaxed, memory_order_seq_cst };
template <class T> struct atomic {
  T load() const;
  T load(memory_order order) const;
  void store(T v);
  void store(T v, memory_order order);
  T fetch_add(T v);
  T fetch_add(T v, memory_order order);
};
struct mutex { void lock(); void unlock(); };
template <class M> struct lock_guard { lock_guard(M& m); ~lock_guard(); };
template <class T> struct hash;
int rand();
}  // namespace std
"""


def _st_tree(root: Path, *, hot_bug=False, det_bug=False, lock_bug=False,
             throw_bug=False, bad_annotation=False, allowed=False,
             unordered_bug=False):
    """Writes a fixture tree; flags seed specific violations."""
    hot_body = (
        "  helper_scratch(out);\n" if hot_bug else "  helper_clean(out);\n")
    _st_write(root, "src/hot.cpp", FIXTURE_PRELUDE + f"""
void helper_clean(std::vector<int>& out);

void helper_scratch(std::vector<int>& out) {{
  out.push_back(1);
  int* leak = new int[8];
  (void)leak;
}}

// analyze:hot-root(fixture hot loop)
void fixture_hot_loop(std::vector<int>& out) {{
{hot_body}}}
""")
    det_line = "  seed = std::rand();\n" if det_bug else "  seed = 7;\n"
    unordered = (
        "  for (auto it = table.begin(); it != table.end(); ++it) { sum += 1; }\n"
        if unordered_bug else "")
    _st_write(root, "src/det.cpp", FIXTURE_PRELUDE + f"""
int collect_inputs() {{
  int seed = 0;
{det_line}  return seed;
}}

// analyze:det-root(fixture report emitter)
int fixture_report() {{
  std::unordered_map<int, int> table;
  int sum = collect_inputs();
{unordered}  return sum;
}}
""")
    lock_extra = """
void locked_inner(Registry& r) {
  std::lock_guard<std::mutex> lock(r.mutex_);
}

void locked_outer(Registry& r) {
  std::lock_guard<std::mutex> lock(r.mutex_);
  locked_inner(r);
}

unsigned long implicit_read(Registry& r) { return r.counter_.load(); }
""" if lock_bug else """
void locked_outer(Registry& r) {
  std::lock_guard<std::mutex> lock(r.mutex_);
}

unsigned long explicit_read(Registry& r) {
  return r.counter_.load(std::memory_order_relaxed);
}
"""
    _st_write(root, "src/lock.cpp", FIXTURE_PRELUDE + f"""
struct Registry {{
  std::mutex mutex_;
  std::mutex slab_mutex_;
  std::atomic<unsigned long> counter_;
}};
{lock_extra}
void order_ab(Registry& r);
void order_ba(Registry& r);

void take_slab(Registry& r) {{
  std::lock_guard<std::mutex> lock(r.slab_mutex_);
}}

void take_main(Registry& r) {{
  std::lock_guard<std::mutex> lock(r.mutex_);
}}

void order_ab(Registry& r) {{
  std::lock_guard<std::mutex> lock(r.mutex_);
  take_slab(r);
}}
""" + ("""
void order_ba(Registry& r) {
  std::lock_guard<std::mutex> lock(r.slab_mutex_);
  take_main(r);
}
""" if lock_bug else """
void order_ba(Registry& r) {
  take_main(r);
}
"""))
    throw_site = """
void validate_cell(int x) {
  if (x < 0) throw 42;
}

void deep_worker(int x) {
  if (x == 3) throw 7;
}
""" if throw_bug else """
void validate_cell(int x) { (void)x; }
void deep_worker(int x) { (void)x; }
"""
    _st_write(root, "src/par.cpp", FIXTURE_PRELUDE + f"""
void parallel_index_loop(unsigned long count, unsigned threads, int make_body);
{throw_site}
void run_cells(unsigned long cells) {{
  validate_cell(static_cast<int>(cells));
  deep_worker(2);
  parallel_index_loop(cells, 2, 0);
}}
""")
    if bad_annotation:
        _st_write(root, "src/annot.cpp", FIXTURE_PRELUDE + """
// analyze:allow-hot-alloc()
void tagged_without_reason() {}
""")
    if allowed:
        _st_write(root, "src/allowed.cpp", FIXTURE_PRELUDE + """
// analyze:hot-root(fixture allowed loop)
void fixture_allowed_loop(std::vector<int>& out) {
  out.reserve(64);  // analyze:allow-hot-alloc(one-time warm-up growth, measured)
}
""")
    files = ["src/hot.cpp", "src/det.cpp", "src/lock.cpp", "src/par.cpp"]
    if bad_annotation:
        files.append("src/annot.cpp")
    if allowed:
        files.append("src/allowed.cpp")
    _st_compile_db(root, files)


def self_test(jobs: int) -> int:
    failures: list[str] = []
    frontends = ["internal"]
    if load_libclang() is not None:
        frontends.append("libclang")
    print(f"faultroute_analyze self-test (frontends: {', '.join(frontends)})")

    def expect(cond: bool, label: str):
        print(f"  {'PASS' if cond else 'FAIL'}  {label}")
        if not cond:
            failures.append(label)

    def run_case(frontend: str, label: str, expect_rules: dict, **tree_flags):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            _st_tree(root, **tree_flags)
            analysis, _info = analyze_tree(root, root / "build", frontend,
                                           jobs, require_roots=False)
            got = {}
            for f in analysis.findings:
                got[f.rule] = got.get(f.rule, 0) + 1
            for rule, minimum in expect_rules.items():
                n = got.get(rule, 0)
                expect(n >= minimum,
                       f"[{frontend}] {label}: >= {minimum} {rule} finding(s), got {n}")
            unexpected = {r: n for r, n in got.items() if r not in expect_rules}
            expect(not unexpected,
                   f"[{frontend}] {label}: no unexpected findings {unexpected or ''}")
            return analysis

    for fe in frontends:
        # Clean tree: zero findings.
        run_case(fe, "clean tree", {})
        # Each rule fires with >= 2 seeded violations.
        run_case(fe, "hot-alloc seeded", {"hot-alloc": 2}, hot_bug=True)
        run_case(fe, "determinism seeded", {"determinism": 2},
                 det_bug=True, unordered_bug=True)
        run_case(fe, "lock-discipline seeded", {"lock-discipline": 2},
                 lock_bug=True)
        run_case(fe, "throw-safety seeded", {"throw-safety": 2}, throw_bug=True)
        # Annotation without a reason is itself rejected.
        run_case(fe, "annotation without reason", {META_RULE: 1},
                 bad_annotation=True)
        # A well-formed allow tag suppresses and is recorded.
        analysis = run_case(fe, "allow tag suppresses", {}, allowed=True)
        expect(any(s["rule"] == "hot-alloc" for s in analysis.suppressed),
               f"[{fe}] allow tag recorded as suppressed")
        # Missing required roots are flagged when enforcement is on.
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            _st_tree(root)
            analysis, _ = analyze_tree(root, root / "build", fe, jobs,
                                       require_roots=True)
            expect(any(f.rule == META_RULE and "required hot root" in f.message
                       for f in analysis.findings),
                   f"[{fe}] missing required roots are flagged")

    if failures:
        print(f"\nself-test FAILED ({len(failures)} case(s))")
        return 1
    print("\nself-test passed")
    return 0


# ----------------------------------------------------------------------- main

def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels up from this script)")
    parser.add_argument("-p", "--build-dir", default=None,
                        help="build dir holding compile_commands.json "
                             "(default: <root>/build)")
    parser.add_argument("--frontend", choices=("auto", "libclang", "internal"),
                        default="auto",
                        help="AST frontend; auto prefers libclang, falls back "
                             "to the built-in tokenizer frontend")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help=f"write a {SCHEMA_ID} findings report")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2,
                        help="parallel per-TU parsing (default: cpu count)")
    parser.add_argument("--rule", action="append", choices=RULES, default=None,
                        help="restrict to specific rule(s); repeatable")
    parser.add_argument("--self-test", action="store_true",
                        help="seed violations of every rule in a fixture tree "
                             "and assert each is detected")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test(args.jobs)

    root = Path(args.root) if args.root else Path(__file__).resolve().parents[2]
    if not (root / "src").is_dir():
        print(f"faultroute_analyze: no src/ under {root}", file=sys.stderr)
        return 2
    build_dir = Path(args.build_dir) if args.build_dir else root / "build"

    try:
        analysis, info = analyze_tree(root, build_dir, args.frontend, args.jobs,
                                      rules=args.rule)
    except SkipAnalysis as skip:
        print(f"faultroute_analyze: SKIPPED — {skip}")
        return 0
    except SetupError as err:
        print(f"faultroute_analyze: {err}", file=sys.stderr)
        return 2

    if info["frontend"] == "internal" and args.frontend == "auto":
        print("faultroute_analyze: note — libclang unavailable, using the "
              "built-in tokenizer frontend (same rules, same IR; see "
              "docs/ANALYSIS.md)")
    for f in analysis.findings:
        print(f)
    if args.json:
        write_json_report(args.json, analysis, info)
    summary = (f"frontend={info['frontend']} tus={info['tus']} "
               f"files={info['files']} functions={info['functions']} "
               f"findings={len(analysis.findings)} "
               f"suppressed={len(analysis.suppressed)}")
    if analysis.findings:
        print(f"faultroute_analyze: {len(analysis.findings)} finding(s) "
              f"({summary})", file=sys.stderr)
        return 1
    print(f"faultroute_analyze: clean ({summary})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
