#!/usr/bin/env python3
"""faultroute_lint — the project-idiom linter.

Enforces repo-specific invariants that no generic tool (clang-tidy, a
compiler, a grep in a reviewer's head) knows about:

  counters-manifest
      Every counter/metric dot-path string used in C++ (string literals with
      a known counter namespace prefix: traffic., graph., scenario., route.,
      components., trials., permutation.) must be documented exactly once in
      docs/COUNTERS.md, and every path documented there must still be used
      somewhere in the code. The manifest is the contract consumed by
      --metrics report readers; this rule keeps it complete and alive.

  schema-single-definition
      Every `faultroute.<...>.vN` schema identifier must be spelled as a C++
      string literal only in src/obs/schemas.hpp. Emitters and validators
      reference the named constants, so a schema bump is one edit and grep
      finds every user.

  no-hash-in-hot-paths
      `std::unordered_map` / `std::unordered_set` are banned in the hot-path
      directories (src/traffic, src/graph, src/core/routers): PRs 3-7 moved
      every hot structure to dense-id arrays, and a hash container sneaking
      back in is almost always a perf regression. A deliberate exception
      (cold path, differential baseline, fallback for huge graphs) carries a
      `// lint:allow-hash(<reason>)` tag on the same or the previous line.

  relaxed-ordering-allowlist
      `std::memory_order_relaxed` may appear only in files that have a
      written concurrency model reviewed under TSan (see the allowlist
      below, and docs/ARCHITECTURE.md "Correctness tooling"). Everywhere
      else, relaxed atomics are a red flag, not an optimisation.

  include-hygiene
      Every header under src/ starts with `#pragma once`, never uses
      parent-relative (`../`) includes, and every quoted project include
      resolves to a real file under src/ (catching stale paths before the
      compiler's error novel does).

  no-ambient-entropy
      `rand(`, `srand(`, `time(nullptr)` and `std::chrono::system_clock` are
      banned outside src/random (the one seeded-RNG home) and src/obs (the
      one wall-clock home): every result in this repo is bit-identical given
      a seed, and an ambient entropy or wall-clock read anywhere else breaks
      that silently. The semantic analyzer (tools/analyze) proves the
      call-graph version of this; the textual rule catches what never
      compiles into the call graph (macros, dead branches, new files). A
      deliberate exception carries `// lint:allow-entropy(<reason>)` on the
      same or the previous line.

Usage:
    tools/lint/faultroute_lint.py [--root DIR]     # lint the tree
    tools/lint/faultroute_lint.py --self-test      # prove each rule fires

Exit status: 0 clean, 1 violations found (or a self-test rule failed to
fire), 2 usage/setup error.
"""

from __future__ import annotations

import argparse
import re
import sys
import tempfile
from pathlib import Path

# --------------------------------------------------------------- configuration

CXX_DIRS = ("src", "tools", "bench", "tests")
CXX_SUFFIXES = {".cpp", ".hpp", ".h", ".cc"}

# Dot-path prefixes that denote runtime counters / report table keys. A C++
# string literal "<prefix>.<word>[.<word>...]" is treated as a counter path.
COUNTER_NAMESPACES = (
    "traffic",
    "graph",
    "scenario",
    "route",
    "components",
    "trials",
    "permutation",
)

COUNTERS_MANIFEST = Path("docs") / "COUNTERS.md"

# The one header allowed to spell out faultroute.*.vN schema ids.
SCHEMA_HEADER = Path("src") / "obs" / "schemas.hpp"

# Directories where hash containers need a lint:allow-hash(<reason>) tag.
HOT_PATH_DIRS = (
    Path("src") / "traffic",
    Path("src") / "graph",
    Path("src") / "core" / "routers",
)

# Files whose relaxed-atomic use has a reviewed concurrency model (TSan'd by
# tests/test_concurrency_stress.cpp; argued in docs/ARCHITECTURE.md):
#   shared_probe_cache: tri-state CAS publication of pure-function values
#   counter_registry / phase_profiler: thread-owned slots, read at joins
#   indexed_memo: epoch-stamped memo of pure-function values
#   parallel: work-stealing ticket counter; RMWs on one atomic are totally
#     ordered and thread join publishes the bodies' writes
#   test_concurrency_stress: the stress suite exercising all of the above
RELAXED_ALLOWLIST = {
    Path("src") / "traffic" / "shared_probe_cache.hpp",
    Path("src") / "traffic" / "shared_probe_cache.cpp",
    Path("src") / "core" / "parallel.cpp",
    Path("src") / "obs" / "counter_registry.cpp",
    Path("src") / "obs" / "counter_registry.hpp",
    Path("src") / "obs" / "phase_profiler.cpp",
    Path("src") / "percolation" / "indexed_memo.hpp",
    Path("tests") / "test_concurrency_stress.cpp",
}

# Directories whose files may read entropy / the wall clock.
ENTROPY_EXEMPT_DIRS = (
    Path("src") / "random",
    Path("src") / "obs",
)

COUNTER_PATH_RE = re.compile(
    r'^(?:' + "|".join(COUNTER_NAMESPACES) + r')\.[a-z0-9_]+(?:\.[a-z0-9_]+)*$'
)
SCHEMA_ID_RE = re.compile(r'faultroute\.[a-z0-9_.]+\.v[0-9]+')
ALLOW_HASH_RE = re.compile(r'lint:allow-hash\([^)]+\)')
HASH_CONTAINER_RE = re.compile(r'\bunordered_(?:map|set)\b')
ALLOW_ENTROPY_RE = re.compile(r'lint:allow-entropy\([^)]+\)')
# Each pattern is (regex, human name). `rand(` uses a lookbehind so that
# `srand(` (matched separately) and identifiers like `hash_grand(` don't
# double-report, and `time(nullptr)` tolerates interior whitespace.
ENTROPY_PATTERNS = (
    (re.compile(r'(?<![A-Za-z0-9_])rand\s*\('), "rand()"),
    (re.compile(r'(?<![A-Za-z0-9_])srand\s*\('), "srand()"),
    (re.compile(r'(?<![A-Za-z0-9_])time\s*\(\s*nullptr\s*\)'), "time(nullptr)"),
    (re.compile(r'\bsystem_clock\b'), "std::chrono::system_clock"),
    (re.compile(r'\brandom_device\b'), "std::random_device"),
)


class Violation:
    def __init__(self, rule: str, path: Path, line: int, message: str):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self) -> str:
        loc = f"{self.path}:{self.line}" if self.line else str(self.path)
        return f"{loc}: [{self.rule}] {self.message}"


# ------------------------------------------------------------- C++ tokenizing

def strip_comments(text: str) -> str:
    """Blanks out // and /* */ comments, preserving string literal contents
    and line numbers (newlines inside block comments are kept)."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
            elif c == "'":
                state = "char"
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state == "string":
            if c == "\\":
                out.append(c)
                out.append(nxt)
                i += 2
                continue
            if c == '"' or c == "\n":  # unterminated = malformed; bail at EOL
                state = "code"
            out.append(c)
        elif state == "char":
            if c == "\\":
                out.append(c)
                out.append(nxt)
                i += 2
                continue
            if c == "'" or c == "\n":
                state = "code"
            out.append(c)
        i += 1
    return "".join(out)


STRING_LITERAL_RE = re.compile(r'"((?:[^"\\\n]|\\.)*)"')


def string_literals(stripped: str):
    """Yields (line_number, literal_body) for every string literal in
    comment-stripped C++ text."""
    for m in STRING_LITERAL_RE.finditer(stripped):
        line = stripped.count("\n", 0, m.start()) + 1
        yield line, m.group(1)


def cxx_files(root: Path):
    for d in CXX_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in CXX_SUFFIXES and path.is_file():
                yield path


# -------------------------------------------------------------------- rules

def check_counters_manifest(root: Path) -> list[Violation]:
    violations = []
    used: dict[str, tuple[Path, int]] = {}
    for path in cxx_files(root):
        stripped = strip_comments(path.read_text(encoding="utf-8"))
        for line, lit in string_literals(stripped):
            if COUNTER_PATH_RE.match(lit) and lit not in used:
                used[lit] = (path.relative_to(root), line)

    manifest = root / COUNTERS_MANIFEST
    if not manifest.is_file():
        violations.append(
            Violation("counters-manifest", COUNTERS_MANIFEST, 0,
                      "manifest missing: every counter dot-path used in C++ "
                      "must be documented here"))
        return violations

    documented: dict[str, int] = {}
    for lineno, line in enumerate(manifest.read_text(encoding="utf-8").splitlines(), 1):
        for m in re.finditer(r'`([a-z0-9_.]+)`', line):
            name = m.group(1)
            if COUNTER_PATH_RE.match(name):
                documented[name] = documented.get(name, 0) + 1
                documented.setdefault(f"__line__{name}", lineno)

    for name, (path, line) in sorted(used.items()):
        count = documented.get(name, 0)
        if count == 0:
            violations.append(
                Violation("counters-manifest", path, line,
                          f"counter path '{name}' is not documented in "
                          f"{COUNTERS_MANIFEST}"))
        elif count > 1:
            violations.append(
                Violation("counters-manifest", COUNTERS_MANIFEST,
                          documented[f"__line__{name}"],
                          f"counter path '{name}' documented {count} times "
                          "(must be exactly once)"))
    for name in sorted(documented):
        if name.startswith("__line__"):
            continue
        if name not in used:
            violations.append(
                Violation("counters-manifest", COUNTERS_MANIFEST,
                          documented[f"__line__{name}"],
                          f"counter path '{name}' is documented but no C++ "
                          "string literal uses it (stale manifest entry)"))
    return violations


def check_schema_single_definition(root: Path) -> list[Violation]:
    violations = []
    for path in cxx_files(root):
        rel = path.relative_to(root)
        if rel == SCHEMA_HEADER:
            continue
        stripped = strip_comments(path.read_text(encoding="utf-8"))
        for line, lit in string_literals(stripped):
            for m in SCHEMA_ID_RE.finditer(lit):
                violations.append(
                    Violation("schema-single-definition", rel, line,
                              f"schema id '{m.group(0)}' spelled as a literal; "
                              f"reference the constant in {SCHEMA_HEADER} instead"))
    return violations


def check_no_hash_in_hot_paths(root: Path) -> list[Violation]:
    violations = []
    for hot_dir in HOT_PATH_DIRS:
        base = root / hot_dir
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in CXX_SUFFIXES or not path.is_file():
                continue
            raw_lines = path.read_text(encoding="utf-8").splitlines()
            stripped_lines = strip_comments("\n".join(raw_lines)).splitlines()
            for idx, code in enumerate(stripped_lines):
                if not HASH_CONTAINER_RE.search(code):
                    continue
                if code.lstrip().startswith("#include"):
                    continue  # the use sites carry the tag, not the include
                here = raw_lines[idx] if idx < len(raw_lines) else ""
                prev = raw_lines[idx - 1] if idx > 0 else ""
                if ALLOW_HASH_RE.search(here) or ALLOW_HASH_RE.search(prev):
                    continue
                violations.append(
                    Violation("no-hash-in-hot-paths", path.relative_to(root), idx + 1,
                              "hash container in a hot-path directory without a "
                              "'// lint:allow-hash(<reason>)' tag on this or the "
                              "previous line"))
    return violations


def check_relaxed_ordering(root: Path) -> list[Violation]:
    violations = []
    for path in cxx_files(root):
        rel = path.relative_to(root)
        if rel in RELAXED_ALLOWLIST:
            continue
        stripped = strip_comments(path.read_text(encoding="utf-8"))
        for idx, code in enumerate(stripped.splitlines()):
            if "memory_order_relaxed" in code:
                violations.append(
                    Violation("relaxed-ordering-allowlist", rel, idx + 1,
                              "memory_order_relaxed outside the allowlisted "
                              "files (see RELAXED_ALLOWLIST in "
                              "tools/lint/faultroute_lint.py; add the file "
                              "only with a reviewed concurrency model)"))
    return violations


def check_include_hygiene(root: Path) -> list[Violation]:
    violations = []
    src = root / "src"
    if not src.is_dir():
        return violations
    for path in sorted(src.rglob("*.hpp")):
        rel = path.relative_to(root)
        raw = path.read_text(encoding="utf-8")
        stripped = strip_comments(raw)
        first_directive = next(
            (line.strip() for line in stripped.splitlines() if line.strip()), "")
        if first_directive != "#pragma once":
            violations.append(
                Violation("include-hygiene", rel, 1,
                          "public header must open with '#pragma once'"))
        for idx, line in enumerate(stripped.splitlines()):
            m = re.match(r'\s*#\s*include\s+"([^"]+)"', line)
            if not m:
                continue
            target = m.group(1)
            if target.startswith("../") or "/../" in target:
                violations.append(
                    Violation("include-hygiene", rel, idx + 1,
                              f"parent-relative include \"{target}\" — project "
                              "includes are rooted at src/"))
            elif not (src / target).is_file() and target != "obs/version.hpp":
                # obs/version.hpp is generated into the build tree by CMake.
                violations.append(
                    Violation("include-hygiene", rel, idx + 1,
                              f"include \"{target}\" does not resolve under src/"))
    return violations


def check_no_ambient_entropy(root: Path) -> list[Violation]:
    violations = []
    for path in cxx_files(root):
        rel = path.relative_to(root)
        if any(d in rel.parents for d in ENTROPY_EXEMPT_DIRS):
            continue
        raw_lines = path.read_text(encoding="utf-8").splitlines()
        stripped_lines = strip_comments("\n".join(raw_lines)).splitlines()
        for idx, code in enumerate(stripped_lines):
            for pattern, name in ENTROPY_PATTERNS:
                if not pattern.search(code):
                    continue
                here = raw_lines[idx] if idx < len(raw_lines) else ""
                prev = raw_lines[idx - 1] if idx > 0 else ""
                if ALLOW_ENTROPY_RE.search(here) or ALLOW_ENTROPY_RE.search(prev):
                    continue
                violations.append(
                    Violation("no-ambient-entropy", rel, idx + 1,
                              f"{name} outside src/random and src/obs breaks "
                              "seeded bit-identical results; use the seeded "
                              "Rng / obs clocks, or tag a deliberate "
                              "exception with '// lint:allow-entropy(<reason>)'"))
    return violations


RULES = {
    "counters-manifest": check_counters_manifest,
    "schema-single-definition": check_schema_single_definition,
    "no-hash-in-hot-paths": check_no_hash_in_hot_paths,
    "relaxed-ordering-allowlist": check_relaxed_ordering,
    "include-hygiene": check_include_hygiene,
    "no-ambient-entropy": check_no_ambient_entropy,
}


def run_lint(root: Path) -> list[Violation]:
    violations = []
    for rule in RULES.values():
        violations.extend(rule(root))
    return violations


# ---------------------------------------------------------------- self-test

def _write(root: Path, rel: str, content: str) -> None:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(content, encoding="utf-8")


def _clean_tree(root: Path) -> None:
    """A minimal tree that passes every rule."""
    _write(root, "src/obs/schemas.hpp",
           '#pragma once\n'
           'inline constexpr const char* kScenario = "faultroute.scenario.v3";\n')
    _write(root, "src/traffic/engine.hpp",
           '#pragma once\n'
           '#include "obs/schemas.hpp"\n'
           '// a comment mentioning traffic.cache.hits must NOT count as use\n'
           'inline const char* kHits = "traffic.cache.hits";\n')
    _write(root, "docs/COUNTERS.md",
           "# Counters\n\n| `traffic.cache.hits` | probe cache hits |\n")


def expect(condition: bool, label: str, failures: list[str]) -> None:
    print(f"  {'PASS' if condition else 'FAIL'}  {label}")
    if not condition:
        failures.append(label)


def self_test() -> int:
    failures: list[str] = []

    def fires(rule: str, mutate, label: str, expect_count: int | None = None) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            _clean_tree(root)
            mutate(root)
            found = [v for v in run_lint(root) if v.rule == rule]
            ok = bool(found) if expect_count is None else len(found) == expect_count
            expect(ok, label, failures)

    print("faultroute_lint self-test: the clean tree passes")
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        _clean_tree(root)
        clean = run_lint(root)
        expect(not clean, "clean tree has no violations", failures)
        for v in clean:
            print(f"    unexpected: {v}")

    print("each rule fires on a seeded violation:")

    # counters-manifest: undocumented use
    fires("counters-manifest",
          lambda root: _write(root, "src/traffic/extra.cpp",
                              'const char* k = "traffic.routing.new_counter";\n'),
          "undocumented counter path is reported")
    # counters-manifest: stale manifest entry
    fires("counters-manifest",
          lambda root: _write(root, "docs/COUNTERS.md",
                              "| `traffic.cache.hits` | hits |\n"
                              "| `traffic.cache.gone` | removed counter |\n"),
          "stale manifest entry is reported")
    # counters-manifest: duplicate manifest entry
    fires("counters-manifest",
          lambda root: _write(root, "docs/COUNTERS.md",
                              "| `traffic.cache.hits` | hits |\n"
                              "| `traffic.cache.hits` | hits again |\n"),
          "duplicate manifest entry is reported")

    # schema-single-definition
    fires("schema-single-definition",
          lambda root: _write(root, "src/traffic/emit.cpp",
                              'const char* s = "faultroute.bench.rogue.v1";\n'),
          "schema literal outside schemas.hpp is reported")
    fires("schema-single-definition",
          lambda root: _write(root, "src/traffic/emit.cpp",
                              '// faultroute.bench.rogue.v1 in a comment is fine\n'),
          "schema id in a comment is NOT reported", expect_count=0)

    # no-hash-in-hot-paths
    fires("no-hash-in-hot-paths",
          lambda root: _write(root, "src/graph/table.hpp",
                              '#pragma once\n'
                              '#include <unordered_map>\n'
                              'std::unordered_map<int, int> m;\n'),
          "untagged hash container in a hot dir is reported")
    fires("no-hash-in-hot-paths",
          lambda root: _write(root, "src/graph/table.hpp",
                              '#pragma once\n'
                              '#include <unordered_map>\n'
                              '// lint:allow-hash(cold path, test fixture)\n'
                              'std::unordered_map<int, int> m;\n'),
          "tagged hash container is NOT reported", expect_count=0)
    fires("no-hash-in-hot-paths",
          lambda root: _write(root, "src/analysis/stats.hpp",
                              '#pragma once\n'
                              '#include <unordered_map>\n'
                              'std::unordered_map<int, int> m;\n'),
          "hash container outside hot dirs is NOT reported", expect_count=0)

    # relaxed-ordering-allowlist
    fires("relaxed-ordering-allowlist",
          lambda root: _write(root, "src/scenario/run.cpp",
                              '#include <atomic>\n'
                              'void f(std::atomic<int>& a) '
                              '{ a.load(std::memory_order_relaxed); }\n'),
          "relaxed ordering outside the allowlist is reported")
    fires("relaxed-ordering-allowlist",
          lambda root: _write(root, "src/obs/counter_registry.cpp",
                              '#include <atomic>\n'
                              'void f(std::atomic<int>& a) '
                              '{ a.load(std::memory_order_relaxed); }\n'),
          "relaxed ordering in an allowlisted file is NOT reported",
          expect_count=0)

    # no-ambient-entropy
    fires("no-ambient-entropy",
          lambda root: _write(root, "src/traffic/jitter.cpp",
                              '#include <cstdlib>\n'
                              'int f() { return std::rand() % 7; }\n'),
          "rand() outside the exempt dirs is reported")
    fires("no-ambient-entropy",
          lambda root: _write(root, "src/scenario/seed.cpp",
                              '#include <ctime>\n'
                              'long f() { srand(1); return time(nullptr); }\n'),
          "srand() and time(nullptr) are both reported", expect_count=2)
    fires("no-ambient-entropy",
          lambda root: _write(root, "src/traffic/stamp.cpp",
                              '#include <chrono>\n'
                              'auto f() { return '
                              'std::chrono::system_clock::now(); }\n'),
          "system_clock outside src/obs is reported")
    fires("no-ambient-entropy",
          lambda root: _write(root, "src/obs/wallclock.cpp",
                              '#include <chrono>\n'
                              'auto f() { return '
                              'std::chrono::system_clock::now(); }\n'),
          "system_clock inside src/obs is NOT reported", expect_count=0)
    fires("no-ambient-entropy",
          lambda root: _write(root, "src/random/device.cpp",
                              '#include <random>\n'
                              'unsigned f() { std::random_device d; return d(); }\n'),
          "random_device inside src/random is NOT reported", expect_count=0)
    fires("no-ambient-entropy",
          lambda root: _write(root, "src/traffic/tagged.cpp",
                              '#include <cstdlib>\n'
                              '// lint:allow-entropy(demo of the escape hatch)\n'
                              'int f() { return std::rand(); }\n'),
          "tagged entropy use is NOT reported", expect_count=0)
    fires("no-ambient-entropy",
          lambda root: _write(root, "src/traffic/strand.cpp",
                              'int strand(int x);\n'
                              'int f() { return strand(3); }\n'),
          "identifier merely ending in rand is NOT reported", expect_count=0)

    # include-hygiene
    fires("include-hygiene",
          lambda root: _write(root, "src/graph/loose.hpp",
                              '#include <vector>\nint x;\n'),
          "header without #pragma once is reported")
    fires("include-hygiene",
          lambda root: _write(root, "src/graph/up.hpp",
                              '#pragma once\n#include "../traffic/engine.hpp"\n'),
          "parent-relative include is reported")
    fires("include-hygiene",
          lambda root: _write(root, "src/graph/stale.hpp",
                              '#pragma once\n#include "graph/no_such_file.hpp"\n'),
          "non-resolving project include is reported")

    if failures:
        print(f"\nself-test FAILED ({len(failures)} case(s))")
        return 1
    print("\nself-test passed")
    return 0


# --------------------------------------------------------------------- main

def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels up from this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="seed violations of every rule and assert detection")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    root = Path(args.root) if args.root else Path(__file__).resolve().parents[2]
    if not (root / "src").is_dir():
        print(f"faultroute_lint: no src/ under {root}", file=sys.stderr)
        return 2

    violations = run_lint(root)
    for v in violations:
        print(v)
    if violations:
        print(f"faultroute_lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("faultroute_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
