#!/usr/bin/env python3
"""Runs clang-tidy over the project's own C++ sources and gates on warnings.

Usage: run_clang_tidy.py [--build-dir BUILD] [--jobs N] [FILES...]

Drives clang-tidy from the compile database (`compile_commands.json`,
exported by CMake unconditionally) so every file is checked with its real
flags. Scope is the code we own — src/, tools/, bench/, tests/ — never
third_party/ or generated files. With explicit FILES arguments only those
files are checked (useful for pre-commit on a diff).

Exit codes:
  0  clean (or clang-tidy not installed — reported, skipped; CI installs it,
     so a local machine without clang should not fail the world)
  1  clang-tidy produced diagnostics
  2  usage / environment error (missing compile database)

The check selection lives in .clang-tidy at the repo root; this script adds
no -checks= overrides so editors, CI, and this runner all agree.
"""

import argparse
import concurrent.futures
import json
import os
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OWNED_DIRS = ("src", "tools", "bench", "tests")


def find_clang_tidy():
    """Newest clang-tidy on PATH, or None."""
    candidates = ["clang-tidy"] + [f"clang-tidy-{v}" for v in range(20, 13, -1)]
    for name in candidates:
        path = shutil.which(name)
        if path:
            return path
    return None


def owned_sources(build_dir):
    """Project-owned translation units from the compile database, sorted."""
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(db_path):
        print(f"run_clang_tidy: no {db_path}; configure cmake first "
              "(compile commands are exported by default)", file=sys.stderr)
        sys.exit(2)
    with open(db_path, encoding="utf-8") as handle:
        database = json.load(handle)
    files = set()
    for entry in database:
        path = os.path.normpath(os.path.join(entry["directory"], entry["file"]))
        rel = os.path.relpath(path, REPO_ROOT)
        if rel.split(os.sep, 1)[0] in OWNED_DIRS:
            files.add(path)
    return sorted(files)


def run_one(clang_tidy, build_dir, path):
    """Returns (path, returncode, combined output)."""
    proc = subprocess.run(
        [clang_tidy, "-p", build_dir, "--quiet", path],
        capture_output=True, text=True, check=False)
    # clang-tidy prints a suppressed-warnings tally on stderr even when
    # clean; only surface stderr when the run actually failed.
    output = proc.stdout
    if proc.returncode != 0:
        output += proc.stderr
    return path, proc.returncode, output.strip()


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default=os.path.join(REPO_ROOT, "build"))
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    parser.add_argument("files", nargs="*",
                        help="restrict the run to these source files")
    args = parser.parse_args()

    clang_tidy = find_clang_tidy()
    if clang_tidy is None:
        print("run_clang_tidy: clang-tidy not installed; skipping "
              "(CI installs it — this is not a pass)", file=sys.stderr)
        return 0

    sources = owned_sources(args.build_dir)
    if args.files:
        wanted = {os.path.normpath(os.path.abspath(f)) for f in args.files}
        sources = [s for s in sources if s in wanted]
        missing = wanted - set(sources)
        for path in sorted(missing):
            print(f"run_clang_tidy: {path} not in compile database; skipped",
                  file=sys.stderr)
    if not sources:
        print("run_clang_tidy: nothing to check", file=sys.stderr)
        return 0

    failures = 0
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
        futures = [pool.submit(run_one, clang_tidy, args.build_dir, s)
                   for s in sources]
        for future in concurrent.futures.as_completed(futures):
            path, code, output = future.result()
            rel = os.path.relpath(path, REPO_ROOT)
            if code != 0:
                failures += 1
                print(f"--- {rel}")
                print(output)
            else:
                print(f"ok  {rel}")
    if failures:
        print(f"run_clang_tidy: {failures}/{len(sources)} files with "
              "diagnostics", file=sys.stderr)
        return 1
    print(f"run_clang_tidy: {len(sources)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
