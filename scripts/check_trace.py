#!/usr/bin/env python3
"""Validates a --trace Chrome trace-event JSON file.

Usage: check_trace.py TRACE.json

Checks the structural contract that chrome://tracing and Perfetto rely on:
a top-level object with a "traceEvents" list containing at least one
complete ("X") event with name/ts/dur/pid/tid, and at least one
"thread_name" metadata ("M") event so worker lanes are labelled. Durations
and timestamps must be non-negative, and every "X" event's tid must have a
thread_name metadata event (one lane label per track).

Run by CI's observability job on the output of
`faultroute ... --trace t.json`. Exits non-zero on the first violation.
"""

import json
import sys


def fail(message: str) -> None:
    print(f"check_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: check_trace.py TRACE.json")
    try:
        with open(sys.argv[1], encoding="utf-8") as handle:
            trace = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"cannot parse {sys.argv[1]}: {error}")

    if not isinstance(trace, dict) or "traceEvents" not in trace:
        fail("trace is not an object with a 'traceEvents' field")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        fail("traceEvents is not a list")

    named_tracks = {}
    spans = 0
    span_tracks = set()
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            fail(f"{where}: not an object")
        phase = event.get("ph")
        if phase == "M":
            if event.get("name") != "thread_name":
                continue
            name = event.get("args", {}).get("name")
            if not isinstance(name, str) or not name:
                fail(f"{where}: thread_name metadata without a name")
            if "tid" not in event:
                fail(f"{where}: thread_name metadata without a tid")
            named_tracks[event["tid"]] = name
        elif phase == "X":
            for key in ("name", "ts", "dur", "pid", "tid"):
                if key not in event:
                    fail(f"{where}: complete event missing '{key}'")
            if not isinstance(event["name"], str) or not event["name"]:
                fail(f"{where}: complete event with an empty name")
            if event["ts"] < 0 or event["dur"] < 0:
                fail(f"{where} ('{event['name']}'): negative ts or dur")
            spans += 1
            span_tracks.add(event["tid"])
        else:
            fail(f"{where}: unexpected event phase {phase!r}")

    if spans == 0:
        fail("no complete ('X') events")
    if not named_tracks:
        fail("no thread_name metadata ('M') events")
    unlabelled = span_tracks - set(named_tracks)
    if unlabelled:
        fail(f"spans on unlabelled tracks: {sorted(unlabelled)}")

    print(
        f"check_trace: OK: {spans} spans on {len(span_tracks)} of "
        f"{len(named_tracks)} named tracks "
        f"({', '.join(named_tracks[t] for t in sorted(named_tracks))})"
    )


if __name__ == "__main__":
    main()
