#!/usr/bin/env python3
"""Fail on dead relative links in the repo's markdown documentation.

Scans README.md and docs/**/*.md for markdown links and images. Every
relative target must exist on disk (anchors are stripped; http/https/mailto
links are skipped; a leading '/' means repo-root-relative). Exits 1 and
lists every dead link otherwise.

Usage: python3 scripts/check_docs_links.py  (from anywhere in the repo)
"""

import pathlib
import re
import sys

# [text](target) and ![alt](target); target runs to the first unescaped ')'.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def doc_files(root: pathlib.Path):
    files = [root / "README.md"]
    files += sorted((root / "docs").glob("**/*.md")) if (root / "docs").is_dir() else []
    return [f for f in files if f.is_file()]


def check_file(root: pathlib.Path, path: pathlib.Path):
    dead = []
    text = path.read_text(encoding="utf-8")
    # Fenced code blocks contain sample syntax, not navigable links.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
            continue
        plain = target.split("#", 1)[0]
        if not plain:
            continue
        resolved = (root / plain.lstrip("/")) if plain.startswith("/") else (path.parent / plain)
        if not resolved.exists():
            dead.append((path, target))
    return dead


def main():
    root = pathlib.Path(__file__).resolve().parent.parent
    files = doc_files(root)
    dead = [entry for f in files for entry in check_file(root, f)]
    for path, target in dead:
        print(f"DEAD LINK: {path.relative_to(root)} -> {target}")
    print(f"checked {len(files)} files, {len(dead)} dead links")
    return 1 if dead else 0


if __name__ == "__main__":
    sys.exit(main())
