#!/usr/bin/env python3
"""Validates a bench --json report against its expected schema.

Usage: check_bench_schema.py REPORT.json

Understands every schema the bench suite and the CLI emit — the report's
"schema" field selects the rule set:

  * faultroute.bench.delivery.v1  (bench_delivery: event vs reference engine)
  * faultroute.bench.routing.v1   (bench_routing: dense vs hash probe state)
  * faultroute.bench.adjacency.v1 (bench_adjacency: flat CSR vs implicit)
  * faultroute.bench.frontier.v1  (bench_frontier: batched frontier vs per-message)
  * faultroute.bench.snapshot.v1  (bench_snapshot: mmap warm start vs cold build)
  * faultroute.metrics.v1         (any subcommand's --metrics report)
  * faultroute.analyze.v1         (faultroute_analyze --json contract report)

Run by CI after `bench_delivery --quick --json` / `bench_routing --quick
--json` so the machine-readable perf trajectories (BENCH_traffic.json,
BENCH_routing.json and the per-PR CI artifacts) stay parseable and
complete, and after `faultroute ... --metrics` in the observability job.
Exits non-zero with a message on the first violation.
"""

import json
import sys

DELIVERY_SCHEMA = "faultroute.bench.delivery.v1"
ROUTING_SCHEMA = "faultroute.bench.routing.v1"
ADJACENCY_SCHEMA = "faultroute.bench.adjacency.v1"
FRONTIER_SCHEMA = "faultroute.bench.frontier.v1"
SNAPSHOT_SCHEMA = "faultroute.bench.snapshot.v1"
METRICS_SCHEMA = "faultroute.metrics.v1"
ANALYZE_SCHEMA = "faultroute.analyze.v1"
SCHEMA_VERSION = 1

# Build provenance (git hash / compiler / build type). Mandatory in
# faultroute.metrics.v1; optional-if-present in the bench schemas so records
# committed before the provenance stamp still validate.
PROVENANCE_FIELDS = {
    "git_hash": str,
    "compiler": str,
    "build_type": str,
    "generated_by": str,
}

DELIVERY_TOP_LEVEL = {
    "schema": str,
    "schema_version": int,
    "quick": bool,
    "seed": int,
    "benchmarks": list,
}

DELIVERY_BENCHMARK_FIELDS = {
    "name": str,
    "topology": str,
    "workload": str,
    "p": (int, float),
    "messages": int,
    "capacity": int,
    "routed": int,
    "delivered": int,
    "makespan": int,
    "sim_steps": int,
    "transmissions": int,
    "channels": int,
    "routing_ms": (int, float),
    "event_ms": (int, float),
    "reference_ms": (int, float),
    "event_delivery_ms": (int, float),
    "reference_delivery_ms": (int, float),
    "speedup": (int, float),
    "end_to_end_speedup": (int, float),
    "identical": bool,
}

ROUTING_TOP_LEVEL = {
    "schema": str,
    "schema_version": int,
    "quick": bool,
    "benchmarks": list,
}

ROUTING_BENCHMARK_FIELDS = {
    "name": str,
    "cells": int,
    "messages": int,
    "trials": int,
    "routed": int,
    "delivered": int,
    "total_distinct_probes": int,
    "unique_edges_probed": int,
    "dense_routing_ms": (int, float),
    "hash_routing_ms": (int, float),
    "speedup": (int, float),
    "identical": bool,
}


ADJACENCY_TOP_LEVEL = {
    "schema": str,
    "schema_version": int,
    "quick": bool,
    "benchmarks": list,
}

ADJACENCY_BENCHMARK_FIELDS = {
    "name": str,
    "kind": str,
    "cells": int,
    "flat_ms": (int, float),
    "implicit_ms": (int, float),
    "speedup": (int, float),
    "identical": bool,
}

ADJACENCY_KINDS = {"traffic", "percolation"}

FRONTIER_TOP_LEVEL = {
    "schema": str,
    "schema_version": int,
    "quick": bool,
    "benchmarks": list,
}

FRONTIER_BENCHMARK_FIELDS = {
    "name": str,
    "cells": int,
    "messages": int,
    "routed": int,
    "delivered": int,
    "total_distinct_probes": int,
    "unique_edges_probed": int,
    "batch_routing_ms": (int, float),
    "permsg_routing_ms": (int, float),
    "speedup": (int, float),
    "identical": bool,
}

SNAPSHOT_TOP_LEVEL = {
    "schema": str,
    "schema_version": int,
    "quick": bool,
    "benchmarks": list,
}

SNAPSHOT_BENCHMARK_FIELDS = {
    "name": str,
    "vertices": int,
    "channels": int,
    "payload_bytes": int,
    "build_ms": (int, float),
    "write_ms": (int, float),
    "open_ms": (int, float),
    "speedup": (int, float),
    "identical": bool,
}

METRICS_TOP_LEVEL = {
    "schema": str,
    "schema_version": int,
    "command": str,
    "provenance": dict,
    "counters": dict,
    "phases": list,
    "tracks": list,
}

METRICS_PHASE_FIELDS = {
    "path": str,
    "count": int,
    "total_ms": (int, float),
}

METRICS_TRACK_FIELDS = {
    "id": int,
    "name": str,
}

METRICS_SAMPLES_FIELDS = {
    "stride": int,
    "steps_seen": int,
    "max_samples": int,
    "samples": list,
}

ANALYZE_TOP_LEVEL = {
    "schema": str,
    "schema_version": int,
    "frontend": str,
    "tus": int,
    "files": int,
    "functions": int,
    "rule_counts": dict,
    "findings": list,
    "suppressed": list,
}

ANALYZE_FINDING_FIELDS = {
    "rule": str,
    "file": str,
    "line": int,
    "function": str,
    "message": str,
}

ANALYZE_SUPPRESSED_FIELDS = {
    "rule": str,
    "file": str,
    "line": int,
    "function": str,
    "reason": str,
}

# The analyzer's four contract families plus its meta rule; rule_counts must
# cover exactly this set so a renamed rule cannot slip past report consumers.
ANALYZE_RULES = {
    "hot-alloc", "determinism", "lock-discipline", "throw-safety", "annotation",
}

METRICS_SAMPLE_FIELDS = {
    "t": int,
    "step": int,
    "active_channels": int,
    "queued": int,
    "in_transit": int,
    "injections": int,
}


def fail(message: str) -> None:
    print(f"check_bench_schema: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_fields(obj: dict, fields: dict, where: str) -> None:
    for key, expected in fields.items():
        if key not in obj:
            fail(f"{where}: missing field '{key}'")
        value = obj[key]
        # bool is an int subclass in Python; don't let booleans pass as ints.
        if isinstance(value, bool) and expected is not bool:
            fail(f"{where}: field '{key}' is a bool, expected {expected}")
        if not isinstance(value, expected):
            fail(f"{where}: field '{key}' has type {type(value).__name__}")


def check_provenance(report: dict, required: bool) -> None:
    if "provenance" not in report:
        if required:
            fail("top level: missing field 'provenance'")
        return
    prov = report["provenance"]
    if not isinstance(prov, dict):
        fail("provenance: not an object")
    check_fields(prov, PROVENANCE_FIELDS, "provenance")
    for key in PROVENANCE_FIELDS:
        if not prov[key]:
            fail(f"provenance: field '{key}' is empty")


def check_common_top_level(report: dict, top_level: dict) -> None:
    check_fields(report, top_level, "top level")
    if report["schema_version"] != SCHEMA_VERSION:
        fail(f"schema_version is {report['schema_version']}, expected {SCHEMA_VERSION}")
    check_provenance(report, required=False)
    if not report["benchmarks"]:
        fail("benchmarks list is empty")
    for i, bench in enumerate(report["benchmarks"]):
        if not isinstance(bench, dict):
            fail(f"benchmarks[{i}]: not an object")


def check_delivery(report: dict) -> None:
    check_common_top_level(report, DELIVERY_TOP_LEVEL)
    for i, bench in enumerate(report["benchmarks"]):
        where = f"benchmarks[{i}]"
        check_fields(bench, DELIVERY_BENCHMARK_FIELDS, where)
        if not bench["identical"]:
            fail(f"{where} ('{bench['name']}'): engines disagree (identical=false)")
        if bench["delivered"] > bench["routed"]:
            fail(f"{where}: delivered > routed")
        if bench["event_delivery_ms"] < 0 or bench["reference_delivery_ms"] < 0:
            fail(f"{where}: negative delivery time")


def check_routing(report: dict) -> None:
    check_common_top_level(report, ROUTING_TOP_LEVEL)
    for i, bench in enumerate(report["benchmarks"]):
        where = f"benchmarks[{i}]"
        check_fields(bench, ROUTING_BENCHMARK_FIELDS, where)
        if not bench["identical"]:
            fail(f"{where} ('{bench['name']}'): probe-state backends disagree "
                 "(identical=false)")
        if bench["delivered"] > bench["routed"]:
            fail(f"{where}: delivered > routed")
        if bench["unique_edges_probed"] > bench["total_distinct_probes"]:
            fail(f"{where}: unique edges exceed summed distinct probes")
        if bench["dense_routing_ms"] < 0 or bench["hash_routing_ms"] < 0:
            fail(f"{where}: negative routing time")
        if bench["cells"] <= 0:
            fail(f"{where}: no cells executed")


def check_adjacency(report: dict) -> None:
    check_common_top_level(report, ADJACENCY_TOP_LEVEL)
    for i, bench in enumerate(report["benchmarks"]):
        where = f"benchmarks[{i}]"
        check_fields(bench, ADJACENCY_BENCHMARK_FIELDS, where)
        if bench["kind"] not in ADJACENCY_KINDS:
            fail(f"{where}: kind is '{bench['kind']}', expected one of "
                 f"{sorted(ADJACENCY_KINDS)}")
        if not bench["identical"]:
            fail(f"{where} ('{bench['name']}'): adjacency backends disagree "
                 "(identical=false)")
        if bench["flat_ms"] < 0 or bench["implicit_ms"] < 0:
            fail(f"{where}: negative time")
        if bench["cells"] <= 0:
            fail(f"{where}: no cells executed")


def check_frontier(report: dict) -> None:
    check_common_top_level(report, FRONTIER_TOP_LEVEL)
    for i, bench in enumerate(report["benchmarks"]):
        where = f"benchmarks[{i}]"
        check_fields(bench, FRONTIER_BENCHMARK_FIELDS, where)
        if not bench["identical"]:
            fail(f"{where} ('{bench['name']}'): frontier modes disagree "
                 "(identical=false)")
        if bench["delivered"] > bench["routed"]:
            fail(f"{where}: delivered > routed")
        if bench["unique_edges_probed"] > bench["total_distinct_probes"]:
            fail(f"{where}: unique edges exceed summed distinct probes")
        if bench["batch_routing_ms"] < 0 or bench["permsg_routing_ms"] < 0:
            fail(f"{where}: negative routing time")
        if bench["cells"] <= 0:
            fail(f"{where}: no cells executed")


def check_snapshot(report: dict) -> None:
    check_common_top_level(report, SNAPSHOT_TOP_LEVEL)
    for i, bench in enumerate(report["benchmarks"]):
        where = f"benchmarks[{i}]"
        check_fields(bench, SNAPSHOT_BENCHMARK_FIELDS, where)
        if not bench["identical"]:
            fail(f"{where} ('{bench['name']}'): mapped view disagrees with the "
                 "owning build (identical=false)")
        if bench["vertices"] <= 0 or bench["channels"] <= 0:
            fail(f"{where}: empty topology (vertices/channels must be positive)")
        if bench["payload_bytes"] <= 0:
            fail(f"{where}: payload_bytes must be positive")
        if bench["build_ms"] < 0 or bench["write_ms"] < 0 or bench["open_ms"] < 0:
            fail(f"{where}: negative time")


def check_metrics(report: dict) -> None:
    check_fields(report, METRICS_TOP_LEVEL, "top level")
    if report["schema_version"] != SCHEMA_VERSION:
        fail(f"schema_version is {report['schema_version']}, expected {SCHEMA_VERSION}")
    if not report["command"]:
        fail("command is empty")
    check_provenance(report, required=True)

    for name, value in report["counters"].items():
        if not name:
            fail("counters: empty counter name")
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            fail(f"counters['{name}']: expected a non-negative integer, got {value!r}")

    for i, phase in enumerate(report["phases"]):
        where = f"phases[{i}]"
        if not isinstance(phase, dict):
            fail(f"{where}: not an object")
        check_fields(phase, METRICS_PHASE_FIELDS, where)
        if phase["count"] <= 0:
            fail(f"{where} ('{phase['path']}'): count must be positive")
        if phase["total_ms"] < 0:
            fail(f"{where} ('{phase['path']}'): negative duration")

    track_ids = set()
    for i, track in enumerate(report["tracks"]):
        where = f"tracks[{i}]"
        if not isinstance(track, dict):
            fail(f"{where}: not an object")
        check_fields(track, METRICS_TRACK_FIELDS, where)
        if track["id"] < 0:
            fail(f"{where}: negative track id")
        if track["id"] in track_ids:
            fail(f"{where}: duplicate track id {track['id']}")
        track_ids.add(track["id"])

    if "delivery_samples" in report:
        series = report["delivery_samples"]
        if not isinstance(series, dict):
            fail("delivery_samples: not an object")
        check_fields(series, METRICS_SAMPLES_FIELDS, "delivery_samples")
        stride = series["stride"]
        if stride < 1 or stride & (stride - 1) != 0:
            fail(f"delivery_samples: stride {stride} is not a power of two")
        if len(series["samples"]) > series["max_samples"]:
            fail("delivery_samples: more samples than max_samples")
        for i, sample in enumerate(series["samples"]):
            where = f"delivery_samples.samples[{i}]"
            if not isinstance(sample, dict):
                fail(f"{where}: not an object")
            check_fields(sample, METRICS_SAMPLE_FIELDS, where)


def check_analyze(report: dict) -> None:
    check_fields(report, ANALYZE_TOP_LEVEL, "top level")
    if report["schema_version"] != SCHEMA_VERSION:
        fail(f"schema_version is {report['schema_version']}, expected {SCHEMA_VERSION}")
    if report["frontend"] not in ("libclang", "internal"):
        fail(f"frontend is '{report['frontend']}', expected 'libclang' or 'internal'")
    for key in ("tus", "files", "functions"):
        if isinstance(report[key], bool) or report[key] < 0:
            fail(f"{key}: expected a non-negative integer, got {report[key]!r}")

    counts = report["rule_counts"]
    if set(counts) != ANALYZE_RULES:
        fail(f"rule_counts keys {sorted(counts)} != expected {sorted(ANALYZE_RULES)}")
    for rule, count in counts.items():
        if isinstance(count, bool) or not isinstance(count, int) or count < 0:
            fail(f"rule_counts['{rule}']: expected a non-negative integer, got {count!r}")
    if sum(counts.values()) != len(report["findings"]):
        fail(f"rule_counts sum to {sum(counts.values())} but there are "
             f"{len(report['findings'])} findings")

    for label, fields in (("findings", ANALYZE_FINDING_FIELDS),
                          ("suppressed", ANALYZE_SUPPRESSED_FIELDS)):
        for i, entry in enumerate(report[label]):
            where = f"{label}[{i}]"
            if not isinstance(entry, dict):
                fail(f"{where}: not an object")
            check_fields(entry, fields, where)
            if entry["rule"] not in ANALYZE_RULES:
                fail(f"{where}: unknown rule '{entry['rule']}'")
            if isinstance(entry["line"], bool) or entry["line"] < 0:
                fail(f"{where}: negative line {entry['line']!r}")
            text_field = "message" if label == "findings" else "reason"
            if not entry["file"]:
                fail(f"{where}: empty file")
            if not entry[text_field]:
                fail(f"{where}: empty {text_field}")


def summarize_bench(report: dict) -> str:
    names = [bench["name"] for bench in report["benchmarks"]]
    return f"{len(names)} benchmarks ({', '.join(names)}), quick={report['quick']}"


def summarize_analyze(report: dict) -> str:
    return (
        f"frontend={report['frontend']}, {report['tus']} TUs, "
        f"{len(report['findings'])} findings, "
        f"{len(report['suppressed'])} suppressed"
    )


def summarize_metrics(report: dict) -> str:
    series = report.get("delivery_samples")
    samples = f", {len(series['samples'])} delivery samples" if series else ""
    return (
        f"command={report['command']}, {len(report['counters'])} counters, "
        f"{len(report['phases'])} phases, {len(report['tracks'])} tracks{samples}"
    )


CHECKERS = {
    DELIVERY_SCHEMA: (check_delivery, summarize_bench),
    ROUTING_SCHEMA: (check_routing, summarize_bench),
    ADJACENCY_SCHEMA: (check_adjacency, summarize_bench),
    FRONTIER_SCHEMA: (check_frontier, summarize_bench),
    SNAPSHOT_SCHEMA: (check_snapshot, summarize_bench),
    METRICS_SCHEMA: (check_metrics, summarize_metrics),
    ANALYZE_SCHEMA: (check_analyze, summarize_analyze),
}


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: check_bench_schema.py REPORT.json")
    try:
        with open(sys.argv[1], encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"cannot parse {sys.argv[1]}: {error}")

    if not isinstance(report, dict) or "schema" not in report:
        fail("report is not an object with a 'schema' field")
    entry = CHECKERS.get(report["schema"])
    if entry is None:
        fail(f"schema is '{report['schema']}', expected one of {sorted(CHECKERS)}")
    checker, summarize = entry
    checker(report)
    print(f"check_bench_schema: OK [{report['schema']}]: {summarize(report)}")


if __name__ == "__main__":
    main()
