#!/usr/bin/env python3
"""Validates a bench_delivery --json report against the expected schema.

Usage: check_bench_schema.py REPORT.json

Run by CI after `bench_delivery --quick --json --out REPORT.json` so the
machine-readable perf trajectory (BENCH_traffic.json and the per-PR CI
artifacts) stays parseable and complete. Exits non-zero with a message on
the first violation.
"""

import json
import sys

SCHEMA_NAME = "faultroute.bench.delivery.v1"
SCHEMA_VERSION = 1

TOP_LEVEL = {
    "schema": str,
    "schema_version": int,
    "quick": bool,
    "seed": int,
    "benchmarks": list,
}

BENCHMARK_FIELDS = {
    "name": str,
    "topology": str,
    "workload": str,
    "p": (int, float),
    "messages": int,
    "capacity": int,
    "routed": int,
    "delivered": int,
    "makespan": int,
    "sim_steps": int,
    "transmissions": int,
    "channels": int,
    "routing_ms": (int, float),
    "event_ms": (int, float),
    "reference_ms": (int, float),
    "event_delivery_ms": (int, float),
    "reference_delivery_ms": (int, float),
    "speedup": (int, float),
    "end_to_end_speedup": (int, float),
    "identical": bool,
}


def fail(message: str) -> None:
    print(f"check_bench_schema: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_fields(obj: dict, fields: dict, where: str) -> None:
    for key, expected in fields.items():
        if key not in obj:
            fail(f"{where}: missing field '{key}'")
        value = obj[key]
        # bool is an int subclass in Python; don't let booleans pass as ints.
        if isinstance(value, bool) and expected is not bool:
            fail(f"{where}: field '{key}' is a bool, expected {expected}")
        if not isinstance(value, expected):
            fail(f"{where}: field '{key}' has type {type(value).__name__}")


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: check_bench_schema.py REPORT.json")
    try:
        with open(sys.argv[1], encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"cannot parse {sys.argv[1]}: {error}")

    check_fields(report, TOP_LEVEL, "top level")
    if report["schema"] != SCHEMA_NAME:
        fail(f"schema is '{report['schema']}', expected '{SCHEMA_NAME}'")
    if report["schema_version"] != SCHEMA_VERSION:
        fail(f"schema_version is {report['schema_version']}, expected {SCHEMA_VERSION}")
    if not report["benchmarks"]:
        fail("benchmarks list is empty")

    for i, bench in enumerate(report["benchmarks"]):
        where = f"benchmarks[{i}]"
        if not isinstance(bench, dict):
            fail(f"{where}: not an object")
        check_fields(bench, BENCHMARK_FIELDS, where)
        if not bench["identical"]:
            fail(f"{where} ('{bench['name']}'): engines disagree (identical=false)")
        if bench["delivered"] > bench["routed"]:
            fail(f"{where}: delivered > routed")
        if bench["event_delivery_ms"] < 0 or bench["reference_delivery_ms"] < 0:
            fail(f"{where}: negative delivery time")

    names = [bench["name"] for bench in report["benchmarks"]]
    print(
        f"check_bench_schema: OK: {len(names)} benchmarks ({', '.join(names)}), "
        f"quick={report['quick']}"
    )


if __name__ == "__main__":
    main()
