#!/usr/bin/env python3
"""Smoke tests for the CI validator scripts themselves.

Usage: python3 scripts/test_validators.py  (or via unittest discovery)

The validators (check_bench_schema.py, check_trace.py, check_docs_links.py)
are the last line of defence for the machine-readable CI surfaces, so they
get the same treatment as the linter: every one is fed a known-good input
(must accept) and a set of seeded-invalid inputs (must reject with a
diagnostic). A validator that silently accepts garbage is worse than no
validator — CI runs this file before trusting any of them.

The semantic analyzer (tools/analyze/faultroute_analyze.py) gets the same
subprocess treatment: its --self-test must pass, a clean fixture tree must
exit 0, a seeded violation must be reported with exit 1, a reason-less
annotation must itself be rejected, and its --json report must satisfy the
faultroute.analyze.v1 checker in check_bench_schema.py.

No third-party dependencies; stdlib unittest + subprocess only.
"""

import json
import pathlib
import shutil
import subprocess
import sys
import tempfile
import unittest

SCRIPTS = pathlib.Path(__file__).resolve().parent
ANALYZER = SCRIPTS.parent / "tools" / "analyze" / "faultroute_analyze.py"
PYTHON = sys.executable or "python3"


def run_script(script, *argv):
    """Runs scripts/<script> with argv; returns CompletedProcess."""
    return subprocess.run(
        [PYTHON, str(SCRIPTS / script), *[str(a) for a in argv]],
        capture_output=True, text=True, check=False)


def valid_delivery_report():
    return {
        "schema": "faultroute.bench.delivery.v1",
        "schema_version": 1,
        "quick": True,
        "seed": 2024,
        "benchmarks": [{
            "name": "hypercube_uniform",
            "topology": "hypercube:10",
            "workload": "random-pairs",
            "p": 0.55,
            "messages": 4096,
            "capacity": 1,
            "routed": 4000,
            "delivered": 3990,
            "makespan": 181,
            "sim_steps": 181,
            "transmissions": 30000,
            "channels": 10240,
            "routing_ms": 12.5,
            "event_ms": 3.25,
            "reference_ms": 40.0,
            "event_delivery_ms": 3.25,
            "reference_delivery_ms": 40.0,
            "speedup": 12.3,
            "end_to_end_speedup": 3.4,
            "identical": True,
        }],
    }


def valid_frontier_report():
    return {
        "schema": "faultroute.bench.frontier.v1",
        "schema_version": 1,
        "quick": True,
        "benchmarks": [{
            "name": "debruijn_flood",
            "cells": 6,
            "messages": 4096,
            "routed": 4001,
            "delivered": 3999,
            "total_distinct_probes": 90000,
            "unique_edges_probed": 41000,
            "batch_routing_ms": 8.0,
            "permsg_routing_ms": 14.0,
            "speedup": 1.75,
            "identical": True,
        }],
    }


def valid_snapshot_report():
    return {
        "schema": "faultroute.bench.snapshot.v1",
        "schema_version": 1,
        "quick": True,
        "benchmarks": [{
            "name": "hypercube:13",
            "vertices": 8192,
            "channels": 106496,
            "payload_bytes": 2195464,
            "build_ms": 7.1,
            "write_ms": 2.1,
            "open_ms": 0.6,
            "speedup": 11.8,
            "identical": True,
        }],
    }


def valid_metrics_report():
    return {
        "schema": "faultroute.metrics.v1",
        "schema_version": 1,
        "command": "route",
        "provenance": {
            "git_hash": "deadbeef",
            "compiler": "g++ 12",
            "build_type": "Release",
            "generated_by": "faultroute",
        },
        "counters": {"traffic.routing.messages": 64},
        "phases": [{"path": "route", "count": 1, "total_ms": 1.5}],
        "tracks": [{"id": 0, "name": "main"}],
    }


def valid_trace():
    return {
        "traceEvents": [
            {"ph": "M", "name": "thread_name", "pid": 1, "tid": 0,
             "args": {"name": "main"}},
            {"ph": "M", "name": "thread_name", "pid": 1, "tid": 1,
             "args": {"name": "worker-0"}},
            {"ph": "X", "name": "routing", "ts": 0, "dur": 120,
             "pid": 1, "tid": 1},
            {"ph": "X", "name": "delivery", "ts": 120, "dur": 80,
             "pid": 1, "tid": 0},
        ],
    }


def valid_analyze_report():
    return {
        "schema": "faultroute.analyze.v1",
        "schema_version": 1,
        "frontend": "internal",
        "tus": 3,
        "files": 5,
        "functions": 40,
        "rule_counts": {"hot-alloc": 1, "determinism": 0,
                        "lock-discipline": 0, "throw-safety": 0,
                        "annotation": 0},
        "findings": [{
            "rule": "hot-alloc",
            "file": "src/hot.cpp",
            "line": 12,
            "function": "helper",
            "message": "growing container call .push_back() on a hot path",
        }],
        "suppressed": [{
            "rule": "throw-safety",
            "file": "src/par.cpp",
            "line": 7,
            "function": "validate_cell",
            "reason": "argument validation, surfaced via first_error",
        }],
    }


class ValidatorCase(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory(prefix="faultroute-validators-")
        self.tmp = pathlib.Path(self._tmp.name)
        self.addCleanup(self._tmp.cleanup)

    def write_json(self, name, payload):
        path = self.tmp / name
        path.write_text(json.dumps(payload), encoding="utf-8")
        return path

    def assert_accepts(self, script, path):
        proc = run_script(script, path)
        self.assertEqual(
            proc.returncode, 0,
            f"{script} rejected a valid input:\n{proc.stdout}{proc.stderr}")

    def assert_rejects(self, script, path, needle):
        proc = run_script(script, path)
        self.assertNotEqual(
            proc.returncode, 0,
            f"{script} accepted a seeded-invalid input ({needle})")
        self.assertIn(needle, proc.stdout + proc.stderr)


class BenchSchemaValidator(ValidatorCase):
    SCRIPT = "check_bench_schema.py"

    def test_accepts_valid_delivery_report(self):
        self.assert_accepts(self.SCRIPT, self.write_json("d.json", valid_delivery_report()))

    def test_accepts_valid_frontier_report(self):
        self.assert_accepts(self.SCRIPT, self.write_json("f.json", valid_frontier_report()))

    def test_accepts_valid_metrics_report(self):
        self.assert_accepts(self.SCRIPT, self.write_json("m.json", valid_metrics_report()))

    def test_accepts_valid_snapshot_report(self):
        self.assert_accepts(self.SCRIPT, self.write_json("s.json", valid_snapshot_report()))

    def test_rejects_snapshot_view_disagreement(self):
        report = valid_snapshot_report()
        report["benchmarks"][0]["identical"] = False
        self.assert_rejects(self.SCRIPT, self.write_json("s.json", report),
                            "identical")

    def test_rejects_snapshot_empty_payload(self):
        report = valid_snapshot_report()
        report["benchmarks"][0]["payload_bytes"] = 0
        self.assert_rejects(self.SCRIPT, self.write_json("s.json", report),
                            "payload_bytes")

    def test_rejects_snapshot_negative_open_time(self):
        report = valid_snapshot_report()
        report["benchmarks"][0]["open_ms"] = -0.5
        self.assert_rejects(self.SCRIPT, self.write_json("s.json", report),
                            "negative time")

    def test_rejects_missing_field(self):
        report = valid_delivery_report()
        del report["benchmarks"][0]["makespan"]
        self.assert_rejects(self.SCRIPT, self.write_json("d.json", report), "makespan")

    def test_rejects_engine_disagreement(self):
        report = valid_delivery_report()
        report["benchmarks"][0]["identical"] = False
        self.assert_rejects(self.SCRIPT, self.write_json("d.json", report), "identical")

    def test_rejects_delivered_exceeding_routed(self):
        report = valid_frontier_report()
        report["benchmarks"][0]["delivered"] = report["benchmarks"][0]["routed"] + 1
        self.assert_rejects(self.SCRIPT, self.write_json("f.json", report),
                            "delivered > routed")

    def test_rejects_wrong_schema_version(self):
        report = valid_frontier_report()
        report["schema_version"] = 2
        self.assert_rejects(self.SCRIPT, self.write_json("f.json", report),
                            "schema_version")

    def test_rejects_bool_masquerading_as_int(self):
        report = valid_frontier_report()
        report["benchmarks"][0]["messages"] = True
        self.assert_rejects(self.SCRIPT, self.write_json("f.json", report), "messages")

    def test_rejects_metrics_without_provenance(self):
        report = valid_metrics_report()
        del report["provenance"]
        self.assert_rejects(self.SCRIPT, self.write_json("m.json", report), "provenance")

    def test_rejects_negative_counter(self):
        report = valid_metrics_report()
        report["counters"]["traffic.routing.messages"] = -1
        self.assert_rejects(self.SCRIPT, self.write_json("m.json", report),
                            "traffic.routing.messages")

    def test_rejects_unparseable_file(self):
        path = self.tmp / "garbage.json"
        path.write_text("{not json", encoding="utf-8")
        self.assert_rejects(self.SCRIPT, path, "cannot parse")

    def test_accepts_valid_analyze_report(self):
        self.assert_accepts(self.SCRIPT, self.write_json("a.json", valid_analyze_report()))

    def test_rejects_analyze_rule_count_mismatch(self):
        report = valid_analyze_report()
        report["rule_counts"]["hot-alloc"] = 2  # findings list still has 1
        self.assert_rejects(self.SCRIPT, self.write_json("a.json", report),
                            "rule_counts")

    def test_rejects_analyze_unknown_rule(self):
        report = valid_analyze_report()
        report["findings"][0]["rule"] = "vibes"
        self.assert_rejects(self.SCRIPT, self.write_json("a.json", report), "rule")

    def test_rejects_analyze_unknown_frontend(self):
        report = valid_analyze_report()
        report["frontend"] = "psychic"
        self.assert_rejects(self.SCRIPT, self.write_json("a.json", report),
                            "frontend")

    def test_rejects_analyze_suppression_without_reason(self):
        report = valid_analyze_report()
        report["suppressed"][0]["reason"] = ""
        self.assert_rejects(self.SCRIPT, self.write_json("a.json", report),
                            "reason")


class TraceValidator(ValidatorCase):
    SCRIPT = "check_trace.py"

    def test_accepts_valid_trace(self):
        self.assert_accepts(self.SCRIPT, self.write_json("t.json", valid_trace()))

    def test_rejects_trace_without_spans(self):
        trace = valid_trace()
        trace["traceEvents"] = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        self.assert_rejects(self.SCRIPT, self.write_json("t.json", trace),
                            "no complete ('X') events")

    def test_rejects_span_on_unlabelled_track(self):
        trace = valid_trace()
        trace["traceEvents"][2]["tid"] = 99
        self.assert_rejects(self.SCRIPT, self.write_json("t.json", trace),
                            "unlabelled")

    def test_rejects_negative_duration(self):
        trace = valid_trace()
        trace["traceEvents"][2]["dur"] = -1
        self.assert_rejects(self.SCRIPT, self.write_json("t.json", trace),
                            "negative")

    def test_rejects_unknown_event_phase(self):
        trace = valid_trace()
        trace["traceEvents"].append({"ph": "B", "name": "begin", "ts": 0})
        self.assert_rejects(self.SCRIPT, self.write_json("t.json", trace),
                            "unexpected event phase")


ANALYZE_FIXTURE_PRELUDE = """\
namespace std {
template <class T> struct vector {
  vector();
  void push_back(T x);
  unsigned long size() const;
};
}  // namespace std
"""

# Every required hot/det root gets an annotated stub so the analyzer's
# missing-root enforcement (which has no CLI opt-out, by design) is satisfied
# and the tests exercise exactly one variable: the seeded violation.
ANALYZE_FIXTURE_ROOTS = """\
namespace faultroute {

struct DistanceOracle { void bfs_block(); };
struct Topology { unsigned long distance(); };
struct JsonLinesReporter { void report(); };

void helper(std::vector<int>& out);

// analyze:hot-root(smoke fixture root)
void route_all(std::vector<int>& out) { helper(out); }
// analyze:hot-root(smoke fixture root)
void run_traffic() {}
// analyze:hot-root(smoke fixture root)
void route_frontier_batched() {}
// analyze:hot-root(smoke fixture root)
void DistanceOracle::bfs_block() {}
// analyze:hot-root(smoke fixture root)
unsigned long Topology::distance() { return 0; }
// analyze:det-root(smoke fixture root)
void JsonLinesReporter::report() {}
// analyze:det-root(smoke fixture root)
void traffic_table() {}
"""

ANALYZE_HELPER_CLEAN = """\
void helper(std::vector<int>& out) { (void)out.size(); }

}  // namespace faultroute
"""

ANALYZE_HELPER_HOT_BUG = """\
void helper(std::vector<int>& out) { out.push_back(1); }

}  // namespace faultroute
"""

ANALYZE_HELPER_BAD_TAG = """\
void helper(std::vector<int>& out) { out.push_back(1); }  // analyze:allow-hot-alloc()

}  // namespace faultroute
"""


class AnalyzerSmoke(ValidatorCase):
    """Subprocess smoke tests for tools/analyze/faultroute_analyze.py.

    The fixtures are self-contained single-TU trees with annotated stubs for
    all required hot/det roots, so findings (or their absence) come only from
    the seeded helper body.
    """

    def run_analyzer(self, *argv):
        return subprocess.run(
            [PYTHON, str(ANALYZER), *[str(a) for a in argv]],
            capture_output=True, text=True, check=False)

    def fixture_tree(self, helper_tail):
        (self.tmp / "src").mkdir(exist_ok=True)
        (self.tmp / "build").mkdir(exist_ok=True)
        source = self.tmp / "src" / "fixture.cpp"
        source.write_text(
            ANALYZE_FIXTURE_PRELUDE + ANALYZE_FIXTURE_ROOTS + helper_tail,
            encoding="utf-8")
        db = [{"directory": str(self.tmp),
               "command": "c++ -std=c++20 -c src/fixture.cpp",
               "file": str(source)}]
        (self.tmp / "build" / "compile_commands.json").write_text(
            json.dumps(db), encoding="utf-8")

    def analyze_args(self, *extra):
        return ["--root", self.tmp, "-p", self.tmp / "build", *extra]

    def test_self_test_passes(self):
        proc = self.run_analyzer("--self-test")
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("self-test passed", proc.stdout)
        self.assertNotIn("FAIL", proc.stdout)

    def test_clean_tree_exits_zero(self):
        self.fixture_tree(ANALYZE_HELPER_CLEAN)
        proc = self.run_analyzer(*self.analyze_args())
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("clean", proc.stdout)

    def test_seeded_hot_alloc_is_reported(self):
        self.fixture_tree(ANALYZE_HELPER_HOT_BUG)
        proc = self.run_analyzer(*self.analyze_args())
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("[hot-alloc]", proc.stdout)
        self.assertIn("route_all -> helper", proc.stdout)

    def test_annotation_without_reason_is_rejected(self):
        self.fixture_tree(ANALYZE_HELPER_BAD_TAG)
        proc = self.run_analyzer(*self.analyze_args())
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("[annotation]", proc.stdout)
        self.assertIn("requires a real reason", proc.stdout)

    def test_json_report_is_schema_valid(self):
        self.fixture_tree(ANALYZE_HELPER_HOT_BUG)
        report = self.tmp / "analyze.json"
        proc = self.run_analyzer(*self.analyze_args("--json", report))
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assert_accepts("check_bench_schema.py", report)
        payload = json.loads(report.read_text(encoding="utf-8"))
        self.assertEqual(payload["schema"], "faultroute.analyze.v1")
        self.assertEqual(payload["rule_counts"]["hot-alloc"], 1)

    def test_missing_compile_db_is_a_setup_error(self):
        self.fixture_tree(ANALYZE_HELPER_CLEAN)
        (self.tmp / "build" / "compile_commands.json").unlink()
        proc = self.run_analyzer(*self.analyze_args())
        self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)
        self.assertIn("compile_commands.json", proc.stderr)


class DocsLinksValidator(ValidatorCase):
    """check_docs_links.py anchors itself at <script>/../.., so the tests run
    a copy of it from inside a synthetic repo tree."""

    def fake_repo(self, readme, docs=None):
        (self.tmp / "scripts").mkdir()
        script = self.tmp / "scripts" / "check_docs_links.py"
        shutil.copyfile(SCRIPTS / "check_docs_links.py", script)
        (self.tmp / "README.md").write_text(readme, encoding="utf-8")
        (self.tmp / "docs").mkdir()
        for name, text in (docs or {}).items():
            (self.tmp / "docs" / name).write_text(text, encoding="utf-8")
        return script

    def run_fake(self, script):
        return subprocess.run([PYTHON, str(script)], capture_output=True,
                              text=True, check=False)

    def test_accepts_live_links(self):
        script = self.fake_repo(
            "See [the guide](docs/GUIDE.md) and [section](docs/GUIDE.md#part).\n"
            "External [site](https://example.com) is skipped.\n",
            docs={"GUIDE.md": "Back to [README](../README.md).\n"})
        proc = self.run_fake(script)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_rejects_dead_link(self):
        script = self.fake_repo("See [missing](docs/NOPE.md).\n")
        proc = self.run_fake(script)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("DEAD LINK", proc.stdout)
        self.assertIn("NOPE.md", proc.stdout)

    def test_ignores_links_inside_code_fences(self):
        script = self.fake_repo(
            "Example output:\n\n```\n[not a link](docs/NOPE.md)\n```\n")
        proc = self.run_fake(script)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)


if __name__ == "__main__":
    unittest.main(verbosity=2)
