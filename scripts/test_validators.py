#!/usr/bin/env python3
"""Smoke tests for the CI validator scripts themselves.

Usage: python3 scripts/test_validators.py  (or via unittest discovery)

The validators (check_bench_schema.py, check_trace.py, check_docs_links.py)
are the last line of defence for the machine-readable CI surfaces, so they
get the same treatment as the linter: every one is fed a known-good input
(must accept) and a set of seeded-invalid inputs (must reject with a
diagnostic). A validator that silently accepts garbage is worse than no
validator — CI runs this file before trusting any of them.

No third-party dependencies; stdlib unittest + subprocess only.
"""

import json
import pathlib
import shutil
import subprocess
import sys
import tempfile
import unittest

SCRIPTS = pathlib.Path(__file__).resolve().parent
PYTHON = sys.executable or "python3"


def run_script(script, *argv):
    """Runs scripts/<script> with argv; returns CompletedProcess."""
    return subprocess.run(
        [PYTHON, str(SCRIPTS / script), *[str(a) for a in argv]],
        capture_output=True, text=True, check=False)


def valid_delivery_report():
    return {
        "schema": "faultroute.bench.delivery.v1",
        "schema_version": 1,
        "quick": True,
        "seed": 2024,
        "benchmarks": [{
            "name": "hypercube_uniform",
            "topology": "hypercube:10",
            "workload": "random-pairs",
            "p": 0.55,
            "messages": 4096,
            "capacity": 1,
            "routed": 4000,
            "delivered": 3990,
            "makespan": 181,
            "sim_steps": 181,
            "transmissions": 30000,
            "channels": 10240,
            "routing_ms": 12.5,
            "event_ms": 3.25,
            "reference_ms": 40.0,
            "event_delivery_ms": 3.25,
            "reference_delivery_ms": 40.0,
            "speedup": 12.3,
            "end_to_end_speedup": 3.4,
            "identical": True,
        }],
    }


def valid_frontier_report():
    return {
        "schema": "faultroute.bench.frontier.v1",
        "schema_version": 1,
        "quick": True,
        "benchmarks": [{
            "name": "debruijn_flood",
            "cells": 6,
            "messages": 4096,
            "routed": 4001,
            "delivered": 3999,
            "total_distinct_probes": 90000,
            "unique_edges_probed": 41000,
            "batch_routing_ms": 8.0,
            "permsg_routing_ms": 14.0,
            "speedup": 1.75,
            "identical": True,
        }],
    }


def valid_metrics_report():
    return {
        "schema": "faultroute.metrics.v1",
        "schema_version": 1,
        "command": "route",
        "provenance": {
            "git_hash": "deadbeef",
            "compiler": "g++ 12",
            "build_type": "Release",
            "generated_by": "faultroute",
        },
        "counters": {"traffic.routing.messages": 64},
        "phases": [{"path": "route", "count": 1, "total_ms": 1.5}],
        "tracks": [{"id": 0, "name": "main"}],
    }


def valid_trace():
    return {
        "traceEvents": [
            {"ph": "M", "name": "thread_name", "pid": 1, "tid": 0,
             "args": {"name": "main"}},
            {"ph": "M", "name": "thread_name", "pid": 1, "tid": 1,
             "args": {"name": "worker-0"}},
            {"ph": "X", "name": "routing", "ts": 0, "dur": 120,
             "pid": 1, "tid": 1},
            {"ph": "X", "name": "delivery", "ts": 120, "dur": 80,
             "pid": 1, "tid": 0},
        ],
    }


class ValidatorCase(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory(prefix="faultroute-validators-")
        self.tmp = pathlib.Path(self._tmp.name)
        self.addCleanup(self._tmp.cleanup)

    def write_json(self, name, payload):
        path = self.tmp / name
        path.write_text(json.dumps(payload), encoding="utf-8")
        return path

    def assert_accepts(self, script, path):
        proc = run_script(script, path)
        self.assertEqual(
            proc.returncode, 0,
            f"{script} rejected a valid input:\n{proc.stdout}{proc.stderr}")

    def assert_rejects(self, script, path, needle):
        proc = run_script(script, path)
        self.assertNotEqual(
            proc.returncode, 0,
            f"{script} accepted a seeded-invalid input ({needle})")
        self.assertIn(needle, proc.stdout + proc.stderr)


class BenchSchemaValidator(ValidatorCase):
    SCRIPT = "check_bench_schema.py"

    def test_accepts_valid_delivery_report(self):
        self.assert_accepts(self.SCRIPT, self.write_json("d.json", valid_delivery_report()))

    def test_accepts_valid_frontier_report(self):
        self.assert_accepts(self.SCRIPT, self.write_json("f.json", valid_frontier_report()))

    def test_accepts_valid_metrics_report(self):
        self.assert_accepts(self.SCRIPT, self.write_json("m.json", valid_metrics_report()))

    def test_rejects_missing_field(self):
        report = valid_delivery_report()
        del report["benchmarks"][0]["makespan"]
        self.assert_rejects(self.SCRIPT, self.write_json("d.json", report), "makespan")

    def test_rejects_engine_disagreement(self):
        report = valid_delivery_report()
        report["benchmarks"][0]["identical"] = False
        self.assert_rejects(self.SCRIPT, self.write_json("d.json", report), "identical")

    def test_rejects_delivered_exceeding_routed(self):
        report = valid_frontier_report()
        report["benchmarks"][0]["delivered"] = report["benchmarks"][0]["routed"] + 1
        self.assert_rejects(self.SCRIPT, self.write_json("f.json", report),
                            "delivered > routed")

    def test_rejects_wrong_schema_version(self):
        report = valid_frontier_report()
        report["schema_version"] = 2
        self.assert_rejects(self.SCRIPT, self.write_json("f.json", report),
                            "schema_version")

    def test_rejects_bool_masquerading_as_int(self):
        report = valid_frontier_report()
        report["benchmarks"][0]["messages"] = True
        self.assert_rejects(self.SCRIPT, self.write_json("f.json", report), "messages")

    def test_rejects_metrics_without_provenance(self):
        report = valid_metrics_report()
        del report["provenance"]
        self.assert_rejects(self.SCRIPT, self.write_json("m.json", report), "provenance")

    def test_rejects_negative_counter(self):
        report = valid_metrics_report()
        report["counters"]["traffic.routing.messages"] = -1
        self.assert_rejects(self.SCRIPT, self.write_json("m.json", report),
                            "traffic.routing.messages")

    def test_rejects_unparseable_file(self):
        path = self.tmp / "garbage.json"
        path.write_text("{not json", encoding="utf-8")
        self.assert_rejects(self.SCRIPT, path, "cannot parse")


class TraceValidator(ValidatorCase):
    SCRIPT = "check_trace.py"

    def test_accepts_valid_trace(self):
        self.assert_accepts(self.SCRIPT, self.write_json("t.json", valid_trace()))

    def test_rejects_trace_without_spans(self):
        trace = valid_trace()
        trace["traceEvents"] = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        self.assert_rejects(self.SCRIPT, self.write_json("t.json", trace),
                            "no complete ('X') events")

    def test_rejects_span_on_unlabelled_track(self):
        trace = valid_trace()
        trace["traceEvents"][2]["tid"] = 99
        self.assert_rejects(self.SCRIPT, self.write_json("t.json", trace),
                            "unlabelled")

    def test_rejects_negative_duration(self):
        trace = valid_trace()
        trace["traceEvents"][2]["dur"] = -1
        self.assert_rejects(self.SCRIPT, self.write_json("t.json", trace),
                            "negative")

    def test_rejects_unknown_event_phase(self):
        trace = valid_trace()
        trace["traceEvents"].append({"ph": "B", "name": "begin", "ts": 0})
        self.assert_rejects(self.SCRIPT, self.write_json("t.json", trace),
                            "unexpected event phase")


class DocsLinksValidator(ValidatorCase):
    """check_docs_links.py anchors itself at <script>/../.., so the tests run
    a copy of it from inside a synthetic repo tree."""

    def fake_repo(self, readme, docs=None):
        (self.tmp / "scripts").mkdir()
        script = self.tmp / "scripts" / "check_docs_links.py"
        shutil.copyfile(SCRIPTS / "check_docs_links.py", script)
        (self.tmp / "README.md").write_text(readme, encoding="utf-8")
        (self.tmp / "docs").mkdir()
        for name, text in (docs or {}).items():
            (self.tmp / "docs" / name).write_text(text, encoding="utf-8")
        return script

    def run_fake(self, script):
        return subprocess.run([PYTHON, str(script)], capture_output=True,
                              text=True, check=False)

    def test_accepts_live_links(self):
        script = self.fake_repo(
            "See [the guide](docs/GUIDE.md) and [section](docs/GUIDE.md#part).\n"
            "External [site](https://example.com) is skipped.\n",
            docs={"GUIDE.md": "Back to [README](../README.md).\n"})
        proc = self.run_fake(script)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_rejects_dead_link(self):
        script = self.fake_repo("See [missing](docs/NOPE.md).\n")
        proc = self.run_fake(script)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("DEAD LINK", proc.stdout)
        self.assertIn("NOPE.md", proc.stdout)

    def test_ignores_links_inside_code_fences(self):
        script = self.fake_repo(
            "Example output:\n\n```\n[not a link](docs/NOPE.md)\n```\n")
        proc = self.run_fake(script)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)


if __name__ == "__main__":
    unittest.main(verbosity=2)
