// E4 + E5 — the double binary tree TT_n (Sections 2.1 and 5).
//
//  (a) Lemma 6: the roots are connected with probability bounded away from 0
//      iff p > 1/sqrt(2) ~ 0.7071. We measure Pr[x ~ y] across p for several
//      depths and compare with the Galton-Watson mirrored-branch prediction
//      q_n(p^2).
//  (b) Theorem 7: any local router pays ~ p^{-n} probes; we measure the
//      DFS+climb local router's growth rate in n.
//  (c) Theorem 9: the paired-edge oracle router routes in expected O(n)
//      probes; we verify linearity in n up to n = 28 (3 * 2^28 vertices,
//      implicit — never materialised).

#include <cmath>
#include <cstdio>
#include <exception>

#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "core/probe_context.hpp"
#include "core/routers/double_tree_routers.hpp"
#include "graph/double_tree.hpp"
#include "percolation/cluster_analysis.hpp"
#include "percolation/edge_sampler.hpp"
#include "percolation/galton_watson.hpp"
#include "random/rng.hpp"
#include "sim/options.hpp"

namespace {

using namespace faultroute;

void connectivity_threshold(const sim::Options& options) {
  const std::vector<int> depths = {8, 12};
  const std::vector<double> ps = {0.60, 0.65, 0.70, 0.7071, 0.73, 0.78, 0.85, 0.95};
  const int trials = options.trials_or(300);

  Table table({"n", "p", "Pr[x~y] measured", "CI_low", "CI_high", "GW q_n(p^2)"});
  for (const int n : depths) {
    const DoubleBinaryTree tree(n);
    for (const double p : ps) {
      std::uint64_t connected = 0;
      for (int t = 0; t < trials; ++t) {
        const std::uint64_t seed =
            derive_seed(options.seed, static_cast<std::uint64_t>(n) * 1000000 +
                                          static_cast<std::uint64_t>(p * 10000) * 31 +
                                          static_cast<std::uint64_t>(t));
        const HashEdgeSampler sampler(p, seed);
        if (*open_connected(tree, sampler, tree.root1(), tree.root2())) ++connected;
      }
      const Interval ci =
          wilson_interval(connected, static_cast<std::uint64_t>(trials));
      const BinaryGaltonWatson gw(p * p);
      table.add_row({Table::fmt(n), Table::fmt(p, 4),
                     Table::fmt(static_cast<double>(connected) / trials, 3),
                     Table::fmt(ci.low, 3), Table::fmt(ci.high, 3),
                     Table::fmt(gw.reach_probability(n), 3)});
    }
  }
  table.print(
      "E4a: TT_n root connectivity vs p (Lemma 6: threshold at 1/sqrt(2) ~ 0.707; "
      "GW column = mirrored-branch lower bound)");
  if (const auto path = options.csv_path("e4_tt_connectivity")) table.write_csv(*path);
}

void local_routing_cost(const sim::Options& options) {
  const std::vector<double> ps = {0.75, 0.80, 0.88};
  const std::vector<int> depths =
      options.quick ? std::vector<int>{6, 8, 10, 12} : std::vector<int>{6, 8, 10, 12, 14, 16};
  const int trials = options.trials_or(80);

  Table table({"p", "n", "median_probes", "mean_probes", "q90_probes"});
  Table fits({"p", "growth_rate_per_level", "paper 1/p", "paper 2p", "r2"});
  for (const double p : ps) {
    std::vector<double> xs;
    std::vector<double> ys;
    for (const int n : depths) {
      const DoubleBinaryTree tree(n);
      DoubleTreeLocalRouter router(tree);
      Summary probes;
      int accepted = 0;
      for (std::uint64_t t = 0; accepted < trials && t < 4000; ++t) {
        const std::uint64_t seed =
            derive_seed(options.seed, 7000000 + static_cast<std::uint64_t>(p * 1000) * 4096 +
                                          static_cast<std::uint64_t>(n) * 100000 + t);
        const HashEdgeSampler sampler(p, seed);
        if (!*open_connected(tree, sampler, tree.root1(), tree.root2())) continue;
        ++accepted;
        ProbeContext ctx(tree, sampler, tree.root1(), RoutingMode::kLocal);
        const auto path = router.route(ctx, tree.root1(), tree.root2());
        if (!path) std::abort();  // complete router conditioned on connectivity
        probes.add(static_cast<double>(ctx.distinct_probes()));
      }
      table.add_row({Table::fmt(p, 2), Table::fmt(n), Table::fmt(probes.median(), 0),
                     Table::fmt(probes.mean(), 0), Table::fmt(probes.quantile(0.9), 0)});
      xs.push_back(static_cast<double>(n));
      // Means, not medians: the p^{-n} cost is driven by the heavy upper
      // tail of failed leaf climbs, which the median misses at high p.
      ys.push_back(probes.mean());
    }
    const LinearFit fit = semilog_fit(xs, ys);
    fits.add_row({Table::fmt(p, 2), Table::fmt(std::exp(fit.slope), 3),
                  Table::fmt(1.0 / p, 3), Table::fmt(2.0 * p, 3),
                  Table::fmt(fit.r_squared, 3)});
  }
  table.print("E4b: TT_n local routing complexity (Theorem 7: exponential in n)");
  if (const auto path = options.csv_path("e4_tt_local")) table.write_csv(*path);
  fits.print(
      "E4b fits: per-level growth of median probes (paper lower bound: >= 1/p per "
      "level; reachable-leaf heuristic suggests ~ 2p)");
  if (const auto path = options.csv_path("e4_tt_local_fits")) fits.write_csv(*path);
}

void oracle_routing_cost(const sim::Options& options) {
  const std::vector<int> depths = options.quick
                                      ? std::vector<int>{8, 12, 16, 20}
                                      : std::vector<int>{8, 12, 16, 20, 24, 28};
  const double p = 0.80;  // comfortably above 1/sqrt(2)
  const int trials = options.trials_or(200);

  Table table({"n", "success_rate", "GW survival(p^2)", "mean_probes", "probes_per_n"});
  std::vector<double> xs;
  std::vector<double> ys;
  for (const int n : depths) {
    const DoubleBinaryTree tree(n);
    DoubleTreePairedOracleRouter router(tree);
    Summary probes;
    int successes = 0;
    for (int t = 0; t < trials; ++t) {
      const std::uint64_t seed =
          derive_seed(options.seed, 9000000 + static_cast<std::uint64_t>(n) * 100000 +
                                        static_cast<std::uint64_t>(t));
      const HashEdgeSampler sampler(p, seed);
      // No conditioning: at depth 28 a ground-truth BFS over 3 * 2^28
      // vertices is exactly what the oracle router lets us avoid. We report
      // success rate against the GW survival prediction instead, and average
      // probes over successful routes (Theorem 9 conditions on success).
      ProbeContext ctx(tree, sampler, tree.root1(), RoutingMode::kOracle);
      const auto path = router.route(ctx, tree.root1(), tree.root2());
      if (path) {
        ++successes;
        probes.add(static_cast<double>(ctx.distinct_probes()));
      }
    }
    const BinaryGaltonWatson gw(p * p);
    table.add_row({Table::fmt(n), Table::fmt(static_cast<double>(successes) / trials, 3),
                   Table::fmt(gw.survival_probability(), 3),
                   Table::fmt(probes.mean(), 1),
                   Table::fmt(probes.mean() / static_cast<double>(n), 2)});
    xs.push_back(static_cast<double>(n));
    ys.push_back(probes.mean());
  }
  table.print(
      "E5: TT_n paired-edge oracle router at p = 0.8 (Theorem 9: O(n) probes; "
      "probes_per_n should be ~ constant)");
  if (const auto path = options.csv_path("e5_tt_oracle")) table.write_csv(*path);

  const LinearFit fit = log_log_fit(xs, ys);
  Table fitrow({"loglog_exponent (paper: 1.0)", "r2"});
  fitrow.add_row({Table::fmt(fit.slope, 2), Table::fmt(fit.r_squared, 3)});
  fitrow.print("E5 fit");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const auto options = faultroute::sim::parse_options(argc, argv);
    connectivity_threshold(options);
    local_routing_cost(options);
    oracle_routing_cost(options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_double_tree: %s\n", e.what());
    return 1;
  }
  return 0;
}
