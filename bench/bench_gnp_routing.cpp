// E6 — Theorems 10 and 11: routing in G_{n,p} with p = c/n.
//
// Local routing costs Theta(n^2) probes (Theorem 10's Omega(n^2) is realised
// by the target-first flood router); the paper's bidirectional oracle router
// costs Theta(n^{3/2}) (Theorem 11) — oracle beats local by exactly sqrt(n).
//
// We sweep n, fit log-log exponents (expect ~2.0 and ~1.5) and compare the
// measured local/oracle gap against sqrt(n).

#include <cmath>
#include <cstdio>
#include <exception>

#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "core/experiment.hpp"
#include "core/routers/gnp_routers.hpp"
#include "graph/complete.hpp"
#include "random/rng.hpp"
#include "sim/options.hpp"

namespace {

using namespace faultroute;

constexpr double kC = 3.0;  // mean degree: p = c/n, supercritical (c > 1)

ExperimentSummary measure(const sim::Options& options, Router& router, std::uint64_t n,
                          int trials) {
  const CompleteGraph g(n);
  ExperimentConfig config;
  config.trials = trials;
  config.base_seed = derive_seed(options.seed, n * 31 + (router.required_mode() ==
                                                         RoutingMode::kOracle));
  return measure_routing(g, kC / static_cast<double>(n), router, 0, n - 1, config);
}

void run(const sim::Options& options) {
  const std::vector<std::uint64_t> local_sizes =
      options.quick ? std::vector<std::uint64_t>{250, 500, 1000}
                    : std::vector<std::uint64_t>{500, 1000, 2000, 4000};
  const std::vector<std::uint64_t> oracle_sizes =
      options.quick ? std::vector<std::uint64_t>{500, 1000, 2000, 4000}
                    : std::vector<std::uint64_t>{500, 1000, 2000, 4000, 8000};
  const int trials = options.trials_or(12);

  Table table({"router", "n", "mean_probes", "median_probes", "probes/n^2",
               "probes/n^1.5"});
  std::vector<double> lx;
  std::vector<double> ly;
  std::vector<double> ox;
  std::vector<double> oy;

  GnpLocalRouter local;
  for (const std::uint64_t n : local_sizes) {
    const ExperimentSummary s = measure(options, local, n, trials);
    const double dn = static_cast<double>(n);
    table.add_row({"local", Table::fmt(n), Table::fmt(s.mean_distinct, 0),
                   Table::fmt(s.median_distinct, 0),
                   Table::fmt(s.mean_distinct / (dn * dn), 4),
                   Table::fmt(s.mean_distinct / std::pow(dn, 1.5), 3)});
    lx.push_back(dn);
    ly.push_back(s.mean_distinct);
  }
  GnpOracleRouter oracle;
  for (const std::uint64_t n : oracle_sizes) {
    const ExperimentSummary s = measure(options, oracle, n, trials);
    const double dn = static_cast<double>(n);
    table.add_row({"oracle", Table::fmt(n), Table::fmt(s.mean_distinct, 0),
                   Table::fmt(s.median_distinct, 0),
                   Table::fmt(s.mean_distinct / (dn * dn), 4),
                   Table::fmt(s.mean_distinct / std::pow(dn, 1.5), 3)});
    ox.push_back(dn);
    oy.push_back(s.mean_distinct);
  }
  table.print("E6: G_{n,c/n} routing complexity, c = 3 (local vs oracle)");
  if (const auto path = options.csv_path("e6_gnp_routing")) table.write_csv(*path);

  const LinearFit local_fit = log_log_fit(lx, ly);
  const LinearFit oracle_fit = log_log_fit(ox, oy);
  Table fits({"router", "loglog_exponent", "paper", "r2"});
  fits.add_row({"local", Table::fmt(local_fit.slope, 2), "2.0 (Thm 10)",
                Table::fmt(local_fit.r_squared, 3)});
  fits.add_row({"oracle", Table::fmt(oracle_fit.slope, 2), "1.5 (Thm 11)",
                Table::fmt(oracle_fit.r_squared, 3)});
  fits.print("E6 fits: complexity exponents");
  if (const auto path = options.csv_path("e6_fits")) fits.write_csv(*path);

  // Gap at the common sizes: local/oracle should scale like sqrt(n).
  Table gap({"n", "local_mean", "oracle_mean", "gap", "sqrt(n)"});
  for (std::size_t i = 0; i < lx.size(); ++i) {
    for (std::size_t j = 0; j < ox.size(); ++j) {
      if (lx[i] == ox[j]) {
        gap.add_row({Table::fmt(lx[i], 0), Table::fmt(ly[i], 0), Table::fmt(oy[j], 0),
                     Table::fmt(ly[i] / oy[j], 1), Table::fmt(std::sqrt(lx[i]), 1)});
      }
    }
  }
  gap.print("E6 gap: local/oracle ratio vs sqrt(n) (paper: gap = Theta(sqrt n))");
  if (const auto path = options.csv_path("e6_gap")) gap.write_csv(*path);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    run(faultroute::sim::parse_options(argc, argv));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_gnp_routing: %s\n", e.what());
    return 1;
  }
  return 0;
}
