// bench_snapshot — cold materialization vs warm mmap start of the CSR
// adjacency, the perf claim behind on-disk snapshots (graph/snapshot.hpp).
//
// Per topology family the bench measures, best of --reps repetitions:
//
//   build_ms  cold start: a fresh Topology materializes its FlatAdjacency
//             (ChannelIndex traversal + the three per-channel arrays) — the
//             price every scenario process pays without a snapshot;
//   write_ms  one-time cost of persisting that build as a snapshot;
//   open_ms   warm start: open_snapshot_adjacency on a fresh Topology —
//             mmap + checksum scan (the page-in pass) + the non-owning view,
//             zero materialization work.
//
// speedup = build_ms / open_ms. The mapped view is additionally compared
// row-for-row against an owning build on every slot, so the bench doubles
// as a format round-trip test at sizes the unit suite cannot afford; the
// process fails on any mismatch.
//
//   bench_snapshot [--quick] [--json] [--out PATH] [--reps N] [--dir DIR]
//
// --json emits one machine-readable object (schema
// faultroute.bench.snapshot.v1, validated in CI by
// scripts/check_bench_schema.py); the committed full-run perf record lives
// in BENCH_snapshot.json at the repo root, next to BENCH_adjacency.json.

#include <chrono>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "graph/flat_adjacency.hpp"
#include "graph/snapshot.hpp"
#include "obs/build_info.hpp"
#include "obs/schemas.hpp"
#include "sim/registry.hpp"

namespace {

using namespace faultroute;

struct BenchOptions {
  bool quick = false;
  bool json = false;
  std::string out_path;
  std::string dir;  // empty = a scratch dir under the system temp root
  int reps = 0;     // 0 = default (3 full, 2 quick)
};

BenchOptions parse_args(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const std::string& flag) -> std::string {
      if (arg.size() > flag.size() + 1 && arg.rfind(flag + "=", 0) == 0) {
        return arg.substr(flag.size() + 1);
      }
      if (arg == flag && i + 1 < argc) return argv[++i];
      throw std::invalid_argument("bench_snapshot: " + flag + " needs a value");
    };
    if (arg == "--quick") {
      options.quick = true;
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--out" || arg.rfind("--out=", 0) == 0) {
      options.out_path = value_of("--out");
    } else if (arg == "--dir" || arg.rfind("--dir=", 0) == 0) {
      options.dir = value_of("--dir");
    } else if (arg == "--reps" || arg.rfind("--reps=", 0) == 0) {
      options.reps = std::stoi(value_of("--reps"));
    } else {
      throw std::invalid_argument("bench_snapshot: unknown flag '" + arg +
                                  "' (known: --quick --json --out --reps --dir)");
    }
  }
  return options;
}

struct BenchResult {
  std::string name;  // topology spec
  std::uint64_t vertices = 0;
  std::uint64_t channels = 0;
  std::uint64_t payload_bytes = 0;
  double build_ms = 0.0;
  double write_ms = 0.0;
  double open_ms = 0.0;
  bool identical = true;
  [[nodiscard]] double speedup() const {
    return open_ms > 0.0 ? build_ms / open_ms : 0.0;
  }
};

double ms_since(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - since)
      .count();
}

/// Every slot of every row must match between the mapped view and a fresh
/// owning build.
bool rows_identical(const FlatAdjacency& a, const FlatAdjacency& b) {
  if (a.num_vertices() != b.num_vertices() || a.num_channels() != b.num_channels() ||
      a.num_edge_ids() != b.num_edge_ids()) {
    return false;
  }
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    if (a.row_begin(v) != b.row_begin(v) || a.row_end(v) != b.row_end(v)) return false;
    for (int i = 0; i < a.degree(v); ++i) {
      if (a.neighbor(v, i) != b.neighbor(v, i) || a.edge_key(v, i) != b.edge_key(v, i) ||
          a.edge_id(v, i) != b.edge_id(v, i)) {
        return false;
      }
    }
  }
  return true;
}

BenchResult run_family(const std::string& spec, const std::string& dir,
                       const BenchOptions& options) {
  BenchResult result;
  result.name = spec;
  const int reps = options.reps > 0 ? options.reps : (options.quick ? 2 : 3);
  const std::string path = snapshot_path(dir, spec);

  for (int rep = 0; rep < reps; ++rep) {
    // Cold start: topology construction is untimed (both paths pay it);
    // the timed region is exactly the materialization a snapshot replaces.
    const auto cold_graph = sim::make_topology(spec);
    const auto build_start = std::chrono::steady_clock::now();
    const FlatAdjacency& built = cold_graph->flat_adjacency();
    const double build_ms = ms_since(build_start);

    const auto write_start = std::chrono::steady_clock::now();
    write_snapshot(path, spec, built);
    const double write_ms = ms_since(write_start);

    // Warm start: a fresh Topology that never materializes — the mapped
    // view (open + verify + point) is all the adjacency work there is.
    const auto warm_graph = sim::make_topology(spec);
    const auto open_start = std::chrono::steady_clock::now();
    const auto view = open_snapshot_adjacency(dir, spec, *warm_graph);
    const double open_ms = ms_since(open_start);
    if (view == nullptr) throw std::runtime_error("snapshot missing after write: " + path);

    if (rep == 0) {
      result.vertices = built.num_vertices();
      result.channels = built.num_channels();
      result.payload_bytes = read_snapshot_info(path).payload_bytes;
      result.identical = rows_identical(*view, built);
      result.build_ms = build_ms;
      result.write_ms = write_ms;
      result.open_ms = open_ms;
    } else {
      if (build_ms < result.build_ms) result.build_ms = build_ms;
      if (write_ms < result.write_ms) result.write_ms = write_ms;
      if (open_ms < result.open_ms) result.open_ms = open_ms;
    }
  }
  return result;
}

std::string json_report(const std::vector<BenchResult>& results, const BenchOptions& options) {
  std::ostringstream out;
  out.precision(6);
  out << std::fixed;
  out << "{\"schema\":\"" << obs::schemas::kBenchSnapshot
      << "\",\"schema_version\":" << obs::schemas::kBenchVersion
      << ",\"provenance\":" << obs::provenance_json("bench_snapshot")
      << ",\"quick\":" << (options.quick ? "true" : "false") << ",\"benchmarks\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    if (i > 0) out << ',';
    out << "{\"name\":\"" << r.name << "\",\"vertices\":" << r.vertices
        << ",\"channels\":" << r.channels << ",\"payload_bytes\":" << r.payload_bytes
        << ",\"build_ms\":" << r.build_ms << ",\"write_ms\":" << r.write_ms
        << ",\"open_ms\":" << r.open_ms << ",\"speedup\":" << r.speedup()
        << ",\"identical\":" << (r.identical ? "true" : "false") << '}';
  }
  out << "]}\n";
  return out.str();
}

int run(const BenchOptions& options) {
  // Large enough that materialization dominates process startup, small
  // enough that --quick stays CI-smoke sized.
  const std::vector<std::string> families =
      options.quick
          ? std::vector<std::string>{"hypercube:13", "torus:2:64", "de_bruijn:13"}
          : std::vector<std::string>{"hypercube:18", "torus:2:512", "de_bruijn:18"};

  namespace fs = std::filesystem;
  const fs::path dir = options.dir.empty()
                           ? fs::temp_directory_path() / "faultroute_bench_snapshot"
                           : fs::path(options.dir);
  fs::create_directories(dir);

  std::vector<BenchResult> results;
  results.reserve(families.size());
  for (const auto& spec : families) results.push_back(run_family(spec, dir.string(), options));
  if (options.dir.empty()) fs::remove_all(dir);  // scratch dir only; keep --dir

  bool all_identical = true;
  for (const BenchResult& r : results) all_identical = all_identical && r.identical;

  if (options.json) {
    const std::string report = json_report(results, options);
    if (options.out_path.empty()) {
      std::cout << report;
    } else {
      std::ofstream out(options.out_path);
      if (!out) throw std::runtime_error("cannot write --out file '" + options.out_path + "'");
      out << report;
    }
  } else {
    Table table({"topology", "vertices", "channels", "payload MB", "build_ms", "write_ms",
                 "open_ms", "speedup", "identical"});
    for (const BenchResult& r : results) {
      table.add_row({r.name, Table::fmt(r.vertices), Table::fmt(r.channels),
                     Table::fmt(static_cast<double>(r.payload_bytes) / (1024.0 * 1024.0), 1),
                     Table::fmt(r.build_ms, 2), Table::fmt(r.write_ms, 2),
                     Table::fmt(r.open_ms, 2), Table::fmt(r.speedup(), 1),
                     r.identical ? "yes" : "NO"});
    }
    table.print("snapshot warm start: mmap'd CSR vs cold materialization");
  }

  if (!all_identical) {
    std::fprintf(stderr, "bench_snapshot: MAPPED VIEW DISAGREES — see 'identical' column\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(parse_args(argc, argv));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_snapshot: %s\n", e.what());
    return 1;
  }
}
