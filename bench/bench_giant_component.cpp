// E7 — the background percolation thresholds the paper builds on.
//
//  (a) Ajtai-Komlos-Szemeredi: H_{n,p} at p = (1+eps)/n has a giant
//      (Theta(2^n)) component for eps > 0 and only o(2^n) components for
//      eps < 0. We sweep eps and watch the largest-cluster fraction.
//  (b) Erdos-Spencer: H_{n,p} is connected w.h.p. iff p > 1/2 — watch the
//      isolated-vertex count across p = 1/2.
//  (c) Mesh critical probabilities: bisection estimates of p_c(2) = 1/2
//      (exact) and p_c(3) ~ 0.2488.

#include <cstdio>
#include <exception>

#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "graph/hypercube.hpp"
#include "graph/mesh.hpp"
#include "percolation/cluster_analysis.hpp"
#include "percolation/threshold.hpp"
#include "random/rng.hpp"
#include "sim/options.hpp"

namespace {

using namespace faultroute;

void hypercube_giant(const sim::Options& options) {
  const std::vector<int> dims =
      options.quick ? std::vector<int>{10, 12} : std::vector<int>{10, 12, 14};
  const std::vector<double> epsilons = {-0.5, -0.2, 0.0, 0.2, 0.5, 1.0, 2.0};
  const int trials = options.trials_or(8);

  Table table({"n", "eps", "p=(1+eps)/n", "giant_fraction", "second_fraction"});
  for (const int n : dims) {
    const Hypercube cube(n);
    for (const double eps : epsilons) {
      const double p = (1.0 + eps) / static_cast<double>(n);
      Summary giant;
      Summary second;
      for (int t = 0; t < trials; ++t) {
        const std::uint64_t seed =
            derive_seed(options.seed, static_cast<std::uint64_t>(n) * 1000 +
                                          static_cast<std::uint64_t>((eps + 1.0) * 100) * 64 +
                                          static_cast<std::uint64_t>(t));
        const auto s = analyze_components(cube, HashEdgeSampler(p, seed));
        giant.add(s.largest_fraction());
        second.add(static_cast<double>(s.second_largest) /
                   static_cast<double>(s.num_vertices));
      }
      table.add_row({Table::fmt(n), Table::fmt(eps, 1), Table::fmt(p, 4),
                     Table::fmt(giant.mean(), 4), Table::fmt(second.mean(), 4)});
    }
  }
  table.print(
      "E7a: hypercube giant component vs eps at p = (1+eps)/n "
      "(AKS82: giant iff eps > 0; the paper's connectivity baseline)");
  if (const auto path = options.csv_path("e7_hypercube_giant")) table.write_csv(*path);
}

void hypercube_connectivity(const sim::Options& options) {
  const int n = options.quick ? 10 : 12;
  const Hypercube cube(n);
  const std::vector<double> ps = {0.40, 0.45, 0.50, 0.55, 0.60, 0.70};
  const int trials = options.trials_or(10);

  Table table({"p", "Pr[connected]", "mean_components", "mean_isolated_fraction"});
  for (const double p : ps) {
    int connected = 0;
    Summary components;
    Summary isolated;
    for (int t = 0; t < trials; ++t) {
      const std::uint64_t seed = derive_seed(
          options.seed, 500000 + static_cast<std::uint64_t>(p * 100) * 64 +
                            static_cast<std::uint64_t>(t));
      const HashEdgeSampler sampler(p, seed);
      const auto s = analyze_components(cube, sampler);
      if (s.num_components == 1) ++connected;
      components.add(static_cast<double>(s.num_components));
      // Isolated vertices are the last obstruction to connectivity.
      std::uint64_t iso = 0;
      for (VertexId v = 0; v < cube.num_vertices(); ++v) {
        bool any_open = false;
        for (int i = 0; i < cube.degree(v) && !any_open; ++i) {
          any_open = sampler.is_open(cube.edge_key(v, i));
        }
        if (!any_open) ++iso;
      }
      isolated.add(static_cast<double>(iso) / static_cast<double>(cube.num_vertices()));
    }
    table.add_row({Table::fmt(p, 2),
                   Table::fmt(static_cast<double>(connected) / trials, 2),
                   Table::fmt(components.mean(), 1), Table::fmt(isolated.mean(), 5)});
  }
  table.print(
      "E7b: hypercube connectivity across p = 1/2 (Erdos-Spencer threshold; n=" +
      std::to_string(n) + ")");
  if (const auto path = options.csv_path("e7_hypercube_connectivity")) {
    table.write_csv(*path);
  }
}

void mesh_thresholds(const sim::Options& options) {
  Table table({"d", "side", "estimated_p_c", "reference"});
  ThresholdConfig config;
  config.target_fraction = 0.25;
  config.trials_per_point = options.quick ? 4 : 8;
  config.tolerance = 0.004;
  config.seed = options.seed;

  {
    const int side = options.quick ? 32 : 64;
    const auto order = [side](double p, std::uint64_t seed) {
      const Mesh g(2, side, /*wrap=*/true);
      return analyze_components(g, HashEdgeSampler(p, seed)).largest_fraction();
    };
    const double pc = estimate_threshold(order, 0.25, 0.75, config);
    table.add_row({"2", Table::fmt(side), Table::fmt(pc, 4), "0.5 exact (Kesten)"});
  }
  {
    const int side = options.quick ? 10 : 16;
    const auto order = [side](double p, std::uint64_t seed) {
      const Mesh g(3, side, /*wrap=*/true);
      return analyze_components(g, HashEdgeSampler(p, seed)).largest_fraction();
    };
    const double pc = estimate_threshold(order, 0.1, 0.5, config);
    table.add_row({"3", Table::fmt(side), Table::fmt(pc, 4), "~0.2488 (numerical)"});
  }
  table.print("E7c: mesh bond-percolation thresholds via bisection");
  if (const auto path = options.csv_path("e7_mesh_thresholds")) table.write_csv(*path);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const auto options = faultroute::sim::parse_options(argc, argv);
    hypercube_giant(options);
    hypercube_connectivity(options);
    mesh_thresholds(options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_giant_component: %s\n", e.what());
    return 1;
  }
  return 0;
}
