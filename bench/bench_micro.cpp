// Micro-benchmarks (google-benchmark) of the substrate hot paths: the lazy
// percolation sampler, union-find, BFS primitives and router inner loops.
// These are engineering baselines, not experiment reproductions.

#include <benchmark/benchmark.h>

#include "core/probe_context.hpp"
#include "core/routers/flood_router.hpp"
#include "core/routers/landmark_router.hpp"
#include "graph/hypercube.hpp"
#include "graph/mesh.hpp"
#include "percolation/cluster_analysis.hpp"
#include "percolation/edge_sampler.hpp"
#include "percolation/galton_watson.hpp"
#include "percolation/union_find.hpp"
#include "random/rng.hpp"

namespace {

using namespace faultroute;

void BM_HashSamplerProbe(benchmark::State& state) {
  const HashEdgeSampler sampler(0.5, 42);
  EdgeKey key = 0;
  std::uint64_t opens = 0;
  for (auto _ : state) {
    opens += sampler.is_open(key++) ? 1 : 0;
  }
  benchmark::DoNotOptimize(opens);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HashSamplerProbe);

void BM_Mix64(benchmark::State& state) {
  std::uint64_t x = 1;
  for (auto _ : state) {
    x = mix64(x);
  }
  benchmark::DoNotOptimize(x);
}
BENCHMARK(BM_Mix64);

void BM_XoshiroDraw(benchmark::State& state) {
  Rng rng(7);
  std::uint64_t acc = 0;
  for (auto _ : state) acc += rng();
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_XoshiroDraw);

void BM_UnionFind(benchmark::State& state) {
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  Rng rng(3);
  for (auto _ : state) {
    UnionFind dsu(n);
    for (std::uint64_t i = 0; i + 1 < n; ++i) {
      dsu.unite(uniform_below(rng, n), uniform_below(rng, n));
    }
    benchmark::DoNotOptimize(dsu.num_components());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_UnionFind)->Arg(1 << 10)->Arg(1 << 14);

void BM_ClusterAnalysisMesh(benchmark::State& state) {
  const Mesh mesh(2, state.range(0));
  const HashEdgeSampler sampler(0.6, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_components(mesh, sampler).largest);
  }
}
BENCHMARK(BM_ClusterAnalysisMesh)->Arg(32)->Arg(128);

void BM_OpenClusterBfsHypercube(benchmark::State& state) {
  const Hypercube cube(static_cast<int>(state.range(0)));
  const HashEdgeSampler sampler(2.0 / static_cast<double>(state.range(0)), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(open_cluster_of(cube, sampler, 0).size());
  }
}
BENCHMARK(BM_OpenClusterBfsHypercube)->Arg(12)->Arg(16);

void BM_FloodRouteMesh(benchmark::State& state) {
  const Mesh mesh(2, 32);
  const HashEdgeSampler sampler(0.7, 9);
  FloodRouter router;
  for (auto _ : state) {
    ProbeContext ctx(mesh, sampler, 0, RoutingMode::kLocal);
    benchmark::DoNotOptimize(router.route(ctx, 0, mesh.num_vertices() - 1));
  }
}
BENCHMARK(BM_FloodRouteMesh);

void BM_LandmarkRouteMesh(benchmark::State& state) {
  const Mesh mesh(2, 32);
  const HashEdgeSampler sampler(0.7, 9);
  LandmarkRouter router;
  for (auto _ : state) {
    ProbeContext ctx(mesh, sampler, 0, RoutingMode::kLocal);
    benchmark::DoNotOptimize(router.route(ctx, 0, mesh.num_vertices() - 1));
  }
}
BENCHMARK(BM_LandmarkRouteMesh);

void BM_GaltonWatsonProgeny(benchmark::State& state) {
  const BinaryGaltonWatson gw(0.45);
  Rng rng(13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gw.simulate_total_progeny(rng, 1 << 16));
  }
}
BENCHMARK(BM_GaltonWatsonProgeny);

}  // namespace

BENCHMARK_MAIN();
