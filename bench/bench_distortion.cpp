// E10 — the Angel-Benjamini metric-distortion picture behind Theorem 3.
//
// [3] proves: for p = n^{-alpha} with alpha < 1/2 the hypercube embeds in
// its percolation with constant distortion, while for alpha > 1/2 it cannot.
// We measure the percolation-distance stretch D(u,v)/d(u,v) for random pairs
// in the giant component across alpha: the stretch should stay O(1) below
// alpha = 1/2 and grow sharply above it.

#include <cstdio>
#include <exception>

#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "graph/hypercube.hpp"
#include "percolation/chemical_distance.hpp"
#include "percolation/edge_sampler.hpp"
#include "random/rng.hpp"
#include "sim/options.hpp"
#include "sim/sweep.hpp"

namespace {

using namespace faultroute;

void run(const sim::Options& options) {
  const int n = options.quick ? 12 : 14;
  const Hypercube cube(n);
  const std::vector<double> alphas = {0.30, 0.45, 0.55, 0.70};
  const int trials = options.trials_or(40);

  Table table({"alpha", "p", "pairs", "mean_stretch", "median_stretch", "q90_stretch",
               "disconnected_frac"});
  for (const double alpha : alphas) {
    const double p = sim::p_for_alpha(n, alpha);
    Summary stretch;
    int disconnected = 0;
    int sampled = 0;
    for (int t = 0; t < trials; ++t) {
      const std::uint64_t seed =
          derive_seed(options.seed, static_cast<std::uint64_t>(alpha * 1000) * 10000 +
                                        static_cast<std::uint64_t>(t));
      const HashEdgeSampler sampler(p, seed);
      Rng rng(seed ^ 0xabcdefULL);
      // A random pair at Hamming distance >= n/2 (long-range stretch is the
      // regime [3] speaks to).
      const VertexId u = uniform_below(rng, cube.num_vertices());
      VertexId v = u;
      while (cube.distance(u, v) < static_cast<std::uint64_t>(n) / 2) {
        v = uniform_below(rng, cube.num_vertices());
      }
      ++sampled;
      const auto d = chemical_distance(cube, sampler, u, v);
      if (!d.has_value()) {
        ++disconnected;
        continue;
      }
      stretch.add(static_cast<double>(*d) / static_cast<double>(cube.distance(u, v)));
    }
    table.add_row({Table::fmt(alpha, 2), Table::fmt(p, 4), Table::fmt(sampled),
                   Table::fmt(stretch.mean(), 2), Table::fmt(stretch.median(), 2),
                   Table::fmt(stretch.quantile(0.9), 2),
                   Table::fmt(static_cast<double>(disconnected) / sampled, 2)});
  }
  table.print(
      "E10: hypercube percolation-distance stretch vs alpha, n = " + std::to_string(n) +
      " ([3]: constant distortion for alpha < 1/2, unbounded above)");
  if (const auto path = options.csv_path("e10_distortion")) table.write_csv(*path);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    run(faultroute::sim::parse_options(argc, argv));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_distortion: %s\n", e.what());
    return 1;
  }
  return 0;
}
