// bench_adjacency — A/B benchmark of the flat CSR adjacency snapshot
// (graph/flat_adjacency.hpp) against the implicit virtual Topology
// interface it shortcuts, flipped via TrafficConfig::adjacency (and the
// AdjacencyMode parameter of the percolation analyses).
//
// Two workload families:
//
//  * traffic: the repository's six curated scenario sweeps (scenarios/*.scn)
//    — the exact cell grid and seeding the scenario runner executes — with
//    the routing phase timed through TrafficConfig::timings, once per
//    backend. This is the same protocol as bench_routing, with the probe
//    -state backend held fixed (dense) and only the adjacency backend
//    flipped.
//  * percolation: a giant-component sweep (ClusterDecomposition over every
//    edge) and a chemical-distance sweep (BFS per random pair), the
//    analyses rewritten over CSR rows with epoch-stamped visited arrays.
//
// Per-scenario times are summed over cells, best of --reps repetitions;
// outcomes of the two backends are cross-checked on every cell and the
// process fails on any mismatch, so the bench doubles as an equivalence
// test at scales the unit suite cannot afford.
//
//   bench_adjacency [--quick] [--json] [--out PATH] [--reps N] [--scenarios DIR]
//
// --json emits one machine-readable object (schema
// faultroute.bench.adjacency.v1, validated in CI by
// scripts/check_bench_schema.py); the committed full-run perf record lives
// in BENCH_adjacency.json at the repo root, next to BENCH_traffic.json and
// BENCH_routing.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "obs/schemas.hpp"
#include "obs/build_info.hpp"
#include "graph/flat_adjacency.hpp"
#include "percolation/chemical_distance.hpp"
#include "percolation/cluster_analysis.hpp"
#include "random/rng.hpp"
#include "scenario/spec.hpp"
#include "sim/registry.hpp"
#include "traffic/traffic_engine.hpp"
#include "traffic/workload.hpp"

namespace {

using namespace faultroute;

#ifndef FAULTROUTE_SOURCE_DIR
#define FAULTROUTE_SOURCE_DIR "."
#endif

/// The curated sweeps, in the golden suite's order.
const std::vector<std::string> kScenarioStems = {
    "bisection_topologies", "debruijn_router_shootout", "gnp_oracle_gap",
    "hotspot_meltdown",     "hypercube_phase",          "mesh_poisson_load",
};

struct BenchOptions {
  bool quick = false;
  bool json = false;
  std::string out_path;
  std::string scenarios_dir = std::string(FAULTROUTE_SOURCE_DIR) + "/scenarios";
  int reps = 0;  // 0 = default (2 full, 1 quick)
};

BenchOptions parse_args(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const std::string& flag) -> std::string {
      if (arg.size() > flag.size() + 1 && arg.rfind(flag + "=", 0) == 0) {
        return arg.substr(flag.size() + 1);
      }
      if (arg == flag && i + 1 < argc) return argv[++i];
      throw std::invalid_argument("bench_adjacency: " + flag + " needs a value");
    };
    if (arg == "--quick") {
      options.quick = true;
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--out" || arg.rfind("--out=", 0) == 0) {
      options.out_path = value_of("--out");
    } else if (arg == "--scenarios" || arg.rfind("--scenarios=", 0) == 0) {
      options.scenarios_dir = value_of("--scenarios");
    } else if (arg == "--reps" || arg.rfind("--reps=", 0) == 0) {
      options.reps = std::stoi(value_of("--reps"));
    } else {
      throw std::invalid_argument("bench_adjacency: unknown flag '" + arg +
                                  "' (known: --quick --json --out --reps --scenarios)");
    }
  }
  return options;
}

struct BenchResult {
  std::string name;
  std::string kind;  // "traffic" or "percolation"
  std::uint64_t cells = 0;
  double flat_ms = 0.0;
  double implicit_ms = 0.0;
  bool identical = true;
  [[nodiscard]] double speedup() const {
    return flat_ms > 0.0 ? implicit_ms / flat_ms : 0.0;
  }
};

double ms_since(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - since)
      .count();
}

/// The backends must agree on everything observable.
bool results_identical(const TrafficResult& a, const TrafficResult& b) {
  if (a.routed != b.routed || a.failed_routing != b.failed_routing ||
      a.censored != b.censored || a.invalid_paths != b.invalid_paths ||
      a.delivered != b.delivered || a.stranded != b.stranded ||
      a.total_distinct_probes != b.total_distinct_probes ||
      a.unique_edges_probed != b.unique_edges_probed || a.makespan != b.makespan ||
      a.max_edge_load != b.max_edge_load || a.edges_used != b.edges_used ||
      a.mean_edge_load != b.mean_edge_load ||
      a.mean_queueing_delay != b.mean_queueing_delay ||
      a.max_queueing_delay != b.max_queueing_delay ||
      a.mean_path_edges != b.mean_path_edges || a.sim_steps != b.sim_steps ||
      a.admission_events != b.admission_events || a.transmissions != b.transmissions ||
      a.peak_active_channels != b.peak_active_channels ||
      a.outcomes.size() != b.outcomes.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    if (a.outcomes[i].routed != b.outcomes[i].routed ||
        a.outcomes[i].censored != b.outcomes[i].censored ||
        a.outcomes[i].delivered != b.outcomes[i].delivered ||
        a.outcomes[i].distinct_probes != b.outcomes[i].distinct_probes ||
        a.outcomes[i].path_edges != b.outcomes[i].path_edges ||
        a.outcomes[i].finish_time != b.outcomes[i].finish_time ||
        a.outcomes[i].queueing_delay != b.outcomes[i].queueing_delay) {
      return false;
    }
  }
  return true;
}

BenchResult run_traffic_bench(const std::string& stem, const BenchOptions& options) {
  scenario::ScenarioSpec spec =
      scenario::load_scenario_file(options.scenarios_dir + "/" + stem + ".scn");
  // Clamp to bench scale exactly as bench_routing does: --quick is CI-smoke
  // size, the full run keeps message volume but trims trials.
  if (options.quick) {
    spec.messages = std::min<std::uint64_t>(spec.messages, 64);
    spec.trials = std::min<std::uint64_t>(spec.trials, 1);
  } else {
    spec.messages = std::min<std::uint64_t>(spec.messages, 512);
    spec.trials = std::min<std::uint64_t>(spec.trials, 2);
  }
  scenario::validate_scenario(spec);

  std::vector<std::unique_ptr<Topology>> topologies;
  for (const auto& topo_spec : spec.topologies) {
    topologies.push_back(sim::make_topology(topo_spec));
    // Pre-warm the cached snapshot so the timed region measures steady-state
    // resolution, not the one-time O(channels) build.
    (void)topologies.back()->flat_adjacency();
  }

  BenchResult result;
  result.name = spec.name;
  result.kind = "traffic";

  const int reps = options.reps > 0 ? options.reps : (options.quick ? 1 : 2);
  for (int rep = 0; rep < reps; ++rep) {
    double flat_ms = 0.0;
    double implicit_ms = 0.0;
    std::uint64_t index = 0;
    // The scenario runner's exact cell grid and seeding contract.
    for (std::size_t ti = 0; ti < topologies.size(); ++ti) {
      for (const double p : spec.p_values) {
        for (const auto& router : spec.routers) {
          for (const auto& workload_spec : spec.workloads) {
            for (std::uint64_t trial = 0; trial < spec.trials; ++trial, ++index) {
              const Topology& topology = *topologies[ti];
              WorkloadConfig workload = sim::make_workload(workload_spec);
              workload.messages = spec.messages;
              workload.seed = derive_seed(spec.seed, 2 * index + 1);
              const auto messages = generate_workload(topology, workload);

              TrafficConfig config;
              config.edge_capacity = spec.edge_capacity;
              if (spec.probe_budget > 0) config.probe_budget = spec.probe_budget;
              config.max_steps = spec.max_steps;
              config.threads = 1;
              const HashEdgeSampler environment(p, derive_seed(spec.seed, 2 * index));
              const auto factory = [&]() { return sim::make_router(router, topology); };

              TrafficPhaseTimings flat_timings;
              TrafficConfig flat = config;
              flat.adjacency = AdjacencyMode::kFlat;
              flat.timings = &flat_timings;
              const TrafficResult flat_run =
                  run_traffic(topology, environment, factory, messages, flat);
              flat_ms += flat_timings.routing_ms;

              TrafficPhaseTimings implicit_timings;
              TrafficConfig implicit = config;
              implicit.adjacency = AdjacencyMode::kImplicit;
              implicit.timings = &implicit_timings;
              const TrafficResult implicit_run =
                  run_traffic(topology, environment, factory, messages, implicit);
              implicit_ms += implicit_timings.routing_ms;

              if (rep == 0) {
                result.identical =
                    result.identical && results_identical(flat_run, implicit_run);
              }
            }
          }
        }
      }
    }
    if (rep == 0 || flat_ms < result.flat_ms) result.flat_ms = flat_ms;
    if (rep == 0 || implicit_ms < result.implicit_ms) result.implicit_ms = implicit_ms;
    result.cells = index;
  }
  return result;
}

/// Giant-component sweep: full cluster decompositions (every edge queried)
/// across topology families and p values, flat vs implicit.
BenchResult run_giant_component_bench(const BenchOptions& options) {
  BenchResult result;
  result.name = "giant-component";
  result.kind = "percolation";

  const std::vector<std::string> topo_specs = {"hypercube:11", "torus:2:48", "de_bruijn:11"};
  const std::vector<double> p_values = {0.3, 0.5, 0.7};
  const int trials = options.quick ? 1 : 4;
  const int reps = options.reps > 0 ? options.reps : (options.quick ? 1 : 2);

  std::vector<std::unique_ptr<Topology>> topologies;
  for (const auto& spec : topo_specs) {
    topologies.push_back(sim::make_topology(spec));
    (void)topologies.back()->flat_adjacency();  // pre-warm the snapshot
  }

  for (int rep = 0; rep < reps; ++rep) {
    double flat_ms = 0.0;
    double implicit_ms = 0.0;
    std::uint64_t cells = 0;
    std::uint64_t index = 0;
    for (const auto& topology : topologies) {
      for (const double p : p_values) {
        for (int trial = 0; trial < trials; ++trial, ++index) {
          const HashEdgeSampler environment(p, derive_seed(20050701, index));

          const auto flat_start = std::chrono::steady_clock::now();
          const ComponentSummary flat_summary =
              analyze_components(*topology, environment, AdjacencyMode::kFlat);
          flat_ms += ms_since(flat_start);

          const auto implicit_start = std::chrono::steady_clock::now();
          const ComponentSummary implicit_summary =
              analyze_components(*topology, environment, AdjacencyMode::kImplicit);
          implicit_ms += ms_since(implicit_start);

          if (rep == 0) {
            result.identical = result.identical &&
                               flat_summary.num_open_edges == implicit_summary.num_open_edges &&
                               flat_summary.num_components == implicit_summary.num_components &&
                               flat_summary.largest == implicit_summary.largest &&
                               flat_summary.second_largest == implicit_summary.second_largest;
          }
          ++cells;
        }
      }
    }
    if (rep == 0 || flat_ms < result.flat_ms) result.flat_ms = flat_ms;
    if (rep == 0 || implicit_ms < result.implicit_ms) result.implicit_ms = implicit_ms;
    result.cells = cells;
  }
  return result;
}

/// Chemical-distance sweep: shortest-open-path BFS per random pair in a
/// supercritical torus, flat vs implicit.
BenchResult run_chemical_distance_bench(const BenchOptions& options) {
  BenchResult result;
  result.name = "chemical-distance";
  result.kind = "percolation";

  const auto topology = sim::make_topology(options.quick ? "torus:2:32" : "torus:2:64");
  (void)topology->flat_adjacency();  // pre-warm the snapshot
  const std::vector<double> p_values = {0.55, 0.65, 0.8};
  const std::uint64_t pairs = options.quick ? 32 : 256;
  const int reps = options.reps > 0 ? options.reps : (options.quick ? 1 : 2);
  const std::uint64_t n = topology->num_vertices();

  for (int rep = 0; rep < reps; ++rep) {
    double flat_ms = 0.0;
    double implicit_ms = 0.0;
    std::uint64_t cells = 0;
    std::uint64_t env_index = 0;
    for (const double p : p_values) {
      const HashEdgeSampler environment(p, derive_seed(20050701, 1000 + env_index++));
      Rng pair_rng(7);
      for (std::uint64_t k = 0; k < pairs; ++k) {
        const VertexId u = uniform_below(pair_rng, n);
        const VertexId v = uniform_below(pair_rng, n);

        const auto flat_start = std::chrono::steady_clock::now();
        const ChemicalPathResult flat_run =
            chemical_path(*topology, environment, u, v, 0, AdjacencyMode::kFlat);
        flat_ms += ms_since(flat_start);

        const auto implicit_start = std::chrono::steady_clock::now();
        const ChemicalPathResult implicit_run =
            chemical_path(*topology, environment, u, v, 0, AdjacencyMode::kImplicit);
        implicit_ms += ms_since(implicit_start);

        if (rep == 0) {
          result.identical = result.identical &&
                             flat_run.distance == implicit_run.distance &&
                             flat_run.path == implicit_run.path;
        }
        ++cells;
      }
    }
    if (rep == 0 || flat_ms < result.flat_ms) result.flat_ms = flat_ms;
    if (rep == 0 || implicit_ms < result.implicit_ms) result.implicit_ms = implicit_ms;
    result.cells = cells;
  }
  return result;
}

std::string json_report(const std::vector<BenchResult>& results, const BenchOptions& options) {
  std::ostringstream out;
  out.precision(6);
  out << std::fixed;
  out << "{\"schema\":\"" << obs::schemas::kBenchAdjacency
      << "\",\"schema_version\":" << obs::schemas::kBenchVersion
      << ",\"provenance\":" << obs::provenance_json("bench_adjacency")
      << ",\"quick\":" << (options.quick ? "true" : "false") << ",\"benchmarks\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    if (i > 0) out << ',';
    out << "{\"name\":\"" << r.name << "\",\"kind\":\"" << r.kind
        << "\",\"cells\":" << r.cells << ",\"flat_ms\":" << r.flat_ms
        << ",\"implicit_ms\":" << r.implicit_ms << ",\"speedup\":" << r.speedup()
        << ",\"identical\":" << (r.identical ? "true" : "false") << '}';
  }
  out << "]}\n";
  return out.str();
}

int run(const BenchOptions& options) {
  std::vector<BenchResult> results;
  results.reserve(kScenarioStems.size() + 2);
  for (const std::string& stem : kScenarioStems) {
    results.push_back(run_traffic_bench(stem, options));
  }
  results.push_back(run_giant_component_bench(options));
  results.push_back(run_chemical_distance_bench(options));

  bool all_identical = true;
  for (const BenchResult& r : results) all_identical = all_identical && r.identical;

  if (options.json) {
    const std::string report = json_report(results, options);
    if (options.out_path.empty()) {
      std::cout << report;
    } else {
      std::ofstream out(options.out_path);
      if (!out) throw std::runtime_error("cannot write --out file '" + options.out_path + "'");
      out << report;
    }
  } else {
    Table table({"benchmark", "kind", "cells", "implicit_ms", "flat_ms", "speedup",
                 "identical"});
    for (const BenchResult& r : results) {
      table.add_row({r.name, r.kind, Table::fmt(r.cells), Table::fmt(r.implicit_ms, 1),
                     Table::fmt(r.flat_ms, 1), Table::fmt(r.speedup(), 2),
                     r.identical ? "yes" : "NO"});
    }
    table.print("adjacency A/B: flat CSR snapshot vs implicit virtual interface");
  }

  if (!all_identical) {
    std::fprintf(stderr, "bench_adjacency: BACKENDS DISAGREE — see 'identical' column\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(parse_args(argc, argv));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_adjacency: %s\n", e.what());
    return 1;
  }
}
