// T1 — store-and-forward traffic over percolated networks.
//
// The paper measures single-pair routing complexity and explicitly sets
// aside the "full blown routing scheme" question of the emulation
// literature: what congestion and delay do many concurrent messages induce?
// This sweep answers it empirically for the registry topologies: a scenario
// matrix of workloads per topology, plus two scaling studies —
//   (a) probe amortisation: per-message discovery cost under the shared
//       probe cache as the batch grows (the hot-path optimisation), and
//   (b) open-loop load sweep: queueing delay versus Poisson arrival rate
//       through the saturation knee.

#include <cstdio>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "core/routers/greedy_router.hpp"
#include "random/rng.hpp"
#include "sim/options.hpp"
#include "sim/registry.hpp"
#include "traffic/traffic_engine.hpp"
#include "traffic/workload.hpp"

namespace {

using namespace faultroute;

RouterFactory best_first_factory() {
  return [] { return std::make_unique<BestFirstRouter>(); };
}

void scenario_matrix(const sim::Options& options) {
  // (spec, messages): topologies without a closed-form metric (de Bruijn,
  // butterfly, CCC) fall back to BFS in Topology::distance, which the
  // best-first router calls per expansion — keep their batches small.
  using Scenario = std::pair<std::string, std::uint64_t>;
  const std::vector<Scenario> topologies =
      options.quick ? std::vector<Scenario>{{"hypercube:8", 256}, {"torus:2:16", 256}}
                    : std::vector<Scenario>{{"hypercube:10", 1024},
                                            {"torus:2:32", 1024},
                                            {"de_bruijn:9", 192},
                                            {"butterfly:6", 192},
                                            {"ccc:6", 192}};

  Table table({"topology", "workload", "delivered", "max_load", "mean_qdelay", "makespan",
               "throughput", "amortization"});
  for (const auto& [spec, messages] : topologies) {
    const auto graph = sim::make_topology(spec);
    const HashEdgeSampler env(0.6, derive_seed(options.seed, 1));
    for (const auto& workload_name : workload_names()) {
      WorkloadConfig workload;
      workload.kind = parse_workload(workload_name);
      workload.messages = messages;
      workload.seed = derive_seed(options.seed, 2);
      const auto batch = generate_workload(*graph, workload);
      const TrafficResult r =
          run_traffic(*graph, env, best_first_factory(), batch, TrafficConfig{});
      table.add_row({spec, workload_name, Table::fmt(r.delivered),
                     Table::fmt(r.max_edge_load), Table::fmt(r.mean_queueing_delay, 2),
                     Table::fmt(r.makespan), Table::fmt(r.throughput(), 2),
                     Table::fmt(r.probe_amortization(), 2)});
    }
  }
  table.print("T1a: workload matrix at p=0.6 (best-first router, capacity 1)");
  if (const auto path = options.csv_path("t1a_workload_matrix")) table.write_csv(*path);
}

void amortisation_sweep(const sim::Options& options) {
  const auto graph = sim::make_topology(options.quick ? "hypercube:8" : "hypercube:10");
  const HashEdgeSampler env(0.6, derive_seed(options.seed, 3));
  const std::vector<std::uint64_t> batch_sizes =
      options.quick ? std::vector<std::uint64_t>{32, 128, 512}
                    : std::vector<std::uint64_t>{64, 256, 1024, 4096};

  Table table({"messages", "unique_edges", "total_probes", "probes/msg", "unique/msg",
               "amortization"});
  for (const std::uint64_t messages : batch_sizes) {
    WorkloadConfig workload;
    workload.kind = WorkloadKind::kRandomPairs;
    workload.messages = messages;
    workload.seed = derive_seed(options.seed, 4);
    const TrafficResult r = run_traffic(*graph, env, best_first_factory(),
                                        generate_workload(*graph, workload), TrafficConfig{});
    const double m = static_cast<double>(messages);
    table.add_row({Table::fmt(messages), Table::fmt(r.unique_edges_probed),
                   Table::fmt(r.total_distinct_probes),
                   Table::fmt(static_cast<double>(r.total_distinct_probes) / m, 1),
                   Table::fmt(static_cast<double>(r.unique_edges_probed) / m, 1),
                   Table::fmt(r.probe_amortization(), 2)});
  }
  table.print("T1b: shared-cache amortisation — discovery cost per message vs batch size");
  if (const auto path = options.csv_path("t1b_amortisation")) table.write_csv(*path);
}

void load_sweep(const sim::Options& options) {
  const auto graph = sim::make_topology(options.quick ? "torus:2:16" : "torus:2:32");
  const HashEdgeSampler env(0.7, derive_seed(options.seed, 5));
  const std::uint64_t messages = options.quick ? 256 : 1024;

  Table table({"rate", "delivered", "mean_qdelay", "max_qdelay", "makespan", "throughput"});
  for (const double rate : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    WorkloadConfig workload;
    workload.kind = WorkloadKind::kPoisson;
    workload.messages = messages;
    workload.arrival_rate = rate;
    workload.seed = derive_seed(options.seed, 6);
    const TrafficResult r = run_traffic(*graph, env, best_first_factory(),
                                        generate_workload(*graph, workload), TrafficConfig{});
    table.add_row({Table::fmt(rate, 2), Table::fmt(r.delivered),
                   Table::fmt(r.mean_queueing_delay, 2), Table::fmt(r.max_queueing_delay),
                   Table::fmt(r.makespan), Table::fmt(r.throughput(), 2)});
  }
  table.print("T1c: open-loop Poisson load sweep — delay through the saturation knee");
  if (const auto path = options.csv_path("t1c_load_sweep")) table.write_csv(*path);
}

void run(const sim::Options& options) {
  scenario_matrix(options);
  amortisation_sweep(options);
  load_sweep(options);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    run(faultroute::sim::parse_options(argc, argv));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_traffic: %s\n", e.what());
    return 1;
  }
  return 0;
}
