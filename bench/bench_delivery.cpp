// bench_delivery — A/B benchmark of the delivery phase: the event-driven
// flat-channel engine (run_traffic) against the legacy container-based
// engine (run_traffic_reference) on delivery-dominated workloads:
//
//   * poisson-long-horizon: an open-loop Poisson stream on a faulty torus,
//     tens of thousands of timesteps — the regime the rewrite targets, where
//     the old engine pays std::map/std::set node churn on every step.
//   * hotspot-drain: all-to-one on a line, serialising every message through
//     one edge — deep FIFO queues, few channels, maximal queue pressure.
//   * permutation-burst: the paper's closed-loop permutation batch on the
//     percolated hypercube — everything injected at t=0.
//
// Both engines share phase 1 (routing) verbatim, so the quantity of
// interest is the *delivery phase*. Each engine reports its phase wall
// times directly through TrafficConfig::timings (no noisy subtraction of
// two end-to-end measurements); `speedup` is the delivery-phase ratio, and
// end-to-end times are reported alongside so nothing hides (on a one-core
// runner the shared routing phase dwarfs delivery). Metrics are
// cross-checked and the process fails if the engines ever disagree, so the
// bench doubles as a coarse golden test at scales the unit suite cannot
// afford.
//
//   bench_delivery [--quick] [--json] [--out PATH] [--seed S] [--reps N]
//
// --json emits one machine-readable object (schema
// faultroute.bench.delivery.v1, validated in CI by
// scripts/check_bench_schema.py); the committed perf trajectory lives in
// BENCH_traffic.json at the repo root.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "obs/schemas.hpp"
#include "obs/build_info.hpp"
#include "core/routers/greedy_router.hpp"
#include "random/rng.hpp"
#include "sim/registry.hpp"
#include "traffic/traffic_engine.hpp"
#include "traffic/workload.hpp"

namespace {

using namespace faultroute;

struct BenchOptions {
  bool quick = false;
  bool json = false;
  std::string out_path;
  std::uint64_t seed = 20050701;
  int reps = 0;  // 0 = default (3 full, 1 quick)
};

BenchOptions parse_args(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const std::string& flag) -> std::string {
      if (arg.size() > flag.size() + 1 && arg.rfind(flag + "=", 0) == 0) {
        return arg.substr(flag.size() + 1);
      }
      if (arg == flag && i + 1 < argc) return argv[++i];
      throw std::invalid_argument("bench_delivery: " + flag + " needs a value");
    };
    if (arg == "--quick") {
      options.quick = true;
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--out" || arg.rfind("--out=", 0) == 0) {
      options.out_path = value_of("--out");
    } else if (arg == "--seed" || arg.rfind("--seed=", 0) == 0) {
      options.seed = std::stoull(value_of("--seed"));
    } else if (arg == "--reps" || arg.rfind("--reps=", 0) == 0) {
      options.reps = std::stoi(value_of("--reps"));
    } else {
      throw std::invalid_argument("bench_delivery: unknown flag '" + arg +
                                  "' (known: --quick --json --out --seed --reps)");
    }
  }
  return options;
}

struct BenchCase {
  std::string name;
  std::string topology;
  std::string workload;  // registry spec, e.g. "poisson:1"
  double p;
  std::uint64_t messages;
  std::uint64_t capacity = 1;
};

struct BenchResult {
  BenchCase spec;
  TrafficResult traffic;        // from the event engine
  double routing_ms = 0.0;      // shared phase 1 (reported by the event engine)
  double event_delivery_ms = 0.0;
  double reference_delivery_ms = 0.0;
  double event_ms = 0.0;      // end-to-end, for context
  double reference_ms = 0.0;  // end-to-end, for context
  bool identical = false;
  /// Delivery-phase speedup (the rewrite's target metric).
  [[nodiscard]] double speedup() const {
    return event_delivery_ms > 0.0 ? reference_delivery_ms / event_delivery_ms : 0.0;
  }
  [[nodiscard]] double end_to_end_speedup() const {
    return event_ms > 0.0 ? reference_ms / event_ms : 0.0;
  }
};

/// The engines must agree on everything observable (only the `channels`
/// introspection counter legitimately differs).
bool results_identical(const TrafficResult& a, const TrafficResult& b) {
  if (a.routed != b.routed || a.failed_routing != b.failed_routing ||
      a.censored != b.censored || a.invalid_paths != b.invalid_paths ||
      a.delivered != b.delivered || a.stranded != b.stranded ||
      a.total_distinct_probes != b.total_distinct_probes ||
      a.unique_edges_probed != b.unique_edges_probed || a.makespan != b.makespan ||
      a.max_edge_load != b.max_edge_load || a.edges_used != b.edges_used ||
      a.mean_edge_load != b.mean_edge_load ||
      a.mean_queueing_delay != b.mean_queueing_delay ||
      a.max_queueing_delay != b.max_queueing_delay ||
      a.mean_path_edges != b.mean_path_edges || a.sim_steps != b.sim_steps ||
      a.admission_events != b.admission_events || a.transmissions != b.transmissions ||
      a.peak_active_channels != b.peak_active_channels ||
      a.outcomes.size() != b.outcomes.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    if (a.outcomes[i].routed != b.outcomes[i].routed ||
        a.outcomes[i].censored != b.outcomes[i].censored ||
        a.outcomes[i].delivered != b.outcomes[i].delivered ||
        a.outcomes[i].path_edges != b.outcomes[i].path_edges ||
        a.outcomes[i].finish_time != b.outcomes[i].finish_time ||
        a.outcomes[i].queueing_delay != b.outcomes[i].queueing_delay) {
      return false;
    }
  }
  return true;
}

/// Runs `engine` `reps` times; keeps the best delivery-phase time and the
/// matching routing/end-to-end times from that repetition.
template <typename Engine>
void best_delivery_run(int reps, const Engine& engine, double& routing_ms,
                       double& delivery_ms, double& total_ms) {
  for (int rep = 0; rep < reps; ++rep) {
    TrafficPhaseTimings timings;
    const auto start = std::chrono::steady_clock::now();
    (void)engine(&timings);
    const auto stop = std::chrono::steady_clock::now();
    if (rep == 0 || timings.delivery_ms < delivery_ms) {
      routing_ms = timings.routing_ms;
      delivery_ms = timings.delivery_ms;
      total_ms = std::chrono::duration<double, std::milli>(stop - start).count();
    }
  }
}

BenchResult run_case(const BenchCase& spec, const BenchOptions& options) {
  const auto graph = sim::make_topology(spec.topology);
  const HashEdgeSampler env(spec.p, derive_seed(options.seed, 1));
  WorkloadConfig workload = sim::make_workload(spec.workload);
  workload.messages = spec.messages;
  workload.seed = derive_seed(options.seed, 2);
  const auto messages = generate_workload(*graph, workload);
  TrafficConfig config;
  config.edge_capacity = spec.capacity;
  const auto factory = [&]() { return std::make_unique<BestFirstRouter>(); };

  BenchResult result;
  result.spec = spec;
  result.traffic = run_traffic(*graph, env, factory, messages, config);  // warm + verify
  const TrafficResult reference = run_traffic_reference(*graph, env, factory, messages, config);
  result.identical = results_identical(result.traffic, reference);

  const int reps = options.reps > 0 ? options.reps : (options.quick ? 1 : 3);
  double reference_routing_ms = 0.0;  // shared phase; the event engine's figure is reported
  best_delivery_run(reps,
                    [&](TrafficPhaseTimings* timings) {
                      TrafficConfig timed = config;
                      timed.timings = timings;
                      return run_traffic(*graph, env, factory, messages, timed);
                    },
                    result.routing_ms, result.event_delivery_ms, result.event_ms);
  best_delivery_run(reps,
                    [&](TrafficPhaseTimings* timings) {
                      TrafficConfig timed = config;
                      timed.timings = timings;
                      return run_traffic_reference(*graph, env, factory, messages, timed);
                    },
                    reference_routing_ms, result.reference_delivery_ms, result.reference_ms);
  return result;
}

std::string json_report(const std::vector<BenchResult>& results, const BenchOptions& options) {
  std::ostringstream out;
  out.precision(6);
  out << std::fixed;
  out << "{\"schema\":\"" << obs::schemas::kBenchDelivery
      << "\",\"schema_version\":" << obs::schemas::kBenchVersion
      << ",\"provenance\":" << obs::provenance_json("bench_delivery")
      << ",\"quick\":" << (options.quick ? "true" : "false") << ",\"seed\":" << options.seed
      << ",\"benchmarks\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    if (i > 0) out << ',';
    out << "{\"name\":\"" << r.spec.name << "\",\"topology\":\"" << r.spec.topology
        << "\",\"workload\":\"" << r.spec.workload << "\",\"p\":" << r.spec.p
        << ",\"messages\":" << r.spec.messages << ",\"capacity\":" << r.spec.capacity
        << ",\"routed\":" << r.traffic.routed << ",\"delivered\":" << r.traffic.delivered
        << ",\"makespan\":" << r.traffic.makespan << ",\"sim_steps\":" << r.traffic.sim_steps
        << ",\"transmissions\":" << r.traffic.transmissions
        << ",\"channels\":" << r.traffic.channels << ",\"routing_ms\":" << r.routing_ms
        << ",\"event_ms\":" << r.event_ms << ",\"reference_ms\":" << r.reference_ms
        << ",\"event_delivery_ms\":" << r.event_delivery_ms
        << ",\"reference_delivery_ms\":" << r.reference_delivery_ms
        << ",\"speedup\":" << r.speedup()
        << ",\"end_to_end_speedup\":" << r.end_to_end_speedup()
        << ",\"identical\":" << (r.identical ? "true" : "false") << '}';
  }
  out << "]}\n";
  return out.str();
}

int run(const BenchOptions& options) {
  std::vector<BenchCase> cases;
  if (options.quick) {
    cases = {
        {"poisson-long-horizon", "torus:2:16", "poisson:1", 0.85, 3000},
        {"hotspot-drain", "mesh:1:64", "hotspot:0", 1.0, 2000},
        {"permutation-burst", "hypercube:9", "permutation", 0.6, 2048},
    };
  } else {
    cases = {
        {"poisson-long-horizon", "torus:2:16", "poisson:1", 0.85, 30000},
        {"hotspot-drain", "mesh:1:64", "hotspot:0", 1.0, 16000},
        {"permutation-burst", "hypercube:10", "permutation", 0.6, 8192},
    };
  }

  std::vector<BenchResult> results;
  results.reserve(cases.size());
  bool all_identical = true;
  for (const BenchCase& spec : cases) {
    results.push_back(run_case(spec, options));
    all_identical = all_identical && results.back().identical;
  }

  if (options.json) {
    const std::string report = json_report(results, options);
    if (options.out_path.empty()) {
      std::cout << report;
    } else {
      std::ofstream out(options.out_path);
      if (!out) throw std::runtime_error("cannot write --out file '" + options.out_path + "'");
      out << report;
    }
  } else {
    Table table({"benchmark", "messages", "makespan", "transmissions", "routing_ms",
                 "ref_delivery_ms", "event_delivery_ms", "speedup", "identical"});
    for (const BenchResult& r : results) {
      table.add_row({r.spec.name, Table::fmt(r.spec.messages), Table::fmt(r.traffic.makespan),
                     Table::fmt(r.traffic.transmissions), Table::fmt(r.routing_ms, 1),
                     Table::fmt(r.reference_delivery_ms, 1),
                     Table::fmt(r.event_delivery_ms, 1), Table::fmt(r.speedup(), 2),
                     r.identical ? "yes" : "NO"});
    }
    table.print("delivery engine A/B: legacy containers vs event-driven flat channels");
  }

  if (!all_identical) {
    std::fprintf(stderr, "bench_delivery: ENGINES DISAGREE — see 'identical' column\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(parse_args(argc, argv));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_delivery: %s\n", e.what());
    return 1;
  }
}
