// bench_routing — A/B benchmark of the routing phase: dense probe state
// (epoch-stamped ProbeArena memo + lock-free tri-state SharedProbeCache)
// against the hash-container backend it replaced (per-message
// unordered_map/unordered_set over the retained mutex-sharded
// ShardedProbeCache), flipped via TrafficConfig::dense_probe_state.
//
// The workload is the repository's own curated scenario sweeps
// (scenarios/*.scn) — the exact cell grid and seeding the scenario runner
// executes (row-major index, trial fastest, derive_seed(seed, 2i)/(2i+1)) —
// so the numbers describe the hot path users actually run, across local and
// oracle routers, every topology family, budgets, and all workload kinds.
// Each cell is timed through TrafficConfig::timings (the engine's own
// phase-1 stopwatch: routing + validation + journey compilation; no noisy
// end-to-end subtraction) and per-scenario times are the sum over cells,
// best of --reps repetitions. Outcomes and counters of the two backends
// are cross-checked on every cell and the process fails on any mismatch,
// so the bench doubles as an equivalence test at scales the unit suite
// cannot afford.
//
//   bench_routing [--quick] [--json] [--out PATH] [--reps N] [--scenarios DIR]
//
// --json emits one machine-readable object (schema
// faultroute.bench.routing.v1, validated in CI by
// scripts/check_bench_schema.py); the committed full-run perf record lives
// in BENCH_routing.json at the repo root, next to BENCH_traffic.json.

#include <algorithm>
#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "obs/schemas.hpp"
#include "obs/build_info.hpp"
#include "random/rng.hpp"
#include "scenario/spec.hpp"
#include "sim/registry.hpp"
#include "traffic/traffic_engine.hpp"
#include "traffic/workload.hpp"

namespace {

using namespace faultroute;

#ifndef FAULTROUTE_SOURCE_DIR
#define FAULTROUTE_SOURCE_DIR "."
#endif

/// The curated sweeps, in the golden suite's order.
const std::vector<std::string> kScenarioStems = {
    "bisection_topologies", "debruijn_router_shootout", "gnp_oracle_gap",
    "hotspot_meltdown",     "hypercube_phase",          "mesh_poisson_load",
};

struct BenchOptions {
  bool quick = false;
  bool json = false;
  std::string out_path;
  std::string scenarios_dir = std::string(FAULTROUTE_SOURCE_DIR) + "/scenarios";
  int reps = 0;  // 0 = default (2 full, 1 quick)
};

BenchOptions parse_args(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const std::string& flag) -> std::string {
      if (arg.size() > flag.size() + 1 && arg.rfind(flag + "=", 0) == 0) {
        return arg.substr(flag.size() + 1);
      }
      if (arg == flag && i + 1 < argc) return argv[++i];
      throw std::invalid_argument("bench_routing: " + flag + " needs a value");
    };
    if (arg == "--quick") {
      options.quick = true;
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--out" || arg.rfind("--out=", 0) == 0) {
      options.out_path = value_of("--out");
    } else if (arg == "--scenarios" || arg.rfind("--scenarios=", 0) == 0) {
      options.scenarios_dir = value_of("--scenarios");
    } else if (arg == "--reps" || arg.rfind("--reps=", 0) == 0) {
      options.reps = std::stoi(value_of("--reps"));
    } else {
      throw std::invalid_argument("bench_routing: unknown flag '" + arg +
                                  "' (known: --quick --json --out --reps --scenarios)");
    }
  }
  return options;
}

struct BenchResult {
  std::string name;
  std::uint64_t cells = 0;
  std::uint64_t messages = 0;  // per cell
  std::uint64_t trials = 0;
  std::uint64_t routed = 0;     // summed over cells
  std::uint64_t delivered = 0;  // summed over cells
  std::uint64_t total_distinct_probes = 0;
  std::uint64_t unique_edges_probed = 0;
  double dense_routing_ms = 0.0;
  double hash_routing_ms = 0.0;
  bool identical = true;
  [[nodiscard]] double speedup() const {
    return dense_routing_ms > 0.0 ? hash_routing_ms / dense_routing_ms : 0.0;
  }
};

/// The backends must agree on everything observable.
bool results_identical(const TrafficResult& a, const TrafficResult& b) {
  if (a.routed != b.routed || a.failed_routing != b.failed_routing ||
      a.censored != b.censored || a.invalid_paths != b.invalid_paths ||
      a.delivered != b.delivered || a.stranded != b.stranded ||
      a.total_distinct_probes != b.total_distinct_probes ||
      a.unique_edges_probed != b.unique_edges_probed || a.makespan != b.makespan ||
      a.max_edge_load != b.max_edge_load || a.edges_used != b.edges_used ||
      a.mean_edge_load != b.mean_edge_load ||
      a.mean_queueing_delay != b.mean_queueing_delay ||
      a.max_queueing_delay != b.max_queueing_delay ||
      a.mean_path_edges != b.mean_path_edges || a.sim_steps != b.sim_steps ||
      a.admission_events != b.admission_events || a.transmissions != b.transmissions ||
      a.peak_active_channels != b.peak_active_channels ||
      a.outcomes.size() != b.outcomes.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    if (a.outcomes[i].routed != b.outcomes[i].routed ||
        a.outcomes[i].censored != b.outcomes[i].censored ||
        a.outcomes[i].delivered != b.outcomes[i].delivered ||
        a.outcomes[i].distinct_probes != b.outcomes[i].distinct_probes ||
        a.outcomes[i].path_edges != b.outcomes[i].path_edges ||
        a.outcomes[i].finish_time != b.outcomes[i].finish_time ||
        a.outcomes[i].queueing_delay != b.outcomes[i].queueing_delay) {
      return false;
    }
  }
  return true;
}

BenchResult run_scenario_bench(const std::string& stem, const BenchOptions& options) {
  scenario::ScenarioSpec spec =
      scenario::load_scenario_file(options.scenarios_dir + "/" + stem + ".scn");
  // Clamp to bench scale: --quick is CI-smoke size, the full run keeps the
  // spec's message volume but trims trials (the per-cell timing is summed
  // anyway, extra trials only repeat the same distribution).
  if (options.quick) {
    spec.messages = std::min<std::uint64_t>(spec.messages, 64);
    spec.trials = std::min<std::uint64_t>(spec.trials, 1);
  } else {
    spec.messages = std::min<std::uint64_t>(spec.messages, 512);
    spec.trials = std::min<std::uint64_t>(spec.trials, 2);
  }
  scenario::validate_scenario(spec);

  std::vector<std::unique_ptr<Topology>> topologies;
  for (const auto& topo_spec : spec.topologies) {
    topologies.push_back(sim::make_topology(topo_spec));
  }

  BenchResult result;
  result.name = spec.name;
  result.messages = spec.messages;
  result.trials = spec.trials;

  const int reps = options.reps > 0 ? options.reps : (options.quick ? 1 : 2);
  for (int rep = 0; rep < reps; ++rep) {
    double dense_ms = 0.0;
    double hash_ms = 0.0;
    std::uint64_t index = 0;
    // The scenario runner's exact cell grid and seeding contract.
    for (std::size_t ti = 0; ti < topologies.size(); ++ti) {
      for (const double p : spec.p_values) {
        for (const auto& router : spec.routers) {
          for (const auto& workload_spec : spec.workloads) {
            for (std::uint64_t trial = 0; trial < spec.trials; ++trial, ++index) {
              const Topology& topology = *topologies[ti];
              WorkloadConfig workload = sim::make_workload(workload_spec);
              workload.messages = spec.messages;
              workload.seed = derive_seed(spec.seed, 2 * index + 1);
              const auto messages = generate_workload(topology, workload);

              TrafficConfig config;
              config.edge_capacity = spec.edge_capacity;
              if (spec.probe_budget > 0) config.probe_budget = spec.probe_budget;
              config.max_steps = spec.max_steps;
              config.threads = 1;
              const HashEdgeSampler environment(p, derive_seed(spec.seed, 2 * index));
              const auto factory = [&]() { return sim::make_router(router, topology); };

              TrafficPhaseTimings dense_timings;
              TrafficConfig dense = config;
              dense.dense_probe_state = true;
              dense.timings = &dense_timings;
              const TrafficResult dense_run =
                  run_traffic(topology, environment, factory, messages, dense);
              dense_ms += dense_timings.routing_ms;

              TrafficPhaseTimings hash_timings;
              TrafficConfig hash = config;
              hash.dense_probe_state = false;
              hash.timings = &hash_timings;
              const TrafficResult hash_run =
                  run_traffic(topology, environment, factory, messages, hash);
              hash_ms += hash_timings.routing_ms;

              if (rep == 0) {
                result.identical =
                    result.identical && results_identical(dense_run, hash_run);
                result.routed += dense_run.routed;
                result.delivered += dense_run.delivered;
                result.total_distinct_probes += dense_run.total_distinct_probes;
                result.unique_edges_probed += dense_run.unique_edges_probed;
              }
            }
          }
        }
      }
    }
    if (rep == 0 || dense_ms < result.dense_routing_ms) result.dense_routing_ms = dense_ms;
    if (rep == 0 || hash_ms < result.hash_routing_ms) result.hash_routing_ms = hash_ms;
    result.cells = index;
  }
  return result;
}

std::string json_report(const std::vector<BenchResult>& results, const BenchOptions& options) {
  std::ostringstream out;
  out.precision(6);
  out << std::fixed;
  out << "{\"schema\":\"" << obs::schemas::kBenchRouting
      << "\",\"schema_version\":" << obs::schemas::kBenchVersion
      << ",\"provenance\":" << obs::provenance_json("bench_routing")
      << ",\"quick\":" << (options.quick ? "true" : "false") << ",\"benchmarks\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    if (i > 0) out << ',';
    out << "{\"name\":\"" << r.name << "\",\"cells\":" << r.cells
        << ",\"messages\":" << r.messages << ",\"trials\":" << r.trials
        << ",\"routed\":" << r.routed << ",\"delivered\":" << r.delivered
        << ",\"total_distinct_probes\":" << r.total_distinct_probes
        << ",\"unique_edges_probed\":" << r.unique_edges_probed
        << ",\"dense_routing_ms\":" << r.dense_routing_ms
        << ",\"hash_routing_ms\":" << r.hash_routing_ms << ",\"speedup\":" << r.speedup()
        << ",\"identical\":" << (r.identical ? "true" : "false") << '}';
  }
  out << "]}\n";
  return out.str();
}

int run(const BenchOptions& options) {
  std::vector<BenchResult> results;
  results.reserve(kScenarioStems.size());
  bool all_identical = true;
  for (const std::string& stem : kScenarioStems) {
    results.push_back(run_scenario_bench(stem, options));
    all_identical = all_identical && results.back().identical;
  }

  if (options.json) {
    const std::string report = json_report(results, options);
    if (options.out_path.empty()) {
      std::cout << report;
    } else {
      std::ofstream out(options.out_path);
      if (!out) throw std::runtime_error("cannot write --out file '" + options.out_path + "'");
      out << report;
    }
  } else {
    Table table({"scenario", "cells", "messages", "probes", "hash_routing_ms",
                 "dense_routing_ms", "speedup", "identical"});
    for (const BenchResult& r : results) {
      table.add_row({r.name, Table::fmt(r.cells), Table::fmt(r.messages),
                     Table::fmt(r.total_distinct_probes), Table::fmt(r.hash_routing_ms, 1),
                     Table::fmt(r.dense_routing_ms, 1), Table::fmt(r.speedup(), 2),
                     r.identical ? "yes" : "NO"});
    }
    table.print("routing phase A/B: hash containers vs dense epoch-stamped probe state");
  }

  if (!all_identical) {
    std::fprintf(stderr, "bench_routing: BACKENDS DISAGREE — see 'identical' column\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(parse_args(argc, argv));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_routing: %s\n", e.what());
    return 1;
  }
}
