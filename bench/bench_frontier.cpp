// bench_frontier — A/B benchmark of the batched frontier search + cached
// distance oracle (traffic/frontier_search.hpp, graph/distance_oracle.hpp)
// against the per-message routing loop it accelerates, flipped via
// TrafficConfig::frontier.
//
// The workload is the repository's six curated scenario sweeps
// (scenarios/*.scn) — the exact cell grid and seeding the scenario runner
// executes — with the routing phase timed through TrafficConfig::timings,
// once per frontier mode. The adjacency backend is held fixed at flat (the
// only path the batch executor engages on) and the probe-state backend at
// its default, so the measured delta is the frontier scheduling alone:
// 64-message bitset BFS blocks for flood/bidirectional routers, memoised
// oracle columns for the metric-guided routers.
//
// Per-scenario times are summed over cells, best of --reps repetitions;
// outcomes of the two modes are cross-checked on every cell and the process
// fails on any mismatch, so the bench doubles as a bit-identity test at
// scales the unit suite cannot afford.
//
//   bench_frontier [--quick] [--json] [--out PATH] [--reps N] [--scenarios DIR]
//
// --json emits one machine-readable object (schema
// faultroute.bench.frontier.v1, validated in CI by
// scripts/check_bench_schema.py); the committed full-run perf record lives
// in BENCH_frontier.json at the repo root, next to BENCH_adjacency.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "graph/flat_adjacency.hpp"
#include "obs/schemas.hpp"
#include "obs/build_info.hpp"
#include "random/rng.hpp"
#include "scenario/spec.hpp"
#include "sim/registry.hpp"
#include "traffic/traffic_engine.hpp"
#include "traffic/workload.hpp"

namespace {

using namespace faultroute;

#ifndef FAULTROUTE_SOURCE_DIR
#define FAULTROUTE_SOURCE_DIR "."
#endif

/// The curated sweeps, in the golden suite's order.
const std::vector<std::string> kScenarioStems = {
    "bisection_topologies", "debruijn_router_shootout", "gnp_oracle_gap",
    "hotspot_meltdown",     "hypercube_phase",          "mesh_poisson_load",
};

struct BenchOptions {
  bool quick = false;
  bool json = false;
  std::string out_path;
  std::string scenarios_dir = std::string(FAULTROUTE_SOURCE_DIR) + "/scenarios";
  int reps = 0;  // 0 = default (2 full, 1 quick)
};

BenchOptions parse_args(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const std::string& flag) -> std::string {
      if (arg.size() > flag.size() + 1 && arg.rfind(flag + "=", 0) == 0) {
        return arg.substr(flag.size() + 1);
      }
      if (arg == flag && i + 1 < argc) return argv[++i];
      throw std::invalid_argument("bench_frontier: " + flag + " needs a value");
    };
    if (arg == "--quick") {
      options.quick = true;
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--out" || arg.rfind("--out=", 0) == 0) {
      options.out_path = value_of("--out");
    } else if (arg == "--scenarios" || arg.rfind("--scenarios=", 0) == 0) {
      options.scenarios_dir = value_of("--scenarios");
    } else if (arg == "--reps" || arg.rfind("--reps=", 0) == 0) {
      options.reps = std::stoi(value_of("--reps"));
    } else {
      throw std::invalid_argument("bench_frontier: unknown flag '" + arg +
                                  "' (known: --quick --json --out --reps --scenarios)");
    }
  }
  return options;
}

struct BenchResult {
  std::string name;
  std::uint64_t cells = 0;
  std::uint64_t messages = 0;
  std::uint64_t routed = 0;
  std::uint64_t delivered = 0;
  std::uint64_t total_distinct_probes = 0;
  std::uint64_t unique_edges_probed = 0;
  double batch_ms = 0.0;
  double permsg_ms = 0.0;
  bool identical = true;
  [[nodiscard]] double speedup() const {
    return batch_ms > 0.0 ? permsg_ms / batch_ms : 0.0;
  }
};

/// The frontier modes must agree on everything observable.
bool results_identical(const TrafficResult& a, const TrafficResult& b) {
  if (a.routed != b.routed || a.failed_routing != b.failed_routing ||
      a.censored != b.censored || a.invalid_paths != b.invalid_paths ||
      a.delivered != b.delivered || a.stranded != b.stranded ||
      a.total_distinct_probes != b.total_distinct_probes ||
      a.unique_edges_probed != b.unique_edges_probed || a.cache_hits != b.cache_hits ||
      a.cache_misses != b.cache_misses || a.makespan != b.makespan ||
      a.max_edge_load != b.max_edge_load || a.edges_used != b.edges_used ||
      a.mean_edge_load != b.mean_edge_load ||
      a.mean_queueing_delay != b.mean_queueing_delay ||
      a.max_queueing_delay != b.max_queueing_delay ||
      a.mean_path_edges != b.mean_path_edges || a.sim_steps != b.sim_steps ||
      a.admission_events != b.admission_events || a.transmissions != b.transmissions ||
      a.peak_active_channels != b.peak_active_channels ||
      a.outcomes.size() != b.outcomes.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    if (a.outcomes[i].routed != b.outcomes[i].routed ||
        a.outcomes[i].censored != b.outcomes[i].censored ||
        a.outcomes[i].delivered != b.outcomes[i].delivered ||
        a.outcomes[i].distinct_probes != b.outcomes[i].distinct_probes ||
        a.outcomes[i].path_edges != b.outcomes[i].path_edges ||
        a.outcomes[i].finish_time != b.outcomes[i].finish_time ||
        a.outcomes[i].queueing_delay != b.outcomes[i].queueing_delay) {
      return false;
    }
  }
  return true;
}

BenchResult run_scenario_bench(const std::string& stem, const BenchOptions& options) {
  scenario::ScenarioSpec spec =
      scenario::load_scenario_file(options.scenarios_dir + "/" + stem + ".scn");
  // Clamp to bench scale exactly as bench_adjacency does: --quick is
  // CI-smoke size, the full run keeps message volume but trims trials.
  if (options.quick) {
    spec.messages = std::min<std::uint64_t>(spec.messages, 64);
    spec.trials = std::min<std::uint64_t>(spec.trials, 1);
  } else {
    spec.messages = std::min<std::uint64_t>(spec.messages, 512);
    spec.trials = std::min<std::uint64_t>(spec.trials, 2);
  }
  scenario::validate_scenario(spec);

  std::vector<std::unique_ptr<Topology>> topologies;
  for (const auto& topo_spec : spec.topologies) {
    topologies.push_back(sim::make_topology(topo_spec));
    // Pre-warm the cached snapshot so the timed region measures the frontier
    // scheduling, not the one-time O(channels) CSR build. The distance
    // oracle is NOT pre-warmed: its lazy column builds are genuine batch-
    // mode routing cost and are charged to batch_ms where they occur.
    (void)topologies.back()->flat_adjacency();
  }

  BenchResult result;
  result.name = spec.name;

  const int reps = options.reps > 0 ? options.reps : (options.quick ? 1 : 2);
  for (int rep = 0; rep < reps; ++rep) {
    double batch_ms = 0.0;
    double permsg_ms = 0.0;
    std::uint64_t index = 0;
    std::uint64_t messages_total = 0;
    std::uint64_t routed = 0;
    std::uint64_t delivered = 0;
    std::uint64_t distinct = 0;
    std::uint64_t unique = 0;
    // The scenario runner's exact cell grid and seeding contract.
    for (std::size_t ti = 0; ti < topologies.size(); ++ti) {
      for (const double p : spec.p_values) {
        for (const auto& router : spec.routers) {
          for (const auto& workload_spec : spec.workloads) {
            for (std::uint64_t trial = 0; trial < spec.trials; ++trial, ++index) {
              const Topology& topology = *topologies[ti];
              WorkloadConfig workload = sim::make_workload(workload_spec);
              workload.messages = spec.messages;
              workload.seed = derive_seed(spec.seed, 2 * index + 1);
              const auto messages = generate_workload(topology, workload);

              TrafficConfig config;
              config.edge_capacity = spec.edge_capacity;
              if (spec.probe_budget > 0) config.probe_budget = spec.probe_budget;
              config.max_steps = spec.max_steps;
              config.threads = 1;
              config.adjacency = AdjacencyMode::kFlat;
              const HashEdgeSampler environment(p, derive_seed(spec.seed, 2 * index));
              const auto factory = [&]() { return sim::make_router(router, topology); };

              TrafficPhaseTimings batch_timings;
              TrafficConfig batch = config;
              batch.frontier = FrontierMode::kBatch;
              batch.timings = &batch_timings;
              const TrafficResult batch_run =
                  run_traffic(topology, environment, factory, messages, batch);
              batch_ms += batch_timings.routing_ms;

              TrafficPhaseTimings permsg_timings;
              TrafficConfig permsg = config;
              permsg.frontier = FrontierMode::kPerMessage;
              permsg.timings = &permsg_timings;
              const TrafficResult permsg_run =
                  run_traffic(topology, environment, factory, messages, permsg);
              permsg_ms += permsg_timings.routing_ms;

              if (rep == 0) {
                result.identical =
                    result.identical && results_identical(batch_run, permsg_run);
                messages_total += batch_run.messages;
                routed += batch_run.routed;
                delivered += batch_run.delivered;
                distinct += batch_run.total_distinct_probes;
                unique += batch_run.unique_edges_probed;
              }
            }
          }
        }
      }
    }
    if (rep == 0) {
      result.messages = messages_total;
      result.routed = routed;
      result.delivered = delivered;
      result.total_distinct_probes = distinct;
      result.unique_edges_probed = unique;
    }
    if (rep == 0 || batch_ms < result.batch_ms) result.batch_ms = batch_ms;
    if (rep == 0 || permsg_ms < result.permsg_ms) result.permsg_ms = permsg_ms;
    result.cells = index;
  }
  return result;
}

std::string json_report(const std::vector<BenchResult>& results, const BenchOptions& options) {
  std::ostringstream out;
  out.precision(6);
  out << std::fixed;
  out << "{\"schema\":\"" << obs::schemas::kBenchFrontier
      << "\",\"schema_version\":" << obs::schemas::kBenchVersion
      << ",\"provenance\":" << obs::provenance_json("bench_frontier")
      << ",\"quick\":" << (options.quick ? "true" : "false") << ",\"benchmarks\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    if (i > 0) out << ',';
    out << "{\"name\":\"" << r.name << "\",\"cells\":" << r.cells
        << ",\"messages\":" << r.messages << ",\"routed\":" << r.routed
        << ",\"delivered\":" << r.delivered
        << ",\"total_distinct_probes\":" << r.total_distinct_probes
        << ",\"unique_edges_probed\":" << r.unique_edges_probed
        << ",\"batch_routing_ms\":" << r.batch_ms
        << ",\"permsg_routing_ms\":" << r.permsg_ms << ",\"speedup\":" << r.speedup()
        << ",\"identical\":" << (r.identical ? "true" : "false") << '}';
  }
  out << "]}\n";
  return out.str();
}

int run(const BenchOptions& options) {
  std::vector<BenchResult> results;
  results.reserve(kScenarioStems.size());
  for (const std::string& stem : kScenarioStems) {
    results.push_back(run_scenario_bench(stem, options));
  }

  bool all_identical = true;
  for (const BenchResult& r : results) all_identical = all_identical && r.identical;

  if (options.json) {
    const std::string report = json_report(results, options);
    if (options.out_path.empty()) {
      std::cout << report;
    } else {
      std::ofstream out(options.out_path);
      if (!out) throw std::runtime_error("cannot write --out file '" + options.out_path + "'");
      out << report;
    }
  } else {
    Table table({"benchmark", "cells", "messages", "permsg_ms", "batch_ms", "speedup",
                 "identical"});
    for (const BenchResult& r : results) {
      table.add_row({r.name, Table::fmt(r.cells), Table::fmt(r.messages),
                     Table::fmt(r.permsg_ms, 1), Table::fmt(r.batch_ms, 1),
                     Table::fmt(r.speedup(), 2), r.identical ? "yes" : "NO"});
    }
    table.print("frontier A/B: batched bitset BFS + distance oracle vs per-message loop");
  }

  if (!all_identical) {
    std::fprintf(stderr, "bench_frontier: FRONTIER MODES DISAGREE — see 'identical' column\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(parse_args(argc, argv));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_frontier: %s\n", e.what());
    return 1;
  }
}
