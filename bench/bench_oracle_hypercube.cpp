// E11 — the paper's Section 6 conjecture: for 1/n < p < n^{-1/2} even
// *oracle* routing on the hypercube should be exponential in n.
//
// We compare the best generic oracle strategy we have (bidirectional BFS,
// which meets in the middle and roughly square-roots the local flooding
// cost) against the local landmark router in the conjectured-hard regime.
// Evidence for the conjecture: the oracle's probe count still grows
// explosively with n (merely with a smaller exponent), instead of collapsing
// to poly(n).

#include <cstdio>
#include <exception>

#include "analysis/table.hpp"
#include "core/experiment.hpp"
#include "core/routers/bidirectional_router.hpp"
#include "core/routers/landmark_router.hpp"
#include "graph/hypercube.hpp"
#include "random/rng.hpp"
#include "sim/options.hpp"
#include "sim/sweep.hpp"

namespace {

using namespace faultroute;

void run(const sim::Options& options) {
  const std::vector<int> dims =
      options.quick ? std::vector<int>{10, 12} : std::vector<int>{10, 12, 14};
  const std::vector<double> alphas = {0.60, 0.70};
  const std::uint64_t budget = options.quick ? 50000 : 200000;
  const int trials = options.trials_or(15);

  Table table({"n", "alpha", "router", "median_probes", "censored", "growth_vs_prev_n"});
  for (const double alpha : alphas) {
    double prev_local = 0;
    double prev_oracle = 0;
    for (const int n : dims) {
      const Hypercube cube(n);
      const double p = sim::p_for_alpha(n, alpha);
      const VertexId u = 0;
      const VertexId v = cube.num_vertices() - 1;

      ExperimentConfig config;
      config.trials = trials;
      config.probe_budget = budget;
      config.base_seed = derive_seed(options.seed, static_cast<std::uint64_t>(n) * 100 +
                                                       static_cast<std::uint64_t>(alpha * 100));

      LandmarkRouter local;
      const ExperimentSummary ls = measure_routing(cube, p, local, u, v, config);
      BidirectionalBfsRouter oracle;
      const ExperimentSummary os = measure_routing(cube, p, oracle, u, v, config);

      table.add_row({Table::fmt(n), Table::fmt(alpha, 2), "local-landmark",
                     Table::fmt(ls.median_distinct, 0),
                     Table::fmt(static_cast<double>(ls.censored) / ls.trials, 2),
                     prev_local > 0 ? Table::fmt(ls.median_distinct / prev_local, 2)
                                    : std::string("-")});
      table.add_row({Table::fmt(n), Table::fmt(alpha, 2), "oracle-bidirectional",
                     Table::fmt(os.median_distinct, 0),
                     Table::fmt(static_cast<double>(os.censored) / os.trials, 2),
                     prev_oracle > 0 ? Table::fmt(os.median_distinct / prev_oracle, 2)
                                     : std::string("-")});
      prev_local = ls.median_distinct;
      prev_oracle = os.median_distinct;
    }
  }
  table.print(
      "E11: oracle (bidirectional BFS) vs local routing on H_{n,p} in the "
      "conjectured-hard regime 1/2 < alpha < 1 "
      "(Section 6: oracle routing conjectured exponential too)");
  if (const auto path = options.csv_path("e11_oracle_hypercube")) table.write_csv(*path);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    run(faultroute::sim::parse_options(argc, argv));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_oracle_hypercube: %s\n", e.what());
    return 1;
  }
  return 0;
}
