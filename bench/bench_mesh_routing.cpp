// E3 — Theorem 4: on the d-dimensional mesh, local routing costs O(n) probes
// for every fixed p above the percolation threshold p_c(d).
//
// We route between vertices at mesh distance n with the paper's landmark
// algorithm, sweep p through p_c (p_c(2) = 1/2, p_c(3) ~ 0.2488), and fit
// mean probes vs n. Paper's shape: the fit is linear (slope exponent ~ 1 in
// log-log), with the constant growing as p approaches p_c from above but the
// *linearity in n* persisting for every p > p_c.

#include <cstdio>
#include <exception>

#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "core/experiment.hpp"
#include "core/routers/landmark_router.hpp"
#include "graph/mesh.hpp"
#include "random/rng.hpp"
#include "sim/options.hpp"

namespace {

using namespace faultroute;

struct MeshSetting {
  int dim;
  std::vector<double> ps;
  std::vector<std::int64_t> distances;
  std::int64_t margin;  // cube extends this far around the routed segment
};

void run_setting(const sim::Options& options, const MeshSetting& setting, Table& table,
                 Table& fits) {
  const int trials = options.trials_or(30);
  for (const double p : setting.ps) {
    std::vector<double> xs;
    std::vector<double> ys;
    for (const std::int64_t n : setting.distances) {
      if (options.quick && n > 64) continue;
      const std::int64_t side = n + 2 * setting.margin;
      const Mesh mesh(setting.dim, side);
      Mesh::Coords cu{};
      Mesh::Coords cv{};
      for (int a = 0; a < setting.dim; ++a) cu[static_cast<std::size_t>(a)] = setting.margin;
      cv = cu;
      cv[0] += n;  // v is n steps along axis 0: d(u, v) = n
      const VertexId u = mesh.vertex_at(cu);
      const VertexId v = mesh.vertex_at(cv);

      LandmarkRouter router;
      ExperimentConfig config;
      config.trials = trials;
      config.base_seed = derive_seed(
          options.seed, static_cast<std::uint64_t>(setting.dim) * 1000000 +
                            static_cast<std::uint64_t>(p * 1000) * 512 +
                            static_cast<std::uint64_t>(n));
      const ExperimentSummary s = measure_routing(mesh, p, router, u, v, config);
      table.add_row({Table::fmt(setting.dim), Table::fmt(p, 3),
                     Table::fmt(static_cast<std::uint64_t>(n)),
                     Table::fmt(s.mean_distinct, 0), Table::fmt(s.median_distinct, 0),
                     Table::fmt(s.mean_distinct / static_cast<double>(n), 1),
                     Table::fmt(s.mean_path_edges, 1), Table::fmt(s.rejection_rate, 2)});
      xs.push_back(static_cast<double>(n));
      ys.push_back(s.median_distinct);  // medians: robust to near-critical excursions
    }
    if (xs.size() >= 2) {
      const LinearFit loglog = log_log_fit(xs, ys);
      const LinearFit linear = linear_fit(xs, ys);
      fits.add_row({Table::fmt(setting.dim), Table::fmt(p, 3),
                    Table::fmt(loglog.slope, 2), Table::fmt(linear.slope, 1),
                    Table::fmt(loglog.r_squared, 3)});
    }
  }
}

void run(const sim::Options& options) {
  Table table({"d", "p", "n", "mean_probes", "median_probes", "probes_per_n",
               "mean_path_len", "reject_rate"});
  Table fits({"d", "p", "loglog_exponent", "probes_per_step", "r2"});

  // d = 2: p_c = 1/2. Sweep from just above critical to far supercritical.
  run_setting(options, {2, {0.55, 0.60, 0.70, 0.85}, {16, 32, 64, 128}, 24}, table, fits);
  // d = 3: p_c ~ 0.2488.
  run_setting(options, {3, {0.30, 0.35, 0.45}, {8, 16, 32}, 10}, table, fits);

  table.print("E3: mesh local routing complexity vs distance n (landmark router)");
  if (const auto path = options.csv_path("e3_mesh_routing")) table.write_csv(*path);
  fits.print(
      "E3 fits: probes ~ n^exponent (paper: exponent = 1, i.e. O(n) for all p > p_c)");
  if (const auto path = options.csv_path("e3_fits")) fits.write_csv(*path);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    run(faultroute::sim::parse_options(argc, argv));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_mesh_routing: %s\n", e.what());
    return 1;
  }
  return 0;
}
