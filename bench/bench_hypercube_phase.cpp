// E1 — Theorem 3: the routing phase transition of the hypercube.
//
// Sweep p = n^{-alpha} across the critical exponent alpha = 1/2 and measure
// the local routing complexity of the paper's landmark/BFS algorithm between
// antipodal vertices, conditioned on {u ~ v}.
//
// Paper's claim (shape): for alpha < 1/2 the complexity is polynomial in n
// (Theorem 3(ii)); for alpha > 1/2 every local router needs 2^{Omega(n^beta)}
// probes (Theorem 3(i)) — so at fixed n the probe count should explode as
// alpha crosses 1/2, and the explosion should sharpen as n grows.

#include <cstdio>
#include <exception>

#include "analysis/table.hpp"
#include "core/experiment.hpp"
#include "core/routers/landmark_router.hpp"
#include "graph/hypercube.hpp"
#include "random/rng.hpp"
#include "sim/options.hpp"
#include "sim/sweep.hpp"

namespace {

using namespace faultroute;

void run(const sim::Options& options) {
  const std::vector<int> dims = options.quick ? std::vector<int>{10, 12}
                                              : std::vector<int>{10, 12, 14};
  const std::vector<double> alphas = {0.25, 0.35, 0.45, 0.55, 0.65, 0.75};
  const std::uint64_t budget = options.quick ? 50000 : 200000;
  const int trials = options.trials_or(20);

  Table table({"n", "alpha", "p", "median_probes", "mean_probes", "censored",
               "mean_path_len", "reject_rate"});
  // For the verdict: median probes at the flanking alphas per n.
  std::vector<double> sub_half(dims.size(), 0.0);    // alpha = 0.45
  std::vector<double> super_half(dims.size(), 0.0);  // alpha = 0.65

  for (std::size_t d = 0; d < dims.size(); ++d) {
    const int n = dims[d];
    const Hypercube cube(n);
    const VertexId u = 0;
    const VertexId v = cube.num_vertices() - 1;  // antipodal: distance n
    for (const double alpha : alphas) {
      const double p = sim::p_for_alpha(n, alpha);
      LandmarkRouter router;
      ExperimentConfig config;
      config.trials = trials;
      config.base_seed = derive_seed(options.seed, static_cast<std::uint64_t>(n * 100) +
                                                       static_cast<std::uint64_t>(alpha * 100));
      config.probe_budget = budget;
      const ExperimentSummary s = measure_routing(cube, p, router, u, v, config);
      table.add_row({Table::fmt(n), Table::fmt(alpha, 2), Table::fmt(p, 4),
                     Table::fmt(s.median_distinct, 0), Table::fmt(s.mean_distinct, 0),
                     Table::fmt(static_cast<double>(s.censored) / s.trials, 2),
                     Table::fmt(s.mean_path_edges, 1), Table::fmt(s.rejection_rate, 2)});
      if (alpha == 0.45) sub_half[d] = s.median_distinct;
      if (alpha == 0.65) super_half[d] = s.median_distinct;
    }
  }
  table.print("E1: hypercube routing complexity vs alpha (p = n^-alpha), landmark router");
  if (const auto path = options.csv_path("e1_hypercube_phase")) table.write_csv(*path);

  Table verdict({"n", "median@a=0.45", "median@a=0.65", "blowup_factor"});
  for (std::size_t d = 0; d < dims.size(); ++d) {
    verdict.add_row({Table::fmt(dims[d]), Table::fmt(sub_half[d], 0),
                     Table::fmt(super_half[d], 0),
                     Table::fmt(super_half[d] / std::max(1.0, sub_half[d]), 1)});
  }
  verdict.print("E1 verdict: probe blow-up across alpha = 1/2 (paper: transition at 1/2)");
  if (const auto path = options.csv_path("e1_verdict")) verdict.write_csv(*path);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    run(faultroute::sim::parse_options(argc, argv));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_hypercube_phase: %s\n", e.what());
    return 1;
  }
  return 0;
}
