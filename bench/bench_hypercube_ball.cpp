// E2 — the lower-bound mechanism of Theorem 3(i) / Lemma 5.
//
// The proof partitions the hypercube with S = a ball of radius l around the
// target v and bounds eta = Pr[(v ~ e) in S] for a *fixed* edge e on the
// boundary of S. Two measurable ingredients:
//   (a) eta: the probability that a fixed vertex x at distance exactly l
//       from v connects to v by an open path inside the ball. The proof
//       bounds it by l! p^l / (1 - n l^2 p^2) (path counting: |A_k| <=
//       n^k l^{2k} l!); for p = n^{-alpha}, alpha > 1/2, it decays
//       super-polynomially in l. This is what forces a local router to try
//       ~ 1/eta boundary edges.
//   (b) tree-likeness: the open cluster of v inside the ball should contain
//       almost no cycles (excess = open edges - (vertices - 1) ~ 0), which
//       is what makes the "penetrate a tree through its leaves" picture of
//       Section 3 accurate.

#include <cmath>
#include <cstdio>
#include <exception>
#include <limits>
#include <queue>
#include <unordered_map>

#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "graph/hypercube.hpp"
#include "percolation/edge_sampler.hpp"
#include "random/rng.hpp"
#include "sim/options.hpp"
#include "sim/sweep.hpp"

namespace {

using namespace faultroute;

struct BallProbe {
  bool target_reached = false;       // fixed boundary vertex reached inside S
  std::uint64_t cluster_vertices = 0;
  std::uint64_t cluster_open_edges = 0;  // open in-ball edges among the cluster
};

/// BFS from v over open edges restricted to the ball B_l(v). Reports whether
/// the fixed vertex `target` (at distance exactly l) was reached, and the
/// cycle excess of the explored cluster.
BallProbe probe_ball(const Hypercube& cube, const EdgeSampler& sampler, VertexId v,
                     VertexId target, int radius) {
  BallProbe result;
  std::unordered_map<VertexId, int> dist;
  std::queue<VertexId> queue;
  dist.emplace(v, 0);
  queue.push(v);
  while (!queue.empty()) {
    const VertexId x = queue.front();
    queue.pop();
    const int dx = dist.at(x);
    if (dx == radius) continue;  // boundary sphere: do not expand outwards
    for (int i = 0; i < cube.degree(x); ++i) {
      const VertexId y = cube.neighbor(x, i);
      if (static_cast<int>(cube.distance(v, y)) > radius) continue;  // outside S
      if (!sampler.is_open(cube.edge_key(x, i))) continue;
      if (dist.contains(y)) continue;
      dist.emplace(y, dx + 1);
      if (y == target) result.target_reached = true;
      queue.push(y);
    }
  }
  result.cluster_vertices = dist.size();
  // Post-hoc census of open in-ball edges with both endpoints in the
  // cluster (catches boundary-incident edges the BFS did not traverse).
  for (const auto& [x, dx] : dist) {
    for (int i = 0; i < cube.degree(x); ++i) {
      const VertexId y = cube.neighbor(x, i);
      if (y < x || !dist.contains(y)) continue;
      if (sampler.is_open(cube.edge_key(x, i))) ++result.cluster_open_edges;
    }
  }
  return result;
}

void run(const sim::Options& options) {
  const std::vector<int> dims = options.quick ? std::vector<int>{12, 16}
                                              : std::vector<int>{12, 16, 20};
  const std::vector<double> alphas = {0.6, 0.7, 0.8};
  const std::vector<int> radii = {2, 3, 4};
  const int trials = options.trials_or(3000);

  Table table({"n", "alpha", "radius", "eta_measured", "eta_CI_high", "leading l!p^l",
               "full_bound", "mean_cycle_excess"});
  for (const int n : dims) {
    const Hypercube cube(n);
    for (const double alpha : alphas) {
      const double p = sim::p_for_alpha(n, alpha);
      for (const int l : radii) {
        std::uint64_t hits = 0;
        Summary excess;
        for (int t = 0; t < trials; ++t) {
          const std::uint64_t seed =
              derive_seed(options.seed, static_cast<std::uint64_t>(n) * 1000000 +
                                            static_cast<std::uint64_t>(alpha * 1000) * 100 +
                                            static_cast<std::uint64_t>(l) * 10000 +
                                            static_cast<std::uint64_t>(t));
          const HashEdgeSampler sampler(p, seed);
          // Random centre and a fixed boundary vertex: flip the low l bits.
          Rng rng(seed);
          const VertexId v = uniform_below(rng, cube.num_vertices());
          const VertexId x = v ^ ((1ULL << l) - 1);
          const BallProbe probe = probe_ball(cube, sampler, v, x, l);
          hits += probe.target_reached ? 1 : 0;
          excess.add(static_cast<double>(probe.cluster_open_edges) -
                     (static_cast<double>(probe.cluster_vertices) - 1.0));
        }
        const Interval ci = wilson_interval(hits, static_cast<std::uint64_t>(trials));
        // The proof's bound is l! p^l / (1 - n l^2 p^2): the leading term is
        // l! p^l; the denominator only converges once n^{1-2alpha} l^2 < 1,
        // which at laptop-scale n may fail ("inf" below) even though the
        // leading term already describes the measured decay.
        const double leading = std::tgamma(l + 1.0) * std::pow(p, l);
        const double denom = 1.0 - static_cast<double>(n) * l * l * p * p;
        const double bound =
            denom > 0 ? leading / denom : std::numeric_limits<double>::infinity();
        table.add_row({Table::fmt(n), Table::fmt(alpha, 2), Table::fmt(l),
                       Table::fmt(static_cast<double>(hits) / trials, 5),
                       Table::fmt(ci.high, 5), Table::fmt(leading, 5),
                       Table::fmt(bound, 5), Table::fmt(excess.mean(), 4)});
      }
    }
  }
  table.print(
      "E2: probability a fixed radius-l boundary vertex connects to v inside the "
      "ball (paper bound: eta <= l! p^l / (1 - n l^2 p^2)), and cycle excess of "
      "the in-ball cluster (tree-like ~ 0)");
  if (const auto path = options.csv_path("e2_hypercube_ball")) table.write_csv(*path);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    run(faultroute::sim::parse_options(argc, argv));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_hypercube_ball: %s\n", e.what());
    return 1;
  }
  return 0;
}
