// Ablations on the design choices the paper leaves open.
//
//  A1. Section 3.2 remark — "a greedy approach at the early stages would
//      reduce the exponent": hybrid greedy-then-repair vs pure landmark
//      routing on the hypercube, across alpha.
//  A2. Fault model — node failures (the emulation literature's model) vs
//      edge failures at matched marginal edge-survival probability: does the
//      routing picture change? (Node faults correlate incident edges.)
//  A3. Single-pair complexity vs a "full blown routing scheme": permutation
//      routing congestion (max edge load) on the supercritical mesh — the
//      distinction Section 1.1 draws around Definition 2.

#include <cmath>
#include <cstdio>
#include <exception>
#include <memory>

#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "core/experiment.hpp"
#include "core/permutation_routing.hpp"
#include "core/routers/hybrid_router.hpp"
#include "core/routers/landmark_router.hpp"
#include "graph/hypercube.hpp"
#include "graph/mesh.hpp"
#include "percolation/cluster_analysis.hpp"
#include "percolation/edge_sampler.hpp"
#include "percolation/node_fault_sampler.hpp"
#include "random/rng.hpp"
#include "sim/options.hpp"
#include "sim/sweep.hpp"

namespace {

using namespace faultroute;

void greedy_first_ablation(const sim::Options& options) {
  const int n = options.quick ? 12 : 14;
  const Hypercube cube(n);
  const std::vector<double> alphas = {0.25, 0.40, 0.55, 0.70};
  const int trials = options.trials_or(15);
  const std::uint64_t budget = options.quick ? 50000 : 200000;

  Table table({"alpha", "landmark_median", "hybrid_median", "hybrid/landmark",
               "landmark_path", "hybrid_path"});
  for (const double alpha : alphas) {
    const double p = sim::p_for_alpha(n, alpha);
    ExperimentConfig config;
    config.trials = trials;
    config.probe_budget = budget;
    config.base_seed = derive_seed(options.seed, static_cast<std::uint64_t>(alpha * 1000));
    LandmarkRouter landmark;
    HybridGreedyRouter hybrid;
    const auto ls =
        measure_routing(cube, p, landmark, 0, cube.num_vertices() - 1, config);
    const auto hs = measure_routing(cube, p, hybrid, 0, cube.num_vertices() - 1, config);
    table.add_row({Table::fmt(alpha, 2), Table::fmt(ls.median_distinct, 0),
                   Table::fmt(hs.median_distinct, 0),
                   Table::fmt(hs.median_distinct / std::max(1.0, ls.median_distinct), 2),
                   Table::fmt(ls.mean_path_edges, 1), Table::fmt(hs.mean_path_edges, 1)});
  }
  table.print(
      "A1: greedy-first hybrid vs pure landmark on H_{n,p}, n = " + std::to_string(n) +
      " (Section 3.2 remark: greedy early stages should help below the threshold)");
  if (const auto path = options.csv_path("a1_hybrid_vs_landmark")) table.write_csv(*path);
}

void fault_model_ablation(const sim::Options& options) {
  // Matched marginal: edge model at p_edge == node model with
  // node_p^2 * edge_p = p_edge.
  const Mesh mesh(2, options.quick ? 64 : 96);
  const VertexId u = mesh.vertex_at({8, 8});
  const VertexId v = mesh.vertex_at({static_cast<std::int64_t>(mesh.side()) - 9,
                                     static_cast<std::int64_t>(mesh.side()) - 9});
  const int trials = options.trials_or(20);
  const std::vector<double> marginals = {0.60, 0.70, 0.85};

  Table table({"marginal_p", "model", "mean_probes", "median_probes", "mean_path",
               "connect_rate"});
  for (const double marginal : marginals) {
    for (const bool node_model : {false, true}) {
      LandmarkRouter router;
      Summary probes;
      Summary paths;
      int connected = 0;
      int attempts = 0;
      for (int t = 0; t < trials * 4 && connected < trials; ++t) {
        ++attempts;
        const std::uint64_t seed =
            derive_seed(options.seed, static_cast<std::uint64_t>(marginal * 1000) * 100 +
                                          static_cast<std::uint64_t>(t) * 2 +
                                          (node_model ? 1 : 0));
        // Node model: split the marginal as node_p = sqrt(marginal/0.95),
        // edge_p = 0.95 (mostly-node faults).
        std::unique_ptr<EdgeSampler> sampler;
        if (node_model) {
          const double node_p = std::sqrt(marginal / 0.95);
          sampler = std::make_unique<NodeFaultSampler>(mesh, node_p, 0.95, seed);
        } else {
          sampler = std::make_unique<HashEdgeSampler>(marginal, seed);
        }
        const auto ok = open_connected(mesh, *sampler, u, v);
        if (!ok.has_value() || !*ok) continue;
        ++connected;
        ProbeContext ctx(mesh, *sampler, u, RoutingMode::kLocal);
        const auto path = router.route(ctx, u, v);
        if (!path) continue;
        probes.add(static_cast<double>(ctx.distinct_probes()));
        paths.add(static_cast<double>(path->size() - 1));
      }
      table.add_row({Table::fmt(marginal, 2), node_model ? "node(+edge)" : "edge-only",
                     Table::fmt(probes.mean(), 0), Table::fmt(probes.median(), 0),
                     Table::fmt(paths.mean(), 1),
                     Table::fmt(static_cast<double>(connected) / attempts, 2)});
    }
  }
  table.print(
      "A2: node-fault vs edge-fault percolation at matched marginal edge survival "
      "(mesh, landmark router) — node faults correlate incident edges");
  if (const auto path = options.csv_path("a2_fault_models")) table.write_csv(*path);
}

void permutation_ablation(const sim::Options& options) {
  const Mesh mesh(2, options.quick ? 32 : 48);
  const std::vector<double> ps = {0.60, 0.75, 0.95};
  const std::vector<std::uint64_t> loads = {16, 64, 256};

  Table table({"p", "pairs", "routed", "mean_probes", "mean_path", "max_edge_load",
               "mean_edge_load"});
  for (const double p : ps) {
    for (const std::uint64_t pairs : loads) {
      const HashEdgeSampler sampler(p, derive_seed(options.seed,
                                                   static_cast<std::uint64_t>(p * 100)));
      PermutationRoutingConfig config;
      config.pairs = pairs;
      config.pair_seed = derive_seed(options.seed, pairs);
      const auto result = route_permutation(
          mesh, sampler, [] { return std::make_unique<LandmarkRouter>(); }, config);
      table.add_row({Table::fmt(p, 2), Table::fmt(result.pairs),
                     Table::fmt(result.routed), Table::fmt(result.mean_probes(), 0),
                     Table::fmt(result.mean_path_length(), 1),
                     Table::fmt(result.max_edge_load),
                     Table::fmt(result.mean_edge_load, 2)});
    }
  }
  table.print(
      "A3: permutation routing on the supercritical mesh — congestion (max edge "
      "load) vs offered load and p; the 'full blown routing scheme' view of "
      "Section 1.1");
  if (const auto path = options.csv_path("a3_permutation_routing")) table.write_csv(*path);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const auto options = faultroute::sim::parse_options(argc, argv);
    greedy_first_ablation(options);
    fault_model_ablation(options);
    permutation_ablation(options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_ablations: %s\n", e.what());
    return 1;
  }
  return 0;
}
