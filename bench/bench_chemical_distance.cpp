// E9 — Lemma 8 (Antal-Pisztora): above criticality the chemical distance
// D(x, y) in the percolated mesh is at most rho * d(x, y) outside an
// exponentially unlikely event.
//
// We measure the stretch D/d on the 2D torus for pairs at distance n,
// conditioned on {x ~ y}: the mean stretch should be a constant rho(p)
// (shrinking towards 1 as p -> 1) and the upper tail should be thin
// (q99/median close to 1), at every p > p_c and *independent of n*.

#include <cstdio>
#include <exception>

#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "graph/mesh.hpp"
#include "percolation/chemical_distance.hpp"
#include "percolation/cluster_analysis.hpp"
#include "percolation/edge_sampler.hpp"
#include "random/rng.hpp"
#include "sim/options.hpp"

namespace {

using namespace faultroute;

void run(const sim::Options& options) {
  const std::int64_t side = options.quick ? 96 : 128;
  const Mesh mesh(2, side, /*wrap=*/true);
  const std::vector<double> ps = {0.55, 0.60, 0.70, 0.90};
  const std::vector<std::int64_t> distances = {16, 32, 48};
  const int trials = options.trials_or(30);

  Table table({"p", "n", "mean_stretch", "median_stretch", "q95_stretch", "max_stretch",
               "reject_rate"});
  for (const double p : ps) {
    for (const std::int64_t n : distances) {
      const VertexId u = mesh.vertex_at({0, 0});
      const VertexId v = mesh.vertex_at({n, 0});
      Summary stretch;
      std::uint64_t rejected = 0;
      int accepted = 0;
      for (std::uint64_t t = 0; accepted < trials && t < 5000; ++t) {
        const std::uint64_t seed = derive_seed(
            options.seed, static_cast<std::uint64_t>(p * 1000) * 100000 +
                              static_cast<std::uint64_t>(n) * 1000 + t);
        const HashEdgeSampler sampler(p, seed);
        const auto d = chemical_distance(mesh, sampler, u, v);
        if (!d.has_value()) {
          ++rejected;
          continue;
        }
        ++accepted;
        stretch.add(static_cast<double>(*d) / static_cast<double>(n));
      }
      table.add_row(
          {Table::fmt(p, 2), Table::fmt(static_cast<std::uint64_t>(n)),
           Table::fmt(stretch.mean(), 3), Table::fmt(stretch.median(), 3),
           Table::fmt(stretch.quantile(0.95), 3), Table::fmt(stretch.max(), 3),
           Table::fmt(static_cast<double>(rejected) / (rejected + accepted), 2)});
    }
  }
  table.print(
      "E9: chemical-distance stretch D(x,y)/d(x,y) on the 2D torus "
      "(Antal-Pisztora: bounded stretch rho(p) with thin tails, for all p > 1/2)");
  if (const auto path = options.csv_path("e9_chemical_distance")) table.write_csv(*path);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    run(faultroute::sim::parse_options(argc, argv));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_chemical_distance: %s\n", e.what());
    return 1;
  }
  return 0;
}
