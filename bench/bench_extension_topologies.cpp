// E8 — the Section 6 open question: constant-degree, logarithmic-diameter
// families "often used in parallel computing" (De Bruijn, shuffle-exchange,
// butterfly; plus cycle+matching from the introduction). Do their routing
// and percolation transitions coincide (mesh-like) or split (hypercube-like)?
//
// Method: for each family we
//   (a) bisect the giant-component threshold p_c,
//   (b) route between far-apart pairs with a *table-guided best-first*
//       local router (fault-free distance tables are legitimate: the
//       topology is known, only the faults are discovered at runtime),
//       conditioned on {u ~ v}, at p just above p_c and at p = 0.9,
//   (c) sweep the graph size N and report how the probe count scales:
//       polylog(N)-ish growth means routing stays efficient right above
//       p_c (mesh-like); growth proportional to N means the router must
//       see a constant fraction of the graph (hypercube-like).

#include <cstdio>
#include <exception>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>

#include "analysis/table.hpp"
#include "core/experiment.hpp"
#include "graph/butterfly.hpp"
#include "graph/cycle_matching.hpp"
#include "graph/de_bruijn.hpp"
#include "graph/shuffle_exchange.hpp"
#include "percolation/cluster_analysis.hpp"
#include "percolation/threshold.hpp"
#include "random/rng.hpp"
#include "sim/options.hpp"

// analyze:allow-file-hot-alloc(bench-local reference routers keep per-message search state on purpose: the benchmark measures the batched executor against exactly this baseline)
namespace {

using namespace faultroute;

/// Best-first local router guided by a precomputed fault-free
/// distance-to-target table (one BFS from the target in the base topology).
class TableGuidedRouter final : public Router {
 public:
  std::optional<Path> route(ProbeContext& ctx, VertexId u, VertexId v) override {
    if (u == v) return Path{u};
    const Topology& graph = ctx.graph();
    build_table(graph, v);
    using Entry = std::pair<std::uint32_t, VertexId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> frontier;
    std::unordered_map<VertexId, VertexId> parent;
    parent.emplace(u, u);
    frontier.emplace(distance_to_target(u), u);
    while (!frontier.empty()) {
      const auto [d, x] = frontier.top();
      frontier.pop();
      for (int i = 0; i < graph.degree(x); ++i) {
        const VertexId y = graph.neighbor(x, i);
        if (parent.contains(y)) continue;
        if (!ctx.probe(x, i)) continue;
        parent.emplace(y, x);
        if (y == v) {
          Path path;
          for (VertexId z = v;; z = parent.at(z)) {
            path.push_back(z);
            if (z == u) break;
          }
          std::reverse(path.begin(), path.end());
          return path;
        }
        frontier.emplace(distance_to_target(y), y);
      }
    }
    return std::nullopt;
  }

  [[nodiscard]] std::string name() const override { return "table-guided-best-first"; }

 private:
  void build_table(const Topology& graph, VertexId target) {
    if (target == table_target_ && !table_.empty()) return;
    table_.clear();
    table_target_ = target;
    std::queue<VertexId> queue;
    table_.emplace(target, 0);
    queue.push(target);
    while (!queue.empty()) {
      const VertexId x = queue.front();
      queue.pop();
      const std::uint32_t dx = table_.at(x);
      for (int i = 0; i < graph.degree(x); ++i) {
        const VertexId y = graph.neighbor(x, i);
        if (table_.contains(y)) continue;
        table_.emplace(y, dx + 1);
        queue.push(y);
      }
    }
  }

  [[nodiscard]] std::uint32_t distance_to_target(VertexId x) const {
    const auto it = table_.find(x);
    return it != table_.end() ? it->second : ~0U;
  }

  VertexId table_target_ = ~0ULL;
  std::unordered_map<VertexId, std::uint32_t> table_;
};

struct Family {
  std::string label;
  std::function<std::unique_ptr<Topology>(int k)> make;
};

VertexId far_vertex(const Topology& graph, VertexId u, std::uint64_t seed) {
  VertexId best_v = graph.num_vertices() - 1;
  std::uint64_t best = graph.distance(u, best_v);
  Rng pick(seed);
  for (int c = 0; c < 16; ++c) {
    const VertexId candidate = uniform_below(pick, graph.num_vertices());
    const std::uint64_t d = graph.distance(u, candidate);
    if (d > best && d < graph.num_vertices()) {
      best = d;
      best_v = candidate;
    }
  }
  return best_v;
}

void run(const sim::Options& options) {
  const std::vector<int> orders = options.quick ? std::vector<int>{9, 11}
                                                : std::vector<int>{9, 11, 13};
  const std::vector<Family> families = {
      {"de_bruijn", [](int k) { return std::make_unique<DeBruijn>(k); }},
      {"shuffle_exchange", [](int k) { return std::make_unique<ShuffleExchange>(k); }},
      {"butterfly",
       [](int k) {
         // Match vertex count ~ 2^k: butterfly(k') has k' * 2^k' vertices.
         const int kp = k - 3;
         return std::make_unique<Butterfly>(kp < 2 ? 2 : kp);
       }},
      {"cycle_matching",
       [](int k) { return std::make_unique<CycleWithMatching>(1ULL << k, 12345); }},
  };

  Table table({"family", "N", "p_c_est", "p", "median_probes", "probes/N",
               "mean_path_len", "pair_dist"});
  Table verdict({"family", "p", "probes_growth", "N_growth", "reading"});

  for (const Family& family : families) {
    // (a) p_c on the smallest size (thresholds drift little with N here).
    const auto small = family.make(orders.front());
    ThresholdConfig tconfig;
    tconfig.target_fraction = 0.2;
    tconfig.trials_per_point = options.quick ? 3 : 5;
    tconfig.tolerance = 0.01;
    tconfig.seed = derive_seed(options.seed, std::hash<std::string>{}(family.label));
    const auto order_param = [&small](double p, std::uint64_t seed) {
      return analyze_components(*small, HashEdgeSampler(p, seed)).largest_fraction();
    };
    const double pc = estimate_threshold(order_param, 0.05, 0.95, tconfig);

    for (const double p : {std::min(0.95, pc + 0.08), 0.9}) {
      double first_probes = 0;
      double last_probes = 0;
      double first_n = 0;
      double last_n = 0;
      for (const int k : orders) {
        const auto graph = family.make(k);
        const VertexId u = 0;
        const VertexId v = far_vertex(*graph, u, derive_seed(options.seed, 0xfa7));
        TableGuidedRouter router;
        ExperimentConfig config;
        config.trials = options.trials_or(12);
        config.base_seed =
            derive_seed(options.seed, tconfig.seed + static_cast<std::uint64_t>(p * 100) +
                                          static_cast<std::uint64_t>(k) * 977);
        const ExperimentSummary s = measure_routing(*graph, p, router, u, v, config);
        table.add_row(
            {family.label, Table::fmt(graph->num_vertices()), Table::fmt(pc, 3),
             Table::fmt(p, 3), Table::fmt(s.median_distinct, 0),
             Table::fmt(s.median_distinct / static_cast<double>(graph->num_vertices()), 3),
             Table::fmt(s.mean_path_edges, 1), Table::fmt(graph->distance(u, v))});
        if (first_n == 0) {
          first_n = static_cast<double>(graph->num_vertices());
          first_probes = s.median_distinct;
        }
        last_n = static_cast<double>(graph->num_vertices());
        last_probes = s.median_distinct;
      }
      const double probe_growth = last_probes / std::max(1.0, first_probes);
      const double n_growth = last_n / first_n;
      verdict.add_row({family.label, Table::fmt(p, 3), Table::fmt(probe_growth, 1),
                       Table::fmt(n_growth, 1),
                       probe_growth > 0.5 * n_growth ? "~linear in N (hypercube-like)"
                                                     : "sublinear (mesh-like)"});
    }
  }
  table.print(
      "E8: Section-6 families — table-guided local routing cost vs graph size, "
      "just above p_c and at p = 0.9");
  if (const auto path = options.csv_path("e8_extension_topologies")) table.write_csv(*path);
  verdict.print(
      "E8 verdict: probe growth across sizes (paper leaves the transition "
      "location open for these families)");
  if (const auto path = options.csv_path("e8_verdict")) verdict.write_csv(*path);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    run(faultroute::sim::parse_options(argc, argv));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_extension_topologies: %s\n", e.what());
    return 1;
  }
  return 0;
}
