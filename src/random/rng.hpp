#pragma once

#include <cmath>
#include <cstdint>

#include "random/xoshiro256.hpp"

namespace faultroute {

/// Default sequential PRNG used throughout the library.
using Rng = Xoshiro256PlusPlus;

/// Maps a 64-bit word to the unit interval [0, 1) with 53-bit resolution.
constexpr double to_unit_interval(std::uint64_t bits) noexcept {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

/// Draws a uniform double in [0, 1).
template <typename Generator>
double uniform_double(Generator& rng) {
  return to_unit_interval(rng());
}

/// Draws a uniform integer in [0, bound) using Lemire's multiply-shift
/// rejection method (unbiased). Requires bound > 0.
std::uint64_t uniform_below(Rng& rng, std::uint64_t bound);

/// Bernoulli(p) draw.
template <typename Generator>
bool bernoulli(Generator& rng, double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_double(rng) < p;
}

/// Geometric draw: number of failures before the first success of a
/// Bernoulli(p) sequence, i.e. support {0, 1, 2, ...}. Requires p in (0, 1].
std::uint64_t geometric(Rng& rng, double p);

/// Derives the i-th child seed of a base seed. Children of distinct
/// (base, index) pairs behave as independent seeds.
constexpr std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) noexcept {
  return hash_pair(base, index ^ 0x517cc1b727220a95ULL);
}

}  // namespace faultroute
