#include "random/rng.hpp"

#include <cassert>

namespace faultroute {

std::uint64_t uniform_below(Rng& rng, std::uint64_t bound) {
  assert(bound > 0);
  // Lemire 2019: multiply a 64-bit draw by the bound and keep the high word;
  // reject draws falling in the biased low fringe.
  while (true) {
    const std::uint64_t x = rng();
    const __uint128_t m = static_cast<__uint128_t>(x) * bound;
    const auto low = static_cast<std::uint64_t>(m);
    if (low >= bound) return static_cast<std::uint64_t>(m >> 64);
    const std::uint64_t threshold = (0 - bound) % bound;
    if (low >= threshold) return static_cast<std::uint64_t>(m >> 64);
  }
}

std::uint64_t geometric(Rng& rng, double p) {
  assert(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  // Inversion: floor(log(U) / log(1-p)) with U uniform in (0, 1).
  double u = uniform_double(rng);
  if (u <= 0.0) u = 0x1.0p-53;
  return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

}  // namespace faultroute
