#pragma once

#include <cstdint>

namespace faultroute {

/// SplitMix64 pseudo-random generator (Steele, Lea & Flood 2014).
///
/// A tiny, fast, full-period generator over 64-bit state. We use it in two
/// roles: (a) seeding larger generators (xoshiro256++) from a single 64-bit
/// seed, and (b) as the stateless finalizer behind hash-based percolation
/// (see mix64 below).
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Advances the state and returns the next 64-bit value.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

 private:
  std::uint64_t state_;
};

/// Stateless 64-bit finalizer (the SplitMix64 output function applied to x).
/// Bijective on 64-bit values; passes avalanche tests. Used to derive
/// independent-looking bits from structured inputs such as edge keys.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines a seed and a key into a single well-mixed 64-bit value.
///
/// Two rounds of mix64 with an odd-multiplier pre-mix; this is the hash
/// behind lazy percolation, so collisions across distinct (seed, key) pairs
/// must behave like random ones (statistically verified in tests).
constexpr std::uint64_t hash_pair(std::uint64_t seed, std::uint64_t key) noexcept {
  return mix64(mix64(seed ^ 0x2545f4914f6cdd1dULL) ^ (key * 0x9e3779b97f4a7c15ULL));
}

}  // namespace faultroute
