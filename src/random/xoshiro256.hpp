#pragma once

#include <cstdint>

#include "random/splitmix64.hpp"

namespace faultroute {

/// xoshiro256++ 1.0 (Blackman & Vigna 2019).
///
/// The workhorse sequential PRNG for simulations: 256-bit state, period
/// 2^256 - 1, excellent statistical quality, ~1ns per draw. Seeded from a
/// single 64-bit value via SplitMix64 as the authors recommend.
class Xoshiro256PlusPlus {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256PlusPlus(std::uint64_t seed) noexcept : state_{} {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace faultroute
