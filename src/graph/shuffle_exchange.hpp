#pragma once

#include <array>
#include <cstdint>

#include "graph/topology.hpp"

namespace faultroute {

/// The undirected shuffle-exchange graph SE(k) on N = 2^k vertices.
///
/// Edges: exchange v <-> v^1, shuffle v <-> rotate-left_k(v) (and hence also
/// rotate-right). Self-loops removed and coincident pairs collapsed; constant
/// degree <= 3. Another Section-6 family.
class ShuffleExchange final : public Topology {
 public:
  /// Requires 2 <= k <= 30.
  explicit ShuffleExchange(int k);

  [[nodiscard]] std::uint64_t num_vertices() const override { return n_; }
  [[nodiscard]] std::uint64_t num_edges() const override;
  [[nodiscard]] int degree(VertexId v) const override;
  [[nodiscard]] VertexId neighbor(VertexId v, int i) const override;
  [[nodiscard]] EdgeKey edge_key(VertexId v, int i) const override;
  [[nodiscard]] EdgeEndpoints endpoints(EdgeKey key) const override {
    return {key / n_, key % n_};
  }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] int order() const { return k_; }

  [[nodiscard]] VertexId rotate_left(VertexId v) const {
    return ((v << 1) | (v >> (k_ - 1))) & (n_ - 1);
  }
  [[nodiscard]] VertexId rotate_right(VertexId v) const {
    return (v >> 1) | ((v & 1) << (k_ - 1));
  }

 private:
  int neighbors_of(VertexId v, std::array<VertexId, 3>& out) const;

  int k_;
  std::uint64_t n_;
};

}  // namespace faultroute
