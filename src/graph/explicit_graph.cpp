#include "graph/explicit_graph.hpp"

#include <stdexcept>

namespace faultroute {

ExplicitGraph::ExplicitGraph(std::uint64_t num_vertices, const EdgeList& edges)
    : adjacency_(num_vertices) {
  for (const auto& [a, b] : edges) {
    if (a >= num_vertices || b >= num_vertices) {
      throw std::invalid_argument("ExplicitGraph: edge endpoint out of range");
    }
    if (a == b) throw std::invalid_argument("ExplicitGraph: self-loops not supported");
    const EdgeKey key = num_edges_++;
    adjacency_[a].emplace_back(b, key);
    adjacency_[b].emplace_back(a, key);
    edges_.emplace_back(a, b);
  }
}

std::string ExplicitGraph::name() const {
  return "explicit(v=" + std::to_string(num_vertices()) +
         ",e=" + std::to_string(num_edges_) + ")";
}

}  // namespace faultroute
