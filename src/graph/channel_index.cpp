#include "graph/channel_index.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_map>

namespace faultroute {

ChannelIndex::ChannelIndex(const Topology& graph) : graph_(&graph) {
  const std::uint64_t n = graph.num_vertices();
  offsets_.resize(n + 1);
  std::uint64_t total = 0;
  for (VertexId v = 0; v < n; ++v) {
    offsets_[v] = total;
    total += static_cast<std::uint64_t>(graph.degree(v));
  }
  offsets_[n] = total;
  if (total > std::numeric_limits<std::uint32_t>::max()) {
    throw std::length_error("ChannelIndex: " + graph.name() + " has " +
                            std::to_string(total) +
                            " directed channels; ids are 32-bit (max 4294967295)");
  }
  num_channels_ = static_cast<std::uint32_t>(total);
}

VertexId ChannelIndex::tail(std::uint32_t channel) const {
  // offsets_ is strictly increasing between distinct offsets (zero-degree
  // vertices repeat a value, but then own no channel), so the tail is the
  // last vertex whose offset is <= channel.
  const auto it = std::upper_bound(offsets_.begin(), offsets_.end(),
                                   static_cast<std::uint64_t>(channel));
  return static_cast<VertexId>(it - offsets_.begin()) - 1;
}

int ChannelIndex::slot(std::uint32_t channel) const {
  return static_cast<int>(channel - offsets_[tail(channel)]);
}

VertexId ChannelIndex::head(std::uint32_t channel) const {
  const VertexId v = tail(channel);
  return graph_->neighbor(v, static_cast<int>(channel - offsets_[v]));
}

EdgeKey ChannelIndex::edge_of(std::uint32_t channel) const {
  const VertexId v = tail(channel);
  return graph_->edge_key(v, static_cast<int>(channel - offsets_[v]));
}

void ChannelIndex::build_edge_ids() const {
  // One linear scan over (vertex, slot) pairs — i.e. over channels in
  // ascending id order. The hash map exists only during this build; the
  // steady-state structure is the flat edge_ids_ array.
  edge_ids_.resize(num_channels_);  // analyze:allow-hot-alloc(one-shot lazy index build, memoised per topology)
  // lint:allow-hash(one-shot build-time scratch; steady state is the flat array)
  std::unordered_map<EdgeKey, std::uint32_t> first_seen;
  first_seen.reserve(num_channels_ / 2 + 1);  // analyze:allow-hot-alloc(same one-shot build)
  std::uint32_t next_id = 0;
  std::uint32_t channel = 0;
  const std::uint64_t n = graph_->num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    const int deg = graph_->degree(v);
    for (int i = 0; i < deg; ++i, ++channel) {
      // analyze:allow-hot-alloc(same one-shot build)
      const auto [it, inserted] = first_seen.emplace(graph_->edge_key(v, i), next_id);
      if (inserted) ++next_id;
      edge_ids_[channel] = it->second;
    }
  }
  num_edge_ids_ = next_id;
}

std::uint32_t ChannelIndex::reverse(std::uint32_t channel) const {
  const VertexId v = tail(channel);
  const int i = static_cast<int>(channel - offsets_[v]);
  const VertexId w = graph_->neighbor(v, i);
  const EdgeKey key = graph_->edge_key(v, i);
  const int deg = graph_->degree(w);
  for (int j = 0; j < deg; ++j) {
    if (graph_->neighbor(w, j) == v && graph_->edge_key(w, j) == key) {
      return channel_of(w, j);
    }
  }
  // analyze:allow-throw-safety(edge_key symmetry contract violation is a programming error in the topology)
  throw std::logic_error("ChannelIndex::reverse: no matching reverse slot for edge key " +
                         std::to_string(key) + " — edge_key symmetry contract violated by " +
                         graph_->name());
}

}  // namespace faultroute
