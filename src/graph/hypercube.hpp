#pragma once

#include <cstdint>

#include "graph/topology.hpp"

namespace faultroute {

/// The n-dimensional boolean hypercube H_n.
///
/// Vertices are the 2^n bit strings; u and v are adjacent iff they differ in
/// exactly one bit. This is the central object of Theorem 3: the percolated
/// hypercube H_{n,p} has a *routing* phase transition at p = n^{-1/2}, far
/// above its *connectivity* (giant-component) threshold p ~ 1/n.
class Hypercube final : public Topology {
 public:
  /// Constructs H_n. Requires 1 <= n <= 40 (2^40 vertices is far beyond
  /// anything materialisable, but the implicit interface still works).
  explicit Hypercube(int n);

  [[nodiscard]] std::uint64_t num_vertices() const override { return 1ULL << n_; }
  [[nodiscard]] std::uint64_t num_edges() const override {
    return static_cast<std::uint64_t>(n_) << (n_ - 1);
  }
  [[nodiscard]] int degree(VertexId) const override { return n_; }
  [[nodiscard]] VertexId neighbor(VertexId v, int i) const override {
    return v ^ (1ULL << i);
  }

  /// Canonical key: (lower endpoint) * n + flipped-bit index.
  [[nodiscard]] EdgeKey edge_key(VertexId v, int i) const override {
    const VertexId lower = v & ~(1ULL << i);
    return lower * static_cast<std::uint64_t>(n_) + static_cast<std::uint64_t>(i);
  }

  [[nodiscard]] EdgeEndpoints endpoints(EdgeKey key) const override {
    const VertexId lower = key / static_cast<std::uint64_t>(n_);
    const int bit = static_cast<int>(key % static_cast<std::uint64_t>(n_));
    return {lower, lower ^ (1ULL << bit)};
  }

  [[nodiscard]] std::string name() const override;

  /// Hamming distance.
  [[nodiscard]] std::uint64_t distance(VertexId u, VertexId v) const override;

  /// Shortest path flipping the differing bits in ascending bit order.
  [[nodiscard]] std::vector<VertexId> shortest_path(VertexId u, VertexId v) const override;

  [[nodiscard]] bool has_closed_form_metric() const override { return true; }

  [[nodiscard]] int dimension() const { return n_; }

 private:
  int n_;
};

}  // namespace faultroute
