#include "graph/topology.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "graph/channel_index.hpp"
#include "graph/flat_adjacency.hpp"

namespace faultroute {

Topology::Topology() = default;
Topology::Topology(const Topology&) {}
Topology::~Topology() = default;

const ChannelIndex& Topology::channel_index() const {
  std::call_once(channel_index_once_,
                 [this] { channel_index_ = std::make_unique<ChannelIndex>(*this); });
  return *channel_index_;
}

const FlatAdjacency& Topology::flat_adjacency() const {
  std::call_once(flat_adjacency_once_,
                 [this] { flat_adjacency_ = std::make_unique<FlatAdjacency>(*this); });
  return *flat_adjacency_;
}

std::uint64_t Topology::distance(VertexId u, VertexId v) const {
  if (u == v) return 0;
  // Plain BFS over the implicit adjacency. Unreachable => num_vertices().
  std::unordered_map<VertexId, std::uint64_t> dist;
  std::queue<VertexId> queue;
  dist.emplace(u, 0);
  queue.push(u);
  while (!queue.empty()) {
    const VertexId x = queue.front();
    queue.pop();
    const std::uint64_t dx = dist.at(x);
    const int deg = degree(x);
    for (int i = 0; i < deg; ++i) {
      const VertexId y = neighbor(x, i);
      if (dist.contains(y)) continue;
      if (y == v) return dx + 1;
      dist.emplace(y, dx + 1);
      queue.push(y);
    }
  }
  return num_vertices();
}

std::vector<VertexId> Topology::shortest_path(VertexId u, VertexId v) const {
  if (u == v) return {u};
  std::unordered_map<VertexId, VertexId> parent;
  std::queue<VertexId> queue;
  parent.emplace(u, u);
  queue.push(u);
  bool found = false;
  while (!queue.empty() && !found) {
    const VertexId x = queue.front();
    queue.pop();
    const int deg = degree(x);
    for (int i = 0; i < deg; ++i) {
      const VertexId y = neighbor(x, i);
      if (parent.contains(y)) continue;
      parent.emplace(y, x);
      if (y == v) {
        found = true;
        break;
      }
      queue.push(y);
    }
  }
  if (!found) return {};
  std::vector<VertexId> path;
  for (VertexId x = v;; x = parent.at(x)) {
    path.push_back(x);
    if (x == u) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::string Topology::vertex_label(VertexId v) const { return std::to_string(v); }

int edge_index_of(const Topology& g, VertexId u, VertexId v) {
  const int deg = g.degree(u);
  for (int i = 0; i < deg; ++i) {
    if (g.neighbor(u, i) == v) return i;
  }
  return -1;
}

std::vector<EdgeKey> incident_edge_keys(const Topology& g, VertexId v) {
  const int deg = g.degree(v);
  std::vector<EdgeKey> keys;
  keys.reserve(static_cast<std::size_t>(deg));
  for (int i = 0; i < deg; ++i) keys.push_back(g.edge_key(v, i));
  return keys;
}

}  // namespace faultroute
