#include "graph/topology.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "graph/bfs_scratch.hpp"
#include "graph/channel_index.hpp"
#include "graph/flat_adjacency.hpp"

namespace faultroute {

namespace {

/// Dense scratch is worth allocating only when the vertex-indexed arrays fit
/// comfortably in memory; gigantic implicit families (which override the
/// metric anyway) keep the hash path below.
constexpr std::uint64_t kDenseBfsBudgetVertices = 1ull << 26;

/// The default metric's own scratch, distinct from detail::bfs_scratch():
/// the percolation analyses hold live epochs in that instance across calls
/// that may re-enter distance()/shortest_path(), and sharing one epoch
/// counter would silently invalidate their marks mid-sweep.
detail::BfsScratch& metric_scratch() {
  static thread_local detail::BfsScratch scratch;
  return scratch;
}

}  // namespace

Topology::Topology() = default;
Topology::Topology(const Topology&) {}
Topology::~Topology() = default;

const ChannelIndex& Topology::channel_index() const {
  std::call_once(channel_index_once_,
                 [this] { channel_index_ = std::make_unique<ChannelIndex>(*this); });
  return *channel_index_;
}

const FlatAdjacency& Topology::flat_adjacency() const {
  std::call_once(flat_adjacency_once_,
                 [this] { flat_adjacency_ = std::make_unique<FlatAdjacency>(*this); });
  return *flat_adjacency_;
}

// analyze:hot-root(dense BFS scratch path: metric fallback in router inner loops) analyze:allow-hot-alloc(dense tier runs on pooled thread-local scratch; the hash tier is the documented past-budget fallback)
std::uint64_t Topology::distance(VertexId u, VertexId v) const {
  if (u == v) return 0;
  const std::uint64_t n = num_vertices();
  if (n <= kDenseBfsBudgetVertices) {
    // Epoch-stamped dense BFS: same FIFO slot-order traversal as the hash
    // path below, so the two tiers return identical values; "clearing"
    // between calls is one epoch increment, and the scratch arrays are
    // pooled per thread (zero allocation in steady state).
    detail::BfsScratch& scratch = metric_scratch();
    scratch.begin(n);
    scratch.mark(u);
    scratch.dist_queue.emplace_back(u, 0);
    std::size_t head = 0;
    while (head < scratch.dist_queue.size()) {
      const auto [x, dx] = scratch.dist_queue[head++];
      const int deg = degree(x);
      for (int i = 0; i < deg; ++i) {
        const VertexId y = neighbor(x, i);
        if (scratch.seen(y)) continue;
        if (y == v) return dx + 1;
        scratch.mark(y);
        scratch.dist_queue.emplace_back(y, dx + 1);
      }
    }
    return n;
  }
  // Hash BFS over the implicit adjacency for graphs too large for dense
  // vertex-indexed scratch. Unreachable => num_vertices().
  // lint:allow-hash(fallback BFS for graphs past the dense-scratch budget)
  std::unordered_map<VertexId, std::uint64_t> dist;
  std::queue<VertexId> queue;
  dist.emplace(u, 0);
  queue.push(u);
  while (!queue.empty()) {
    const VertexId x = queue.front();
    queue.pop();
    const std::uint64_t dx = dist.at(x);
    const int deg = degree(x);
    for (int i = 0; i < deg; ++i) {
      const VertexId y = neighbor(x, i);
      if (dist.contains(y)) continue;
      if (y == v) return dx + 1;
      dist.emplace(y, dx + 1);
      queue.push(y);
    }
  }
  return n;
}

// analyze:allow-hot-alloc(pooled dense scratch plus result materialization; the hash tier is the documented past-budget fallback)
std::vector<VertexId> Topology::shortest_path(VertexId u, VertexId v) const {
  if (u == v) return {u};
  const std::uint64_t n = num_vertices();
  if (n <= kDenseBfsBudgetVertices) {
    // Dense tier, traversal-order-identical to the hash tier below (and to
    // the pre-dense implementation), so the *same* shortest path comes back
    // regardless of graph size — landmark routing's path identity depends
    // on it.
    detail::BfsScratch& scratch = metric_scratch();
    scratch.begin(n);
    scratch.mark(u, u);
    scratch.queue.push_back(u);
    std::size_t head = 0;
    bool found = false;
    while (head < scratch.queue.size() && !found) {
      const VertexId x = scratch.queue[head++];
      const int deg = degree(x);
      for (int i = 0; i < deg; ++i) {
        const VertexId y = neighbor(x, i);
        if (scratch.seen(y)) continue;
        scratch.mark(y, x);
        if (y == v) {
          found = true;
          break;
        }
        scratch.queue.push_back(y);
      }
    }
    if (!found) return {};
    std::vector<VertexId> path;
    for (VertexId x = v;; x = scratch.parent[x]) {
      path.push_back(x);
      if (x == u) break;
    }
    std::reverse(path.begin(), path.end());
    return path;
  }
  // lint:allow-hash(fallback BFS for graphs past the dense-scratch budget)
  std::unordered_map<VertexId, VertexId> parent;
  std::queue<VertexId> queue;
  parent.emplace(u, u);
  queue.push(u);
  bool found = false;
  while (!queue.empty() && !found) {
    const VertexId x = queue.front();
    queue.pop();
    const int deg = degree(x);
    for (int i = 0; i < deg; ++i) {
      const VertexId y = neighbor(x, i);
      if (parent.contains(y)) continue;
      parent.emplace(y, x);
      if (y == v) {
        found = true;
        break;
      }
      queue.push(y);
    }
  }
  if (!found) return {};
  std::vector<VertexId> path;
  for (VertexId x = v;; x = parent.at(x)) {
    path.push_back(x);
    if (x == u) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::string Topology::vertex_label(VertexId v) const { return std::to_string(v); }

int edge_index_of(const Topology& g, VertexId u, VertexId v) {
  const int deg = g.degree(u);
  for (int i = 0; i < deg; ++i) {
    if (g.neighbor(u, i) == v) return i;
  }
  return -1;
}

std::vector<EdgeKey> incident_edge_keys(const Topology& g, VertexId v) {
  const int deg = g.degree(v);
  std::vector<EdgeKey> keys;
  keys.reserve(static_cast<std::size_t>(deg));
  for (int i = 0; i < deg; ++i) keys.push_back(g.edge_key(v, i));
  return keys;
}

}  // namespace faultroute
