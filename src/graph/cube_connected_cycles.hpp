#pragma once

#include <cstdint>

#include "graph/topology.hpp"

namespace faultroute {

/// The cube-connected cycles CCC(k): each hypercube vertex is replaced by a
/// k-cycle whose i-th node owns the dimension-i hypercube edge. Constant
/// degree 3, diameter Theta(k) = Theta(log N), N = k * 2^k — the classic
/// bounded-degree stand-in for the hypercube in parallel computing, and a
/// natural member of the Section 6 family list.
///
/// Vertex (cursor, row): cursor in [0, k), row in [0, 2^k);
/// id = cursor * 2^k + row. Edges:
///   cycle:   (cursor, row) -- (cursor +/- 1 mod k, row)
///   rung:    (cursor, row) -- (cursor, row ^ 2^cursor)
class CubeConnectedCycles final : public Topology {
 public:
  /// Requires 3 <= k <= 26 (k >= 3 keeps the cycles simple).
  explicit CubeConnectedCycles(int k);

  [[nodiscard]] std::uint64_t num_vertices() const override {
    return static_cast<std::uint64_t>(k_) * rows_;
  }
  [[nodiscard]] std::uint64_t num_edges() const override {
    // k * 2^k cycle edges + k * 2^{k-1} rung edges.
    return static_cast<std::uint64_t>(k_) * rows_ +
           static_cast<std::uint64_t>(k_) * (rows_ >> 1);
  }
  [[nodiscard]] int degree(VertexId) const override { return 3; }

  /// i == 0: previous on the cycle, 1: next on the cycle, 2: hypercube rung.
  [[nodiscard]] VertexId neighbor(VertexId v, int i) const override;
  [[nodiscard]] EdgeKey edge_key(VertexId v, int i) const override;
  [[nodiscard]] EdgeEndpoints endpoints(EdgeKey key) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string vertex_label(VertexId v) const override;

  [[nodiscard]] int order() const { return k_; }
  [[nodiscard]] std::uint64_t rows() const { return rows_; }
  [[nodiscard]] int cursor_of(VertexId v) const { return static_cast<int>(v / rows_); }
  [[nodiscard]] std::uint64_t row_of(VertexId v) const { return v % rows_; }
  [[nodiscard]] VertexId vertex_at(int cursor, std::uint64_t row) const {
    return static_cast<VertexId>(cursor) * rows_ + row;
  }

 private:
  int k_;
  std::uint64_t rows_;  // 2^k
};

}  // namespace faultroute
