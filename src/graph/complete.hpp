#pragma once

#include <cstdint>

#include "graph/topology.hpp"

namespace faultroute {

/// The complete graph K_n. Percolating K_n with p = c/n yields the
/// Erdos-Renyi random graph G_{n,p} of Theorems 10 and 11: local routing
/// costs Omega(n^2) probes while the bidirectional oracle router achieves
/// Theta(n^{3/2}).
class CompleteGraph final : public Topology {
 public:
  /// Requires 2 <= n <= 2^31 (edge keys use min * n + max).
  explicit CompleteGraph(std::uint64_t n);

  [[nodiscard]] std::uint64_t num_vertices() const override { return n_; }
  [[nodiscard]] std::uint64_t num_edges() const override { return n_ * (n_ - 1) / 2; }
  [[nodiscard]] int degree(VertexId) const override { return static_cast<int>(n_ - 1); }

  /// Neighbors of v are all other vertices, in increasing id order.
  [[nodiscard]] VertexId neighbor(VertexId v, int i) const override {
    const auto u = static_cast<VertexId>(i);
    return u < v ? u : u + 1;
  }

  [[nodiscard]] EdgeKey edge_key(VertexId v, int i) const override {
    const VertexId w = neighbor(v, i);
    const VertexId lo = v < w ? v : w;
    const VertexId hi = v < w ? w : v;
    return lo * n_ + hi;
  }

  [[nodiscard]] EdgeEndpoints endpoints(EdgeKey key) const override {
    return {key / n_, key % n_};
  }

  /// Incident-edge index at u of the edge {u, w}; O(1) for the clique.
  [[nodiscard]] int index_of(VertexId u, VertexId w) const {
    return static_cast<int>(w < u ? w : w - 1);
  }

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::uint64_t distance(VertexId u, VertexId v) const override {
    return u == v ? 0 : 1;
  }
  [[nodiscard]] std::vector<VertexId> shortest_path(VertexId u, VertexId v) const override;

  [[nodiscard]] bool has_closed_form_metric() const override { return true; }

 private:
  std::uint64_t n_;
};

}  // namespace faultroute
