#pragma once

#include <cstdint>

#include "graph/topology.hpp"

namespace faultroute {

/// The double binary tree TT_n (Section 2.1 of the paper): two complete
/// binary trees of depth n whose leaves are identified pairwise.
///
/// TT_n is the paper's illustrative example for the lower-bound lemma: the
/// two roots are connected with probability bounded away from zero iff
/// p > 1/sqrt(2) (Lemma 6), any *local* router between the roots needs about
/// p^{-n} probes (Theorem 7), yet an *oracle* router that probes mirrored
/// edge pairs routes in expected O(n) probes (Theorem 9).
///
/// Vertex numbering (L = 2^n leaves):
///  * leaves:          ids [0, L), leaf j is shared by both trees;
///  * tree-1 internal: ids [L, 2L - 1), heap index h in [1, L), id = L + h - 1;
///  * tree-2 internal: ids [2L - 1, 3L - 2), id = 2L - 1 + (h - 1).
///
/// Heap indices follow the usual binary-heap convention: root h = 1, children
/// of h are 2h and 2h+1; the "children" of a level-(n-1) internal node with
/// heap index h are the leaves with leaf index 2h - L and 2h + 1 - L.
class DoubleBinaryTree final : public Topology {
 public:
  /// Which of the two trees an edge or internal vertex belongs to.
  enum class Side { kTree1 = 0, kTree2 = 1 };

  /// Constructs TT_n. Requires 1 <= n <= 30.
  explicit DoubleBinaryTree(int n);

  [[nodiscard]] std::uint64_t num_vertices() const override { return 3 * leaves_ - 2; }
  [[nodiscard]] std::uint64_t num_edges() const override { return 2 * (2 * leaves_ - 2); }
  [[nodiscard]] int degree(VertexId v) const override;
  [[nodiscard]] VertexId neighbor(VertexId v, int i) const override;
  [[nodiscard]] EdgeKey edge_key(VertexId v, int i) const override;
  [[nodiscard]] EdgeEndpoints endpoints(EdgeKey key) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string vertex_label(VertexId v) const override;

  [[nodiscard]] int depth() const { return n_; }
  [[nodiscard]] std::uint64_t num_leaves() const { return leaves_; }

  /// The root of tree 1 ("x" in the paper) and of tree 2 ("y").
  [[nodiscard]] VertexId root1() const { return leaves_; }
  [[nodiscard]] VertexId root2() const { return 2 * leaves_ - 1; }

  [[nodiscard]] bool is_leaf(VertexId v) const { return v < leaves_; }
  [[nodiscard]] bool is_internal(VertexId v, Side side) const;

  /// Heap index of vertex v within tree `side`. Leaves have heap index
  /// L + leaf_index in both trees; internal vertices must belong to `side`.
  [[nodiscard]] std::uint64_t heap_index(VertexId v, Side side) const;

  /// Vertex id of the tree-`side` node with heap index h. Heap indices in
  /// [1, L) are internal nodes of that tree; [L, 2L) are the shared leaves.
  [[nodiscard]] VertexId vertex_of_heap(std::uint64_t h, Side side) const;

  /// Canonical key of the tree-`side` edge whose lower endpoint has heap
  /// index `child_heap` (in [2, 2L)). The paired-oracle router uses this to
  /// probe an edge together with its mirror image in the other tree.
  [[nodiscard]] EdgeKey tree_edge_key(Side side, std::uint64_t child_heap) const;

  /// The mirror image (same heap position, other tree) of an edge key.
  [[nodiscard]] EdgeKey mirror_edge_key(EdgeKey key) const;

 private:
  int n_;
  std::uint64_t leaves_;  // 2^n
};

}  // namespace faultroute
