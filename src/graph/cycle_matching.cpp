#include "graph/cycle_matching.hpp"

#include <numeric>
#include <stdexcept>

#include "random/rng.hpp"

// analyze:allow-file-throw-safety(neighbor and edge_key slot guards: out-of-range arguments are programming errors, surfaced through parallel first_error)
namespace faultroute {

CycleWithMatching::CycleWithMatching(std::uint64_t n, std::uint64_t matching_seed)
    : n_(n), seed_(matching_seed) {
  // Validate before match_ is sized: a nonsense n must throw
  // invalid_argument, not fail the allocation.
  if (n < 4 || n % 2 != 0) {
    throw std::invalid_argument("CycleWithMatching: N must be even and >= 4");
  }
  if (n > (std::uint64_t{1} << 32)) {
    throw std::invalid_argument("CycleWithMatching: N must be <= 2^32 (matching is stored)");
  }
  match_.resize(n);
  // Uniform perfect matching: shuffle the vertices, pair consecutive entries.
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(matching_seed);
  for (std::uint64_t i = n - 1; i > 0; --i) {
    const std::uint64_t j = uniform_below(rng, i + 1);
    std::swap(order[i], order[j]);
  }
  for (std::uint64_t i = 0; i < n; i += 2) {
    match_[order[i]] = order[i + 1];
    match_[order[i + 1]] = order[i];
  }
}

VertexId CycleWithMatching::neighbor(VertexId v, int i) const {
  switch (i) {
    case 0:
      return (v + n_ - 1) % n_;
    case 1:
      return (v + 1) % n_;
    case 2:
      return match_[v];
    default:
      throw std::out_of_range("CycleWithMatching::neighbor: index out of range");
  }
}

EdgeKey CycleWithMatching::edge_key(VertexId v, int i) const {
  // Cycle edge (v, v+1 mod N) is owned by v: key in [0, N).
  // Matching edge {v, w}: key = N + min(v, w). A matching partner that also
  // happens to be a cycle neighbour yields a parallel edge with a distinct
  // key, which the probe model handles as a multigraph.
  switch (i) {
    case 0:
      return (v + n_ - 1) % n_;
    case 1:
      return v;
    case 2: {
      const VertexId w = match_[v];
      return n_ + (v < w ? v : w);
    }
    default:
      throw std::out_of_range("CycleWithMatching::edge_key: index out of range");
  }
}

std::string CycleWithMatching::name() const {
  return "cycle_matching(n=" + std::to_string(n_) + ",seed=" + std::to_string(seed_) + ")";
}

}  // namespace faultroute
