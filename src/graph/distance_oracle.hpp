#pragma once

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "graph/flat_adjacency.hpp"

namespace faultroute {

/// A cached fault-free distance oracle over a FlatAdjacency CSR snapshot.
///
/// Topology families without a closed-form metric (de Bruijn, shuffle-
/// exchange, CCC, butterfly, ...) answer `Topology::distance` with a fresh
/// BFS per call. Routers that steer by the fault-free metric (greedy
/// descent, best-first, the hybrid's greedy phase) ask for d(x, target)
/// once per incident slot of every vertex they visit, so one routed message
/// re-derives the same single-target distance field hundreds of times —
/// the dominant cost of whole scenario sweeps (the de Bruijn router
/// shootout, pre-oracle).
///
/// The oracle replaces that with two precomputed layers:
///
///  * **Exact per-target columns.** `ensure_targets` runs one multi-source,
///    direction-optimizing BFS per block of up to 64 targets over the CSR
///    snapshot: the per-vertex frontier/visited state is a single 64-bit
///    word (bit m = target m of the block), a level expands top-down
///    (frontier rows scanned forward) while the frontier is sparse and
///    switches bottom-up (unfinished vertices pull from neighbor words)
///    once it saturates, and every newly-set bit records the level in that
///    target's column. BFS *distances* — unlike BFS parent trees — do not
///    depend on traversal order, so the batched sweep is exactly
///    `Topology::distance` value-for-value, including the
///    unreachable-sentinel convention (== num_vertices()).
///  * **ALT landmark bounds.** A handful of farthest-point landmarks with
///    full distance columns give the classic triangle-inequality lower
///    bound max_l |d(l,u) - d(l,v)| <= d(u,v), admissible and symmetric
///    (pinned by tests/test_distance_oracle.cpp). Exact columns answer the
///    routing hot path; the bounds are the cheap any-pair fallback.
///
/// Columns are memoised under a shared_mutex and never evicted, capped by a
/// byte budget (requests past the cap simply return nullptr and callers
/// fall back to `Topology::distance`, which is value-identical — the budget
/// affects speed, never results). One oracle is cached per FlatAdjacency
/// (`FlatAdjacency::distance_oracle()`), i.e. per topology, so scenario
/// sweeps share columns across every p-value, router, and trial of a
/// topology. Thread-safe under const access like the rest of the graph
/// layer.
class DistanceOracle {
 public:
  /// Landmarks to select (farthest-point, deterministic).
  static constexpr std::size_t kDefaultLandmarks = 8;
  /// Exact-column memo cap. A column costs 4 bytes/vertex; the default
  /// admits ~16k columns on a 2^12-vertex graph and ~256 on 2^20 vertices.
  static constexpr std::uint64_t kDefaultColumnBudgetBytes = 1ull << 30;

  /// Builds the landmark layer eagerly (num_landmarks BFS sweeps); exact
  /// columns are built on demand by ensure_targets. `flat` must outlive the
  /// oracle — FlatAdjacency::distance_oracle() guarantees it by caching the
  /// oracle on the snapshot. Graphs with >= 2^32 vertices get an inert
  /// oracle (columns would not fit uint32); every query then falls back.
  explicit DistanceOracle(const FlatAdjacency& flat,
                          std::size_t num_landmarks = kDefaultLandmarks,
                          std::uint64_t column_budget_bytes = kDefaultColumnBudgetBytes);

  /// The unreachable sentinel stored in columns: num_vertices() as uint32,
  /// so a widened column entry equals Topology::distance verbatim.
  [[nodiscard]] std::uint32_t unreachable() const { return unreachable_; }

  /// Builds (and memoises) the exact column of every listed target that is
  /// missing, in list order, until the byte budget is hit. Thread-safe;
  /// concurrent callers serialize on the builder lock.
  void ensure_targets(const std::vector<VertexId>& targets) const;

  /// The exact column for `target`: entry x is the fault-free distance
  /// d(x, target), unreachable() if disconnected. nullptr when the column
  /// was never built (budget, or an inert oracle) — callers must fall back
  /// to Topology::distance, which returns the same values. The pointer
  /// stays valid for the oracle's lifetime (columns are never evicted).
  [[nodiscard]] const std::uint32_t* distances_to(VertexId target) const;

  /// ALT lower bound on d(u, v): admissible (<= the true distance) and
  /// symmetric. Returns the exact sentinel distance when the landmarks
  /// prove u and v disconnected; 0 when nothing is known.
  [[nodiscard]] std::uint64_t lower_bound(VertexId u, VertexId v) const;

  [[nodiscard]] std::size_t num_landmarks() const { return landmarks_.size(); }
  [[nodiscard]] VertexId landmark(std::size_t j) const { return landmarks_[j]; }

  /// Memoised exact columns built so far (landmark columns not included).
  [[nodiscard]] std::size_t num_columns() const;

 private:
  using Column = std::unique_ptr<std::uint32_t[]>;

  /// One direction-optimizing multi-source BFS for up to 64 sources;
  /// cols[m] receives the full distance column of sources[m].
  void bfs_block(const std::vector<VertexId>& sources,
                 const std::vector<std::uint32_t*>& cols) const;
  void select_landmarks(std::size_t num_landmarks);

  const FlatAdjacency* flat_;
  std::uint64_t n_ = 0;
  std::uint32_t unreachable_ = 0;
  bool usable_ = false;  // false for graphs whose distances overflow uint32
  std::uint64_t column_budget_bytes_ = 0;

  // Immutable after construction.
  std::vector<VertexId> landmarks_;
  std::vector<Column> landmark_columns_;

  // Exact-column memo: grow-only, guarded by mutex_ (shared for lookups,
  // exclusive while ensure_targets inserts). Column storage is stable
  // (unique_ptr arrays), so a pointer handed out under the shared lock
  // outlives any later rehash.
  mutable std::shared_mutex mutex_;
  // lint:allow-hash(cold memo of sparse targets; hot path reads the columns)
  mutable std::unordered_map<VertexId, Column> columns_;
  mutable std::uint64_t column_bytes_ = 0;

  /// Per-vertex bitset state pooled across bfs_block calls: grown once to
  /// n_ words on first use, then only refilled. Every bfs_block caller
  /// serializes (the ctor runs single-threaded, ensure_targets holds mutex_
  /// exclusively), so one shared scratch is race-free — same pooling idiom
  /// as ProbeArena / BfsScratch.
  struct BlockScratch {
    std::vector<std::uint64_t> visited;
    std::vector<std::uint64_t> frontier;
    std::vector<std::uint64_t> next;
  };
  mutable BlockScratch scratch_;
};

/// Fault-free distance of x to the fixed target a column was fetched for:
/// one array load when the oracle column is cached, graph.distance (a BFS on
/// families without a closed form) otherwise. Both branches return identical
/// values — the column IS graph.distance memoised — so metric routers can
/// call this unconditionally without affecting results.
inline std::uint64_t metric_distance(const Topology& graph, const std::uint32_t* column,
                                     VertexId x, VertexId target) {
  return column != nullptr ? column[x] : graph.distance(x, target);
}

}  // namespace faultroute
