#pragma once

#include <array>
#include <cstdint>

#include "graph/topology.hpp"

namespace faultroute {

/// The d-dimensional mesh M^d with side length M (M^d vertices), optionally
/// with wraparound (torus).
///
/// This is the graph of Theorem 4: for every fixed p above the percolation
/// threshold p_c(d), local routing between vertices at distance n costs
/// expected O(n) probes. Coordinates use mixed-radix encoding:
/// id = sum_a coord[a] * M^a.
class Mesh final : public Topology {
 public:
  static constexpr int kMaxDimension = 8;

  using Coords = std::array<std::int64_t, kMaxDimension>;

  /// Constructs M^d with side `side`. Requires 1 <= dim <= 8, side >= 2
  /// (side >= 3 when wrap is set, to keep edge keys canonical), and
  /// side^dim <= 2^62.
  Mesh(int dim, std::int64_t side, bool wrap = false);

  [[nodiscard]] std::uint64_t num_vertices() const override { return num_vertices_; }
  [[nodiscard]] std::uint64_t num_edges() const override;
  [[nodiscard]] int degree(VertexId v) const override;
  [[nodiscard]] VertexId neighbor(VertexId v, int i) const override;
  [[nodiscard]] EdgeKey edge_key(VertexId v, int i) const override;
  [[nodiscard]] EdgeEndpoints endpoints(EdgeKey key) const override;
  [[nodiscard]] std::string name() const override;

  /// L1 (Manhattan) distance; on the torus, per-axis wrap-around distance.
  [[nodiscard]] std::uint64_t distance(VertexId u, VertexId v) const override;

  /// Axis-by-axis monotone shortest path.
  [[nodiscard]] std::vector<VertexId> shortest_path(VertexId u, VertexId v) const override;

  [[nodiscard]] bool has_closed_form_metric() const override { return true; }

  [[nodiscard]] std::string vertex_label(VertexId v) const override;

  [[nodiscard]] int dimension() const { return dim_; }
  [[nodiscard]] std::int64_t side() const { return side_; }
  [[nodiscard]] bool wraps() const { return wrap_; }

  /// Decodes a vertex id into coordinates (entries beyond dimension() are 0).
  [[nodiscard]] Coords coords_of(VertexId v) const;

  /// Encodes coordinates into a vertex id. Each coord must be in [0, side).
  [[nodiscard]] VertexId vertex_at(const Coords& coords) const;

 private:
  /// Enumerates the i-th valid (axis, direction) move from v.
  /// direction: 0 = decreasing coordinate, 1 = increasing.
  void locate_move(VertexId v, int i, int& axis, int& direction) const;

  int dim_;
  std::int64_t side_;
  bool wrap_;
  std::uint64_t num_vertices_;
  std::array<std::uint64_t, kMaxDimension> stride_;
};

}  // namespace faultroute
