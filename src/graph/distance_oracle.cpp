#include "graph/distance_oracle.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <mutex>

#include "obs/counter_registry.hpp"

namespace faultroute {

DistanceOracle::DistanceOracle(const FlatAdjacency& flat, std::size_t num_landmarks,
                               std::uint64_t column_budget_bytes)
    : flat_(&flat),
      n_(flat.num_vertices()),
      column_budget_bytes_(column_budget_bytes) {
  usable_ = n_ > 0 && n_ < (1ull << 32);
  unreachable_ = usable_ ? static_cast<std::uint32_t>(n_) : 0;
  obs::global_count("graph.distance_oracle.builds");
  if (usable_) select_landmarks(num_landmarks);
  obs::global_count("graph.distance_oracle.landmarks", landmarks_.size());
}

// analyze:hot-root(oracle column builds: one multi-source BFS per 64-target block)
void DistanceOracle::bfs_block(const std::vector<VertexId>& sources,
                               const std::vector<std::uint32_t*>& cols) const {
  const std::size_t k = sources.size();
  if (k == 0) return;
  obs::global_count("graph.distance_oracle.bfs_blocks");

  for (std::size_t m = 0; m < k; ++m) {
    std::fill(cols[m], cols[m] + n_, unreachable_);
    cols[m][sources[m]] = 0;
  }

  // Bit m of a word tracks source m of the block. Distances are assigned
  // the moment a bit first enters `visited`, so the values are independent
  // of the order vertices happen to be scanned in — the property that makes
  // this batched sweep value-identical to one Topology::distance BFS per
  // source (see the class comment). The word arrays are pooled on the
  // oracle (callers serialize; see BlockScratch): steady-state blocks only
  // refill, they never allocate.
  if (scratch_.visited.size() < n_) {
    // analyze:allow-hot-alloc(one-time warm-up: pooled scratch grows to n_ on first block, reused after)
    scratch_.visited.resize(n_);
    scratch_.frontier.resize(n_);  // analyze:allow-hot-alloc(same one-time warm-up)
    scratch_.next.resize(n_);  // analyze:allow-hot-alloc(same one-time warm-up)
  }
  std::vector<std::uint64_t>& visited = scratch_.visited;
  std::vector<std::uint64_t>& frontier = scratch_.frontier;
  std::vector<std::uint64_t>& next = scratch_.next;
  std::fill(visited.begin(), visited.end(), 0);
  std::fill(frontier.begin(), frontier.end(), 0);
  std::fill(next.begin(), next.end(), 0);
  std::uint64_t frontier_vertices = 0;
  for (std::size_t m = 0; m < k; ++m) {
    const VertexId s = sources[m];
    if (frontier[s] == 0) ++frontier_vertices;
    const std::uint64_t bit = 1ull << m;
    visited[s] |= bit;
    frontier[s] |= bit;
  }
  const std::uint64_t full = k == 64 ? ~0ull : (1ull << k) - 1;

  std::uint32_t level = 0;
  while (frontier_vertices > 0) {
    const std::uint32_t next_level = level + 1;
    std::uint64_t next_vertices = 0;
    // Direction optimization (Beamer-style): expand frontier rows forward
    // while the frontier is sparse; once it covers a decent fraction of the
    // graph, flip to pulling — each still-unfinished vertex ORs its
    // neighbors' frontier words and can stop as soon as its missing bits
    // are covered. Either direction produces the same `next` set.
    if (frontier_vertices * 8 < n_) {
      for (VertexId v = 0; v < n_; ++v) {
        const std::uint64_t w = frontier[v];
        if (w == 0) continue;
        const std::uint64_t end = flat_->row_end(v);
        for (std::uint64_t pos = flat_->row_begin(v); pos < end; ++pos) {
          const VertexId y = flat_->neighbor_at(pos);
          std::uint64_t add = w & ~visited[y];
          if (add == 0) continue;
          if (next[y] == 0) ++next_vertices;
          visited[y] |= add;
          next[y] |= add;
          while (add != 0) {
            const int m = std::countr_zero(add);
            add &= add - 1;
            cols[m][y] = next_level;
          }
        }
      }
    } else {
      for (VertexId y = 0; y < n_; ++y) {
        const std::uint64_t rem = full & ~visited[y];
        if (rem == 0) continue;
        std::uint64_t acc = 0;
        const std::uint64_t end = flat_->row_end(y);
        for (std::uint64_t pos = flat_->row_begin(y); pos < end; ++pos) {
          acc |= frontier[flat_->neighbor_at(pos)];
          if ((rem & ~acc) == 0) break;
        }
        std::uint64_t add = rem & acc;
        if (add == 0) continue;
        ++next_vertices;
        visited[y] |= add;
        next[y] |= add;
        while (add != 0) {
          const int m = std::countr_zero(add);
          add &= add - 1;
          cols[m][y] = next_level;
        }
      }
    }
    frontier.swap(next);
    std::fill(next.begin(), next.end(), 0);
    frontier_vertices = next_vertices;
    level = next_level;
  }
}

void DistanceOracle::select_landmarks(std::size_t num_landmarks) {
  const std::size_t k =
      static_cast<std::size_t>(std::min<std::uint64_t>(num_landmarks, n_));
  if (k == 0) return;
  landmarks_.reserve(k);
  landmark_columns_.reserve(k);

  // Farthest-point selection: start at vertex 0, then repeatedly take the
  // vertex maximizing its distance to the chosen set (ties -> lowest id).
  // Deterministic, and the classic heuristic for well-spread ALT landmarks.
  std::vector<std::uint32_t> min_dist(n_, std::numeric_limits<std::uint32_t>::max());
  VertexId pick = 0;
  for (std::size_t j = 0; j < k; ++j) {
    landmarks_.push_back(pick);
    Column col(new std::uint32_t[n_]);
    const std::vector<VertexId> src{pick};
    const std::vector<std::uint32_t*> out{col.get()};
    bfs_block(src, out);
    for (VertexId v = 0; v < n_; ++v) min_dist[v] = std::min(min_dist[v], col[v]);
    landmark_columns_.push_back(std::move(col));
    if (j + 1 == k) break;
    pick = 0;
    std::uint32_t best = 0;
    for (VertexId v = 0; v < n_; ++v) {
      if (min_dist[v] > best) {
        best = min_dist[v];
        pick = v;
      }
    }
    if (best == 0) break;  // every vertex is already a landmark
  }
}

// analyze:allow-hot-alloc(column builds are the memoised slow path, one allocation set per new target under budget; steady-state routing reads distances_to)
void DistanceOracle::ensure_targets(const std::vector<VertexId>& targets) const {
  if (!usable_) return;
  const std::uint64_t column_bytes = n_ * sizeof(std::uint32_t);
  std::unique_lock lock(mutex_);

  std::vector<VertexId> pending;
  std::vector<Column> pending_cols;
  std::uint64_t denied = 0;
  const auto flush = [&] {
    if (pending.empty()) return;
    std::vector<std::uint32_t*> out;
    out.reserve(pending_cols.size());
    for (const Column& c : pending_cols) out.push_back(c.get());
    bfs_block(pending, out);
    for (std::size_t m = 0; m < pending.size(); ++m) {
      columns_.emplace(pending[m], std::move(pending_cols[m]));
      column_bytes_ += column_bytes;
    }
    obs::global_count("graph.distance_oracle.columns_built", pending.size());
    pending.clear();
    pending_cols.clear();
  };

  for (const VertexId t : targets) {
    if (t >= n_ || columns_.contains(t)) continue;
    if (std::find(pending.begin(), pending.end(), t) != pending.end()) continue;
    if (column_bytes_ + (pending.size() + 1) * column_bytes > column_budget_bytes_) {
      ++denied;
      continue;
    }
    pending.push_back(t);
    pending_cols.emplace_back(new std::uint32_t[n_]);
    if (pending.size() == 64) flush();
  }
  flush();
  if (denied > 0) obs::global_count("graph.distance_oracle.budget_denials", denied);
}

const std::uint32_t* DistanceOracle::distances_to(VertexId target) const {
  if (!usable_) return nullptr;
  std::shared_lock lock(mutex_);
  const auto it = columns_.find(target);
  if (it == columns_.end()) {
    obs::global_count("graph.distance_oracle.column_misses");
    return nullptr;
  }
  obs::global_count("graph.distance_oracle.column_hits");
  return it->second.get();
}

std::uint64_t DistanceOracle::lower_bound(VertexId u, VertexId v) const {
  if (!usable_ || u == v) return 0;
  std::uint64_t best = 0;
  for (const Column& col : landmark_columns_) {
    const std::uint32_t du = col[u];
    const std::uint32_t dv = col[v];
    const bool far_u = du == unreachable_;
    const bool far_v = dv == unreachable_;
    if (far_u != far_v) return n_;  // landmark reaches one side only: disconnected
    if (far_u) continue;            // landmark sees neither — no information
    const std::uint32_t diff = du > dv ? du - dv : dv - du;
    best = std::max<std::uint64_t>(best, diff);
  }
  return best;
}

std::size_t DistanceOracle::num_columns() const {
  std::shared_lock lock(mutex_);
  return columns_.size();
}

}  // namespace faultroute
