#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/topology.hpp"

namespace faultroute {

/// A materialised adjacency-list graph. Used for small test fixtures and for
/// extracted percolation clusters. Supports parallel edges; self-loops are
/// rejected. Edge keys are the insertion indices of the edges.
class ExplicitGraph final : public Topology {
 public:
  using EdgeList = std::vector<std::pair<VertexId, VertexId>>;

  /// Builds a graph on `num_vertices` vertices from an undirected edge list.
  ExplicitGraph(std::uint64_t num_vertices, const EdgeList& edges);

  [[nodiscard]] std::uint64_t num_vertices() const override { return adjacency_.size(); }
  [[nodiscard]] std::uint64_t num_edges() const override { return num_edges_; }
  [[nodiscard]] int degree(VertexId v) const override {
    return static_cast<int>(adjacency_[v].size());
  }
  [[nodiscard]] VertexId neighbor(VertexId v, int i) const override {
    return adjacency_[v][static_cast<std::size_t>(i)].first;
  }
  [[nodiscard]] EdgeKey edge_key(VertexId v, int i) const override {
    return adjacency_[v][static_cast<std::size_t>(i)].second;
  }
  [[nodiscard]] EdgeEndpoints endpoints(EdgeKey key) const override {
    const auto& [a, b] = edges_.at(key);
    return {a, b};
  }
  [[nodiscard]] std::string name() const override;

 private:
  // adjacency_[v] = (neighbor, edge index) pairs in insertion order.
  std::vector<std::vector<std::pair<VertexId, EdgeKey>>> adjacency_;
  EdgeList edges_;  // edge index -> endpoints
  std::uint64_t num_edges_ = 0;
};

}  // namespace faultroute
