#include "graph/snapshot.hpp"

// analyze:allow-file-throw-safety(snapshot open/build is cold per-topology setup; corruption diagnostics are required to throw rather than fall back to a rebuild)

#include <array>
#include <bit>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "graph/distance_oracle.hpp"
#include "graph/flat_adjacency.hpp"
#include "obs/build_info.hpp"
#include "obs/counter_registry.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define FAULTROUTE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace faultroute {

namespace {

inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// Byte offsets of the fixed header fields (see the layout table in
/// snapshot.hpp — this block IS the format definition).
inline constexpr std::size_t kOffMagic = 0;
inline constexpr std::size_t kOffVersion = 8;
inline constexpr std::size_t kOffHeaderBytes = 12;
inline constexpr std::size_t kOffNumVertices = 16;
inline constexpr std::size_t kOffNumChannels = 24;
inline constexpr std::size_t kOffNumEdgeIds = 28;
inline constexpr std::size_t kOffPayloadBytes = 32;
inline constexpr std::size_t kOffPayloadChecksum = 40;
inline constexpr std::size_t kOffSpec = 48;
inline constexpr std::size_t kOffProvenance = kOffSpec + snap::kSpecBytes;
inline constexpr std::size_t kOffHeaderChecksum = snap::kHeaderBytes - 8;

[[noreturn]] void fail(const std::string& path, const std::string& field,
                       const std::string& why) {
  throw std::runtime_error("snapshot '" + path + "': " + why + " (field " + field + ")");
}

void require_little_endian(const std::string& path) {
  if constexpr (std::endian::native != std::endian::little) {
    throw std::runtime_error("snapshot '" + path +
                             "': faultroute.snap files are little-endian and this host "
                             "is not; refusing to byte-swap silently");
  }
}

void put_u32(unsigned char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}
void put_u64(unsigned char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}
std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}
std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

/// Folds a u32 array into the word checksum exactly as it lands in the file:
/// pairs of consecutive values form one little-endian word, an odd tail is
/// zero-padded (matching the file's zero pad bytes).
std::uint64_t fnv1a_u32_words(const std::uint32_t* values, std::size_t count,
                              std::uint64_t seed) {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i + 1 < count; i += 2) {
    const std::uint64_t word =
        static_cast<std::uint64_t>(values[i]) | (static_cast<std::uint64_t>(values[i + 1]) << 32);
    h = (h ^ word) * kFnvPrime;
  }
  if (count % 2 != 0) h = (h ^ static_cast<std::uint64_t>(values[count - 1])) * kFnvPrime;
  return h;
}

/// Payload byte count for a (vertices, channels) shape: three u64 arrays
/// plus the u32 edge-id array, zero-padded to a whole number of words.
std::uint64_t payload_bytes_for(std::uint64_t num_vertices, std::uint32_t num_channels) {
  const std::uint64_t c = num_channels;
  return (num_vertices + 1) * 8 + c * 8 + c * 8 + ((c * 4 + 7) / 8) * 8;
}

std::string fixed_field_string(const unsigned char* base, std::size_t size) {
  const char* chars = reinterpret_cast<const char*>(base);
  std::size_t len = 0;
  while (len < size && chars[len] != '\0') ++len;
  return std::string(chars, len);
}

}  // namespace

std::uint64_t fnv1a_words(const std::uint64_t* words, std::size_t count, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < count; ++i) h = (h ^ words[i]) * kFnvPrime;
  return h;
}

std::string snapshot_filename(const std::string& topology_spec) {
  std::string name;
  name.reserve(topology_spec.size() + 5);
  for (const char c : topology_spec) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '_';
    name += keep ? c : '_';
  }
  return name + ".snap";
}

std::string snapshot_path(const std::string& dir, const std::string& topology_spec) {
  return (std::filesystem::path(dir) / snapshot_filename(topology_spec)).string();
}

void write_snapshot(const std::string& path, const std::string& topology_spec,
                    const FlatAdjacency& flat) {
  require_little_endian(path);
  if (topology_spec.size() >= snap::kSpecBytes) {
    throw std::invalid_argument("snapshot '" + path + "': topology spec '" + topology_spec +
                                "' exceeds the " + std::to_string(snap::kSpecBytes - 1) +
                                "-byte header field (field topology_spec)");
  }
  const std::uint64_t num_vertices = flat.num_vertices();
  const std::uint32_t num_channels = flat.num_channels();
  const std::uint64_t payload_bytes = payload_bytes_for(num_vertices, num_channels);

  // The arrays are checksummed in file order; fnv1a_u32_words reproduces
  // the edge-id tail word's zero padding, so this chained fold equals one
  // word scan of the payload on re-open.
  std::uint64_t payload_checksum = fnv1a_words(flat.offsets_data(), num_vertices + 1);
  payload_checksum = fnv1a_words(flat.neighbors_data(), num_channels, payload_checksum);
  payload_checksum = fnv1a_words(flat.keys_data(), num_channels, payload_checksum);
  payload_checksum = fnv1a_u32_words(flat.edge_ids_data(), num_channels, payload_checksum);

  alignas(8) std::array<unsigned char, snap::kHeaderBytes> header{};
  std::memcpy(header.data() + kOffMagic, snap::kMagic, sizeof snap::kMagic);
  put_u32(header.data() + kOffVersion, snap::kVersion);
  put_u32(header.data() + kOffHeaderBytes, snap::kHeaderBytes);
  put_u64(header.data() + kOffNumVertices, num_vertices);
  put_u32(header.data() + kOffNumChannels, num_channels);
  put_u32(header.data() + kOffNumEdgeIds, flat.num_edge_ids());
  put_u64(header.data() + kOffPayloadBytes, payload_bytes);
  put_u64(header.data() + kOffPayloadChecksum, payload_checksum);
  std::memcpy(header.data() + kOffSpec, topology_spec.data(), topology_spec.size());
  const std::string& provenance = obs::build_info().git_hash;
  std::memcpy(header.data() + kOffProvenance, provenance.data(),
              std::min(provenance.size(), snap::kProvenanceBytes - 1));
  put_u64(header.data() + kOffHeaderChecksum,
          fnv1a_words(reinterpret_cast<const std::uint64_t*>(header.data()),
                      kOffHeaderChecksum / 8));

  // Write to a temporary sibling and rename into place: readers either see
  // the complete verified file or none at all, never a torn write.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("snapshot '" + path + "': cannot write '" + tmp + "'");
    const auto put = [&](const void* data, std::uint64_t bytes) {
      out.write(static_cast<const char*>(data), static_cast<std::streamsize>(bytes));
    };
    put(header.data(), header.size());
    put(flat.offsets_data(), (num_vertices + 1) * 8);
    put(flat.neighbors_data(), static_cast<std::uint64_t>(num_channels) * 8);
    put(flat.keys_data(), static_cast<std::uint64_t>(num_channels) * 8);
    put(flat.edge_ids_data(), static_cast<std::uint64_t>(num_channels) * 4);
    const std::array<char, 8> pad{};
    const std::uint64_t unpadded = (num_vertices + 1) * 8 +
                                   static_cast<std::uint64_t>(num_channels) * 20;
    if (payload_bytes != unpadded) {
      out.write(pad.data(), static_cast<std::streamsize>(payload_bytes - unpadded));
    }
    out.flush();
    if (!out) throw std::runtime_error("snapshot '" + path + "': write to '" + tmp + "' failed");
  }
  std::filesystem::rename(tmp, path);
}

SnapshotInfo read_snapshot_info(const std::string& path) {
  return MappedSnapshot::open(path)->info();
}

MappedSnapshot::~MappedSnapshot() {
#ifdef FAULTROUTE_HAVE_MMAP
  if (mmapped_ && data_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(data_), static_cast<std::size_t>(size_));
  }
#endif
}

std::shared_ptr<const MappedSnapshot> MappedSnapshot::open(const std::string& path) {
  require_little_endian(path);
  std::shared_ptr<MappedSnapshot> snap(new MappedSnapshot());
  snap->path_ = path;

  std::uint64_t file_size = 0;
#ifdef FAULTROUTE_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);  // NOLINT(cppcoreguidelines-pro-type-vararg)
  if (fd < 0) throw std::runtime_error("snapshot '" + path + "': cannot open file");
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw std::runtime_error("snapshot '" + path + "': cannot stat file");
  }
  file_size = static_cast<std::uint64_t>(st.st_size);
  if (file_size < snap::kHeaderBytes) {
    ::close(fd);
    fail(path, "header_bytes",
         "truncated: file is " + std::to_string(file_size) + " bytes, the fixed header needs " +
             std::to_string(snap::kHeaderBytes));
  }
  void* mapping = ::mmap(nullptr, static_cast<std::size_t>(file_size), PROT_READ, MAP_SHARED,
                         fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (mapping == MAP_FAILED) {
    throw std::runtime_error("snapshot '" + path + "': mmap failed");
  }
  snap->data_ = static_cast<const unsigned char*>(mapping);
  snap->mmapped_ = true;
#else
  // Portable fallback: read the bytes into an owned word-aligned buffer —
  // identical semantics, no page sharing.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("snapshot '" + path + "': cannot open file");
  file_size = static_cast<std::uint64_t>(in.tellg());
  if (file_size < snap::kHeaderBytes) {
    fail(path, "header_bytes",
         "truncated: file is " + std::to_string(file_size) + " bytes, the fixed header needs " +
             std::to_string(snap::kHeaderBytes));
  }
  snap->owned_ = std::make_unique<std::uint64_t[]>((file_size + 7) / 8);
  in.seekg(0);
  in.read(reinterpret_cast<char*>(snap->owned_.get()),
          static_cast<std::streamsize>(file_size));
  if (!in) throw std::runtime_error("snapshot '" + path + "': short read");
  snap->data_ = reinterpret_cast<const unsigned char*>(snap->owned_.get());
#endif
  snap->size_ = file_size;

  const unsigned char* base = snap->data_;
  if (std::memcmp(base + kOffMagic, snap::kMagic, sizeof snap::kMagic) != 0) {
    fail(path, "magic", "not a faultroute.snap file (bad magic)");
  }
  const std::uint32_t version = get_u32(base + kOffVersion);
  if (version != snap::kVersion) {
    fail(path, "version",
         "unsupported format version " + std::to_string(version) + ", this build reads " +
             std::to_string(snap::kVersion));
  }
  const std::uint32_t header_bytes = get_u32(base + kOffHeaderBytes);
  if (header_bytes != snap::kHeaderBytes) {
    fail(path, "header_bytes",
         "header size " + std::to_string(header_bytes) + " != " +
             std::to_string(snap::kHeaderBytes));
  }
  const std::uint64_t header_checksum = get_u64(base + kOffHeaderChecksum);
  const std::uint64_t computed_header =
      fnv1a_words(reinterpret_cast<const std::uint64_t*>(base), kOffHeaderChecksum / 8);
  if (header_checksum != computed_header) {
    fail(path, "header_checksum", "header checksum mismatch — the header is corrupt");
  }

  SnapshotInfo& info = snap->info_;
  info.version = version;
  info.num_vertices = get_u64(base + kOffNumVertices);
  info.num_channels = get_u32(base + kOffNumChannels);
  info.num_edge_ids = get_u32(base + kOffNumEdgeIds);
  info.payload_bytes = get_u64(base + kOffPayloadBytes);
  info.payload_checksum = get_u64(base + kOffPayloadChecksum);
  info.header_checksum = header_checksum;
  info.topology_spec = fixed_field_string(base + kOffSpec, snap::kSpecBytes);
  info.provenance = fixed_field_string(base + kOffProvenance, snap::kProvenanceBytes);

  const std::uint64_t expected_payload =
      payload_bytes_for(info.num_vertices, info.num_channels);
  if (info.payload_bytes != expected_payload) {
    fail(path, "payload_bytes",
         "payload size " + std::to_string(info.payload_bytes) + " is inconsistent with " +
             std::to_string(info.num_vertices) + " vertices / " +
             std::to_string(info.num_channels) + " channels (expected " +
             std::to_string(expected_payload) + ")");
  }
  if (file_size != snap::kHeaderBytes + info.payload_bytes) {
    fail(path, "payload_bytes",
         "truncated: file is " + std::to_string(file_size) + " bytes, header + payload need " +
             std::to_string(snap::kHeaderBytes + info.payload_bytes));
  }
  // This scan both verifies integrity and pages the whole payload in, so
  // the first routed message never stalls on major faults mid-batch.
  const std::uint64_t computed_payload = fnv1a_words(
      reinterpret_cast<const std::uint64_t*>(base + snap::kHeaderBytes), info.payload_bytes / 8);
  if (computed_payload != info.payload_checksum) {
    fail(path, "payload_checksum", "payload checksum mismatch — the CSR arrays are corrupt");
  }
  return snap;
}

const std::uint64_t* MappedSnapshot::offsets() const {
  return reinterpret_cast<const std::uint64_t*>(data_ + snap::kHeaderBytes);
}
const VertexId* MappedSnapshot::neighbors() const {
  return reinterpret_cast<const VertexId*>(data_ + snap::kHeaderBytes +
                                           (info_.num_vertices + 1) * 8);
}
const EdgeKey* MappedSnapshot::keys() const {
  return reinterpret_cast<const EdgeKey*>(
      data_ + snap::kHeaderBytes + (info_.num_vertices + 1) * 8 +
      static_cast<std::uint64_t>(info_.num_channels) * 8);
}
const std::uint32_t* MappedSnapshot::edge_ids() const {
  return reinterpret_cast<const std::uint32_t*>(
      data_ + snap::kHeaderBytes + (info_.num_vertices + 1) * 8 +
      static_cast<std::uint64_t>(info_.num_channels) * 16);
}

// Defined here rather than in flat_adjacency.cpp so the hot-path translation
// unit stays free of filesystem/mmap concerns.
FlatAdjacency::FlatAdjacency(const Topology& graph,
                             std::shared_ptr<const MappedSnapshot> snapshot)
    : graph_(&graph), offsets_(snapshot->offsets()), snapshot_(std::move(snapshot)) {
  const SnapshotInfo& info = snapshot_->info();
  if (info.num_vertices != graph.num_vertices()) {
    fail(snapshot_->path(), "num_vertices",
         "snapshot has " + std::to_string(info.num_vertices) +
             " vertices but the topology has " + std::to_string(graph.num_vertices()));
  }
  // Deliberately NOT counted as a graph.flat_adjacency.materializations —
  // nothing is materialized; that counter staying at zero is how CI pins
  // the warm-start property.
  num_vertices_ = info.num_vertices;
  num_channels_ = info.num_channels;
  num_edge_ids_ = info.num_edge_ids;
  neighbors_ = snapshot_->neighbors();
  keys_ = snapshot_->keys();
  edge_ids_ = snapshot_->edge_ids();
}

std::unique_ptr<FlatAdjacency> open_snapshot_adjacency(const std::string& dir,
                                                       const std::string& topology_spec,
                                                       const Topology& graph) {
  const std::string path = snapshot_path(dir, topology_spec);
  if (!std::filesystem::exists(path)) {
    // Absent file = cache miss: the caller falls back to materializing.
    obs::global_count("graph.snapshot.misses");
    return nullptr;
  }
  // A *present* file must verify — corruption throws, it never rebuilds.
  // analyze:cold(one-time snapshot open and checksum scan per topology, off every routing loop)
  const std::shared_ptr<const MappedSnapshot> snapshot = MappedSnapshot::open(path);
  if (snapshot->info().topology_spec != topology_spec) {
    fail(path, "topology_spec",
         "snapshot was built from '" + snapshot->info().topology_spec + "', expected '" +
             topology_spec + "'");
  }
  obs::global_count("graph.snapshot.hits");
  obs::global_count("graph.snapshot.bytes_mapped", snapshot->mapped_bytes());
  return std::make_unique<FlatAdjacency>(graph, snapshot);
}

}  // namespace faultroute
