#include "graph/cube_connected_cycles.hpp"

#include <sstream>
#include <stdexcept>

// analyze:allow-file-throw-safety(neighbor and edge_key slot guards: out-of-range arguments are programming errors, surfaced through parallel first_error)
namespace faultroute {

CubeConnectedCycles::CubeConnectedCycles(int k) : k_(k), rows_(1ULL << k) {
  if (k < 3 || k > 26) {
    throw std::invalid_argument("CubeConnectedCycles: order must be in [3, 26]");
  }
}

VertexId CubeConnectedCycles::neighbor(VertexId v, int i) const {
  const int cursor = cursor_of(v);
  const std::uint64_t row = row_of(v);
  switch (i) {
    case 0:
      return vertex_at((cursor + k_ - 1) % k_, row);
    case 1:
      return vertex_at((cursor + 1) % k_, row);
    case 2:
      return vertex_at(cursor, row ^ (1ULL << cursor));
    default:
      throw std::out_of_range("CubeConnectedCycles::neighbor: index out of range");
  }
}

EdgeKey CubeConnectedCycles::edge_key(VertexId v, int i) const {
  // Cycle edge from (cursor, row) to (cursor+1, row) is owned by its lower
  // cursor endpoint in the +1 sense: key = 2 * owner. Rung edge is owned by
  // the endpoint whose row bit `cursor` is 0: key = 2 * owner + 1.
  switch (i) {
    case 0:
      return (neighbor(v, 0) << 1);          // owner is the predecessor
    case 1:
      return (v << 1);                        // v owns the edge to its successor
    case 2: {
      const int cursor = cursor_of(v);
      const std::uint64_t row = row_of(v);
      const VertexId owner =
          (row & (1ULL << cursor)) == 0 ? v : vertex_at(cursor, row ^ (1ULL << cursor));
      return (owner << 1) | 1ULL;
    }
    default:
      throw std::out_of_range("CubeConnectedCycles::edge_key: index out of range");
  }
}

EdgeEndpoints CubeConnectedCycles::endpoints(EdgeKey key) const {
  const VertexId owner = key >> 1;
  if ((key & 1ULL) == 0) {
    // Cycle edge: owner -> next cursor.
    return {owner, vertex_at((cursor_of(owner) + 1) % k_, row_of(owner))};
  }
  const int cursor = cursor_of(owner);
  return {owner, vertex_at(cursor, row_of(owner) ^ (1ULL << cursor))};
}

std::string CubeConnectedCycles::name() const {
  return "ccc(k=" + std::to_string(k_) + ")";
}

std::string CubeConnectedCycles::vertex_label(VertexId v) const {
  std::ostringstream out;
  out << "(c=" << cursor_of(v) << ",r=" << row_of(v) << ')';
  return out.str();
}

}  // namespace faultroute
