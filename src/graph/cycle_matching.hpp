#pragma once

#include <cstdint>
#include <vector>

#include "graph/topology.hpp"

namespace faultroute {

/// A cycle on N vertices plus a uniformly random perfect matching
/// (Bollobas-Chung): constant degree 3, diameter Theta(log N). Referenced in
/// the paper's introduction as the classic example where short paths exist
/// but cannot be found quickly; we include it in the extension experiments.
class CycleWithMatching final : public Topology {
 public:
  /// Requires even N >= 4. The matching is drawn deterministically from
  /// `matching_seed` (Fisher-Yates over the vertex set).
  CycleWithMatching(std::uint64_t n, std::uint64_t matching_seed);

  [[nodiscard]] std::uint64_t num_vertices() const override { return n_; }
  [[nodiscard]] std::uint64_t num_edges() const override { return n_ + n_ / 2; }
  [[nodiscard]] int degree(VertexId) const override { return 3; }

  /// i == 0: predecessor on the cycle, 1: successor, 2: matching partner.
  [[nodiscard]] VertexId neighbor(VertexId v, int i) const override;
  [[nodiscard]] EdgeKey edge_key(VertexId v, int i) const override;
  [[nodiscard]] EdgeEndpoints endpoints(EdgeKey key) const override {
    if (key < n_) return {key, (key + 1) % n_};
    const VertexId m = key - n_;
    return {m, match_[m]};
  }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] VertexId partner(VertexId v) const { return match_[v]; }

 private:
  std::uint64_t n_;
  std::uint64_t seed_;
  std::vector<VertexId> match_;
};

}  // namespace faultroute
