#include "graph/double_tree.hpp"

#include <cassert>
#include <stdexcept>

// analyze:allow-file-throw-safety(neighbor and edge_key slot guards: out-of-range arguments are programming errors, surfaced through parallel first_error)
namespace faultroute {

DoubleBinaryTree::DoubleBinaryTree(int n) : n_(n), leaves_(1ULL << n) {
  if (n < 1 || n > 30) {
    throw std::invalid_argument("DoubleBinaryTree: depth must be in [1, 30]");
  }
}

bool DoubleBinaryTree::is_internal(VertexId v, Side side) const {
  if (side == Side::kTree1) return v >= leaves_ && v < 2 * leaves_ - 1;
  return v >= 2 * leaves_ - 1 && v < 3 * leaves_ - 2;
}

std::uint64_t DoubleBinaryTree::heap_index(VertexId v, Side side) const {
  if (is_leaf(v)) return leaves_ + v;
  assert(is_internal(v, side));
  const std::uint64_t base = (side == Side::kTree1) ? leaves_ : 2 * leaves_ - 1;
  return v - base + 1;
}

VertexId DoubleBinaryTree::vertex_of_heap(std::uint64_t h, Side side) const {
  assert(h >= 1 && h < 2 * leaves_);
  if (h >= leaves_) return h - leaves_;  // leaf level, shared between trees
  const std::uint64_t base = (side == Side::kTree1) ? leaves_ : 2 * leaves_ - 1;
  return base + h - 1;
}

int DoubleBinaryTree::degree(VertexId v) const {
  if (is_leaf(v)) return 2;                        // one parent in each tree
  if (v == root1() || v == root2()) return 2;      // two children
  return 3;                                        // parent + two children
}

VertexId DoubleBinaryTree::neighbor(VertexId v, int i) const {
  if (is_leaf(v)) {
    // i == 0: parent in tree 1; i == 1: parent in tree 2.
    const std::uint64_t h = (leaves_ + v) / 2;
    if (i == 0) return vertex_of_heap(h, Side::kTree1);
    if (i == 1) return vertex_of_heap(h, Side::kTree2);
    throw std::out_of_range("DoubleBinaryTree::neighbor: leaf index out of range");
  }
  const Side side = is_internal(v, Side::kTree1) ? Side::kTree1 : Side::kTree2;
  const std::uint64_t h = heap_index(v, side);
  const bool is_root = (h == 1);
  // Roots: i == 0 left child, i == 1 right child.
  // Other internal: i == 0 parent, i == 1 left child, i == 2 right child.
  if (!is_root && i == 0) return vertex_of_heap(h / 2, side);
  const int child_slot = is_root ? i : i - 1;
  if (child_slot == 0 || child_slot == 1) {
    return vertex_of_heap(2 * h + static_cast<std::uint64_t>(child_slot), side);
  }
  throw std::out_of_range("DoubleBinaryTree::neighbor: index out of range");
}

EdgeKey DoubleBinaryTree::tree_edge_key(Side side, std::uint64_t child_heap) const {
  assert(child_heap >= 2 && child_heap < 2 * leaves_);
  return (child_heap << 1) | static_cast<EdgeKey>(side);
}

EdgeKey DoubleBinaryTree::mirror_edge_key(EdgeKey key) const { return key ^ 1ULL; }

EdgeKey DoubleBinaryTree::edge_key(VertexId v, int i) const {
  // Every edge is a parent->child edge of exactly one tree; its canonical
  // key is (child heap index, tree bit).
  if (is_leaf(v)) {
    const Side side = (i == 0) ? Side::kTree1 : Side::kTree2;
    if (i != 0 && i != 1) {
      throw std::out_of_range("DoubleBinaryTree::edge_key: leaf index out of range");
    }
    return tree_edge_key(side, leaves_ + v);
  }
  const Side side = is_internal(v, Side::kTree1) ? Side::kTree1 : Side::kTree2;
  const std::uint64_t h = heap_index(v, side);
  const bool is_root = (h == 1);
  if (!is_root && i == 0) return tree_edge_key(side, h);  // edge to parent: v is the child
  const int child_slot = is_root ? i : i - 1;
  if (child_slot == 0 || child_slot == 1) {
    return tree_edge_key(side, 2 * h + static_cast<std::uint64_t>(child_slot));
  }
  throw std::out_of_range("DoubleBinaryTree::edge_key: index out of range");
}

EdgeEndpoints DoubleBinaryTree::endpoints(EdgeKey key) const {
  const Side side = static_cast<Side>(key & 1ULL);
  const std::uint64_t child_heap = key >> 1;
  return {vertex_of_heap(child_heap, side), vertex_of_heap(child_heap >> 1, side)};
}

std::string DoubleBinaryTree::name() const {
  return "double_tree(n=" + std::to_string(n_) + ")";
}

std::string DoubleBinaryTree::vertex_label(VertexId v) const {
  if (is_leaf(v)) return "leaf:" + std::to_string(v);
  if (is_internal(v, Side::kTree1)) {
    return "t1:h" + std::to_string(heap_index(v, Side::kTree1));
  }
  return "t2:h" + std::to_string(heap_index(v, Side::kTree2));
}

}  // namespace faultroute
