#pragma once

#include <array>
#include <cstdint>

#include "graph/topology.hpp"

namespace faultroute {

/// The undirected binary De Bruijn graph DB(k) on N = 2^k vertices.
///
/// Vertex v is adjacent to its shifts 2v mod N, 2v+1 mod N, floor(v/2) and
/// floor(v/2) + N/2 (self-loops removed, coincident pairs collapsed).
/// Constant degree <= 4, diameter k = log2 N. One of the families the paper's
/// Section 6 asks about: does its routing transition coincide with its
/// percolation transition?
class DeBruijn final : public Topology {
 public:
  /// Requires 2 <= k <= 30.
  explicit DeBruijn(int k);

  [[nodiscard]] std::uint64_t num_vertices() const override { return n_; }
  [[nodiscard]] std::uint64_t num_edges() const override;
  [[nodiscard]] int degree(VertexId v) const override;
  [[nodiscard]] VertexId neighbor(VertexId v, int i) const override;
  [[nodiscard]] EdgeKey edge_key(VertexId v, int i) const override;
  [[nodiscard]] EdgeEndpoints endpoints(EdgeKey key) const override {
    return {key / n_, key % n_};
  }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] int order() const { return k_; }

 private:
  /// Neighbors of v: deduplicated, self-loops removed, ascending order.
  /// Returns the count; fills `out`.
  int neighbors_of(VertexId v, std::array<VertexId, 4>& out) const;

  int k_;
  std::uint64_t n_;
};

}  // namespace faultroute
