#pragma once

#include <cstdint>

#include "graph/topology.hpp"

namespace faultroute {

/// The wrapped (cyclic) butterfly B_k: k levels times 2^k rows.
///
/// Vertex (level, row) with level in [0, k) and row in [0, 2^k); id =
/// level * 2^k + row. Between level l and level (l+1) mod k there is a
/// *straight* edge (same row) and a *cross* edge (row differing in bit l).
/// Degree 4. For k == 2 a straight edge and its wrap-around twin connect the
/// same vertex pair; we model that honestly as a multigraph (distinct edge
/// keys), so use k >= 3 when a simple graph is needed.
class Butterfly final : public Topology {
 public:
  /// Requires 2 <= k <= 26.
  explicit Butterfly(int k);

  [[nodiscard]] std::uint64_t num_vertices() const override {
    return static_cast<std::uint64_t>(k_) * rows_;
  }
  [[nodiscard]] std::uint64_t num_edges() const override {
    return 2 * static_cast<std::uint64_t>(k_) * rows_;
  }
  [[nodiscard]] int degree(VertexId) const override { return 4; }

  /// i == 0: up-straight, 1: up-cross, 2: down-straight, 3: down-cross,
  /// where "up" goes from level l to (l+1) mod k.
  [[nodiscard]] VertexId neighbor(VertexId v, int i) const override;
  [[nodiscard]] EdgeKey edge_key(VertexId v, int i) const override;
  [[nodiscard]] EdgeEndpoints endpoints(EdgeKey key) const override {
    const bool cross = (key & 1ULL) != 0;
    const VertexId owner = key >> 1;
    const int level = level_of(owner);
    const std::uint64_t row = row_of(owner);
    const int up = (level + 1) % k_;
    return {owner, vertex_at(up, cross ? row ^ (1ULL << level) : row)};
  }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string vertex_label(VertexId v) const override;

  [[nodiscard]] int order() const { return k_; }
  [[nodiscard]] std::uint64_t rows() const { return rows_; }
  [[nodiscard]] int level_of(VertexId v) const { return static_cast<int>(v / rows_); }
  [[nodiscard]] std::uint64_t row_of(VertexId v) const { return v % rows_; }
  [[nodiscard]] VertexId vertex_at(int level, std::uint64_t row) const {
    return static_cast<VertexId>(level) * rows_ + row;
  }

 private:
  int k_;
  std::uint64_t rows_;  // 2^k
};

}  // namespace faultroute
