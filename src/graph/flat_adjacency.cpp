#include "graph/flat_adjacency.hpp"

#include <stdexcept>

#include "graph/distance_oracle.hpp"
#include "obs/counter_registry.hpp"

namespace faultroute {

FlatAdjacency::FlatAdjacency(const Topology& graph)
    : graph_(&graph), offsets_(nullptr) {
  // Global counter (not per-run): snapshots are often materialized by
  // library callers with no RunMetrics in scope, and a surprise count here
  // is exactly what --metrics should surface (e.g. an accidental rebuild
  // per cell instead of one per topology). Mapped-snapshot views (the
  // constructor in snapshot.cpp) deliberately do not count — nothing is
  // materialized there, which is what CI's warm-start check pins.
  obs::global_count("graph.flat_adjacency.materializations");
  const ChannelIndex& index = graph.channel_index();
  offsets_ = index.offsets_data();
  num_vertices_ = graph.num_vertices();

  num_channels_ = index.num_channels();
  owned_neighbors_.resize(num_channels_);
  owned_keys_.resize(num_channels_);
  owned_edge_ids_.resize(num_channels_);
  // One pass in channel order: slot i of v lands at flat position
  // channel_of(v, i) by construction. The edge-id table is the index's own
  // (lazily built) channel -> undirected-edge-id map, copied so a hot-path
  // lookup is one load with no call_once fence.
  std::uint32_t channel = 0;
  for (VertexId v = 0; v < num_vertices_; ++v) {
    const int deg = graph.degree(v);
    for (int i = 0; i < deg; ++i, ++channel) {
      owned_neighbors_[channel] = graph.neighbor(v, i);
      owned_keys_[channel] = graph.edge_key(v, i);
      owned_edge_ids_[channel] = index.edge_id_of(channel);
    }
  }
  num_edge_ids_ = index.num_edge_ids();
  neighbors_ = owned_neighbors_.data();
  keys_ = owned_keys_.data();
  edge_ids_ = owned_edge_ids_.data();
}

FlatAdjacency::~FlatAdjacency() = default;

const DistanceOracle& FlatAdjacency::distance_oracle() const {
  std::call_once(oracle_once_,
                 [this] { oracle_ = std::make_unique<DistanceOracle>(*this); });
  return *oracle_;
}

AdjacencyMode parse_adjacency_mode(const std::string& name) {
  if (name == "flat") return AdjacencyMode::kFlat;
  if (name == "implicit") return AdjacencyMode::kImplicit;
  if (name == "auto") return AdjacencyMode::kAuto;
  // analyze:allow-throw-safety(config parse error raised during scenario setup)
  throw std::invalid_argument("adjacency mode must be 'flat', 'implicit', or 'auto', got '" +
                              name + "'");
}

std::string adjacency_mode_name(AdjacencyMode mode) {
  switch (mode) {
    case AdjacencyMode::kFlat:
      return "flat";
    case AdjacencyMode::kImplicit:
      return "implicit";
    case AdjacencyMode::kAuto:
      return "auto";
  }
  return "auto";  // unreachable
}

const FlatAdjacency* resolve_adjacency(const Topology& graph, AdjacencyMode mode,
                                       std::uint64_t auto_budget_vertices) {
  switch (mode) {
    case AdjacencyMode::kFlat:
      return &graph.flat_adjacency();
    case AdjacencyMode::kImplicit:
      return nullptr;
    case AdjacencyMode::kAuto:
      if (graph.num_vertices() <= auto_budget_vertices) return &graph.flat_adjacency();
      // Falling back to virtual dispatch above budget is correct but slow;
      // count it globally so large-graph perf regressions are visible in
      // --metrics reports rather than only in wall clock.
      obs::global_count("graph.flat_adjacency.auto_fallbacks");
      return nullptr;
  }
  return nullptr;  // unreachable
}

int AdjacencyView::edge_index_of(VertexId u, VertexId v) const {
  if (flat_ != nullptr) return faultroute::edge_index_of(*flat_, u, v);
  return faultroute::edge_index_of(*graph_, u, v);
}

int edge_index_of(const FlatAdjacency& flat, VertexId u, VertexId v) {
  const std::uint64_t begin = flat.row_begin(u);
  const std::uint64_t end = flat.row_end(u);
  for (std::uint64_t pos = begin; pos < end; ++pos) {
    if (flat.neighbor_at(pos) == v) return static_cast<int>(pos - begin);
  }
  return -1;
}

}  // namespace faultroute
