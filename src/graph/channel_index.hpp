#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "graph/topology.hpp"

namespace faultroute {

/// Dense index of the *directed channels* of a topology.
///
/// A channel is one direction of one undirected edge — the unit that queues
/// independently in store-and-forward delivery. Channels are numbered
/// contiguously in [0, num_channels()): vertex v's outgoing channels occupy
/// the slice [offset(v), offset(v) + degree(v)), in incident-slot order, so
/// the id of the channel out of v through slot i is plain arithmetic
/// (no hashing, no node-based containers on the delivery hot path).
///
/// num_channels() equals the degree sum of the graph — 2·num_edges(), with
/// parallel edges (e.g. the k=2 wrapped butterfly) contributing one channel
/// pair each. Ids are 32-bit by design: the traffic engine stores one id per
/// journey hop, and a graph with >= 2^32 directed channels is past what a
/// single delivery simulation can drive anyway; the constructor throws
/// std::length_error rather than truncate.
///
/// The index stores only a prefix-sum offset table (8 bytes per vertex) and
/// borrows the topology, which must outlive it. All methods are const and
/// thread-safe. Build once per topology — Topology::channel_index() caches
/// exactly that.
class ChannelIndex {
 public:
  explicit ChannelIndex(const Topology& graph);

  /// Total directed channels (== degree sum of the graph).
  [[nodiscard]] std::uint32_t num_channels() const { return num_channels_; }

  /// Id of the channel out of `v` through incident slot `i` (i in
  /// [0, degree(v))). O(1).
  [[nodiscard]] std::uint32_t channel_of(VertexId v, int i) const {
    return static_cast<std::uint32_t>(offsets_[v] + static_cast<std::uint64_t>(i));
  }

  /// The vertex the channel transmits out of. O(log V) (binary search of the
  /// offset table) — used for reporting/aggregation, never on the hot loop.
  [[nodiscard]] VertexId tail(std::uint32_t channel) const;

  /// The incident slot of the channel at its tail vertex.
  [[nodiscard]] int slot(std::uint32_t channel) const;

  /// The vertex the channel transmits into.
  [[nodiscard]] VertexId head(std::uint32_t channel) const;

  /// Canonical key of the undirected edge the channel belongs to.
  [[nodiscard]] EdgeKey edge_of(std::uint32_t channel) const;

  /// The opposite direction of the same undirected edge, identified by the
  /// symmetric-edge-key contract (which also disambiguates parallel edges).
  /// Involutive: reverse(reverse(c)) == c. Throws std::logic_error if the
  /// topology violates the edge_key symmetry contract.
  [[nodiscard]] std::uint32_t reverse(std::uint32_t channel) const;

  /// Dense id of the *undirected edge* a channel belongs to, contiguous in
  /// [0, num_edge_ids()): both directions of an edge share one id, distinct
  /// edges (including parallel edges) get distinct ids. This is the index
  /// the dense probe-state engine keys its per-edge arrays by — edge_key()
  /// values are canonical but sparse, edge ids are canonical *and* dense.
  ///
  /// Ids are assigned in order of first appearance by ascending channel id,
  /// so they are a pure function of the topology. The table (4 bytes per
  /// channel) is built lazily on first call — thread-safe, O(channels) once
  /// — keeping the index cheap for users that never ask (the delivery
  /// engine needs only the offset table). O(1) after the first call.
  [[nodiscard]] std::uint32_t edge_id_of(std::uint32_t channel) const {
    std::call_once(edge_ids_once_, [this] { build_edge_ids(); });
    return edge_ids_[channel];
  }

  /// Number of distinct undirected edges (== num_edges() of the topology,
  /// counting parallel edges separately). Builds the edge-id table if needed.
  [[nodiscard]] std::uint32_t num_edge_ids() const {
    std::call_once(edge_ids_once_, [this] { build_edge_ids(); });
    return num_edge_ids_;
  }

  /// The raw prefix-sum offset table (size num_vertices() + 1), for snapshot
  /// builders (graph/flat_adjacency.hpp) that want zero-indirection row
  /// bounds without duplicating 8 bytes per vertex. The pointer is valid for
  /// the index's lifetime.
  [[nodiscard]] const std::uint64_t* offsets_data() const { return offsets_.data(); }

 private:
  void build_edge_ids() const;

  const Topology* graph_;
  std::vector<std::uint64_t> offsets_;  // size V+1: prefix sums of degree
  std::uint32_t num_channels_ = 0;
  // Lazily-built channel -> undirected-edge-id table (see edge_id_of).
  mutable std::once_flag edge_ids_once_;
  mutable std::vector<std::uint32_t> edge_ids_;
  mutable std::uint32_t num_edge_ids_ = 0;
};

}  // namespace faultroute
