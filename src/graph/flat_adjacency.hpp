#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "graph/channel_index.hpp"
#include "graph/topology.hpp"

namespace faultroute {

class DistanceOracle;
class MappedSnapshot;

/// One-shot CSR (compressed-sparse-row) snapshot of a Topology's adjacency.
///
/// The implicit Topology interface is what lets a 2^n-vertex hypercube exist
/// for free, but it charges three virtual calls (degree/neighbor/edge_key)
/// plus a key recomputation for every adjacency query on the hot paths —
/// probes, router BFS scans, path validation, percolation BFS. This snapshot
/// materializes the answers once: vertex v's incident slots occupy the
/// contiguous row [row_begin(v), row_end(v)) of three parallel arrays
/// (neighbor, canonical edge key, dense undirected-edge id), laid out in
/// ChannelIndex order — the flat position of slot i of v IS the directed
/// channel id channel_of(v, i), so no separate channel array is stored.
/// After the build, a probe or hop resolves with two array loads and zero
/// virtual dispatch or key arithmetic.
///
/// The snapshot borrows the topology's ChannelIndex offset table (it must
/// outlive the snapshot, which Topology::flat_adjacency() — the intended way
/// to obtain one — guarantees by caching both on the topology). Memory cost:
/// 20 bytes per directed channel on top of the index's 8 per vertex, which
/// is why huge implicit topologies keep the virtual path: AdjacencyMode
/// below selects per call site, and kAuto materializes only when
/// num_vertices() fits a budget.
///
/// Besides the owning build above, a snapshot can be a *non-owning view*
/// over a memory-mapped on-disk snapshot (graph/snapshot.hpp): the view
/// constructor points the same hot-path arrays into the mapped region, so
/// every accessor below is oblivious to the storage mode and a warm start
/// pages the CSR in instead of rebuilding it. A view performs no
/// materialization work at all — it neither builds the ChannelIndex nor
/// counts a graph.flat_adjacency.materializations.
///
/// All methods are const, O(1), and thread-safe; every value is a pure
/// function of the topology, equal slot-for-slot to the virtual interface
/// (held by tests/test_flat_adjacency.cpp across every topology family).
class FlatAdjacency {
 public:
  /// Builds the snapshot via graph.channel_index() (reusing its traversal
  /// for offsets and edge ids). Prefer Topology::flat_adjacency(), which
  /// builds lazily once and caches. `graph` must outlive the snapshot.
  explicit FlatAdjacency(const Topology& graph);
  /// Non-owning view over a verified mapped snapshot of `graph`'s adjacency
  /// (keeps the mapping alive; see graph/snapshot.hpp). Throws
  /// std::runtime_error if the snapshot's vertex count does not match
  /// `graph`. Defined in snapshot.cpp.
  FlatAdjacency(const Topology& graph, std::shared_ptr<const MappedSnapshot> snapshot);
  ~FlatAdjacency();  // out of line: DistanceOracle is incomplete here

  /// The snapshot's cached fault-free DistanceOracle (graph/distance_oracle
  /// .hpp), built lazily on first request exactly like
  /// Topology::channel_index(); subsequent calls return the same instance,
  /// so landmark and exact-column work is shared by every router, p-value,
  /// and trial that routes over this topology. Thread-safe.
  [[nodiscard]] const DistanceOracle& distance_oracle() const;

  [[nodiscard]] const Topology& graph() const { return *graph_; }
  [[nodiscard]] std::uint64_t num_vertices() const { return num_vertices_; }
  [[nodiscard]] std::uint32_t num_channels() const { return num_channels_; }
  [[nodiscard]] std::uint32_t num_edge_ids() const { return num_edge_ids_; }
  /// True for a mapped-snapshot view, false for an owning build.
  [[nodiscard]] bool is_view() const { return snapshot_ != nullptr; }

  /// Flat positions of v's incident-slot row; position p == channel id p.
  [[nodiscard]] std::uint64_t row_begin(VertexId v) const { return offsets_[v]; }
  [[nodiscard]] std::uint64_t row_end(VertexId v) const { return offsets_[v + 1]; }
  [[nodiscard]] int degree(VertexId v) const {
    return static_cast<int>(offsets_[v + 1] - offsets_[v]);
  }

  /// Slot accessors, value-identical to the Topology virtual interface.
  [[nodiscard]] VertexId neighbor(VertexId v, int i) const {
    return neighbors_[offsets_[v] + static_cast<std::uint64_t>(i)];
  }
  [[nodiscard]] EdgeKey edge_key(VertexId v, int i) const {
    return keys_[offsets_[v] + static_cast<std::uint64_t>(i)];
  }
  /// Dense undirected-edge id of slot i of v, == ChannelIndex::edge_id_of of
  /// the matching channel (the index the dense probe-state arrays use).
  [[nodiscard]] std::uint32_t edge_id(VertexId v, int i) const {
    return edge_ids_[offsets_[v] + static_cast<std::uint64_t>(i)];
  }
  /// Directed channel id of slot i of v, == ChannelIndex::channel_of(v, i).
  [[nodiscard]] std::uint32_t channel_of(VertexId v, int i) const {
    return static_cast<std::uint32_t>(offsets_[v] + static_cast<std::uint64_t>(i));
  }

  /// Row-position accessors for callers iterating [row_begin, row_end).
  [[nodiscard]] VertexId neighbor_at(std::uint64_t pos) const { return neighbors_[pos]; }
  [[nodiscard]] EdgeKey edge_key_at(std::uint64_t pos) const { return keys_[pos]; }
  [[nodiscard]] std::uint32_t edge_id_at(std::uint64_t pos) const { return edge_ids_[pos]; }

  /// Bytes owned by the snapshot arrays (excluding the borrowed offsets).
  /// A mapped view owns nothing — its pages belong to the file mapping.
  [[nodiscard]] std::uint64_t memory_bytes() const {
    return owned_neighbors_.size() *
           (sizeof(VertexId) + sizeof(EdgeKey) + sizeof(std::uint32_t));
  }

  /// Raw array views for the on-disk snapshot writer (graph/snapshot.cpp):
  /// offsets has num_vertices() + 1 entries, the rest num_channels() each.
  [[nodiscard]] const std::uint64_t* offsets_data() const { return offsets_; }
  [[nodiscard]] const VertexId* neighbors_data() const { return neighbors_; }
  [[nodiscard]] const EdgeKey* keys_data() const { return keys_; }
  [[nodiscard]] const std::uint32_t* edge_ids_data() const { return edge_ids_; }

 private:
  const Topology* graph_;
  const std::uint64_t* offsets_;  // ChannelIndex's table, or the mapped region
  std::uint64_t num_vertices_ = 0;
  std::uint32_t num_channels_ = 0;
  std::uint32_t num_edge_ids_ = 0;
  // Hot-path array views (per channel): into the owned vectors below for a
  // built snapshot, into the mapped region for a view. The accessors above
  // only ever touch these pointers, so both modes cost the same two loads.
  const VertexId* neighbors_ = nullptr;
  const EdgeKey* keys_ = nullptr;
  const std::uint32_t* edge_ids_ = nullptr;
  // Owning storage (empty in view mode).
  std::vector<VertexId> owned_neighbors_;
  std::vector<EdgeKey> owned_keys_;
  std::vector<std::uint32_t> owned_edge_ids_;
  // View mode: keeps the mapping (and with it every pointer above) alive.
  std::shared_ptr<const MappedSnapshot> snapshot_;

  // Lazy distance-oracle cache (the once_flag makes the snapshot
  // non-copyable, which is right: it is always owned by its Topology or by
  // the snapshot-view holder).
  mutable std::once_flag oracle_once_;
  mutable std::unique_ptr<DistanceOracle> oracle_;
};

/// Which adjacency backend a hot path resolves queries through. A pure A/B
/// switch in the mould of TrafficConfig::dense_probe_state / --engine:
/// every observable result is bit-identical across modes.
enum class AdjacencyMode {
  kFlat,      ///< always materialize (cached) — the fast path
  kImplicit,  ///< always the virtual Topology interface — huge graphs
  kAuto,      ///< flat iff num_vertices() fits the caller's budget
};

/// Default kAuto materialization budget: snapshot when the graph has at most
/// this many vertices. At constant degree d the snapshot costs ~20·2d bytes
/// per vertex, so 2^20 vertices tops out around a few hundred MB for the
/// densest library families — past that, stay implicit unless asked.
inline constexpr std::uint64_t kDefaultFlatBudgetVertices = 1ull << 20;

/// Parses "flat" / "implicit" / "auto" (throws std::invalid_argument
/// otherwise); the inverse of adjacency_mode_name.
[[nodiscard]] AdjacencyMode parse_adjacency_mode(const std::string& name);
[[nodiscard]] std::string adjacency_mode_name(AdjacencyMode mode);

/// Resolves a mode against a topology: the cached snapshot for kFlat,
/// nullptr (= use the virtual interface) for kImplicit, and for kAuto the
/// snapshot iff num_vertices() <= auto_budget_vertices. A kAuto fall-back
/// to virtual dispatch is counted in graph.flat_adjacency.auto_fallbacks
/// (docs/COUNTERS.md), so a sweep silently losing the CSR fast path on a
/// large graph shows up in --metrics instead of only in wall clock.
[[nodiscard]] const FlatAdjacency* resolve_adjacency(
    const Topology& graph, AdjacencyMode mode,
    std::uint64_t auto_budget_vertices = kDefaultFlatBudgetVertices);

/// A zero-cost switchable view over the two adjacency backends, for code
/// (routers, validators) that must run on either: CSR loads when a snapshot
/// is present, virtual dispatch otherwise. The branch predicate is fixed per
/// view, so the per-query cost is one predicted branch.
class AdjacencyView {
 public:
  AdjacencyView(const Topology& graph, const FlatAdjacency* flat)
      : graph_(&graph), flat_(flat) {}

  [[nodiscard]] const Topology& graph() const { return *graph_; }
  [[nodiscard]] const FlatAdjacency* flat() const { return flat_; }

  [[nodiscard]] int degree(VertexId v) const {
    return flat_ != nullptr ? flat_->degree(v) : graph_->degree(v);
  }
  [[nodiscard]] VertexId neighbor(VertexId v, int i) const {
    return flat_ != nullptr ? flat_->neighbor(v, i) : graph_->neighbor(v, i);
  }
  [[nodiscard]] EdgeKey edge_key(VertexId v, int i) const {
    return flat_ != nullptr ? flat_->edge_key(v, i) : graph_->edge_key(v, i);
  }

  /// Lowest incident slot of u whose neighbor is v, or -1 (the
  /// edge_index_of contract, without virtual dispatch when flat).
  [[nodiscard]] int edge_index_of(VertexId u, VertexId v) const;

 private:
  const Topology* graph_;
  const FlatAdjacency* flat_;
};

/// edge_index_of over a snapshot row (same contract as the Topology
/// overload in graph/topology.hpp: lowest matching slot, -1 if absent).
[[nodiscard]] int edge_index_of(const FlatAdjacency& flat, VertexId u, VertexId v);

}  // namespace faultroute
