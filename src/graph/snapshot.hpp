#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "graph/topology.hpp"

namespace faultroute {

class FlatAdjacency;

/// On-disk CSR adjacency snapshots — the `faultroute.snap.v1` format.
///
/// A snapshot persists everything FlatAdjacency materializes from a
/// topology (the ChannelIndex offset prefix sums plus the neighbors / keys /
/// edge-ids arrays) so a graph builds once and every later run — or several
/// concurrent sharded processes — pages the arrays straight in via mmap
/// instead of re-deriving them. The arrays are a pure function of the
/// topology spec string, which is why a directory of snapshots can be keyed
/// by spec (see snapshot_filename / open_snapshot_adjacency) and why a
/// mapped view is bit-identical to a fresh build (tests/test_snapshot.cpp).
///
/// Layout (all integers fixed-width little-endian; the format is *defined*
/// as little-endian and readers refuse to open on big-endian hosts rather
/// than silently byte-swap):
///
///   offset  size  field
///   ------  ----  -----------------------------------------------------
///        0     8  magic "FRSNAPv1"
///        8     4  version (u32, == 1)
///       12     4  header_bytes (u32, == 256)
///       16     8  num_vertices (u64)
///       24     4  num_channels (u32)
///       28     4  num_edge_ids (u32)
///       32     8  payload_bytes (u64; 8-byte multiple, zero-padded)
///       40     8  payload_checksum (u64; see below)
///       48   128  topology_spec (registry spec, NUL-padded)
///      176    64  provenance (builder's git hash, NUL-padded)
///      240     8  reserved (zero)
///      248     8  header_checksum (u64 over header bytes [0, 248))
///      256     .  payload: offsets    (num_vertices + 1) x u64
///                          neighbors  num_channels x u64
///                          keys       num_channels x u64
///                          edge_ids   num_channels x u32  (+ pad to 8)
///
/// Checksums are 64-bit FNV-1a folded over 8-byte words (the header is a
/// whole number of words and the payload is zero-padded to one), so
/// verification on open is a single sequential scan of the mapped region —
/// which doubles as the page-in pass. Every open verifies both checksums;
/// any truncation or mismatch throws a diagnostic naming the offending
/// field (magic, version, header_bytes, num_vertices, ..., payload_checksum)
/// and never falls through to a silent rebuild.
namespace snap {
inline constexpr char kMagic[8] = {'F', 'R', 'S', 'N', 'A', 'P', 'v', '1'};
inline constexpr std::uint32_t kVersion = 1;
inline constexpr std::uint32_t kHeaderBytes = 256;
inline constexpr std::size_t kSpecBytes = 128;   // topology_spec field width
inline constexpr std::size_t kProvenanceBytes = 64;
}  // namespace snap

/// Decoded, checksum-verified snapshot header.
struct SnapshotInfo {
  std::uint32_t version = 0;
  std::uint64_t num_vertices = 0;
  std::uint32_t num_channels = 0;
  std::uint32_t num_edge_ids = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t payload_checksum = 0;
  std::uint64_t header_checksum = 0;
  std::string topology_spec;  ///< registry spec the snapshot was built from
  std::string provenance;     ///< builder's git hash (obs::build_info)
};

/// 64-bit FNV-1a folded over 8-byte words; the snapshot checksum primitive,
/// exposed for tests and for the checkpoint journal's spec fingerprint.
[[nodiscard]] std::uint64_t fnv1a_words(const std::uint64_t* words, std::size_t count,
                                        std::uint64_t seed = 14695981039346656037ull);

/// Canonical file name of a topology spec's snapshot within a snapshot
/// directory: the spec with filesystem-hostile characters mapped to '_',
/// suffixed ".snap". Collisions are harmless — the header's embedded spec
/// string is authoritative and verified on open.
[[nodiscard]] std::string snapshot_filename(const std::string& topology_spec);

/// snapshot_filename joined onto `dir`.
[[nodiscard]] std::string snapshot_path(const std::string& dir,
                                        const std::string& topology_spec);

/// Serializes `flat` (plus its borrowed offset table) as `topology_spec`'s
/// snapshot at `path`, stamping the current build's provenance. Writes to a
/// temporary sibling and renames, so a crashed build never leaves a
/// truncated file under the final name. Throws std::runtime_error on I/O
/// failure and std::invalid_argument if the spec exceeds the header field.
void write_snapshot(const std::string& path, const std::string& topology_spec,
                    const FlatAdjacency& flat);

/// Opens, fully verifies (header + payload checksums, size consistency),
/// and decodes the header of the snapshot at `path`. The `faultroute
/// snapshot info` subcommand and the corrupt-fixture tests drive this.
[[nodiscard]] SnapshotInfo read_snapshot_info(const std::string& path);

/// A read-only mapping of one verified snapshot file.
///
/// POSIX hosts mmap the file (shared clean pages across concurrent
/// processes — the sharded-sweep story); elsewhere the bytes are read into
/// an owned buffer with identical semantics. Open verifies both checksums
/// before returning, so the typed accessors below are only reachable on an
/// intact file. Immutable after open; safe to share across threads.
class MappedSnapshot {
 public:
  /// Opens and verifies `path`. Throws std::runtime_error with a diagnostic
  /// naming the offending header field on any truncation/corruption.
  [[nodiscard]] static std::shared_ptr<const MappedSnapshot> open(const std::string& path);
  ~MappedSnapshot();
  MappedSnapshot(const MappedSnapshot&) = delete;
  MappedSnapshot& operator=(const MappedSnapshot&) = delete;

  [[nodiscard]] const SnapshotInfo& info() const { return info_; }
  [[nodiscard]] const std::string& path() const { return path_; }
  /// Bytes of the mapping (header + payload).
  [[nodiscard]] std::uint64_t mapped_bytes() const { return size_; }
  /// True when the region is a real mmap (vs the owned-buffer fallback).
  [[nodiscard]] bool is_mmap() const { return mmapped_; }

  /// Typed views into the payload arrays. Valid for the object's lifetime.
  [[nodiscard]] const std::uint64_t* offsets() const;    // num_vertices + 1
  [[nodiscard]] const VertexId* neighbors() const;       // num_channels
  [[nodiscard]] const EdgeKey* keys() const;             // num_channels
  [[nodiscard]] const std::uint32_t* edge_ids() const;   // num_channels

 private:
  MappedSnapshot() = default;

  std::string path_;
  SnapshotInfo info_;
  const unsigned char* data_ = nullptr;  // mapping or owned buffer base
  std::uint64_t size_ = 0;
  bool mmapped_ = false;
  std::unique_ptr<std::uint64_t[]> owned_;  // non-mmap fallback storage
};

/// Snapshot-directory cache lookup: opens `dir`'s snapshot for
/// `topology_spec` as a non-owning FlatAdjacency view over `graph`.
///
/// Returns nullptr when no snapshot file exists for the spec (callers fall
/// back to materializing — counted in graph.snapshot.misses). A file that
/// exists but is truncated, checksum-mismatched, or embeds a different
/// topology spec *throws* (never a silent rebuild). On success the counters
/// graph.snapshot.hits / graph.snapshot.bytes_mapped record the open.
[[nodiscard]] std::unique_ptr<FlatAdjacency> open_snapshot_adjacency(
    const std::string& dir, const std::string& topology_spec, const Topology& graph);

}  // namespace faultroute
