#include "graph/shuffle_exchange.hpp"

#include <algorithm>
#include <stdexcept>

// analyze:allow-file-throw-safety(neighbor and edge_key slot guards: out-of-range arguments are programming errors, surfaced through parallel first_error)
namespace faultroute {

ShuffleExchange::ShuffleExchange(int k) : k_(k), n_(1ULL << k) {
  if (k < 2 || k > 30) {
    throw std::invalid_argument("ShuffleExchange: order must be in [2, 30]");
  }
}

int ShuffleExchange::neighbors_of(VertexId v, std::array<VertexId, 3>& out) const {
  std::array<VertexId, 3> cand = {v ^ 1ULL, rotate_left(v), rotate_right(v)};
  std::sort(cand.begin(), cand.end());
  int count = 0;
  for (int j = 0; j < 3; ++j) {
    if (cand[static_cast<std::size_t>(j)] == v) continue;
    if (count > 0 && out[static_cast<std::size_t>(count - 1)] == cand[static_cast<std::size_t>(j)]) {
      continue;
    }
    out[static_cast<std::size_t>(count++)] = cand[static_cast<std::size_t>(j)];
  }
  return count;
}

std::uint64_t ShuffleExchange::num_edges() const {
  std::uint64_t total = 0;
  std::array<VertexId, 3> scratch{};
  for (VertexId v = 0; v < n_; ++v) {
    total += static_cast<std::uint64_t>(neighbors_of(v, scratch));
  }
  return total / 2;
}

int ShuffleExchange::degree(VertexId v) const {
  std::array<VertexId, 3> scratch{};
  return neighbors_of(v, scratch);
}

VertexId ShuffleExchange::neighbor(VertexId v, int i) const {
  std::array<VertexId, 3> out{};
  const int count = neighbors_of(v, out);
  if (i < 0 || i >= count) {
    throw std::out_of_range("ShuffleExchange::neighbor: index out of range");
  }
  return out[static_cast<std::size_t>(i)];
}

EdgeKey ShuffleExchange::edge_key(VertexId v, int i) const {
  const VertexId w = neighbor(v, i);
  const VertexId lo = v < w ? v : w;
  const VertexId hi = v < w ? w : v;
  return lo * n_ + hi;
}

std::string ShuffleExchange::name() const {
  return "shuffle_exchange(k=" + std::to_string(k_) + ")";
}

}  // namespace faultroute
