#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace faultroute {

class ChannelIndex;
class FlatAdjacency;

/// Vertex identifier. Every topology numbers its vertices contiguously in
/// [0, num_vertices()), so analyses may use vertex-indexed arrays.
using VertexId = std::uint64_t;

/// Canonical undirected edge identifier. Both endpoints of an edge must
/// compute the same key; distinct edges (including parallel edges, which some
/// topologies such as the wrapped butterfly allow) must have distinct keys.
using EdgeKey = std::uint64_t;

/// The unordered endpoint pair of an edge (order unspecified).
struct EdgeEndpoints {
  VertexId a = 0;
  VertexId b = 0;
};

/// Abstract interface for an implicit undirected graph.
///
/// Topologies are *implicit*: adjacency is computed, never stored, so a
/// hypercube with 2^n vertices costs nothing until touched. This is what lets
/// the probe model of the paper be simulated exactly — a routing algorithm
/// pays only for the edges it queries.
///
/// Contract:
///  * vertices are 0 .. num_vertices()-1;
///  * `neighbor(v, i)` for i in [0, degree(v)) enumerates the incident edges;
///  * `edge_key(v, i)` is symmetric: if neighbor(v, i) == w and
///    neighbor(w, j) == v refer to the same physical edge, then
///    edge_key(v, i) == edge_key(w, j);
///  * the default `distance` / `shortest_path` run a BFS on the implicit
///    graph and are therefore only suitable for small instances; topologies
///    with a closed-form metric override them.
class Topology {
 public:
  Topology();
  /// Copy-construction shares nothing: the lazily-built channel-index cache
  /// stays with the original and is rebuilt on demand by the copy.
  /// Copy-assignment is deleted outright — a once-built cache cannot be
  /// invalidated (std::once_flag is not resettable), so assigning a
  /// different graph over a topology that already built its index would
  /// leave a stale index behind.
  Topology(const Topology&);
  Topology& operator=(const Topology&) = delete;
  virtual ~Topology();

  /// Number of vertices.
  [[nodiscard]] virtual std::uint64_t num_vertices() const = 0;

  /// Number of undirected edges.
  [[nodiscard]] virtual std::uint64_t num_edges() const = 0;

  /// Degree of vertex v (number of incident edges, counting parallel edges).
  [[nodiscard]] virtual int degree(VertexId v) const = 0;

  /// The i-th neighbor of v, for i in [0, degree(v)).
  [[nodiscard]] virtual VertexId neighbor(VertexId v, int i) const = 0;

  /// Canonical key of the i-th incident edge of v.
  [[nodiscard]] virtual EdgeKey edge_key(VertexId v, int i) const = 0;

  /// The two endpoints of the edge with canonical key `key`. Every topology
  /// in this library uses an invertible key encoding, which is what lets
  /// node-failure samplers recover endpoints at probe time on implicit
  /// graphs. The key must have been produced by edge_key() of this topology.
  [[nodiscard]] virtual EdgeEndpoints endpoints(EdgeKey key) const = 0;

  /// Human-readable topology name, e.g. "hypercube(n=12)".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Graph distance between u and v in the fault-free topology.
  /// Default: BFS (small graphs only). Returns num_vertices() if unreachable.
  [[nodiscard]] virtual std::uint64_t distance(VertexId u, VertexId v) const;

  /// True iff this topology answers distance() in O(1)-ish closed form
  /// (hypercube Hamming distance, mesh L1, complete graph). Families that
  /// fall back to the default BFS return false; callers like the routing
  /// phase use this to decide whether precomputing a distance-oracle column
  /// (graph/distance_oracle.hpp) is worth anything. Purely advisory: the
  /// answer never changes any distance value.
  [[nodiscard]] virtual bool has_closed_form_metric() const { return false; }

  /// Some shortest path from u to v in the fault-free topology, as a vertex
  /// sequence beginning with u and ending with v. Default: BFS.
  /// Returns an empty vector if v is unreachable from u.
  [[nodiscard]] virtual std::vector<VertexId> shortest_path(VertexId u, VertexId v) const;

  /// Printable label for a vertex (default: its numeric id). Topologies with
  /// structured vertices (mesh coordinates, butterfly (level,row)) override.
  [[nodiscard]] virtual std::string vertex_label(VertexId v) const;

  /// The dense directed-channel index of this topology (see
  /// graph/channel_index.hpp): channel = one direction of one undirected
  /// edge, ids contiguous in [0, degree sum). Built lazily on first use and
  /// cached — O(num_vertices()) once, O(1) thereafter — so repeated traffic
  /// runs over the same topology (scenario sweeps) share one index.
  /// Thread-safe under const access, like the rest of the interface.
  [[nodiscard]] const ChannelIndex& channel_index() const;

  /// The flat CSR adjacency snapshot of this topology (see
  /// graph/flat_adjacency.hpp): per-channel neighbor / edge-key / edge-id
  /// arrays over the channel index's offset table, so hot paths resolve
  /// adjacency with array loads instead of virtual dispatch. Built lazily on
  /// first use and cached — O(channels) once, O(1) thereafter. Costs ~20
  /// bytes per directed channel; huge implicit topologies should not call
  /// this (AdjacencyMode::kAuto budgets exactly that). Thread-safe under
  /// const access.
  [[nodiscard]] const FlatAdjacency& flat_adjacency() const;

 private:
  mutable std::once_flag channel_index_once_;
  mutable std::unique_ptr<ChannelIndex> channel_index_;
  mutable std::once_flag flat_adjacency_once_;
  mutable std::unique_ptr<FlatAdjacency> flat_adjacency_;
};

/// Finds the incident-edge index i such that neighbor(u, i) == v,
/// or -1 if u and v are not adjacent. Linear in degree(u); when parallel
/// edges exist the lowest matching index is returned.
[[nodiscard]] int edge_index_of(const Topology& g, VertexId u, VertexId v);

/// Collects all canonical edge keys incident to v (ascending i).
[[nodiscard]] std::vector<EdgeKey> incident_edge_keys(const Topology& g, VertexId v);

}  // namespace faultroute
