#include "graph/butterfly.hpp"

#include <sstream>
#include <stdexcept>

// analyze:allow-file-throw-safety(neighbor and edge_key slot guards: out-of-range arguments are programming errors, surfaced through parallel first_error)
namespace faultroute {

Butterfly::Butterfly(int k) : k_(k), rows_(1ULL << k) {
  if (k < 2 || k > 26) throw std::invalid_argument("Butterfly: order must be in [2, 26]");
}

VertexId Butterfly::neighbor(VertexId v, int i) const {
  const int level = level_of(v);
  const std::uint64_t row = row_of(v);
  switch (i) {
    case 0: {  // up-straight: level -> level+1, same row
      const int up = (level + 1) % k_;
      return vertex_at(up, row);
    }
    case 1: {  // up-cross: level -> level+1, flip bit `level`
      const int up = (level + 1) % k_;
      return vertex_at(up, row ^ (1ULL << level));
    }
    case 2: {  // down-straight: level-1 -> level, same row
      const int down = (level + k_ - 1) % k_;
      return vertex_at(down, row);
    }
    case 3: {  // down-cross: level-1 -> level, flip bit `level-1`
      const int down = (level + k_ - 1) % k_;
      return vertex_at(down, row ^ (1ULL << down));
    }
    default:
      throw std::out_of_range("Butterfly::neighbor: index out of range");
  }
}

EdgeKey Butterfly::edge_key(VertexId v, int i) const {
  // An edge between levels l and l+1 (mod k) is owned by its level-l
  // endpoint; key = (owner id, cross bit). Parallel edges (k == 2) differ in
  // owner, hence in key.
  switch (i) {
    case 0:
      return (v << 1) | 0ULL;
    case 1:
      return (v << 1) | 1ULL;
    case 2: {
      const VertexId owner = neighbor(v, 2);
      return (owner << 1) | 0ULL;
    }
    case 3: {
      const VertexId owner = neighbor(v, 3);
      return (owner << 1) | 1ULL;
    }
    default:
      throw std::out_of_range("Butterfly::edge_key: index out of range");
  }
}

std::string Butterfly::name() const { return "butterfly(k=" + std::to_string(k_) + ")"; }

std::string Butterfly::vertex_label(VertexId v) const {
  std::ostringstream out;
  out << "(l=" << level_of(v) << ",r=" << row_of(v) << ')';
  return out.str();
}

}  // namespace faultroute
