#include "graph/complete.hpp"

#include <stdexcept>

namespace faultroute {

CompleteGraph::CompleteGraph(std::uint64_t n) : n_(n) {
  if (n < 2 || n > (1ULL << 31)) {
    throw std::invalid_argument("CompleteGraph: n must be in [2, 2^31]");
  }
}

std::string CompleteGraph::name() const { return "complete(n=" + std::to_string(n_) + ")"; }

std::vector<VertexId> CompleteGraph::shortest_path(VertexId u, VertexId v) const {
  if (u == v) return {u};
  return {u, v};
}

}  // namespace faultroute
