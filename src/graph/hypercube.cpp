#include "graph/hypercube.hpp"

#include <bit>
#include <stdexcept>

namespace faultroute {

Hypercube::Hypercube(int n) : n_(n) {
  if (n < 1 || n > 40) {
    throw std::invalid_argument("Hypercube: dimension must be in [1, 40]");
  }
}

std::string Hypercube::name() const { return "hypercube(n=" + std::to_string(n_) + ")"; }

std::uint64_t Hypercube::distance(VertexId u, VertexId v) const {
  return static_cast<std::uint64_t>(std::popcount(u ^ v));
}

// analyze:allow-hot-alloc(closed-form path materialization, reserved to the exact length)
std::vector<VertexId> Hypercube::shortest_path(VertexId u, VertexId v) const {
  std::vector<VertexId> path;
  path.reserve(static_cast<std::size_t>(distance(u, v)) + 1);
  path.push_back(u);
  VertexId x = u;
  std::uint64_t diff = u ^ v;
  while (diff != 0) {
    const int bit = std::countr_zero(diff);
    x ^= (1ULL << bit);
    diff &= diff - 1;
    path.push_back(x);
  }
  return path;
}

}  // namespace faultroute
