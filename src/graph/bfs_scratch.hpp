#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "graph/topology.hpp"

namespace faultroute::detail {

/// Per-thread epoch-stamped scratch for the flat percolation BFS routines
/// (cluster_analysis, chemical_distance): vertex-indexed visited stamps and
/// parents, plus reusable queue buffers. A slot is live only when its stamp
/// equals the current epoch, so "clearing" between sweeps is one integer
/// increment — repeated analyses (threshold bisection, chemical-distance
/// sweeps, permutation prechecks) allocate nothing in steady state.
/// Accessed via bfs_scratch()'s thread_local instance, which keeps the
/// scenario runner's cell-parallel sweeps race-free.
struct BfsScratch {
  std::vector<std::uint32_t> stamp;
  std::vector<VertexId> parent;  // valid iff stamp[v] == epoch
  std::vector<VertexId> queue;
  std::vector<std::pair<VertexId, std::uint64_t>> dist_queue;  // (vertex, distance)
  std::uint32_t epoch = 0;

  /// Sizes for `n` vertices (grow-only) and opens a fresh epoch; on the
  /// (once per ~4 billion sweeps) wrap, stamps are zeroed so stale marks
  /// can never read as live.
  void begin(std::uint64_t n) {
    if (stamp.size() < n) {
      stamp.resize(n, 0);  // analyze:allow-hot-alloc(grow-only pooled scratch warm-up)
      parent.resize(n, 0);  // analyze:allow-hot-alloc(same grow-only warm-up)
    }
    if (epoch == std::numeric_limits<std::uint32_t>::max()) {
      std::fill(stamp.begin(), stamp.end(), 0u);
      epoch = 0;
    }
    ++epoch;
    queue.clear();
    dist_queue.clear();
  }

  [[nodiscard]] bool seen(VertexId v) const { return stamp[v] == epoch; }
  void mark(VertexId v) { stamp[v] = epoch; }
  void mark(VertexId v, VertexId from) {
    stamp[v] = epoch;
    parent[v] = from;
  }
};

inline BfsScratch& bfs_scratch() {
  static thread_local BfsScratch scratch;
  return scratch;
}

}  // namespace faultroute::detail
