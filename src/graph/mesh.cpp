#include "graph/mesh.hpp"

#include <cassert>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

// analyze:allow-file-throw-safety(neighbor and edge_key slot guards: out-of-range arguments are programming errors, surfaced through parallel first_error)
namespace faultroute {

Mesh::Mesh(int dim, std::int64_t side, bool wrap)
    : dim_(dim), side_(side), wrap_(wrap), num_vertices_(1), stride_{} {
  if (dim < 1 || dim > kMaxDimension) {
    throw std::invalid_argument("Mesh: dimension must be in [1, 8]");
  }
  if (side < 2) throw std::invalid_argument("Mesh: side must be >= 2");
  if (wrap && side < 3) {
    throw std::invalid_argument("Mesh: torus requires side >= 3 (else parallel edges)");
  }
  for (int a = 0; a < dim_; ++a) {
    stride_[static_cast<std::size_t>(a)] = num_vertices_;
    const auto s = static_cast<std::uint64_t>(side);
    if (num_vertices_ > (1ULL << 62) / s) {
      throw std::invalid_argument("Mesh: too many vertices (side^dim > 2^62)");
    }
    num_vertices_ *= s;
  }
}

std::uint64_t Mesh::num_edges() const {
  // Per axis: side^(d-1) * (side - 1) internal edges, plus side^(d-1) wrap
  // edges on the torus.
  const std::uint64_t per_axis_lines = num_vertices_ / static_cast<std::uint64_t>(side_);
  const std::uint64_t per_line =
      static_cast<std::uint64_t>(side_ - 1) + (wrap_ ? 1ULL : 0ULL);
  return static_cast<std::uint64_t>(dim_) * per_axis_lines * per_line;
}

Mesh::Coords Mesh::coords_of(VertexId v) const {
  Coords c{};
  for (int a = 0; a < dim_; ++a) {
    c[static_cast<std::size_t>(a)] = static_cast<std::int64_t>(v % static_cast<std::uint64_t>(side_));
    v /= static_cast<std::uint64_t>(side_);
  }
  return c;
}

VertexId Mesh::vertex_at(const Coords& coords) const {
  VertexId v = 0;
  for (int a = dim_ - 1; a >= 0; --a) {
    const std::int64_t c = coords[static_cast<std::size_t>(a)];
    assert(c >= 0 && c < side_);
    v = v * static_cast<std::uint64_t>(side_) + static_cast<std::uint64_t>(c);
  }
  return v;
}

int Mesh::degree(VertexId v) const {
  if (wrap_) return 2 * dim_;
  const Coords c = coords_of(v);
  int deg = 0;
  for (int a = 0; a < dim_; ++a) {
    if (c[static_cast<std::size_t>(a)] > 0) ++deg;
    if (c[static_cast<std::size_t>(a)] < side_ - 1) ++deg;
  }
  return deg;
}

void Mesh::locate_move(VertexId v, int i, int& axis, int& direction) const {
  if (wrap_) {
    axis = i / 2;
    direction = i % 2;
    return;
  }
  const Coords c = coords_of(v);
  int count = 0;
  for (int a = 0; a < dim_; ++a) {
    if (c[static_cast<std::size_t>(a)] > 0) {
      if (count == i) {
        axis = a;
        direction = 0;
        return;
      }
      ++count;
    }
    if (c[static_cast<std::size_t>(a)] < side_ - 1) {
      if (count == i) {
        axis = a;
        direction = 1;
        return;
      }
      ++count;
    }
  }
  throw std::out_of_range("Mesh::neighbor: incident-edge index out of range");
}

VertexId Mesh::neighbor(VertexId v, int i) const {
  int axis = 0;
  int direction = 0;
  locate_move(v, i, axis, direction);
  const auto stride = stride_[static_cast<std::size_t>(axis)];
  const std::int64_t coord = static_cast<std::int64_t>(
      (v / stride) % static_cast<std::uint64_t>(side_));
  if (direction == 1) {
    if (coord == side_ - 1) return v - static_cast<std::uint64_t>(side_ - 1) * stride;  // wrap
    return v + stride;
  }
  if (coord == 0) return v + static_cast<std::uint64_t>(side_ - 1) * stride;  // wrap
  return v - stride;
}

EdgeKey Mesh::edge_key(VertexId v, int i) const {
  // Canonical owner of the edge along `axis` is the endpoint from which the
  // edge increases the coordinate by +1 (mod side on the torus). That
  // endpoint is unique for side >= 3, and for side == 2 only the non-wrap
  // mesh is allowed, where it is the coord-0 endpoint.
  int axis = 0;
  int direction = 0;
  locate_move(v, i, axis, direction);
  const VertexId owner = (direction == 1) ? v : neighbor(v, i);
  return static_cast<EdgeKey>(axis) * num_vertices_ + owner;
}

EdgeEndpoints Mesh::endpoints(EdgeKey key) const {
  const int axis = static_cast<int>(key / num_vertices_);
  const VertexId owner = key % num_vertices_;
  const auto stride = stride_[static_cast<std::size_t>(axis)];
  const std::int64_t coord = static_cast<std::int64_t>(
      (owner / stride) % static_cast<std::uint64_t>(side_));
  // The owner is the endpoint from which the edge increases the coordinate.
  const VertexId other = (coord == side_ - 1)
                             ? owner - static_cast<std::uint64_t>(side_ - 1) * stride
                             : owner + stride;
  return {owner, other};
}

std::string Mesh::name() const {
  std::ostringstream out;
  out << (wrap_ ? "torus" : "mesh") << "(d=" << dim_ << ",side=" << side_ << ")";
  return out.str();
}

std::uint64_t Mesh::distance(VertexId u, VertexId v) const {
  const Coords cu = coords_of(u);
  const Coords cv = coords_of(v);
  std::uint64_t total = 0;
  for (int a = 0; a < dim_; ++a) {
    std::int64_t delta = std::llabs(cu[static_cast<std::size_t>(a)] - cv[static_cast<std::size_t>(a)]);
    if (wrap_) delta = std::min(delta, side_ - delta);
    total += static_cast<std::uint64_t>(delta);
  }
  return total;
}

// analyze:allow-hot-alloc(closed-form path materialization, reserved to the exact length)
std::vector<VertexId> Mesh::shortest_path(VertexId u, VertexId v) const {
  std::vector<VertexId> path;
  path.reserve(static_cast<std::size_t>(distance(u, v)) + 1);
  path.push_back(u);
  Coords c = coords_of(u);
  const Coords target = coords_of(v);
  for (int a = 0; a < dim_; ++a) {
    auto& cur = c[static_cast<std::size_t>(a)];
    const std::int64_t goal = target[static_cast<std::size_t>(a)];
    while (cur != goal) {
      std::int64_t step;
      if (!wrap_) {
        step = (goal > cur) ? 1 : -1;
      } else {
        const std::int64_t forward = (goal - cur + side_) % side_;
        step = (forward <= side_ - forward) ? 1 : -1;
      }
      cur = (cur + step + side_) % side_;
      path.push_back(vertex_at(c));
    }
  }
  return path;
}

std::string Mesh::vertex_label(VertexId v) const {
  const Coords c = coords_of(v);
  std::ostringstream out;
  out << '(';
  for (int a = 0; a < dim_; ++a) {
    if (a > 0) out << ',';
    out << c[static_cast<std::size_t>(a)];
  }
  out << ')';
  return out.str();
}

}  // namespace faultroute
