#include "graph/de_bruijn.hpp"

#include <algorithm>
#include <stdexcept>

// analyze:allow-file-throw-safety(neighbor and edge_key slot guards: out-of-range arguments are programming errors, surfaced through parallel first_error)
namespace faultroute {

DeBruijn::DeBruijn(int k) : k_(k), n_(1ULL << k) {
  if (k < 2 || k > 30) throw std::invalid_argument("DeBruijn: order must be in [2, 30]");
}

int DeBruijn::neighbors_of(VertexId v, std::array<VertexId, 4>& out) const {
  std::array<VertexId, 4> cand = {
      (2 * v) & (n_ - 1),
      (2 * v + 1) & (n_ - 1),
      v >> 1,
      (v >> 1) | (n_ >> 1),
  };
  std::sort(cand.begin(), cand.end());
  int count = 0;
  for (int j = 0; j < 4; ++j) {
    if (cand[static_cast<std::size_t>(j)] == v) continue;  // self-loop
    if (count > 0 && out[static_cast<std::size_t>(count - 1)] == cand[static_cast<std::size_t>(j)]) {
      continue;  // coincident pair
    }
    out[static_cast<std::size_t>(count++)] = cand[static_cast<std::size_t>(j)];
  }
  return count;
}

std::uint64_t DeBruijn::num_edges() const {
  // Count by summing degrees; DB(k) is small enough to enumerate (<= 2^30,
  // but in practice callers use k <= 24). Exact closed forms exist but this
  // keeps the invariant "num_edges == sum(degree)/2" trivially true.
  std::uint64_t total = 0;
  std::array<VertexId, 4> scratch{};
  for (VertexId v = 0; v < n_; ++v) {
    total += static_cast<std::uint64_t>(neighbors_of(v, scratch));
  }
  return total / 2;
}

int DeBruijn::degree(VertexId v) const {
  std::array<VertexId, 4> scratch{};
  return neighbors_of(v, scratch);
}

VertexId DeBruijn::neighbor(VertexId v, int i) const {
  std::array<VertexId, 4> out{};
  const int count = neighbors_of(v, out);
  if (i < 0 || i >= count) throw std::out_of_range("DeBruijn::neighbor: index out of range");
  return out[static_cast<std::size_t>(i)];
}

EdgeKey DeBruijn::edge_key(VertexId v, int i) const {
  // Simple graph after dedup, so the unordered endpoint pair is canonical.
  const VertexId w = neighbor(v, i);
  const VertexId lo = v < w ? v : w;
  const VertexId hi = v < w ? w : v;
  return lo * n_ + hi;
}

std::string DeBruijn::name() const { return "de_bruijn(k=" + std::to_string(k_) + ")"; }

}  // namespace faultroute
