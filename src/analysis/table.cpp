#include "analysis/table.hpp"

#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace faultroute {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: need at least one column");
}

std::string Table::fmt(double value, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << value;
  return out.str();
}

std::string Table::fmt(std::uint64_t value) { return std::to_string(value); }
std::string Table::fmt(int value) { return std::to_string(value); }

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << cells[c];
      out << std::string(widths[c] - cells[c].size(), ' ');
    }
    out << '\n';
  };
  emit(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) rule += widths[c] + (c == 0 ? 0 : 2);
  out << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::print(const std::string& title) const {
  std::cout << "\n== " << title << " ==\n" << to_string() << std::flush;
}

void Table::write_csv(const std::string& path) const {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("Table::write_csv: cannot open " + path);
  const auto quote = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (const char ch : cell) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) file << ',';
      file << quote(cells[c]);
    }
    file << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace faultroute
