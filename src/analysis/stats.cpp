#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace faultroute {

void Summary::add(double x) {
  values_.push_back(x);
  sum_ += x;
  sorted_valid_ = false;
}

double Summary::mean() const {
  if (values_.empty()) throw std::logic_error("Summary::mean: empty sample");
  return sum_ / static_cast<double>(values_.size());
}

double Summary::variance() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  // True two-pass: sum squared deviations over the retained sample. The
  // one-pass sum-of-squares shortcut (sum_sq - n*m^2) cancels
  // catastrophically at large mean / small spread — e.g. {1e8, 1e8+1,
  // 1e8+2} came out as variance 0 instead of 1.
  double sum_sq_dev = 0.0;
  for (const double x : values_) {
    const double dev = x - m;
    sum_sq_dev += dev * dev;
  }
  return sum_sq_dev / (static_cast<double>(values_.size()) - 1.0);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::sem() const {
  if (values_.empty()) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(values_.size()));
}

double Summary::min() const {
  if (values_.empty()) throw std::logic_error("Summary::min: empty sample");  // analyze:allow-throw-safety(empty-sample guard; parallel workers funnel throws through first_error)
  return *std::min_element(values_.begin(), values_.end());
}

double Summary::max() const {
  if (values_.empty()) throw std::logic_error("Summary::max: empty sample");  // analyze:allow-throw-safety(empty-sample guard; parallel workers funnel throws through first_error)
  return *std::max_element(values_.begin(), values_.end());
}

double Summary::quantile(double q) const {
  if (values_.empty()) throw std::logic_error("Summary::quantile: empty sample");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("Summary::quantile: q outside [0,1]");
  if (!sorted_valid_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  // Nearest-rank: the smallest value with at least ceil(q*n) of the sample
  // at or below it, i.e. 1-based rank ceil(q*n), clamped so q=0 is the
  // minimum. The previous floor(q*n) was one rank too high wherever q*n is
  // an integer — median() of {1,2,3,4} came out 3 instead of 2.
  const double n = static_cast<double>(sorted_.size());
  const double pos = std::ceil(q * n) - 1.0;
  const auto rank = pos <= 0.0 ? std::size_t{0}
                               : std::min(sorted_.size() - 1, static_cast<std::size_t>(pos));
  return sorted_[rank];
}

Interval wilson_interval(std::uint64_t successes, std::uint64_t trials, double z) {
  if (trials == 0) return {0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (phat + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

LinearFit linear_fit(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size()) throw std::invalid_argument("linear_fit: size mismatch");
  if (xs.size() < 2) throw std::invalid_argument("linear_fit: need >= 2 points");
  const auto n = static_cast<double>(xs.size());
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double det = n * sxx - sx * sx;
  if (det == 0.0) throw std::invalid_argument("linear_fit: constant x");
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / det;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double r = ys[i] - (fit.slope * xs[i] + fit.intercept);
    ss_res += r * r;
  }
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

namespace {

std::vector<double> logged(const std::vector<double>& values, const char* what) {
  std::vector<double> out;
  out.reserve(values.size());
  for (const double v : values) {
    if (v <= 0.0) throw std::invalid_argument(std::string(what) + ": non-positive value");
    out.push_back(std::log(v));
  }
  return out;
}

}  // namespace

LinearFit log_log_fit(const std::vector<double>& xs, const std::vector<double>& ys) {
  return linear_fit(logged(xs, "log_log_fit(x)"), logged(ys, "log_log_fit(y)"));
}

LinearFit semilog_fit(const std::vector<double>& xs, const std::vector<double>& ys) {
  return linear_fit(xs, logged(ys, "semilog_fit(y)"));
}

}  // namespace faultroute
