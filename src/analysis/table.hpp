#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace faultroute {

/// A small column-aligned table for experiment reports: prints to stdout in
/// the benches and optionally dumps CSV for downstream plotting.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Cell formatting helpers.
  static std::string fmt(double value, int precision = 3);
  static std::string fmt(std::uint64_t value);
  static std::string fmt(int value);

  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t num_columns() const { return headers_.size(); }
  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const { return rows_[i]; }

  /// Renders the aligned table (header, rule, rows).
  [[nodiscard]] std::string to_string() const;

  /// Prints to stdout with a title line.
  void print(const std::string& title) const;

  /// Writes RFC-4180-ish CSV (quotes applied when needed).
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace faultroute
