#pragma once

#include <cstdint>

namespace faultroute::theory {

/// Closed-form quantities from the paper and its cited literature, used by
/// benches and tests as "paper" reference columns.

/// Lemma 5: Pr[X < t] <= (t * eta + pr_uv_in_s) / pr_uv. Returns that bound
/// clamped to [0, 1].
[[nodiscard]] double lemma5_bound(double t, double eta, double pr_uv_in_s, double pr_uv);

/// Theorem 3(i) machinery: the path-counting bound on
/// eta = Pr[(v ~ x) in B_l(v)] for a boundary vertex x at distance l in
/// H_{n,p}:  eta <= l! p^l / (1 - n l^2 p^2). Returns +inf when the geometric
/// series diverges (n l^2 p^2 >= 1 — possible at finite n even for
/// alpha > 1/2).
[[nodiscard]] double hypercube_eta_bound(int n, double p, int l);

/// The leading term l! p^l of the same bound (informative even when the full
/// series has not kicked in at laptop-scale n).
[[nodiscard]] double hypercube_eta_leading(double p, int l);

/// The hypercube routing-phase-transition point p = n^{-1/2} (Theorem 3).
[[nodiscard]] double hypercube_routing_threshold(int n);

/// The hypercube giant-component threshold p ~ 1/n (Ajtai-Komlos-Szemeredi).
[[nodiscard]] double hypercube_giant_threshold(int n);

/// The hypercube connectivity threshold p = 1/2 (Erdos-Spencer).
[[nodiscard]] constexpr double hypercube_connectivity_threshold() { return 0.5; }

/// Mesh bond-percolation thresholds: exact 1/2 for d = 2 (Kesten), the
/// standard numerical values for d = 3..6 (Grimmett's book / simulation
/// literature: 0.2488, 0.1601, 0.1182, 0.0942). Throws for d outside [2, 6].
[[nodiscard]] double mesh_critical_probability(int d);

/// The double-tree connectivity threshold 1/sqrt(2) (Lemma 6).
[[nodiscard]] double double_tree_threshold();

/// Theorem 7: the local routing lower bound ~ a * p^{-n} for TT_n.
[[nodiscard]] double double_tree_local_lower_bound(double p, int n);

/// G_{n,p} giant-component survival: for p = c/n with c > 1 the giant
/// component holds a beta(c) fraction of vertices where beta solves
/// beta = 1 - e^{-c beta}. Returns 0 for c <= 1.
[[nodiscard]] double gnp_giant_fraction(double c);

/// Theorem 10 / 11 reference exponents for G_{n,c/n} routing complexity.
[[nodiscard]] constexpr double gnp_local_exponent() { return 2.0; }
[[nodiscard]] constexpr double gnp_oracle_exponent() { return 1.5; }

}  // namespace faultroute::theory
