#pragma once

#include <cstdint>
#include <vector>

namespace faultroute {

/// Accumulates a sample and reports summary statistics. Stores the values
/// (samples here are at most a few thousand points), so exact quantiles are
/// available.
class Summary {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const;
  /// Unbiased sample variance (n-1 denominator); 0 for n < 2. Computed
  /// two-pass over the retained values, so it stays exact at large mean /
  /// small spread where the sum-of-squares shortcut cancels to 0.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// Standard error of the mean.
  [[nodiscard]] double sem() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Exact sample quantile (nearest-rank); q in [0, 1].
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }

 private:
  std::vector<double> values_;
  double sum_ = 0.0;
  mutable std::vector<double> sorted_;  // cache, invalidated on add
  mutable bool sorted_valid_ = false;
};

/// Wilson score interval for a binomial proportion (k successes in n
/// trials) at confidence z (1.96 ~ 95%).
struct Interval {
  double low = 0.0;
  double high = 0.0;
  [[nodiscard]] bool contains(double x) const { return low <= x && x <= high; }
};

[[nodiscard]] Interval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                                       double z = 1.96);

/// Ordinary least-squares fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

/// Requires xs.size() == ys.size() >= 2 and non-constant xs.
[[nodiscard]] LinearFit linear_fit(const std::vector<double>& xs,
                                   const std::vector<double>& ys);

/// Fits log(y) = slope * log(x) + c, i.e. the power-law exponent of y ~ x^slope.
/// Points with non-positive x or y are rejected (throws).
[[nodiscard]] LinearFit log_log_fit(const std::vector<double>& xs,
                                    const std::vector<double>& ys);

/// Fits log(y) = slope * x + c, i.e. the rate of exponential growth y ~ e^{slope x}.
[[nodiscard]] LinearFit semilog_fit(const std::vector<double>& xs,
                                    const std::vector<double>& ys);

}  // namespace faultroute
