#include "analysis/theory.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace faultroute::theory {

double lemma5_bound(double t, double eta, double pr_uv_in_s, double pr_uv) {
  if (pr_uv <= 0.0) throw std::invalid_argument("lemma5_bound: Pr[u~v] must be > 0");
  const double bound = (t * eta + pr_uv_in_s) / pr_uv;
  if (bound < 0.0) return 0.0;
  return bound > 1.0 ? 1.0 : bound;
}

double hypercube_eta_leading(double p, int l) {
  return std::tgamma(static_cast<double>(l) + 1.0) * std::pow(p, l);
}

double hypercube_eta_bound(int n, double p, int l) {
  const double ratio = static_cast<double>(n) * l * l * p * p;
  if (ratio >= 1.0) return std::numeric_limits<double>::infinity();
  return hypercube_eta_leading(p, l) / (1.0 - ratio);
}

double hypercube_routing_threshold(int n) {
  return 1.0 / std::sqrt(static_cast<double>(n));
}

double hypercube_giant_threshold(int n) { return 1.0 / static_cast<double>(n); }

double mesh_critical_probability(int d) {
  switch (d) {
    case 2:
      return 0.5;  // exact (Kesten 1980)
    case 3:
      return 0.2488;
    case 4:
      return 0.1601;
    case 5:
      return 0.1182;
    case 6:
      return 0.0942;
    default:
      throw std::invalid_argument("mesh_critical_probability: d must be in [2, 6]");
  }
}

double double_tree_threshold() { return 1.0 / std::sqrt(2.0); }

double double_tree_local_lower_bound(double p, int n) {
  if (p <= 0.0 || p > 1.0) {
    throw std::invalid_argument("double_tree_local_lower_bound: p in (0, 1]");
  }
  return std::pow(p, -n);
}

double gnp_giant_fraction(double c) {
  if (c <= 1.0) return 0.0;
  // Fixed point of beta = 1 - exp(-c beta), via monotone iteration from 1.
  double beta = 1.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double next = 1.0 - std::exp(-c * beta);
    if (std::abs(next - beta) < 1e-14) return next;
    beta = next;
  }
  return beta;
}

}  // namespace faultroute::theory
