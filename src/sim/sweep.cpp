#include "sim/sweep.hpp"

#include <stdexcept>

namespace faultroute::sim {

std::vector<double> linspace(double lo, double hi, int points) {
  if (points < 2) throw std::invalid_argument("linspace: need >= 2 points");
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(points));
  const double step = (hi - lo) / (points - 1);
  for (int i = 0; i < points; ++i) out.push_back(lo + step * i);
  return out;
}

std::vector<double> logspace(double lo, double hi, int points) {
  if (lo <= 0.0 || hi <= 0.0) throw std::invalid_argument("logspace: bounds must be > 0");
  if (points < 2) throw std::invalid_argument("logspace: need >= 2 points");
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(points));
  const double llo = std::log(lo);
  const double step = (std::log(hi) - llo) / (points - 1);
  for (int i = 0; i < points; ++i) out.push_back(std::exp(llo + step * i));
  return out;
}

std::vector<std::uint64_t> geometric_sizes(std::uint64_t start, double ratio,
                                           std::uint64_t limit) {
  if (start == 0 || ratio <= 1.0) {
    throw std::invalid_argument("geometric_sizes: need start > 0 and ratio > 1");
  }
  std::vector<std::uint64_t> out;
  double x = static_cast<double>(start);
  while (true) {
    const auto v = static_cast<std::uint64_t>(x + 0.5);
    if (v > limit) break;
    if (out.empty() || v != out.back()) out.push_back(v);
    x *= ratio;
  }
  return out;
}

}  // namespace faultroute::sim
