#include "sim/options.hpp"

#include <algorithm>
#include <stdexcept>

namespace faultroute::sim {

int Options::trials_or(int full_default) const {
  if (trials) return *trials;
  if (quick) return std::max(5, full_default / 4);
  return full_default;
}

std::optional<std::string> Options::csv_path(const std::string& table_name) const {
  if (!csv_dir) return std::nullopt;
  return *csv_dir + "/" + table_name + ".csv";
}

Options parse_options(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      options.quick = true;
    } else if (arg.rfind("--trials=", 0) == 0) {
      options.trials = std::stoi(arg.substr(9));
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::stoull(arg.substr(7));
    } else if (arg.rfind("--csv=", 0) == 0) {
      options.csv_dir = arg.substr(6);
    } else {
      throw std::invalid_argument("unknown option: " + arg +
                                  " (supported: --quick --trials=N --seed=S --csv=DIR)");
    }
  }
  return options;
}

}  // namespace faultroute::sim
