#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace faultroute::sim {

/// Evenly spaced values lo..hi inclusive.
[[nodiscard]] std::vector<double> linspace(double lo, double hi, int points);

/// Logarithmically spaced values lo..hi inclusive (lo, hi > 0).
[[nodiscard]] std::vector<double> logspace(double lo, double hi, int points);

/// The paper's hypercube parameterisation p = n^{-alpha}.
[[nodiscard]] inline double p_for_alpha(int n, double alpha) {
  return std::pow(static_cast<double>(n), -alpha);
}

/// Geometric integer ladder: start, start*ratio, ... capped at `limit`,
/// rounded and deduplicated.
[[nodiscard]] std::vector<std::uint64_t> geometric_sizes(std::uint64_t start,
                                                         double ratio,
                                                         std::uint64_t limit);

}  // namespace faultroute::sim
