#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace faultroute::sim {

/// Evenly spaced values lo..hi inclusive. Requires points >= 2 (throws
/// std::invalid_argument otherwise); lo may exceed hi (descending sweep).
[[nodiscard]] std::vector<double> linspace(double lo, double hi, int points);

/// Logarithmically spaced values lo..hi inclusive. Requires points >= 2 and
/// lo, hi > 0 (throws std::invalid_argument otherwise).
[[nodiscard]] std::vector<double> logspace(double lo, double hi, int points);

/// The paper's hypercube parameterisation p = n^{-alpha}.
[[nodiscard]] inline double p_for_alpha(int n, double alpha) {
  return std::pow(static_cast<double>(n), -alpha);
}

/// Geometric integer ladder: start, start*ratio, ... capped at `limit`,
/// rounded and deduplicated. Requires start > 0 and ratio > 1 (throws
/// std::invalid_argument otherwise); empty when start > limit.
[[nodiscard]] std::vector<std::uint64_t> geometric_sizes(std::uint64_t start,
                                                         double ratio,
                                                         std::uint64_t limit);

}  // namespace faultroute::sim
