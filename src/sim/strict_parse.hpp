#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace faultroute::sim {

/// Strict whole-token number parsing shared by the registry and scenario
/// spec grammars: the entire token must be consumed (no trailing garbage)
/// and the value must fit the type (no silent truncation or wrapping).
/// Returns nullopt on any violation; callers format their own errors so
/// messages can name the key/spec they belong to.

[[nodiscard]] inline std::optional<std::int64_t> strict_i64(const std::string& token) {
  std::size_t consumed = 0;
  try {
    const std::int64_t value = std::stoll(token, &consumed);
    if (consumed != token.size()) return std::nullopt;
    return value;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

/// stoull silently wraps negative input, so reject any sign up front.
[[nodiscard]] inline std::optional<std::uint64_t> strict_u64(const std::string& token) {
  if (token.empty() || token[0] == '-' || token[0] == '+') return std::nullopt;
  std::size_t consumed = 0;
  try {
    const std::uint64_t value = std::stoull(token, &consumed);
    if (consumed != token.size()) return std::nullopt;
    return value;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

[[nodiscard]] inline std::optional<double> strict_f64(const std::string& token) {
  if (token.empty()) return std::nullopt;
  std::size_t consumed = 0;
  try {
    const double value = std::stod(token, &consumed);
    if (consumed != token.size()) return std::nullopt;
    return value;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace faultroute::sim
