#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace faultroute::sim {

/// Shared CLI options for the experiment bench binaries.
///
///   --quick            shrink instance sizes / trial counts (CI smoke run)
///   --trials=N         override the per-point trial count
///   --seed=S           override the base seed
///   --csv=DIR          also write each printed table as DIR/<table>.csv
struct Options {
  bool quick = false;
  std::optional<int> trials;
  std::uint64_t seed = 20050701;  // PODC 2005 vintage
  std::optional<std::string> csv_dir;

  /// Effective trial count given a full-run default (quick mode quarters it,
  /// minimum 5).
  [[nodiscard]] int trials_or(int full_default) const;

  /// CSV path for a table name, if --csv was given.
  [[nodiscard]] std::optional<std::string> csv_path(const std::string& table_name) const;
};

/// Parses argv; throws std::invalid_argument on unknown flags or malformed
/// values (benches pass through google-benchmark style args only when
/// explicitly listed). argv[0] is ignored; argv is only read.
[[nodiscard]] Options parse_options(int argc, char** argv);

}  // namespace faultroute::sim
