#include "sim/registry.hpp"

#include <limits>
#include <sstream>
#include <stdexcept>

#include "sim/strict_parse.hpp"

#include "core/routers/bidirectional_router.hpp"
#include "core/routers/double_tree_routers.hpp"
#include "core/routers/flood_router.hpp"
#include "core/routers/gnp_routers.hpp"
#include "core/routers/greedy_router.hpp"
#include "core/routers/hybrid_router.hpp"
#include "core/routers/landmark_router.hpp"
#include "graph/butterfly.hpp"
#include "graph/complete.hpp"
#include "graph/cube_connected_cycles.hpp"
#include "graph/cycle_matching.hpp"
#include "graph/de_bruijn.hpp"
#include "graph/double_tree.hpp"
#include "graph/hypercube.hpp"
#include "graph/mesh.hpp"
#include "graph/shuffle_exchange.hpp"

// analyze:allow-file-throw-safety(factory parse and validation errors raised while resolving scenario specs; any late throw is funneled through parallel first_error)
namespace faultroute::sim {

namespace {

std::vector<std::string> split_spec(const std::string& spec) {
  std::vector<std::string> parts;
  std::istringstream stream(spec);
  std::string token;
  while (std::getline(stream, token, ':')) parts.push_back(token);
  return parts;
}

std::string join(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

/// Strict integer parse: the whole token must be a number (no trailing
/// garbage, no silent truncation on overflow).
std::int64_t parse_int(const std::string& token, const std::string& spec) {
  const auto value = strict_i64(token);
  if (!value) {
    throw std::invalid_argument("bad number '" + token + "' in spec '" + spec + "'");
  }
  return *value;
}

/// parse_int for parameters that are semantically non-negative (sizes,
/// seeds): rejects negatives before any unsigned cast can wrap them.
std::uint64_t parse_uint(const std::string& token, const std::string& spec) {
  const std::int64_t value = parse_int(token, spec);
  if (value < 0) {
    throw std::invalid_argument("negative number '" + token + "' in spec '" + spec + "'");
  }
  return static_cast<std::uint64_t>(value);
}

/// parse_int narrowed to int; the topology constructors do the semantic
/// range checks, this only rules out values that would not survive the cast.
int parse_small_int(const std::string& token, const std::string& spec) {
  const std::int64_t value = parse_int(token, spec);
  if (value < std::numeric_limits<int>::min() || value > std::numeric_limits<int>::max()) {
    throw std::invalid_argument("number '" + token + "' out of range in spec '" + spec + "'");
  }
  return static_cast<int>(value);
}

double parse_double(const std::string& token, const std::string& spec) {
  const auto value = strict_f64(token);
  if (!value) {
    throw std::invalid_argument("bad number '" + token + "' in spec '" + spec + "'");
  }
  return *value;
}

void expect_arity(const std::vector<std::string>& parts, std::size_t lo, std::size_t hi,
                  const std::string& spec) {
  if (parts.size() < lo || parts.size() > hi) {
    throw std::invalid_argument("wrong number of arguments in spec '" + spec + "'");
  }
}

}  // namespace

std::unique_ptr<Topology> make_topology(const std::string& spec) {
  const auto parts = split_spec(spec);
  if (parts.empty()) throw std::invalid_argument("empty topology spec");
  const std::string& kind = parts[0];
  if (kind == "hypercube") {
    expect_arity(parts, 2, 2, spec);
    return std::make_unique<Hypercube>(parse_small_int(parts[1], spec));
  }
  if (kind == "mesh" || kind == "torus") {
    expect_arity(parts, 3, 3, spec);
    return std::make_unique<Mesh>(parse_small_int(parts[1], spec),
                                  parse_int(parts[2], spec), kind == "torus");
  }
  if (kind == "double_tree") {
    expect_arity(parts, 2, 2, spec);
    return std::make_unique<DoubleBinaryTree>(parse_small_int(parts[1], spec));
  }
  if (kind == "complete") {
    expect_arity(parts, 2, 2, spec);
    return std::make_unique<CompleteGraph>(parse_uint(parts[1], spec));
  }
  if (kind == "de_bruijn") {
    expect_arity(parts, 2, 2, spec);
    return std::make_unique<DeBruijn>(parse_small_int(parts[1], spec));
  }
  if (kind == "shuffle_exchange") {
    expect_arity(parts, 2, 2, spec);
    return std::make_unique<ShuffleExchange>(parse_small_int(parts[1], spec));
  }
  if (kind == "butterfly") {
    expect_arity(parts, 2, 2, spec);
    return std::make_unique<Butterfly>(parse_small_int(parts[1], spec));
  }
  if (kind == "ccc") {
    expect_arity(parts, 2, 2, spec);
    return std::make_unique<CubeConnectedCycles>(
        parse_small_int(parts[1], spec));
  }
  if (kind == "cycle_matching") {
    expect_arity(parts, 2, 3, spec);
    const std::uint64_t n = parse_uint(parts[1], spec);
    const std::uint64_t seed = parts.size() == 3 ? parse_uint(parts[2], spec) : 1;
    return std::make_unique<CycleWithMatching>(n, seed);
  }
  throw std::invalid_argument("unknown topology kind '" + kind + "' in spec '" + spec +
                              "' (examples: " + join(topology_spec_examples()) + ")");
}

std::unique_ptr<Router> make_router(const std::string& name, const Topology& topology) {
  if (name == "flood") return std::make_unique<FloodRouter>();
  if (name == "flood-target-first") return std::make_unique<FloodRouter>(true);
  if (name == "landmark") return std::make_unique<LandmarkRouter>();
  if (name == "greedy") return std::make_unique<GreedyDescentRouter>();
  if (name == "best-first") return std::make_unique<BestFirstRouter>();
  if (name == "hybrid") return std::make_unique<HybridGreedyRouter>();
  if (name == "bidirectional") return std::make_unique<BidirectionalBfsRouter>();
  if (name == "gnp-local") return std::make_unique<GnpLocalRouter>();
  if (name == "gnp-oracle") return std::make_unique<GnpOracleRouter>();
  if (name == "double-tree-local" || name == "double-tree-oracle") {
    const auto* tree = dynamic_cast<const DoubleBinaryTree*>(&topology);
    if (tree == nullptr) {
      throw std::invalid_argument("router '" + name + "' requires a double_tree topology");
    }
    if (name == "double-tree-local") return std::make_unique<DoubleTreeLocalRouter>(*tree);
    return std::make_unique<DoubleTreePairedOracleRouter>(*tree);
  }
  throw std::invalid_argument("unknown router '" + name + "' (known: " + join(router_names()) +
                              ")");
}

WorkloadConfig make_workload(const std::string& spec) {
  const auto parts = split_spec(spec);
  if (parts.empty() || parts[0].empty()) throw std::invalid_argument("empty workload spec");
  const std::string& kind = parts[0];
  WorkloadConfig config;
  if (kind == "permutation" || kind == "random-pairs" || kind == "bisection") {
    expect_arity(parts, 1, 1, spec);
    config.kind = parse_workload(kind);
    return config;
  }
  if (kind == "hotspot") {
    expect_arity(parts, 1, 2, spec);
    config.kind = WorkloadKind::kHotspot;
    if (parts.size() == 2) {
      const std::int64_t target = parse_int(parts[1], spec);
      if (target < 0) {
        throw std::invalid_argument("hotspot target must be >= 0 in spec '" + spec + "'");
      }
      config.hotspot_target = static_cast<VertexId>(target);
    }
    return config;
  }
  if (kind == "poisson") {
    expect_arity(parts, 2, 2, spec);
    config.kind = WorkloadKind::kPoisson;
    config.arrival_rate = parse_double(parts[1], spec);
    if (!(config.arrival_rate > 0.0)) {
      throw std::invalid_argument("poisson rate must be > 0 in spec '" + spec + "'");
    }
    return config;
  }
  throw std::invalid_argument("unknown workload '" + kind + "' in spec '" + spec +
                              "' (examples: " + join(workload_spec_examples()) + ")");
}

std::vector<std::string> topology_spec_examples() {
  return {"hypercube:12",        "mesh:2:64",      "torus:3:16",   "double_tree:10",
          "complete:500",        "de_bruijn:12",   "shuffle_exchange:12",
          "butterfly:8",         "ccc:8",          "cycle_matching:4096:7"};
}

std::vector<std::string> router_names() {
  return {"flood",        "flood-target-first", "landmark",          "greedy",
          "best-first",   "hybrid",             "bidirectional",     "gnp-local",
          "gnp-oracle",   "double-tree-local",  "double-tree-oracle"};
}

std::vector<std::string> workload_spec_examples() {
  return {"permutation", "random-pairs", "hotspot:0", "bisection", "poisson:2.5"};
}

}  // namespace faultroute::sim
