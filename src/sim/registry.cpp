#include "sim/registry.hpp"

#include <sstream>
#include <stdexcept>

#include "core/routers/bidirectional_router.hpp"
#include "core/routers/double_tree_routers.hpp"
#include "core/routers/flood_router.hpp"
#include "core/routers/gnp_routers.hpp"
#include "core/routers/greedy_router.hpp"
#include "core/routers/hybrid_router.hpp"
#include "core/routers/landmark_router.hpp"
#include "graph/butterfly.hpp"
#include "graph/complete.hpp"
#include "graph/cube_connected_cycles.hpp"
#include "graph/cycle_matching.hpp"
#include "graph/de_bruijn.hpp"
#include "graph/double_tree.hpp"
#include "graph/hypercube.hpp"
#include "graph/mesh.hpp"
#include "graph/shuffle_exchange.hpp"

namespace faultroute::sim {

namespace {

std::vector<std::string> split_spec(const std::string& spec) {
  std::vector<std::string> parts;
  std::istringstream stream(spec);
  std::string token;
  while (std::getline(stream, token, ':')) parts.push_back(token);
  return parts;
}

std::int64_t parse_int(const std::string& token, const std::string& spec) {
  try {
    return std::stoll(token);
  } catch (const std::exception&) {
    throw std::invalid_argument("bad number '" + token + "' in topology spec '" + spec + "'");
  }
}

void expect_arity(const std::vector<std::string>& parts, std::size_t lo, std::size_t hi,
                  const std::string& spec) {
  if (parts.size() < lo || parts.size() > hi) {
    throw std::invalid_argument("wrong number of arguments in topology spec '" + spec + "'");
  }
}

}  // namespace

std::unique_ptr<Topology> make_topology(const std::string& spec) {
  const auto parts = split_spec(spec);
  if (parts.empty()) throw std::invalid_argument("empty topology spec");
  const std::string& kind = parts[0];
  if (kind == "hypercube") {
    expect_arity(parts, 2, 2, spec);
    return std::make_unique<Hypercube>(static_cast<int>(parse_int(parts[1], spec)));
  }
  if (kind == "mesh" || kind == "torus") {
    expect_arity(parts, 3, 3, spec);
    return std::make_unique<Mesh>(static_cast<int>(parse_int(parts[1], spec)),
                                  parse_int(parts[2], spec), kind == "torus");
  }
  if (kind == "double_tree") {
    expect_arity(parts, 2, 2, spec);
    return std::make_unique<DoubleBinaryTree>(static_cast<int>(parse_int(parts[1], spec)));
  }
  if (kind == "complete") {
    expect_arity(parts, 2, 2, spec);
    return std::make_unique<CompleteGraph>(
        static_cast<std::uint64_t>(parse_int(parts[1], spec)));
  }
  if (kind == "de_bruijn") {
    expect_arity(parts, 2, 2, spec);
    return std::make_unique<DeBruijn>(static_cast<int>(parse_int(parts[1], spec)));
  }
  if (kind == "shuffle_exchange") {
    expect_arity(parts, 2, 2, spec);
    return std::make_unique<ShuffleExchange>(static_cast<int>(parse_int(parts[1], spec)));
  }
  if (kind == "butterfly") {
    expect_arity(parts, 2, 2, spec);
    return std::make_unique<Butterfly>(static_cast<int>(parse_int(parts[1], spec)));
  }
  if (kind == "ccc") {
    expect_arity(parts, 2, 2, spec);
    return std::make_unique<CubeConnectedCycles>(
        static_cast<int>(parse_int(parts[1], spec)));
  }
  if (kind == "cycle_matching") {
    expect_arity(parts, 2, 3, spec);
    const auto n = static_cast<std::uint64_t>(parse_int(parts[1], spec));
    const std::uint64_t seed =
        parts.size() == 3 ? static_cast<std::uint64_t>(parse_int(parts[2], spec)) : 1;
    return std::make_unique<CycleWithMatching>(n, seed);
  }
  throw std::invalid_argument("unknown topology kind '" + kind + "' in spec '" + spec + "'");
}

std::unique_ptr<Router> make_router(const std::string& name, const Topology& topology) {
  if (name == "flood") return std::make_unique<FloodRouter>();
  if (name == "flood-target-first") return std::make_unique<FloodRouter>(true);
  if (name == "landmark") return std::make_unique<LandmarkRouter>();
  if (name == "greedy") return std::make_unique<GreedyDescentRouter>();
  if (name == "best-first") return std::make_unique<BestFirstRouter>();
  if (name == "hybrid") return std::make_unique<HybridGreedyRouter>();
  if (name == "bidirectional") return std::make_unique<BidirectionalBfsRouter>();
  if (name == "gnp-local") return std::make_unique<GnpLocalRouter>();
  if (name == "gnp-oracle") return std::make_unique<GnpOracleRouter>();
  if (name == "double-tree-local" || name == "double-tree-oracle") {
    const auto* tree = dynamic_cast<const DoubleBinaryTree*>(&topology);
    if (tree == nullptr) {
      throw std::invalid_argument("router '" + name + "' requires a double_tree topology");
    }
    if (name == "double-tree-local") return std::make_unique<DoubleTreeLocalRouter>(*tree);
    return std::make_unique<DoubleTreePairedOracleRouter>(*tree);
  }
  throw std::invalid_argument("unknown router '" + name + "'");
}

std::vector<std::string> topology_spec_examples() {
  return {"hypercube:12",        "mesh:2:64",      "torus:3:16",   "double_tree:10",
          "complete:500",        "de_bruijn:12",   "shuffle_exchange:12",
          "butterfly:8",         "ccc:8",          "cycle_matching:4096:7"};
}

std::vector<std::string> router_names() {
  return {"flood",        "flood-target-first", "landmark",          "greedy",
          "best-first",   "hybrid",             "bidirectional",     "gnp-local",
          "gnp-oracle",   "double-tree-local",  "double-tree-oracle"};
}

}  // namespace faultroute::sim
