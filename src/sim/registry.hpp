#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/router.hpp"
#include "graph/topology.hpp"
#include "traffic/workload.hpp"

namespace faultroute::sim {

/// String-spec factories for topologies, routers, and workloads — the
/// registry behind the CLI tool and the scenario runner (`src/scenario/`).
///
/// All factories validate their input eagerly and throw
/// `std::invalid_argument` with a message naming the offending spec on any
/// malformed, unknown, or out-of-range input; they never truncate numbers
/// silently. The full grammar reference lives in `docs/SCENARIOS.md`.
///
/// Topology specs (colon-separated):
///   hypercube:<n>                  e.g. hypercube:12
///   mesh:<d>:<side>                e.g. mesh:2:64
///   torus:<d>:<side>               e.g. torus:3:16
///   double_tree:<n>                e.g. double_tree:10
///   complete:<n>                   e.g. complete:500
///   de_bruijn:<k>                  e.g. de_bruijn:12
///   shuffle_exchange:<k>           e.g. shuffle_exchange:12
///   butterfly:<k>                  e.g. butterfly:8
///   ccc:<k>                        e.g. ccc:8
///   cycle_matching:<n>[:<seed>]    e.g. cycle_matching:4096:7
///
/// Router names:
///   flood | flood-target-first | landmark | greedy | best-first | hybrid |
///   bidirectional (oracle) | gnp-local | gnp-oracle |
///   double-tree-local | double-tree-oracle
/// (the double-tree and gnp routers require the matching topology).
///
/// Workload specs (colon-separated, mirroring `WorkloadKind`):
///   permutation                    one message per source, random permutation
///   random-pairs                   independent uniform (source, target)
///   hotspot[:<target>]             all-to-one onto vertex <target> (default 0)
///   bisection                      first half -> second half
///   poisson:<rate>                 open-loop arrivals, <rate> msgs/timestep > 0
[[nodiscard]] std::unique_ptr<Topology> make_topology(const std::string& spec);

/// `topology` is needed by routers bound to a concrete graph type
/// (double-tree routers); it must outlive the returned router.
[[nodiscard]] std::unique_ptr<Router> make_router(const std::string& name,
                                                  const Topology& topology);

/// Parses a workload spec into a config with `kind`, `hotspot_target`, and
/// `arrival_rate` set; `messages` and `seed` keep their defaults for the
/// caller to fill in. Note the hotspot target is range-checked against the
/// topology only when the workload is generated, not here.
[[nodiscard]] WorkloadConfig make_workload(const std::string& spec);

/// The specs/names understood above, for help text.
[[nodiscard]] std::vector<std::string> topology_spec_examples();
[[nodiscard]] std::vector<std::string> router_names();
[[nodiscard]] std::vector<std::string> workload_spec_examples();

}  // namespace faultroute::sim
