#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/router.hpp"
#include "graph/topology.hpp"

namespace faultroute::sim {

/// String-spec factories for topologies and routers, used by the CLI tool
/// and handy for config-driven experiments.
///
/// Topology specs (colon-separated):
///   hypercube:<n>                  e.g. hypercube:12
///   mesh:<d>:<side>                e.g. mesh:2:64
///   torus:<d>:<side>               e.g. torus:3:16
///   double_tree:<n>                e.g. double_tree:10
///   complete:<n>                   e.g. complete:500
///   de_bruijn:<k>                  e.g. de_bruijn:12
///   shuffle_exchange:<k>           e.g. shuffle_exchange:12
///   butterfly:<k>                  e.g. butterfly:8
///   ccc:<k>                        e.g. ccc:8
///   cycle_matching:<n>[:<seed>]    e.g. cycle_matching:4096:7
///
/// Router names:
///   flood | flood-target-first | landmark | greedy | best-first | hybrid |
///   bidirectional (oracle) | gnp-local | gnp-oracle |
///   double-tree-local | double-tree-oracle
/// (the double-tree and gnp routers require the matching topology).
[[nodiscard]] std::unique_ptr<Topology> make_topology(const std::string& spec);

/// `topology` is needed by routers bound to a concrete graph type
/// (double-tree routers); it must outlive the returned router.
[[nodiscard]] std::unique_ptr<Router> make_router(const std::string& name,
                                                  const Topology& topology);

/// The specs/names understood above, for help text.
[[nodiscard]] std::vector<std::string> topology_spec_examples();
[[nodiscard]] std::vector<std::string> router_names();

}  // namespace faultroute::sim
