#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/channel_index.hpp"
#include "graph/topology.hpp"

namespace faultroute {

/// Congestion summary of per-edge traversal counts, shared by the
/// permutation batch router and the traffic engine.
struct EdgeLoadStats {
  std::uint64_t max_load = 0;    // traversals of the busiest edge
  std::uint64_t edges_used = 0;  // edges carrying >= 1 traversal
  std::uint64_t total = 0;       // sum of all traversals
  double mean_load = 0.0;        // total / edges_used (0 when unused)
};

/// Thin adapter over the dense accumulation below for callers that still
/// key loads by sparse EdgeKey (one-off analyses, hand-built fixtures); the
/// hot paths accumulate per dense edge id and use summarize_edge_id_load.
[[nodiscard]] EdgeLoadStats summarize_edge_load(
    const std::unordered_map<EdgeKey, std::uint64_t>& load);

/// Congestion summary of a dense per-undirected-edge-id traversal vector
/// (ids from ChannelIndex::edge_id_of / FlatAdjacency::edge_id — both
/// directions of an edge pooled under one id by construction, so no reverse
/// pairing is needed). `used_edges` lists the ids with load > 0 (any order,
/// no duplicates), making the summary O(used), not O(num_edge_ids). Equal
/// field-for-field to summarize_edge_load of the equivalent keyed map.
[[nodiscard]] EdgeLoadStats summarize_edge_id_load(
    const std::vector<std::uint64_t>& edge_load,
    const std::vector<std::uint32_t>& used_edges);

/// Congestion summary of a dense per-directed-channel traversal vector (the
/// event-driven traffic engine's accumulator — a flat array indexed by
/// ChannelIndex id, no hashing on the hot path). The two directions of each
/// undirected edge are pooled via ChannelIndex::reverse, matching the
/// per-EdgeKey pooling of the map overload exactly. `used_channels` lists
/// the channels with load > 0 (any order, no duplicates) so the summary
/// costs O(used), not O(num_channels).
[[nodiscard]] EdgeLoadStats summarize_channel_load(
    const ChannelIndex& index, const std::vector<std::uint64_t>& channel_load,
    const std::vector<std::uint32_t>& used_channels);

}  // namespace faultroute
