#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/channel_index.hpp"
#include "graph/topology.hpp"

namespace faultroute {

/// Congestion summary of per-edge traversal counts, shared by the
/// permutation batch router and the traffic engine.
struct EdgeLoadStats {
  std::uint64_t max_load = 0;    // traversals of the busiest edge
  std::uint64_t edges_used = 0;  // edges carrying >= 1 traversal
  std::uint64_t total = 0;       // sum of all traversals
  double mean_load = 0.0;        // total / edges_used (0 when unused)
};

[[nodiscard]] EdgeLoadStats summarize_edge_load(
    const std::unordered_map<EdgeKey, std::uint64_t>& load);

/// Congestion summary of a dense per-directed-channel traversal vector (the
/// event-driven traffic engine's accumulator — a flat array indexed by
/// ChannelIndex id, no hashing on the hot path). The two directions of each
/// undirected edge are pooled via ChannelIndex::reverse, matching the
/// per-EdgeKey pooling of the map overload exactly. `used_channels` lists
/// the channels with load > 0 (any order, no duplicates) so the summary
/// costs O(used), not O(num_channels).
[[nodiscard]] EdgeLoadStats summarize_channel_load(
    const ChannelIndex& index, const std::vector<std::uint64_t>& channel_load,
    const std::vector<std::uint32_t>& used_channels);

}  // namespace faultroute
