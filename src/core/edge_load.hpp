#pragma once

#include <cstdint>
#include <unordered_map>

#include "graph/topology.hpp"

namespace faultroute {

/// Congestion summary of a per-edge traversal-count map, shared by the
/// permutation batch router and the traffic engine.
struct EdgeLoadStats {
  std::uint64_t max_load = 0;    // traversals of the busiest edge
  std::uint64_t edges_used = 0;  // edges carrying >= 1 traversal
  std::uint64_t total = 0;       // sum of all traversals
  double mean_load = 0.0;        // total / edges_used (0 when unused)
};

[[nodiscard]] EdgeLoadStats summarize_edge_load(
    const std::unordered_map<EdgeKey, std::uint64_t>& load);

}  // namespace faultroute
