#include "core/permutation_routing.hpp"

#include <memory>
#include <unordered_map>

#include "core/edge_load.hpp"
#include "core/path.hpp"
#include "core/probe_context.hpp"
#include "percolation/cluster_analysis.hpp"
#include "random/rng.hpp"

namespace faultroute {

PermutationRoutingResult route_permutation(
    const Topology& graph, const EdgeSampler& sampler,
    const std::function<std::unique_ptr<Router>()>& make_router,
    const PermutationRoutingConfig& config) {
  PermutationRoutingResult result;
  Rng pair_rng(config.pair_seed);
  const FlatAdjacency* flat = resolve_adjacency(graph, config.adjacency);

  // Congestion accumulator: dense per-edge-id vector plus a first-touch list
  // over the snapshot, EdgeKey hash map on the implicit path. Same summary
  // either way (summarize_edge_id_load pools directions by construction).
  std::unordered_map<EdgeKey, std::uint64_t> edge_load;
  std::vector<std::uint64_t> edge_id_load;
  std::vector<std::uint32_t> used_edges;
  if (flat != nullptr) edge_id_load.resize(flat->num_edge_ids(), 0);

  // One router reused across the batch (as route_all does per worker), so
  // its pooled search state — dense marks on the flat path — amortizes
  // instead of being re-allocated per pair. Routers are pure functions of
  // (ctx, u, v); reuse cannot change any outcome.
  const auto router = make_router();

  for (std::uint64_t i = 0; i < config.pairs; ++i) {
    const VertexId u = uniform_below(pair_rng, graph.num_vertices());
    const VertexId v = uniform_below(pair_rng, graph.num_vertices());
    if (u == v) continue;
    const std::optional<bool> connected =
        open_connected(graph, sampler, u, v, config.connectivity_cap, config.adjacency);
    if (!connected.has_value() || !*connected) {
      ++result.skipped_disconnected;
      continue;
    }
    ++result.pairs;

    ProbeContext ctx(graph, sampler, u, router->required_mode(), config.probe_budget,
                     nullptr, flat);
    std::optional<Path> path;
    try {
      path = router->route(ctx, u, v);
    } catch (const ProbeBudgetExceeded&) {
      path.reset();
    }
    result.total_probes += ctx.distinct_probes();
    if (!path) {
      ++result.failed;
      continue;
    }
    ++result.routed;
    result.total_path_edges += path_length(*path);
    for (std::size_t step = 0; step + 1 < path->size(); ++step) {
      const VertexId a = (*path)[step];
      const VertexId b = (*path)[step + 1];
      if (flat != nullptr) {
        const int idx = edge_index_of(*flat, a, b);
        if (idx < 0) continue;  // verification elsewhere; defensive here
        const std::uint32_t id = flat->edge_id(a, idx);
        if (edge_id_load[id]++ == 0) used_edges.push_back(id);
      } else {
        const int idx = edge_index_of(graph, a, b);
        if (idx < 0) continue;
        ++edge_load[graph.edge_key(a, idx)];
      }
    }
  }

  const EdgeLoadStats congestion = flat != nullptr
                                       ? summarize_edge_id_load(edge_id_load, used_edges)
                                       : summarize_edge_load(edge_load);
  result.max_edge_load = congestion.max_load;
  result.mean_edge_load = congestion.mean_load;
  return result;
}

}  // namespace faultroute
