#include "core/permutation_routing.hpp"

#include <memory>
#include <unordered_map>

#include "core/edge_load.hpp"
#include "core/path.hpp"
#include "core/probe_context.hpp"
#include "percolation/cluster_analysis.hpp"
#include "random/rng.hpp"

namespace faultroute {

PermutationRoutingResult route_permutation(
    const Topology& graph, const EdgeSampler& sampler,
    const std::function<std::unique_ptr<Router>()>& make_router,
    const PermutationRoutingConfig& config) {
  PermutationRoutingResult result;
  Rng pair_rng(config.pair_seed);
  std::unordered_map<EdgeKey, std::uint64_t> edge_load;

  for (std::uint64_t i = 0; i < config.pairs; ++i) {
    const VertexId u = uniform_below(pair_rng, graph.num_vertices());
    const VertexId v = uniform_below(pair_rng, graph.num_vertices());
    if (u == v) continue;
    const std::optional<bool> connected =
        open_connected(graph, sampler, u, v, config.connectivity_cap);
    if (!connected.has_value() || !*connected) {
      ++result.skipped_disconnected;
      continue;
    }
    ++result.pairs;

    const auto router = make_router();
    ProbeContext ctx(graph, sampler, u, router->required_mode(), config.probe_budget);
    std::optional<Path> path;
    try {
      path = router->route(ctx, u, v);
    } catch (const ProbeBudgetExceeded&) {
      path.reset();
    }
    result.total_probes += ctx.distinct_probes();
    if (!path) {
      ++result.failed;
      continue;
    }
    ++result.routed;
    result.total_path_edges += path_length(*path);
    for (std::size_t step = 0; step + 1 < path->size(); ++step) {
      const int idx = edge_index_of(graph, (*path)[step], (*path)[step + 1]);
      if (idx < 0) continue;  // verification elsewhere; defensive here
      ++edge_load[graph.edge_key((*path)[step], idx)];
    }
  }

  const EdgeLoadStats congestion = summarize_edge_load(edge_load);
  result.max_edge_load = congestion.max_load;
  result.mean_edge_load = congestion.mean_load;
  return result;
}

}  // namespace faultroute
