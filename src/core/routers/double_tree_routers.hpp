#pragma once

#include "core/router.hpp"
#include "graph/double_tree.hpp"

namespace faultroute {

/// Local routing between the two roots of TT_n (Theorem 7's setting).
///
/// Depth-first search of the open subtree of tree 1 hanging from root x;
/// every time a leaf is reached, climb its unique tree-2 branch towards
/// root y, giving up at the first closed edge. A leaf's climb succeeds with
/// probability p^n, which is why any local strategy — this one included —
/// pays ~ p^{-n} probes. Complete for root-to-root routing.
class DoubleTreeLocalRouter : public Router {
 public:
  explicit DoubleTreeLocalRouter(const DoubleBinaryTree& tree) : tree_(tree) {}

  /// Requires u == tree.root1() and v == tree.root2() (or vice versa).
  std::optional<Path> route(ProbeContext& ctx, VertexId u, VertexId v) override;

  [[nodiscard]] std::string name() const override { return "double-tree-local"; }

 private:
  const DoubleBinaryTree& tree_;
};

/// The oracle router of Theorem 9: explore from root x depth-first, but
/// probe every tree-1 edge *together with its mirror edge in tree 2*, and
/// descend only along branches open in both trees. Equivalent to depth-first
/// search of a binary Galton-Watson tree with edge probability p^2, which is
/// supercritical for p > 1/sqrt(2); dead branches have finite expected size,
/// so the expected complexity is O(n).
class DoubleTreePairedOracleRouter : public Router {
 public:
  explicit DoubleTreePairedOracleRouter(const DoubleBinaryTree& tree) : tree_(tree) {}

  /// Requires u == tree.root1() and v == tree.root2() (or vice versa).
  std::optional<Path> route(ProbeContext& ctx, VertexId u, VertexId v) override;

  [[nodiscard]] std::string name() const override { return "double-tree-paired-oracle"; }
  [[nodiscard]] RoutingMode required_mode() const override { return RoutingMode::kOracle; }

 private:
  const DoubleBinaryTree& tree_;
};

}  // namespace faultroute
