#pragma once

#include <vector>

#include "core/router.hpp"
#include "core/routers/router_marks.hpp"

namespace faultroute {

/// The Section 3.2 remark, made concrete: "a greedy approach at the early
/// stages of the routing would reduce the exponent in the complexity".
///
/// Phase 1 (greedy): walk towards the target probing only improving edges,
/// as long as progress is easy. Phase 2 (repair): when greedy gets stuck at
/// distance <= `handoff` from the target (or mid-way), fall back to the
/// landmark/BFS algorithm *from the closest vertex reached so far*.
///
/// Complete: phase 2 alone is complete, and phase 1 only ever extends the
/// reached set. The ablation bench (bench_ablations) compares its complexity
/// exponent with pure landmark routing on the hypercube.
class HybridGreedyRouter : public Router {
 public:
  std::optional<Path> route(ProbeContext& ctx, VertexId u, VertexId v) override;

  [[nodiscard]] std::string name() const override { return "hybrid-greedy"; }

  [[nodiscard]] bool uses_distance_metric() const override { return true; }

 private:
  // Repair-phase search state, pooled across a worker's messages (dense on
  // the flat adjacency path, hash on the implicit path; bit-identical
  // results — see core/routers/router_marks.hpp).
  DenseMarks dense_pos_;
  DenseMarks dense_parent_;
  HashMarks hash_pos_;
  HashMarks hash_parent_;
  std::vector<VertexId> queue_;
};

}  // namespace faultroute
