#include "core/routers/hybrid_router.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <vector>

namespace faultroute {

std::optional<Path> HybridGreedyRouter::route(ProbeContext& ctx, VertexId u, VertexId v) {
  if (u == v) return Path{u};
  const Topology& graph = ctx.graph();

  // Phase 1: pure greedy descent while it keeps making progress.
  Path walk{u};
  VertexId x = u;
  while (x != v) {
    const std::uint64_t dx = graph.distance(x, v);
    // Probe improving edges in order of resulting distance.
    std::vector<std::pair<std::uint64_t, int>> improving;
    const int deg = graph.degree(x);
    for (int i = 0; i < deg; ++i) {
      const std::uint64_t dy = graph.distance(graph.neighbor(x, i), v);
      if (dy < dx) improving.emplace_back(dy, i);
    }
    std::sort(improving.begin(), improving.end());
    bool moved = false;
    for (const auto& [dy, i] : improving) {
      if (ctx.probe(x, i)) {
        x = graph.neighbor(x, i);
        walk.push_back(x);
        moved = true;
        break;
      }
    }
    if (!moved) break;  // stuck: hand off to the repair phase
  }
  if (x == v) return walk;

  // Phase 2: landmark/BFS repair from the stuck vertex. (Inlined rather
  // than delegated so the two phases share one ProbeContext and the greedy
  // prefix is reflected in the final path.)
  const std::vector<VertexId> landmarks = graph.shortest_path(x, v);
  if (landmarks.empty()) return std::nullopt;
  std::unordered_map<VertexId, std::size_t> landmark_pos;
  for (std::size_t j = 0; j < landmarks.size(); ++j) landmark_pos.emplace(landmarks[j], j);

  std::size_t pos = 0;
  while (pos + 1 < landmarks.size()) {
    const VertexId start = landmarks[pos];
    std::unordered_map<VertexId, VertexId> parent;
    std::queue<VertexId> queue;
    parent.emplace(start, start);
    queue.push(start);
    std::size_t found_pos = pos;
    VertexId found = start;
    while (!queue.empty() && found_pos == pos) {
      const VertexId y = queue.front();
      queue.pop();
      const int deg = graph.degree(y);
      for (int i = 0; i < deg; ++i) {
        const VertexId z = graph.neighbor(y, i);
        if (parent.contains(z)) continue;
        if (!ctx.probe(y, i)) continue;
        parent.emplace(z, y);
        const auto it = landmark_pos.find(z);
        if (it != landmark_pos.end() && it->second > pos) {
          found = z;
          found_pos = it->second;
          break;
        }
        queue.push(z);
      }
    }
    if (found_pos == pos) return std::nullopt;  // cluster exhausted: u !~ v
    Path segment;
    for (VertexId z = found;; z = parent.at(z)) {
      segment.push_back(z);
      if (z == start) break;
    }
    std::reverse(segment.begin(), segment.end());
    walk.insert(walk.end(), segment.begin() + 1, segment.end());
    pos = found_pos;
  }
  return simplify_walk(walk);
}

}  // namespace faultroute
