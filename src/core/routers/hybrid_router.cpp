#include "core/routers/hybrid_router.hpp"

#include <algorithm>
#include <vector>

#include "core/routers/landmark_walk.hpp"
#include "graph/distance_oracle.hpp"
#include "graph/flat_adjacency.hpp"

namespace faultroute {

std::optional<Path> HybridGreedyRouter::route(ProbeContext& ctx, VertexId u, VertexId v) {
  if (u == v) return Path{u};
  const Topology& graph = ctx.graph();
  const AdjacencyView adj(graph, ctx.flat_adjacency());

  // Phase 1: pure greedy descent while it keeps making progress.
  const std::uint32_t* col = ctx.target_distances(v);
  Path walk{u};
  VertexId x = u;
  while (x != v) {
    const std::uint64_t dx = metric_distance(graph, col, x, v);
    // Probe improving edges in order of resulting distance.
    std::vector<std::pair<std::uint64_t, int>> improving;
    const int deg = adj.degree(x);
    for (int i = 0; i < deg; ++i) {
      const std::uint64_t dy = metric_distance(graph, col, adj.neighbor(x, i), v);
      if (dy < dx) improving.emplace_back(dy, i);  // analyze:allow-hot-alloc(per-step candidate ranking bounded by degree)
    }
    std::sort(improving.begin(), improving.end());
    bool moved = false;
    for (const auto& [dy, i] : improving) {
      if (ctx.probe(x, i)) {
        x = adj.neighbor(x, i);
        walk.push_back(x);  // analyze:allow-hot-alloc(walk materialization, one vertex per accepted move)
        moved = true;
        break;
      }
    }
    if (!moved) break;  // stuck: hand off to the repair phase
  }
  if (x == v) return walk;

  // Phase 2: landmark/BFS repair from the stuck vertex, via the shared
  // landmark walk (core/routers/landmark_walk.hpp) so the two phases share
  // one ProbeContext and the greedy prefix stays on the final path.
  const bool repaired =
      ctx.flat_adjacency() != nullptr
          ? detail::landmark_walk(ctx, adj, x, v, walk, dense_pos_, dense_parent_, queue_)
          : detail::landmark_walk(ctx, adj, x, v, walk, hash_pos_, hash_parent_, queue_);
  if (!repaired) return std::nullopt;
  return simplify_walk(walk);
}

}  // namespace faultroute
