#pragma once

#include <vector>

#include "core/router.hpp"
#include "core/routers/router_marks.hpp"

namespace faultroute {

/// The paper's upper-bound algorithm for the hypercube (Theorem 3(ii)) and
/// the mesh (Theorem 4), stated generically:
///
///   1. Fix u = u_0, u_1, ..., u_m = v, a shortest path in the *fault-free*
///      topology (the landmarks).
///   2. From the furthest landmark reached so far, grow a BFS over open
///      (probed) edges until some landmark u_j with j > i is reached.
///   3. Repeat until v is reached.
///
/// Above the respective routing thresholds, successive landmarks in the giant
/// cluster are within O(1) percolation distance (mesh: Antal-Pisztora;
/// hypercube: "good vertex" pairs at distance <= 3 have percolation distance
/// <= l(alpha)), so each BFS is cheap and the total cost is O(m) for the
/// mesh and poly(n) for the hypercube.
///
/// Complete: conditioned on {u ~ v} the BFS can only exhaust the whole open
/// cluster of u, which contains v.
class LandmarkRouter : public Router {
 public:
  std::optional<Path> route(ProbeContext& ctx, VertexId u, VertexId v) override;

  [[nodiscard]] std::string name() const override { return "landmark"; }

 private:
  // Search state pooled across the messages a worker routes (dense marks on
  // the flat adjacency path, hash marks on the implicit path; bit-identical
  // results — see core/routers/router_marks.hpp). `pos` maps landmark
  // vertex -> position along the fault-free shortest path; `parent` is the
  // per-segment BFS tree.
  DenseMarks dense_pos_;
  DenseMarks dense_parent_;
  HashMarks hash_pos_;
  HashMarks hash_parent_;
  std::vector<VertexId> queue_;
};

}  // namespace faultroute
