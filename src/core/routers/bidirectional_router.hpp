#pragma once

#include <vector>

#include "core/router.hpp"
#include "core/routers/router_marks.hpp"

namespace faultroute {

/// Bidirectional BFS: grows open-edge BFS balls around *both* endpoints,
/// always expanding the smaller frontier, until they meet.
///
/// This is an *oracle* router — probing edges around v violates locality —
/// and is the natural candidate for the paper's Section 6 question of
/// whether oracle routing on the hypercube stays exponential for
/// 1/n < p < n^{-1/2} (experiment E11). Complete.
class BidirectionalBfsRouter : public Router {
 public:
  std::optional<Path> route(ProbeContext& ctx, VertexId u, VertexId v) override;

  [[nodiscard]] std::string name() const override { return "bidirectional-bfs"; }
  [[nodiscard]] RoutingMode required_mode() const override { return RoutingMode::kOracle; }

 private:
  // Per-side search state, pooled across a worker's messages (dense on the
  // flat adjacency path, hash on the implicit path; bit-identical results —
  // see core/routers/router_marks.hpp).
  DenseMarks dense_parent_u_;
  DenseMarks dense_parent_v_;
  HashMarks hash_parent_u_;
  HashMarks hash_parent_v_;
  std::vector<VertexId> queue_u_;
  std::vector<VertexId> queue_v_;
};

}  // namespace faultroute
