#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "graph/topology.hpp"

namespace faultroute {

/// Interchangeable visited/parent mark backends for the search routers'
/// BFS state, mirroring the dense/hash split of ProbeContext's probe memo:
/// the routers template their search loops over one of these, so the flat
/// adjacency path runs on vertex-indexed epoch-stamped arrays while the
/// implicit path keeps self-contained hash maps (the only option when the
/// vertex space is too large to index). Marks never influence traversal
/// order — only membership and parent recall — so the two backends produce
/// bit-identical routes, probes, and counters.

/// Hash-backed marks: per-search unordered_map, works on any implicit graph.
class HashMarks {
 public:
  /// Empties the marks for a fresh search (the vertex count is ignored;
  /// it exists so search loops can be generic over both backends). Bucket
  /// capacity persists across searches, like the dense arrays.
  void begin(std::uint64_t /*num_vertices*/) { map_.clear(); }

  [[nodiscard]] bool contains(VertexId v) const { return map_.contains(v); }
  [[nodiscard]] VertexId at(VertexId v) const { return map_.at(v); }
  /// Single-probe contains + at.
  [[nodiscard]] bool lookup(VertexId v, VertexId& out) const {
    const auto it = map_.find(v);
    if (it == map_.end()) return false;
    out = it->second;
    return true;
  }
  /// Inserts v -> value; returns false (and leaves the mark) if v is marked.
  // analyze:allow-hot-alloc(HashMarks is the hash A/B fallback; DenseMarks pools instead)
  bool emplace(VertexId v, VertexId value) { return map_.emplace(v, value).second; }

 private:
  // lint:allow-hash(HashMarks IS the implicit-adjacency A/B fallback path)
  std::unordered_map<VertexId, VertexId> map_;
};

/// Dense marks: vertex-indexed arrays whose slots are live only when their
/// stamp equals the current epoch, so clearing between searches is one
/// integer increment and steady-state routing through a pooled instance
/// allocates nothing (the ProbeArena idiom). Requires a materializable
/// vertex space — exactly what a flat adjacency snapshot guarantees. Owned
/// by the router object, which the traffic engine reuses across a worker
/// thread's whole batch.
class DenseMarks {
 public:
  /// Sizes for `n` vertices (grow-only) and starts a fresh search epoch; on
  /// the (once per ~4 billion searches) wrap, stamps are zeroed so stale
  /// marks can never read as live.
  void begin(std::uint64_t n) {
    if (stamp_.size() < n) {
      stamp_.resize(n, 0);  // analyze:allow-hot-alloc(grow-only pooled marks warm-up)
      value_.resize(n, 0);  // analyze:allow-hot-alloc(same grow-only warm-up)
    }
    if (epoch_ == std::numeric_limits<std::uint32_t>::max()) {
      std::fill(stamp_.begin(), stamp_.end(), 0u);
      epoch_ = 0;
    }
    ++epoch_;
  }

  [[nodiscard]] bool contains(VertexId v) const { return stamp_[v] == epoch_; }
  [[nodiscard]] VertexId at(VertexId v) const { return value_[v]; }
  [[nodiscard]] bool lookup(VertexId v, VertexId& out) const {
    if (stamp_[v] != epoch_) return false;
    out = value_[v];
    return true;
  }
  bool emplace(VertexId v, VertexId value) {
    if (stamp_[v] == epoch_) return false;
    stamp_[v] = epoch_;
    value_[v] = value;
    return true;
  }

 private:
  std::vector<std::uint32_t> stamp_;
  std::vector<VertexId> value_;
  std::uint32_t epoch_ = 0;
};

}  // namespace faultroute
