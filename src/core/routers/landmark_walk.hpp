#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/path.hpp"
#include "core/probe_context.hpp"
#include "graph/flat_adjacency.hpp"

// analyze:allow-file-hot-alloc(landmark walk: the pooled queue retains capacity across segments; segment and walk splices materialize the result path)
namespace faultroute::detail {

/// The landmark walk of Theorems 3(ii)/4, shared by LandmarkRouter (the
/// whole algorithm) and HybridGreedyRouter (its repair phase), templated
/// over the marks backend (core/routers/router_marks.hpp):
///
///   1. fix the fault-free shortest path from .. v as landmarks;
///   2. from the furthest landmark reached, BFS over open probed edges
///      until a strictly later landmark appears;
///   3. repeat until v.
///
/// Extends `walk` in place from its last vertex (`from`); returns false if
/// the base topology is disconnected or the open cluster is exhausted
/// (u !~ v), leaving `walk` in an unspecified partial state. `pos_of`
/// records each landmark's position along the base path; `parent` is
/// re-begun per BFS segment; `queue` is a pooled vector with a head cursor
/// (identical FIFO order to a std::queue).
template <typename Marks>
bool landmark_walk(ProbeContext& ctx, const AdjacencyView& adj, VertexId from, VertexId v,
                   Path& walk, Marks& pos_of, Marks& parent, std::vector<VertexId>& queue) {
  const Topology& graph = adj.graph();
  const std::vector<VertexId> landmarks = graph.shortest_path(from, v);
  if (landmarks.empty()) return false;  // disconnected base topology

  // Position of each landmark along the base path (shortest-path vertices
  // are distinct).
  const std::uint64_t n = graph.num_vertices();
  pos_of.begin(n);
  for (std::size_t j = 0; j < landmarks.size(); ++j) {
    pos_of.emplace(landmarks[j], static_cast<VertexId>(j));
  }

  std::size_t pos = 0;
  while (pos + 1 < landmarks.size()) {
    // BFS over open probed edges from landmarks[pos] until a strictly later
    // landmark appears.
    const VertexId start = landmarks[pos];
    parent.begin(n);
    parent.emplace(start, start);
    queue.clear();
    queue.push_back(start);
    std::size_t head = 0;
    VertexId found = start;
    std::size_t found_pos = pos;
    while (head < queue.size() && found_pos == pos) {
      const VertexId x = queue[head++];
      ctx.note_expansion();
      const int deg = adj.degree(x);
      for (int i = 0; i < deg; ++i) {
        const VertexId y = adj.neighbor(x, i);
        if (parent.contains(y)) continue;
        if (!ctx.probe(x, i)) continue;
        parent.emplace(y, x);
        VertexId y_pos;
        if (pos_of.lookup(y, y_pos) && static_cast<std::size_t>(y_pos) > pos) {
          found = y;
          found_pos = static_cast<std::size_t>(y_pos);
          break;
        }
        queue.push_back(y);
      }
    }
    if (found_pos == pos) return false;  // exhausted the open cluster

    // Append the BFS segment start -> found (skipping `start`, already on
    // the walk).
    Path segment;
    for (VertexId x = found;; x = parent.at(x)) {
      segment.push_back(x);
      if (x == start) break;
    }
    std::reverse(segment.begin(), segment.end());
    walk.insert(walk.end(), segment.begin() + 1, segment.end());
    pos = found_pos;
  }
  return true;
}

}  // namespace faultroute::detail
