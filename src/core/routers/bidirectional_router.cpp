#include "core/routers/bidirectional_router.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>

namespace faultroute {

namespace {

struct Side {
  std::unordered_map<VertexId, VertexId> parent;
  std::queue<VertexId> frontier;
};

Path chain_to_root(const Side& side, VertexId from) {
  Path path;
  for (VertexId x = from;; x = side.parent.at(x)) {
    path.push_back(x);
    if (side.parent.at(x) == x) break;
  }
  return path;  // from .. root
}

}  // namespace

std::optional<Path> BidirectionalBfsRouter::route(ProbeContext& ctx, VertexId u, VertexId v) {
  if (u == v) return Path{u};
  const Topology& graph = ctx.graph();
  Side from_u;
  Side from_v;
  from_u.parent.emplace(u, u);
  from_u.frontier.push(u);
  from_v.parent.emplace(v, v);
  from_v.frontier.push(v);

  const auto join = [&](VertexId meeting, VertexId via_u_side) {
    // Path = u .. via_u_side, meeting .. v. `meeting` is already in from_v.
    Path left = chain_to_root(from_u, via_u_side);
    std::reverse(left.begin(), left.end());  // u .. via_u_side
    const Path right = chain_to_root(from_v, meeting);  // meeting .. v
    left.insert(left.end(), right.begin(), right.end());
    return simplify_walk(left);
  };

  while (!from_u.frontier.empty() || !from_v.frontier.empty()) {
    // Expand the side with the smaller live frontier (ties: u side).
    const bool expand_u =
        !from_u.frontier.empty() &&
        (from_v.frontier.empty() || from_u.frontier.size() <= from_v.frontier.size());
    Side& mine = expand_u ? from_u : from_v;
    Side& other = expand_u ? from_v : from_u;
    const VertexId x = mine.frontier.front();
    mine.frontier.pop();
    const int deg = graph.degree(x);
    for (int i = 0; i < deg; ++i) {
      const VertexId y = graph.neighbor(x, i);
      if (mine.parent.contains(y)) continue;
      if (!ctx.probe(x, i)) continue;
      if (other.parent.contains(y)) {
        // The two balls touch along edge (x, y).
        if (expand_u) return join(y, x);
        return join(x, y);
      }
      mine.parent.emplace(y, x);
      mine.frontier.push(y);
    }
  }
  return std::nullopt;
}

}  // namespace faultroute
