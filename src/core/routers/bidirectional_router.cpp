#include "core/routers/bidirectional_router.hpp"

#include <algorithm>

#include "graph/flat_adjacency.hpp"

// analyze:allow-file-hot-alloc(per-message bidirectional BFS is the --frontier permsg differential baseline for the batched block executor)
namespace faultroute {

namespace {

/// One BFS ball, templated over the marks backend. The frontier is a pooled
/// vector with a head cursor; its live size (size() - head) matches the
/// std::queue-based original exactly.
template <typename Marks>
struct Side {
  Marks* parent;
  std::vector<VertexId>* frontier;
  std::size_t head = 0;

  [[nodiscard]] std::size_t live() const { return frontier->size() - head; }
};

template <typename Marks>
Path chain_to_root(const Side<Marks>& side, VertexId from) {
  Path path;
  for (VertexId x = from;; x = side.parent->at(x)) {
    path.push_back(x);
    if (side.parent->at(x) == x) break;
  }
  return path;  // from .. root
}

template <typename Marks>
std::optional<Path> bidirectional_search(ProbeContext& ctx, const AdjacencyView& adj,
                                         VertexId u, VertexId v, Side<Marks> from_u,
                                         Side<Marks> from_v) {
  const std::uint64_t n = adj.graph().num_vertices();
  from_u.parent->begin(n);
  from_v.parent->begin(n);
  from_u.frontier->clear();
  from_v.frontier->clear();
  from_u.parent->emplace(u, u);
  from_u.frontier->push_back(u);
  from_v.parent->emplace(v, v);
  from_v.frontier->push_back(v);

  const auto join = [&](VertexId meeting, VertexId via_u_side) {
    // Path = u .. via_u_side, meeting .. v. `meeting` is already in from_v.
    Path left = chain_to_root(from_u, via_u_side);
    std::reverse(left.begin(), left.end());  // u .. via_u_side
    const Path right = chain_to_root(from_v, meeting);  // meeting .. v
    left.insert(left.end(), right.begin(), right.end());
    return simplify_walk(left);
  };

  while (from_u.live() > 0 || from_v.live() > 0) {
    // Expand the side with the smaller live frontier (ties: u side).
    const bool expand_u =
        from_u.live() > 0 && (from_v.live() == 0 || from_u.live() <= from_v.live());
    Side<Marks>& mine = expand_u ? from_u : from_v;
    Side<Marks>& other = expand_u ? from_v : from_u;
    const VertexId x = (*mine.frontier)[mine.head++];
    ctx.note_expansion();
    const int deg = adj.degree(x);
    for (int i = 0; i < deg; ++i) {
      const VertexId y = adj.neighbor(x, i);
      if (mine.parent->contains(y)) continue;
      if (!ctx.probe(x, i)) continue;
      if (other.parent->contains(y)) {
        // The two balls touch along edge (x, y).
        if (expand_u) return join(y, x);
        return join(x, y);
      }
      mine.parent->emplace(y, x);
      mine.frontier->push_back(y);
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<Path> BidirectionalBfsRouter::route(ProbeContext& ctx, VertexId u, VertexId v) {
  if (u == v) return Path{u};
  const AdjacencyView adj(ctx.graph(), ctx.flat_adjacency());
  if (ctx.flat_adjacency() != nullptr) {
    return bidirectional_search(ctx, adj, u, v,
                                Side<DenseMarks>{&dense_parent_u_, &queue_u_},
                                Side<DenseMarks>{&dense_parent_v_, &queue_v_});
  }
  return bidirectional_search(ctx, adj, u, v, Side<HashMarks>{&hash_parent_u_, &queue_u_},
                              Side<HashMarks>{&hash_parent_v_, &queue_v_});
}

}  // namespace faultroute
