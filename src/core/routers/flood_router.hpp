#pragma once

#include <vector>

#include "core/router.hpp"
#include "core/routers/router_marks.hpp"

namespace faultroute {

/// Local breadth-first flooding: probe every edge incident to every reached
/// vertex until the target is found. This is the paper's trivial upper bound
/// ("tantamount to probing the entire graph") and the baseline every smarter
/// router is compared against. Complete: returns nullopt only when u and v
/// are genuinely disconnected.
///
/// With `probe_target_first` set, each dequeued vertex first probes its edge
/// to the target when one exists — the natural optimisation for G_{n,p}
/// (Theorem 10's setting), where it saves a constant factor but provably not
/// the Omega(n^2) order.
class FloodRouter : public Router {
 public:
  explicit FloodRouter(bool probe_target_first = false)
      : probe_target_first_(probe_target_first) {}

  std::optional<Path> route(ProbeContext& ctx, VertexId u, VertexId v) override;

  [[nodiscard]] std::string name() const override {
    return probe_target_first_ ? "flood(target-first)" : "flood";
  }

  [[nodiscard]] bool probe_target_first() const { return probe_target_first_; }

 private:
  bool probe_target_first_;
  // Search state pooled across the messages a worker routes: dense
  // vertex-indexed marks on the flat adjacency path, hash marks on the
  // implicit path (see core/routers/router_marks.hpp — marks never affect
  // traversal order, so results are bit-identical across backends).
  DenseMarks dense_parent_;
  HashMarks hash_parent_;
  std::vector<VertexId> queue_;
};

}  // namespace faultroute
