#include "core/routers/gnp_routers.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <vector>

#include "graph/complete.hpp"

// analyze:allow-file-hot-alloc(complete-graph cross-scan routers size per-search state once per message; no batched executor exists for this family)
namespace faultroute {

namespace {

enum class Membership : std::uint8_t { kUnreached = 0, kInU = 1, kInV = 2 };

/// Lazy enumeration state for the cross pairs (U x V): each U member holds a
/// cursor over the growing V list. Stalled cursors (cursor == |V| at the
/// time of inspection) are parked and revived when V grows.
struct CrossScan {
  std::vector<std::uint32_t> cursor;       // per U-index: next V-index to probe
  std::deque<std::uint32_t> active;        // U-indices with cursor < |V|
  std::vector<std::uint32_t> stalled;      // U-indices waiting for V to grow

  void add_u(std::uint32_t u_index) {
    cursor.push_back(0);
    active.push_back(u_index);
  }
  void revive_all() {
    for (const std::uint32_t i : stalled) active.push_back(i);
    stalled.clear();
  }
};

}  // namespace

std::optional<Path> GnpOracleRouter::route(ProbeContext& ctx, VertexId u, VertexId v) {
  if (u == v) return Path{u};
  const auto* clique = dynamic_cast<const CompleteGraph*>(&ctx.graph());
  if (clique == nullptr) {
    // analyze:allow-throw-safety(topology precondition guard; surfaced via first_error)
    throw std::invalid_argument("GnpOracleRouter requires a CompleteGraph topology");
  }
  const std::uint64_t n = clique->num_vertices();

  std::vector<Membership> status(n, Membership::kUnreached);
  std::vector<VertexId> parent(n, 0);
  std::vector<VertexId> members_u{u};
  std::vector<VertexId> members_v{v};
  status[u] = Membership::kInU;
  status[v] = Membership::kInV;
  parent[u] = u;
  parent[v] = v;

  CrossScan cross;
  cross.add_u(0);

  // Per-(U u V)-member growth cursor: next vertex id to consider probing.
  std::vector<std::uint64_t> grow_cursor(n, 0);
  std::size_t grow_next_u = 0;  // round-robin position within members_u
  std::size_t grow_next_v = 0;

  const auto chain = [&parent](VertexId from) {
    Path path;
    for (VertexId x = from;; x = parent[x]) {
      path.push_back(x);
      if (parent[x] == x) break;
    }
    return path;  // from .. root
  };
  const auto build_path = [&](VertexId a, VertexId b) {
    // a in U, b in V, open edge a-b.
    Path left = chain(a);  // a .. u
    std::reverse(left.begin(), left.end());
    const Path right = chain(b);  // b .. v
    Path full = std::move(left);
    full.insert(full.end(), right.begin(), right.end());
    return full;
  };

  // One growth attempt from `members[pos]`: probe its next unreached
  // candidate, if any. Returns true if a probe was made.
  const auto try_grow = [&](std::vector<VertexId>& members, std::size_t& pos,
                            Membership tag) -> bool {
    const std::size_t count = members.size();
    for (std::size_t scanned = 0; scanned < count; ++scanned) {
      const VertexId s = members[(pos + scanned) % count];
      std::uint64_t& cur = grow_cursor[s];
      while (cur < n && status[cur] != Membership::kUnreached) ++cur;
      if (cur >= n) continue;
      const VertexId x = cur++;
      pos = (pos + scanned) % count;  // stay with this member next round
      if (ctx.probe(s, clique->index_of(s, x))) {
        status[x] = tag;
        parent[x] = s;
        if (tag == Membership::kInU) {
          members_u.push_back(x);
          cross.add_u(static_cast<std::uint32_t>(members_u.size() - 1));
        } else {
          members_v.push_back(x);
          cross.revive_all();  // V grew: stalled U cursors have new pairs
        }
      }
      return true;
    }
    return false;
  };

  while (true) {
    // (1) Probe an unqueried U x V pair if one exists.
    bool probed_cross = false;
    while (!cross.active.empty()) {
      const std::uint32_t ui = cross.active.front();
      if (cross.cursor[ui] >= members_v.size()) {
        cross.active.pop_front();
        cross.stalled.push_back(ui);
        continue;
      }
      const VertexId a = members_u[ui];
      const VertexId b = members_v[cross.cursor[ui]++];
      if (cross.cursor[ui] >= members_v.size()) {
        cross.active.pop_front();
        cross.stalled.push_back(ui);
      }
      if (ctx.probe(a, clique->index_of(a, b))) return build_path(a, b);
      probed_cross = true;
      break;
    }
    if (probed_cross) continue;

    // (2) Grow the smaller side (ties: U).
    const bool u_smaller = members_u.size() <= members_v.size();
    if (u_smaller) {
      if (try_grow(members_u, grow_next_u, Membership::kInU)) continue;
      if (try_grow(members_v, grow_next_v, Membership::kInV)) continue;
    } else {
      if (try_grow(members_v, grow_next_v, Membership::kInV)) continue;
      if (try_grow(members_u, grow_next_u, Membership::kInU)) continue;
    }

    // (3) Nothing left to probe: u and v are disconnected.
    return std::nullopt;
  }
}

}  // namespace faultroute
