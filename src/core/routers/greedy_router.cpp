#include "core/routers/greedy_router.hpp"

#include <algorithm>
#include <queue>
#include <utility>
#include <vector>

#include "graph/distance_oracle.hpp"
#include "graph/flat_adjacency.hpp"

// analyze:allow-file-hot-alloc(per-message best-first search: candidate ranking is bounded by degree, the metric baseline the distance oracle accelerates)
namespace faultroute {

namespace {

/// Indices of v's incident edges sorted by the fault-free distance from the
/// resulting neighbor to the target (ties broken by index for determinism).
/// Neighbor scans go through the adjacency view (CSR row when a snapshot is
/// up); the metric resolves through `col` (a cached oracle column, or
/// nullptr for graph.distance — identical values either way).
std::vector<int> edges_by_target_distance(const AdjacencyView& adj, const std::uint32_t* col,
                                          VertexId x, VertexId v) {
  const Topology& graph = adj.graph();
  const int deg = adj.degree(x);
  std::vector<std::pair<std::uint64_t, int>> ranked;
  ranked.reserve(static_cast<std::size_t>(deg));
  for (int i = 0; i < deg; ++i) {
    ranked.emplace_back(metric_distance(graph, col, adj.neighbor(x, i), v), i);
  }
  std::sort(ranked.begin(), ranked.end());
  std::vector<int> order;
  order.reserve(ranked.size());
  for (const auto& [dist, i] : ranked) order.push_back(i);
  return order;
}

/// The best-first search loop, templated over the marks backend (dense
/// vertex-indexed arrays on the flat adjacency path, hash maps on the
/// implicit path; marks never affect expansion order).
template <typename Marks>
std::optional<Path> best_first_search(ProbeContext& ctx, const AdjacencyView& adj,
                                      const std::uint32_t* col, VertexId u, VertexId v,
                                      Marks& parent, Marks& expanded) {
  const Topology& graph = adj.graph();
  const std::uint64_t n = graph.num_vertices();
  parent.begin(n);
  expanded.begin(n);
  using Entry = std::pair<std::uint64_t, VertexId>;  // (distance-to-target, vertex)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> frontier;
  parent.emplace(u, u);
  frontier.emplace(metric_distance(graph, col, u, v), u);
  while (!frontier.empty()) {
    const auto [dist, x] = frontier.top();
    frontier.pop();
    if (!expanded.emplace(x, x)) continue;  // already expanded
    ctx.note_expansion();
    for (const int i : edges_by_target_distance(adj, col, x, v)) {
      const VertexId y = adj.neighbor(x, i);
      if (parent.contains(y)) continue;
      if (!ctx.probe(x, i)) continue;
      parent.emplace(y, x);
      if (y == v) {
        Path path;
        for (VertexId z = v;; z = parent.at(z)) {
          path.push_back(z);
          if (z == u) break;
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.emplace(metric_distance(graph, col, y, v), y);
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<Path> GreedyDescentRouter::route(ProbeContext& ctx, VertexId u, VertexId v) {
  const Topology& graph = ctx.graph();
  const AdjacencyView adj(graph, ctx.flat_adjacency());
  const std::uint32_t* col = ctx.target_distances(v);
  Path path{u};
  VertexId x = u;
  while (x != v) {
    ctx.note_expansion();  // each visited vertex is this router's "frontier pop"
    const std::uint64_t dx = metric_distance(graph, col, x, v);
    bool moved = false;
    for (const int i : edges_by_target_distance(adj, col, x, v)) {
      const VertexId y = adj.neighbor(x, i);
      if (metric_distance(graph, col, y, v) >= dx) break;  // improving edges exhausted
      if (ctx.probe(x, i)) {
        path.push_back(y);
        x = y;
        moved = true;
        break;
      }
    }
    if (!moved) return std::nullopt;  // stuck: pure greedy gives up
  }
  return path;
}

std::optional<Path> BestFirstRouter::route(ProbeContext& ctx, VertexId u, VertexId v) {
  if (u == v) return Path{u};
  const AdjacencyView adj(ctx.graph(), ctx.flat_adjacency());
  const std::uint32_t* col = ctx.target_distances(v);
  if (ctx.flat_adjacency() != nullptr) {
    return best_first_search(ctx, adj, col, u, v, dense_parent_, dense_expanded_);
  }
  return best_first_search(ctx, adj, col, u, v, hash_parent_, hash_expanded_);
}

}  // namespace faultroute
