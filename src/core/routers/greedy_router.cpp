#include "core/routers/greedy_router.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <vector>

namespace faultroute {

namespace {

/// Indices of v's incident edges sorted by the fault-free distance from the
/// resulting neighbor to the target (ties broken by index for determinism).
std::vector<int> edges_by_target_distance(const Topology& graph, VertexId x, VertexId v) {
  const int deg = graph.degree(x);
  std::vector<std::pair<std::uint64_t, int>> ranked;
  ranked.reserve(static_cast<std::size_t>(deg));
  for (int i = 0; i < deg; ++i) ranked.emplace_back(graph.distance(graph.neighbor(x, i), v), i);
  std::sort(ranked.begin(), ranked.end());
  std::vector<int> order;
  order.reserve(ranked.size());
  for (const auto& [dist, i] : ranked) order.push_back(i);
  return order;
}

}  // namespace

std::optional<Path> GreedyDescentRouter::route(ProbeContext& ctx, VertexId u, VertexId v) {
  const Topology& graph = ctx.graph();
  Path path{u};
  VertexId x = u;
  while (x != v) {
    const std::uint64_t dx = graph.distance(x, v);
    bool moved = false;
    for (const int i : edges_by_target_distance(graph, x, v)) {
      const VertexId y = graph.neighbor(x, i);
      if (graph.distance(y, v) >= dx) break;  // improving edges exhausted
      if (ctx.probe(x, i)) {
        path.push_back(y);
        x = y;
        moved = true;
        break;
      }
    }
    if (!moved) return std::nullopt;  // stuck: pure greedy gives up
  }
  return path;
}

std::optional<Path> BestFirstRouter::route(ProbeContext& ctx, VertexId u, VertexId v) {
  if (u == v) return Path{u};
  const Topology& graph = ctx.graph();
  using Entry = std::pair<std::uint64_t, VertexId>;  // (distance-to-target, vertex)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> frontier;
  std::unordered_map<VertexId, VertexId> parent;
  std::unordered_map<VertexId, bool> expanded;
  parent.emplace(u, u);
  frontier.emplace(graph.distance(u, v), u);
  while (!frontier.empty()) {
    const auto [dist, x] = frontier.top();
    frontier.pop();
    if (expanded[x]) continue;
    expanded[x] = true;
    for (const int i : edges_by_target_distance(graph, x, v)) {
      const VertexId y = graph.neighbor(x, i);
      if (parent.contains(y)) continue;
      if (!ctx.probe(x, i)) continue;
      parent.emplace(y, x);
      if (y == v) {
        Path path;
        for (VertexId z = v;; z = parent.at(z)) {
          path.push_back(z);
          if (z == u) break;
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.emplace(graph.distance(y, v), y);
    }
  }
  return std::nullopt;
}

}  // namespace faultroute
