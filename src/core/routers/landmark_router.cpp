#include "core/routers/landmark_router.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>

namespace faultroute {

std::optional<Path> LandmarkRouter::route(ProbeContext& ctx, VertexId u, VertexId v) {
  if (u == v) return Path{u};
  const Topology& graph = ctx.graph();
  const std::vector<VertexId> landmarks = graph.shortest_path(u, v);
  if (landmarks.empty()) return std::nullopt;  // disconnected base topology

  // Position of each landmark along the base path (shortest-path vertices
  // are distinct).
  std::unordered_map<VertexId, std::size_t> landmark_pos;
  landmark_pos.reserve(landmarks.size());
  for (std::size_t j = 0; j < landmarks.size(); ++j) landmark_pos.emplace(landmarks[j], j);

  Path full_path{u};
  std::size_t pos = 0;
  while (pos + 1 < landmarks.size()) {
    // BFS over open probed edges from landmarks[pos] until a strictly later
    // landmark appears.
    const VertexId start = landmarks[pos];
    std::unordered_map<VertexId, VertexId> parent;
    std::queue<VertexId> queue;
    parent.emplace(start, start);
    queue.push(start);
    VertexId found = start;
    std::size_t found_pos = pos;
    while (!queue.empty() && found_pos == pos) {
      const VertexId x = queue.front();
      queue.pop();
      const int deg = graph.degree(x);
      for (int i = 0; i < deg; ++i) {
        const VertexId y = graph.neighbor(x, i);
        if (parent.contains(y)) continue;
        if (!ctx.probe(x, i)) continue;
        parent.emplace(y, x);
        const auto it = landmark_pos.find(y);
        if (it != landmark_pos.end() && it->second > pos) {
          found = y;
          found_pos = it->second;
          break;
        }
        queue.push(y);
      }
    }
    if (found_pos == pos) return std::nullopt;  // exhausted u's open cluster

    // Append the BFS segment start -> found (skipping `start`, already on
    // the path).
    Path segment;
    for (VertexId x = found;; x = parent.at(x)) {
      segment.push_back(x);
      if (x == start) break;
    }
    std::reverse(segment.begin(), segment.end());
    full_path.insert(full_path.end(), segment.begin() + 1, segment.end());
    pos = found_pos;
  }
  return simplify_walk(full_path);
}

}  // namespace faultroute
