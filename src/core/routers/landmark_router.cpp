#include "core/routers/landmark_router.hpp"

#include "core/routers/landmark_walk.hpp"

namespace faultroute {

std::optional<Path> LandmarkRouter::route(ProbeContext& ctx, VertexId u, VertexId v) {
  if (u == v) return Path{u};
  const AdjacencyView adj(ctx.graph(), ctx.flat_adjacency());
  Path walk{u};
  const bool reached =
      ctx.flat_adjacency() != nullptr
          ? detail::landmark_walk(ctx, adj, u, v, walk, dense_pos_, dense_parent_, queue_)
          : detail::landmark_walk(ctx, adj, u, v, walk, hash_pos_, hash_parent_, queue_);
  if (!reached) return std::nullopt;
  return simplify_walk(walk);
}

}  // namespace faultroute
