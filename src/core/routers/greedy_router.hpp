#pragma once

#include "core/router.hpp"
#include "core/routers/router_marks.hpp"

namespace faultroute {

/// Pure greedy descent (the "natural approach" remarked on in Section 3.2):
/// from the current vertex, probe only edges that strictly reduce the
/// fault-free distance to the target, in order of resulting distance, and
/// move along the first open one. *Incomplete*: fails as soon as it gets
/// stuck, so its success probability is itself a measurement (the remark
/// predicts it works "most of the way" but dies near the target).
class GreedyDescentRouter : public Router {
 public:
  std::optional<Path> route(ProbeContext& ctx, VertexId u, VertexId v) override;

  [[nodiscard]] std::string name() const override { return "greedy-descent"; }

  [[nodiscard]] bool uses_distance_metric() const override { return true; }
};

/// Best-first (greedy with backtracking): a complete local router that
/// always expands the reached vertex closest to the target in the fault-free
/// metric, probing its edges in order of resulting distance. On a fault-free
/// graph it degenerates to greedy routing along shortest paths; under faults
/// it backtracks instead of failing.
class BestFirstRouter : public Router {
 public:
  std::optional<Path> route(ProbeContext& ctx, VertexId u, VertexId v) override;

  [[nodiscard]] std::string name() const override { return "best-first"; }

  [[nodiscard]] bool uses_distance_metric() const override { return true; }

 private:
  // Search state pooled across a worker's messages (dense on the flat
  // adjacency path, hash on the implicit path; bit-identical results — see
  // core/routers/router_marks.hpp).
  DenseMarks dense_parent_;
  DenseMarks dense_expanded_;
  HashMarks hash_parent_;
  HashMarks hash_expanded_;
};

}  // namespace faultroute
