#include "core/routers/flood_router.hpp"

#include <algorithm>

#include "graph/flat_adjacency.hpp"

// analyze:allow-file-hot-alloc(per-message flood BFS is the --frontier permsg differential baseline for the batched block executor)
namespace faultroute {

namespace {

/// The flood BFS, templated over the marks backend (dense vertex-indexed
/// arrays on the flat path, hash maps on the implicit path). The queue is a
/// caller-pooled vector with a head cursor — identical FIFO order to a
/// std::queue, no per-message allocation in steady state.
template <typename Marks>
std::optional<Path> flood_search(ProbeContext& ctx, const AdjacencyView& adj, VertexId u,
                                 VertexId v, bool probe_target_first, Marks& parent,
                                 std::vector<VertexId>& queue) {
  parent.emplace(u, u);
  queue.clear();
  queue.push_back(u);
  std::size_t head = 0;

  const auto build_path = [&parent, u](VertexId target) {
    Path path;
    for (VertexId x = target;; x = parent.at(x)) {
      path.push_back(x);
      if (x == u) break;
    }
    std::reverse(path.begin(), path.end());
    return path;
  };

  while (head < queue.size()) {
    const VertexId x = queue[head++];
    ctx.note_expansion();
    const int deg = adj.degree(x);
    int target_index = -1;
    if (probe_target_first) target_index = adj.edge_index_of(x, v);
    for (int step = (target_index >= 0 ? -1 : 0); step < deg; ++step) {
      const int i = (step == -1) ? target_index : step;
      if (step != -1 && i == target_index && target_index >= 0) continue;  // done already
      const VertexId y = adj.neighbor(x, i);
      if (parent.contains(y)) continue;
      if (!ctx.probe(x, i)) continue;
      parent.emplace(y, x);
      if (y == v) return build_path(v);
      queue.push_back(y);
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<Path> FloodRouter::route(ProbeContext& ctx, VertexId u, VertexId v) {
  if (u == v) return Path{u};
  const AdjacencyView adj(ctx.graph(), ctx.flat_adjacency());
  if (ctx.flat_adjacency() != nullptr) {
    dense_parent_.begin(ctx.graph().num_vertices());
    return flood_search(ctx, adj, u, v, probe_target_first_, dense_parent_, queue_);
  }
  hash_parent_.begin(0);
  return flood_search(ctx, adj, u, v, probe_target_first_, hash_parent_, queue_);
}

}  // namespace faultroute
