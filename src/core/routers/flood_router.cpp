#include "core/routers/flood_router.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>

namespace faultroute {

std::optional<Path> FloodRouter::route(ProbeContext& ctx, VertexId u, VertexId v) {
  if (u == v) return Path{u};
  const Topology& graph = ctx.graph();
  std::unordered_map<VertexId, VertexId> parent;
  std::queue<VertexId> queue;
  parent.emplace(u, u);
  queue.push(u);

  const auto build_path = [&parent, u](VertexId target) {
    Path path;
    for (VertexId x = target;; x = parent.at(x)) {
      path.push_back(x);
      if (x == u) break;
    }
    std::reverse(path.begin(), path.end());
    return path;
  };

  while (!queue.empty()) {
    const VertexId x = queue.front();
    queue.pop();
    const int deg = graph.degree(x);
    int target_index = -1;
    if (probe_target_first_) target_index = edge_index_of(graph, x, v);
    for (int step = (target_index >= 0 ? -1 : 0); step < deg; ++step) {
      const int i = (step == -1) ? target_index : step;
      if (step != -1 && i == target_index && target_index >= 0) continue;  // done already
      const VertexId y = graph.neighbor(x, i);
      if (parent.contains(y)) continue;
      if (!ctx.probe(x, i)) continue;
      parent.emplace(y, x);
      if (y == v) return build_path(v);
      queue.push(y);
    }
  }
  return std::nullopt;
}

}  // namespace faultroute
