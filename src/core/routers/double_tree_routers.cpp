#include "core/routers/double_tree_routers.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

// analyze:allow-file-hot-alloc(per-message tree walks: branch and path materialization bounded by tree depth)
namespace faultroute {

namespace {

using Side = DoubleBinaryTree::Side;

/// Checks the (u, v) pair is the root pair, normalising orientation.
/// Returns true if the caller must reverse the resulting path.
bool check_roots(const DoubleBinaryTree& tree, VertexId u, VertexId v) {
  if (u == tree.root1() && v == tree.root2()) return false;
  if (u == tree.root2() && v == tree.root1()) return true;
  // analyze:allow-throw-safety(root-pair precondition guard; surfaced via first_error)
  throw std::invalid_argument("double-tree routers route between the two roots only");
}

/// The branch of tree `side` from the root down to heap index h, as vertex
/// ids (root first). h may be a leaf-level heap index.
Path branch_from_root(const DoubleBinaryTree& tree, std::uint64_t h, Side side) {
  Path branch;
  for (std::uint64_t a = h; a >= 1; a >>= 1) branch.push_back(tree.vertex_of_heap(a, side));
  std::reverse(branch.begin(), branch.end());
  return branch;
}

/// Full root1 -> leaf(h) -> root2 path for a doubly-open branch at leaf heap h.
Path through_path(const DoubleBinaryTree& tree, std::uint64_t leaf_heap) {
  Path path = branch_from_root(tree, leaf_heap, Side::kTree1);
  Path up = branch_from_root(tree, leaf_heap, Side::kTree2);  // root2 .. leaf
  std::reverse(up.begin(), up.end());                         // leaf .. root2
  path.insert(path.end(), up.begin() + 1, up.end());
  return path;
}

}  // namespace

std::optional<Path> DoubleTreeLocalRouter::route(ProbeContext& ctx, VertexId u, VertexId v) {
  const bool reversed = check_roots(tree_, u, v);
  if (reversed) {
    // Routing root2 -> root1 is the same algorithm with the trees swapped;
    // for simplicity route root1 -> root2 obeying locality from root2 is not
    // supported (the experiments always route x -> y).
    // analyze:allow-throw-safety(unsupported-orientation guard; surfaced via first_error)
    throw std::invalid_argument("DoubleTreeLocalRouter: route from root1 to root2");
  }
  const std::uint64_t leaf_level = tree_.num_leaves();

  // DFS over tree-1 heap indices whose branch from root1 is open.
  std::vector<std::uint64_t> stack{1};
  while (!stack.empty()) {
    const std::uint64_t h = stack.back();
    stack.pop_back();
    if (h >= leaf_level) {
      // Reached a leaf: climb its tree-2 branch towards root2.
      bool climb_open = true;
      for (std::uint64_t c = h; c >= 2 && climb_open; c >>= 1) {
        const VertexId child = tree_.vertex_of_heap(c, Side::kTree2);
        const VertexId parent = tree_.vertex_of_heap(c >> 1, Side::kTree2);
        climb_open = ctx.probe_between(child, parent);
      }
      if (climb_open) return through_path(tree_, h);
      continue;
    }
    for (std::uint64_t child = 2 * h; child <= 2 * h + 1; ++child) {
      const VertexId parent_vertex = tree_.vertex_of_heap(h, Side::kTree1);
      const VertexId child_vertex = tree_.vertex_of_heap(child, Side::kTree1);
      if (ctx.probe_between(parent_vertex, child_vertex)) stack.push_back(child);
    }
  }
  return std::nullopt;
}

std::optional<Path> DoubleTreePairedOracleRouter::route(ProbeContext& ctx, VertexId u,
                                                        VertexId v) {
  const bool reversed = check_roots(tree_, u, v);
  const std::uint64_t leaf_level = tree_.num_leaves();

  std::vector<std::uint64_t> stack{1};
  while (!stack.empty()) {
    const std::uint64_t h = stack.back();
    stack.pop_back();
    if (h >= leaf_level) {
      Path path = through_path(tree_, h);
      if (reversed) std::reverse(path.begin(), path.end());
      return path;
    }
    for (std::uint64_t child = 2 * h; child <= 2 * h + 1; ++child) {
      // Probe the tree-1 edge and, only if open, its tree-2 mirror: the
      // branch survives iff both do (edge probability p^2 — a binary
      // Galton-Watson tree, supercritical for p > 1/sqrt 2).
      const VertexId p1 = tree_.vertex_of_heap(h, Side::kTree1);
      const VertexId c1 = tree_.vertex_of_heap(child, Side::kTree1);
      if (!ctx.probe_between(p1, c1)) continue;
      const VertexId p2 = tree_.vertex_of_heap(h, Side::kTree2);
      const VertexId c2 = tree_.vertex_of_heap(child, Side::kTree2);
      if (!ctx.probe_between(p2, c2)) continue;
      stack.push_back(child);
    }
  }
  return std::nullopt;
}

}  // namespace faultroute
