#pragma once

#include "core/router.hpp"
#include "core/routers/flood_router.hpp"

namespace faultroute {

/// The natural local router for G_{n,p} (Theorem 10's setting): flood
/// outwards from u, probing each newly reached vertex's edge to the target
/// first. Theorem 10 shows *every* local algorithm pays Omega(n^2) expected
/// probes here; this router realises Theta(n^2) and is the measured
/// witness for the lower bound's tightness.
class GnpLocalRouter final : public FloodRouter {
 public:
  GnpLocalRouter() : FloodRouter(/*probe_target_first=*/true) {}

  [[nodiscard]] std::string name() const override { return "gnp-local"; }
};

/// The oracle router of Theorem 11, verbatim from the paper:
///
///   (1) whenever there are unqueried edges between U_t and V_t, probe one;
///   (2) otherwise grow the smaller of U_t, V_t by probing an unprobed edge
///       to a previously unreached vertex;
///   (3) if no such edge exists, report u !~ v.
///
/// Both sets grow to ~ sqrt(n) before a cross edge appears (birthday
/// paradox), each growth step costs ~ n/c probes, so the expected complexity
/// is Theta(n^{3/2}) — a sqrt(n) factor below any local router. Requires the
/// topology to be a CompleteGraph. Complete.
class GnpOracleRouter final : public Router {
 public:
  std::optional<Path> route(ProbeContext& ctx, VertexId u, VertexId v) override;

  [[nodiscard]] std::string name() const override { return "gnp-oracle"; }
  [[nodiscard]] RoutingMode required_mode() const override { return RoutingMode::kOracle; }
};

}  // namespace faultroute
