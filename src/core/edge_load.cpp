#include "core/edge_load.hpp"

#include <algorithm>

namespace faultroute {

namespace {

/// Shared accumulation core: one count per used edge, however the caller
/// names its edges.
void accumulate_count(EdgeLoadStats& stats, std::uint64_t count) {
  ++stats.edges_used;
  stats.total += count;
  stats.max_load = std::max(stats.max_load, count);
}

void finalize_mean(EdgeLoadStats& stats) {
  if (stats.edges_used > 0) {
    stats.mean_load =
        static_cast<double>(stats.total) / static_cast<double>(stats.edges_used);
  }
}

}  // namespace

EdgeLoadStats summarize_edge_load(const std::unordered_map<EdgeKey, std::uint64_t>& load) {
  EdgeLoadStats stats;
  for (const auto& [key, count] : load) accumulate_count(stats, count);
  finalize_mean(stats);
  return stats;
}

EdgeLoadStats summarize_edge_id_load(const std::vector<std::uint64_t>& edge_load,
                                     const std::vector<std::uint32_t>& used_edges) {
  EdgeLoadStats stats;
  for (const std::uint32_t id : used_edges) accumulate_count(stats, edge_load[id]);
  finalize_mean(stats);
  return stats;
}

EdgeLoadStats summarize_channel_load(const ChannelIndex& index,
                                     const std::vector<std::uint64_t>& channel_load,
                                     const std::vector<std::uint32_t>& used_channels) {
  EdgeLoadStats stats;
  for (const std::uint32_t channel : used_channels) {
    const std::uint32_t rev = index.reverse(channel);
    // Each undirected edge is summarised once, by whichever of its two used
    // directions comes first numerically (or by its only used direction).
    if (rev < channel && channel_load[rev] > 0) continue;
    const std::uint64_t pooled =
        channel_load[channel] + (rev == channel ? 0 : channel_load[rev]);
    ++stats.edges_used;
    stats.total += pooled;
    stats.max_load = std::max(stats.max_load, pooled);
  }
  if (stats.edges_used > 0) {
    stats.mean_load =
        static_cast<double>(stats.total) / static_cast<double>(stats.edges_used);
  }
  return stats;
}

}  // namespace faultroute
