#include "core/edge_load.hpp"

#include <algorithm>

namespace faultroute {

EdgeLoadStats summarize_edge_load(const std::unordered_map<EdgeKey, std::uint64_t>& load) {
  EdgeLoadStats stats;
  stats.edges_used = load.size();
  for (const auto& [key, count] : load) {
    stats.total += count;
    stats.max_load = std::max(stats.max_load, count);
  }
  if (stats.edges_used > 0) {
    stats.mean_load =
        static_cast<double>(stats.total) / static_cast<double>(stats.edges_used);
  }
  return stats;
}

EdgeLoadStats summarize_channel_load(const ChannelIndex& index,
                                     const std::vector<std::uint64_t>& channel_load,
                                     const std::vector<std::uint32_t>& used_channels) {
  EdgeLoadStats stats;
  for (const std::uint32_t channel : used_channels) {
    const std::uint32_t rev = index.reverse(channel);
    // Each undirected edge is summarised once, by whichever of its two used
    // directions comes first numerically (or by its only used direction).
    if (rev < channel && channel_load[rev] > 0) continue;
    const std::uint64_t pooled =
        channel_load[channel] + (rev == channel ? 0 : channel_load[rev]);
    ++stats.edges_used;
    stats.total += pooled;
    stats.max_load = std::max(stats.max_load, pooled);
  }
  if (stats.edges_used > 0) {
    stats.mean_load =
        static_cast<double>(stats.total) / static_cast<double>(stats.edges_used);
  }
  return stats;
}

}  // namespace faultroute
