#include "core/edge_load.hpp"

#include <algorithm>

namespace faultroute {

EdgeLoadStats summarize_edge_load(const std::unordered_map<EdgeKey, std::uint64_t>& load) {
  EdgeLoadStats stats;
  stats.edges_used = load.size();
  for (const auto& [key, count] : load) {
    stats.total += count;
    stats.max_load = std::max(stats.max_load, count);
  }
  if (stats.edges_used > 0) {
    stats.mean_load =
        static_cast<double>(stats.total) / static_cast<double>(stats.edges_used);
  }
  return stats;
}

}  // namespace faultroute
