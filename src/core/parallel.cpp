#include "core/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

namespace faultroute {

void parallel_index_loop(std::size_t count, unsigned threads,
                         const std::function<std::function<void(std::size_t)>()>& make_body) {
  if (count == 0) return;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  threads = std::min<unsigned>(threads, static_cast<unsigned>(std::min<std::size_t>(
                                            count, std::numeric_limits<unsigned>::max())));

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const auto worker = [&] {
    try {
      const auto body = make_body();
      while (true) {
        // relaxed is sufficient: the ticket counter is the only shared word,
        // RMWs on one atomic are totally ordered regardless of memory_order,
        // each index is claimed exactly once, and thread join supplies the
        // happens-before for everything the bodies wrote.
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        body(i);
      }
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);  // analyze:allow-hot-alloc(thread spawn happens once per region, outside any worker body)
    for (unsigned w = 0; w < threads; ++w) pool.emplace_back(worker);  // analyze:allow-hot-alloc(same one-time spawn)
    for (auto& t : pool) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace faultroute
