#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/router.hpp"
#include "graph/topology.hpp"

namespace faultroute {

/// One routing trial on a freshly sampled percolation environment.
struct TrialOutcome {
  std::uint64_t seed = 0;          // the accepted environment seed
  std::uint64_t rejected = 0;      // environments rejected because u !~ v
  bool routed = false;             // router returned a path
  bool censored = false;           // probe budget exhausted
  bool path_valid = false;         // returned path verified open
  std::uint64_t distinct_probes = 0;
  std::uint64_t total_probes = 0;
  std::uint64_t path_edges = 0;
};

/// Configuration of a routing-complexity measurement (Definition 2 of the
/// paper: probes to route, conditioned on {u ~ v}).
struct ExperimentConfig {
  int trials = 100;
  std::uint64_t base_seed = 0xfa117ULL;
  /// Probe budget per trial; exceeding it records a censored trial.
  std::optional<std::uint64_t> probe_budget;
  /// Rejection-sampling cap while conditioning on {u ~ v}.
  int max_resample_attempts = 10000;
  /// Cap on BFS vertices in the ground-truth connectivity check
  /// (0 = unbounded). A capped, inconclusive check counts as a rejection.
  std::uint64_t connectivity_cap = 0;
  /// When false, skip conditioning entirely (u !~ v trials then measure the
  /// cost of discovering disconnection).
  bool require_connected = true;
  /// Verify every returned path against the environment.
  bool verify_paths = true;
};

/// Aggregate view over a batch of trials.
struct ExperimentSummary {
  int trials = 0;
  int routed = 0;
  int censored = 0;
  int invalid_paths = 0;       // returned paths that failed verification
  int unexpected_failures = 0; // nullopt despite conditioning on {u ~ v}
  double mean_distinct = 0.0;
  double median_distinct = 0.0;
  double max_distinct = 0.0;
  double mean_path_edges = 0.0;
  double rejection_rate = 0.0;  // rejected / (rejected + accepted) environments
};

/// Runs `config.trials` independent routing trials of `router` between u and
/// v on `graph` percolated at probability p. Each trial resamples the
/// environment until {u ~ v} holds (ground-truth BFS, never the router).
/// Censored trials (budget exhausted) still appear in the outcome list.
[[nodiscard]] std::vector<TrialOutcome> run_routing_trials(const Topology& graph, double p,
                                                           Router& router, VertexId u,
                                                           VertexId v,
                                                           const ExperimentConfig& config);

/// Aggregates trial outcomes. Censored trials contribute their (truncated)
/// probe counts to the mean/median, so in exponential regimes read
/// `censored` first: a high censored fraction *is* the result.
[[nodiscard]] ExperimentSummary summarize_trials(const std::vector<TrialOutcome>& outcomes);

/// Convenience: run + aggregate.
[[nodiscard]] ExperimentSummary measure_routing(const Topology& graph, double p,
                                                Router& router, VertexId u, VertexId v,
                                                const ExperimentConfig& config);

/// Builds a fresh router per worker thread (routers are not required to be
/// thread-safe; topologies and samplers are immutable and shared).
using RouterFactory = std::function<std::unique_ptr<Router>()>;

/// Multi-threaded variant of run_routing_trials: trials are deterministic
/// per (base_seed, trial index), so the outcome vector is identical to the
/// sequential run regardless of thread count. `threads` = 0 picks
/// hardware_concurrency.
[[nodiscard]] std::vector<TrialOutcome> run_routing_trials_parallel(
    const Topology& graph, double p, const RouterFactory& make_router, VertexId u,
    VertexId v, const ExperimentConfig& config, unsigned threads = 0);

}  // namespace faultroute
