#include "core/path.hpp"

#include <unordered_map>

namespace faultroute {

bool is_valid_open_path(const Topology& graph, const EdgeSampler& sampler,
                        const Path& path, VertexId from, VertexId to) {
  return is_valid_open_path(AdjacencyView(graph, nullptr), sampler, path, from, to);
}

bool is_valid_open_path(const AdjacencyView& adj, const EdgeSampler& sampler,
                        const Path& path, VertexId from, VertexId to) {
  if (path.empty()) return false;
  if (path.front() != from || path.back() != to) return false;
  const FlatAdjacency* flat = adj.flat();
  for (std::size_t step = 0; step + 1 < path.size(); ++step) {
    const VertexId a = path[step];
    const VertexId b = path[step + 1];
    // Accept the edge if *any* parallel copy of {a, b} is open.
    bool ok = false;
    if (flat != nullptr) {
      const std::uint64_t end = flat->row_end(a);
      for (std::uint64_t pos = flat->row_begin(a); pos < end && !ok; ++pos) {
        if (flat->neighbor_at(pos) == b &&
            sampler.is_open_indexed(flat->edge_id_at(pos), flat->edge_key_at(pos))) {
          ok = true;
        }
      }
    } else {
      const Topology& graph = adj.graph();
      const int deg = graph.degree(a);
      for (int i = 0; i < deg && !ok; ++i) {
        if (graph.neighbor(a, i) == b && sampler.is_open(graph.edge_key(a, i))) ok = true;
      }
    }
    if (!ok) return false;
  }
  return true;
}

// analyze:allow-hot-alloc(simplify_walk materializes one output path per message; state is bounded by walk length)
Path simplify_walk(const Path& walk) {
  Path out;
  std::unordered_map<VertexId, std::size_t> position;  // vertex -> index in out
  out.reserve(walk.size());
  for (const VertexId v : walk) {
    const auto it = position.find(v);
    if (it != position.end()) {
      // Cut the loop: drop everything after the first occurrence of v.
      for (std::size_t i = it->second + 1; i < out.size(); ++i) position.erase(out[i]);
      out.resize(it->second + 1);
    } else {
      position.emplace(v, out.size());
      out.push_back(v);
    }
  }
  return out;
}

std::size_t path_length(const Path& path) {
  return path.empty() ? 0 : path.size() - 1;
}

}  // namespace faultroute
