#pragma once

#include <vector>

#include "graph/flat_adjacency.hpp"
#include "graph/topology.hpp"
#include "percolation/edge_sampler.hpp"

namespace faultroute {

/// A walk in a topology, as the sequence of visited vertices.
using Path = std::vector<VertexId>;

/// True iff `path` is a walk from `from` to `to` along edges of `graph` all
/// of which are open under `sampler`. An empty path is never valid; a
/// single-vertex path is valid iff from == to == path[0].
[[nodiscard]] bool is_valid_open_path(const Topology& graph, const EdgeSampler& sampler,
                                      const Path& path, VertexId from, VertexId to);

/// Identical verdict through an adjacency view: CSR row scans (and indexed
/// sampler queries) when the view holds a snapshot, the virtual interface
/// otherwise. The Topology overload above is this one with no snapshot.
[[nodiscard]] bool is_valid_open_path(const AdjacencyView& adj, const EdgeSampler& sampler,
                                      const Path& path, VertexId from, VertexId to);

/// Removes loops from a walk: whenever a vertex repeats, the portion between
/// the repeats is cut. The result is a simple path with the same endpoints.
[[nodiscard]] Path simplify_walk(const Path& walk);

/// Number of edges of the path (0 for empty or single-vertex paths).
[[nodiscard]] std::size_t path_length(const Path& path);

}  // namespace faultroute
