#pragma once

#include <optional>
#include <string>

#include "core/path.hpp"
#include "core/probe_context.hpp"

namespace faultroute {

/// A routing algorithm (Definition 1 of the paper): given probe access to a
/// percolated graph, find an open path between two vertices.
///
/// Contract:
///  * `route` returns a path iff it found one; the returned path must be a
///    valid open walk from u to v (verified by the experiment harness);
///  * returning nullopt means the router determined (or gave up determining)
///    that no path exists — a *complete* router returns nullopt only when u
///    and v are in different open clusters;
///  * `required_mode()` declares whether the router obeys locality; local
///    routers are run under enforcement and must never trip it.
class Router {
 public:
  virtual ~Router() = default;

  virtual std::optional<Path> route(ProbeContext& ctx, VertexId u, VertexId v) = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] virtual RoutingMode required_mode() const { return RoutingMode::kLocal; }

  /// True iff the router steers by the fault-free metric (graph.distance /
  /// ProbeContext::target_distances). The traffic engine uses this to
  /// prewarm the cached DistanceOracle with the batch's targets before
  /// routing starts — a pure precomputation hint; routing results never
  /// depend on it.
  [[nodiscard]] virtual bool uses_distance_metric() const { return false; }
};

}  // namespace faultroute
