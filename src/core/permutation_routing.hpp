#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/router.hpp"
#include "graph/flat_adjacency.hpp"
#include "graph/topology.hpp"
#include "percolation/edge_sampler.hpp"

namespace faultroute {

/// Batch / permutation routing: the "full blown routing scheme" the paper
/// distinguishes from its single-pair complexity measure (Section 1.1), and
/// the setting of the emulation literature it cites (Hastad et al., Cole et
/// al.): route one message per source under a permutation and look at the
/// *congestion* the chosen paths induce, not just their existence.
struct PermutationRoutingResult {
  std::uint64_t pairs = 0;             // pairs attempted (connected ones)
  std::uint64_t routed = 0;            // pairs successfully routed
  std::uint64_t failed = 0;            // connected pairs the router missed
  std::uint64_t skipped_disconnected = 0;
  std::uint64_t total_probes = 0;      // distinct probes summed over pairs
  std::uint64_t total_path_edges = 0;
  std::uint64_t max_edge_load = 0;     // congestion: max #paths over one edge
  double mean_edge_load = 0.0;         // over edges used at least once

  [[nodiscard]] double mean_probes() const {
    return pairs == 0 ? 0.0 : static_cast<double>(total_probes) / static_cast<double>(pairs);
  }
  [[nodiscard]] double mean_path_length() const {
    return routed == 0 ? 0.0
                       : static_cast<double>(total_path_edges) / static_cast<double>(routed);
  }
};

struct PermutationRoutingConfig {
  /// Number of (source, target) pairs to draw.
  std::uint64_t pairs = 64;
  /// Seed for drawing the pairs (the environment has its own seed).
  std::uint64_t pair_seed = 1;
  /// Skip pairs that are disconnected in the environment (checked by BFS
  /// ground truth with this visit cap; 0 = unbounded).
  std::uint64_t connectivity_cap = 0;
  /// Probe budget per pair (nullopt = unbounded); exceeding counts as failed.
  std::optional<std::uint64_t> probe_budget;
  /// Adjacency backend (graph/flat_adjacency.hpp): with a snapshot, probes,
  /// connectivity prechecks, and the congestion accumulation all run dense
  /// (per-edge-id vector instead of an EdgeKey hash map). Results identical.
  AdjacencyMode adjacency = AdjacencyMode::kAuto;
};

/// Routes `config.pairs` random source/target pairs through one shared
/// percolation environment with one router instance (from `make_router`)
/// reused across the batch — routers are pure functions of (ctx, u, v), so
/// reuse only pools their search scratch — and aggregates probe cost and
/// path congestion.
[[nodiscard]] PermutationRoutingResult route_permutation(
    const Topology& graph, const EdgeSampler& sampler,
    const std::function<std::unique_ptr<Router>()>& make_router,
    const PermutationRoutingConfig& config);

}  // namespace faultroute
