#include "core/experiment.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/parallel.hpp"
#include "core/path.hpp"
#include "percolation/cluster_analysis.hpp"
#include "percolation/edge_sampler.hpp"
#include "random/rng.hpp"

namespace faultroute {

namespace {

/// One conditioned routing trial; deterministic in (config.base_seed, trial).
TrialOutcome run_single_trial(const Topology& graph, double p, Router& router,
                              VertexId u, VertexId v, const ExperimentConfig& config,
                              int trial) {
  TrialOutcome outcome;

    // Condition on {u ~ v} by rejection-sampling environments; the
    // ground-truth check is a BFS on the open graph, independent of the
    // router under test.
    std::optional<std::uint64_t> accepted_seed;
    for (int attempt = 0; attempt < config.max_resample_attempts; ++attempt) {
      const std::uint64_t seed = derive_seed(
          config.base_seed, static_cast<std::uint64_t>(trial) * 1000003ULL +
                                static_cast<std::uint64_t>(attempt));
      if (!config.require_connected) {
        accepted_seed = seed;
        break;
      }
      const HashEdgeSampler sampler(p, seed);
      const std::optional<bool> connected =
          open_connected(graph, sampler, u, v, config.connectivity_cap);
      if (connected.has_value() && *connected) {
        accepted_seed = seed;
        break;
      }
      ++outcome.rejected;
    }
    if (!accepted_seed) {
      // analyze:allow-throw-safety(resample exhaustion aborts the trial sweep by design; funneled through first_error)
      throw std::runtime_error(
          "run_routing_trials: could not sample a connected environment for " +
          graph.name() + " at p=" + std::to_string(p) +
          " — increase max_resample_attempts or p");
    }
    outcome.seed = *accepted_seed;

    const HashEdgeSampler sampler(p, outcome.seed);
    ProbeContext ctx(graph, sampler, u, router.required_mode(), config.probe_budget);
    std::optional<Path> path;
    try {
      path = router.route(ctx, u, v);
    } catch (const ProbeBudgetExceeded&) {
      outcome.censored = true;
    }
    outcome.distinct_probes = ctx.distinct_probes();
    outcome.total_probes = ctx.total_probes();
    if (path) {
      outcome.routed = true;
      outcome.path_edges = path_length(*path);
      outcome.path_valid =
          !config.verify_paths || is_valid_open_path(graph, sampler, *path, u, v);
    }
  return outcome;
}

}  // namespace

std::vector<TrialOutcome> run_routing_trials(const Topology& graph, double p,
                                             Router& router, VertexId u, VertexId v,
                                             const ExperimentConfig& config) {
  std::vector<TrialOutcome> outcomes;
  outcomes.reserve(static_cast<std::size_t>(config.trials));
  for (int trial = 0; trial < config.trials; ++trial) {
    outcomes.push_back(run_single_trial(graph, p, router, u, v, config, trial));
  }
  return outcomes;
}

std::vector<TrialOutcome> run_routing_trials_parallel(const Topology& graph, double p,
                                                      const RouterFactory& make_router,
                                                      VertexId u, VertexId v,
                                                      const ExperimentConfig& config,
                                                      unsigned threads) {
  std::vector<TrialOutcome> outcomes(static_cast<std::size_t>(std::max(0, config.trials)));
  parallel_index_loop(outcomes.size(), threads, [&] {
    const std::shared_ptr<Router> router = make_router();
    return [&, router](std::size_t trial) {
      outcomes[trial] =
          run_single_trial(graph, p, *router, u, v, config, static_cast<int>(trial));
    };
  });
  return outcomes;
}

ExperimentSummary summarize_trials(const std::vector<TrialOutcome>& outcomes) {
  ExperimentSummary summary;
  summary.trials = static_cast<int>(outcomes.size());
  if (outcomes.empty()) return summary;

  std::vector<double> distinct;
  distinct.reserve(outcomes.size());
  double probe_sum = 0.0;
  double path_sum = 0.0;
  std::uint64_t rejected = 0;
  for (const TrialOutcome& o : outcomes) {
    if (o.routed) {
      ++summary.routed;
      if (!o.path_valid) ++summary.invalid_paths;
      path_sum += static_cast<double>(o.path_edges);
    } else if (o.censored) {
      ++summary.censored;
    } else {
      ++summary.unexpected_failures;
    }
    distinct.push_back(static_cast<double>(o.distinct_probes));
    probe_sum += static_cast<double>(o.distinct_probes);
    summary.max_distinct =
        std::max(summary.max_distinct, static_cast<double>(o.distinct_probes));
    rejected += o.rejected;
  }
  summary.mean_distinct = probe_sum / static_cast<double>(outcomes.size());
  std::nth_element(distinct.begin(), distinct.begin() + distinct.size() / 2,
                   distinct.end());
  summary.median_distinct = distinct[distinct.size() / 2];
  summary.mean_path_edges =
      summary.routed > 0 ? path_sum / static_cast<double>(summary.routed) : 0.0;
  summary.rejection_rate =
      static_cast<double>(rejected) /
      static_cast<double>(rejected + static_cast<std::uint64_t>(outcomes.size()));
  return summary;
}

ExperimentSummary measure_routing(const Topology& graph, double p, Router& router,
                                  VertexId u, VertexId v, const ExperimentConfig& config) {
  return summarize_trials(run_routing_trials(graph, p, router, u, v, config));
}

}  // namespace faultroute
