#pragma once

#include <cstddef>
#include <functional>

namespace faultroute {

/// Runs body(i) for every i in [0, count), distributing indices to a worker
/// pool by atomic work-stealing. `make_body` is invoked once per worker
/// thread to set up per-worker state (typically a Router instance, which is
/// not required to be thread-safe) and returns the body to run.
///
/// threads = 0 picks hardware_concurrency; the pool is clamped to `count`,
/// and threads == 1 runs inline without spawning. The first exception thrown
/// by any body (or make_body) stops that worker and is rethrown to the
/// caller after all workers join.
///
/// Bodies must write results only to disjoint index-addressed slots; under
/// that contract the outcome is identical for every thread count.
void parallel_index_loop(std::size_t count, unsigned threads,
                         const std::function<std::function<void(std::size_t)>()>& make_body);

}  // namespace faultroute
