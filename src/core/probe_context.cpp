#include "core/probe_context.hpp"

#include <algorithm>
#include <limits>

#include "graph/channel_index.hpp"
#include "graph/distance_oracle.hpp"
#include "graph/flat_adjacency.hpp"

namespace faultroute {

void ProbeArena::begin_message(const Topology& graph) {
  // Re-fetch the channel index every message rather than caching it behind
  // a topology-address compare: a new topology allocated where a destroyed
  // one lived would alias such a cache (dangling index, wrongly-sized
  // arrays). channel_index() is one call_once fast path — nothing against
  // the cost of routing a message. Arrays only ever grow; slots stamped by
  // a previous topology are harmless because their stamps are strictly
  // below the post-increment epoch.
  channels_ = &graph.channel_index();
  if (edge_epoch_.size() < channels_->num_edge_ids()) {
    edge_epoch_.resize(channels_->num_edge_ids(), 0);  // analyze:allow-hot-alloc(grow-only arena warm-up, reused across messages)
    edge_open_.resize(channels_->num_edge_ids(), 0);  // analyze:allow-hot-alloc(same grow-only warm-up)
  }
  if (vertex_epoch_.size() < graph.num_vertices()) {
    vertex_epoch_.resize(graph.num_vertices(), 0);  // analyze:allow-hot-alloc(same grow-only warm-up)
  }
  if (epoch_ == std::numeric_limits<std::uint32_t>::max()) {
    // Epoch wrap: stamps from ~4 billion messages ago would read as live.
    // Zero everything and restart — amortised cost is a rounding error.
    std::fill(edge_epoch_.begin(), edge_epoch_.end(), 0u);
    std::fill(vertex_epoch_.begin(), vertex_epoch_.end(), 0u);
    epoch_ = 0;
  }
  ++epoch_;
}

ProbeContext::ProbeContext(const Topology& graph, const EdgeSampler& sampler,
                           VertexId source, RoutingMode mode,
                           std::optional<std::uint64_t> budget, ProbeArena* arena,
                           const FlatAdjacency* flat, const DistanceOracle* oracle)
    : graph_(graph), sampler_(sampler), source_(source), mode_(mode), budget_(budget),
      arena_(arena), flat_(flat), oracle_(oracle) {
  if (arena_ != nullptr) {
    arena_->begin_message(graph_);
    channels_ = arena_->channels_;
  }
  if (mode_ == RoutingMode::kLocal) reached_insert(source_);
}

bool ProbeContext::reached_contains(VertexId v) const {
  if (arena_ != nullptr) return arena_->vertex_epoch_[v] == arena_->epoch_;
  return reached_.contains(v);
}

void ProbeContext::reached_insert(VertexId v) {
  if (arena_ != nullptr) {
    arena_->vertex_epoch_[v] = arena_->epoch_;
  } else {
    reached_.insert(v);  // analyze:allow-hot-alloc(hash-backend reached set: the no-arena A/B baseline)
  }
}

bool ProbeContext::is_reached(VertexId v) const {
  if (mode_ == RoutingMode::kOracle) return true;  // no restriction to track
  return reached_contains(v);
}

const std::uint32_t* ProbeContext::target_distances(VertexId target) const {
  if (oracle_ == nullptr) return nullptr;
  return oracle_->distances_to(target);
}

std::optional<std::uint64_t> ProbeContext::remaining_budget() const {
  if (!budget_) return std::nullopt;
  const std::uint64_t used = distinct_probes();
  return *budget_ > used ? *budget_ - used : 0;
}

namespace {

/// Adjacency accessors the shared probe bookkeeping is parameterized on:
/// array loads off the CSR snapshot on the flat path, virtual dispatch (and
/// the channel index's edge-id table) on the implicit path. One bookkeeping
/// body + two accessor structs = the backends cannot drift.
struct FlatAccess {
  const FlatAdjacency* flat;
  [[nodiscard]] VertexId neighbor(VertexId v, int i) const { return flat->neighbor(v, i); }
  [[nodiscard]] std::uint32_t edge_id(VertexId v, int i) const { return flat->edge_id(v, i); }
  [[nodiscard]] EdgeKey edge_key(VertexId v, int i) const { return flat->edge_key(v, i); }
};

struct VirtualAccess {
  const Topology* graph;
  const ChannelIndex* channels;  // non-null only on the dense backend
  [[nodiscard]] VertexId neighbor(VertexId v, int i) const { return graph->neighbor(v, i); }
  [[nodiscard]] std::uint32_t edge_id(VertexId v, int i) const {
    return channels->edge_id_of(channels->channel_of(v, i));
  }
  [[nodiscard]] EdgeKey edge_key(VertexId v, int i) const { return graph->edge_key(v, i); }
};

}  // namespace

template <typename Access>
bool ProbeContext::probe_with(const Access& access, VertexId v, int i) {
  const VertexId w = access.neighbor(v, i);
  if (mode_ == RoutingMode::kLocal && !reached_contains(v) && !reached_contains(w)) {
    // analyze:allow-throw-safety(locality contract violation is a programming error; surfaced via first_error)
    throw LocalityViolation("local probe of edge not incident to the reached set");
  }
  ++total_probes_;
  bool open;
  if (arena_ != nullptr) {
    // Dense backend: the memo is a flat per-edge array, live iff stamped
    // with this message's epoch. A hit touches one cache line and computes
    // no edge key; only a fresh probe asks the sampler.
    const std::uint32_t edge = access.edge_id(v, i);
    if (arena_->edge_epoch_[edge] == arena_->epoch_) {
      open = arena_->edge_open_[edge] != 0;
    } else {
      if (budget_ && distinct_probes_ >= *budget_) {
        throw ProbeBudgetExceeded("probe budget exhausted");  // analyze:allow-throw-safety(probe-budget censoring signal, caught per message by the engine)
      }
      open = sampler_.is_open_indexed(edge, access.edge_key(v, i));
      arena_->edge_epoch_[edge] = arena_->epoch_;
      arena_->edge_open_[edge] = open ? 1 : 0;
      ++distinct_probes_;
    }
  } else {
    const EdgeKey key = access.edge_key(v, i);
    const auto it = memo_.find(key);
    if (it != memo_.end()) {
      open = it->second;
    } else {
      if (budget_ && distinct_probes_ >= *budget_) {
        throw ProbeBudgetExceeded("probe budget exhausted");  // analyze:allow-throw-safety(probe-budget censoring signal, caught per message by the engine)
      }
      open = sampler_.is_open(key);
      memo_.emplace(key, open);  // analyze:allow-hot-alloc(hash-backend probe memo: one insert per distinct edge, the A/B baseline)
      ++distinct_probes_;
    }
  }
  if (open && mode_ == RoutingMode::kLocal) {
    // An open edge incident to the reached set extends it.
    const bool v_reached = reached_contains(v);
    const bool w_reached = reached_contains(w);
    if (v_reached && !w_reached) reached_insert(w);
    if (w_reached && !v_reached) reached_insert(v);
  }
  return open;
}

bool ProbeContext::probe(VertexId v, int i) {
  if (flat_ != nullptr) return probe_with(FlatAccess{flat_}, v, i);
  return probe_with(VirtualAccess{&graph_, channels_}, v, i);
}

bool ProbeContext::probe_between(VertexId a, VertexId b) {
  const int i = flat_ != nullptr ? edge_index_of(*flat_, a, b) : edge_index_of(graph_, a, b);
  // analyze:allow-throw-safety(adjacency precondition guard; surfaced via first_error)
  if (i < 0) throw std::invalid_argument("probe_between: vertices are not adjacent");
  return probe(a, i);
}

}  // namespace faultroute
