#include "core/probe_context.hpp"

namespace faultroute {

ProbeContext::ProbeContext(const Topology& graph, const EdgeSampler& sampler,
                           VertexId source, RoutingMode mode,
                           std::optional<std::uint64_t> budget)
    : graph_(graph), sampler_(sampler), source_(source), mode_(mode), budget_(budget) {
  if (mode_ == RoutingMode::kLocal) reached_.insert(source_);
}

bool ProbeContext::is_reached(VertexId v) const {
  if (mode_ == RoutingMode::kOracle) return true;  // no restriction to track
  return reached_.contains(v);
}

std::optional<std::uint64_t> ProbeContext::remaining_budget() const {
  if (!budget_) return std::nullopt;
  const std::uint64_t used = distinct_probes();
  return *budget_ > used ? *budget_ - used : 0;
}

bool ProbeContext::probe(VertexId v, int i) {
  const VertexId w = graph_.neighbor(v, i);
  if (mode_ == RoutingMode::kLocal && !reached_.contains(v) && !reached_.contains(w)) {
    throw LocalityViolation("local probe of edge not incident to the reached set");
  }
  ++total_probes_;
  const EdgeKey key = graph_.edge_key(v, i);
  bool open;
  const auto it = memo_.find(key);
  if (it != memo_.end()) {
    open = it->second;
  } else {
    if (budget_ && memo_.size() >= *budget_) {
      throw ProbeBudgetExceeded("probe budget exhausted");
    }
    open = sampler_.is_open(key);
    memo_.emplace(key, open);
  }
  if (open && mode_ == RoutingMode::kLocal) {
    // An open edge incident to the reached set extends it.
    const bool v_reached = reached_.contains(v);
    const bool w_reached = reached_.contains(w);
    if (v_reached && !w_reached) reached_.insert(w);
    if (w_reached && !v_reached) reached_.insert(v);
  }
  return open;
}

bool ProbeContext::probe_between(VertexId a, VertexId b) {
  const int i = edge_index_of(graph_, a, b);
  if (i < 0) throw std::invalid_argument("probe_between: vertices are not adjacent");
  return probe(a, i);
}

}  // namespace faultroute
