#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "graph/topology.hpp"
#include "percolation/edge_sampler.hpp"

namespace faultroute {

/// Whether the router is restricted to local probes (Definition 1 of the
/// paper) or may query arbitrary edges (oracle routing, Section 5).
enum class RoutingMode { kLocal, kOracle };

/// Thrown when a local router probes an edge not incident to its
/// reached-from-source set. The paper's Definition 1: "the first edge it
/// probes is adjacent to u and subsequently it probes only edges to (an end
/// point of) which it has already established a path from u".
class LocalityViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when a probe budget is exhausted. Experiments in exponential
/// regimes use budgets and report the censored fraction.
class ProbeBudgetExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The probing interface a routing algorithm sees, and the referee that
/// scores it.
///
/// A ProbeContext wraps a topology and a percolation environment. Routers
/// call `probe(v, i)` to ask "is the i-th edge of v open?". The context
///  * memoises answers (the world is fixed; re-probing is free of charge in
///    the *distinct* count but still increments the *total* count),
///  * enforces locality in kLocal mode by tracking the set of vertices the
///    router has connected to the source via open probed edges,
///  * enforces an optional probe budget (distinct edges),
///  * reports the complexity statistics that the paper's Definition 2 counts.
class ProbeContext {
 public:
  /// `budget`: maximum number of distinct edges that may be probed
  /// (nullopt = unbounded).
  ProbeContext(const Topology& graph, const EdgeSampler& sampler, VertexId source,
               RoutingMode mode, std::optional<std::uint64_t> budget = std::nullopt);

  ProbeContext(const ProbeContext&) = delete;
  ProbeContext& operator=(const ProbeContext&) = delete;

  /// Probes the i-th incident edge of v. Returns true iff open.
  /// Throws LocalityViolation (kLocal mode, edge not incident to the reached
  /// set) or ProbeBudgetExceeded.
  bool probe(VertexId v, int i);

  /// Convenience: probes the edge {a, b} (first incident index at a whose
  /// neighbor is b). Requires adjacency; linear in degree(a) unless the
  /// caller knows the index.
  bool probe_between(VertexId a, VertexId b);

  [[nodiscard]] const Topology& graph() const { return graph_; }
  [[nodiscard]] VertexId source() const { return source_; }
  [[nodiscard]] RoutingMode mode() const { return mode_; }

  /// Number of distinct edges probed so far — the routing complexity of
  /// Definition 2.
  [[nodiscard]] std::uint64_t distinct_probes() const { return memo_.size(); }

  /// Total probe calls, counting repeats.
  [[nodiscard]] std::uint64_t total_probes() const { return total_probes_; }

  /// True iff the router has established an open path from the source to v
  /// through probed edges (always true for the source itself). Only
  /// maintained in kLocal mode.
  [[nodiscard]] bool is_reached(VertexId v) const;

  /// Remaining budget (nullopt = unbounded).
  [[nodiscard]] std::optional<std::uint64_t> remaining_budget() const;

 private:
  const Topology& graph_;
  const EdgeSampler& sampler_;
  VertexId source_;
  RoutingMode mode_;
  std::optional<std::uint64_t> budget_;
  std::uint64_t total_probes_ = 0;
  std::unordered_map<EdgeKey, bool> memo_;
  std::unordered_set<VertexId> reached_;  // kLocal only
};

}  // namespace faultroute
