#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/topology.hpp"
#include "percolation/edge_sampler.hpp"

namespace faultroute {

class ChannelIndex;
class DistanceOracle;
class FlatAdjacency;

/// Whether the router is restricted to local probes (Definition 1 of the
/// paper) or may query arbitrary edges (oracle routing, Section 5).
enum class RoutingMode { kLocal, kOracle };

/// Thrown when a local router probes an edge not incident to its
/// reached-from-source set. The paper's Definition 1: "the first edge it
/// probes is adjacent to u and subsequently it probes only edges to (an end
/// point of) which it has already established a path from u".
class LocalityViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when a probe budget is exhausted. Experiments in exponential
/// regimes use budgets and report the censored fraction.
class ProbeBudgetExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Pooled per-thread storage for the dense ProbeContext backend.
///
/// A batch routes many messages on one topology, and the per-message probe
/// memo / reached set die with each message. Hash containers pay allocation
/// and hashing for that churn on every probe of every message; the arena
/// replaces them with two flat arrays — per-undirected-edge probe state
/// (indexed by ChannelIndex::edge_id_of) and per-vertex reached marks —
/// that are *epoch-stamped*: a slot is live only if its stamp equals the
/// arena's current epoch, so "clearing" between messages is one integer
/// increment, never a memset or an allocation. Steady-state routing through
/// an arena does zero allocation.
///
/// Lifecycle: create one arena per worker thread (route_all does this in
/// parallel_index_loop's make_body), then construct a ProbeContext per
/// message with a pointer to it. The ProbeContext constructor bumps the
/// epoch, invalidating every slot the previous message stamped. At most one
/// ProbeContext may use an arena at a time (they share the same slots);
/// arenas are not thread-safe and must not be shared across threads.
class ProbeArena {
 public:
  ProbeArena() = default;
  ProbeArena(const ProbeArena&) = delete;
  ProbeArena& operator=(const ProbeArena&) = delete;

 private:
  friend class ProbeContext;

  /// Sizes the arrays for `graph` (grow-only) and starts a fresh epoch. On
  /// the (once per ~4 billion messages) epoch wrap, every stamp array is
  /// zero-filled so stale stamps can never collide.
  void begin_message(const Topology& graph);

  const ChannelIndex* channels_ = nullptr;
  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> edge_epoch_;    // per undirected edge id
  std::vector<std::uint8_t> edge_open_;      // valid iff edge_epoch_ == epoch_
  std::vector<std::uint32_t> vertex_epoch_;  // reached iff == epoch_ (kLocal)
};

/// The probing interface a routing algorithm sees, and the referee that
/// scores it.
///
/// A ProbeContext wraps a topology and a percolation environment. Routers
/// call `probe(v, i)` to ask "is the i-th edge of v open?". The context
///  * memoises answers (the world is fixed; re-probing is free of charge in
///    the *distinct* count but still increments the *total* count),
///  * enforces locality in kLocal mode by tracking the set of vertices the
///    router has connected to the source via open probed edges,
///  * enforces an optional probe budget (distinct edges),
///  * reports the complexity statistics that the paper's Definition 2 counts.
///
/// Two interchangeable backends hold the memo and the reached set:
///  * hash (default, `arena == nullptr`): per-context unordered containers
///    keyed by EdgeKey/VertexId — self-contained, right for one-off
///    contexts;
///  * dense (`arena != nullptr`): epoch-stamped flat arrays indexed by the
///    topology's ChannelIndex edge ids and by vertex id, pooled in the
///    caller's ProbeArena — the traffic engine's hot path, zero allocation
///    per message.
/// Every observable (probe answers, distinct/total counts, reach, budget
/// and locality enforcement) is bit-identical across backends; the golden
/// and equivalence suites hold the whole traffic pipeline to that.
class ProbeContext {
 public:
  /// `budget`: maximum number of distinct edges that may be probed
  /// (nullopt = unbounded). `arena`: selects the dense backend (see class
  /// comment); the arena must outlive the context and serve only it until
  /// the next ProbeContext takes it over. `flat`: optional CSR adjacency
  /// snapshot of `graph` (graph/flat_adjacency.hpp); when given, probes
  /// resolve neighbor / edge key / edge id with array loads instead of
  /// virtual dispatch — a pure representation change, observable-identical
  /// to the implicit path, composing with either probe-state backend. Must
  /// be a snapshot of `graph` and outlive the context. `oracle`: optional
  /// cached fault-free DistanceOracle for `graph` (graph/distance_oracle
  /// .hpp); metric routers fetch per-target distance columns through
  /// target_distances() below. Purely an accelerator for graph.distance —
  /// column values are identical, so results never depend on its presence.
  ProbeContext(const Topology& graph, const EdgeSampler& sampler, VertexId source,
               RoutingMode mode, std::optional<std::uint64_t> budget = std::nullopt,
               ProbeArena* arena = nullptr, const FlatAdjacency* flat = nullptr,
               const DistanceOracle* oracle = nullptr);

  ProbeContext(const ProbeContext&) = delete;
  ProbeContext& operator=(const ProbeContext&) = delete;

  /// Probes the i-th incident edge of v. Returns true iff open.
  /// Throws LocalityViolation (kLocal mode, edge not incident to the reached
  /// set) or ProbeBudgetExceeded.
  bool probe(VertexId v, int i);

  /// Convenience: probes the edge {a, b} (first incident index at a whose
  /// neighbor is b). Requires adjacency; linear in degree(a) unless the
  /// caller knows the index.
  bool probe_between(VertexId a, VertexId b);

  [[nodiscard]] const Topology& graph() const { return graph_; }
  [[nodiscard]] VertexId source() const { return source_; }
  [[nodiscard]] RoutingMode mode() const { return mode_; }

  /// The CSR snapshot this context probes through, or nullptr on the
  /// implicit path. Routers use it to iterate neighbor rows without virtual
  /// dispatch (wrap it in an AdjacencyView to stay backend-agnostic).
  [[nodiscard]] const FlatAdjacency* flat_adjacency() const { return flat_; }

  /// The memoised fault-free distance column for `target` (entry x =
  /// graph().distance(x, target), unreachable = num_vertices()), or nullptr
  /// when no oracle is attached or the column is not cached — fall back to
  /// graph().distance, which returns the same values (this accessor can
  /// change speed, never routing results).
  [[nodiscard]] const std::uint32_t* target_distances(VertexId target) const;

  /// Number of distinct edges probed so far — the routing complexity of
  /// Definition 2.
  [[nodiscard]] std::uint64_t distinct_probes() const { return distinct_probes_; }

  /// Total probe calls, counting repeats.
  [[nodiscard]] std::uint64_t total_probes() const { return total_probes_; }

  /// Search-frontier expansions (vertex pops) the router reported via
  /// note_expansion() — a measure of BFS work orthogonal to probe counts.
  /// Purely observational: never affects probe answers or enforcement.
  [[nodiscard]] std::uint64_t expansions() const { return expansions_; }
  void note_expansion() { ++expansions_; }

  /// True iff the router has established an open path from the source to v
  /// through probed edges (always true for the source itself). Only
  /// maintained in kLocal mode.
  [[nodiscard]] bool is_reached(VertexId v) const;

  /// Remaining budget (nullopt = unbounded).
  [[nodiscard]] std::optional<std::uint64_t> remaining_budget() const;

 private:
  [[nodiscard]] bool reached_contains(VertexId v) const;
  void reached_insert(VertexId v);
  /// The probe bookkeeping (locality, budget, memo, reached-set growth),
  /// shared by the flat and implicit paths and parameterized only on how
  /// neighbor / edge id / edge key are resolved — one body, so the two
  /// adjacency backends cannot drift.
  template <typename Access>
  bool probe_with(const Access& access, VertexId v, int i);

  const Topology& graph_;
  const EdgeSampler& sampler_;
  VertexId source_;
  RoutingMode mode_;
  std::optional<std::uint64_t> budget_;
  std::uint64_t total_probes_ = 0;
  std::uint64_t distinct_probes_ = 0;
  std::uint64_t expansions_ = 0;

  // Dense backend (arena_ != nullptr): pooled arrays + the channel index.
  ProbeArena* arena_ = nullptr;
  const ChannelIndex* channels_ = nullptr;
  // Flat adjacency snapshot (nullptr = implicit virtual path).
  const FlatAdjacency* flat_ = nullptr;
  // Cached distance oracle (nullptr = metric routers call graph.distance).
  const DistanceOracle* oracle_ = nullptr;

  // Hash backend (arena_ == nullptr).
  std::unordered_map<EdgeKey, bool> memo_;
  std::unordered_set<VertexId> reached_;  // kLocal only
};

}  // namespace faultroute
