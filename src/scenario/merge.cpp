#include "scenario/merge.hpp"

// analyze:allow-file-throw-safety(merge is an offline post-processing step; incomplete or inconsistent shard sets must be refused loudly)

#include <cstdlib>
#include <map>
#include <stdexcept>

namespace faultroute::scenario {

namespace {

[[noreturn]] void fail(std::size_t shard, const std::string& why) {
  throw std::runtime_error("merge: shard " + std::to_string(shard + 1) + ": " + why);
}

/// Newline-terminated lines of one shard report (without the newlines).
/// Reports always end in '\n'; trailing bytes without one mean the shard
/// process died mid-write.
std::vector<std::string> split_lines(std::size_t shard, const std::string& text) {
  if (text.empty()) fail(shard, "report is empty");
  if (text.back() != '\n') fail(shard, "report does not end in a newline (truncated?)");
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const auto nl = text.find('\n', pos);
    lines.push_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

/// Strict digit-run parse of lines[begin..) — merge inputs are
/// machine-written, so anything unexpected is an error, not a shrug.
std::uint64_t parse_digits(std::size_t shard, const std::string& line, std::size_t begin,
                           std::size_t end, const std::string& what) {
  if (begin >= end) fail(shard, "cannot parse " + what + " in line '" + line + "'");
  std::uint64_t value = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const char c = line[i];
    if (c < '0' || c > '9') fail(shard, "cannot parse " + what + " in line '" + line + "'");
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

/// Cell index from a JSONL cell line: `{"type":"cell","cell":<N>,...`.
std::uint64_t jsonl_cell_index(std::size_t shard, const std::string& line) {
  constexpr const char kPrefix[] = "{\"type\":\"cell\",\"cell\":";
  constexpr std::size_t kPrefixLen = sizeof kPrefix - 1;
  if (line.compare(0, kPrefixLen, kPrefix) != 0) {
    fail(shard, "expected a cell line, got '" + line + "'");
  }
  const auto end = line.find_first_not_of("0123456789", kPrefixLen);
  return parse_digits(shard, line, kPrefixLen, end == std::string::npos ? line.size() : end,
                      "cell index");
}

/// Total cell count from the JSONL header's trailing `,"cells":<N>}`.
std::uint64_t jsonl_total_cells(std::size_t shard, const std::string& header) {
  const auto key = header.rfind(",\"cells\":");
  if (key == std::string::npos || header.empty() || header.back() != '}') {
    fail(shard, "header has no trailing \"cells\" count: '" + header + "'");
  }
  return parse_digits(shard, header, key + 9, header.size() - 1, "header cell count");
}

/// Cell index from a CSV row: third comma-separated field
/// (schema,scenario,cell,...), RFC-4180 quote-aware because the scenario
/// name may be quoted and contain commas.
std::uint64_t csv_cell_index(std::size_t shard, const std::string& line) {
  std::size_t field = 0;
  std::size_t pos = 0;
  while (field < 2) {
    if (pos < line.size() && line[pos] == '"') {
      ++pos;
      while (pos < line.size()) {
        if (line[pos] == '"') {
          if (pos + 1 < line.size() && line[pos + 1] == '"') {
            pos += 2;  // escaped quote
            continue;
          }
          ++pos;
          break;
        }
        ++pos;
      }
    } else {
      while (pos < line.size() && line[pos] != ',') ++pos;
    }
    if (pos >= line.size() || line[pos] != ',') {
      fail(shard, "row has fewer than 3 fields: '" + line + "'");
    }
    ++pos;
    ++field;
  }
  auto end = line.find(',', pos);
  if (end == std::string::npos) end = line.size();
  return parse_digits(shard, line, pos, end, "cell index");
}

void insert_cell(std::map<std::uint64_t, std::string>& cells, std::size_t shard,
                 std::uint64_t index, std::string line) {
  if (!cells.emplace(index, std::move(line)).second) {
    fail(shard, "cell " + std::to_string(index) +
                    " already merged from another shard (overlapping shard args?)");
  }
}

}  // namespace

MergeStats merge_reports(const std::vector<std::string>& shard_reports, std::ostream& out) {
  if (shard_reports.empty()) {
    throw std::runtime_error("merge: no shard reports given");
  }

  MergeStats stats;
  stats.shards = shard_reports.size();

  std::string header;
  std::map<std::uint64_t, std::string> cells;  // index -> verbatim line
  std::uint64_t jsonl_total = 0;

  for (std::size_t shard = 0; shard < shard_reports.size(); ++shard) {
    const auto lines = split_lines(shard, shard_reports[shard]);
    if (shard == 0) {
      if (lines[0].compare(0, 18, "{\"type\":\"header\",\"") == 0) {
        stats.format = "jsonl";
      } else if (lines[0].compare(0, 16, "schema,scenario,") == 0) {
        stats.format = "csv";
      } else {
        fail(shard, "unrecognized report header '" + lines[0] + "'");
      }
      header = lines[0];
      if (stats.format == "jsonl") jsonl_total = jsonl_total_cells(shard, header);
    } else if (lines[0] != header) {
      fail(shard, "header differs from shard 1's — shards must come from the same spec "
                  "and build (expected '" + header + "', found '" + lines[0] + "')");
    }

    if (stats.format == "jsonl") {
      if (lines.size() < 2) fail(shard, "report has no footer (truncated?)");
      const std::string& footer = lines.back();
      constexpr const char kFooterPrefix[] = "{\"type\":\"footer\",\"cells_reported\":";
      constexpr std::size_t kFooterLen = sizeof kFooterPrefix - 1;
      if (footer.compare(0, kFooterLen, kFooterPrefix) != 0 || footer.back() != '}') {
        fail(shard, "last line is not a footer (truncated?): '" + footer + "'");
      }
      const std::uint64_t reported =
          parse_digits(shard, footer, kFooterLen, footer.size() - 1, "footer cell count");
      const std::uint64_t cell_lines = lines.size() - 2;
      if (reported != cell_lines) {
        fail(shard, "footer claims " + std::to_string(reported) + " cells but " +
                        std::to_string(cell_lines) + " cell lines are present (truncated?)");
      }
      for (std::size_t i = 1; i + 1 < lines.size(); ++i) {
        insert_cell(cells, shard, jsonl_cell_index(shard, lines[i]), lines[i]);
      }
    } else {
      for (std::size_t i = 1; i < lines.size(); ++i) {
        insert_cell(cells, shard, csv_cell_index(shard, lines[i]), lines[i]);
      }
    }
  }

  // Completeness: exactly cells 0..total-1. For CSV (no declared total) the
  // indices themselves must form that contiguous range.
  const std::uint64_t total =
      stats.format == "jsonl" ? jsonl_total : static_cast<std::uint64_t>(cells.size());
  for (std::uint64_t expect = 0; const auto& [index, line] : cells) {
    if (index != expect) {
      throw std::runtime_error("merge: cell " + std::to_string(expect) +
                               " missing from every shard (incomplete shard set?)");
    }
    ++expect;
  }
  if (cells.size() != total) {
    throw std::runtime_error("merge: shards cover " + std::to_string(cells.size()) +
                             " cells but the header declares " + std::to_string(total) +
                             " (incomplete shard set?)");
  }

  out << header << '\n';
  for (const auto& [index, line] : cells) out << line << '\n';
  if (stats.format == "jsonl") {
    out << "{\"type\":\"footer\",\"cells_reported\":" << total << "}\n";
  }
  out.flush();

  stats.cells = total;
  return stats;
}

}  // namespace faultroute::scenario
