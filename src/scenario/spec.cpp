#include "scenario/spec.hpp"

#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "sim/strict_parse.hpp"
#include "sim/sweep.hpp"

namespace faultroute::scenario {

namespace {

std::string trim(const std::string& text) {
  const auto first = text.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const auto last = text.find_last_not_of(" \t\r");
  return text.substr(first, last - first + 1);
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::istringstream stream(text);
  std::string token;
  while (std::getline(stream, token, sep)) parts.push_back(token);
  return parts;
}

[[noreturn]] void fail(const std::string& key, const std::string& why) {
  // analyze:allow-throw-safety(spec validation runs before any parallel phase)
  throw std::invalid_argument("scenario key '" + key + "': " + why);
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  const auto parsed = sim::strict_u64(trim(value));
  if (!parsed) fail(key, "expected a non-negative integer, got '" + value + "'");
  return *parsed;
}

double parse_f64(const std::string& key, const std::string& value) {
  const auto parsed = sim::strict_f64(trim(value));
  if (!parsed) fail(key, "expected a number, got '" + value + "'");
  return *parsed;
}

std::vector<std::string> parse_list(const std::string& key, const std::string& value) {
  std::vector<std::string> items;
  for (const auto& part : split(value, ',')) {
    const std::string item = trim(part);
    if (item.empty()) fail(key, "empty element in list '" + value + "'");
    items.push_back(item);
  }
  if (items.empty()) fail(key, "expected at least one element");
  return items;
}

/// `p` accepts either a comma list of probabilities or one lo:hi:points
/// linspace range (range bounds are validated later with everything else).
std::vector<double> parse_p_values(const std::string& key, const std::string& value) {
  if (value.find(':') != std::string::npos) {
    const auto parts = split(value, ':');
    if (parts.size() != 3) fail(key, "range must be lo:hi:points, got '" + value + "'");
    const double lo = parse_f64(key, parts[0]);
    const double hi = parse_f64(key, parts[1]);
    const std::uint64_t points = parse_u64(key, parts[2]);
    if (points < 2) fail(key, "range needs >= 2 points, got '" + value + "'");
    if (points > 10000) fail(key, "range capped at 10000 points, got '" + value + "'");
    if (!(lo <= hi)) fail(key, "range needs lo <= hi, got '" + value + "'");
    return sim::linspace(lo, hi, static_cast<int>(points));
  }
  std::vector<double> values;
  for (const auto& item : parse_list(key, value)) values.push_back(parse_f64(key, item));
  return values;
}

}  // namespace

void apply_scenario_assignments(ScenarioSpec& spec, const std::string& text) {
  std::set<std::string> assigned;
  std::vector<std::string> statements;
  for (auto line : split(text, '\n')) {
    // Comments run to end of line, so strip them before ';'-splitting.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    for (const auto& stmt : split(line, ';')) statements.push_back(stmt);
  }
  for (const auto& raw : statements) {
    const std::string statement = trim(raw);
    if (statement.empty()) continue;

    const auto eq = statement.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("scenario: expected 'key = value', got '" + statement + "'");
    }
    const std::string key = trim(statement.substr(0, eq));
    const std::string value = trim(statement.substr(eq + 1));
    if (key.empty()) throw std::invalid_argument("scenario: missing key in '" + statement + "'");
    if (value.empty()) fail(key, "missing value");
    if (!assigned.insert(key).second) fail(key, "assigned twice in one spec");

    if (key == "name") {
      spec.name = value;
    } else if (key == "topology") {
      spec.topologies = parse_list(key, value);
    } else if (key == "router") {
      spec.routers = parse_list(key, value);
    } else if (key == "workload") {
      spec.workloads = parse_list(key, value);
    } else if (key == "p") {
      spec.p_values = parse_p_values(key, value);
    } else if (key == "messages") {
      spec.messages = parse_u64(key, value);
    } else if (key == "trials") {
      spec.trials = parse_u64(key, value);
    } else if (key == "seed") {
      spec.seed = parse_u64(key, value);
    } else if (key == "threads") {
      const std::uint64_t threads = parse_u64(key, value);
      if (threads > 4096) fail(key, "more than 4096 threads is surely a typo");
      spec.threads = static_cast<unsigned>(threads);
    } else if (key == "capacity") {
      spec.edge_capacity = parse_u64(key, value);
    } else if (key == "budget") {
      spec.probe_budget = parse_u64(key, value);
    } else if (key == "max_steps") {
      spec.max_steps = parse_u64(key, value);
    } else if (key == "adjacency") {
      spec.adjacency = value;
    } else if (key == "frontier") {
      spec.frontier = value;
    } else if (key == "snapshot_dir") {
      spec.snapshot_dir = value;
    } else {
      throw std::invalid_argument(
          "scenario: unknown key '" + key +
          "' (known: name, topology, router, workload, p, messages, trials, seed, threads, "
          "capacity, budget, max_steps, adjacency, frontier, snapshot_dir)");
    }
  }
}

void validate_scenario(const ScenarioSpec& spec) {
  if (spec.topologies.empty()) fail("topology", "required (no topology given)");
  if (spec.routers.empty()) fail("router", "needs at least one router");
  if (spec.workloads.empty()) fail("workload", "needs at least one workload");
  if (spec.p_values.empty()) fail("p", "needs at least one value");
  for (const double p : spec.p_values) {
    if (!(p >= 0.0 && p <= 1.0)) {
      fail("p", "survival probability must be in [0, 1], got " + std::to_string(p));
    }
  }
  if (spec.messages == 0) fail("messages", "must be >= 1");
  if (spec.trials == 0) fail("trials", "must be >= 1");
  if (spec.edge_capacity == 0) fail("capacity", "must be >= 1");
  if (spec.adjacency != "flat" && spec.adjacency != "implicit" && spec.adjacency != "auto") {
    fail("adjacency", "must be 'flat', 'implicit', or 'auto', got '" + spec.adjacency + "'");
  }
  if (spec.frontier != "batch" && spec.frontier != "permsg") {
    fail("frontier", "must be 'batch' or 'permsg', got '" + spec.frontier + "'");
  }
  // The runner buffers one CellResult per cell (a few hundred bytes each) to
  // report in deterministic order, so cap the cross-product well below
  // memory trouble; larger sweeps should be split across scenario files.
  // Multiply incrementally so absurd axis sizes cannot wrap uint64 and
  // sneak past the cap.
  constexpr std::uint64_t kMaxCells = 1u << 20;
  std::uint64_t cells = 1;
  for (const std::uint64_t axis : {static_cast<std::uint64_t>(spec.topologies.size()),
                                   static_cast<std::uint64_t>(spec.p_values.size()),
                                   static_cast<std::uint64_t>(spec.routers.size()),
                                   static_cast<std::uint64_t>(spec.workloads.size()),
                                   spec.trials}) {
    if (axis > kMaxCells / cells) {
      // analyze:allow-throw-safety(spec validation runs before any parallel phase)
      throw std::invalid_argument("scenario: sweep cross-product exceeds the supported " +
                                  std::to_string(kMaxCells) + " cells");
    }
    cells *= axis;
  }
}

ScenarioSpec parse_scenario(const std::string& text) {
  ScenarioSpec spec;
  apply_scenario_assignments(spec, text);
  validate_scenario(spec);
  return spec;
}

ScenarioSpec load_scenario_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot read scenario file '" + path + "'");
  std::ostringstream buffer;
  buffer << file.rdbuf();

  ScenarioSpec spec;
  // Default the report label to the file stem; an explicit `name =` wins.
  auto stem = path;
  const auto slash = stem.find_last_of("/\\");
  if (slash != std::string::npos) stem = stem.substr(slash + 1);
  const auto dot = stem.find_last_of('.');
  if (dot != std::string::npos && dot > 0) stem.resize(dot);
  if (!stem.empty()) spec.name = stem;

  apply_scenario_assignments(spec, buffer.str());
  validate_scenario(spec);
  return spec;
}

}  // namespace faultroute::scenario
