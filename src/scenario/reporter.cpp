#include "scenario/reporter.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "obs/build_info.hpp"

namespace faultroute::scenario {

namespace {

/// Shortest round-trippable-enough rendering; deterministic for a given
/// value, so byte-identical reruns only need deterministic values.
std::string fmt(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.10g", value);
  return buffer;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);  // analyze:allow-hot-alloc(reached only via name-based dispatch over-approximation of Marks::begin; emission is off the routing path)
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_str(const std::string& text) { return '"' + json_escape(text) + '"'; }

/// JSON has no NaN/Inf literals; non-finite aggregates (which a pathological
/// config could produce) become null rather than corrupting the stream.
std::string json_num(double value) { return std::isfinite(value) ? fmt(value) : "null"; }

std::string json_list(const std::vector<std::string>& items) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ',';
    out += json_str(items[i]);
  }
  return out + ']';
}

std::string json_list(const std::vector<double>& items) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ',';
    out += json_num(items[i]);
  }
  return out + ']';
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  return out + '"';
}

}  // namespace

void JsonLinesReporter::begin(const ScenarioSpec& spec) {
  // `threads` is deliberately absent: results are independent of it, and the
  // header must be too, so reports stay diffable across machines. Provenance
  // identifies the *build* (schema v3) — reruns of one binary still match
  // byte-for-byte; cross-build diffs show the hash change in the header
  // while every cell line stays comparable.
  out_ << "{\"type\":\"header\",\"schema\":\"" << kSchemaName
       << "\",\"schema_version\":" << kSchemaVersion
       << ",\"provenance\":" << obs::provenance_json("faultroute scenario")
       << ",\"name\":" << json_str(spec.name)
       << ",\"topologies\":" << json_list(spec.topologies)
       << ",\"routers\":" << json_list(spec.routers)
       << ",\"workloads\":" << json_list(spec.workloads)
       << ",\"p\":" << json_list(spec.p_values) << ",\"messages\":" << spec.messages
       << ",\"trials\":" << spec.trials << ",\"seed\":" << spec.seed
       << ",\"capacity\":" << spec.edge_capacity << ",\"budget\":" << spec.probe_budget
       << ",\"max_steps\":" << spec.max_steps << ",\"cells\":" << spec.num_cells() << "}\n";
  cells_reported_ = 0;
}

// analyze:det-root(scenario cell emission: byte-identical across reruns and threads)
void JsonLinesReporter::report(const CellResult& cell) {
  out_ << "{\"type\":\"cell\",\"cell\":" << cell.cell
       << ",\"topology\":" << json_str(cell.topology)
       << ",\"topology_name\":" << json_str(cell.topology_name)
       << ",\"vertices\":" << cell.vertices << ",\"p\":" << json_num(cell.p)
       << ",\"router\":" << json_str(cell.router)
       << ",\"workload\":" << json_str(cell.workload) << ",\"trial\":" << cell.trial
       << ",\"env_seed\":" << cell.env_seed << ",\"workload_seed\":" << cell.workload_seed
       << ",\"messages\":" << cell.messages << ",\"routed\":" << cell.routed
       << ",\"failed_routing\":" << cell.failed_routing << ",\"censored\":" << cell.censored
       << ",\"invalid_paths\":" << cell.invalid_paths << ",\"delivered\":" << cell.delivered
       << ",\"stranded\":" << cell.stranded
       << ",\"total_distinct_probes\":" << cell.total_distinct_probes
       << ",\"unique_edges_probed\":" << cell.unique_edges_probed
       << ",\"cache_hits\":" << cell.cache_hits << ",\"cache_misses\":" << cell.cache_misses
       << ",\"probe_amortization\":" << json_num(cell.probe_amortization)
       << ",\"max_edge_load\":" << cell.max_edge_load
       << ",\"mean_edge_load\":" << json_num(cell.mean_edge_load)
       << ",\"edges_used\":" << cell.edges_used << ",\"makespan\":" << cell.makespan
       << ",\"mean_queueing_delay\":" << json_num(cell.mean_queueing_delay)
       << ",\"max_queueing_delay\":" << cell.max_queueing_delay
       << ",\"mean_path_edges\":" << json_num(cell.mean_path_edges)
       << ",\"throughput\":" << json_num(cell.throughput)
       << ",\"sim_steps\":" << cell.sim_steps
       << ",\"admission_events\":" << cell.admission_events
       << ",\"transmissions\":" << cell.transmissions
       << ",\"peak_active_channels\":" << cell.peak_active_channels
       << ",\"channels\":" << cell.channels;
  if (cell.has_timings) {
    out_ << ",\"routing_ms\":" << json_num(cell.routing_ms)
         << ",\"delivery_ms\":" << json_num(cell.delivery_ms);
  }
  out_ << "}\n";
  ++cells_reported_;
}

void JsonLinesReporter::end() {
  // The footer marks a complete, untruncated report.
  out_ << "{\"type\":\"footer\",\"cells_reported\":" << cells_reported_ << "}\n";
  out_.flush();
}

void CsvReporter::begin(const ScenarioSpec& spec) {
  scenario_name_ = spec.name;
  out_ << "schema,scenario,cell,topology,topology_name,vertices,p,router,workload,trial,"
          "env_seed,workload_seed,messages,routed,failed_routing,censored,invalid_paths,"
          "delivered,stranded,total_distinct_probes,unique_edges_probed,cache_hits,"
          "cache_misses,probe_amortization,"
          "max_edge_load,mean_edge_load,edges_used,makespan,mean_queueing_delay,"
          "max_queueing_delay,mean_path_edges,throughput,sim_steps,admission_events,"
          "transmissions,peak_active_channels,channels\n";
}

void CsvReporter::report(const CellResult& cell) {
  out_ << kSchemaName << ',' << csv_escape(scenario_name_) << ',' << cell.cell << ','
       << csv_escape(cell.topology) << ',' << csv_escape(cell.topology_name) << ','
       << cell.vertices << ',' << fmt(cell.p) << ',' << csv_escape(cell.router) << ','
       << csv_escape(cell.workload) << ',' << cell.trial << ',' << cell.env_seed << ','
       << cell.workload_seed << ',' << cell.messages << ',' << cell.routed << ','
       << cell.failed_routing << ',' << cell.censored << ',' << cell.invalid_paths << ','
       << cell.delivered << ',' << cell.stranded << ',' << cell.total_distinct_probes << ','
       << cell.unique_edges_probed << ',' << cell.cache_hits << ',' << cell.cache_misses
       << ',' << fmt(cell.probe_amortization) << ','
       << cell.max_edge_load << ',' << fmt(cell.mean_edge_load) << ',' << cell.edges_used
       << ',' << cell.makespan << ',' << fmt(cell.mean_queueing_delay) << ','
       << cell.max_queueing_delay << ',' << fmt(cell.mean_path_edges) << ','
       << fmt(cell.throughput) << ',' << cell.sim_steps << ',' << cell.admission_events
       << ',' << cell.transmissions << ',' << cell.peak_active_channels << ','
       << cell.channels << '\n';
}

void CsvReporter::end() { out_.flush(); }

std::unique_ptr<Reporter> make_reporter(const std::string& format, std::ostream& out) {
  if (format == "jsonl") return std::make_unique<JsonLinesReporter>(out);
  if (format == "csv") return std::make_unique<CsvReporter>(out);
  throw std::invalid_argument("unknown report format '" + format + "' (known: jsonl, csv)");
}

}  // namespace faultroute::scenario
