#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace faultroute::scenario {

/// A declarative scenario: the cross-product of topology × p × router ×
/// workload sweeps, run for `trials` independent environments per cell.
///
/// Specs are written in a small `key = value` grammar (one assignment per
/// line or `;`-separated, `#` comments to end of line) and parsed by
/// `parse_scenario` / `load_scenario_file`. The full grammar reference is
/// `docs/SCENARIOS.md`; the sweep axes reuse the registry string specs of
/// `sim/registry.hpp`.
///
/// Keys (sweep axes take comma-separated lists):
///   name      = hypercube-phase          # report label (default "scenario")
///   topology  = hypercube:10,torus:2:32  # required, >= 1 registry spec
///   router    = landmark,greedy          # default landmark
///   workload  = permutation,poisson:2    # default permutation
///   p         = 0.25,0.5  |  0.2:0.8:7   # list or lo:hi:points linspace
///   messages  = 1024                     # messages per cell      (>= 1)
///   trials    = 3                        # environments per cell  (>= 1)
///   seed      = 2005                     # base seed of the whole run
///   threads   = 0                        # worker threads over cells (0 = hw)
///   capacity  = 1                        # edge capacity, msgs/step (>= 1)
///   budget    = 0                        # probe budget per message (0 = off)
///   max_steps = 0                        # delivery-step safety cap (0 = off)
///   adjacency = auto                     # flat | implicit | auto (CSR snapshot A/B)
///   frontier  = batch                    # batch | permsg (routing-phase A/B)
///   snapshot_dir = snapshots             # mmap CSR snapshots from this dir (default off)
struct ScenarioSpec {
  std::string name = "scenario";
  std::vector<std::string> topologies;
  std::vector<std::string> routers = {"landmark"};
  std::vector<std::string> workloads = {"permutation"};
  std::vector<double> p_values = {0.5};
  std::uint64_t messages = 1024;
  std::uint64_t trials = 1;
  std::uint64_t seed = 2005;
  unsigned threads = 0;
  std::uint64_t edge_capacity = 1;
  std::uint64_t probe_budget = 0;  // 0 = unbounded
  std::uint64_t max_steps = 0;     // 0 = unbounded
  /// Adjacency backend of every cell's routing phase ("flat", "implicit",
  /// or "auto" — see graph/flat_adjacency.hpp). Results are bit-identical
  /// across backends; this key exists for A/B timing and differential runs.
  std::string adjacency = "auto";
  /// Routing-phase frontier scheduling of every cell ("batch" or "permsg" —
  /// see FrontierMode in traffic/traffic_engine.hpp). Results are
  /// bit-identical across modes; the key exists for the same A/B purposes.
  std::string frontier = "batch";
  /// When non-empty, the runner resolves each topology's CSR adjacency from
  /// this directory of on-disk snapshots (graph/snapshot.hpp, built with
  /// `faultroute snapshot build`): present snapshots are mmap'd instead of
  /// materialized, absent ones fall back to the normal build, corrupt ones
  /// fail the run. Purely an acceleration — results and report bytes are
  /// identical with or without it, which is why the key is absent from the
  /// report header and from checkpoint fingerprints.
  std::string snapshot_dir;

  /// Cells of the cross-product (topologies × p × routers × workloads ×
  /// trials). Cells are indexed row-major in that key order, trials fastest;
  /// the index is the basis of the per-cell seeding contract (see runner.hpp).
  /// Only meaningful on a validated spec — validate_scenario caps the
  /// product (overflow-checked) at 2^20 cells.
  [[nodiscard]] std::uint64_t num_cells() const {
    return topologies.size() * p_values.size() * routers.size() * workloads.size() * trials;
  }
};

/// Applies the assignments in `text` on top of `spec` without validating the
/// result (so a file can be loaded first and overrides applied on top).
/// Throws std::invalid_argument on syntax errors, unknown keys, malformed
/// values, or a key assigned twice within one `text`.
void apply_scenario_assignments(ScenarioSpec& spec, const std::string& text);

/// Checks cross-field invariants: at least one topology, every p in [0, 1],
/// messages/trials/capacity >= 1, and a cell count that fits the reporting
/// machinery. Throws std::invalid_argument with the offending key on failure.
/// Registry specs (topology/router/workload strings) are validated by the
/// runner, which constructs them before any cell executes.
void validate_scenario(const ScenarioSpec& spec);

/// parse + validate convenience for a complete spec text.
[[nodiscard]] ScenarioSpec parse_scenario(const std::string& text);

/// Reads `path` and parses its contents; `name` defaults to the file stem
/// when the spec does not set it. Throws std::runtime_error if the file
/// cannot be read.
[[nodiscard]] ScenarioSpec load_scenario_file(const std::string& path);

}  // namespace faultroute::scenario
