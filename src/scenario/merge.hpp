#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace faultroute::scenario {

/// Shard-report merging — the other half of `faultroute scenario --shard k/n`.
///
/// A sharded run partitions the cell grid by `cell % n == k-1`; each shard
/// process emits an ordinary report (JSONL or CSV) containing only its own
/// cells. `merge_reports` stitches the n shard reports back into the byte-for-
/// byte report a single-process run of the same spec would have produced
/// (tests/test_checkpoint.cpp pins this equality). It works on report *bytes*,
/// not re-parsed values: cell lines pass through verbatim, so nothing can be
/// re-rendered differently.
///
/// Validation is strict because a merged report claims completeness:
///   - every shard must end in a newline (a missing one means truncation);
///   - shard headers must be byte-identical (same spec, same build);
///   - JSONL footers must match each shard's own cell-line count;
///   - the union of cells must be exactly 0..cells-1 with no duplicates
///     (for JSONL, `cells` comes from the header; for CSV, from the union).
/// Any violation throws std::runtime_error naming the shard and the problem.

struct MergeStats {
  std::string format;   ///< "jsonl" or "csv", auto-detected from the header
  std::uint64_t shards = 0;
  std::uint64_t cells = 0;
};

/// Merges shard report texts into `out`. `shard_reports[i]` is the full text
/// of shard i+1's report; order does not matter. Returns what was merged.
MergeStats merge_reports(const std::vector<std::string>& shard_reports, std::ostream& out);

}  // namespace faultroute::scenario
