#include "scenario/checkpoint.hpp"

// analyze:allow-file-throw-safety(checkpoint load/validate is cold resume setup; refusing a mismatched or corrupt journal must throw before any cell runs)

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "obs/schemas.hpp"

namespace faultroute::scenario {

namespace {

inline constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a_bytes(const std::string& text, std::uint64_t h) {
  for (const unsigned char c : text) h = (h ^ c) * kFnvPrime;
  return h;
}

/// Exact, locale-independent-enough (C hexfloat) double rendering; the
/// journal must round-trip values bit-for-bit so replayed cells re-render
/// identically under the reporter's %.10g.
std::string fmt_f64(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%a", value);
  return buffer;
}

std::string fmt_u64(std::uint64_t value) { return std::to_string(value); }

/// Journal string escaping: the four bytes that would break the
/// tab-separated line framing.
std::string escape(const std::string& text) {
  std::string out;
  // analyze:allow-hot-alloc(journal encoding runs once per completed cell, outside the routing/delivery loops, dominated by the file append)
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

[[noreturn]] void bad_line(const std::string& why) {
  throw std::runtime_error("malformed checkpoint cell line: " + why);
}

std::string unescape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\') {
      out += text[i];
      continue;
    }
    if (i + 1 >= text.size()) bad_line("dangling escape");
    switch (text[++i]) {
      case '\\': out += '\\'; break;
      case 't': out += '\t'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      default: bad_line("unknown escape '\\" + std::string(1, text[i]) + "'");
    }
  }
  return out;
}

std::uint64_t parse_u64(const std::string& field) {
  if (field.empty()) bad_line("empty integer field");
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(field.c_str(), &end, 10);
  if (errno != 0 || end != field.c_str() + field.size()) {
    bad_line("expected an integer, got '" + field + "'");
  }
  return value;
}

double parse_f64(const std::string& field) {
  if (field.empty()) bad_line("empty float field");
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(field.c_str(), &end);
  if (end != field.c_str() + field.size()) {
    bad_line("expected a hexfloat, got '" + field + "'");
  }
  return value;
}

bool parse_bool(const std::string& field) {
  if (field == "0") return false;
  if (field == "1") return true;
  bad_line("expected 0 or 1, got '" + field + "'");
}

/// The journal's header line for `spec` — schema tag, spec fingerprint,
/// and cell count. Byte-compared on resume.
std::string header_line(const ScenarioSpec& spec) {
  char buffer[128];
  std::snprintf(buffer, sizeof buffer, "%s\tfingerprint=%016llx\tcells=%llu",
                obs::schemas::kCheckpoint,
                static_cast<unsigned long long>(spec_fingerprint(spec)),
                static_cast<unsigned long long>(spec.num_cells()));
  return buffer;
}

}  // namespace

std::uint64_t spec_fingerprint(const ScenarioSpec& spec) {
  // Exactly the fields cell values depend on, in a fixed order with
  // unambiguous framing. name/threads/adjacency/frontier/snapshot_dir are
  // deliberately absent: they never change results, so resuming under a
  // different thread count or adjacency backend is legal.
  std::ostringstream buffer;
  const char sep = '\x1f';
  for (const auto& t : spec.topologies) buffer << 't' << sep << t << sep;
  for (const auto& r : spec.routers) buffer << 'r' << sep << r << sep;
  for (const auto& w : spec.workloads) buffer << 'w' << sep << w << sep;
  for (const double p : spec.p_values) buffer << 'p' << sep << fmt_f64(p) << sep;
  buffer << spec.messages << sep << spec.trials << sep << spec.seed << sep
         << spec.edge_capacity << sep << spec.probe_budget << sep << spec.max_steps;
  return fnv1a_bytes(buffer.str(), kFnvOffset);
}

std::string encode_checkpoint_cell(const CellResult& cell) {
  std::string line = "cell";
  const auto put = [&line](const std::string& field) {
    line += '\t';
    line += field;
  };
  put(fmt_u64(cell.cell));
  put(escape(cell.topology));
  put(escape(cell.topology_name));
  put(fmt_u64(cell.vertices));
  put(fmt_f64(cell.p));
  put(escape(cell.router));
  put(escape(cell.workload));
  put(fmt_u64(cell.trial));
  put(fmt_u64(cell.env_seed));
  put(fmt_u64(cell.workload_seed));
  put(fmt_u64(cell.messages));
  put(fmt_u64(cell.routed));
  put(fmt_u64(cell.failed_routing));
  put(fmt_u64(cell.censored));
  put(fmt_u64(cell.invalid_paths));
  put(fmt_u64(cell.delivered));
  put(fmt_u64(cell.stranded));
  put(fmt_u64(cell.total_distinct_probes));
  put(fmt_u64(cell.unique_edges_probed));
  put(fmt_u64(cell.cache_hits));
  put(fmt_u64(cell.cache_misses));
  put(fmt_f64(cell.probe_amortization));
  put(fmt_u64(cell.max_edge_load));
  put(fmt_f64(cell.mean_edge_load));
  put(fmt_u64(cell.edges_used));
  put(fmt_u64(cell.makespan));
  put(fmt_f64(cell.mean_queueing_delay));
  put(fmt_u64(cell.max_queueing_delay));
  put(fmt_f64(cell.mean_path_edges));
  put(fmt_f64(cell.throughput));
  put(fmt_u64(cell.sim_steps));
  put(fmt_u64(cell.admission_events));
  put(fmt_u64(cell.transmissions));
  put(fmt_u64(cell.peak_active_channels));
  put(fmt_u64(cell.channels));
  put(cell.has_timings ? "1" : "0");
  put(fmt_f64(cell.routing_ms));
  put(fmt_f64(cell.delivery_ms));
  return line;
}

CellResult decode_checkpoint_cell(const std::string& line) {
  // Escapes never contain a raw tab, so framing splits on the byte.
  std::vector<std::string> parts;
  std::size_t pos = 0;
  while (true) {
    const auto tab = line.find('\t', pos);
    if (tab == std::string::npos) {
      parts.push_back(line.substr(pos));
      break;
    }
    parts.push_back(line.substr(pos, tab - pos));
    pos = tab + 1;
  }
  constexpr std::size_t kFields = 39;  // "cell" tag + 38 CellResult fields
  if (parts.size() != kFields) {
    bad_line("expected " + std::to_string(kFields) + " tab-separated fields, got " +
             std::to_string(parts.size()));
  }
  if (parts[0] != "cell") bad_line("expected the 'cell' tag, got '" + parts[0] + "'");

  CellResult cell;
  std::size_t i = 1;
  cell.cell = parse_u64(parts[i++]);
  cell.topology = unescape(parts[i++]);
  cell.topology_name = unescape(parts[i++]);
  cell.vertices = parse_u64(parts[i++]);
  cell.p = parse_f64(parts[i++]);
  cell.router = unescape(parts[i++]);
  cell.workload = unescape(parts[i++]);
  cell.trial = parse_u64(parts[i++]);
  cell.env_seed = parse_u64(parts[i++]);
  cell.workload_seed = parse_u64(parts[i++]);
  cell.messages = parse_u64(parts[i++]);
  cell.routed = parse_u64(parts[i++]);
  cell.failed_routing = parse_u64(parts[i++]);
  cell.censored = parse_u64(parts[i++]);
  cell.invalid_paths = parse_u64(parts[i++]);
  cell.delivered = parse_u64(parts[i++]);
  cell.stranded = parse_u64(parts[i++]);
  cell.total_distinct_probes = parse_u64(parts[i++]);
  cell.unique_edges_probed = parse_u64(parts[i++]);
  cell.cache_hits = parse_u64(parts[i++]);
  cell.cache_misses = parse_u64(parts[i++]);
  cell.probe_amortization = parse_f64(parts[i++]);
  cell.max_edge_load = parse_u64(parts[i++]);
  cell.mean_edge_load = parse_f64(parts[i++]);
  cell.edges_used = parse_u64(parts[i++]);
  cell.makespan = parse_u64(parts[i++]);
  cell.mean_queueing_delay = parse_f64(parts[i++]);
  cell.max_queueing_delay = parse_u64(parts[i++]);
  cell.mean_path_edges = parse_f64(parts[i++]);
  cell.throughput = parse_f64(parts[i++]);
  cell.sim_steps = parse_u64(parts[i++]);
  cell.admission_events = parse_u64(parts[i++]);
  cell.transmissions = parse_u64(parts[i++]);
  cell.peak_active_channels = parse_u64(parts[i++]);
  cell.channels = parse_u64(parts[i++]);
  cell.has_timings = parse_bool(parts[i++]);
  cell.routing_ms = parse_f64(parts[i++]);
  cell.delivery_ms = parse_f64(parts[i++]);
  return cell;
}

CheckpointJournal::CheckpointJournal(std::string path, const ScenarioSpec& spec)
    : path_(std::move(path)) {
  const std::uint64_t cells = spec.num_cells();
  completed_.resize(cells);
  const std::string header = header_line(spec);

  bool fresh = true;
  std::string text;
  {
    std::ifstream in(path_, std::ios::binary);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      text = buffer.str();
      fresh = text.empty();
    }
  }
  std::uint64_t valid_end = 0;  // byte offset past the last intact line
  if (!fresh) {
    std::size_t pos = 0;
    std::size_t lineno = 0;
    while (pos < text.size()) {
      const auto nl = text.find('\n', pos);
      // Trailing bytes with no newline are the one torn write an append
      // crash can leave; they are discarded (and truncated away below).
      if (nl == std::string::npos) break;
      const std::string line = text.substr(pos, nl - pos);
      ++lineno;
      if (lineno == 1) {
        if (line != header) {
          throw std::runtime_error(
              "checkpoint '" + path_ + "': journal belongs to a different spec — refusing " +
              "to resume (expected header '" + header + "', found '" + line + "')");
        }
      } else {
        CellResult cell;
        try {
          cell = decode_checkpoint_cell(line);
        } catch (const std::exception& e) {
          throw std::runtime_error("checkpoint '" + path_ + "' line " +
                                   std::to_string(lineno) + ": " + e.what());
        }
        if (cell.cell >= cells) {
          throw std::runtime_error("checkpoint '" + path_ + "' line " +
                                   std::to_string(lineno) + ": cell index " +
                                   std::to_string(cell.cell) + " out of range (spec has " +
                                   std::to_string(cells) + " cells)");
        }
        if (completed_[cell.cell].has_value()) {
          throw std::runtime_error("checkpoint '" + path_ + "' line " +
                                   std::to_string(lineno) + ": duplicate cell " +
                                   std::to_string(cell.cell));
        }
        completed_[cell.cell] = std::move(cell);
        ++num_completed_;
      }
      valid_end = nl + 1;
      pos = nl + 1;
    }
    if (valid_end < text.size()) {
      // Drop the torn tail so the next append starts on a line boundary.
      std::filesystem::resize_file(path_, valid_end);
    }
  }

  out_.open(path_, std::ios::binary | std::ios::app);
  if (!out_) {
    throw std::runtime_error("checkpoint '" + path_ + "': cannot open for append");
  }
  if (fresh) {
    out_ << header << '\n';
    out_.flush();
    if (!out_) throw std::runtime_error("checkpoint '" + path_ + "': write failed");
  }
}

void CheckpointJournal::record(const CellResult& cell) {
  const std::string line = encode_checkpoint_cell(cell);
  const std::lock_guard<std::mutex> lock(mutex_);
  out_ << line << '\n';
  // One flush per cell: cells take milliseconds to compute, so durability
  // per line costs nothing measurable and a kill loses at most one line.
  out_.flush();
}

}  // namespace faultroute::scenario
