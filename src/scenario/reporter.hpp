#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>

#include "obs/schemas.hpp"
#include "scenario/spec.hpp"

namespace faultroute::scenario {

/// Schema identifier stamped into every report so downstream tooling can
/// diff result sets across PRs. Defined in obs/schemas.hpp with the rest of
/// the schema registry; bump the version whenever a field is added, removed,
/// renamed, or its meaning/units change.
inline constexpr int kSchemaVersion = obs::schemas::kScenarioVersion;
inline constexpr const char* kSchemaName = obs::schemas::kScenario;

/// One cell of a scenario's cross-product: the aggregate traffic metrics of
/// one (topology, p, router, workload, trial) combination. Field meanings
/// and units match `TrafficResult` (times in discrete simulation steps,
/// loads in message traversals); strings are the registry specs verbatim.
struct CellResult {
  std::uint64_t cell = 0;  ///< flat row-major index (see runner.hpp)
  std::string topology;    ///< registry spec, e.g. "hypercube:10"
  std::string topology_name;
  std::uint64_t vertices = 0;
  double p = 0.0;
  std::string router;
  std::string workload;  ///< registry spec, e.g. "poisson:2.5"
  std::uint64_t trial = 0;
  std::uint64_t env_seed = 0;
  std::uint64_t workload_seed = 0;

  std::uint64_t messages = 0;
  std::uint64_t routed = 0;
  std::uint64_t failed_routing = 0;
  std::uint64_t censored = 0;
  std::uint64_t invalid_paths = 0;
  std::uint64_t delivered = 0;
  std::uint64_t stranded = 0;
  std::uint64_t total_distinct_probes = 0;
  std::uint64_t unique_edges_probed = 0;
  // SharedProbeCache hit/miss split (schema v3) — exact and deterministic;
  // see TrafficResult::cache_hits.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  double probe_amortization = 0.0;
  std::uint64_t max_edge_load = 0;
  double mean_edge_load = 0.0;
  std::uint64_t edges_used = 0;
  std::uint64_t makespan = 0;
  double mean_queueing_delay = 0.0;
  std::uint64_t max_queueing_delay = 0;
  double mean_path_edges = 0.0;
  double throughput = 0.0;

  // Delivery-engine counters (schema v2): the event-driven simulator's work
  // and footprint — see TrafficResult and docs/ARCHITECTURE.md.
  std::uint64_t sim_steps = 0;
  std::uint64_t admission_events = 0;
  std::uint64_t transmissions = 0;
  std::uint64_t peak_active_channels = 0;
  std::uint64_t channels = 0;

  // Per-cell wall-clock phase timings, emitted only when has_timings (the
  // scenario --cell-timings opt-in, JSONL only). Opt-in because wall clock
  // breaks the byte-identical-rerun property every other field keeps.
  bool has_timings = false;
  double routing_ms = 0.0;
  double delivery_ms = 0.0;
};

/// Sink for scenario results. The runner guarantees the call order
/// begin → report (once per cell, in ascending cell order) → end, from a
/// single thread, regardless of how many worker threads computed the cells —
/// implementations need no locking. Every emitted byte is a deterministic
/// function of the spec, so identical runs produce identical reports.
class Reporter {
 public:
  virtual ~Reporter() = default;
  virtual void begin(const ScenarioSpec& spec) = 0;
  virtual void report(const CellResult& cell) = 0;
  virtual void end() = 0;
};

/// JSON-lines: one header object (schema + the resolved spec), then one
/// object per cell. Machine-diffable and append-friendly.
class JsonLinesReporter final : public Reporter {
 public:
  /// `out` must outlive the reporter; nothing is written before begin().
  explicit JsonLinesReporter(std::ostream& out) : out_(out) {}
  void begin(const ScenarioSpec& spec) override;
  void report(const CellResult& cell) override;
  void end() override;

 private:
  std::ostream& out_;
  std::uint64_t cells_reported_ = 0;
};

/// RFC-4180-style CSV with a fixed column set; the schema name rides in the
/// first column of every row so a bare .csv file remains self-describing.
class CsvReporter final : public Reporter {
 public:
  explicit CsvReporter(std::ostream& out) : out_(out) {}
  void begin(const ScenarioSpec& spec) override;
  void report(const CellResult& cell) override;
  void end() override;

 private:
  std::ostream& out_;
  std::string scenario_name_;
};

/// Factory for the CLI: `format` is "jsonl" or "csv".
[[nodiscard]] std::unique_ptr<Reporter> make_reporter(const std::string& format,
                                                      std::ostream& out);

}  // namespace faultroute::scenario
