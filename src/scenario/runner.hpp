#pragma once

#include <cstdint>

#include "scenario/reporter.hpp"
#include "scenario/spec.hpp"

namespace faultroute::scenario {

/// Run totals, for the CLI's human-readable closing line (the machine
/// record is whatever the Reporter wrote).
struct RunSummary {
  std::uint64_t cells = 0;
  std::uint64_t messages = 0;
  std::uint64_t delivered = 0;
};

/// Executes every cell of the scenario's cross-product and streams the
/// results through `reporter`.
///
/// Ordering: cells are indexed row-major over (topology, p, router,
/// workload, trial) with trial fastest, and reported in ascending index
/// order from the calling thread.
///
/// Seeding contract (the basis of reproducibility — see
/// docs/ARCHITECTURE.md): cell i draws its percolation-environment seed as
/// derive_seed(spec.seed, 2*i) and its workload seed as
/// derive_seed(spec.seed, 2*i + 1). Seeds therefore depend only on
/// (spec.seed, cell index): rerunning a spec reproduces every cell exactly,
/// and editing one sweep axis leaves the *meaning* of seed streams of other
/// cells well-defined (they shift with the index, not with wall clock or
/// thread schedule).
///
/// Parallelism: cells are distributed over `spec.threads` workers
/// (0 = hardware concurrency) via core/parallel's index loop; each cell's
/// traffic simulation runs single-threaded inside its worker. Results and
/// report bytes are identical for every thread count.
///
/// Fail-fast: all topology specs are constructed, all router names
/// instantiated against each topology, and all workload specs parsed
/// *before* the first cell runs, so a typo anywhere in the spec throws
/// std::invalid_argument before any output is produced.
RunSummary run_scenario(const ScenarioSpec& spec, Reporter& reporter);

}  // namespace faultroute::scenario
