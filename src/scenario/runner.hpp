#pragma once

#include <cstdint>

#include "scenario/reporter.hpp"
#include "scenario/spec.hpp"

namespace faultroute::obs {
class RunMetrics;
}

namespace faultroute::scenario {

/// Run totals, for the CLI's human-readable closing line (the machine
/// record is whatever the Reporter wrote).
struct RunSummary {
  std::uint64_t cells = 0;
  std::uint64_t messages = 0;
  std::uint64_t delivered = 0;
};

/// Observability knobs of a scenario run. Defaults are all-off, which is
/// the zero-overhead path (one null check per instrumentation site).
struct RunOptions {
  /// When non-null, the run records per-cell phase spans (one "cell-<i>"
  /// scope per cell on its worker's track, with the traffic engine's phases
  /// nested inside) and harvests traffic counters across all cells into the
  /// registry. Shared by every worker; the pointee must outlive the call.
  /// Never changes results or report bytes.
  obs::RunMetrics* metrics = nullptr;
  /// Emit per-cell wall-clock routing_ms / delivery_ms in the report
  /// (JSONL only). Opt-in because wall clock is the one field class that
  /// would break the byte-identical-rerun property of reports.
  bool cell_timings = false;
  /// When non-empty, journal every completed cell to this path and, on a
  /// rerun against the same journal, skip cells already recorded — the
  /// resumed run's report is byte-identical to an uninterrupted one. See
  /// checkpoint.hpp for the format and the fingerprint that guards misuse.
  std::string checkpoint_path;
  /// Shard k of n (CLI `--shard k/n`): this process computes and reports
  /// only the cells with index % shard_count == shard_index - 1, in
  /// ascending order, under the unchanged spec-wide seeding contract.
  /// `faultroute merge` stitches the n shard reports back into the exact
  /// single-process report. Defaults (1/1) mean "the whole sweep". A
  /// checkpoint journal used with sharding only records/replays the
  /// shard's own cells, so each shard needs its own journal path.
  unsigned shard_index = 1;
  unsigned shard_count = 1;
};

/// Executes every cell of the scenario's cross-product and streams the
/// results through `reporter`.
///
/// Ordering: cells are indexed row-major over (topology, p, router,
/// workload, trial) with trial fastest, and reported in ascending index
/// order from the calling thread.
///
/// Seeding contract (the basis of reproducibility — see
/// docs/ARCHITECTURE.md): cell i draws its percolation-environment seed as
/// derive_seed(spec.seed, 2*i) and its workload seed as
/// derive_seed(spec.seed, 2*i + 1). Seeds therefore depend only on
/// (spec.seed, cell index): rerunning a spec reproduces every cell exactly,
/// and editing one sweep axis leaves the *meaning* of seed streams of other
/// cells well-defined (they shift with the index, not with wall clock or
/// thread schedule).
///
/// Parallelism: cells are distributed over `spec.threads` workers
/// (0 = hardware concurrency) via core/parallel's index loop; each cell's
/// traffic simulation runs single-threaded inside its worker. Results and
/// report bytes are identical for every thread count.
///
/// Fail-fast: all topology specs are constructed, all router names
/// instantiated against each topology, and all workload specs parsed
/// *before* the first cell runs, so a typo anywhere in the spec throws
/// std::invalid_argument before any output is produced.
RunSummary run_scenario(const ScenarioSpec& spec, Reporter& reporter);
RunSummary run_scenario(const ScenarioSpec& spec, Reporter& reporter,
                        const RunOptions& options);

}  // namespace faultroute::scenario
