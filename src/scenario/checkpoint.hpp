#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "scenario/reporter.hpp"
#include "scenario/spec.hpp"

namespace faultroute::scenario {

/// Checkpoint journals — restartable scenario sweeps.
///
/// Cells of a sweep are deterministic and independently seeded
/// (derive_seed(spec.seed, 2*i) / 2*i+1 — see runner.hpp), so a completed
/// cell's CellResult is a pure function of (spec, i) and can be persisted
/// and replayed verbatim. The journal (`--checkpoint PATH`) is an
/// append-only text file:
///
///   faultroute.checkpoint.v1<TAB>fingerprint=<16 hex><TAB>cells=<N>
///   cell<TAB><field 1><TAB><field 2>...        (one line per finished cell)
///
/// The header fingerprint hashes exactly the result-determining spec fields
/// (axes, messages, trials, seed, capacity, budget, max_steps) — and *not*
/// name / threads / adjacency / frontier / snapshot_dir, which never change
/// results — so a resume under a different thread count or adjacency
/// backend legitimately reuses the journal, while any edit that would
/// change cell values is refused with a diagnostic. Doubles are serialized
/// as C hexfloats (%a), which round-trip exactly; replayed cells therefore
/// re-render byte-identically in reports, and a resumed run's report equals
/// an uninterrupted run's byte for byte (tests/test_checkpoint.cpp).
///
/// Crash tolerance: appends are flushed line-atomically per cell; on load,
/// a torn final line (the one write a crash can interrupt) is discarded and
/// overwritten, while corruption anywhere earlier throws.

/// FNV-1a fingerprint over the result-determining fields of `spec` (see
/// above). Stable across processes and platforms.
[[nodiscard]] std::uint64_t spec_fingerprint(const ScenarioSpec& spec);

/// One CellResult as one tab-separated journal line (without newline);
/// strings are escaped (\t, \n, \r, \\), doubles rendered as %a hexfloats.
/// decode_checkpoint_cell is the exact inverse and throws
/// std::runtime_error on malformed input. Exposed for tests.
[[nodiscard]] std::string encode_checkpoint_cell(const CellResult& cell);
[[nodiscard]] CellResult decode_checkpoint_cell(const std::string& line);

/// An open checkpoint journal: loads previously completed cells on
/// construction, then records newly completed ones.
class CheckpointJournal {
 public:
  /// Opens (creating if absent) the journal at `path` for `spec`. Loads
  /// every completed cell; throws std::runtime_error on a fingerprint or
  /// cell-count mismatch, on corruption anywhere but a torn final line, or
  /// if the file cannot be opened for append.
  CheckpointJournal(std::string path, const ScenarioSpec& spec);

  /// Completed cells loaded from disk, indexed by cell id (nullopt = not
  /// recorded). Fixed after construction.
  [[nodiscard]] const std::vector<std::optional<CellResult>>& completed() const {
    return completed_;
  }
  [[nodiscard]] std::uint64_t num_completed() const { return num_completed_; }

  /// Appends one completed cell and flushes the line. Thread-safe: workers
  /// call this concurrently from the cell loop.
  void record(const CellResult& cell);

 private:
  std::string path_;
  std::vector<std::optional<CellResult>> completed_;
  std::uint64_t num_completed_ = 0;
  std::mutex mutex_;
  std::ofstream out_;
};

}  // namespace faultroute::scenario
